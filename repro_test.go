package repro

import (
	"testing"

	"repro/internal/hybrid"
)

// syncFromInt maps an ablation index to a sync flavor.
func syncFromInt(i int) hybrid.SyncMode {
	switch i {
	case 1:
		return hybrid.SyncP2P
	case 2:
		return hybrid.SyncSharedFlags
	default:
		return hybrid.SyncBarrier
	}
}

func TestSyncFromInt(t *testing.T) {
	if syncFromInt(0) != hybrid.SyncBarrier ||
		syncFromInt(1) != hybrid.SyncP2P ||
		syncFromInt(2) != hybrid.SyncSharedFlags ||
		syncFromInt(9) != hybrid.SyncBarrier {
		t.Error("syncFromInt mapping wrong")
	}
}
