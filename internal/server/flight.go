package server

import "sync"

// flightGroup coalesces concurrent identical queries: the first
// request for a fingerprint becomes the leader and executes; followers
// arriving while it is in flight park on the call and receive the
// leader's exact result value — one simulation, N responses,
// bit-identical bodies. (Hand-rolled because the x/sync singleflight
// package is a dependency this repository does not take; the follower
// wait is also context-aware, which the handler needs for client
// disconnects.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight execution. done is closed by the leader
// after val/err are published; followers must only read them after
// done.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// join registers interest in key. The first caller gets leader=true
// and must eventually call finish; later callers get the leader's call
// to wait on.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// finish publishes the leader's outcome and wakes every follower. The
// key is deregistered first, so a request arriving after finish starts
// a fresh flight; the leader must therefore cache a successful result
// BEFORE calling finish (Server.lead does), so post-finish arrivals
// hit the cache instead of re-executing.
func (g *flightGroup) finish(key string, c *flightCall, val any, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.val, c.err = val, err
	close(c.done)
}
