package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
	"repro/internal/tune"
)

// latencyBuckets are the fixed upper bounds (seconds) of the request
// latency histogram — microseconds for warm cache hits up through the
// request timeout ceiling.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metrics is the server's instrumentation: lock-free counters on the
// hot path (a warm cache hit must stay cheap enough for the 10k qps
// target) and a mutex only around the request-count label map, which
// sees one short critical section per request.
type metrics struct {
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	coalesced  atomic.Int64
	pointBusy  atomic.Int64   // point worker slots currently held
	sweepBusy  atomic.Int64   // sweep worker slots currently held
	histCounts []atomic.Int64 // len(latencyBuckets)+1, last is +Inf
	histSumNs  atomic.Int64
	histN      atomic.Int64

	mu       sync.Mutex
	requests map[string]int64 // "endpoint|code" -> count
	tenants  map[string]int64 // "tenant|outcome" -> count
}

func newMetrics() *metrics {
	return &metrics{
		histCounts: make([]atomic.Int64, len(latencyBuckets)+1),
		requests:   make(map[string]int64),
		tenants:    make(map[string]int64),
	}
}

// tenant records one rate-limiter decision for the given tenant.
func (m *metrics) tenant(name string, allowed bool) {
	outcome := "limited"
	if allowed {
		outcome = "allowed"
	}
	m.mu.Lock()
	m.tenants[name+"|"+outcome]++
	m.mu.Unlock()
}

// request records one completed request.
func (m *metrics) request(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", endpoint, code)]++
	m.mu.Unlock()
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	m.histCounts[i].Add(1)
	m.histSumNs.Add(int64(d))
	m.histN.Add(1)
}

// render writes the Prometheus text exposition of every metric.
// cacheLen, idleWorkers and the world-pool and tuning-store snapshots
// are sampled by the caller at scrape time.
func (m *metrics) render(w *strings.Builder, cacheLen, idleWorkers int, pointCap, sweepCap int, ps spec.PoolStats, ts tune.Stats) {
	fmt.Fprintf(w, "# HELP repro_requests_total Completed HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE repro_requests_total counter\n")
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		endpoint, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "repro_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, m.requests[k])
	}
	if len(m.tenants) > 0 {
		fmt.Fprintf(w, "# HELP repro_tenant_requests_total Per-tenant rate-limiter decisions on the query endpoints.\n")
		fmt.Fprintf(w, "# TYPE repro_tenant_requests_total counter\n")
		tkeys := make([]string, 0, len(m.tenants))
		for k := range m.tenants {
			tkeys = append(tkeys, k)
		}
		sort.Strings(tkeys)
		for _, k := range tkeys {
			// Split at the LAST separator: the outcome never contains
			// "|" but a hostile tenant header might.
			i := strings.LastIndex(k, "|")
			fmt.Fprintf(w, "repro_tenant_requests_total{tenant=%q,outcome=%q} %d\n", k[:i], k[i+1:], m.tenants[k])
		}
	}
	m.mu.Unlock()

	hits, miss := m.cacheHits.Load(), m.cacheMiss.Load()
	fmt.Fprintf(w, "# HELP repro_cache_hits_total Run results served from the LRU cache.\n")
	fmt.Fprintf(w, "# TYPE repro_cache_hits_total counter\nrepro_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP repro_cache_misses_total Run queries that had to simulate.\n")
	fmt.Fprintf(w, "# TYPE repro_cache_misses_total counter\nrepro_cache_misses_total %d\n", miss)
	ratio := 0.0
	if hits+miss > 0 {
		ratio = float64(hits) / float64(hits+miss)
	}
	fmt.Fprintf(w, "# HELP repro_cache_hit_ratio Fraction of run lookups served from cache.\n")
	fmt.Fprintf(w, "# TYPE repro_cache_hit_ratio gauge\nrepro_cache_hit_ratio %g\n", ratio)
	fmt.Fprintf(w, "# HELP repro_cache_entries Resident result-cache entries.\n")
	fmt.Fprintf(w, "# TYPE repro_cache_entries gauge\nrepro_cache_entries %d\n", cacheLen)
	fmt.Fprintf(w, "# HELP repro_coalesced_total Requests that joined an identical in-flight query.\n")
	fmt.Fprintf(w, "# TYPE repro_coalesced_total counter\nrepro_coalesced_total %d\n", m.coalesced.Load())

	fmt.Fprintf(w, "# HELP repro_pool_busy Worker slots currently executing, by class.\n")
	fmt.Fprintf(w, "# TYPE repro_pool_busy gauge\n")
	fmt.Fprintf(w, "repro_pool_busy{class=\"point\"} %d\n", m.pointBusy.Load())
	fmt.Fprintf(w, "repro_pool_busy{class=\"sweep\"} %d\n", m.sweepBusy.Load())
	fmt.Fprintf(w, "# HELP repro_pool_capacity Worker slots configured, by class.\n")
	fmt.Fprintf(w, "# TYPE repro_pool_capacity gauge\n")
	fmt.Fprintf(w, "repro_pool_capacity{class=\"point\"} %d\n", pointCap)
	fmt.Fprintf(w, "repro_pool_capacity{class=\"sweep\"} %d\n", sweepCap)
	fmt.Fprintf(w, "# HELP repro_rank_pool_idle_workers Parked simulator rank workers on the cross-world reserve.\n")
	fmt.Fprintf(w, "# TYPE repro_rank_pool_idle_workers gauge\nrepro_rank_pool_idle_workers %d\n", idleWorkers)

	fmt.Fprintf(w, "# HELP repro_world_pool_hits_total World checkouts served by a resident warm world.\n")
	fmt.Fprintf(w, "# TYPE repro_world_pool_hits_total counter\nrepro_world_pool_hits_total %d\n", ps.Hits)
	fmt.Fprintf(w, "# HELP repro_world_pool_misses_total World checkouts that had to build a world.\n")
	fmt.Fprintf(w, "# TYPE repro_world_pool_misses_total counter\nrepro_world_pool_misses_total %d\n", ps.Misses)
	fmt.Fprintf(w, "# HELP repro_world_pool_hit_ratio Fraction of world checkouts served warm.\n")
	fmt.Fprintf(w, "# TYPE repro_world_pool_hit_ratio gauge\nrepro_world_pool_hit_ratio %g\n", ps.HitRatio())
	fmt.Fprintf(w, "# HELP repro_world_pool_resident_worlds Resident simulated worlds, by state.\n")
	fmt.Fprintf(w, "# TYPE repro_world_pool_resident_worlds gauge\n")
	fmt.Fprintf(w, "repro_world_pool_resident_worlds{state=\"idle\"} %d\n", ps.IdleWorlds)
	fmt.Fprintf(w, "repro_world_pool_resident_worlds{state=\"leased\"} %d\n", ps.Leased)
	fmt.Fprintf(w, "# HELP repro_world_pool_resident_ranks Rank total across idle resident worlds.\n")
	fmt.Fprintf(w, "# TYPE repro_world_pool_resident_ranks gauge\nrepro_world_pool_resident_ranks %d\n", ps.IdleRanks)
	fmt.Fprintf(w, "# HELP repro_world_pool_retired_total Pooled worlds closed, by reason.\n")
	fmt.Fprintf(w, "# TYPE repro_world_pool_retired_total counter\n")
	fmt.Fprintf(w, "repro_world_pool_retired_total{reason=\"evicted\"} %d\n", ps.Evicted)
	fmt.Fprintf(w, "repro_world_pool_retired_total{reason=\"reaped\"} %d\n", ps.Reaped)
	fmt.Fprintf(w, "repro_world_pool_retired_total{reason=\"recycled\"} %d\n", ps.Recycled)
	fmt.Fprintf(w, "repro_world_pool_retired_total{reason=\"discarded\"} %d\n", ps.Discarded)

	fmt.Fprintf(w, "# HELP repro_tune_store_entries Cached measured-policy selection points in the tuning store.\n")
	fmt.Fprintf(w, "# TYPE repro_tune_store_entries gauge\nrepro_tune_store_entries %d\n", ts.Entries)
	fmt.Fprintf(w, "# HELP repro_tune_store_generation Tuning-store insert counter (grows with every measured winner).\n")
	fmt.Fprintf(w, "# TYPE repro_tune_store_generation gauge\nrepro_tune_store_generation %d\n", ts.Generation)
	fmt.Fprintf(w, "# HELP repro_tune_hits_total Measured-policy selections served from the tuning store.\n")
	fmt.Fprintf(w, "# TYPE repro_tune_hits_total counter\nrepro_tune_hits_total %d\n", ts.Hits)
	fmt.Fprintf(w, "# HELP repro_tune_misses_total Measured-policy selections that fell back to the cost prior.\n")
	fmt.Fprintf(w, "# TYPE repro_tune_misses_total counter\nrepro_tune_misses_total %d\n", ts.Misses)
	tuneRatio := 0.0
	if ts.Hits+ts.Misses > 0 {
		tuneRatio = float64(ts.Hits) / float64(ts.Hits+ts.Misses)
	}
	fmt.Fprintf(w, "# HELP repro_tune_hit_ratio Fraction of measured-policy selections served from the store.\n")
	fmt.Fprintf(w, "# TYPE repro_tune_hit_ratio gauge\nrepro_tune_hit_ratio %g\n", tuneRatio)
	fmt.Fprintf(w, "# HELP repro_tune_measurements_total Background candidate races completed by the tuner.\n")
	fmt.Fprintf(w, "# TYPE repro_tune_measurements_total counter\nrepro_tune_measurements_total %d\n", ts.Measured)

	fmt.Fprintf(w, "# HELP repro_request_seconds Request latency.\n")
	fmt.Fprintf(w, "# TYPE repro_request_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.histCounts[i].Load()
		fmt.Fprintf(w, "repro_request_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), cum)
	}
	cum += m.histCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "repro_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "repro_request_seconds_sum %g\n", float64(m.histSumNs.Load())/1e9)
	fmt.Fprintf(w, "repro_request_seconds_count %d\n", m.histN.Load())
}

// snapshot returns (hits, misses, coalesced) for tests and the service
// sweep harness.
func (m *metrics) snapshot() (hits, misses, coalesced int64) {
	return m.cacheHits.Load(), m.cacheMiss.Load(), m.coalesced.Load()
}
