package server_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// poolQuery returns a point query whose fingerprint varies with size
// but whose world shape does not — the geometry-reuse case the warm
// world pool exists for.
func poolQuery(size int) string {
	return fmt.Sprintf(
		`{"machine":"laptop","topology":{"nodes":2,"ppn":4},"collective":"bcast","sizes":[%d]}`, size)
}

// TestWorldPoolHitsAcrossQueries: distinct-fingerprint queries sharing
// one shape must reuse a resident world, and the reuse must show up on
// /metrics.
func TestWorldPoolHitsAcrossQueries(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	const n = 6
	for i := 0; i < n; i++ {
		if rec := do(t, srv, "POST", "/v1/run", poolQuery(64+i*16)); rec.Code != 200 {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	s := srv.PoolStats()
	if s.Misses < 1 || s.Hits < int64(n)-2 {
		t.Errorf("pool did not reuse worlds across queries: %+v", s)
	}
	rec := do(t, srv, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		fmt.Sprintf("repro_world_pool_hits_total %d", s.Hits),
		fmt.Sprintf("repro_world_pool_misses_total %d", s.Misses),
		"repro_world_pool_hit_ratio 0.8",
		"repro_world_pool_resident_worlds{state=\"idle\"}",
		"repro_world_pool_resident_worlds{state=\"leased\"} 0",
		"repro_world_pool_resident_ranks",
		"repro_world_pool_retired_total{reason=\"evicted\"} 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestWorldPoolDisabled: a negative rank budget turns pooling off, and
// the construct-per-point referee config never pools either.
func TestWorldPoolDisabled(t *testing.T) {
	for _, cfg := range []server.Config{
		{WorldPoolRanks: -1, Logger: quietLogger()},
		{PerPointWorlds: true, Logger: quietLogger()},
	} {
		srv := server.New(cfg)
		for i := 0; i < 3; i++ {
			if rec := do(t, srv, "POST", "/v1/run", poolQuery(64+i*16)); rec.Code != 200 {
				t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body)
			}
		}
		if s := srv.PoolStats(); s.Hits != 0 || s.Misses != 0 || s.IdleWorlds != 0 {
			t.Errorf("%+v: pool active despite being disabled: %+v", cfg, s)
		}
		srv.Close()
	}
}

// TestServerCloseRetiresPool: graceful shutdown must leave no resident
// worlds (ROADMAP: "no resident worlds or rank-pool goroutines leak
// after graceful shutdown" — the rank-worker half is drained by
// mpi.DrainIdleWorkers in cmd/serverd).
func TestServerCloseRetiresPool(t *testing.T) {
	srv := server.New(server.Config{Logger: quietLogger(), WorldPoolIdle: time.Hour})
	for i := 0; i < 4; i++ {
		if rec := do(t, srv, "POST", "/v1/run", poolQuery(64+i*16)); rec.Code != 200 {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if s := srv.PoolStats(); s.IdleWorlds == 0 {
		t.Fatalf("expected resident worlds before close: %+v", s)
	}
	srv.Close()
	if s := srv.PoolStats(); s.IdleWorlds != 0 || s.IdleRanks != 0 || s.Leased != 0 {
		t.Errorf("resident worlds survived Close: %+v", s)
	}
}
