package server

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU keyed by spec fingerprint. The
// values it holds are the executors' result structs, which are
// immutable once published, so Get hands out shared references. The
// standard library has no LRU and the repository takes no third-party
// dependencies, so this is the classic map + intrusive list pairing.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one resident result; the element stored in the list.
type cacheEntry struct {
	key string
	val any
}

// newResultCache builds an empty cache; capacity is clamped to at
// least one entry.
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value for key and refreshes its recency.
func (c *resultCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// add inserts (or refreshes) key and evicts the least recently used
// entry when the cache is over capacity.
func (c *resultCache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count (a /metrics gauge).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
