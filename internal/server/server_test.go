package server_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/spec"
)

var update = flag.Bool("update", false, "rewrite the golden response files")

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer() *server.Server {
	return server.New(server.Config{
		Workers:      4,
		SweepWorkers: 1,
		Timeout:      30 * time.Second,
		Logger:       quietLogger(),
	})
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const pointBody = `{"machine":"laptop","topology":{"nodes":2,"ppn":2},
	"collective":"allgather","sizes":[64,4096],"tuning":{"policy":"cost"}}`

// TestHandlerGolden drives every JSON endpoint through one server and
// compares full response bodies against testdata goldens (regenerate
// with -update). The table is ordered: the repeated run must be the
// cache hit, with a body byte-identical to the miss.
func TestHandlerGolden(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		wantCode  int
		wantCache string
	}{
		{"run_point", "POST", "/v1/run", pointBody, 200, "miss"},
		{"run_point", "POST", "/v1/run", pointBody, 200, "hit"},
		{"run_barrier", "POST", "/v1/run",
			`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"barrier","sizes":[1,2,3]}`,
			200, "miss"},
		{"price_allgather", "POST", "/v1/price",
			`{"machine":"hazelhen-cray","topology":{"nodes":8,"ppn":8},"collective":"allgather","sizes":[64,1048576]}`,
			200, "miss"},
		{"canon_shorthand", "POST", "/v1/canon",
			`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`,
			200, ""},
		{"canon_stack", "POST", "/v1/canon",
			`{"engine":"goroutine","machine":"laptop","collective":"bcast","sizes":[8],
			  "topology":{"per_leaf":2,"levels":[{"name":"node","arity":2}]}}`,
			200, ""},
		{"err_unknown_field", "POST", "/v1/run",
			`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"warp":9}`,
			400, ""},
		{"err_bad_machine", "POST", "/v1/run",
			`{"machine":"cray-3","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`,
			400, ""},
		{"healthz", "GET", "/healthz", "", 200, ""},
	}
	bodies := map[string][]byte{}
	for i, tc := range cases {
		rec := do(t, srv, tc.method, tc.path, tc.body)
		if rec.Code != tc.wantCode {
			t.Fatalf("case %d %s: code %d, want %d: %s", i, tc.name, rec.Code, tc.wantCode, rec.Body)
		}
		if got := rec.Header().Get("X-Cache"); got != tc.wantCache {
			t.Errorf("case %d %s: X-Cache %q, want %q", i, tc.name, got, tc.wantCache)
		}
		if prev, ok := bodies[tc.name]; ok {
			if !bytes.Equal(prev, rec.Body.Bytes()) {
				t.Errorf("case %d %s: repeat body differs from first response", i, tc.name)
			}
			continue
		}
		bodies[tc.name] = rec.Body.Bytes()
		golden := filepath.Join("testdata", tc.name+".golden")
		if *update {
			if err := os.WriteFile(golden, rec.Body.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s (run with -update to regenerate): %v", golden, err)
		}
		if !bytes.Equal(want, rec.Body.Bytes()) {
			t.Errorf("%s: response drifted from golden:\n got: %s\nwant: %s", tc.name, rec.Body, want)
		}
	}
	// The two canonical forms describe the same run: identical
	// fingerprints, identical canonical JSON, hence identical bodies.
	if !bytes.Equal(bodies["canon_shorthand"], bodies["canon_stack"]) {
		t.Errorf("shorthand and stack canon bodies differ:\n%s\n%s",
			bodies["canon_shorthand"], bodies["canon_stack"])
	}
}

// TestMethodAndRouteErrors covers the mux-level failure surface.
func TestMethodAndRouteErrors(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	if rec := do(t, srv, "GET", "/v1/run", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run = %d, want 405", rec.Code)
	}
	if rec := do(t, srv, "POST", "/v1/nope", "{}"); rec.Code != http.StatusNotFound {
		t.Errorf("POST /v1/nope = %d, want 404", rec.Code)
	}
}

// TestMetricsEndpoint checks the exposition after traffic: counters
// present, cache ratio positive once a hit happened.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	for i := 0; i < 3; i++ {
		if rec := do(t, srv, "POST", "/v1/run", pointBody); rec.Code != 200 {
			t.Fatalf("run %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec := do(t, srv, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"repro_cache_hits_total 2",
		"repro_cache_misses_total 1",
		"repro_requests_total{endpoint=\"/v1/run\",code=\"200\"} 3",
		"repro_cache_hit_ratio 0.6666666666666666",
		"repro_pool_capacity{class=\"point\"} 4",
		"repro_request_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestHTTPMatchesCLI is the acceptance cross-check: the same Query
// through spec.Run (the CLI path) and through the HTTP handler yields
// bit-identical virtual times.
func TestHTTPMatchesCLI(t *testing.T) {
	q, err := spec.Parse([]byte(pointBody))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := spec.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer()
	defer srv.Close()
	rec := do(t, srv, "POST", "/v1/run", pointBody)
	if rec.Code != 200 {
		t.Fatalf("http run: %d %s", rec.Code, rec.Body)
	}
	var viaHTTP spec.Result
	if err := jsonUnmarshalStrict(rec.Body.Bytes(), &viaHTTP); err != nil {
		t.Fatal(err)
	}
	if viaHTTP.Fingerprint != direct.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", viaHTTP.Fingerprint, direct.Fingerprint)
	}
	if len(viaHTTP.Points) != len(direct.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(viaHTTP.Points), len(direct.Points))
	}
	for i := range direct.Points {
		if viaHTTP.Points[i].VirtualPs != direct.Points[i].VirtualPs {
			t.Errorf("point %d: HTTP %d ps, CLI %d ps", i,
				viaHTTP.Points[i].VirtualPs, direct.Points[i].VirtualPs)
		}
	}
}

// TestConcurrentClientsCoalesce hammers one fingerprint from many
// goroutines (run under -race in CI): every response must be 200 with
// a byte-identical body, and the server must have simulated the query
// far fewer times than it answered it.
func TestConcurrentClientsCoalesce(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 24
	body := `{"machine":"laptop","topology":{"nodes":4,"ppn":4},
		"collective":"allreduce","sizes":[1048576],"iters":4}`
	var wg sync.WaitGroup
	responses := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != 200 {
				t.Errorf("client %d: %d %s", i, resp.StatusCode, b)
				return
			}
			responses[i] = b
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(responses[0], responses[i]) {
			t.Errorf("client %d body differs from client 0:\n%s\n%s", i, responses[i], responses[0])
		}
	}
	hits, misses, coalesced := srv.Stats()
	if hits+misses+coalesced != clients {
		t.Errorf("stats hits=%d misses=%d coalesced=%d do not add up to %d clients",
			hits, misses, coalesced, clients)
	}
	if misses == clients {
		t.Errorf("no request was coalesced or cache-served (misses=%d)", misses)
	}
	t.Logf("hits=%d misses=%d coalesced=%d", hits, misses, coalesced)
}

// TestExecuteTimeout: a timeout too short to even acquire a slot must
// surface as 504, not hang.
func TestExecuteTimeout(t *testing.T) {
	srv := server.New(server.Config{
		Workers: 1, SweepWorkers: 1,
		Timeout: time.Nanosecond,
		Logger:  quietLogger(),
	})
	defer srv.Close()
	rec := do(t, srv, "POST", "/v1/run", pointBody)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("code %d, want 504: %s", rec.Code, rec.Body)
	}
}

// doTenant is do with an X-Tenant header ("" sends none).
func doTenant(t *testing.T, h http.Handler, method, path, body, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestTenantRateLimit: with a 1 qps / burst-2 limit, a tenant's third
// back-to-back query answers 429 with a Retry-After header, other
// tenants keep their own budget, anonymous requests share the
// "default" bucket, and the ops endpoints are never limited.
func TestTenantRateLimit(t *testing.T) {
	srv := server.New(server.Config{
		Workers: 2, SweepWorkers: 1,
		TenantQPS:   1,
		TenantBurst: 2,
		Timeout:     30 * time.Second,
		Logger:      quietLogger(),
	})
	defer srv.Close()
	canon := `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`

	for i := 0; i < 2; i++ {
		if rec := doTenant(t, srv, "POST", "/v1/canon", canon, "alice"); rec.Code != 200 {
			t.Fatalf("alice request %d: code %d, want 200: %s", i, rec.Code, rec.Body)
		}
	}
	rec := doTenant(t, srv, "POST", "/v1/canon", canon, "alice")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: code %d, want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without a useful Retry-After header (%q)", ra)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := jsonUnmarshalStrict(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Errorf("429 body is not the JSON error envelope: %s (%v)", rec.Body, err)
	}

	// Another tenant and the anonymous default bucket are unaffected by
	// alice burning her budget.
	if rec := doTenant(t, srv, "POST", "/v1/canon", canon, "bob"); rec.Code != 200 {
		t.Errorf("bob: code %d, want 200: %s", rec.Code, rec.Body)
	}
	if rec := do(t, srv, "POST", "/v1/canon", canon); rec.Code != 200 {
		t.Errorf("anonymous: code %d, want 200: %s", rec.Code, rec.Body)
	}
	// Anonymous clients share one bucket: two more exhaust "default".
	do(t, srv, "POST", "/v1/canon", canon)
	if rec := do(t, srv, "POST", "/v1/canon", canon); rec.Code != http.StatusTooManyRequests {
		t.Errorf("third anonymous request: code %d, want 429: %s", rec.Code, rec.Body)
	}

	// Ops endpoints stay reachable for a limited tenant.
	if rec := doTenant(t, srv, "GET", "/healthz", "", "alice"); rec.Code != 200 {
		t.Errorf("healthz limited: code %d", rec.Code)
	}
	met := doTenant(t, srv, "GET", "/metrics", "", "alice")
	if met.Code != 200 {
		t.Fatalf("metrics: code %d", met.Code)
	}
	out := met.Body.String()
	for _, want := range []string{
		`repro_tenant_requests_total{tenant="alice",outcome="allowed"} 2`,
		`repro_tenant_requests_total{tenant="alice",outcome="limited"} 1`,
		`repro_tenant_requests_total{tenant="default",outcome="limited"} 1`,
		`repro_requests_total{endpoint="/v1/canon",code="429"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestTenantRateLimitDisabled: the zero config imposes no limit.
func TestTenantRateLimitDisabled(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	canon := `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`
	for i := 0; i < 50; i++ {
		if rec := doTenant(t, srv, "POST", "/v1/canon", canon, "hammer"); rec.Code != 200 {
			t.Fatalf("request %d limited with TenantQPS=0: %d %s", i, rec.Code, rec.Body)
		}
	}
}

// jsonUnmarshalStrict decodes exactly one JSON value, rejecting
// unknown fields — response schemas drifting from spec.Result should
// fail loudly here.
func jsonUnmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// TestAdmissionCaps: one well-formed request must not be able to OOM
// the daemon — the service rejects worlds above MaxRanks, goroutine
// worlds above the tighter MaxGoroutineRanks, and ranks x sizes x
// iters above MaxWork with 413 before anything is built.
func TestAdmissionCaps(t *testing.T) {
	srv := server.New(server.Config{
		Workers: 2, SweepWorkers: 1,
		MaxRanks:          1 << 12,
		MaxGoroutineRanks: 64,
		MaxWork:           1 << 16,
		Timeout:           30 * time.Second,
		Logger:            quietLogger(),
	})
	defer srv.Close()
	reject := []struct{ name, path, body string }{
		{"ranks over cap", "/v1/run",
			`{"machine":"laptop","topology":{"nodes":1024,"ppn":16},"collective":"bcast","sizes":[8],"engine":"event"}`},
		{"goroutine ranks over goroutine cap", "/v1/run",
			`{"machine":"laptop","topology":{"nodes":16,"ppn":8},"collective":"bcast","sizes":[8]}`},
		{"work over cap", "/v1/run",
			`{"machine":"laptop","topology":{"nodes":8,"ppn":8},"collective":"bcast","sizes":[8],"iters":2048,"engine":"event"}`},
		{"price shares the caps", "/v1/price",
			`{"machine":"laptop","topology":{"nodes":1024,"ppn":16},"collective":"bcast","sizes":[8]}`},
	}
	for _, tc := range reject {
		if rec := do(t, srv, "POST", tc.path, tc.body); rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: code %d, want 413: %s", tc.name, rec.Code, rec.Body)
		}
	}
	// The same 128-rank world the goroutine engine was refused is fine
	// on the event engine: the caps are engine-aware, not blanket.
	eventBody := `{"machine":"laptop","topology":{"nodes":16,"ppn":8},"collective":"bcast","sizes":[8],"engine":"event"}`
	if rec := do(t, srv, "POST", "/v1/run", eventBody); rec.Code != 200 {
		t.Errorf("event-engine query within caps: code %d, want 200: %s", rec.Code, rec.Body)
	}
	inCap := `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`
	if rec := do(t, srv, "POST", "/v1/run", inCap); rec.Code != 200 {
		t.Errorf("in-cap goroutine query: code %d, want 200: %s", rec.Code, rec.Body)
	}
}
