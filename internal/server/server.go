// Package server is the simulation-as-a-service layer: an HTTP/JSON
// front end over internal/spec that turns the simulator into a
// long-running what-if daemon (cmd/serverd hosts it; tests and the
// bench harness embed it in-process).
//
// The service contract is built on spec's canonical form. Every query
// is parsed strictly, canonicalized, and identified by its
// fingerprint; two requests describing the same run — whatever
// shorthand or field order they used — share one cache entry and, when
// concurrent, one execution:
//
//   - identical in-flight queries are coalesced (single-flight): the
//     first request simulates, the rest park and receive the same
//     result, so a thundering herd of one hot query costs one run
//   - completed results live in a fixed-capacity LRU keyed by
//     fingerprint, so a warm cache answers point queries without
//     touching the simulator at all
//   - execution is bounded by two worker pools: sweep-class queries
//     (long ladders or large worlds) compete for a small pool while
//     point queries keep their own slots, so a batch of sweeps cannot
//     starve interactive what-ifs
//   - DISTINCT fingerprints that share a world shape (machine,
//     topology, engine, fold unit, tuning) reuse a resident simulated
//     world from the spec.WorldPool instead of cold-building one, so
//     the cold path of a varied query mix stays cheap too — see the
//     repro_world_pool_* metrics
//   - each execution runs under the configured timeout; expiry aborts
//     the in-flight world (every blocked rank wakes) and the client
//     gets 504
//   - every daemon carries a measured-policy tuning store (spec.Tuner
//     over internal/tune): queries with tuning policy "measured" serve
//     cached measured winners and feed background measurements;
//     Config.TuneStorePath persists the store across restarts — see
//     the repro_tune_* metrics and TUNING.md
//
// Endpoints: POST /v1/run (simulate), POST /v1/price (selection-engine
// estimates, no simulation), POST /v1/canon (canonical form +
// fingerprint), GET /healthz, GET /metrics (Prometheus text). See
// API.md for the full schema and examples.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tune"
)

// Config sizes the service. The zero value is usable: every field
// defaults sensibly in New.
type Config struct {
	// Workers bounds concurrently executing point queries (default:
	// GOMAXPROCS).
	Workers int
	// SweepWorkers bounds concurrently executing sweep-class queries
	// (default: Workers/4, at least 1). Kept strictly below Workers so
	// sweeps cannot occupy every slot.
	SweepWorkers int
	// SweepSizes is the ladder length at which a query counts as a
	// sweep (default 4).
	SweepSizes int
	// SweepRanks is the world size at which a query counts as a sweep
	// (default 4096).
	SweepRanks int
	// CacheEntries is the result-cache capacity (default 4096).
	CacheEntries int
	// MaxRanks caps the world size one request may declare; bigger
	// queries answer 413 before anything is built (default 1<<20,
	// far below spec's own arithmetic backstop). This is the
	// service-level admission cap the spec package documents as the
	// service layer's responsibility.
	MaxRanks int
	// MaxGoroutineRanks is the tighter cap for goroutine-engine
	// queries, which spawn one worker goroutine per rank (default
	// 1<<16). Event-engine queries are bounded by MaxRanks alone.
	MaxGoroutineRanks int
	// MaxWork caps ranks x ladder length x iters — the total
	// simulated work one request may demand (default 1<<28).
	MaxWork int64
	// WorldPoolRanks is the rank budget of the warm world pool: idle
	// simulated worlds kept resident between queries so distinct
	// fingerprints sharing a shape skip world construction (default
	// 1<<20; negative disables pooling entirely).
	WorldPoolRanks int
	// WorldPoolIdle is how long a pooled world may sit unused before
	// the idle reaper closes it (default 60s).
	WorldPoolIdle time.Duration
	// GroupParallelism bounds how many ladder groups of one query
	// execute concurrently, each on its own world (default 4; 1 runs
	// groups sequentially).
	GroupParallelism int
	// PerPointWorlds restores the historical construct-per-point
	// execution (one world built and closed per ladder point,
	// bypassing the pool). It exists for the service sweep's
	// before/after comparison and as the referee configuration in
	// bit-identity tests; production daemons leave it off.
	PerPointWorlds bool
	// TenantQPS enables per-tenant rate limiting on the query endpoints
	// (/v1/run, /v1/price, /v1/canon): each tenant — the X-Tenant
	// request header, "default" when absent — gets a token bucket
	// refilled at this many requests per second. Rejected requests
	// answer 429 with a Retry-After header. Zero (the default)
	// disables limiting; /healthz and /metrics are never limited.
	TenantQPS float64
	// TenantBurst is each tenant's bucket capacity — how many requests
	// a tenant may issue back to back before the QPS rate gates it
	// (default: 2*TenantQPS rounded up, at least 1).
	TenantBurst int
	// TuneStorePath is where the measured-policy tuning store lives on
	// disk: loaded at startup (a corrupt or version-mismatched file is
	// logged, rejected, and the store starts fresh) and persisted
	// atomically on Close. Empty keeps the store in memory only — the
	// measured policy still works, its winners just die with the
	// daemon.
	TuneStorePath string
	// Timeout is the per-request execution budget; expiry aborts the
	// world and returns 504 (default 60s).
	Timeout time.Duration
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// Logger receives structured request logs (default slog.Default).
	Logger *slog.Logger
}

// Server is the what-if service. It implements http.Handler; hosting
// (listening, TLS, graceful shutdown) belongs to the caller — see
// cmd/serverd.
type Server struct {
	cfg     Config
	cache   *resultCache
	flight  *flightGroup
	met     *metrics
	mux     *http.ServeMux
	tenants *tenantLimiter // nil when TenantQPS is 0
	tuner   *spec.Tuner    // measured-policy measurement backfill
	exec    spec.Exec      // warm-world execution environment
	points  chan struct{}  // point-class worker slots
	sweeps  chan struct{}  // sweep-class worker slots
	baseCtx context.Context
	stop    context.CancelFunc
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SweepWorkers <= 0 {
		cfg.SweepWorkers = cfg.Workers / 4
	}
	if cfg.SweepWorkers < 1 {
		cfg.SweepWorkers = 1
	}
	if cfg.SweepSizes <= 0 {
		cfg.SweepSizes = 4
	}
	if cfg.SweepRanks <= 0 {
		cfg.SweepRanks = 4096
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.MaxRanks <= 0 {
		cfg.MaxRanks = 1 << 20
	}
	if cfg.MaxGoroutineRanks <= 0 {
		cfg.MaxGoroutineRanks = 1 << 16
	}
	if cfg.MaxWork <= 0 {
		cfg.MaxWork = 1 << 28
	}
	if cfg.WorldPoolRanks == 0 {
		cfg.WorldPoolRanks = 1 << 20
	}
	if cfg.WorldPoolIdle <= 0 {
		cfg.WorldPoolIdle = 60 * time.Second
	}
	if cfg.GroupParallelism <= 0 {
		cfg.GroupParallelism = 4
	}
	if cfg.TenantQPS > 0 && cfg.TenantBurst <= 0 {
		cfg.TenantBurst = int(math.Ceil(2 * cfg.TenantQPS))
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries),
		flight:  newFlightGroup(),
		met:     newMetrics(),
		mux:     http.NewServeMux(),
		points:  make(chan struct{}, cfg.Workers),
		sweeps:  make(chan struct{}, cfg.SweepWorkers),
		baseCtx: ctx,
		stop:    stop,
	}
	if cfg.TenantQPS > 0 {
		s.tenants = newTenantLimiter(cfg.TenantQPS, cfg.TenantBurst)
	}
	store := tune.NewStore()
	if cfg.TuneStorePath != "" {
		loaded, err := tune.Load(cfg.TuneStorePath)
		if err != nil {
			cfg.Logger.Warn("tuning store rejected, starting fresh",
				"path", cfg.TuneStorePath, "error", err)
		} else if loaded.Len() > 0 {
			cfg.Logger.Info("tuning store loaded",
				"path", cfg.TuneStorePath, "entries", loaded.Len())
		}
		store = loaded
	}
	s.tuner = spec.NewTuner(store)
	s.exec.Tuner = s.tuner
	s.exec.Parallelism = cfg.GroupParallelism
	s.exec.PerPointWorlds = cfg.PerPointWorlds
	if cfg.WorldPoolRanks > 0 && !cfg.PerPointWorlds {
		s.exec.Pool = spec.NewWorldPool(spec.PoolConfig{
			MaxRanks: cfg.WorldPoolRanks,
			MaxIdle:  cfg.WorldPoolIdle,
		})
	}
	s.mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.rateLimit(s.handleRun)))
	s.mux.HandleFunc("POST /v1/price", s.instrument("/v1/price", s.rateLimit(s.handlePrice)))
	s.mux.HandleFunc("POST /v1/canon", s.instrument("/v1/canon", s.rateLimit(s.handleCanon)))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels the server's base context — leaders still simulating
// abort their worlds and report cancellation — and retires the warm
// world pool (its idle reaper goroutine included). Call after the HTTP
// host has stopped accepting requests; then drain the rank-worker
// reserve via mpi.DrainIdleWorkers.
func (s *Server) Close() {
	s.stop()
	s.tuner.Close()
	if s.cfg.TuneStorePath != "" {
		if err := s.tuner.Store().Save(s.cfg.TuneStorePath); err != nil {
			s.cfg.Logger.Error("persisting tuning store failed",
				"path", s.cfg.TuneStorePath, "error", err)
		} else {
			s.cfg.Logger.Info("tuning store persisted",
				"path", s.cfg.TuneStorePath, "entries", s.tuner.Store().Len())
		}
	}
	if s.exec.Pool != nil {
		s.exec.Pool.Close()
	}
}

// Stats reports (cacheHits, cacheMisses, coalesced) — consumed by the
// service-sweep bench harness and the smoke tests.
func (s *Server) Stats() (hits, misses, coalesced int64) { return s.met.snapshot() }

// PoolStats snapshots the warm world pool (zero value when pooling is
// disabled) — consumed by the service-sweep bench harness and tests.
func (s *Server) PoolStats() spec.PoolStats {
	if s.exec.Pool == nil {
		return spec.PoolStats{}
	}
	return s.exec.Pool.Stats()
}

// TuneStats snapshots the measured-policy tuning store's counters.
func (s *Server) TuneStats() tune.Stats { return s.tuner.Store().Stats() }

// DrainTuner blocks until the background measurement queue is empty —
// the warm-up hook tests and the bench harness use between a cold run
// and its warm rerun.
func (s *Server) DrainTuner() { s.tuner.Drain() }

// httpError is an error carrying the status code the handler should
// answer with.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// statusWriter remembers the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with latency/count metrics and a
// structured request log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		s.met.request(endpoint, sw.code, d)
		s.cfg.Logger.Debug("request",
			"endpoint", endpoint, "code", sw.code, "duration", d,
			"cache", sw.Header().Get("X-Cache"))
	}
}

// tenantName extracts the request's tenant identity: the X-Tenant
// header, or "default" when absent — anonymous clients share one
// bucket rather than bypassing the limiter.
func tenantName(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// rateLimit gates a query endpoint behind the per-tenant token
// bucket. A pass-through no-op when limiting is disabled. Rejections
// answer 429 with a Retry-After header (whole seconds, rounded up)
// so well-behaved clients can back off precisely; both outcomes feed
// the repro_tenant_requests_total metric.
func (s *Server) rateLimit(h http.HandlerFunc) http.HandlerFunc {
	if s.tenants == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := tenantName(r)
		ok, retry := s.tenants.allow(tenant, time.Now())
		s.met.tenant(tenant, ok)
		if !ok {
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, &httpError{http.StatusTooManyRequests,
				fmt.Errorf("server: tenant %q over its %g req/s rate limit, retry in %ds", tenant, s.cfg.TenantQPS, secs)})
			return
		}
		h(w, r)
	}
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

// errorBody is the JSON error envelope.
type errorBody struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// writeError maps err onto the JSON error envelope. Validation errors
// (anything from spec parsing) are 400; timeouts 504; cancellations
// 503; an *httpError carries its own code.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// readQuery strictly decodes the request body into a canonical Query
// and applies the service admission caps.
func (s *Server) readQuery(w http.ResponseWriter, r *http.Request) (*spec.Query, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, &httpError{http.StatusRequestEntityTooLarge, err}
	}
	q, err := spec.Parse(body)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err}
	}
	if err := s.admit(q); err != nil {
		return nil, err
	}
	return q, nil
}

// admit applies the service-level resource caps that spec's own
// validation deliberately leaves to this layer: world size (with a
// tighter bound for the goroutine engine, whose worlds cost one
// worker goroutine per rank) and total work across the ladder.
// Violations answer 413 — the query is well-formed, just bigger than
// this daemon accepts.
func (s *Server) admit(q *spec.Query) error {
	ranks := q.Topology.Ranks()
	if ranks > s.cfg.MaxRanks {
		return &httpError{http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: query declares %d ranks, above this server's %d-rank cap", ranks, s.cfg.MaxRanks)}
	}
	if q.Engine == sim.EngineGoroutine.String() && ranks > s.cfg.MaxGoroutineRanks {
		return &httpError{http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: goroutine-engine query declares %d ranks, above this server's %d-rank cap (the event engine accepts up to %d)",
				ranks, s.cfg.MaxGoroutineRanks, s.cfg.MaxRanks)}
	}
	if work := int64(ranks) * int64(len(q.Sizes)) * int64(q.Iters); work > s.cfg.MaxWork {
		return &httpError{http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: query demands %d rank-operations (ranks x sizes x iters), above this server's %d cap", work, s.cfg.MaxWork)}
	}
	return nil
}

// sweepClass reports whether the query competes for the sweep pool:
// long ladders and large worlds are the workloads that would otherwise
// occupy every slot.
func (s *Server) sweepClass(q *spec.Query) bool {
	return len(q.Sizes) >= s.cfg.SweepSizes || q.Topology.Ranks() >= s.cfg.SweepRanks
}

// acquire takes one slot from pool, honoring ctx while waiting.
func acquire(ctx context.Context, pool chan struct{}) error {
	select {
	case pool <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleRun is POST /v1/run: execute the query (or serve it from the
// cache / an identical in-flight execution) and return the
// spec.Result. The X-Cache response header reports which path answered
// (hit, miss, coalesced); the body is bit-identical on all three.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	q, err := s.readQuery(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	fp, err := q.Fingerprint()
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err})
		return
	}
	// Measured-policy results depend on the tuning store's contents as
	// well as the query, so their cache and coalescing key carries the
	// store generation: once the tuner learns a point, the next
	// identical request re-executes against the warmer store instead of
	// replaying a staler cached answer.
	if q.Tuning.Policy == "measured" {
		fp += "@g" + strconv.FormatUint(s.tuner.Store().Generation(), 10)
	}
	if res, ok := s.cache.get("run:" + fp); ok {
		s.met.cacheHits.Add(1)
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, res)
		return
	}
	call, leader := s.flight.join(fp)
	if !leader {
		s.met.coalesced.Add(1)
		select {
		case <-call.done:
		case <-r.Context().Done():
			writeError(w, r.Context().Err())
			return
		}
		if call.err != nil {
			writeError(w, call.err)
			return
		}
		w.Header().Set("X-Cache", "coalesced")
		writeJSON(w, http.StatusOK, call.val)
		return
	}

	s.met.cacheMiss.Add(1)
	res, err := s.lead(fp, call, q)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", "miss")
	writeJSON(w, http.StatusOK, res)
}

// lead executes the query as the flight leader. finish is guaranteed
// even on panic: net/http recovers handler panics, and a leader that
// never finished would park every future identical query forever — so
// a panic publishes an error to the followers before propagating. On
// success the result enters the cache before finish deregisters the
// flight, so a request arriving after the flight window hits the
// cache instead of becoming a fresh leader.
func (s *Server) lead(fp string, call *flightCall, q *spec.Query) (res *spec.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.flight.finish(fp, call, nil, fmt.Errorf("server: panic during execution: %v", p))
			panic(p)
		}
		if err == nil {
			s.cache.add("run:"+fp, res)
		}
		s.flight.finish(fp, call, res, err)
	}()
	return s.execute(q)
}

// execute runs the query under the worker pools and the configured
// timeout. The execution context descends from the server's base
// context, not the requester's: coalesced followers must receive the
// result even if the leader's client disconnects.
func (s *Server) execute(q *spec.Query) (*spec.Result, error) {
	pool, busy := s.points, &s.met.pointBusy
	if s.sweepClass(q) {
		pool, busy = s.sweeps, &s.met.sweepBusy
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
	defer cancel()
	if err := acquire(ctx, pool); err != nil {
		return nil, fmt.Errorf("server: waiting for a worker slot: %w", err)
	}
	busy.Add(1)
	defer func() { busy.Add(-1); <-pool }()
	return s.exec.RunContext(ctx, q)
}

// handlePrice is POST /v1/price: run the selection engine over the
// ladder without simulating. Cheap enough that it bypasses the worker
// pools; cached under its own key space.
func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	q, err := s.readQuery(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	fp, err := q.Fingerprint()
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err})
		return
	}
	if rep, ok := s.cache.get("price:" + fp); ok {
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, rep)
		return
	}
	rep, err := spec.Price(q)
	if err != nil {
		writeError(w, err)
		return
	}
	s.cache.add("price:"+fp, rep)
	w.Header().Set("X-Cache", "miss")
	writeJSON(w, http.StatusOK, rep)
}

// canonBody is the POST /v1/canon response: the canonical form and
// its fingerprint, without executing anything.
type canonBody struct {
	// Fingerprint is the hex SHA-256 of Canonical.
	Fingerprint string `json:"fingerprint"`
	// Canonical is the canonical JSON of the submitted query.
	Canonical json.RawMessage `json:"canonical"`
}

// handleCanon is POST /v1/canon: validate, canonicalize, fingerprint.
func (s *Server) handleCanon(w http.ResponseWriter, r *http.Request) {
	q, err := s.readQuery(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	canon, err := q.CanonicalJSON()
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err})
		return
	}
	fp, err := q.Fingerprint()
	if err != nil {
		writeError(w, &httpError{http.StatusBadRequest, err})
		return
	}
	writeJSON(w, http.StatusOK, canonBody{Fingerprint: fp, Canonical: canon})
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics is GET /metrics: Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.met.render(&b, s.cache.len(), mpi.IdleWorkers(), s.cfg.Workers, s.cfg.SweepWorkers, s.PoolStats(), s.TuneStats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, b.String()) //nolint:errcheck // client gone is the only failure
}
