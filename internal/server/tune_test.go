package server_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/spec"
)

// measuredBody is the measured-policy workload the daemon tests share:
// the congested allreduce ladder where the LogGP prior and the
// measured winners can disagree.
const measuredBody = `{"machine":"laptop","topology":{"nodes":4,"ppn":4},
	"collective":"allreduce","sizes":[1024,4096],"iters":2,
	"tuning":{"policy":"measured"},
	"noise":{"seed":1,"congestion":{"net":16}}}`

func newTunedServer(path string) *server.Server {
	return server.New(server.Config{
		Workers:       4,
		SweepWorkers:  1,
		Timeout:       30 * time.Second,
		TuneStorePath: path,
		Logger:        quietLogger(),
	})
}

// TestTuneStoreSharedAcrossDaemons is the daemon-level half of the PR
// 10 determinism satellite: one daemon warms and persists the tuning
// store on Close, then two fresh daemons pointed at the same store
// file must serve bit-identical measured-policy results over HTTP.
func TestTuneStoreSharedAcrossDaemons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")

	warm := newTunedServer(path)
	rec := do(t, warm, "POST", "/v1/run", measuredBody)
	if rec.Code != 200 {
		t.Fatalf("warm-up run: code %d: %s", rec.Code, rec.Body)
	}
	warm.DrainTuner()
	if st := warm.TuneStats(); st.Measured == 0 {
		t.Fatal("warm daemon measured nothing")
	}
	// The result cache key carries the store generation, so the
	// now-warm store must produce a fresh simulation, not replay the
	// cold run's cost fallback from cache.
	rec = do(t, warm, "POST", "/v1/run", measuredBody)
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("post-measurement rerun: X-Cache %q, want miss (stale-generation replay)", got)
	}
	warm.Close() // persists the store

	var results [2]spec.Result
	for d := range results {
		srv := newTunedServer(path)
		rec := do(t, srv, "POST", "/v1/run", measuredBody)
		if rec.Code != 200 {
			t.Fatalf("daemon %d: code %d: %s", d, rec.Code, rec.Body)
		}
		if err := jsonUnmarshalStrict(rec.Body.Bytes(), &results[d]); err != nil {
			t.Fatalf("daemon %d: %v", d, err)
		}
		if st := srv.TuneStats(); st.Hits == 0 {
			t.Errorf("daemon %d never hit the shared store", d)
		}
		srv.Close()
	}
	if len(results[0].Points) == 0 {
		t.Fatal("no points returned")
	}
	for i := range results[0].Points {
		if results[0].Points[i].VirtualPs != results[1].Points[i].VirtualPs {
			t.Errorf("point %d: daemon A %d ps, daemon B %d ps — shared store must pin picks",
				i, results[0].Points[i].VirtualPs, results[1].Points[i].VirtualPs)
		}
	}
}

// TestMetricsTuneGauges: the tuning store's counters surface on
// /metrics after a measured-policy run.
func TestMetricsTuneGauges(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	if rec := do(t, srv, "POST", "/v1/run", measuredBody); rec.Code != 200 {
		t.Fatalf("run: code %d: %s", rec.Code, rec.Body)
	}
	srv.DrainTuner()

	body := do(t, srv, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"repro_tune_store_entries",
		"repro_tune_store_generation",
		"repro_tune_hits_total",
		"repro_tune_misses_total",
		"repro_tune_hit_ratio",
		"repro_tune_measurements_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(body, "repro_tune_measurements_total 2") {
		t.Errorf("want 2 measurements (one per ladder size) on /metrics, got:\n%s",
			grepLines(body, "repro_tune_"))
	}
}

// grepLines returns the lines of s containing substr, for focused
// failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
