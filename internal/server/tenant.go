package server

import (
	"math"
	"sync"
	"time"
)

// maxTenantBuckets bounds the limiter's bucket map. A client inventing
// a fresh X-Tenant value per request would otherwise grow the map
// without bound; past the cap, fully-refilled (idle) buckets are
// pruned, which cannot hurt a well-behaved tenant — a full bucket
// rebuilt from scratch admits exactly the same traffic.
const maxTenantBuckets = 4096

// tenantLimiter is a per-tenant token bucket: each tenant (the
// X-Tenant request header, "default" when absent) accrues qps tokens
// per second up to burst, and each admitted request spends one. It is
// the service's fairness layer — one chatty tenant exhausts its own
// bucket, not the worker pools every tenant shares.
type tenantLimiter struct {
	qps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tenantBucket
}

// tenantBucket is one tenant's refillable token balance.
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// newTenantLimiter builds a limiter admitting qps requests per second
// per tenant with the given burst capacity (minimum 1 token).
func newTenantLimiter(qps float64, burst int) *tenantLimiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tenantLimiter{
		qps:     qps,
		burst:   b,
		buckets: make(map[string]*tenantBucket),
	}
}

// allow spends one token from tenant's bucket. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the Retry-After the handler should answer with.
func (l *tenantLimiter) allow(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenantBuckets {
			l.pruneLocked(now)
		}
		b = &tenantBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.qps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.qps * float64(time.Second))
	return false, wait
}

// pruneLocked drops buckets that have refilled completely — tenants
// idle long enough that forgetting them changes nothing. Caller holds
// l.mu.
func (l *tenantLimiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.qps >= l.burst {
			delete(l.buckets, k)
		}
	}
}
