package summa

import (
	"fmt"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func worldFor(t *testing.T, nodeSizes []int, real bool) *mpi.World {
	t.Helper()
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		t.Fatal(err)
	}
	var opts []mpi.Option
	if real {
		opts = append(opts, mpi.WithRealData())
	}
	w, err := mpi.NewWorld(sim.HazelHenCray(), topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSummaVerifyPure(t *testing.T) {
	for _, tc := range []struct {
		grid  int
		shape []int
	}{
		{2, []int{4}},
		{3, []int{9}},
		{4, []int{8, 8}},
	} {
		t.Run(fmt.Sprintf("grid%d", tc.grid), func(t *testing.T) {
			w := worldFor(t, tc.shape, true)
			res, err := Run(w, Config{GridDim: tc.grid, BlockDim: 6, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Error("pure SUMMA result not verified")
			}
			if res.Makespan <= 0 {
				t.Error("no virtual time elapsed")
			}
		})
	}
}

func TestSummaVerifyHybrid(t *testing.T) {
	for _, mode := range []hybrid.SyncMode{hybrid.SyncBarrier, hybrid.SyncP2P, hybrid.SyncSharedFlags} {
		for _, tc := range []struct {
			grid  int
			shape []int
		}{
			{2, []int{4}},
			{4, []int{8, 8}},
			{4, []int{6, 6, 4}},
		} {
			t.Run(fmt.Sprintf("%v/grid%d", mode, tc.grid), func(t *testing.T) {
				w := worldFor(t, tc.shape, true)
				res, err := Run(w, Config{GridDim: tc.grid, BlockDim: 5, Hybrid: true, Verify: true, Sync: mode})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Error("hybrid SUMMA result not verified")
				}
			})
		}
	}
}

func TestSummaPureHybridSameProduct(t *testing.T) {
	// Both flavors must compute the same (correct) product — the
	// verification already pins them to the serial reference; this
	// locks in that both pass on an irregular topology too.
	w := worldFor(t, []int{5, 4}, true)
	for _, hy := range []bool{false, true} {
		res, err := Run(w, Config{GridDim: 3, BlockDim: 4, Hybrid: hy, Verify: true})
		if err != nil {
			t.Fatalf("hybrid=%v: %v", hy, err)
		}
		if !res.Verified {
			t.Errorf("hybrid=%v: not verified", hy)
		}
	}
}

func TestSummaConfigValidation(t *testing.T) {
	w := worldFor(t, []int{4}, false)
	if _, err := Run(w, Config{GridDim: 3, BlockDim: 4}); err == nil {
		t.Error("grid/world mismatch accepted")
	}
	if _, err := Run(w, Config{GridDim: 2, BlockDim: 0}); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := Run(w, Config{GridDim: 0, BlockDim: 4}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := Run(w, Config{GridDim: 2, BlockDim: 4, Verify: true}); err == nil {
		t.Error("verify on size-only world accepted")
	}
}

func TestSummaHybridWinsOnOneNode(t *testing.T) {
	// The Fig. 11a story: tiny blocks, everything on one node — the
	// hybrid version should win by a large factor (paper: up to ~5x).
	w := worldFor(t, []int{16}, false)
	pure, err := Run(w, Config{GridDim: 4, BlockDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Run(w, Config{GridDim: 4, BlockDim: 8, Hybrid: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(pure.Makespan) / float64(hy.Makespan)
	if ratio <= 1.5 {
		t.Errorf("single-node 8x8 ratio = %.2f, want clearly > 1.5 (pure %v, hy %v)",
			ratio, pure.Makespan, hy.Makespan)
	}
}

func TestSummaRatioShrinksWithBlockSize(t *testing.T) {
	// Fig. 11a-d: the hybrid advantage shrinks as compute grows with
	// the block size.
	w := worldFor(t, []int{8, 8}, false)
	ratio := func(b int) float64 {
		pure, err := Run(w, Config{GridDim: 4, BlockDim: b})
		if err != nil {
			t.Fatal(err)
		}
		hy, err := Run(w, Config{GridDim: 4, BlockDim: b, Hybrid: true})
		if err != nil {
			t.Fatal(err)
		}
		return float64(pure.Makespan) / float64(hy.Makespan)
	}
	small := ratio(8)
	large := ratio(256)
	if small <= large {
		t.Errorf("ratio should shrink with block size: 8x8 %.3f vs 256x256 %.3f", small, large)
	}
	if large < 1.0 {
		t.Errorf("hybrid should not lose at 256x256: ratio %.3f", large)
	}
}

func TestSummaDeterministic(t *testing.T) {
	w := worldFor(t, []int{5, 4}, false)
	a, err := Run(w, Config{GridDim: 3, BlockDim: 32, Hybrid: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, Config{GridDim: 3, BlockDim: 32, Hybrid: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
}
