// Package summa implements SUMMA (Scalable Universal Matrix
// Multiplication Algorithm, van de Geijn & Watts [32]) on the simulated
// cluster, in the two flavors the paper benchmarks in Fig. 11:
//
//   - Ori_SUMMA: the pure-MPI version, whose per-iteration row and
//     column broadcasts give every rank its own copy of the travelling
//     panels (coll.Bcast);
//   - Hy_SUMMA: the hybrid MPI+MPI version, which broadcasts into one
//     shared panel per node (hybrid.Bcaster) so on-node ranks read the
//     single copy directly.
//
// The grid is square (sqrt(P) x sqrt(P)), each rank owns b x b blocks of
// A, B and C, and iteration k broadcasts A's column-k panel along rows
// and B's row-k panel along columns before the local rank-b update —
// exactly the structure of Sect. 5.2.1.
package summa

import (
	"fmt"
	"math"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/la"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Config describes one SUMMA run.
type Config struct {
	// GridDim is sqrt(P): the process grid is GridDim x GridDim.
	GridDim int
	// BlockDim is b: each rank owns b x b blocks (the per-core matrix
	// size of Fig. 11's panels).
	BlockDim int
	// Hybrid selects Hy_SUMMA (hybrid broadcasts) over Ori_SUMMA.
	Hybrid bool
	// Verify runs with real data and checks C = A x B against a
	// serial product on rank 0 (small configurations only).
	Verify bool
	// Sync selects the hybrid synchronization flavor (Hybrid only).
	Sync hybrid.SyncMode
}

// Result carries the timing (virtual) and verification outcome.
type Result struct {
	Makespan sim.Time // max rank clock over the whole multiplication
	Verified bool
}

func (cfg Config) validate(worldSize int) error {
	p := cfg.GridDim * cfg.GridDim
	switch {
	case cfg.GridDim <= 0:
		return fmt.Errorf("summa: grid dimension %d", cfg.GridDim)
	case cfg.BlockDim <= 0:
		return fmt.Errorf("summa: block dimension %d", cfg.BlockDim)
	case p != worldSize:
		return fmt.Errorf("summa: grid %dx%d needs %d ranks, world has %d",
			cfg.GridDim, cfg.GridDim, p, worldSize)
	}
	return nil
}

// Run executes SUMMA on the world and returns the virtual makespan.
func Run(w *mpi.World, cfg Config) (Result, error) {
	if err := cfg.validate(w.Size()); err != nil {
		return Result{}, err
	}
	if cfg.Verify && !w.RealData() {
		return Result{}, fmt.Errorf("summa: Verify needs a world with real data (mpi.WithRealData)")
	}
	w.ResetClocks()
	verified := make([]bool, w.Size())
	err := w.Run(func(p *mpi.Proc) error {
		ok, err := runRank(p, cfg)
		verified[p.Rank()] = ok
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Makespan: w.MaxClock(), Verified: cfg.Verify && verified[0]}, nil
}

// runRank is the per-rank SUMMA body; it returns whether verification
// (rank 0 only) succeeded.
func runRank(p *mpi.Proc, cfg Config) (bool, error) {
	dim, b := cfg.GridDim, cfg.BlockDim
	world := p.CommWorld()
	myRow := world.Rank() / dim
	myCol := world.Rank() % dim

	rowComm, err := world.Split(myRow, myCol)
	if err != nil {
		return false, err
	}
	colComm, err := world.Split(myCol+dim, myRow) // offset colors to taste
	if err != nil {
		return false, err
	}

	blockBytes := 8 * b * b
	var aBlock, bBlock, cBlock *la.Mat
	if cfg.Verify {
		aBlock, bBlock = localBlocks(p.Rank(), dim, b)
		cBlock = la.NewMat(b, b)
	}

	if cfg.Hybrid {
		return runHybrid(p, cfg, rowComm, colComm, aBlock, bBlock, cBlock, blockBytes, myRow, myCol)
	}
	return runPure(p, cfg, rowComm, colComm, aBlock, bBlock, cBlock, blockBytes, myRow, myCol)
}

// runPure is Ori_SUMMA: plain MPI_Bcast on row and column communicators.
func runPure(p *mpi.Proc, cfg Config, rowComm, colComm *mpi.Comm,
	aBlock, bBlock, cBlock *la.Mat, blockBytes, myRow, myCol int) (bool, error) {

	dim, b := cfg.GridDim, cfg.BlockDim
	aPanel := p.World().NewBuf(blockBytes)
	bPanel := p.World().NewBuf(blockBytes)

	for k := 0; k < dim; k++ {
		// Row broadcast: owner of column k ships its A block.
		if myCol == k {
			packMat(aPanel, aBlock)
		}
		if err := coll.Bcast(rowComm, aPanel, k); err != nil {
			return false, fmt.Errorf("summa: row bcast k=%d: %w", k, err)
		}
		// Column broadcast: owner of row k ships its B block.
		if myRow == k {
			packMat(bPanel, bBlock)
		}
		if err := coll.Bcast(colComm, bPanel, k); err != nil {
			return false, fmt.Errorf("summa: col bcast k=%d: %w", k, err)
		}
		if err := localUpdate(p, cfg, cBlock, aPanel, bPanel, b); err != nil {
			return false, err
		}
	}
	return verify(p, cfg, cBlock)
}

// runHybrid is Hy_SUMMA: hybrid broadcasts into one shared panel per
// node on each communicator. Two alternating Bcasters per communicator
// (double buffering) make the repeated epochs safe without extra read
// fences: the Release synchronization of broadcast k+1 orders every
// on-node read of panel k before the k+2 root overwrites that buffer.
func runHybrid(p *mpi.Proc, cfg Config, rowComm, colComm *mpi.Comm,
	aBlock, bBlock, cBlock *la.Mat, blockBytes, myRow, myCol int) (bool, error) {

	dim, b := cfg.GridDim, cfg.BlockDim
	rowCtx, err := hybrid.New(rowComm, hybrid.WithSync(cfg.Sync))
	if err != nil {
		return false, err
	}
	colCtx, err := hybrid.New(colComm, hybrid.WithSync(cfg.Sync))
	if err != nil {
		return false, err
	}
	var rowB, colB [2]*hybrid.Bcaster
	for i := 0; i < 2; i++ {
		if rowB[i], err = rowCtx.NewBcaster(blockBytes); err != nil {
			return false, err
		}
		if colB[i], err = colCtx.NewBcaster(blockBytes); err != nil {
			return false, err
		}
	}

	for k := 0; k < dim; k++ {
		rb, cb := rowB[k%2], colB[k%2]
		if myCol == k {
			packMat(rb.Buffer(), aBlock)
		}
		if err := rb.Bcast(k); err != nil {
			return false, fmt.Errorf("summa: hybrid row bcast k=%d: %w", k, err)
		}
		if myRow == k {
			packMat(cb.Buffer(), bBlock)
		}
		if err := cb.Bcast(k); err != nil {
			return false, fmt.Errorf("summa: hybrid col bcast k=%d: %w", k, err)
		}
		// Ranks compute straight out of the node-shared panels —
		// the "parallel computation without any data movement in
		// between" of Sect. 5.2.1.
		if err := localUpdate(p, cfg, cBlock, rb.Buffer(), cb.Buffer(), b); err != nil {
			return false, err
		}
		// With the barrier flavor, the Release of broadcast k+1 is
		// a full node rendezvous, which (with double buffering)
		// already orders this iteration's reads before the k+2
		// overwrite. The pairwise flavors release children
		// independently, so the epoch fence must be explicit.
		if cfg.Sync != hybrid.SyncBarrier {
			if err := rb.ReadFence(); err != nil {
				return false, err
			}
			if err := cb.ReadFence(); err != nil {
				return false, err
			}
		}
	}
	return verify(p, cfg, cBlock)
}

// localUpdate performs (or models) C += Apanel x Bpanel.
func localUpdate(p *mpi.Proc, cfg Config, cBlock *la.Mat, aPanel, bPanel mpi.Buf, b int) error {
	p.Compute(la.GemmFlops(b, b, b))
	if !cfg.Verify {
		return nil
	}
	a := unpackMat(aPanel, b)
	bm := unpackMat(bPanel, b)
	return la.Gemm(cBlock, a, bm)
}

// localBlocks builds deterministic per-rank A and B blocks so that the
// verification product is reproducible.
func localBlocks(rank, dim, b int) (*la.Mat, *la.Mat) {
	a := la.NewMat(b, b)
	bm := la.NewMat(b, b)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			// Smooth, rank-dependent values; kept small so the
			// products stay well-conditioned.
			a.Set(i, j, math.Sin(float64(rank*31+i*7+j))*0.5)
			bm.Set(i, j, math.Cos(float64(rank*17+i*3+j*5))*0.5)
		}
	}
	return a, bm
}

// verify gathers C at rank 0 and compares against a serial product.
func verify(p *mpi.Proc, cfg Config, cBlock *la.Mat) (bool, error) {
	if !cfg.Verify {
		return false, nil
	}
	dim, b := cfg.GridDim, cfg.BlockDim
	world := p.CommWorld()
	blockBytes := 8 * b * b
	recv := mpi.Buf{}
	if world.Rank() == 0 {
		recv = mpi.Bytes(make([]byte, blockBytes*world.Size()))
	}
	send := mpi.Bytes(make([]byte, blockBytes))
	packMat(send, cBlock)
	if err := coll.Gather(world, send, recv, blockBytes, 0); err != nil {
		return false, err
	}
	if world.Rank() != 0 {
		return true, nil
	}

	// Assemble the distributed operands and the gathered C, then
	// check against a serial multiplication.
	n := dim * b
	A, B := la.NewMat(n, n), la.NewMat(n, n)
	C := la.NewMat(n, n)
	for r := 0; r < world.Size(); r++ {
		pr, pc := r/dim, r%dim
		ab, bb := localBlocks(r, dim, b)
		cb := unpackMat(recv.Slice(r*blockBytes, blockBytes), b)
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				A.Set(pr*b+i, pc*b+j, ab.At(i, j))
				B.Set(pr*b+i, pc*b+j, bb.At(i, j))
				C.Set(pr*b+i, pc*b+j, cb.At(i, j))
			}
		}
	}
	want := la.NewMat(n, n)
	if err := la.Gemm(want, A, B); err != nil {
		return false, err
	}
	for i := range want.Data {
		if math.Abs(want.Data[i]-C.Data[i]) > 1e-9*(1+math.Abs(want.Data[i])) {
			return false, fmt.Errorf("summa: verification failed at element %d: got %g, want %g",
				i, C.Data[i], want.Data[i])
		}
	}
	return true, nil
}

func packMat(dst mpi.Buf, m *la.Mat) {
	if m == nil || !dst.Real() {
		return
	}
	dst.PutFloat64s(0, m.Data)
}

func unpackMat(src mpi.Buf, b int) *la.Mat {
	m := la.NewMat(b, b)
	if src.Real() {
		src.CopyFloat64s(m.Data, 0)
	}
	return m
}
