// Package tune is the persisted tuning store behind the selection
// engine's measured policy: a versioned cache mapping selection points
// — (collective, communicator size, message size, hop class, topology
// fingerprint, noise profile) — to the algorithm whose raced virtual
// time won there.
//
// The store itself knows nothing about collectives or simulation; it
// is a concurrency-safe map with a schema-versioned on-disk form (the
// JSON-lines format documented in TUNING.md), an atomic
// temp-file+rename save, a generation counter bumped on every insert
// (the world pool keys pooled worlds by it), and a singleflight claim
// set so each missing point is measured exactly once. internal/spec
// owns the measurement side (spec.Tuner); internal/coll consumes
// lookups through the closure fields of coll.Tuning.
//
// Loading is strict: a file whose header, schema version, or any line
// fails validation is rejected as a whole and the caller starts from a
// fresh store — a hostile or stale store file can cost warm-up time,
// never correctness (FuzzTuneStoreLoad pins "rejected, started fresh,
// no panic").
package tune

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// FormatName is the format discriminator carried by the store
	// file's header line.
	FormatName = "repro-tune"
	// FormatVersion is the on-disk schema version this package reads
	// and writes. Files carrying any other version are rejected and
	// the store starts fresh.
	FormatVersion = 1
)

// ErrRejected wraps every load failure past "file does not exist":
// corrupt lines, wrong format name, stale schema version, duplicate
// keys. Load still returns a usable fresh store alongside it.
var ErrRejected = errors.New("tune: store file rejected")

// Key identifies one selection point. All fields are plain strings and
// integers so the struct is comparable (it is the map key) and its
// JSON form is stable.
type Key struct {
	// Collective is the collective family name (coll.Collective.String).
	Collective string `json:"collective"`
	// CommSize is the communicator size of the call.
	CommSize int `json:"comm_size"`
	// Bytes is the selection environment's message size (the per-rank
	// block for allgather/alltoall, the total payload otherwise).
	Bytes int `json:"bytes"`
	// Count is the element count of the reducing collectives (0 for
	// the others).
	Count int `json:"count,omitempty"`
	// Hop is the hop-class name the call prices with ("shm", "net", a
	// declared level class).
	Hop string `json:"hop"`
	// TopoFP is the topology fingerprint (sim.Topology.Fingerprint)
	// rendered as 16 hex digits.
	TopoFP string `json:"topo_fp"`
	// Noise is the canonical JSON of the query's noise block, empty
	// for a clean world. Seeds are part of it: a measurement under
	// seed 1 does not answer a what-if under seed 2.
	Noise string `json:"noise,omitempty"`
}

// valid reports whether a key deserialized from disk is structurally
// sound. Unknown collective or hop names are allowed — they simply
// never match a live lookup — but empty or negative fields mean the
// file is damaged.
func (k Key) valid() bool {
	return k.Collective != "" && k.CommSize >= 1 && k.Bytes >= 0 &&
		k.Count >= 0 && k.Hop != "" && k.TopoFP != ""
}

// less orders keys for the deterministic on-disk rendering (Save
// sorts, so save→load→save is byte-stable).
func (k Key) less(o Key) bool {
	if k.Collective != o.Collective {
		return k.Collective < o.Collective
	}
	if k.TopoFP != o.TopoFP {
		return k.TopoFP < o.TopoFP
	}
	if k.CommSize != o.CommSize {
		return k.CommSize < o.CommSize
	}
	if k.Bytes != o.Bytes {
		return k.Bytes < o.Bytes
	}
	if k.Count != o.Count {
		return k.Count < o.Count
	}
	if k.Hop != o.Hop {
		return k.Hop < o.Hop
	}
	return k.Noise < o.Noise
}

// Entry is a measured winner: the algorithm to serve for the key's
// point and the raced virtual times that crowned it.
type Entry struct {
	// Algorithm is the winning registered algorithm name.
	Algorithm string `json:"algorithm"`
	// WinnerPs is the winner's measured virtual time in picoseconds.
	WinnerPs int64 `json:"winner_ps"`
	// RacedPs maps every raced algorithm (winner included) to its
	// measured virtual time — kept for ablations and debugging.
	RacedPs map[string]int64 `json:"raced_ps,omitempty"`
}

// valid mirrors Key.valid for entries read from disk.
func (e Entry) valid() bool {
	if e.Algorithm == "" || e.WinnerPs < 0 {
		return false
	}
	for name, ps := range e.RacedPs {
		if name == "" || ps < 0 {
			return false
		}
	}
	return true
}

// header is the store file's first line.
type header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// record is one entry line of the store file.
type record struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// Store is the in-memory tuning cache. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	entries map[Key]Entry
	pending map[Key]struct{}
	gen     uint64

	hits     atomic.Int64
	misses   atomic.Int64
	measured atomic.Int64
}

// NewStore returns an empty store at generation 0.
func NewStore() *Store {
	return &Store{entries: map[Key]Entry{}, pending: map[Key]struct{}{}}
}

// Load reads a store file. A missing file is not an error: Load
// returns a fresh empty store and a nil error (first boot). Any other
// failure — unreadable file, bad header, stale schema version, corrupt
// or duplicate lines — also returns a usable fresh store, plus an
// error wrapping ErrRejected describing what was wrong ("rejected,
// started fresh"). Load never panics on hostile input.
func Load(path string) (*Store, error) {
	s := NewStore()
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return s, nil
		}
		return s, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	entries, err := decode(data)
	if err != nil {
		return s, fmt.Errorf("%w: %s: %v", ErrRejected, path, err)
	}
	s.entries = entries
	return s, nil
}

// maxLine bounds one store line; a longer line means the file is not
// ours.
const maxLine = 1 << 20

// decode parses the versioned JSON-lines body. Strict: unknown fields,
// duplicate keys, invalid values and trailing garbage all reject the
// whole file.
func decode(data []byte) (map[Key]Entry, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("empty file (missing header)")
	}
	var h header
	if err := strictUnmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("header: %v", err)
	}
	if h.Format != FormatName {
		return nil, fmt.Errorf("format %q, want %q", h.Format, FormatName)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("schema version %d, want %d", h.Version, FormatVersion)
	}
	entries := map[Key]Entry{}
	line := 1
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			return nil, fmt.Errorf("line %d: blank line", line)
		}
		var r record
		if err := strictUnmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if !r.Key.valid() || !r.Entry.valid() {
			return nil, fmt.Errorf("line %d: invalid record", line)
		}
		if _, dup := entries[r.Key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key", line)
		}
		entries[r.Key] = r.Entry
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// strictUnmarshal is json.Unmarshal with unknown fields rejected and
// trailing tokens refused.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data")
	}
	return nil
}

// Save atomically rewrites the store file: the rendering is written to
// a temp file in the destination directory and renamed over the path,
// so readers never observe a torn file and the last concurrent writer
// wins with a complete store (the pinned concurrent-writer behavior).
// The rendering is deterministic — header line, then entries in sorted
// key order — so load→save round-trips are byte-stable.
func (s *Store) Save(path string) error {
	body, err := s.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("tune: save: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(body); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tune: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tune: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tune: save: %w", err)
	}
	return nil
}

// Encode renders the store's canonical on-disk form (what Save
// writes): the versioned header line followed by one JSON record per
// entry in sorted key order, newline-terminated.
func (s *Store) Encode() ([]byte, error) {
	s.mu.Lock()
	recs := make([]record, 0, len(s.entries))
	for k, e := range s.entries {
		recs = append(recs, record{Key: k, Entry: e})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key.less(recs[j].Key) })
	var b strings.Builder
	hdr, err := json.Marshal(header{Format: FormatName, Version: FormatVersion})
	if err != nil {
		return nil, err
	}
	b.Write(hdr)
	b.WriteByte('\n')
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// Lookup returns the cached winner for a key and counts the hit or
// miss.
func (s *Store) Lookup(k Key) (Entry, bool) {
	s.mu.Lock()
	e, ok := s.entries[k]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return e, ok
}

// Put records a measured winner, releases any measurement claim on the
// key, bumps the generation and the measurement counter.
func (s *Store) Put(k Key, e Entry) {
	s.mu.Lock()
	delete(s.pending, k)
	s.entries[k] = e
	s.gen++
	s.mu.Unlock()
	s.measured.Add(1)
}

// Claim reserves a key for measurement. It returns false — measure
// nothing — when the key is already cached or another measurement of
// it is in flight: the singleflight guarantee that each point is
// measured exactly once. A successful claim must be resolved by Put or
// Release.
func (s *Store) Claim(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return false
	}
	if _, ok := s.pending[k]; ok {
		return false
	}
	s.pending[k] = struct{}{}
	return true
}

// Release abandons a claim without recording a winner (a failed
// measurement); a later miss may claim the key again.
func (s *Store) Release(k Key) {
	s.mu.Lock()
	delete(s.pending, k)
	s.mu.Unlock()
}

// Len returns the number of cached points.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Generation returns the store's insert counter. It increases on every
// Put; the world pool includes it in its shape key so pooled worlds
// built against an older snapshot are not reused after the store
// learned something new.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Stats is a consistent snapshot of the store's counters for /metrics.
type Stats struct {
	// Entries is the number of cached points.
	Entries int
	// Generation is the insert counter.
	Generation uint64
	// Hits and Misses count Lookup outcomes (across Store and every
	// Snapshot).
	Hits, Misses int64
	// Measured counts winners recorded by Put.
	Measured int64
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n, gen := len(s.entries), s.gen
	s.mu.Unlock()
	return Stats{
		Entries:    n,
		Generation: gen,
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Measured:   s.measured.Load(),
	}
}

// Each calls fn for every cached point in sorted key order (the Save
// order). It operates on a copy, so fn may call back into the store.
func (s *Store) Each(fn func(Key, Entry)) {
	s.mu.Lock()
	recs := make([]record, 0, len(s.entries))
	for k, e := range s.entries {
		recs = append(recs, record{Key: k, Entry: e})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key.less(recs[j].Key) })
	for _, r := range recs {
		fn(r.Key, r.Entry)
	}
}

// Snapshot is an immutable view of the store's entries at one
// generation. A Run resolves every selection through one snapshot so
// its picks cannot shift mid-run while the background tuner learns;
// hit/miss counts still flow to the parent store.
type Snapshot struct {
	entries map[Key]Entry
	gen     uint64
	hits    *atomic.Int64
	misses  *atomic.Int64
}

// Snapshot captures the current entries and generation.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	m := make(map[Key]Entry, len(s.entries))
	for k, e := range s.entries {
		m[k] = e
	}
	gen := s.gen
	s.mu.Unlock()
	return &Snapshot{entries: m, gen: gen, hits: &s.hits, misses: &s.misses}
}

// Lookup returns the snapshot's cached winner for a key, counting the
// hit or miss on the parent store.
func (sn *Snapshot) Lookup(k Key) (Entry, bool) {
	e, ok := sn.entries[k]
	if ok {
		sn.hits.Add(1)
	} else {
		sn.misses.Add(1)
	}
	return e, ok
}

// Generation returns the generation the snapshot was taken at.
func (sn *Snapshot) Generation() uint64 { return sn.gen }
