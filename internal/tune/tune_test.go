package tune

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func sampleKey(i int) Key {
	return Key{
		Collective: "allreduce",
		CommSize:   64,
		Bytes:      1024 << i,
		Count:      128 << i,
		Hop:        "net",
		TopoFP:     "00c0ffee00c0ffee",
		Noise:      `{"seed":1,"congestion":{"net":16}}`,
	}
}

func sampleStore(n int) *Store {
	s := NewStore()
	for i := 0; i < n; i++ {
		s.Put(sampleKey(i), Entry{
			Algorithm: "rabenseifner",
			WinnerPs:  int64(1000 + i),
			RacedPs:   map[string]int64{"recdbl": int64(2000 + i), "rabenseifner": int64(1000 + i)},
		})
	}
	return s
}

// TestRoundTripByteStable: save→load→save reproduces the file byte for
// byte, and the loaded store serves every entry.
func TestRoundTripByteStable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s := sampleStore(5)
	if err := s.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Len() != 5 {
		t.Fatalf("loaded %d entries, want 5", loaded.Len())
	}
	for i := 0; i < 5; i++ {
		e, ok := loaded.Lookup(sampleKey(i))
		if !ok || e.Algorithm != "rabenseifner" || e.WinnerPs != int64(1000+i) {
			t.Fatalf("entry %d: got %+v ok=%v", i, e, ok)
		}
		if e.RacedPs["recdbl"] != int64(2000+i) {
			t.Fatalf("entry %d raced: %+v", i, e.RacedPs)
		}
	}
	if err := loaded.Save(path); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-stable:\n-- first --\n%s\n-- second --\n%s", first, second)
	}
}

// TestLoadMissingFile: first boot is not an error.
func TestLoadMissingFile(t *testing.T) {
	s, err := Load(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatalf("missing file must load fresh without error, got %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("fresh store not empty: %d", s.Len())
	}
}

// TestLoadRejections: every flavor of damage is rejected as a whole
// (ErrRejected) and still yields a usable fresh store.
func TestLoadRejections(t *testing.T) {
	good := func() string {
		b, err := sampleStore(1).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}()
	lines := func(s string) []string {
		var out []string
		for _, l := range bytes.Split([]byte(s), []byte("\n")) {
			if len(l) > 0 {
				out = append(out, string(l))
			}
		}
		return out
	}(good)
	if len(lines) != 2 {
		t.Fatalf("sample store rendered %d lines, want 2", len(lines))
	}
	cases := map[string]string{
		"empty file":       "",
		"garbage header":   "not json\n",
		"wrong format":     `{"format":"other","version":1}` + "\n",
		"stale version":    `{"format":"repro-tune","version":99}` + "\n" + lines[1] + "\n",
		"future version":   `{"format":"repro-tune","version":2}` + "\n",
		"unknown field":    lines[0] + "\n" + `{"key":{"collective":"x","comm_size":1,"bytes":0,"hop":"net","topo_fp":"f"},"entry":{"algorithm":"a","winner_ps":1},"extra":1}` + "\n",
		"corrupt line":     lines[0] + "\n{half a record\n",
		"blank body line":  lines[0] + "\n\n" + lines[1] + "\n",
		"duplicate key":    lines[0] + "\n" + lines[1] + "\n" + lines[1] + "\n",
		"negative winner":  lines[0] + "\n" + `{"key":{"collective":"x","comm_size":1,"bytes":0,"hop":"net","topo_fp":"f"},"entry":{"algorithm":"a","winner_ps":-5}}` + "\n",
		"empty collective": lines[0] + "\n" + `{"key":{"collective":"","comm_size":1,"bytes":0,"hop":"net","topo_fp":"f"},"entry":{"algorithm":"a","winner_ps":1}}` + "\n",
		"trailing data":    lines[0] + "{}\n",
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "store.jsonl")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Load(path)
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("want ErrRejected, got %v", err)
			}
			if s == nil || s.Len() != 0 {
				t.Fatalf("rejected load must still return a fresh store, got %v", s)
			}
			// The fresh store must be fully usable.
			s.Put(sampleKey(0), Entry{Algorithm: "recdbl", WinnerPs: 1})
			if _, ok := s.Lookup(sampleKey(0)); !ok {
				t.Fatal("fresh store after rejection not usable")
			}
		})
	}
}

// TestConcurrentWriters: concurrent Saves to one path never tear the
// file — the temp+rename discipline means the survivor is exactly one
// writer's complete rendering.
func TestConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	a, b := sampleStore(3), sampleStore(7)
	encA, _ := a.Encode()
	encB, _ := b.Encode()
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(2)
		go func() { defer wg.Done(); _ = a.Save(path) }()
		go func() { defer wg.Done(); _ = b.Save(path) }()
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, encA) && !bytes.Equal(got, encB) {
		t.Fatalf("file is neither writer's rendering (torn write?):\n%s", got)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("file after concurrent writes does not load: %v", err)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestClaimSingleflight pins the exactly-once measurement contract:
// one claim per key until resolved, cached keys unclaimable.
func TestClaimSingleflight(t *testing.T) {
	s := NewStore()
	k := sampleKey(0)
	if !s.Claim(k) {
		t.Fatal("first claim refused")
	}
	if s.Claim(k) {
		t.Fatal("double claim granted")
	}
	s.Release(k)
	if !s.Claim(k) {
		t.Fatal("claim after release refused")
	}
	s.Put(k, Entry{Algorithm: "recdbl", WinnerPs: 1})
	if s.Claim(k) {
		t.Fatal("claim granted for cached key")
	}
	// And concurrently: exactly one of N claimants wins.
	k2 := sampleKey(1)
	var wg sync.WaitGroup
	var wins int64
	var mu sync.Mutex
	for range 32 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.Claim(k2) {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d concurrent claims won, want exactly 1", wins)
	}
}

// TestSnapshotImmutable: a snapshot keeps serving its generation's
// view while the store learns, and the generation counter moves.
func TestSnapshotImmutable(t *testing.T) {
	s := sampleStore(1)
	snap := s.Snapshot()
	if snap.Generation() != 1 {
		t.Fatalf("generation %d, want 1", snap.Generation())
	}
	k := sampleKey(1)
	s.Put(k, Entry{Algorithm: "recdbl", WinnerPs: 7})
	if _, ok := snap.Lookup(k); ok {
		t.Fatal("snapshot sees a Put made after it was taken")
	}
	if _, ok := s.Lookup(k); !ok {
		t.Fatal("store lost the Put")
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation %d after second Put, want 2", g)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Measured != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("snapshot lookups must count on the parent store: %+v", st)
	}
}

// TestEachSorted: Each visits entries in the deterministic Save order.
func TestEachSorted(t *testing.T) {
	s := sampleStore(4)
	var prev *Key
	n := 0
	s.Each(func(k Key, e Entry) {
		n++
		if prev != nil && !prev.less(k) {
			t.Fatalf("Each out of order: %+v before %+v", prev, k)
		}
		kk := k
		prev = &kk
	})
	if n != 4 {
		t.Fatalf("Each visited %d entries, want 4", n)
	}
}

// FuzzTuneStoreLoad: a hostile store file can only produce "rejected,
// started fresh" — never a panic — and anything accepted must
// round-trip deterministically.
func FuzzTuneStoreLoad(f *testing.F) {
	good, err := sampleStore(2).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(""))
	f.Add([]byte(`{"format":"repro-tune","version":1}` + "\n"))
	f.Add([]byte(`{"format":"repro-tune","version":2}` + "\n"))
	f.Add([]byte("{\"format\":\"repro-tune\",\"version\":1}\n{\"key\":{},\"entry\":{}}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "store.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Load(path)
		if s == nil {
			t.Fatal("Load returned nil store")
		}
		if err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatalf("load error not ErrRejected: %v", err)
			}
			return
		}
		// Accepted: the canonical rendering must be a fixed point.
		out := filepath.Join(dir, "out.jsonl")
		if err := s.Save(out); err != nil {
			t.Fatalf("save of accepted store: %v", err)
		}
		again, err := Load(out)
		if err != nil {
			t.Fatalf("reload of saved store: %v", err)
		}
		b1, _ := s.Encode()
		b2, _ := again.Encode()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode not stable across save/load:\n%s\n%s", b1, b2)
		}
	})
}

func ExampleStore() {
	s := NewStore()
	k := Key{Collective: "allreduce", CommSize: 64, Bytes: 16384, Count: 2048, Hop: "net", TopoFP: "00000000000000ff"}
	s.Put(k, Entry{Algorithm: "rabenseifner", WinnerPs: 123456})
	e, ok := s.Lookup(k)
	fmt.Println(ok, e.Algorithm)
	// Output: true rabenseifner
}
