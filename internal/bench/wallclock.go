package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bpmf"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/summa"
)

// This file measures *real* (wall-clock) execution speed of the
// simulator itself, as opposed to the virtual latencies everywhere else
// in the package. The virtual results are deterministic by design; how
// many nanoseconds and allocations the host burns to produce them is
// not, and is exactly what data-plane optimizations change. The
// harness reports ns/op, allocs/op, bytes/op and the peak goroutine
// count per figure-scale workload, so that BENCH_*.json files at the
// repo root can hold successive PRs accountable for the wall-clock
// trajectory.

// WallCase is one wall-clock workload: a figure-scale run measured in
// host time. Run executes one operation and returns the virtual
// makespan so the harness can cross-check determinism between builds.
type WallCase struct {
	Name string
	Run  func() (sim.Time, error)
}

// WallResult is the measurement of one WallCase.
type WallResult struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	PeakGoroutines int     `json:"peak_goroutines"`
	Iters          int     `json:"iters"`
	VirtualUs      float64 `json:"virtual_us"`
}

// WallReport is the JSON document written to BENCH_*.json.
type WallReport struct {
	GoVersion string       `json:"go_version"`
	Results   []WallResult `json:"results"`
	// Baseline carries the pre-refactor numbers the current results
	// are compared against (same schema), when a comparison was made.
	Baseline []WallResult       `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup_ns_per_op,omitempty"`
	// CollSweep records the selection engine's algorithm choices and
	// crossover points (cmd/perf -sweep).
	CollSweep *CollSweepReport `json:"coll_sweep,omitempty"`
	// TopoSweep records the multi-level topology dimension: composed
	// and hybrid allgather virtual times plus priced compositions per
	// level stack and ppn (cmd/perf -sweep).
	TopoSweep *TopoSweepReport `json:"topo_sweep,omitempty"`
	// ScaleSweep records the scale-out dimension: wall ns/op, peak
	// goroutines and peak RSS of size-only collectives up to 65,536
	// ranks (cmd/perf -sweep scale).
	ScaleSweep *ScaleSweepReport `json:"scale_sweep,omitempty"`
	// StencilSweep records the process-topology dimension: 4-dim
	// grid halo exchanges per halo width up to 65,536 ranks
	// (cmd/perf -sweep stencil).
	StencilSweep *StencilSweepReport `json:"stencil_sweep,omitempty"`
	// ServiceSweep records the simulation-as-a-service dimension:
	// warm-cache throughput and latency of the what-if daemon
	// (cmd/perf -sweep service).
	ServiceSweep *ServiceSweepReport `json:"service_sweep,omitempty"`
	// NoiseSweep records the robustness dimension: virtual-time
	// slowdown per deterministic noise level, cross-checked for exact
	// agreement across engines and world-reuse paths
	// (cmd/perf -sweep noise).
	NoiseSweep *NoiseSweepReport `json:"noise_sweep,omitempty"`
	// TunedSweep records the measured-selection dimension: the
	// congested allreduce ladder under the table, cost and measured
	// tuning policies, with the tuning store's persistence round trip
	// and the warm-path determinism verdict (cmd/perf -sweep tuned).
	TunedSweep *TunedSweepReport `json:"tuned_sweep,omitempty"`
}

// WallCases returns the standard wall-clock workload set: the paper's
// Fig. 7 (one full node), Fig. 9 (64 nodes x 24 ranks — 1536 rank
// goroutines), and Fig. 11 (SUMMA) scale points, plus a small-message
// ping-pong that isolates the p2p matcher fast path.
func WallCases() []WallCase {
	cray := sim.HazelHenCray()
	return []WallCase{
		{
			Name: "p2p/pingpong_2x1_8B",
			Run: func() (sim.Time, error) {
				return PingPong(cray, false, 8, 64)
			},
		},
		{
			Name: "fig7/allgather_1x24_e512",
			Run: func() (sim.Time, error) {
				hy, err := HyAllgatherLatency(cray, []int{CoresPerNode}, 8*512, MicroOpts{})
				if err != nil {
					return 0, err
				}
				pure, err := PureAllgatherLatency(cray, []int{CoresPerNode}, 8*512, MicroOpts{})
				if err != nil {
					return 0, err
				}
				return hy + pure, nil
			},
		},
		{
			Name: "fig9/allgather_64x24_e512",
			Run: func() (sim.Time, error) {
				shape := make([]int, 64)
				for i := range shape {
					shape[i] = 24
				}
				hy, err := HyAllgatherLatency(cray, shape, 8*512, MicroOpts{Iters: 2})
				if err != nil {
					return 0, err
				}
				pure, err := PureAllgatherLatency(cray, shape, 8*512, MicroOpts{Iters: 2})
				if err != nil {
					return 0, err
				}
				return hy + pure, nil
			},
		},
		{
			Name: "stencil/halo4d_256_e64",
			Run: func() (sim.Time, error) {
				// A 4-dim periodic 4^4 grid (256 ranks, 16 nodes),
				// reordered onto node bricks, exchanging 64-double
				// halos — the figure-scale anchor of the stencil path.
				topo, err := sim.Uniform(16, 16)
				if err != nil {
					return 0, err
				}
				w, err := mpi.NewWorld(cray, topo)
				if err != nil {
					return 0, err
				}
				defer w.Close()
				dims := []int{4, 4, 4, 4}
				periods := []bool{true, true, true, true}
				err = w.Run(func(p *mpi.Proc) error {
					cart, err := p.CommWorld().CartCreate(dims, periods, true)
					if err != nil {
						return err
					}
					in, _, _ := cart.Neighborhood()
					send := mpi.Sized(512 * len(in))
					recv := mpi.Sized(512 * len(in))
					for i := 0; i < 2; i++ {
						if err := coll.NeighborAlltoall(cart, send, recv, 512); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return 0, err
				}
				return w.MaxClock(), nil
			},
		},
		{
			Name: "fig11/summa_c64_b64",
			Run: func() (sim.Time, error) {
				var total sim.Time
				for _, hy := range []bool{false, true} {
					topo, err := sim.NewTopology(ShapeFor(64))
					if err != nil {
						return 0, err
					}
					w, err := mpi.NewWorld(cray, topo)
					if err != nil {
						return 0, err
					}
					res, err := summa.Run(w, summa.Config{GridDim: 8, BlockDim: 64, Hybrid: hy})
					w.Close()
					if err != nil {
						return 0, err
					}
					total += res.Makespan
				}
				return total, nil
			},
		},
		{
			Name: "fig12/bpmf_c120",
			Run: func() (sim.Time, error) {
				topo, err := sim.NewTopology(ShapeFor(120))
				if err != nil {
					return 0, err
				}
				w, err := mpi.NewWorld(cray, topo)
				if err != nil {
					return 0, err
				}
				cfg := Fig12Config()
				cfg.Iters = 4
				res, err := bpmf.Run(w, cfg)
				w.Close()
				if err != nil {
					return 0, err
				}
				return res.Makespan, nil
			},
		},
	}
}

// MeasureWall benchmarks one case with the standard library's
// benchmark loop (so iteration counts self-tune) while sampling the
// process goroutine count in the background.
func MeasureWall(c WallCase) (WallResult, error) {
	var virtual sim.Time
	var runErr error
	sampler := newGoroutineSampler()

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := c.Run()
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			virtual = v
		}
	})
	sampler.stop()
	if runErr != nil {
		return WallResult{}, fmt.Errorf("bench: %s: %w", c.Name, runErr)
	}
	return WallResult{
		Name:           c.Name,
		NsPerOp:        float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp:    float64(res.AllocsPerOp()),
		BytesPerOp:     float64(res.AllocedBytesPerOp()),
		PeakGoroutines: sampler.peak(),
		Iters:          res.N,
		VirtualUs:      virtual.Us(),
	}, nil
}

// RunWallCases measures the standard cases (all of them when filter is
// nil, otherwise those whose name the filter accepts) and assembles the
// report.
func RunWallCases(filter func(name string) bool) (*WallReport, error) {
	rep := &WallReport{GoVersion: runtime.Version()}
	for _, c := range WallCases() {
		if filter != nil && !filter(c.Name) {
			continue
		}
		r, err := MeasureWall(c)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// CompareTo embeds the baseline's results and computes per-case ns/op
// speedups against it (baseline ns / current ns, so > 1 means the
// current build is faster).
func (rep *WallReport) CompareTo(baseline *WallReport) {
	rep.Baseline = baseline.Results
	rep.Speedup = map[string]float64{}
	byName := map[string]WallResult{}
	for _, r := range baseline.Results {
		byName[r.Name] = r
	}
	for _, r := range rep.Results {
		if b, ok := byName[r.Name]; ok && r.NsPerOp > 0 {
			rep.Speedup[r.Name] = b.NsPerOp / r.NsPerOp
		}
	}
}

// CheckAgainst is the perf-regression gate: it compares the current
// results to a committed baseline and returns one violation string per
// breach. Wall-clock time gets a generous multiplier (CI machines are
// noisy and heterogeneous); allocations are deterministic per
// operation, so they get a strict ceiling — allocSlack covers only
// benchmark-loop warmup effects. Cases missing on either side are
// skipped: the gate guards what both builds measure.
func (rep *WallReport) CheckAgainst(baseline *WallReport, maxSlowdown, allocSlack float64) []string {
	byName := map[string]WallResult{}
	for _, b := range baseline.Results {
		byName[b.Name] = b
	}
	var violations []string
	for _, r := range rep.Results {
		b, ok := byName[r.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*maxSlowdown {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op exceeds %.1fx baseline %.0f ns/op",
				r.Name, r.NsPerOp, maxSlowdown, b.NsPerOp))
		}
		if ceiling := b.AllocsPerOp*allocSlack + 16; r.AllocsPerOp > ceiling {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f allocs/op exceeds ceiling %.0f (baseline %.0f)",
				r.Name, r.AllocsPerOp, ceiling, b.AllocsPerOp))
		}
	}
	// The topology dimension is part of the gate: once a baseline
	// carries a topo sweep, every checked build must produce one, and
	// virtual times are deterministic so they must match exactly.
	if baseline.TopoSweep != nil {
		if rep.TopoSweep == nil || len(rep.TopoSweep.Points) == 0 {
			violations = append(violations, "topology sweep missing (baseline has one; run with -sweep)")
		} else {
			topoKey := func(p TopoPoint) string {
				return fmt.Sprintf("%s/%dx%d/%dB", p.Stack, p.Nodes, p.PPN, p.Bytes)
			}
			current := map[string]TopoPoint{}
			for _, p := range rep.TopoSweep.Points {
				current[topoKey(p)] = p
			}
			// Every baseline point must still exist and match exactly;
			// a vanished point is a sweep-shape drift the gate must
			// surface, not silently skip.
			for _, b := range baseline.TopoSweep.Points {
				key := topoKey(b)
				p, ok := current[key]
				if !ok {
					violations = append(violations, fmt.Sprintf(
						"topo %s: baseline point missing from the current sweep", key))
					continue
				}
				if p.HierUs != b.HierUs || p.HybridUs != b.HybridUs {
					violations = append(violations, fmt.Sprintf(
						"topo %s: virtual time moved (hier %.2f -> %.2f us, hybrid %.2f -> %.2f us)",
						key, b.HierUs, p.HierUs, b.HybridUs, p.HybridUs))
				}
			}
		}
	}
	// The stencil dimension: virtual times are deterministic, so every
	// point measured by both builds must match exactly. Unlike the topo
	// sweep, the ladder is rank-count-capped in CI (-scalemax), so only
	// the intersection is compared — but a missing sweep, or an empty
	// intersection, is a gate failure (a silently skipped dimension
	// would otherwise read as green).
	if baseline.StencilSweep != nil {
		if rep.StencilSweep == nil || len(rep.StencilSweep.Points) == 0 {
			violations = append(violations, "stencil sweep missing (baseline has one; run with -sweep stencil)")
		} else {
			stencilKey := func(p StencilPoint) string {
				return fmt.Sprintf("%s/%dB", p.Dims, p.HaloBytes)
			}
			current := map[string]StencilPoint{}
			for _, p := range rep.StencilSweep.Points {
				current[stencilKey(p)] = p
			}
			common := 0
			for _, b := range baseline.StencilSweep.Points {
				p, ok := current[stencilKey(b)]
				if !ok {
					continue
				}
				common++
				if p.VirtualUs != b.VirtualUs {
					violations = append(violations, fmt.Sprintf(
						"stencil %s: virtual time moved (%.2f -> %.2f us)",
						stencilKey(b), b.VirtualUs, p.VirtualUs))
				}
			}
			if common == 0 {
				violations = append(violations,
					"stencil sweep shares no points with the baseline (ladder shape drifted)")
			}
		}
	}
	// The noise dimension: each point's virtual makespan is seeded and
	// deterministic, so every point measured by both builds must match
	// exactly, and the in-sweep cross-engine/warm/pooled agreement
	// verdict must hold in the current build.
	if baseline.NoiseSweep != nil {
		if rep.NoiseSweep == nil || len(rep.NoiseSweep.Points) == 0 {
			violations = append(violations, "noise sweep missing (baseline has one; run with -sweep noise)")
		} else {
			if !rep.NoiseSweep.BitIdentical {
				violations = append(violations,
					"noise sweep lost bit-identity across engines/world-reuse paths")
			}
			noiseKey := func(p NoisePoint) string {
				return fmt.Sprintf("%s/%dB", p.Label, p.Bytes)
			}
			current := map[string]NoisePoint{}
			for _, p := range rep.NoiseSweep.Points {
				current[noiseKey(p)] = p
			}
			common := 0
			for _, b := range baseline.NoiseSweep.Points {
				p, ok := current[noiseKey(b)]
				if !ok {
					continue
				}
				common++
				if rep.NoiseSweep.Seed == baseline.NoiseSweep.Seed && p.VirtualPs != b.VirtualPs {
					violations = append(violations, fmt.Sprintf(
						"noise %s: virtual time moved (%d -> %d ps)",
						noiseKey(b), b.VirtualPs, p.VirtualPs))
				}
			}
			if common == 0 {
				violations = append(violations,
					"noise sweep shares no points with the baseline (ladder shape drifted)")
			}
		}
	}
	// The measured-selection dimension: the warm tuning store must pin
	// every path to one timeline, the measured policy must keep
	// strictly beating the cost prior on the congested window, and —
	// since every virtual time is seeded and deterministic — points
	// measured by both builds under the same seed must match exactly.
	if baseline.TunedSweep != nil {
		if rep.TunedSweep == nil || len(rep.TunedSweep.Points) == 0 {
			violations = append(violations, "tuned sweep missing (baseline has one; run with -sweep tuned)")
		} else {
			if !rep.TunedSweep.BitIdentical {
				violations = append(violations,
					"tuned sweep lost bit-identity across engines/world-reuse paths/reruns")
			}
			if rep.TunedSweep.BeatsCost < 2 {
				violations = append(violations, fmt.Sprintf(
					"measured policy beats the cost policy on %d points, want >= 2",
					rep.TunedSweep.BeatsCost))
			}
			current := map[int]TunedPoint{}
			for _, p := range rep.TunedSweep.Points {
				current[p.Bytes] = p
			}
			common := 0
			for _, b := range baseline.TunedSweep.Points {
				p, ok := current[b.Bytes]
				if !ok {
					continue
				}
				common++
				if rep.TunedSweep.Seed == baseline.TunedSweep.Seed && p.MeasuredPs != b.MeasuredPs {
					violations = append(violations, fmt.Sprintf(
						"tuned %dB: measured virtual time moved (%d -> %d ps)",
						b.Bytes, b.MeasuredPs, p.MeasuredPs))
				}
			}
			if common == 0 {
				violations = append(violations,
					"tuned sweep shares no points with the baseline (ladder shape drifted)")
			}
		}
	}
	return violations
}

// LoadWallReport reads a previously written report.
func LoadWallReport(path string) (*WallReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep WallReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &rep, nil
}

// WriteWallReport writes the report as indented JSON.
func (rep *WallReport) WriteWallReport(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
