package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/coll"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tune"
)

// The tuned sweep is the measured-selection dimension of cmd/perf
// -sweep: a congested allreduce ladder executed under all three tuning
// policies — the paper's static table, the LogGP cost prior, and the
// PR 10 measured policy backed by the persisted tuning store. The cost
// model prices a clean network, so under link congestion its
// recdbl/rabenseifner crossover sits below where the measured race
// puts it; the ladder deliberately straddles both crossovers so the
// report shows the measured policy strictly beating the cost policy's
// pick on the points between them. The full store lifecycle is in the
// loop (cold measure -> save -> reload -> warm serve), and every warm
// point is executed across both engines and all world-reuse paths plus
// a full rerun: the sweep doubles as the determinism gate for the
// measured policy.

// TunedPoint is one ladder size measured under all three policies.
type TunedPoint struct {
	// Bytes is the ladder entry (total allreduce vector).
	Bytes int `json:"bytes"`
	// TablePs, CostPs and MeasuredPs are the exact virtual makespans
	// under the three tuning policies (Iters operations each).
	TablePs    int64 `json:"table_ps"`
	CostPs     int64 `json:"cost_ps"`
	MeasuredPs int64 `json:"measured_ps"`
	// CostPick and MeasuredPick name the algorithms the cost prior and
	// the warm tuning store selected at this point.
	CostPick     string `json:"cost_pick"`
	MeasuredPick string `json:"measured_pick"`
	// MeasuredBeatsCost reports MeasuredPs strictly below CostPs: the
	// store's winner outran the clean-model pick under congestion.
	MeasuredBeatsCost bool `json:"measured_beats_cost"`
	// BitIdentical reports that both engines, the per-point referee, a
	// pooled warm re-run and a full rerun against the same store all
	// produced exactly MeasuredPs.
	BitIdentical bool `json:"bit_identical"`
}

// TunedSweepReport is the measured-selection section of a
// BENCH_*.json document.
type TunedSweepReport struct {
	Model      string `json:"model"`
	Collective string `json:"collective"`
	Nodes      int    `json:"nodes"`
	PPN        int    `json:"ppn"`
	Iters      int    `json:"iters"`
	// Seed keys the congestion noise on every execution.
	Seed int64 `json:"seed"`
	// CongestionNet is the network congestion factor the ladder runs
	// under — the regime where the clean cost prior misranks.
	CongestionNet float64 `json:"congestion_net"`
	// WallMs is the host time the whole sweep took.
	WallMs float64 `json:"wall_ms"`
	// StoreEntries and Measurements describe the tuning store after
	// the cold pass: distinct points cached, candidate races run.
	StoreEntries int   `json:"store_entries"`
	Measurements int64 `json:"measurements"`
	// BeatsCost counts the points where the measured policy's virtual
	// time is strictly below the cost policy's.
	BeatsCost int `json:"beats_cost"`
	// BitIdentical is the conjunction over every point — the headline
	// determinism verdict for the measured policy.
	BitIdentical bool         `json:"bit_identical"`
	Points       []TunedPoint `json:"points"`
}

// tunedSweepSizes straddles both allreduce crossovers: the clean cost
// model hands recdbl over to rabenseifner earlier than the congested
// measurement does, so the middle of the ladder is where the measured
// policy wins.
var tunedSweepSizes = []int{4096, 12288, 16384, 20480, 24576, 131072}

// tunedCongestionNet is the network congestion factor of every run.
const tunedCongestionNet = 16

// RunTunedSweep measures the measured-selection dimension on the given
// machine profile: an 8x8 congested allreduce ladder under the table,
// cost and measured policies, with the tuning store's full persistence
// round trip (cold measure, save, reload, warm serve) in the loop and
// the warm results cross-checked for exact agreement across engines,
// world-reuse paths and a rerun.
func RunTunedSweep(machine string, seed int64) (*TunedSweepReport, error) {
	const nodes, ppn, iters = 8, 8, 2
	mkModel, ok := sim.Profiles()[machine]
	if !ok {
		return nil, fmt.Errorf("bench: tuned sweep: unknown machine %q", machine)
	}
	model := mkModel()
	rep := &TunedSweepReport{
		Model: machine, Collective: "allreduce",
		Nodes: nodes, PPN: ppn, Iters: iters,
		Seed: seed, CongestionNet: tunedCongestionNet,
		BitIdentical: true,
	}
	mkQuery := func(policy, engine string) *spec.Query {
		return &spec.Query{
			Machine:    machine,
			Topology:   spec.Topology{Nodes: nodes, PPN: ppn},
			Collective: "allreduce",
			Sizes:      append([]int(nil), tunedSweepSizes...),
			Iters:      iters,
			Engine:     engine,
			Noise:      &spec.Noise{Seed: seed, Congestion: map[string]float64{"net": tunedCongestionNet}},
			Tuning:     spec.Tuning{Policy: policy},
		}
	}
	start := time.Now()

	table, err := spec.Run(mkQuery("table", ""))
	if err != nil {
		return nil, fmt.Errorf("bench: tuned sweep (table): %w", err)
	}
	cost, err := spec.Run(mkQuery("cost", ""))
	if err != nil {
		return nil, fmt.Errorf("bench: tuned sweep (cost): %w", err)
	}

	// Cold pass: an empty store means every selection falls back to
	// the cost prior (the never-block contract) while the tuner races
	// the candidates in the background.
	store := tune.NewStore()
	tuner := spec.NewTuner(store)
	cold, err := (&spec.Exec{Tuner: tuner}).RunContext(context.Background(), mkQuery("measured", ""))
	if err != nil {
		tuner.Close()
		return nil, fmt.Errorf("bench: tuned sweep (cold measured): %w", err)
	}
	for i := range cost.Points {
		if cold.Points[i].VirtualPs != cost.Points[i].VirtualPs {
			tuner.Close()
			return nil, fmt.Errorf("bench: tuned sweep: cold measured run diverged from cost at %d B (%d vs %d ps) — pending measurements must serve the cost pick",
				cost.Points[i].Bytes, cold.Points[i].VirtualPs, cost.Points[i].VirtualPs)
		}
	}
	tuner.Drain()
	tuner.Close()
	if n := tuner.Errors(); n != 0 {
		return nil, fmt.Errorf("bench: tuned sweep: %d measurement errors", n)
	}

	// Persistence round trip: the warm runs serve from a store that
	// went through Save and Load, so the on-disk format is load-bearing
	// for the determinism verdict below.
	f, err := os.CreateTemp("", "repro-tune-*.jsonl")
	if err != nil {
		return nil, fmt.Errorf("bench: tuned sweep: %w", err)
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if err := store.Save(path); err != nil {
		return nil, fmt.Errorf("bench: tuned sweep: %w", err)
	}
	reloaded, err := tune.Load(path)
	if err != nil {
		return nil, fmt.Errorf("bench: tuned sweep: reloading the saved store: %w", err)
	}
	if reloaded.Len() != store.Len() {
		return nil, fmt.Errorf("bench: tuned sweep: reloaded %d entries, saved %d", reloaded.Len(), store.Len())
	}
	warmTuner := spec.NewTuner(reloaded)
	defer warmTuner.Close()
	warm := &spec.Exec{Tuner: warmTuner}

	// Reference timeline plus challengers: the event engine, the
	// per-point referee, a pooled pair (second pass replays on a warm
	// world) and a full rerun of the reference.
	ref, err := warm.RunContext(context.Background(), mkQuery("measured", "goroutine"))
	if err != nil {
		return nil, fmt.Errorf("bench: tuned sweep (warm): %w", err)
	}
	pool := spec.NewWorldPool(spec.PoolConfig{})
	defer pool.Close()
	var challengers []*spec.Result
	for _, ch := range []struct {
		label string
		exec  *spec.Exec
		query *spec.Query
	}{
		{"event", warm, mkQuery("measured", "event")},
		{"per-point", &spec.Exec{PerPointWorlds: true, Tuner: warmTuner}, mkQuery("measured", "goroutine")},
		{"pooled", &spec.Exec{Pool: pool, Tuner: warmTuner}, mkQuery("measured", "goroutine")},
		{"pooled-warm", &spec.Exec{Pool: pool, Tuner: warmTuner}, mkQuery("measured", "goroutine")},
		{"rerun", warm, mkQuery("measured", "goroutine")},
	} {
		res, err := ch.exec.RunContext(context.Background(), ch.query)
		if err != nil {
			return nil, fmt.Errorf("bench: tuned sweep (%s): %w", ch.label, err)
		}
		challengers = append(challengers, res)
	}
	if st := reloaded.Stats(); st.Hits == 0 {
		return nil, fmt.Errorf("bench: tuned sweep: warm runs never hit the store")
	}
	if reloaded.Generation() != 0 {
		return nil, fmt.Errorf("bench: tuned sweep: warm runs mutated the store")
	}

	// The measured picks, straight from the store the runs served from.
	measuredPicks := map[int]string{}
	reloaded.Each(func(k tune.Key, e tune.Entry) {
		if k.Collective == "allreduce" && k.CommSize == nodes*ppn {
			measuredPicks[k.Bytes] = e.Algorithm
		}
	})

	st := store.Stats()
	rep.StoreEntries = st.Entries
	rep.Measurements = st.Measured
	for i, p := range ref.Points {
		identical := true
		for _, ch := range challengers {
			if ch.Points[i].VirtualPs != p.VirtualPs {
				identical = false
			}
		}
		if !identical {
			rep.BitIdentical = false
		}
		costPick, err := coll.Choose(coll.CollAllreduce,
			coll.Env{Size: nodes * ppn, Bytes: p.Bytes, Count: p.Bytes / 8, Model: model, Hop: sim.HopNet},
			coll.Tuning{Policy: coll.PolicyCost})
		if err != nil {
			return nil, fmt.Errorf("bench: tuned sweep: pricing %d B: %w", p.Bytes, err)
		}
		beats := p.VirtualPs < cost.Points[i].VirtualPs
		if beats {
			rep.BeatsCost++
		}
		rep.Points = append(rep.Points, TunedPoint{
			Bytes:             p.Bytes,
			TablePs:           table.Points[i].VirtualPs,
			CostPs:            cost.Points[i].VirtualPs,
			MeasuredPs:        p.VirtualPs,
			CostPick:          costPick,
			MeasuredPick:      measuredPicks[p.Bytes],
			MeasuredBeatsCost: beats,
			BitIdentical:      identical,
		})
	}
	rep.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	return rep, nil
}
