package bench

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// The data-plane optimizations (zero-copy buffer views, specialized
// reduction kernels, pooled matcher records, plan-sharing communicator
// construction) must not move a single picosecond of virtual time. The
// golden values below were captured from the pre-refactor tree (PR 1
// seed plus go.mod only) and pin the virtual makespans of the standard
// wall-clock workloads, which cover the paper's Fig. 7, 9, 11 and 12
// scale points plus the p2p engine.
var goldenVirtualPs = map[string]int64{
	"p2p/pingpong_2x1_8B":       1_900_960,
	"fig7/allgather_1x24_e512":  68_697_760,
	"fig9/allgather_64x24_e512": 5_222_157_840,
	"stencil/halo4d_256_e64":    31_383_040,
	"fig11/summa_c64_b64":       1_465_384_160,
	"fig12/bpmf_c120":           222_228_848_646,
}

func TestVirtualTimeUnchangedByDataPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale runs in -short mode")
	}
	for _, c := range WallCases() {
		want, ok := goldenVirtualPs[c.Name]
		if !ok {
			t.Errorf("%s: no golden virtual time recorded; add it when adding cases", c.Name)
			continue
		}
		got, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if int64(got) != want {
			t.Errorf("%s: virtual makespan %d ps, golden %d ps — the refactor changed virtual time",
				c.Name, int64(got), want)
		}
	}
}

// TestVirtualTimeIdenticalOnEventEngine is the cross-engine
// differential gate: every golden workload — the paper's figure-scale
// runs, the halo stencil, the p2p engine — re-run on the discrete-event
// backend must land on the same golden picosecond as the goroutine
// backend. The cases build their worlds internally, so the backend is
// routed through the package-level default engine.
func TestVirtualTimeIdenticalOnEventEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale runs in -short mode")
	}
	prev := mpi.DefaultEngine()
	mpi.SetDefaultEngine(sim.EngineEvent)
	defer mpi.SetDefaultEngine(prev)
	for _, c := range WallCases() {
		want, ok := goldenVirtualPs[c.Name]
		if !ok {
			// Golden coverage is enforced by TestVirtualTimeUnchangedByDataPlane.
			continue
		}
		got, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if int64(got) != want {
			t.Errorf("%s: event-engine makespan %d ps, golden %d ps — the engines diverged",
				c.Name, int64(got), want)
		}
	}
}
