package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced figure/table: a header row plus data rows,
// with a note tying it back to the paper.
type Table struct {
	Name   string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Name); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(t.Header)))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
