package bench

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// CoresPerNode is the node width of both clusters in the paper (2-socket
// Haswell, 24 cores).
const CoresPerNode = 24

// ShapeFor lays `cores` ranks over nodes SMP-style with up to
// CoresPerNode per node (the scheme behind the Fig. 11/12 core counts:
// 1024 cores = 42 full nodes + one 16-rank node).
func ShapeFor(cores int) []int {
	var shape []int
	for cores > 0 {
		n := cores
		if n > CoresPerNode {
			n = CoresPerNode
		}
		shape = append(shape, n)
		cores -= n
	}
	return shape
}

// MicroOpts configures a micro-benchmark measurement.
type MicroOpts struct {
	Iters int // timed operations per measurement (averaged)
	Sync  hybrid.SyncMode
}

func (o MicroOpts) iters() int {
	if o.Iters <= 0 {
		// The OSU benchmark averages 10000 executions; virtual
		// time is deterministic, so a handful gives the same mean.
		return 5
	}
	return o.Iters
}

// HyAllgatherLatency measures the paper's Hy_Allgather: the hybrid
// allgather including its synchronization calls (setup excluded, as in
// Sect. 5).
func HyAllgatherLatency(model *sim.CostModel, nodeSizes []int, bytesPerRank int, o MicroOpts) (sim.Time, error) {
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	iters := o.iters()
	err = w.Run(func(p *mpi.Proc) error {
		ctx, err := hybrid.New(p.CommWorld(), hybrid.WithSync(o.Sync))
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgatherer(bytesPerRank)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := a.Allgather(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.MaxClock() / sim.Time(iters), nil
}

// PureAllgatherLatency measures the paper's baseline Allgather: the
// SMP-aware pure-MPI MPI_Allgather.
func PureAllgatherLatency(model *sim.CostModel, nodeSizes []int, bytesPerRank int, o MicroOpts) (sim.Time, error) {
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	iters := o.iters()
	err = w.Run(func(p *mpi.Proc) error {
		h, err := coll.NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		send := mpi.Sized(bytesPerRank)
		recv := mpi.Sized(bytesPerRank * p.Size())
		for i := 0; i < iters; i++ {
			if err := h.Allgather(send, recv, bytesPerRank); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.MaxClock() / sim.Time(iters), nil
}

// HyBcastLatency measures the hybrid broadcast (Fig. 6) including its
// synchronization.
func HyBcastLatency(model *sim.CostModel, nodeSizes []int, bytes int, o MicroOpts) (sim.Time, error) {
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	iters := o.iters()
	err = w.Run(func(p *mpi.Proc) error {
		ctx, err := hybrid.New(p.CommWorld(), hybrid.WithSync(o.Sync))
		if err != nil {
			return err
		}
		b, err := ctx.NewBcaster(bytes)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := b.Bcast(0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.MaxClock() / sim.Time(iters), nil
}

// PureBcastLatency measures the SMP-aware pure-MPI broadcast baseline.
func PureBcastLatency(model *sim.CostModel, nodeSizes []int, bytes int, o MicroOpts) (sim.Time, error) {
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	iters := o.iters()
	err = w.Run(func(p *mpi.Proc) error {
		h, err := coll.NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		buf := mpi.Sized(bytes)
		for i := 0; i < iters; i++ {
			if err := h.Bcast(buf, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.MaxClock() / sim.Time(iters), nil
}

// Machines returns the two machine/library stacks of the evaluation, in
// presentation order.
func Machines() []*sim.CostModel {
	return []*sim.CostModel{sim.VulcanOpenMPI(), sim.HazelHenCray()}
}

// Elems is the element sweep of Figs. 7, 8 and 10: 2^0 .. 2^15 doubles.
func Elems() []int {
	var out []int
	for e := 1; e <= 32768; e *= 4 {
		out = append(out, e)
	}
	return out
}

// ElemsFine is the full power-of-two sweep (2^0..2^15) for the
// command-line tools; the coarser Elems keeps test/bench runtime sane.
func ElemsFine() []int {
	var out []int
	for e := 1; e <= 32768; e *= 2 {
		out = append(out, e)
	}
	return out
}

func fmtUs(t sim.Time) string { return fmt.Sprintf("%.2f", t.Us()) }
