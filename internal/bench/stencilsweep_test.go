package bench

import (
	"testing"

	"repro/internal/sim"
)

func TestStencilSweepSmokeAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank sweep in -short mode")
	}
	rep, err := RunStencilSweep(sim.HazelHenCray(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(stencilHaloBytes) {
		t.Fatalf("got %d points for maxRanks=4096, want %d (one per halo width at 8^4)",
			len(rep.Points), len(stencilHaloBytes))
	}
	for _, p := range rep.Points {
		if p.Ranks != 4096 || p.Dims != "8x8x8x8" {
			t.Errorf("unexpected point %s/%d ranks", p.Dims, p.Ranks)
		}
		if p.NsPerOp <= 0 || p.VirtualUs <= 0 {
			t.Errorf("halo %dB: empty measurement (%v ns/op, %v virtual us)", p.HaloBytes, p.NsPerOp, p.VirtualUs)
		}
		if p.PeakGoroutines < p.Ranks {
			t.Errorf("halo %dB: peak goroutines %d below rank count %d", p.HaloBytes, p.PeakGoroutines, p.Ranks)
		}
	}
	// Virtual times are the determinism contract of the stencil path:
	// a second run must reproduce them bit-identically.
	again, err := RunStencilSweep(sim.HazelHenCray(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Points {
		if rep.Points[i].VirtualUs != again.Points[i].VirtualUs {
			t.Errorf("halo %dB: virtual time moved between runs (%v -> %v us)",
				rep.Points[i].HaloBytes, rep.Points[i].VirtualUs, again.Points[i].VirtualUs)
		}
	}
}

func TestStencilShapesRespectCap(t *testing.T) {
	for _, s := range stencilShapes(8192) {
		if s.nodes*stencilPPN > 8192 {
			t.Errorf("shape %v exceeds the 8192-rank cap", s.dims)
		}
	}
	full := stencilShapes(1 << 20)
	last := full[len(full)-1]
	if last.nodes*stencilPPN < 65536 {
		t.Errorf("full ladder tops out at %d ranks, want >= 65536", last.nodes*stencilPPN)
	}
	// Every rung must brick-decompose at 64 ranks per node, or the
	// reorder silently degrades to identity.
	for _, s := range full {
		if _, ok := sim.TileExtents(stencilPPN, s.dims); !ok {
			t.Errorf("shape %v has no %d-rank brick decomposition", s.dims, stencilPPN)
		}
	}
}
