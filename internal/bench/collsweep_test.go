package bench

import (
	"strings"
	"testing"

	"repro/internal/coll"
	"repro/internal/sim"
)

func TestCollSweepStructure(t *testing.T) {
	rep := RunCollSweep(sim.HazelHenCray(), coll.Tuning{Policy: coll.PolicyCost})
	if rep.Policy != "cost" || rep.Model != "hazelhen-cray" {
		t.Errorf("header = %q/%q", rep.Model, rep.Policy)
	}
	if len(rep.Points) == 0 {
		t.Fatal("sweep produced no points")
	}
	// Every tunable collective must exhibit at least one crossover:
	// that is the whole point of a size-dependent selection engine.
	seen := map[string]bool{}
	for _, x := range rep.Crossovers {
		seen[x.Collective] = true
	}
	for _, want := range []string{"allgather", "allreduce", "bcast"} {
		if !seen[want] {
			t.Errorf("no crossover for %s", want)
		}
	}
	// Points must agree with Choose (the sweep is introspection, not a
	// second selection implementation), and the largest sizes must land
	// on the bandwidth-optimal algorithms.
	for _, p := range rep.Points {
		cl, err := coll.ParseCollective(p.Collective)
		if err != nil {
			t.Fatal(err)
		}
		e := coll.Env{Size: p.CommSize, Bytes: p.Bytes, Count: p.Bytes / 8,
			Model: sim.HazelHenCray(), Hop: sim.HopNet}
		want, err := coll.Choose(cl, e, coll.Tuning{Policy: coll.PolicyCost})
		if err != nil {
			t.Fatal(err)
		}
		if p.Chosen != want {
			t.Errorf("%s n=%d %dB: sweep says %q, Choose says %q",
				p.Collective, p.CommSize, p.Bytes, p.Chosen, want)
		}
		if p.Bytes == 4<<20 {
			switch p.Collective {
			case "allgather":
				if p.Chosen != "ring" {
					t.Errorf("allgather at 4 MiB chose %q, want ring", p.Chosen)
				}
			case "allreduce":
				if p.Chosen != "rabenseifner" {
					t.Errorf("allreduce at 4 MiB chose %q, want rabenseifner", p.Chosen)
				}
			case "bcast":
				// The pipeline's (n-1) chunk hops push its crossover
				// beyond 4 MiB on wide communicators; scag is still
				// a bandwidth algorithm, binomial is not.
				if p.Chosen == "binomial" {
					t.Errorf("bcast at 4 MiB still chose binomial (n=%d)", p.CommSize)
				}
			}
		}
	}
}

func TestCheckAgainst(t *testing.T) {
	base := &WallReport{Results: []WallResult{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "b", NsPerOp: 2000, AllocsPerOp: 0},
	}}
	ok := &WallReport{Results: []WallResult{
		{Name: "a", NsPerOp: 2500, AllocsPerOp: 105}, // 2.5x slower, allocs within slack
		{Name: "b", NsPerOp: 1000, AllocsPerOp: 10},  // faster, +10 allocs under flat grace
		{Name: "new-case", NsPerOp: 9e9},             // no baseline: skipped
	}}
	if v := ok.CheckAgainst(base, 3.0, 1.10); len(v) != 0 {
		t.Errorf("clean report flagged: %v", v)
	}
	slow := &WallReport{Results: []WallResult{
		{Name: "a", NsPerOp: 3500, AllocsPerOp: 100},
	}}
	if v := slow.CheckAgainst(base, 3.0, 1.10); len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Errorf("3.5x slowdown not flagged: %v", v)
	}
	leaky := &WallReport{Results: []WallResult{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 200},
	}}
	if v := leaky.CheckAgainst(base, 3.0, 1.10); len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Errorf("alloc regression not flagged: %v", v)
	}
}
