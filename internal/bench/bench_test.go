package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

func fmtSscan(s string, f *float64) (int, error) { return fmt.Sscan(s, f) }

func TestShapeFor(t *testing.T) {
	cases := []struct {
		cores int
		want  []int
	}{
		{4, []int{4}},
		{24, []int{24}},
		{48, []int{24, 24}},
		{1024, append(rep(24, 42), 16)},
	}
	for _, c := range cases {
		got := ShapeFor(c.cores)
		if len(got) != len(c.want) {
			t.Errorf("ShapeFor(%d) = %v", c.cores, got)
			continue
		}
		total := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ShapeFor(%d)[%d] = %d, want %d", c.cores, i, got[i], c.want[i])
			}
			total += got[i]
		}
		if total != c.cores {
			t.Errorf("ShapeFor(%d) sums to %d", c.cores, total)
		}
	}
}

func rep(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestFig10Shape(t *testing.T) {
	shape := Fig10Shape()
	total := 0
	for _, s := range shape {
		total += s
	}
	if total != 1024 || len(shape) != 43 || shape[42] != 16 {
		t.Errorf("Fig10Shape wrong: %d nodes, %d ranks, last %d", len(shape), total, shape[42])
	}
}

func TestElems(t *testing.T) {
	e := Elems()
	if e[0] != 1 || e[len(e)-1] != 16384 {
		t.Errorf("Elems endpoints: %v", e)
	}
	f := ElemsFine()
	if f[0] != 1 || f[len(f)-1] != 32768 || len(f) != 16 {
		t.Errorf("ElemsFine wrong: %v", f)
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Name:   "demo",
		Note:   "a note",
		Header: []string{"a", "long-col"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "a note", "long-col", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMicroLatenciesBasic(t *testing.T) {
	model := sim.Laptop()
	shape := []int{4, 4}
	hy, err := HyAllgatherLatency(model, shape, 1024, MicroOpts{Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := PureAllgatherLatency(model, shape, 1024, MicroOpts{Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hy <= 0 || pure <= 0 {
		t.Errorf("latencies must be positive: hy=%v pure=%v", hy, pure)
	}
	hb, err := HyBcastLatency(model, shape, 1024, MicroOpts{Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := PureBcastLatency(model, shape, 1024, MicroOpts{Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hb <= 0 || pb <= 0 {
		t.Errorf("bcast latencies must be positive: hy=%v pure=%v", hb, pb)
	}
}

func TestMicroLatencyDeterministic(t *testing.T) {
	model := sim.HazelHenCray()
	shape := []int{8, 8}
	a, err := HyAllgatherLatency(model, shape, 4096, MicroOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HyAllgatherLatency(model, shape, 4096, MicroOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("latency not deterministic: %v vs %v", a, b)
	}
}

func TestFig7SmallRun(t *testing.T) {
	// A coarse Fig. 7 run must keep the paper's two properties:
	// hybrid below pure at every size, and hybrid flat.
	tab, err := Fig7(FigOpts{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	var firstHy, lastHy float64
	for i, row := range tab.Rows {
		var hy, pure float64
		if _, err := sscan(row[3], &hy); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[4], &pure); err != nil {
			t.Fatal(err)
		}
		if hy >= pure {
			t.Errorf("row %s: hybrid (%v) not below pure (%v)", row[0], hy, pure)
		}
		if i == 0 {
			firstHy = hy
		}
		lastHy = hy
	}
	if lastHy > 2*firstHy {
		t.Errorf("hybrid curve not flat: %v -> %v", firstHy, lastHy)
	}
}

func sscan(s string, f *float64) (int, error) {
	return fmtSscan(s, f)
}
