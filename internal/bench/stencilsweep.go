package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The stencil sweep is the process-topology dimension of cmd/perf
// -sweep: a 4-dimensional periodic grid of ranks (mpi.CartCreate with
// reorder, so each node owns a compact brick) exchanging halos with
// coll.NeighborAlltoall at 4k to 65,536 ranks. Payloads are size-only,
// so the measurement isolates what the topology subsystem adds to the
// control plane: grid construction, the reorder permutation, and the
// 8-neighbor exchange per rank per step. Each point records wall
// ns/op per halo width plus the deterministic virtual makespan, which
// the -check gate pins exactly.

// StencilPoint is one (grid shape, halo width) measurement.
type StencilPoint struct {
	Dims           string  `json:"dims"` // e.g. "16x16x16x16"
	Nodes          int     `json:"nodes"`
	PPN            int     `json:"ppn"`
	Ranks          int     `json:"ranks"`
	HaloBytes      int     `json:"halo_bytes"` // per-neighbor block
	Iters          int     `json:"iters"`
	NsPerOp        float64 `json:"ns_per_op"`       // exchange wall time / iters
	SetupNs        float64 `json:"setup_ns"`        // world + grid construction (per shape)
	VirtualUs      float64 `json:"virtual_us"`      // per-op virtual makespan (determinism anchor)
	PeakGoroutines int     `json:"peak_goroutines"` // sampled during the point
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`  // process high-water mark after the point
}

// StencilSweepReport is the stencil section of a BENCH_*.json document.
type StencilSweepReport struct {
	Model    string         `json:"model"`
	MaxRanks int            `json:"max_ranks"`
	Points   []StencilPoint `json:"points"`
}

// stencilShape is one rung of the grid ladder at 64 ranks per node.
type stencilShape struct {
	dims  []int
	nodes int
}

// stencilShapes is the 4-dim grid ladder: 4096, 8192, 16384 and
// 65,536 ranks, capped by maxRanks (the CI smoke jobs stop early).
func stencilShapes(maxRanks int) []stencilShape {
	all := []stencilShape{
		{dims: []int{8, 8, 8, 8}, nodes: 64},
		{dims: []int{16, 8, 8, 8}, nodes: 128},
		{dims: []int{16, 16, 8, 8}, nodes: 256},
		{dims: []int{16, 16, 16, 16}, nodes: 1024},
	}
	var out []stencilShape
	for _, s := range all {
		if s.nodes*stencilPPN <= maxRanks {
			out = append(out, s)
		}
	}
	return out
}

const stencilPPN = 64

// stencilHaloBytes is the per-neighbor halo ladder: 1, 8 and 64
// doubles of ghost cells per face.
var stencilHaloBytes = []int{8, 64, 512}

// RunStencilSweep measures the stencil dimension up to maxRanks ranks.
func RunStencilSweep(model *sim.CostModel, maxRanks int) (*StencilSweepReport, error) {
	rep := &StencilSweepReport{Model: model.Name, MaxRanks: maxRanks}
	for _, shape := range stencilShapes(maxRanks) {
		pts, err := runStencilShape(model, shape)
		if err != nil {
			return nil, fmt.Errorf("bench: stencil sweep %v: %w", shape.dims, err)
		}
		rep.Points = append(rep.Points, pts...)
	}
	return rep, nil
}

// runStencilShape measures every halo width on one grid, sharing the
// world and the Cartesian communicator across widths (their
// construction is the shape's setup_ns; clocks reset between widths so
// each point's virtual makespan stands alone).
func runStencilShape(model *sim.CostModel, shape stencilShape) ([]StencilPoint, error) {
	const iters = 2
	ranks := shape.nodes * stencilPPN
	dimStr := ""
	for i, d := range shape.dims {
		if i > 0 {
			dimStr += "x"
		}
		dimStr += fmt.Sprint(d)
	}
	periods := make([]bool, len(shape.dims))
	for i := range periods {
		periods[i] = true
	}

	start := time.Now()
	topo, err := sim.Uniform(shape.nodes, stencilPPN)
	if err != nil {
		return nil, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	// One construction pass: build the reordered grid communicator per
	// rank and keep it for the measured passes.
	carts := make([]*mpi.Comm, ranks)
	err = w.Run(func(p *mpi.Proc) error {
		cart, err := p.CommWorld().CartCreate(shape.dims, periods, true)
		if err != nil {
			return err
		}
		carts[p.Rank()] = cart
		return nil
	})
	if err != nil {
		return nil, err
	}
	setup := time.Since(start)

	var pts []StencilPoint
	for _, halo := range stencilHaloBytes {
		w.ResetClocks()
		// One sampler per point, like the scale sweep, so each
		// point's peak reflects its own run rather than the shape's
		// construction high-water mark.
		sampler := newGoroutineSampler()
		opStart := time.Now()
		err := w.Run(func(p *mpi.Proc) error {
			cart := carts[p.Rank()]
			in, _, _ := cart.Neighborhood()
			send := mpi.Sized(halo * len(in))
			recv := mpi.Sized(halo * len(in))
			for i := 0; i < iters; i++ {
				if err := coll.NeighborAlltoall(cart, send, recv, halo); err != nil {
					return err
				}
			}
			return nil
		})
		elapsed := time.Since(opStart)
		sampler.stop()
		if err != nil {
			return nil, err
		}
		pts = append(pts, StencilPoint{
			Dims: dimStr, Nodes: shape.nodes, PPN: stencilPPN, Ranks: ranks,
			HaloBytes: halo, Iters: iters,
			NsPerOp:        float64(elapsed.Nanoseconds()) / float64(iters),
			SetupNs:        float64(setup.Nanoseconds()),
			VirtualUs:      (w.MaxClock() / sim.Time(iters)).Us(),
			PeakGoroutines: sampler.peak(),
			PeakRSSBytes:   peakRSSBytes(),
		})
	}
	w.Close()    // idempotent; the deferred Close covers error paths
	runtime.GC() // release this shape's world before the next one
	return pts, nil
}
