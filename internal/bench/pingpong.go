package bench

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// PingPong measures the half round-trip latency between two ranks at a
// given message size — the classic OSU latency benchmark, run inside
// the simulator. Because the cost model is analytic, the harness can
// also *fit* alpha/beta back out of the measurements and check them
// against the profile: a self-calibration that guards against cost
// accounting regressions in the p2p engine.
func PingPong(model *sim.CostModel, sameNode bool, bytes, iters int) (sim.Time, error) {
	var topo *sim.Topology
	var err error
	if sameNode {
		topo, err = sim.Uniform(1, 2)
	} else {
		topo, err = sim.Uniform(2, 1)
	}
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	if iters <= 0 {
		iters = 4
	}
	err = w.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		buf := mpi.Sized(bytes)
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				if err := c.Send(buf, 1, 1); err != nil {
					return err
				}
				if _, err := c.Recv(buf, 1, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(buf, 0, 1); err != nil {
					return err
				}
				if err := c.Send(buf, 0, 2); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Half round trip, averaged.
	return w.MaxClock() / sim.Time(2*iters), nil
}

// FitAlphaBeta runs ping-pong at two sizes and solves for the effective
// per-message latency (alpha, including overheads) and per-byte cost
// (beta) of the chosen path.
func FitAlphaBeta(model *sim.CostModel, sameNode bool) (alpha sim.Time, betaPsPerByte float64, err error) {
	small, big := 0, 1<<20
	t1, err := PingPong(model, sameNode, small, 4)
	if err != nil {
		return 0, 0, err
	}
	t2, err := PingPong(model, sameNode, big, 4)
	if err != nil {
		return 0, 0, err
	}
	if t2 < t1 {
		return 0, 0, fmt.Errorf("bench: ping-pong not monotone: %v then %v", t1, t2)
	}
	beta := float64(t2-t1) / float64(big-small)
	return t1, beta, nil
}
