package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestPingPongMonotone(t *testing.T) {
	model := sim.HazelHenCray()
	prev := sim.Time(0)
	for _, bytes := range []int{0, 64, 4096, 1 << 20} {
		lat, err := PingPong(model, false, bytes, 4)
		if err != nil {
			t.Fatal(err)
		}
		if lat < prev {
			t.Errorf("latency not monotone at %dB: %v < %v", bytes, lat, prev)
		}
		prev = lat
	}
}

func TestFitRecoversProfileBeta(t *testing.T) {
	// The fitted per-byte cost must recover the profile's beta for
	// both hop classes — a regression guard on the p2p cost
	// accounting.
	for _, sameNode := range []bool{true, false} {
		model := sim.HazelHenCray()
		_, beta, err := FitAlphaBeta(model, sameNode)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(model.NetBetaPsPerByte)
		if sameNode {
			want = float64(model.ShmBetaPsPerByte)
		}
		if math.Abs(beta-want) > 0.05*want {
			t.Errorf("sameNode=%v: fitted beta %.1f ps/B, profile %.1f", sameNode, beta, want)
		}
	}
}

func TestFitAlphaNearProfile(t *testing.T) {
	// Fitted alpha = wire latency + software overheads; it must be
	// within a small constant of the profile's raw alpha.
	model := sim.VulcanOpenMPI()
	alpha, _, err := FitAlphaBeta(model, false)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < model.NetAlpha {
		t.Errorf("fitted alpha %v below raw wire latency %v", alpha, model.NetAlpha)
	}
	if alpha > model.NetAlpha+10*sim.Microsecond {
		t.Errorf("fitted alpha %v implausibly far above wire latency %v", alpha, model.NetAlpha)
	}
}

func TestTraceStatsOnCollective(t *testing.T) {
	// Tracing a run must surface the message traffic.
	tr := sim.NewTracer()
	model := sim.Laptop()
	topo, err := sim.NewTopology([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(model, topo, mpi.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(p *mpi.Proc) error {
		return p.CommWorld().Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Events == 0 {
		t.Fatal("no events recorded")
	}
	if st.ByKind["send"].Count == 0 {
		t.Error("no sends recorded")
	}
	var sb strings.Builder
	if err := st.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "send") {
		t.Errorf("stats output missing kinds: %q", sb.String())
	}
}
