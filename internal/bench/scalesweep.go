package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The scale sweep is the scale-out dimension of cmd/perf -sweep: how
// fast (in host time) the simulator executes collectives as the rank
// count grows toward the 100k regime — 64x64 up to 1024x64 = 65,536
// ranks, far beyond the paper's testbed. Payloads are size-only (no
// data movement), so the measurement isolates the control plane: rank
// pool dispatch, matcher traffic, coordinator fusion and geometry
// setup. Each point records wall ns/op, the peak goroutine count and
// the process peak RSS, which is what holds the scale-out engine
// accountable across PRs.

// ScalePoint is one (shape, collective) measurement.
type ScalePoint struct {
	Coll           string  `json:"coll"`
	Nodes          int     `json:"nodes"`
	PPN            int     `json:"ppn"`
	Ranks          int     `json:"ranks"`
	Bytes          int     `json:"bytes"` // payload bytes per rank
	Iters          int     `json:"iters"`
	NsPerOp        float64 `json:"ns_per_op"`       // setup + iters ops, divided by iters
	SetupNs        float64 `json:"setup_ns"`        // world + communicator construction
	VirtualUs      float64 `json:"virtual_us"`      // per-op virtual makespan (determinism anchor)
	PeakGoroutines int     `json:"peak_goroutines"` // sampled during the point
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`  // process high-water mark after the point
}

// ScaleSweepReport is the scale section of a BENCH_*.json document.
type ScaleSweepReport struct {
	Model    string       `json:"model"`
	MaxRanks int          `json:"max_ranks"`
	Points   []ScalePoint `json:"points"`
}

// scaleShapes is the node-count ladder of the sweep at 64 ranks per
// node: 4096, 8192, 16384 and 65536 ranks, capped by maxRanks (the CI
// smoke job stops at the 8192 point).
func scaleShapes(maxRanks int) [][2]int {
	all := [][2]int{{64, 64}, {128, 64}, {256, 64}, {1024, 64}}
	var out [][2]int
	for _, s := range all {
		if s[0]*s[1] <= maxRanks {
			out = append(out, s)
		}
	}
	return out
}

// RunScaleSweep measures the scale dimension up to maxRanks ranks.
func RunScaleSweep(model *sim.CostModel, maxRanks int) (*ScaleSweepReport, error) {
	rep := &ScaleSweepReport{Model: model.Name, MaxRanks: maxRanks}
	for _, shape := range scaleShapes(maxRanks) {
		for _, collName := range []string{"allgather", "allreduce"} {
			pt, err := runScalePoint(model, collName, shape[0], shape[1])
			if err != nil {
				return nil, fmt.Errorf("bench: scale sweep %s %dx%d: %w", collName, shape[0], shape[1], err)
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

func runScalePoint(model *sim.CostModel, collName string, nodes, ppn int) (ScalePoint, error) {
	const bytesPerRank = 8
	iters := 2
	pt := ScalePoint{
		Coll: collName, Nodes: nodes, PPN: ppn, Ranks: nodes * ppn,
		Bytes: bytesPerRank, Iters: iters,
	}

	sampler := newGoroutineSampler()
	defer sampler.stop() // error paths; the success path stops eagerly
	start := time.Now()
	topo, err := sim.Uniform(nodes, ppn)
	if err != nil {
		return ScalePoint{}, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return ScalePoint{}, err
	}
	var setup time.Duration
	body := func(p *mpi.Proc) error {
		switch collName {
		case "allgather":
			h, err := coll.NewHier(p.CommWorld())
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				setup = time.Since(start)
			}
			send := mpi.Sized(bytesPerRank)
			recv := mpi.Sized(bytesPerRank * p.Size())
			for i := 0; i < iters; i++ {
				if err := h.Allgather(send, recv, bytesPerRank); err != nil {
					return err
				}
			}
			return nil
		case "allreduce":
			c := p.CommWorld()
			if p.Rank() == 0 {
				setup = time.Since(start)
			}
			send := mpi.Sized(bytesPerRank)
			recv := mpi.Sized(bytesPerRank)
			for i := 0; i < iters; i++ {
				if err := coll.Allreduce(c, send, recv, 1, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown scale collective %q", collName)
		}
	}
	runErr := w.Run(body)
	elapsed := time.Since(start)
	virtual := sim.Time(0)
	if runErr == nil {
		virtual = w.MaxClock()
	}
	w.Close()
	sampler.stop()
	if runErr != nil {
		return ScalePoint{}, runErr
	}

	pt.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	pt.SetupNs = float64(setup.Nanoseconds())
	pt.VirtualUs = (virtual / sim.Time(iters)).Us()
	pt.PeakGoroutines = sampler.peak()
	pt.PeakRSSBytes = peakRSSBytes()
	runtime.GC() // release the point's worlds before the next one
	return pt, nil
}
