package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The scale sweep is the scale-out dimension of cmd/perf -sweep: how
// fast (in host time) the simulator executes collectives as the rank
// count grows toward the million-rank regime — 64x64 up to 16384x64 =
// 1,048,576 ranks, far beyond the paper's testbed. Payloads are
// size-only (no data movement), so the measurement isolates the
// control plane: rank dispatch, matcher traffic, coordinator fusion
// and geometry setup. Each point records wall ns/op, the peak
// goroutine count and the process peak RSS, which is what holds the
// scale-out engine accountable across PRs.
//
// Since PR6 every point names its execution backend. The goroutine
// engine runs every shape up to 65,536 ranks; the discrete-event
// engine additionally runs the million-rank shape, with rank-symmetry
// folding applied whenever the coll fold helpers approve the workload
// (FoldUnit > 0 in the report). When both engines run a point the
// sweep itself asserts their virtual makespans are bit-identical —
// the folded event run must reproduce the unfolded goroutine
// timeline exactly, or the sweep fails.

// ScalePoint is one (shape, collective, engine) measurement.
type ScalePoint struct {
	Coll           string  `json:"coll"`
	Engine         string  `json:"engine"`    // execution backend of this point
	FoldUnit       int     `json:"fold_unit"` // rank-symmetry fold unit (0 = unfolded)
	Nodes          int     `json:"nodes"`
	PPN            int     `json:"ppn"`
	Ranks          int     `json:"ranks"`
	Bytes          int     `json:"bytes"` // payload bytes per rank
	Iters          int     `json:"iters"`
	NsPerOp        float64 `json:"ns_per_op"`       // setup + iters ops, divided by iters
	SetupNs        float64 `json:"setup_ns"`        // world + communicator construction
	VirtualUs      float64 `json:"virtual_us"`      // per-op virtual makespan (determinism anchor)
	VirtualPs      int64   `json:"virtual_ps"`      // exact total makespan (cross-engine equality)
	PeakGoroutines int     `json:"peak_goroutines"` // sampled during the point
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`  // process high-water mark after the point
}

// ScaleSweepReport is the scale section of a BENCH_*.json document.
type ScaleSweepReport struct {
	Model    string       `json:"model"`
	MaxRanks int          `json:"max_ranks"`
	Points   []ScalePoint `json:"points"`
}

// scaleShapes is the node-count ladder of the sweep at 64 ranks per
// node: 4096, 8192, 16384, 65536 and 1,048,576 ranks, capped by
// maxRanks (the CI smoke job stops at the 8192 point; the million-rank
// shape is event-engine-only).
func scaleShapes(maxRanks int) [][2]int {
	all := [][2]int{{64, 64}, {128, 64}, {256, 64}, {1024, 64}, {16384, 64}}
	var out [][2]int
	for _, s := range all {
		if s[0]*s[1] <= maxRanks {
			out = append(out, s)
		}
	}
	return out
}

// goroutineEngineMaxRanks is the largest shape the goroutine backend
// runs in the sweep. Beyond it (the million-rank shape) a
// goroutine-per-rank world is no longer a sensible measurement — that
// regime is exactly what the event engine plus folding exists for.
const goroutineEngineMaxRanks = 65536

// RunScaleSweep measures the scale dimension up to maxRanks ranks on
// each of the given execution backends (both engines when engines is
// empty). Points that run on both backends are checked for
// bit-identical virtual makespans before the report is returned.
func RunScaleSweep(model *sim.CostModel, maxRanks int, engines []sim.Engine) (*ScaleSweepReport, error) {
	if len(engines) == 0 {
		engines = []sim.Engine{sim.EngineGoroutine, sim.EngineEvent}
	}
	rep := &ScaleSweepReport{Model: model.Name, MaxRanks: maxRanks}
	for _, shape := range scaleShapes(maxRanks) {
		for _, collName := range []string{"allgather", "allreduce"} {
			ref := int64(-1)
			for _, eng := range engines {
				if eng == sim.EngineGoroutine && shape[0]*shape[1] > goroutineEngineMaxRanks {
					continue
				}
				pt, err := runScalePoint(model, collName, shape[0], shape[1], eng)
				if err != nil {
					return nil, fmt.Errorf("bench: scale sweep %s %dx%d (%s): %w",
						collName, shape[0], shape[1], eng, err)
				}
				if ref >= 0 && pt.VirtualPs != ref {
					return nil, fmt.Errorf(
						"bench: scale sweep %s %dx%d: engine virtual-time mismatch: %s got %d ps, want %d ps",
						collName, shape[0], shape[1], eng, pt.VirtualPs, ref)
				}
				ref = pt.VirtualPs
				rep.Points = append(rep.Points, pt)
			}
		}
	}
	return rep, nil
}

// scaleFoldUnit resolves the rank-symmetry fold unit of a sweep
// workload through the coll package's fold helpers (0 = run unfolded).
// Sweep worlds carry no per-world tuning, so the runtime picks
// algorithms under coll.DefaultTuning — the helpers must replicate
// exactly that pick.
func scaleFoldUnit(model *sim.CostModel, topo *sim.Topology, collName string, bytesPerRank int) int {
	switch collName {
	case "allgather":
		return coll.HierAllgatherFoldUnit(model, topo, bytesPerRank, coll.DefaultTuning())
	case "allreduce":
		return coll.AllreduceFoldUnit(model, topo, bytesPerRank, 1, coll.DefaultTuning())
	}
	return 0
}

func runScalePoint(model *sim.CostModel, collName string, nodes, ppn int, engine sim.Engine) (ScalePoint, error) {
	const bytesPerRank = 8
	iters := 2
	pt := ScalePoint{
		Coll: collName, Engine: engine.String(), Nodes: nodes, PPN: ppn, Ranks: nodes * ppn,
		Bytes: bytesPerRank, Iters: iters,
	}

	sampler := newGoroutineSampler()
	defer sampler.stop() // error paths; the success path stops eagerly
	start := time.Now()
	topo, err := sim.Uniform(nodes, ppn)
	if err != nil {
		return ScalePoint{}, err
	}
	// Folding rides the event engine only: the goroutine points stay
	// unfolded so the sweep's cross-engine equality check pins the
	// folded timeline against an independently computed full-width one.
	opts := []mpi.Option{mpi.WithEngine(engine)}
	if engine == sim.EngineEvent {
		if u := scaleFoldUnit(model, topo, collName, bytesPerRank); u > 0 {
			pt.FoldUnit = u
			opts = append(opts, mpi.WithFold(u))
		}
	}
	w, err := mpi.NewWorld(model, topo, opts...)
	if err != nil {
		return ScalePoint{}, err
	}
	var setup time.Duration
	body := func(p *mpi.Proc) error {
		switch collName {
		case "allgather":
			h, err := coll.NewHier(p.CommWorld())
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				setup = time.Since(start)
			}
			send := mpi.Sized(bytesPerRank)
			recv := mpi.Sized(bytesPerRank * p.Size())
			for i := 0; i < iters; i++ {
				if err := h.Allgather(send, recv, bytesPerRank); err != nil {
					return err
				}
			}
			return nil
		case "allreduce":
			c := p.CommWorld()
			if p.Rank() == 0 {
				setup = time.Since(start)
			}
			send := mpi.Sized(bytesPerRank)
			recv := mpi.Sized(bytesPerRank)
			for i := 0; i < iters; i++ {
				if err := coll.Allreduce(c, send, recv, 1, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown scale collective %q", collName)
		}
	}
	runErr := w.Run(body)
	elapsed := time.Since(start)
	virtual := sim.Time(0)
	if runErr == nil {
		virtual = w.MaxClock()
	}
	w.Close()
	sampler.stop()
	if runErr != nil {
		return ScalePoint{}, runErr
	}

	pt.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	pt.SetupNs = float64(setup.Nanoseconds())
	pt.VirtualUs = (virtual / sim.Time(iters)).Us()
	pt.VirtualPs = int64(virtual)
	pt.PeakGoroutines = sampler.peak()
	pt.PeakRSSBytes = peakRSSBytes()
	runtime.GC() // release the point's worlds before the next one
	return pt, nil
}
