package bench

import (
	"testing"

	"repro/internal/sim"
)

func TestScaleSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank sweep in -short mode")
	}
	rep, err := RunScaleSweep(sim.HazelHenCray(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points for maxRanks=4096, want 2 (allgather+allreduce at 64x64)", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Ranks != 4096 {
			t.Errorf("%s: %d ranks, want 4096", p.Coll, p.Ranks)
		}
		if p.NsPerOp <= 0 || p.VirtualUs <= 0 {
			t.Errorf("%s: empty measurement (%v ns/op, %v virtual us)", p.Coll, p.NsPerOp, p.VirtualUs)
		}
		// The point's world holds one goroutine per rank while it runs;
		// the sampler must have seen them.
		if p.PeakGoroutines < p.Ranks {
			t.Errorf("%s: peak goroutines %d below rank count %d", p.Coll, p.PeakGoroutines, p.Ranks)
		}
	}
}

func TestScaleShapesRespectCap(t *testing.T) {
	for _, s := range scaleShapes(8192) {
		if s[0]*s[1] > 8192 {
			t.Errorf("shape %dx%d exceeds the 8192-rank cap", s[0], s[1])
		}
	}
	full := scaleShapes(1 << 20)
	last := full[len(full)-1]
	if last[0]*last[1] < 65536 {
		t.Errorf("full ladder tops out at %d ranks, want >= 65536", last[0]*last[1])
	}
}
