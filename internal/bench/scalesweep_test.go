package bench

import (
	"testing"

	"repro/internal/sim"
)

func TestScaleSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank sweep in -short mode")
	}
	rep, err := RunScaleSweep(sim.HazelHenCray(), 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("got %d points for maxRanks=4096, want 4 (allgather+allreduce at 64x64 on both engines)", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Ranks != 4096 {
			t.Errorf("%s/%s: %d ranks, want 4096", p.Coll, p.Engine, p.Ranks)
		}
		if p.NsPerOp <= 0 || p.VirtualUs <= 0 || p.VirtualPs <= 0 {
			t.Errorf("%s/%s: empty measurement (%v ns/op, %v virtual us)", p.Coll, p.Engine, p.NsPerOp, p.VirtualUs)
		}
		switch p.Engine {
		case "goroutine":
			// The point's world holds one goroutine per rank while it
			// runs; the sampler must have seen them.
			if p.PeakGoroutines < p.Ranks {
				t.Errorf("%s/%s: peak goroutines %d below rank count %d", p.Coll, p.Engine, p.PeakGoroutines, p.Ranks)
			}
			if p.FoldUnit != 0 {
				t.Errorf("%s/%s: goroutine point folded (unit %d)", p.Coll, p.Engine, p.FoldUnit)
			}
		case "event":
			// Both sweep workloads are fold-symmetric on the uniform
			// 64-ppn ladder, so the event points must run folded. (No
			// goroutine-count bound here: the previous point's workers
			// survive in the pool's global reserve, so the sampler sees
			// them even though this world spawns only FoldUnit workers.)
			if p.FoldUnit != p.PPN {
				t.Errorf("%s/%s: fold unit %d, want %d", p.Coll, p.Engine, p.FoldUnit, p.PPN)
			}
		default:
			t.Errorf("%s: unknown engine %q", p.Coll, p.Engine)
		}
	}
	// RunScaleSweep itself asserts cross-engine virtual-time equality,
	// but pin it here too so a future refactor can't drop the check.
	byColl := map[string][]int64{}
	for _, p := range rep.Points {
		byColl[p.Coll] = append(byColl[p.Coll], p.VirtualPs)
	}
	for collName, vs := range byColl {
		for _, v := range vs[1:] {
			if v != vs[0] {
				t.Errorf("%s: cross-engine virtual times differ: %v", collName, vs)
			}
		}
	}
}

func TestScaleShapesRespectCap(t *testing.T) {
	for _, s := range scaleShapes(8192) {
		if s[0]*s[1] > 8192 {
			t.Errorf("shape %dx%d exceeds the 8192-rank cap", s[0], s[1])
		}
	}
	full := scaleShapes(1 << 20)
	last := full[len(full)-1]
	if last[0]*last[1] != 1<<20 {
		t.Errorf("full ladder tops out at %d ranks, want 1048576", last[0]*last[1])
	}
}
