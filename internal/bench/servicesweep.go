package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/spec"
)

// This file measures the service dimension: how fast the what-if
// daemon answers queries once its cache is warm. The interesting
// number is not simulation speed (the scale sweep owns that) but the
// full HTTP round trip of a cache hit — parse, canonicalize,
// fingerprint, LRU lookup, encode — which is the path an interactive
// what-if client lives on.

// ServicePoint is one client-concurrency step of the service sweep.
type ServicePoint struct {
	// Clients is the number of concurrent keep-alive clients.
	Clients int `json:"clients"`
	// Requests is the total requests issued at this step.
	Requests int `json:"requests"`
	// QPS is the measured warm-cache throughput.
	QPS float64 `json:"qps"`
	// P50Us and P99Us are warm-cache round-trip latency percentiles in
	// host microseconds.
	P50Us float64 `json:"p50_us"`
	// P99Us is the 99th-percentile round trip.
	P99Us float64 `json:"p99_us"`
}

// ServiceSweepReport is the service dimension of a BENCH report.
type ServiceSweepReport struct {
	// Machine is the cost-model profile the query set ran on.
	Machine string `json:"machine"`
	// UniqueQueries is the size of the distinct-fingerprint query set.
	UniqueQueries int `json:"unique_queries"`
	// CacheHitRatio is hits/(hits+misses) over the whole sweep; warm
	// traffic dominates, so this must end up near 1.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Coalesced counts requests that joined an identical in-flight
	// simulation during the cold burst.
	Coalesced int64 `json:"coalesced"`
	// BitIdentical records the CLI/HTTP cross-check: the same canonical
	// Query executed through spec.Run and through the HTTP endpoint
	// returned identical virtual_ps on every point.
	BitIdentical bool `json:"bit_identical_cli_http"`
	// Points is the concurrency ladder.
	Points []ServicePoint `json:"points"`
	// ColdShape is the warm-world-pool phase: distinct fingerprints
	// sharing one world shape, measured cold against a pooled and a
	// construct-per-point daemon.
	ColdShape *ColdShapePhase `json:"cold_shape,omitempty"`
}

// ColdShapePhase measures the daemon's cold path under the warm world
// pool: a stream of DISTINCT-fingerprint queries (every one a cache
// miss) that share one world shape, plus one long-ladder sweep query,
// each run against a pooled daemon and against a construct-per-point
// daemon (spec.Exec.PerPointWorlds) — the PR7 behavior. The pooled
// daemon's responses are also cross-checked bit-identically against
// direct construct-per-point spec execution.
type ColdShapePhase struct {
	// Shape is the common topology of the distinct queries.
	Shape string `json:"shape"`
	// Queries is how many distinct-fingerprint point queries ran.
	Queries int `json:"queries"`
	// PooledP50Us / PerPointP50Us are the cold per-request latency
	// medians (host microseconds) with and without the world pool.
	PooledP50Us   float64 `json:"pooled_p50_us"`
	PerPointP50Us float64 `json:"per_point_p50_us"`
	// P50Speedup is PerPointP50Us / PooledP50Us.
	P50Speedup float64 `json:"p50_speedup"`
	// SweepSizes is the ladder length of the sweep-query comparison.
	SweepSizes int `json:"sweep_sizes"`
	// PooledSweepMs / PerPointSweepMs are the wall-clock costs of one
	// cold long-ladder sweep query with warm-world groups vs a world
	// per point.
	PooledSweepMs   float64 `json:"pooled_sweep_ms"`
	PerPointSweepMs float64 `json:"per_point_sweep_ms"`
	// SweepSpeedup is PerPointSweepMs / PooledSweepMs.
	SweepSpeedup float64 `json:"sweep_speedup"`
	// PoolHitRatio is the pooled daemon's world-pool hit ratio over
	// the phase (first checkout per shape misses; the rest must hit).
	PoolHitRatio float64 `json:"pool_hit_ratio"`
	// BitIdentical records the in-sweep cross-check: every pooled
	// response matched construct-per-point execution bit-identically
	// (virtual_ps on every point).
	BitIdentical bool `json:"bit_identical_pooled_cold"`
}

// serviceQuerySet builds the distinct what-if queries the sweep
// cycles through — different collectives, shapes and ladders, so the
// cache holds more than one entry.
func serviceQuerySet(machine string) []string {
	var qs []string
	for _, c := range []struct {
		coll  string
		shape string
		sizes string
	}{
		{"allgather", `{"nodes":4,"ppn":8}`, "[64,4096]"},
		{"allreduce", `{"nodes":8,"ppn":4}`, "[1024]"},
		{"bcast", `{"nodes":16,"ppn":2}`, "[65536]"},
		{"barrier", `{"nodes":4,"ppn":4}`, "[1]"},
		{"alltoall", `{"nodes":2,"ppn":8}`, "[512]"},
		{"gather", `{"nodes":8,"ppn":8}`, "[256,2048]"},
	} {
		qs = append(qs, fmt.Sprintf(
			`{"machine":%q,"topology":%s,"collective":%q,"sizes":%s}`,
			machine, c.shape, c.coll, c.sizes))
	}
	return qs
}

// RunServiceSweep starts an in-process daemon, warms its cache with
// the query set, then drives it with stepped concurrent keep-alive
// clients and records warm-cache throughput and latency percentiles.
// It also performs the CLI/HTTP bit-identity cross-check on the first
// query.
func RunServiceSweep(machine string, requestsPerStep int) (*ServiceSweepReport, error) {
	if requestsPerStep <= 0 {
		requestsPerStep = 20000
	}
	svc := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	queries := serviceQuerySet(machine)
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	post := func(body string) ([]byte, error) {
		resp, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("bench: service %d: %s", resp.StatusCode, b)
		}
		return b, nil
	}

	// Cold burst: every query issued concurrently several times over,
	// so the coalescing path is exercised while the cache fills.
	var wg sync.WaitGroup
	coldErrs := make([]error, len(queries)*4)
	for i := range coldErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, coldErrs[i] = post(queries[i%len(queries)])
		}(i)
	}
	wg.Wait()
	for _, err := range coldErrs {
		if err != nil {
			return nil, err
		}
	}

	rep := &ServiceSweepReport{Machine: machine, UniqueQueries: len(queries)}

	// CLI/HTTP bit-identity cross-check on the first query.
	q, err := spec.Parse([]byte(queries[0]))
	if err != nil {
		return nil, err
	}
	direct, err := spec.Run(q)
	if err != nil {
		return nil, err
	}
	body, err := post(queries[0])
	if err != nil {
		return nil, err
	}
	var viaHTTP spec.Result
	if err := json.Unmarshal(body, &viaHTTP); err != nil {
		return nil, err
	}
	rep.BitIdentical = len(direct.Points) == len(viaHTTP.Points)
	for i := range direct.Points {
		if !rep.BitIdentical || direct.Points[i].VirtualPs != viaHTTP.Points[i].VirtualPs {
			rep.BitIdentical = false
			break
		}
	}

	// Warm steps: fixed request budget spread over the client count.
	for _, clients := range []int{1, 8, 32} {
		perClient := requestsPerStep / clients
		latencies := make([][]time.Duration, clients)
		errs := make([]error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					if _, err := post(queries[(c+i)%len(queries)]); err != nil {
						errs[c] = err
						return
					}
					lat = append(lat, time.Since(t0))
				}
				latencies[c] = lat
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var all []time.Duration
		for _, lat := range latencies {
			all = append(all, lat...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			if len(all) == 0 {
				return 0
			}
			i := int(p * float64(len(all)-1))
			return float64(all[i]) / 1e3
		}
		rep.Points = append(rep.Points, ServicePoint{
			Clients:  clients,
			Requests: len(all),
			QPS:      float64(len(all)) / elapsed.Seconds(),
			P50Us:    pct(0.50),
			P99Us:    pct(0.99),
		})
	}

	hits, misses, coalesced := svc.Stats()
	if hits+misses > 0 {
		rep.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	rep.Coalesced = coalesced

	cold, err := runColdShapePhase(machine)
	if err != nil {
		return nil, err
	}
	rep.ColdShape = cold
	return rep, nil
}

// runColdShapePhase drives the cold-path comparison behind
// ServiceSweepReport.ColdShape: the same stream of distinct-fingerprint
// same-shape queries against a pooled daemon and a construct-per-point
// daemon, then one long-ladder sweep query against each. Every pooled
// response is cross-checked bit-identically against direct
// construct-per-point execution, so the speedup numbers can never come
// from computing something different.
func runColdShapePhase(machine string) (*ColdShapePhase, error) {
	const (
		nodes, ppn = 128, 8
		nQueries   = 24
		nSweep     = 16
	)
	ph := &ColdShapePhase{
		Shape:      fmt.Sprintf("%dx%d", nodes, ppn),
		Queries:    nQueries,
		SweepSizes: nSweep,
	}
	// Fold is pinned off: under "auto" the fold unit can vary with the
	// message size, which would split the ladder into different world
	// shapes and understate (or confound) pool reuse.
	pointQ := func(i int) string {
		return fmt.Sprintf(
			`{"machine":%q,"topology":{"nodes":%d,"ppn":%d},"engine":"event","fold":"off","collective":"bcast","sizes":[%d]}`,
			machine, nodes, ppn, 64+i*16)
	}
	sizes := make([]string, nSweep)
	for i := range sizes {
		sizes[i] = fmt.Sprintf("%d", 64+i*64)
	}
	sweepQ := fmt.Sprintf(
		`{"machine":%q,"topology":{"nodes":%d,"ppn":%d},"engine":"event","fold":"off","collective":"bcast","sizes":[%s]}`,
		machine, nodes, ppn, strings.Join(sizes, ","))

	type daemonRun struct {
		p50Us    float64
		sweepMs  float64
		bodies   [][]byte // nQueries point responses, then the sweep response
		hitRatio float64
	}
	drive := func(cfg server.Config) (*daemonRun, error) {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
		svc := server.New(cfg)
		defer svc.Close()
		ts := httptest.NewServer(svc)
		defer ts.Close()
		client := ts.Client()
		post := func(body string) ([]byte, error) {
			resp, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("bench: cold shape %d: %s", resp.StatusCode, b)
			}
			return b, nil
		}
		r := &daemonRun{}
		lat := make([]time.Duration, 0, nQueries)
		for i := 0; i < nQueries; i++ {
			t0 := time.Now()
			b, err := post(pointQ(i))
			if err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
			r.bodies = append(r.bodies, b)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		r.p50Us = float64(lat[len(lat)/2]) / 1e3
		t0 := time.Now()
		b, err := post(sweepQ)
		if err != nil {
			return nil, err
		}
		r.sweepMs = float64(time.Since(t0)) / 1e6
		r.bodies = append(r.bodies, b)
		r.hitRatio = svc.PoolStats().HitRatio()
		return r, nil
	}

	pooled, err := drive(server.Config{})
	if err != nil {
		return nil, err
	}
	perPoint, err := drive(server.Config{PerPointWorlds: true})
	if err != nil {
		return nil, err
	}

	ph.PooledP50Us, ph.PerPointP50Us = pooled.p50Us, perPoint.p50Us
	if pooled.p50Us > 0 {
		ph.P50Speedup = perPoint.p50Us / pooled.p50Us
	}
	ph.PooledSweepMs, ph.PerPointSweepMs = pooled.sweepMs, perPoint.sweepMs
	if pooled.sweepMs > 0 {
		ph.SweepSpeedup = perPoint.sweepMs / pooled.sweepMs
	}
	ph.PoolHitRatio = pooled.hitRatio

	// Bit-identity referee: every pooled HTTP response, point and
	// sweep alike, against direct construct-per-point execution.
	ph.BitIdentical = true
	referee := &spec.Exec{PerPointWorlds: true}
	check := func(body []byte, raw string) error {
		q, err := spec.Parse([]byte(raw))
		if err != nil {
			return err
		}
		want, err := referee.RunContext(context.Background(), q)
		if err != nil {
			return err
		}
		var got spec.Result
		if err := json.Unmarshal(body, &got); err != nil {
			return err
		}
		if len(want.Points) != len(got.Points) {
			ph.BitIdentical = false
			return nil
		}
		for i := range want.Points {
			if want.Points[i].VirtualPs != got.Points[i].VirtualPs {
				ph.BitIdentical = false
			}
		}
		return nil
	}
	for i := 0; i < nQueries; i++ {
		if err := check(pooled.bodies[i], pointQ(i)); err != nil {
			return nil, err
		}
	}
	if err := check(pooled.bodies[nQueries], sweepQ); err != nil {
		return nil, err
	}
	return ph, nil
}
