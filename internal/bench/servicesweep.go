package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/spec"
)

// This file measures the service dimension: how fast the what-if
// daemon answers queries once its cache is warm. The interesting
// number is not simulation speed (the scale sweep owns that) but the
// full HTTP round trip of a cache hit — parse, canonicalize,
// fingerprint, LRU lookup, encode — which is the path an interactive
// what-if client lives on.

// ServicePoint is one client-concurrency step of the service sweep.
type ServicePoint struct {
	// Clients is the number of concurrent keep-alive clients.
	Clients int `json:"clients"`
	// Requests is the total requests issued at this step.
	Requests int `json:"requests"`
	// QPS is the measured warm-cache throughput.
	QPS float64 `json:"qps"`
	// P50Us and P99Us are warm-cache round-trip latency percentiles in
	// host microseconds.
	P50Us float64 `json:"p50_us"`
	// P99Us is the 99th-percentile round trip.
	P99Us float64 `json:"p99_us"`
}

// ServiceSweepReport is the service dimension of a BENCH report.
type ServiceSweepReport struct {
	// Machine is the cost-model profile the query set ran on.
	Machine string `json:"machine"`
	// UniqueQueries is the size of the distinct-fingerprint query set.
	UniqueQueries int `json:"unique_queries"`
	// CacheHitRatio is hits/(hits+misses) over the whole sweep; warm
	// traffic dominates, so this must end up near 1.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Coalesced counts requests that joined an identical in-flight
	// simulation during the cold burst.
	Coalesced int64 `json:"coalesced"`
	// BitIdentical records the CLI/HTTP cross-check: the same canonical
	// Query executed through spec.Run and through the HTTP endpoint
	// returned identical virtual_ps on every point.
	BitIdentical bool `json:"bit_identical_cli_http"`
	// Points is the concurrency ladder.
	Points []ServicePoint `json:"points"`
}

// serviceQuerySet builds the distinct what-if queries the sweep
// cycles through — different collectives, shapes and ladders, so the
// cache holds more than one entry.
func serviceQuerySet(machine string) []string {
	var qs []string
	for _, c := range []struct {
		coll  string
		shape string
		sizes string
	}{
		{"allgather", `{"nodes":4,"ppn":8}`, "[64,4096]"},
		{"allreduce", `{"nodes":8,"ppn":4}`, "[1024]"},
		{"bcast", `{"nodes":16,"ppn":2}`, "[65536]"},
		{"barrier", `{"nodes":4,"ppn":4}`, "[1]"},
		{"alltoall", `{"nodes":2,"ppn":8}`, "[512]"},
		{"gather", `{"nodes":8,"ppn":8}`, "[256,2048]"},
	} {
		qs = append(qs, fmt.Sprintf(
			`{"machine":%q,"topology":%s,"collective":%q,"sizes":%s}`,
			machine, c.shape, c.coll, c.sizes))
	}
	return qs
}

// RunServiceSweep starts an in-process daemon, warms its cache with
// the query set, then drives it with stepped concurrent keep-alive
// clients and records warm-cache throughput and latency percentiles.
// It also performs the CLI/HTTP bit-identity cross-check on the first
// query.
func RunServiceSweep(machine string, requestsPerStep int) (*ServiceSweepReport, error) {
	if requestsPerStep <= 0 {
		requestsPerStep = 20000
	}
	svc := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	queries := serviceQuerySet(machine)
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	post := func(body string) ([]byte, error) {
		resp, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("bench: service %d: %s", resp.StatusCode, b)
		}
		return b, nil
	}

	// Cold burst: every query issued concurrently several times over,
	// so the coalescing path is exercised while the cache fills.
	var wg sync.WaitGroup
	coldErrs := make([]error, len(queries)*4)
	for i := range coldErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, coldErrs[i] = post(queries[i%len(queries)])
		}(i)
	}
	wg.Wait()
	for _, err := range coldErrs {
		if err != nil {
			return nil, err
		}
	}

	rep := &ServiceSweepReport{Machine: machine, UniqueQueries: len(queries)}

	// CLI/HTTP bit-identity cross-check on the first query.
	q, err := spec.Parse([]byte(queries[0]))
	if err != nil {
		return nil, err
	}
	direct, err := spec.Run(q)
	if err != nil {
		return nil, err
	}
	body, err := post(queries[0])
	if err != nil {
		return nil, err
	}
	var viaHTTP spec.Result
	if err := json.Unmarshal(body, &viaHTTP); err != nil {
		return nil, err
	}
	rep.BitIdentical = len(direct.Points) == len(viaHTTP.Points)
	for i := range direct.Points {
		if !rep.BitIdentical || direct.Points[i].VirtualPs != viaHTTP.Points[i].VirtualPs {
			rep.BitIdentical = false
			break
		}
	}

	// Warm steps: fixed request budget spread over the client count.
	for _, clients := range []int{1, 8, 32} {
		perClient := requestsPerStep / clients
		latencies := make([][]time.Duration, clients)
		errs := make([]error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					if _, err := post(queries[(c+i)%len(queries)]); err != nil {
						errs[c] = err
						return
					}
					lat = append(lat, time.Since(t0))
				}
				latencies[c] = lat
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var all []time.Duration
		for _, lat := range latencies {
			all = append(all, lat...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			if len(all) == 0 {
				return 0
			}
			i := int(p * float64(len(all)-1))
			return float64(all[i]) / 1e3
		}
		rep.Points = append(rep.Points, ServicePoint{
			Clients:  clients,
			Requests: len(all),
			QPS:      float64(len(all)) / elapsed.Seconds(),
			P50Us:    pct(0.50),
			P99Us:    pct(0.99),
		})
	}

	hits, misses, coalesced := svc.Stats()
	if hits+misses > 0 {
		rep.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	rep.Coalesced = coalesced
	return rep, nil
}
