//go:build !linux

package bench

import "runtime"

// peakRSSBytes approximates the resident high-water mark on platforms
// without /proc: the bytes the Go runtime obtained from the OS. Not a
// true RSS, but monotone and comparable within one run.
func peakRSSBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
