package bench

import (
	"fmt"

	"repro/internal/bpmf"
	"repro/internal/sim"
	"repro/internal/summa"

	"repro/internal/mpi"
)

// FigOpts tunes the sweeps; the zero value reproduces the paper's
// parameters at a coarser element grid (use Fine for the full grid).
type FigOpts struct {
	Fine  bool // full 2^0..2^15 element sweep instead of every 4th
	Iters int  // timed iterations per point
}

func (o FigOpts) elems() []int {
	if o.Fine {
		return ElemsFine()
	}
	return Elems()
}

// Fig7 reproduces the single-full-node comparison: Hy_Allgather vs
// Allgather on 24 ranks of one node, for both library stacks.
func Fig7(o FigOpts) (*Table, error) {
	t := &Table{
		Name:   "Figure 7: allgather within one full node (24 ranks), time in us",
		Note:   "Paper: Hy_Allgather is flat (one node barrier) and always below Allgather.",
		Header: []string{"elems", "Hy+OpenMPI", "Ag+OpenMPI", "Hy+CrayMPI", "Ag+CrayMPI"},
	}
	shape := []int{CoresPerNode}
	for _, elems := range o.elems() {
		row := []string{fmt.Sprint(elems)}
		for _, m := range Machines() {
			hy, err := HyAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
			if err != nil {
				return nil, err
			}
			pure, err := PureAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtUs(hy), fmtUs(pure))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8 reproduces the one-rank-per-node comparison over 4, 16 and 64
// nodes (one sub-table per library stack, as in Figs. 8a/8b).
func Fig8(o FigOpts) ([]*Table, error) {
	var tables []*Table
	for _, m := range Machines() {
		t := &Table{
			Name: fmt.Sprintf("Figure 8 (%s): allgather with one rank per node, time in us", m.Name),
			Note: "Paper: Hy_Allgather (MPI_Allgatherv) is slightly slower; the gap narrows at 64 nodes.",
			Header: []string{"elems",
				"Hy4", "Ag4", "Hy16", "Ag16", "Hy64", "Ag64"},
		}
		for _, elems := range o.elems() {
			row := []string{fmt.Sprint(elems)}
			for _, nodes := range []int{4, 16, 64} {
				shape := make([]int, nodes)
				for i := range shape {
					shape[i] = 1
				}
				hy, err := HyAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
				if err != nil {
					return nil, err
				}
				pure, err := PureAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
				if err != nil {
					return nil, err
				}
				row = append(row, fmtUs(hy), fmtUs(pure))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig9 reproduces the ppn scaling on 64 nodes for 512 and 16384
// elements.
func Fig9(o FigOpts) ([]*Table, error) {
	var tables []*Table
	for _, elems := range []int{512, 16384} {
		t := &Table{
			Name: fmt.Sprintf("Figure 9: allgather across 64 nodes, %d elements, time in us", elems),
			Note: "Paper: the Hy_Allgather advantage grows with ranks per node.",
			Header: []string{"ppn",
				"Hy+OpenMPI", "Ag+OpenMPI", "Hy+CrayMPI", "Ag+CrayMPI"},
		}
		for ppn := 3; ppn <= 24; ppn += 3 {
			shape := make([]int, 64)
			for i := range shape {
				shape[i] = ppn
			}
			row := []string{fmt.Sprint(ppn)}
			for _, m := range Machines() {
				hy, err := HyAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
				if err != nil {
					return nil, err
				}
				pure, err := PureAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
				if err != nil {
					return nil, err
				}
				row = append(row, fmtUs(hy), fmtUs(pure))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig10Shape is the irregular population of Fig. 10: 42 nodes with 24
// ranks plus one node with 16 ranks (1024 ranks total).
func Fig10Shape() []int {
	shape := make([]int, 43)
	for i := 0; i < 42; i++ {
		shape[i] = 24
	}
	shape[42] = 16
	return shape
}

// Fig10 reproduces the irregularly-populated-nodes comparison.
func Fig10(o FigOpts) (*Table, error) {
	t := &Table{
		Name:   "Figure 10: allgather on irregularly populated nodes (42x24 + 1x16 = 1024 ranks), time in us",
		Note:   "Paper: Hy_Allgather keeps consistently lower latency.",
		Header: []string{"elems", "Hy+OpenMPI", "Ag+OpenMPI", "Hy+CrayMPI", "Ag+CrayMPI"},
	}
	shape := Fig10Shape()
	for _, elems := range o.elems() {
		row := []string{fmt.Sprint(elems)}
		for _, m := range Machines() {
			hy, err := HyAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
			if err != nil {
				return nil, err
			}
			pure, err := PureAllgatherLatency(m, shape, 8*elems, MicroOpts{Iters: o.Iters})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtUs(hy), fmtUs(pure))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11Cores is the core-count sweep of the SUMMA figures; each count
// must be a perfect square (process grid).
func Fig11Cores() []int { return []int{4, 16, 64, 256, 1024} }

// Fig11Blocks is the per-core block size sweep (the four panels).
func Fig11Blocks() []int { return []int{8, 64, 128, 256} }

// Fig11 reproduces the SUMMA comparison (Ori_SUMMA vs Hy_SUMMA and
// their ratio) on the Cray profile, one table per block size.
func Fig11(o FigOpts) ([]*Table, error) {
	model := sim.HazelHenCray()
	var tables []*Table
	for _, b := range Fig11Blocks() {
		t := &Table{
			Name:   fmt.Sprintf("Figure 11 (%dx%d blocks): SUMMA on Cray profile", b, b),
			Note:   "Paper: ratio > 1 everywhere; largest for small blocks on one node, shrinking as compute grows.",
			Header: []string{"cores", "Ori_us", "Hy_us", "ratio"},
		}
		for _, cores := range Fig11Cores() {
			grid := 1
			for grid*grid < cores {
				grid++
			}
			topo, err := sim.NewTopology(ShapeFor(cores))
			if err != nil {
				return nil, err
			}
			var ori, hy sim.Time
			for _, hybridRun := range []bool{false, true} {
				w, err := mpi.NewWorld(model, topo)
				if err != nil {
					return nil, err
				}
				res, err := summa.Run(w, summa.Config{GridDim: grid, BlockDim: b, Hybrid: hybridRun})
				w.Close()
				if err != nil {
					return nil, err
				}
				if hybridRun {
					hy = res.Makespan
				} else {
					ori = res.Makespan
				}
			}
			t.AddRow(fmt.Sprint(cores), fmtUs(ori), fmtUs(hy),
				fmt.Sprintf("%.2f", float64(ori)/float64(hy)))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12Cores is the BPMF core sweep.
func Fig12Cores() []int { return []int{24, 120, 240, 360, 480, 1024} }

// Fig12Config is the chembl_20-shaped workload (see EXPERIMENTS.md for
// the calibration of the per-row overhead).
func Fig12Config() bpmf.Config {
	// Users matches chembl_20's compound count; the target side is
	// widened from 346 so every rank of the 1024-core point holds at
	// least one item row (see EXPERIMENTS.md).
	return bpmf.Config{
		Users: 15073, Items: 2048, K: 10, AvgDeg: 4,
		Iters: 20, Seed: 20, RowOverheadFlops: 3e6,
	}
}

// Fig12 reproduces the BPMF TotalTime ratio sweep on the Cray profile.
func Fig12(o FigOpts) (*Table, error) {
	model := sim.HazelHenCray()
	t := &Table{
		Name:   "Figure 12: BPMF TotalTime ratio Ori_BPMF/Hy_BPMF (20 iterations, chembl_20-shaped synthetic data)",
		Note:   "Paper: ratio above 1, slowly rising with core count (up to ~1.1 at 1024 cores).",
		Header: []string{"cores", "Ori_ms", "Hy_ms", "ratio"},
	}
	base := Fig12Config()
	for _, cores := range Fig12Cores() {
		topo, err := sim.NewTopology(ShapeFor(cores))
		if err != nil {
			return nil, err
		}
		var ori, hy sim.Time
		for _, hybridRun := range []bool{false, true} {
			w, err := mpi.NewWorld(model, topo)
			if err != nil {
				return nil, err
			}
			cfg := base
			cfg.Hybrid = hybridRun
			res, err := bpmf.Run(w, cfg)
			w.Close()
			if err != nil {
				return nil, err
			}
			if hybridRun {
				hy = res.Makespan
			} else {
				ori = res.Makespan
			}
		}
		t.AddRow(fmt.Sprint(cores),
			fmt.Sprintf("%.1f", ori.Ms()), fmt.Sprintf("%.1f", hy.Ms()),
			fmt.Sprintf("%.3f", float64(ori)/float64(hy)))
	}
	return t, nil
}
