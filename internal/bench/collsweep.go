package bench

import (
	"repro/internal/coll"
	"repro/internal/sim"
)

// The coll-sweep reports what the selection engine decides, not how
// fast the host runs: for each collective and communicator shape it
// sweeps the message size and records the algorithm the cost policy
// picks, then extracts the crossover points — the sizes at which the
// choice flips. The committed BENCH_*.json files carry the table so a
// PR that moves a crossover shows up in review.

// SweepPoint is one (collective, shape, size) decision.
type SweepPoint struct {
	Collective string  `json:"collective"`
	CommSize   int     `json:"comm_size"`
	Hop        string  `json:"hop"`
	Bytes      int     `json:"bytes"`
	Chosen     string  `json:"chosen"`
	EstUs      float64 `json:"est_us"`
}

// Crossover marks a size at which the chosen algorithm changes.
type Crossover struct {
	Collective string `json:"collective"`
	CommSize   int    `json:"comm_size"`
	Hop        string `json:"hop"`
	From       string `json:"from"`
	To         string `json:"to"`
	AtBytes    int    `json:"at_bytes"`
}

// CollSweepReport is the sweep section of a BENCH_*.json document.
type CollSweepReport struct {
	Model      string       `json:"model"`
	Policy     string       `json:"policy"`
	Points     []SweepPoint `json:"points"`
	Crossovers []Crossover  `json:"crossovers"`
}

// sweepSizes is the message-size sweep: 8 B to 4 MiB in powers of two.
func sweepSizes() []int {
	var out []int
	for b := 8; b <= 4<<20; b <<= 1 {
		out = append(out, b)
	}
	return out
}

// RunCollSweep evaluates the cost-policy selection over the standard
// sweep: the three tunable collectives with real crossovers, at
// single-node-ish and figure-scale communicator sizes, over the
// network hop class (the regime the paper's figures live in).
func RunCollSweep(model *sim.CostModel, tun coll.Tuning) *CollSweepReport {
	rep := &CollSweepReport{Model: model.Name, Policy: tun.Policy.String()}
	colls := []coll.Collective{coll.CollAllgather, coll.CollAllreduce, coll.CollBcast}
	for _, cl := range colls {
		for _, size := range []int{8, 24, 64} {
			prev := ""
			for _, bytes := range sweepSizes() {
				// Env conventions (see coll.Env): Bytes is the
				// per-rank block for allgather, the total vector
				// otherwise; Count feeds the reduction gamma term.
				e := coll.Env{Size: size, Bytes: bytes, Count: bytes / 8, Model: model, Hop: sim.HopNet}
				chosen, err := coll.Choose(cl, e, tun)
				if err != nil {
					continue
				}
				var est sim.Time
				for _, c := range coll.Candidates(cl, e) {
					if c.Name == chosen {
						est = c.Est
					}
				}
				rep.Points = append(rep.Points, SweepPoint{
					Collective: cl.String(),
					CommSize:   size,
					Hop:        sim.HopNet.String(),
					Bytes:      bytes,
					Chosen:     chosen,
					EstUs:      est.Us(),
				})
				if prev != "" && chosen != prev {
					rep.Crossovers = append(rep.Crossovers, Crossover{
						Collective: cl.String(),
						CommSize:   size,
						Hop:        sim.HopNet.String(),
						From:       prev,
						To:         chosen,
						AtBytes:    bytes,
					})
				}
				prev = chosen
			}
		}
	}
	return rep
}
