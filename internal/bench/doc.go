// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Figs. 7-12) on the simulated
// cluster, printing the same series the paper plots. See DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Beyond the figures, the package carries the repository's performance
// accounting:
//
//   - The wall-clock harness (WallCases, RunWallCases) measures how
//     fast the simulator itself executes figure-scale workloads — host
//     ns/op, allocs/op, peak goroutines — and writes the BENCH_*.json
//     trajectory at the repo root; CheckAgainst is the CI
//     perf-regression gate over a committed baseline.
//   - The sweep dimensions extend a report: RunCollSweep (selection
//     crossovers per message size), RunTopoSweep (multi-level
//     hierarchies), RunScaleSweep (size-only collectives up to
//     1,048,576 ranks, per execution backend) and RunStencilSweep
//     (4-dim grid halo exchanges per halo
//     width, the process-topology dimension).
//   - The golden determinism tests pin virtual makespans to the
//     picosecond, so optimizations to the simulator can never move
//     modeled time.
//
// cmd/perf is the command-line front end for all of it.
package bench
