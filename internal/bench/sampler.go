package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// goroutineSampler polls the process goroutine count in the background
// and keeps the high-water mark — the "how many parked rank workers did
// this workload really hold" column of the wall-clock and scale
// reports.
type goroutineSampler struct {
	max  atomic.Int64
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

func newGoroutineSampler() *goroutineSampler {
	s := &goroutineSampler{quit: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-s.quit:
				return
			case <-tick.C:
				if n := int64(runtime.NumGoroutine()); n > s.max.Load() {
					s.max.Store(n)
				}
			}
		}
	}()
	return s
}

// stop retires the sampling goroutine. Idempotent, so error paths can
// defer it while success paths stop eagerly before reading peak().
func (s *goroutineSampler) stop() {
	s.once.Do(func() {
		close(s.quit)
		s.wg.Wait()
	})
}

func (s *goroutineSampler) peak() int { return int(s.max.Load()) }
