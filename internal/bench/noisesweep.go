package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/spec"
)

// The noise sweep is the robustness dimension of cmd/perf -sweep: the
// same collective ladder simulated under a ladder of deterministic
// noise configurations — link congestion, seeded jitter, straggler
// ranks and their combination — reporting how far each level stretches
// the virtual makespan over the clean run. Every level is executed
// four ways (goroutine engine warm, event engine warm, per-point
// referee worlds, pooled worlds with a warm re-run) and the point is
// only marked bit-identical when all of them agree exactly: the sweep
// doubles as the determinism gate for the noise subsystem.

// NoisePoint is one (noise level, ladder size) measurement.
type NoisePoint struct {
	// Label names the noise level, e.g. "jitter=0.3".
	Label string `json:"label"`
	// Bytes is the ladder entry.
	Bytes int `json:"bytes"`
	// VirtualPs is the exact virtual makespan (Iters operations).
	VirtualPs int64 `json:"virtual_ps"`
	// VirtualUs is the same makespan in microseconds.
	VirtualUs float64 `json:"virtual_us"`
	// SlowdownVsClean is VirtualPs over the clean level's VirtualPs at
	// the same size (1.0 for the clean level itself).
	SlowdownVsClean float64 `json:"slowdown_vs_clean"`
	// BitIdentical reports that both engines, the per-point referee,
	// and a pooled warm re-run produced exactly this VirtualPs.
	BitIdentical bool `json:"bit_identical"`
}

// NoiseSweepReport is the noise section of a BENCH_*.json document.
type NoiseSweepReport struct {
	Model      string `json:"model"`
	Collective string `json:"collective"`
	Nodes      int    `json:"nodes"`
	PPN        int    `json:"ppn"`
	Iters      int    `json:"iters"`
	// Seed keys every noisy level.
	Seed int64 `json:"seed"`
	// WallMs is the host time the whole sweep took.
	WallMs float64 `json:"wall_ms"`
	// BitIdentical is the conjunction over every point — the headline
	// determinism verdict.
	BitIdentical bool         `json:"bit_identical"`
	Points       []NoisePoint `json:"points"`
}

// noiseLevel is one rung of the noise ladder.
type noiseLevel struct {
	label string
	noise *spec.Noise
}

// noiseLevels is the standard ladder: clean, two congestion factors,
// two jitter amplitudes, a straggler, and everything at once.
func noiseLevels(seed int64) []noiseLevel {
	return []noiseLevel{
		{"clean", nil},
		{"congestion net=2", &spec.Noise{Seed: seed, Congestion: map[string]float64{"net": 2}}},
		{"congestion net=8", &spec.Noise{Seed: seed, Congestion: map[string]float64{"net": 8}}},
		{"jitter=0.1", &spec.Noise{Seed: seed, Jitter: 0.1}},
		{"jitter=0.5", &spec.Noise{Seed: seed, Jitter: 0.5}},
		{"straggler x8", &spec.Noise{Seed: seed, Stragglers: []int{0}, StragglerFactor: 8}},
		{"mixed", &spec.Noise{Seed: seed, Jitter: 0.3, Stragglers: []int{0}, StragglerFactor: 4,
			Congestion: map[string]float64{"net": 2, "shm": 1.5}}},
	}
}

// noiseSweepSizes is the ladder each level runs.
var noiseSweepSizes = []int{4096, 262144}

// RunNoiseSweep measures the noise dimension on the given machine
// profile: an 8x8 allreduce ladder per noise level, each level
// executed across both engines and all three world-reuse paths and
// cross-checked for exact agreement.
func RunNoiseSweep(machine string, seed int64) (*NoiseSweepReport, error) {
	const nodes, ppn, iters = 8, 8, 2
	rep := &NoiseSweepReport{
		Model: machine, Collective: "allreduce",
		Nodes: nodes, PPN: ppn, Iters: iters,
		Seed: seed, BitIdentical: true,
	}
	pool := spec.NewWorldPool(spec.PoolConfig{})
	defer pool.Close()
	start := time.Now()

	clean := map[int]int64{} // bytes -> clean VirtualPs
	for _, lvl := range noiseLevels(seed) {
		mkQuery := func(engine string) *spec.Query {
			return &spec.Query{
				Machine:    machine,
				Topology:   spec.Topology{Nodes: nodes, PPN: ppn},
				Collective: "allreduce",
				Sizes:      append([]int(nil), noiseSweepSizes...),
				Iters:      iters,
				Engine:     engine,
				Noise:      cloneSpecNoise(lvl.noise),
				Tuning:     spec.Tuning{Policy: "cost"},
			}
		}
		// The reference timeline: goroutine engine, warm world within
		// the ladder group.
		ref, err := spec.Run(mkQuery("goroutine"))
		if err != nil {
			return nil, fmt.Errorf("bench: noise sweep %q: %w", lvl.label, err)
		}
		// Challengers: the event engine, the per-point referee path, and
		// a pooled execution run twice so the second pass replays on a
		// warm checked-in world.
		challengers := []*spec.Result{}
		ev, err := spec.Run(mkQuery("event"))
		if err != nil {
			return nil, fmt.Errorf("bench: noise sweep %q (event): %w", lvl.label, err)
		}
		challengers = append(challengers, ev)
		perPoint, err := (&spec.Exec{PerPointWorlds: true}).RunContext(context.Background(), mkQuery("goroutine"))
		if err != nil {
			return nil, fmt.Errorf("bench: noise sweep %q (per-point): %w", lvl.label, err)
		}
		challengers = append(challengers, perPoint)
		pooled := &spec.Exec{Pool: pool}
		for pass := 0; pass < 2; pass++ {
			res, err := pooled.RunContext(context.Background(), mkQuery("goroutine"))
			if err != nil {
				return nil, fmt.Errorf("bench: noise sweep %q (pooled pass %d): %w", lvl.label, pass, err)
			}
			challengers = append(challengers, res)
		}

		for i, p := range ref.Points {
			identical := true
			for _, ch := range challengers {
				if ch.Points[i].VirtualPs != p.VirtualPs {
					identical = false
				}
			}
			if !identical {
				rep.BitIdentical = false
			}
			if lvl.noise == nil {
				clean[p.Bytes] = p.VirtualPs
			}
			slowdown := 0.0
			if base := clean[p.Bytes]; base > 0 {
				slowdown = float64(p.VirtualPs) / float64(base)
			}
			rep.Points = append(rep.Points, NoisePoint{
				Label: lvl.label, Bytes: p.Bytes,
				VirtualPs: p.VirtualPs, VirtualUs: float64(p.VirtualPs) / 1e6,
				SlowdownVsClean: slowdown, BitIdentical: identical,
			})
		}
	}
	rep.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	return rep, nil
}

// cloneSpecNoise deep-copies a noise block so each execution
// canonicalizes its own query without sharing slices or maps.
func cloneSpecNoise(n *spec.Noise) *spec.Noise {
	if n == nil {
		return nil
	}
	c := *n
	c.Stragglers = append([]int(nil), n.Stragglers...)
	c.Failures = append([]spec.Failure(nil), n.Failures...)
	if n.Congestion != nil {
		c.Congestion = make(map[string]float64, len(n.Congestion))
		for k, v := range n.Congestion {
			c.Congestion[k] = v
		}
	}
	return &c
}
