//go:build linux

package bench

import (
	"bytes"
	"os"
	"strconv"
)

// peakRSSBytes reads the process resident-set high-water mark (VmHWM)
// from /proc/self/status. The value is cumulative for the process, so a
// sweep reports the high-water mark as of each point's completion.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
