package bench_test

import (
	"os"

	"repro/internal/bench"
)

// Table is the report primitive every figure harness prints through.
func ExampleTable_Fprint() {
	tbl := bench.Table{
		Name:   "Fig. X",
		Note:   "virtual microseconds, deterministic",
		Header: []string{"elems", "pure", "hybrid"},
	}
	tbl.AddRow("512", "120.0", "24.5")
	tbl.AddRow("1024", "240.0", "49.0")
	if err := tbl.Fprint(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	//
	// == Fig. X ==
	// virtual microseconds, deterministic
	// elems   pure  hybrid
	// --------------------
	//   512  120.0    24.5
	//  1024  240.0    49.0
}
