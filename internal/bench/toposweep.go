package bench

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The topology sweep is the multi-level dimension of cmd/perf -sweep:
// for each level stack (node-only, socket ⊂ node, socket ⊂ node ⊂
// group) and ranks-per-node count it runs the composed pure-MPI
// allgather and the hybrid allgather (window at the stack's innermost
// shared level, threaded through coll.Tuning.SharedLevel), records the
// virtual makespans and the priced per-tier composition. The committed
// BENCH_*.json carries the table so a PR that moves a per-level
// crossover or a topology's virtual time shows up in review.

// TopoPoint is one (stack, shape, size) measurement.
type TopoPoint struct {
	Stack       string              `json:"stack"`
	Levels      int                 `json:"levels"`
	Nodes       int                 `json:"nodes"`
	PPN         int                 `json:"ppn"`
	Bytes       int                 `json:"bytes"`
	SharedLevel string              `json:"shared_level"`
	HierUs      float64             `json:"hier_virtual_us"`
	HybridUs    float64             `json:"hybrid_virtual_us"`
	Composition []coll.TierEstimate `json:"composition"`
}

// TopoSweepReport is the topology section of a BENCH_*.json document.
type TopoSweepReport struct {
	Model  string      `json:"model"`
	Policy string      `json:"policy"`
	Points []TopoPoint `json:"points"`
}

// topoStack describes one sweep topology family.
type topoStack struct {
	name   string
	levels []string // composer stack, innermost first
	shared string   // hybrid window level
	build  func(nodes, ppn int) (*sim.Topology, error)
}

func topoStacks() []topoStack {
	return []topoStack{
		{
			name:   "node",
			levels: []string{"node"},
			shared: "node",
			build:  func(nodes, ppn int) (*sim.Topology, error) { return sim.Uniform(nodes, ppn) },
		},
		{
			name:   "socket+node",
			levels: []string{"socket", "node"},
			shared: "socket",
			build: func(nodes, ppn int) (*sim.Topology, error) {
				return sim.UniformHier(ppn/2,
					sim.LevelDim{Name: "socket", Arity: 2},
					sim.LevelDim{Name: "node", Arity: nodes})
			},
		},
		{
			name:   "socket+node+group",
			levels: []string{"socket", "node", "group"},
			shared: "socket",
			build: func(nodes, ppn int) (*sim.Topology, error) {
				return sim.UniformHier(ppn/2,
					sim.LevelDim{Name: "socket", Arity: 2},
					sim.LevelDim{Name: "node", Arity: nodes / 2},
					sim.LevelDim{Name: "group", Arity: 2})
			},
		},
	}
}

// RunTopoSweep measures the topology dimension: levels x ppn at a
// fixed node count, two payload sizes per point.
func RunTopoSweep(model *sim.CostModel, tun coll.Tuning) (*TopoSweepReport, error) {
	rep := &TopoSweepReport{Model: model.Name, Policy: tun.Policy.String()}
	const nodes = 8
	for _, st := range topoStacks() {
		for _, ppn := range []int{8, 24} {
			for _, bytes := range []int{4 << 10, 512 << 10} {
				pt, err := runTopoPoint(model, tun, st, nodes, ppn, bytes)
				if err != nil {
					return nil, fmt.Errorf("bench: topo sweep %s %dx%d: %w", st.name, nodes, ppn, err)
				}
				rep.Points = append(rep.Points, pt)
			}
		}
	}
	return rep, nil
}

func runTopoPoint(model *sim.CostModel, tun coll.Tuning, st topoStack, nodes, ppn, bytes int) (TopoPoint, error) {
	topo, err := st.build(nodes, ppn)
	if err != nil {
		return TopoPoint{}, err
	}
	pt := TopoPoint{
		Stack: st.name, Levels: topo.NumLevels(),
		Nodes: nodes, PPN: ppn, Bytes: bytes, SharedLevel: st.shared,
	}

	// Composed pure-MPI allgather over the whole stack.
	hierTun := tun
	w, err := mpi.NewWorld(model, topo, mpi.WithCollConfig(hierTun))
	if err != nil {
		return TopoPoint{}, err
	}
	defer w.Close()
	if err := w.Run(func(p *mpi.Proc) error {
		h, err := coll.NewHierStack(p.CommWorld(), st.levels...)
		if err != nil {
			return err
		}
		if err := h.Allgather(mpi.Sized(bytes), mpi.Sized(bytes*p.Size()), bytes); err != nil {
			return err
		}
		if p.Rank() == 0 {
			ests, _, err := h.Composer().PriceAllgather(bytes, hierTun)
			if err != nil {
				return err
			}
			pt.Composition = ests
		}
		return nil
	}); err != nil {
		return TopoPoint{}, err
	}
	pt.HierUs = w.MaxClock().Us()

	// Hybrid allgather with the window at the stack's shared level,
	// selected through the tuning (the REPRO_COLL_TUNING path).
	hyTun := tun
	hyTun.SharedLevel = st.shared
	w2, err := mpi.NewWorld(model, topo, mpi.WithCollConfig(hyTun))
	if err != nil {
		return TopoPoint{}, err
	}
	defer w2.Close()
	if err := w2.Run(func(p *mpi.Proc) error {
		ctx, err := hybrid.New(p.CommWorld())
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgatherer(bytes)
		if err != nil {
			return err
		}
		return a.Allgather()
	}); err != nil {
		return TopoPoint{}, err
	}
	pt.HybridUs = w2.MaxClock().Us()
	return pt, nil
}
