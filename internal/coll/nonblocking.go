package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Nonblocking collectives (MPI-3 I-collectives), built as schedule
// objects executed by mpi.Sched — the request machinery's asynchronous
// progress engine. Each builder compiles the rank's rounds of the
// underlying algorithm; the caller overlaps local work between
// Start/Wait (or polls with Test), and the engine's virtual timeline
// makes the overlap deterministic: completion is max(local clock,
// schedule cursor).
//
// Relative tags inside a schedule must be identical on both sides of
// every transfer and independent of rank-local round counts (folding
// ranks run extra rounds), so they are derived from the algorithm's
// global step index, not from len(rounds).

// Iallgather starts a nonblocking allgather: recursive doubling on
// power-of-two communicators, ring otherwise (Bruck's rotated layout
// has no in-place round structure). recv must stay untouched until
// Wait.
func Iallgather(c *mpi.Comm, send, recv mpi.Buf, per int) (*mpi.Sched, error) {
	if err := checkAllgatherArgs(c, send, recv, per); err != nil {
		return nil, err
	}
	p := c.Proc()
	model := p.Model()
	n := c.Size()
	rank := c.Rank()

	rounds := []mpi.Round{{After: func(now sim.Time) sim.Time {
		mpi.CopyData(recv.Slice(rank*per, per), send.Slice(0, per))
		return now + model.CopyCost(per, 1)
	}}}
	switch {
	case n == 1:
	case isPow2(n):
		step := 0
		for mask := 1; mask < n; mask <<= 1 {
			partner := rank ^ mask
			haveBase := rank &^ (mask - 1)
			getBase := partner &^ (mask - 1)
			rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
				mpi.SchedRecv(recv.Slice(getBase*per, mask*per), partner, step),
				mpi.SchedSend(recv.Slice(haveBase*per, mask*per), partner, step),
			}})
			step++
		}
	default:
		right := (rank + 1) % n
		left := (rank - 1 + n) % n
		for i := 0; i < n-1; i++ {
			sendIdx := (rank - i + n) % n
			recvIdx := (rank - i - 1 + n) % n
			rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
				mpi.SchedRecv(recv.Slice(recvIdx*per, per), left, i),
				mpi.SchedSend(recv.Slice(sendIdx*per, per), right, i),
			}})
		}
	}
	return c.NewSched(rounds), nil
}

// Iallreduce starts a nonblocking allreduce (recursive doubling with
// the MPICH fold onto the power-of-two core for other sizes). send and
// recv must stay untouched until Wait.
func Iallreduce(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) (*mpi.Sched, error) {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return nil, err
	}
	p := c.Proc()
	model := p.Model()
	bytes := count * dt.Size()
	n := c.Size()
	rank := c.Rank()

	rounds := []mpi.Round{{After: func(now sim.Time) sim.Time {
		mpi.CopyData(recv.Slice(0, bytes), send.Slice(0, bytes))
		return now + model.CopyCost(bytes, 1)
	}}}
	if n == 1 {
		return c.NewSched(rounds), nil
	}
	tmp := p.World().NewBuf(bytes)
	apply := func(now sim.Time) sim.Time {
		op.Apply(recv, tmp, count, dt)
		return now + model.ComputeCost(float64(count))
	}

	// Relative tags: 0 folds, 1+step the core exchanges, stride-1 the
	// unfold.
	const unfoldTag = 63
	pof2, rem := foldCore(n)
	coreRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
			mpi.SchedSend(recv.Slice(0, bytes), rank+1, 0),
		}})
	case rank < 2*rem:
		rounds = append(rounds, mpi.Round{
			Ops:   []mpi.SchedOp{mpi.SchedRecv(tmp, rank-1, 0)},
			After: apply,
		})
		coreRank = rank / 2
	default:
		coreRank = rank - rem
	}
	if coreRank >= 0 {
		step := 0
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := coreToComm(coreRank^mask, rem)
			rounds = append(rounds, mpi.Round{
				Ops: []mpi.SchedOp{
					mpi.SchedRecv(tmp, partner, 1+step),
					mpi.SchedSend(recv.Slice(0, bytes), partner, 1+step),
				},
				After: apply,
			})
			step++
		}
	}
	if rank < 2*rem {
		if rank%2 == 0 {
			rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
				mpi.SchedRecv(recv.Slice(0, bytes), rank+1, unfoldTag),
			}})
		} else {
			rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
				mpi.SchedSend(recv.Slice(0, bytes), rank-1, unfoldTag),
			}})
		}
	}
	return c.NewSched(rounds), nil
}

// Ibcast starts a nonblocking binomial-tree broadcast. buf must stay
// untouched until Wait (on the root it is read, elsewhere written).
func Ibcast(c *mpi.Comm, buf mpi.Buf, root int) (*mpi.Sched, error) {
	if err := checkBcastArgs(c, buf, root); err != nil {
		return nil, err
	}
	n := c.Size()
	var rounds []mpi.Round
	if n == 1 {
		return c.NewSched(rounds), nil
	}
	rel := (c.Rank() - root + n) % n

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
				mpi.SchedRecv(buf, parent, 0),
			}})
			break
		}
		mask <<= 1
	}
	// Once the payload is here, the engine fires all child sends
	// back-to-back in one round.
	mask >>= 1
	var sends []mpi.SchedOp
	for mask > 0 {
		if rel+mask < n {
			sends = append(sends, mpi.SchedSend(buf, (rel+mask+root)%n, 0))
		}
		mask >>= 1
	}
	if len(sends) > 0 {
		rounds = append(rounds, mpi.Round{Ops: sends})
	}
	return c.NewSched(rounds), nil
}

// Ibarrier starts a nonblocking dissemination barrier: ceil(log2 n)
// rounds of zero-byte exchanges. Unlike the blocking Barrier it never
// takes the single-node flag fast path — the schedule runs on the
// message engine — so it costs a little more on one node, like real
// MPI_Ibarrier implementations.
func Ibarrier(c *mpi.Comm) (*mpi.Sched, error) {
	if c == nil {
		return nil, fmt.Errorf("coll: ibarrier on nil communicator")
	}
	n := c.Size()
	rank := c.Rank()
	empty := mpi.Sized(0)
	var rounds []mpi.Round
	step := 0
	for k := 1; k < n; k <<= 1 {
		dst := (rank + k) % n
		src := (rank - k + n) % n
		rounds = append(rounds, mpi.Round{Ops: []mpi.SchedOp{
			mpi.SchedRecv(empty, src, step),
			mpi.SchedSend(empty, dst, step),
		}})
		step++
	}
	return c.NewSched(rounds), nil
}
