package coll

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func runHierWorld(t *testing.T, model *sim.CostModel, topo *sim.Topology, body func(p *mpi.Proc) error) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(model, topo, mpi.WithRealData())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestComposerMatchesHierBitIdentical pins the refactor's core
// acceptance requirement from the geometry side: on a topology that
// declares extra levels but a cost model without per-level overrides,
// the two-level stack [node] must produce exactly the virtual time of
// the node-only topology — the extra levels fall back bit-identically.
func TestComposerMatchesHierBitIdentical(t *testing.T) {
	const per = 8 * 64
	run := func(topo *sim.Topology) sim.Time {
		w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(p *mpi.Proc) error {
			h, err := NewHier(p.CommWorld())
			if err != nil {
				return err
			}
			recv := mpi.Bytes(make([]byte, per*p.Size()))
			if err := h.Allgather(fill(p.Rank(), 64), recv, per); err != nil {
				return err
			}
			checkGathered(t, "hier", recv, p.Size(), 64)
			buf := fill(p.Rank(), 64)
			return h.Bcast(buf, 3)
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxClock()
	}

	flat, err := sim.NewTopology([]int{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := sim.UniformHier(3,
		sim.LevelDim{Name: "socket", Arity: 2},
		sim.LevelDim{Name: "node", Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(flat), run(deep)
	if a != b {
		t.Fatalf("virtual time diverged: node-only %d ps, socket⊂node %d ps", int64(a), int64(b))
	}
}

// TestComposerThreeLevelAllgather covers the recursive composition over
// 3+ level stacks, including irregular populations (paper Fig. 10),
// single-rank levels, and non-power-of-two leader counts at every tier.
func TestComposerThreeLevelAllgather(t *testing.T) {
	cases := []struct {
		name   string
		topo   func() (*sim.Topology, error)
		levels []string
	}{
		{
			name: "uniform_2x2x3",
			topo: func() (*sim.Topology, error) {
				return sim.UniformHier(3,
					sim.LevelDim{Name: "socket", Arity: 2},
					sim.LevelDim{Name: "node", Arity: 2})
			},
			levels: []string{"socket", "node"},
		},
		{
			name: "nonpow2_leaders_3x3x2",
			topo: func() (*sim.Topology, error) {
				return sim.UniformHier(2,
					sim.LevelDim{Name: "socket", Arity: 3},
					sim.LevelDim{Name: "node", Arity: 3})
			},
			levels: []string{"socket", "node"},
		},
		{
			name: "irregular_sockets_and_nodes",
			topo: func() (*sim.Topology, error) {
				return sim.NewHierTopology([]sim.LevelSpec{
					{Name: "socket", Sizes: []int{3, 1, 2, 2, 1}},
					{Name: "node", Sizes: []int{4, 5}},
				})
			},
			levels: []string{"socket", "node"},
		},
		{
			name: "single_rank_levels",
			topo: func() (*sim.Topology, error) {
				return sim.NewHierTopology([]sim.LevelSpec{
					{Name: "socket", Sizes: []int{1, 1, 1, 2}},
					{Name: "node", Sizes: []int{1, 2, 2}},
				})
			},
			levels: []string{"socket", "node"},
		},
		{
			name: "four_tier_group_stack",
			topo: func() (*sim.Topology, error) {
				return sim.UniformHier(2,
					sim.LevelDim{Name: "socket", Arity: 2},
					sim.LevelDim{Name: "node", Arity: 2},
					sim.LevelDim{Name: "group", Arity: 2})
			},
			levels: []string{"socket", "node", "group"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := tc.topo()
			if err != nil {
				t.Fatal(err)
			}
			const elems = 13
			per := 8 * elems
			runHierWorld(t, sim.HazelHenCray(), topo, func(p *mpi.Proc) error {
				h, err := NewHierStack(p.CommWorld(), tc.levels...)
				if err != nil {
					return err
				}
				if got := h.Composer().Tiers(); got != len(tc.levels) {
					return fmt.Errorf("composer has %d tiers, want %d", got, len(tc.levels))
				}
				recv := mpi.Bytes(make([]byte, per*p.Size()))
				if err := h.Allgather(fill(p.Rank(), elems), recv, per); err != nil {
					return err
				}
				checkGathered(t, tc.name, recv, p.Size(), elems)
				return nil
			})
		})
	}
}

// TestComposerBcastFromChild exercises the multi-tier leader-chain
// hand-off: the root is a deep child (not a leader at any level).
func TestComposerBcastFromChild(t *testing.T) {
	topo, err := sim.NewHierTopology([]sim.LevelSpec{
		{Name: "socket", Sizes: []int{2, 3, 1, 2}},
		{Name: "node", Sizes: []int{5, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const elems = 9
	for _, root := range []int{0, 4, 6, 7} {
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			runHierWorld(t, sim.VulcanOpenMPI(), topo, func(p *mpi.Proc) error {
				h, err := NewHierStack(p.CommWorld(), "socket", "node")
				if err != nil {
					return err
				}
				var buf mpi.Buf
				if p.Rank() == root {
					buf = fill(root, elems)
				} else {
					buf = mpi.Bytes(make([]byte, 8*elems))
				}
				if err := h.Bcast(buf, root); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := float64(root*1_000_000 + i)
					if got := buf.Float64At(i); got != want {
						return fmt.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
					}
				}
				return nil
			})
		})
	}
}

// TestComposerPricing checks that PolicyCost prices whole compositions
// per level: each phase carries its tier's hop class, and the top-tier
// exchange crossover moves with the payload while the intra-node tiers
// keep their own choices.
func TestComposerPricing(t *testing.T) {
	topo, err := sim.UniformHier(6,
		sim.LevelDim{Name: "socket", Arity: 2},
		sim.LevelDim{Name: "node", Arity: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(sim.HazelHenCray(), topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(p *mpi.Proc) error {
		k, err := NewComposerNamed(p.CommWorld(), "socket", "node")
		if err != nil {
			return err
		}
		if p.Rank() != 0 {
			return nil
		}
		tun := Tuning{Policy: PolicyCost}
		small, smallTotal, err := k.PriceAllgather(64, tun)
		if err != nil {
			return err
		}
		big, bigTotal, err := k.PriceAllgather(1<<20, tun)
		if err != nil {
			return err
		}
		if smallTotal <= 0 || bigTotal <= smallTotal {
			return fmt.Errorf("pricing not monotone: %v vs %v", smallTotal, bigTotal)
		}
		hops := map[string]string{}
		for _, te := range small {
			hops[te.Level+"/"+te.Phase] = te.Hop
		}
		if hops["socket/gather"] != "socket" || hops["top/exchange"] != "net" {
			return fmt.Errorf("per-level hop classes wrong: %v", hops)
		}
		// The top exchange choice must move with size while remaining
		// a registered allgather algorithm.
		pick := func(ests []TierEstimate) string {
			for _, te := range ests {
				if te.Phase == "exchange" {
					return te.Algorithm
				}
			}
			return ""
		}
		if a, b := pick(small), pick(big); a == "" || b == "" || a == b {
			return fmt.Errorf("top exchange crossover did not move: small=%q big=%q", a, b)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherScanThroughRegistry pins the satellite requirement: Gather
// and Scan route through the selection engine with table entries
// matching their historical behavior, and Force overrides reach them.
func TestGatherScanThroughRegistry(t *testing.T) {
	model := sim.HazelHenCray()
	for _, tc := range []struct {
		cl   Collective
		want string
	}{
		{CollGather, "binomial"},
		{CollScan, "recdbl"},
	} {
		e := Env{Size: 8, Bytes: 1 << 10, Count: 128, Model: model, Hop: sim.HopNet}
		got, err := Choose(tc.cl, e, Tuning{})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s table choice = %q, want %q", tc.cl, got, tc.want)
		}
	}

	// Forced linear variants must produce the same results as the
	// defaults.
	const elems = 11
	for _, force := range []string{"", "linear"} {
		tun := Tuning{}
		if force != "" {
			tun.Force = map[Collective]string{CollGather: force, CollScan: force}
		}
		runWorld(t, sim.Laptop(), []int{3, 3}, func(p *mpi.Proc) error {
			c := WithTuning(p.CommWorld(), tun)
			recv := mpi.Bytes(make([]byte, 8*elems*p.Size()))
			if err := Gather(c, fill(p.Rank(), elems), recv, 8*elems, 2); err != nil {
				return err
			}
			if p.Rank() == 2 {
				checkGathered(t, "gather/"+force, recv, p.Size(), elems)
			}
			out := mpi.Bytes(make([]byte, 8))
			if err := Scan(c, mpi.FromFloat64s([]float64{float64(p.Rank() + 1)}), out, 1, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
			want := float64((p.Rank() + 1) * (p.Rank() + 2) / 2)
			if got := out.Float64At(0); got != want {
				return fmt.Errorf("scan(%s) rank %d = %v, want %v", force, p.Rank(), got, want)
			}
			return nil
		})
	}
}

// TestTuningSharedLevelField covers the SharedLevel tuning key's
// runtime effect surface. (Parsing the sharedlevel= grammar key lives
// in internal/spec since the Spec API redesign.)
func TestTuningSharedLevelField(t *testing.T) {
	tun := Tuning{Policy: PolicyCost, SharedLevel: "socket",
		Force: map[Collective]string{CollGather: "linear", CollScan: "linear"}}
	if tun.SharedLevel != "socket" || tun.Policy != PolicyCost {
		t.Fatalf("tuning %+v", tun)
	}
	if !Registered(CollGather, tun.Force[CollGather]) || !Registered(CollScan, tun.Force[CollScan]) {
		t.Fatalf("force map names unregistered algorithms: %v", tun.Force)
	}
}
