package coll

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// TestChooseTablePolicy pins the table policy's decisions at
// representative (comm size, bytes) points: they must replicate the
// machine profile's cutoffs exactly, because the virtual-time goldens
// depend on them.
func TestChooseTablePolicy(t *testing.T) {
	model := sim.HazelHenCray()
	cases := []struct {
		coll  Collective
		size  int
		bytes int // Env meaning: per-rank block (allgather/alltoall), total otherwise
		count int
		want  string
	}{
		{CollAllgather, 8, 64, 0, "recdbl"},                // small total, pow2
		{CollAllgather, 6, 64, 0, "bruck"},                 // small total, non-pow2
		{CollAllgather, 8, 128 << 10, 0, "ring"},           // total 1 MiB > 512 KiB
		{CollAllgatherv, 8, 1 << 10, 0, "recdbl"},          // small total, pow2
		{CollAllgatherv, 6, 1 << 10, 0, "ring"},            // non-pow2
		{CollAllgatherv, 8, 1 << 20, 0, "ring"},            // big total
		{CollAllreduce, 8, 128, 16, "recdbl"},              // short vector
		{CollAllreduce, 8, 64 << 10, 8192, "rabenseifner"}, // long vector
		{CollAllreduce, 16, 64 << 10, 8, "recdbl"},         // count < size
		{CollReduce, 8, 1 << 10, 128, "binomial"},          // only algorithm
		{CollBcast, 8, 4 << 10, 0, "binomial"},             // <= BcastShortMax
		{CollBcast, 2, 1 << 20, 0, "binomial"},             // tiny comm
		{CollBcast, 8, 64 << 10, 0, "scag"},                // medium
		{CollBcast, 8, 1 << 20, 0, "pipelined"},            // >= BcastPipelineMin
		{CollBarrier, 8, 0, 0, "dissemination"},            // native default
		{CollAlltoall, 8, 1 << 10, 0, "pairwise"},          // only algorithm
	}
	for _, tc := range cases {
		e := Env{Size: tc.size, Bytes: tc.bytes, Count: tc.count, Model: model, Hop: sim.HopNet}
		got, err := Choose(tc.coll, e, Tuning{})
		if err != nil {
			t.Errorf("%s size=%d bytes=%d: %v", tc.coll, tc.size, tc.bytes, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s size=%d bytes=%d count=%d: chose %q, want %q",
				tc.coll, tc.size, tc.bytes, tc.count, got, tc.want)
		}
	}
}

// TestChooseCostPolicy checks the cost-model policy lands where the
// LogGP formulas put the crossovers: logarithmic algorithms for small
// payloads, bandwidth-optimal ones beyond, never an inapplicable
// algorithm.
func TestChooseCostPolicy(t *testing.T) {
	model := sim.HazelHenCray()
	tun := Tuning{Policy: PolicyCost}
	choose := func(cl Collective, size, bytes, count int) string {
		t.Helper()
		got, err := Choose(cl, Env{Size: size, Bytes: bytes, Count: count, Model: model, Hop: sim.HopNet}, tun)
		if err != nil {
			t.Fatalf("%s size=%d bytes=%d: %v", cl, size, bytes, err)
		}
		return got
	}

	if got := choose(CollAllgather, 16, 8, 0); got != "recdbl" {
		t.Errorf("tiny pow2 allgather: cost policy chose %q, want recdbl", got)
	}
	if got := choose(CollAllgather, 16, 4<<20, 0); got != "ring" {
		t.Errorf("huge allgather: cost policy chose %q, want ring", got)
	}
	if got := choose(CollAllgather, 15, 8, 0); got == "recdbl" || got == "neighbor" {
		t.Errorf("non-pow2 odd allgather: cost policy chose inapplicable %q", got)
	}
	if got := choose(CollAllreduce, 16, 64, 8); got != "recdbl" {
		t.Errorf("tiny allreduce: cost policy chose %q, want recdbl", got)
	}
	if got := choose(CollAllreduce, 16, 8<<20, 1<<20); got != "rabenseifner" {
		t.Errorf("huge allreduce: cost policy chose %q, want rabenseifner", got)
	}
	if got := choose(CollBcast, 16, 64, 0); got != "binomial" {
		t.Errorf("tiny bcast: cost policy chose %q, want binomial", got)
	}
	if got := choose(CollBcast, 16, 16<<20, 0); got == "binomial" {
		t.Errorf("huge bcast: cost policy still chose binomial")
	}
	if got := choose(CollBarrier, 16, 0, 0); got != "dissemination" {
		t.Errorf("barrier: cost policy chose %q, want dissemination", got)
	}

	// The cost policy must be monotone enough to produce exactly the
	// crossover structure the sweep reports: as bytes grow the choice
	// changes at least once for allgather and never returns to the
	// latency-bound algorithm.
	prev := ""
	sawRing := false
	for bytes := 8; bytes <= 4<<20; bytes *= 2 {
		got := choose(CollAllgather, 16, bytes, 0)
		if sawRing && got != "ring" {
			t.Errorf("allgather selection flapped back to %q at %dB after ring", got, bytes)
		}
		if got == "ring" {
			sawRing = true
		}
		prev = got
	}
	if !sawRing {
		t.Errorf("allgather cost policy never crossed to ring (last %q)", prev)
	}
}

// TestCandidatesRespectApplicability checks the introspection hook.
func TestCandidatesRespectApplicability(t *testing.T) {
	model := sim.Laptop()
	cands := Candidates(CollAllgather, Env{Size: 6, Bytes: 64, Model: model, Hop: sim.HopNet})
	byName := map[string]Candidate{}
	for _, c := range cands {
		byName[c.Name] = c
	}
	if byName["recdbl"].Applicable {
		t.Error("recdbl applicable on 6 ranks")
	}
	if !byName["bruck"].Applicable || !byName["ring"].Applicable || !byName["neighbor"].Applicable {
		t.Error("bruck/ring/neighbor should be applicable on 6 ranks")
	}
	for _, c := range cands {
		if c.Applicable && c.Est <= 0 {
			t.Errorf("%s: applicable with non-positive estimate %v", c.Name, c.Est)
		}
	}
}

// TestForceOverride checks forced algorithms win when applicable and
// fall back to the policy choice when not.
func TestForceOverride(t *testing.T) {
	model := sim.HazelHenCray()
	e := Env{Size: 8, Bytes: 64, Model: model, Hop: sim.HopNet} // table would say recdbl
	forced := Tuning{Force: map[Collective]string{CollAllgather: "ring"}}
	if got, _ := Choose(CollAllgather, e, forced); got != "ring" {
		t.Errorf("forced ring ignored: got %q", got)
	}
	// recdbl cannot serve 6 ranks; the table choice (bruck) runs.
	e6 := Env{Size: 6, Bytes: 64, Model: model, Hop: sim.HopNet}
	forcedRD := Tuning{Force: map[Collective]string{CollAllgather: "recdbl"}}
	if got, _ := Choose(CollAllgather, e6, forcedRD); got != "bruck" {
		t.Errorf("inapplicable force should fall back to table choice, got %q", got)
	}
}

// TestDefaultTuning covers the settable process default — the hook the
// internal/spec REPRO_COLL_TUNING compatibility shim feeds. (The
// textual grammar itself is owned and tested by internal/spec.)
func TestDefaultTuning(t *testing.T) {
	defer SetDefaultTuning(Tuning{})
	if got := DefaultTuning(); got.Policy != PolicyTable || got.Force != nil {
		t.Errorf("initial default = %+v", got)
	}
	SetDefaultTuning(Tuning{Policy: PolicyCost, Force: map[Collective]string{CollBarrier: "central"}})
	got := DefaultTuning()
	if got.Policy != PolicyCost || got.Force[CollBarrier] != "central" {
		t.Errorf("installed default = %+v", got)
	}
	SetDefaultTuning(Tuning{})
	if got := DefaultTuning(); got.Policy != PolicyTable || got.Force != nil {
		t.Errorf("reset default = %+v", got)
	}
}

// TestTuningInheritedThroughSplit checks the configuration threads from
// the world through CommWorld and Split — the path the hybrid layer's
// bridge communicators take.
func TestTuningInheritedThroughSplit(t *testing.T) {
	topo, err := sim.NewTopology([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	forced := Tuning{Force: map[Collective]string{CollBarrier: "central"}}
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithCollConfig(forced))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		if got := tuningOf(c); got.Force[CollBarrier] != "central" {
			t.Errorf("world tuning not on CommWorld: %v", got)
		}
		child, err := c.Dup()
		if err != nil {
			return err
		}
		if got := tuningOf(child); got.Force[CollBarrier] != "central" {
			t.Errorf("tuning not inherited through Split: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForcedBarrierMatchesCentral checks that routing Barrier through
// the registry actually changes the executed algorithm: under the
// central force, the virtual time equals BarrierCentral's and differs
// from the native dissemination barrier's.
func TestForcedBarrierMatchesCentral(t *testing.T) {
	model := sim.HazelHenCray()
	shape := []int{1, 1, 1, 1, 1} // all-net so the algorithms differ clearly
	run := func(tun *Tuning, direct func(*mpi.Comm) error) sim.Time {
		t.Helper()
		return latencyOf(t, model, shape, func(p *mpi.Proc) error {
			c := p.CommWorld()
			if tun != nil {
				c.SetCollConfig(*tun)
			}
			if direct != nil {
				return direct(c)
			}
			return Barrier(c)
		})
	}
	defTime := run(nil, nil)
	dissTime := run(nil, func(c *mpi.Comm) error { return c.Barrier() })
	forcedTime := run(&Tuning{Force: map[Collective]string{CollBarrier: "central"}}, nil)
	centralTime := run(nil, BarrierCentral)
	if defTime != dissTime {
		t.Errorf("default Barrier (%v) != native dissemination (%v)", defTime, dissTime)
	}
	if forcedTime != centralTime {
		t.Errorf("forced central Barrier (%v) != BarrierCentral (%v)", forcedTime, centralTime)
	}
	if forcedTime == dissTime {
		t.Errorf("central and dissemination barriers indistinguishable (%v)", forcedTime)
	}
}

// TestEveryAlgorithmMatchesReference forces each registered algorithm
// in turn through the engine and cross-checks its output against the
// reference pattern, on a non-power-of-two communicator and with
// zero-length payloads — the corners where algorithm bugs live.
func TestEveryAlgorithmMatchesReference(t *testing.T) {
	shapes := [][]int{{3, 3}, {2, 2}} // 6 ranks (non-pow2) and 4 ranks
	for _, shape := range shapes {
		n := 0
		for _, s := range shape {
			n += s
		}
		for _, elems := range []int{0, 9} {
			elems := elems
			t.Run(fmt.Sprintf("shape%v/e%d", shape, elems), func(t *testing.T) {
				t.Run("allgather", func(t *testing.T) {
					for _, alg := range Algorithms(CollAllgather) {
						if (alg == "recdbl" && !isPow2(n)) || (alg == "neighbor" && n%2 != 0) {
							continue
						}
						tun := Tuning{Force: map[Collective]string{CollAllgather: alg}}
						runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
							c := WithTuning(p.CommWorld(), tun)
							recv := mpi.Bytes(make([]byte, 8*elems*n))
							if err := Allgather(c, fill(p.Rank(), elems), recv, 8*elems); err != nil {
								return fmt.Errorf("%s: %w", alg, err)
							}
							checkGathered(t, alg, recv, n, elems)
							return nil
						})
					}
				})
				t.Run("allreduce", func(t *testing.T) {
					for _, alg := range Algorithms(CollAllreduce) {
						tun := Tuning{Force: map[Collective]string{CollAllreduce: alg}}
						runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
							c := WithTuning(p.CommWorld(), tun)
							v := make([]float64, elems)
							for i := range v {
								v[i] = float64(p.Rank() + i)
							}
							recv := mpi.Bytes(make([]byte, 8*elems))
							if err := Allreduce(c, mpi.FromFloat64s(v), recv, elems, mpi.Float64, mpi.OpSum); err != nil {
								return fmt.Errorf("%s: %w", alg, err)
							}
							for i := 0; i < elems; i++ {
								want := float64(n*i + n*(n-1)/2)
								if got := recv.Float64At(i); got != want {
									t.Errorf("%s: elem %d = %v, want %v", alg, i, got, want)
									return nil
								}
							}
							return nil
						})
					}
				})
				t.Run("bcast", func(t *testing.T) {
					for _, alg := range Algorithms(CollBcast) {
						tun := Tuning{Force: map[Collective]string{CollBcast: alg}}
						runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
							c := WithTuning(p.CommWorld(), tun)
							var buf mpi.Buf
							if p.Rank() == 1 {
								buf = fill(1, elems)
							} else {
								buf = mpi.Bytes(make([]byte, 8*elems))
							}
							if err := Bcast(c, buf, 1); err != nil {
								return fmt.Errorf("%s: %w", alg, err)
							}
							for i := 0; i < elems; i++ {
								want := float64(1*1_000_000 + i)
								if got := buf.Float64At(i); got != want {
									t.Errorf("%s: elem %d = %v, want %v", alg, i, got, want)
									return nil
								}
							}
							return nil
						})
					}
				})
				t.Run("barrier", func(t *testing.T) {
					for _, alg := range Algorithms(CollBarrier) {
						tun := Tuning{Force: map[Collective]string{CollBarrier: alg}}
						w := runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
							c := WithTuning(p.CommWorld(), tun)
							p.Elapse(sim.Time(p.Rank()) * sim.Millisecond)
							return Barrier(c)
						})
						for r := 0; r < n; r++ {
							if w.Proc(r).Clock() < sim.Time(n-1)*sim.Millisecond {
								t.Errorf("%s: rank %d left barrier early at %v", alg, r, w.Proc(r).Clock())
							}
						}
					}
				})
			})
		}
	}
}

// TestCostPolicyEndToEnd runs a collective under the cost policy on a
// real world, checking the engine path works outside the table default.
func TestCostPolicyEndToEnd(t *testing.T) {
	const elems = 17
	runWorld(t, sim.Laptop(), []int{3, 3}, func(p *mpi.Proc) error {
		c := WithTuning(p.CommWorld(), Tuning{Policy: PolicyCost})
		recv := mpi.Bytes(make([]byte, 8*elems*6))
		if err := Allgather(c, fill(p.Rank(), elems), recv, 8*elems); err != nil {
			return err
		}
		checkGathered(t, "cost-policy", recv, 6, elems)
		return nil
	})
}
