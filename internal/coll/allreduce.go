package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Allreduce reduces count elements of type dt with op across all ranks,
// leaving the result on every rank in recv. send and recv hold count
// elements each. The algorithm is resolved by the selection engine;
// the default table policy follows MPICH: recursive doubling for short
// messages, Rabenseifner's reduce-scatter + allgather beyond.
func Allreduce(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return err
	}
	en, err := pick(CollAllreduce, envFor(c, count*dt.Size(), count), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(allreduceFn)(c, send, recv, count, dt, op)
}

func checkReduceArgs(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype) error {
	switch {
	case c == nil:
		return fmt.Errorf("coll: reduce on nil communicator")
	case count < 0:
		return fmt.Errorf("coll: negative element count %d", count)
	case send.Len() < count*dt.Size():
		return fmt.Errorf("coll: reduce send buffer %dB < %d x %s", send.Len(), count, dt)
	case recv.Len() < count*dt.Size():
		return fmt.Errorf("coll: reduce recv buffer %dB < %d x %s", recv.Len(), count, dt)
	}
	return nil
}

// foldExtras maps a non-power-of-two communicator onto its largest
// power-of-two core, MPICH style: the first 2*rem ranks pair up, evens
// hand their contribution to odds and sit out. It returns the caller's
// core rank (-1 if idle) and the core size.
//
// translate maps a core rank back to a comm rank.
func foldCore(n int) (pof2, rem int) {
	pof2 = 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	return pof2, n - pof2
}

func coreToComm(coreRank, rem int) int {
	if coreRank < rem {
		return coreRank*2 + 1
	}
	return coreRank + rem
}

// AllreduceRecDbl is recursive doubling: log2(n) full-size exchanges,
// each followed by a local reduction. Latency-optimal; bandwidth cost
// log2(n) times the payload.
func AllreduceRecDbl(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return err
	}
	p := c.Proc()
	bytes := count * dt.Size()
	n := c.Size()
	p.CopyLocal(recv.Slice(0, bytes), send.Slice(0, bytes), 1)
	if n == 1 {
		return nil
	}
	tmp := p.World().NewBuf(bytes)

	pof2, rem := foldCore(n)
	rank := c.Rank()
	coreRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		// Fold my contribution into my odd neighbour and idle.
		if err := c.Send(recv.Slice(0, bytes), rank+1, tagAllreduce); err != nil {
			return err
		}
	case rank < 2*rem:
		if _, err := c.Recv(tmp, rank-1, tagAllreduce); err != nil {
			return err
		}
		op.Apply(recv, tmp, count, dt)
		p.Compute(float64(count))
		coreRank = rank / 2
	default:
		coreRank = rank - rem
	}

	if coreRank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := coreToComm(coreRank^mask, rem)
			if _, err := c.Sendrecv(recv.Slice(0, bytes), partner, tagAllreduce, tmp, partner, tagAllreduce); err != nil {
				return fmt.Errorf("coll: allreduce recdbl mask %d: %w", mask, err)
			}
			op.Apply(recv, tmp, count, dt)
			p.Compute(float64(count))
		}
	}

	// Unfold: odds return the final result to their idle evens.
	if rank < 2*rem {
		if rank%2 == 0 {
			if _, err := c.Recv(recv.Slice(0, bytes), rank+1, tagAllreduce); err != nil {
				return err
			}
		} else {
			if err := c.Send(recv.Slice(0, bytes), rank-1, tagAllreduce); err != nil {
				return err
			}
		}
	}
	return nil
}

// AllreduceRabenseifner is reduce-scatter (recursive halving) followed
// by allgather (recursive doubling): bandwidth-optimal for large
// payloads.
func AllreduceRabenseifner(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return err
	}
	p := c.Proc()
	es := dt.Size()
	bytes := count * es
	n := c.Size()
	p.CopyLocal(recv.Slice(0, bytes), send.Slice(0, bytes), 1)
	if n == 1 {
		return nil
	}
	pof2, rem := foldCore(n)
	if count < pof2 {
		// Too few elements to scatter; fall back.
		return AllreduceRecDbl(c, send, recv, count, dt, op)
	}
	tmp := p.World().NewBuf(bytes)
	rank := c.Rank()
	coreRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		if err := c.Send(recv.Slice(0, bytes), rank+1, tagAllreduce); err != nil {
			return err
		}
	case rank < 2*rem:
		if _, err := c.Recv(tmp, rank-1, tagAllreduce); err != nil {
			return err
		}
		op.Apply(recv, tmp, count, dt)
		p.Compute(float64(count))
		coreRank = rank / 2
	default:
		coreRank = rank - rem
	}

	if coreRank >= 0 {
		// Element ranges per core rank: near-equal contiguous
		// splits.
		cnts := make([]int, pof2)
		base := count / pof2
		extra := count % pof2
		for i := range cnts {
			cnts[i] = base
			if i < extra {
				cnts[i]++
			}
		}
		displ := Displs(scale(cnts, es))
		elDispl := Displs(cnts)

		// Recursive halving reduce-scatter: after step with the
		// given mask, I hold the reduced range of my mask-sized
		// group.
		lo, hi := 0, pof2 // my current group of piece indices
		for mask := pof2 / 2; mask > 0; mask >>= 1 {
			partnerCore := coreRank ^ mask
			partner := coreToComm(partnerCore, rem)
			mid := lo + (hi-lo)/2
			var sendLo, sendHi, keepLo, keepHi int
			if coreRank < mid {
				keepLo, keepHi = lo, mid
				sendLo, sendHi = mid, hi
			} else {
				keepLo, keepHi = mid, hi
				sendLo, sendHi = lo, mid
			}
			sOff := displ[sendLo]
			sLen := displ[sendHi-1] + cnts[sendHi-1]*es - sOff
			kOff := displ[keepLo]
			kLen := displ[keepHi-1] + cnts[keepHi-1]*es - kOff
			if _, err := c.Sendrecv(
				recv.Slice(sOff, sLen), partner, tagAllreduce,
				tmp.Slice(kOff, kLen), partner, tagAllreduce,
			); err != nil {
				return fmt.Errorf("coll: rabenseifner halving: %w", err)
			}
			kElems := elDispl[keepHi-1] + cnts[keepHi-1] - elDispl[keepLo]
			op.Apply(recv.Slice(kOff, kLen), tmp.Slice(kOff, kLen), kElems, dt)
			p.Compute(float64(kElems))
			lo, hi = keepLo, keepHi
		}

		// Allgather the reduced pieces back with recursive
		// doubling over the same ranges.
		for mask := 1; mask < pof2; mask <<= 1 {
			partnerCore := coreRank ^ mask
			partner := coreToComm(partnerCore, rem)
			haveBase := coreRank &^ (mask - 1)
			getBase := partnerCore &^ (mask - 1)
			hOff := displ[haveBase]
			hLen := displ[haveBase+mask-1] + cnts[haveBase+mask-1]*es - hOff
			gOff := displ[getBase]
			gLen := displ[getBase+mask-1] + cnts[getBase+mask-1]*es - gOff
			if _, err := c.Sendrecv(
				recv.Slice(hOff, hLen), partner, tagAllreduce,
				recv.Slice(gOff, gLen), partner, tagAllreduce,
			); err != nil {
				return fmt.Errorf("coll: rabenseifner allgather: %w", err)
			}
		}
	}

	if rank < 2*rem {
		if rank%2 == 0 {
			if _, err := c.Recv(recv.Slice(0, bytes), rank+1, tagAllreduce); err != nil {
				return err
			}
		} else {
			if err := c.Send(recv.Slice(0, bytes), rank-1, tagAllreduce); err != nil {
				return err
			}
		}
	}
	return nil
}

func scale(v []int, k int) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = x * k
	}
	return out
}
