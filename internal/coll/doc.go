// Package coll implements the classic MPI collective algorithms on top
// of the internal/mpi runtime: the building blocks real MPI libraries
// assemble (Thakur, Rabenseifner, Gropp [28]), plus the SMP-aware
// hierarchical variants the paper uses as its pure-MPI baseline.
//
// # Selection engine
//
// Every entry point (Allgather, Allgatherv, Allreduce, Reduce, Bcast,
// Barrier, Alltoall, Gather, Scan, and the Neighbor* family) resolves
// its algorithm through a registry: one entry per implemented
// algorithm, carrying an applicability predicate and an
// alpha-beta-gamma cost estimate at the call's communicator size,
// message size and hop class. Three policies select over the entries —
// PolicyTable replicates the machine profile's MPICH/OpenMPI-style
// cutoff tables (the default, bit-identical in virtual time to the
// historical hard-wired choices), PolicyCost prices every applicable
// candidate and picks the cheapest, and PolicyMeasured serves cached
// measured winners from a tuning store (internal/tune, raced by
// internal/spec's background tuner) and falls back to the cost choice
// while a point's measurement is pending. Wherever candidates are
// minimized over — PolicyCost prices, PolicyMeasured races — ties
// break by registration order: the first-registered of equal-cost
// candidates wins, deterministically. That ordering is part of the
// bit-identity contract (a tie that broke differently across two runs
// would change virtual times) and is pinned by an explicit test. A
// Tuning value (policy, forced algorithms, the measurement-cache
// hooks, the hybrid window level) threads through mpi.Comm handles and
// is inherited by derived communicators; the REPRO_COLL_TUNING
// environment variable configures the process default. TUNING.md at
// the repository root documents the grammar and the measured policy's
// on-disk store format.
//
// # Hierarchical composition
//
// Composer is the recursive geometry engine behind the SMP-aware
// baselines: it builds a leader tree over any machine-topology level
// stack, discovers the whole shape with one rank-0 plan share, and
// composes per-tier algorithms through the registry. Hier is the thin
// node-level instantiation; MultiLeaderHier and hybrid.Ctx reuse the
// same geometry.
//
// # Nonblocking collectives
//
// Iallgather, Iallreduce, Ibcast, Ibarrier and the Ineighbor* variants
// compile the underlying algorithm into an mpi.Sched — rounds of
// sends/receives executed by an asynchronous progress engine on its
// own virtual cursor, so callers overlap local compute between Start
// and Wait with deterministic timing.
//
// # Neighborhood collectives
//
// NeighborAllgather, NeighborAlltoall and NeighborAlltoallv exchange
// blocks along the edges of a communicator's process topology
// (mpi.CartCreate grids or mpi.DistGraphCreate graphs): the sparse
// halo-exchange pattern of stencil codes, routed through the same
// registry (a paired per-dimension exchange on grids, a posted-all
// path for arbitrary graphs).
package coll
