package coll

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Composer is the multi-level collective machinery: a leader tree built
// over an ordered stack of topology levels (innermost first), with one
// communicator per tier. Tier 0 partitions every rank by the innermost
// level; tier i>0 partitions the tier-(i-1) leaders by level i; the top
// communicator joins the outermost leaders. The historical two-level
// Hier (node + bridge) is exactly the one-level stack [node], and the
// hybrid context is the one-level stack of whichever shared-memory
// level hosts its window.
//
// Geometry is discovered once with the plan-published pattern: every
// member contributes its leader chain, comm rank 0 sorts the membership
// into level order and publishes the shared tables (the helper that
// hier.go, multileader.go and hybrid/ctx.go previously each re-derived
// for the node level alone). Construction is untimed one-off setup.
type Composer struct {
	comm  *mpi.Comm
	level []int       // sim topology level indices, innermost first
	tiers []*mpi.Comm // tiers[i]: my group comm at stack tier i (nil unless leader of every tier below)
	top   *mpi.Comm   // outermost leaders (nil on everyone else)

	shape   *compShape
	myGroup []int // my group index per tier
	mySlot  int   // my position in the level-sorted slot order

	// Inline backing for the per-tier slices: stacks deeper than four
	// levels (more than any machine hierarchy here declares) spill to
	// the heap, everything else allocates nothing.
	tierStore  [4]*mpi.Comm
	groupStore [4]int
}

// tierShape describes every group of one tier, in leader (slot) order.
type tierShape struct {
	first []int // group -> first slot of the group
	size  []int // group -> number of ranks (slots) in the group
	// For tiers above the innermost: the contiguous range of child
	// groups (at the tier below) each group is composed of.
	childLo []int
	childN  []int
}

// compShape is the level-sorted geometry of one composer, computed by
// comm rank 0 and shared read-only by every member.
type compShape struct {
	slotToRank []int
	rankToSlot []int
	smp        bool
	tiers      []tierShape
}

// compEntry is one member's input to the geometry builder: its comm
// rank, its rank within the innermost tier communicator, and per tier
// it belongs to the *global* rank of that tier's leader (-1 when not a
// member). The seed implementation exchanged these entries between all
// members; they are fully derivable from the topology and the comm's
// rank table, so the builder now synthesizes them locally (see
// buildComposerGeom) and no exchange runs.
type compEntry struct {
	commRank int
	sub0     int
	leader   []int
}

// buildCompShape sorts the membership into level order — outermost
// leader chain first, then position within the innermost group — and
// derives the per-tier group tables. Group order at every tier is
// leader-comm-rank order (bridge order), matching the historical
// node-sorted global rank array of hybrid Sect. 6.
func buildCompShape(ranks []int, tiers int, entries []compEntry) *compShape {
	n := len(entries)
	commOf := make(map[int]int, n) // global rank -> comm rank
	for r, g := range ranks {
		commOf[g] = r
	}
	byRank := make([]*compEntry, n)
	for i := range entries {
		byRank[entries[i].commRank] = &entries[i]
	}
	// chain[r*tiers+t]: comm rank of r's tier-t leader, resolved
	// transitively (only tier members know their own leader).
	chain := make([]int, n*tiers)
	for r := 0; r < n; r++ {
		lead := r
		for t := 0; t < tiers; t++ {
			g := byRank[lead].leader[t]
			if g < 0 {
				return nil
			}
			var ok bool
			if lead, ok = commOf[g]; !ok {
				return nil
			}
			chain[r*tiers+t] = lead
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		for t := tiers - 1; t >= 0; t-- {
			if chain[a*tiers+t] != chain[b*tiers+t] {
				return chain[a*tiers+t] < chain[b*tiers+t]
			}
		}
		return byRank[a].sub0 < byRank[b].sub0
	})

	shape := &compShape{
		slotToRank: make([]int, n),
		rankToSlot: make([]int, n),
		smp:        true,
		tiers:      make([]tierShape, tiers),
	}
	for s, r := range order {
		shape.slotToRank[s] = r
		shape.rankToSlot[r] = s
		if r != s {
			shape.smp = false
		}
	}
	// Group tables per tier: consecutive slot runs sharing the
	// tier leader.
	for t := 0; t < tiers; t++ {
		ts := &shape.tiers[t]
		lastLeader := -1
		for s, r := range order {
			if chain[r*tiers+t] != lastLeader {
				ts.first = append(ts.first, s)
				ts.size = append(ts.size, 0)
				lastLeader = chain[r*tiers+t]
			}
			ts.size[len(ts.size)-1]++
		}
		if t > 0 {
			below := &shape.tiers[t-1]
			child := 0
			for g := range ts.first {
				ts.childLo = append(ts.childLo, child)
				end := ts.first[g] + ts.size[g]
				cnt := 0
				for child < len(below.first) && below.first[child] < end {
					child++
					cnt++
				}
				ts.childN = append(ts.childN, cnt)
			}
		}
	}
	return shape
}

// NewComposer builds the leader tree over the given stack of topology
// level indices (innermost first, strictly nested). All members of c
// must call it collectively with the same stack.
func NewComposer(c *mpi.Comm, levels []int) (*Composer, error) {
	if c == nil {
		return nil, fmt.Errorf("coll: NewComposer on nil communicator")
	}
	topo := c.Proc().World().Topology()
	if len(levels) == 0 {
		return nil, fmt.Errorf("coll: composer needs at least one level")
	}
	for i, l := range levels {
		if l < 0 || l >= topo.NumLevels() {
			return nil, fmt.Errorf("coll: composer level %d out of range (topology has %d levels)", l, topo.NumLevels())
		}
		if i > 0 && l <= levels[i-1] {
			return nil, fmt.Errorf("coll: composer levels must be ordered innermost first, got %v", levels)
		}
	}
	k := &Composer{comm: c, level: append([]int(nil), levels...)}
	if len(levels) <= len(k.tierStore) {
		k.tiers = k.tierStore[:0:len(levels)]
	}

	// The whole geometry — tier membership tables, slot order, context
	// ids — is derived locally and shared through one SetupOnce slot:
	// the tables come from the cross-world geometry cache, the context
	// ids are assigned by whichever member builds the per-call plan
	// first. No exchange runs; construction stays collective (every
	// member must call, in the same order) but nobody waits on anybody.
	v, err := mpi.SetupOnce(c, func() (any, error) {
		geom, err := composerGeomFor(topo, c.Ranks(), levels)
		if err != nil {
			return nil, err
		}
		w := c.Proc().World()
		plan := &composerPlan{
			geom:    geom,
			tierCtx: make([][]int, len(levels)),
			arena:   make([]mpi.Comm, geom.handles),
		}
		for t := range geom.tierRanks {
			plan.tierCtx[t] = make([]int, len(geom.tierRanks[t]))
			for g := range plan.tierCtx[t] {
				plan.tierCtx[t][g] = w.NewContext()
			}
		}
		plan.topCtx = w.NewContext()
		return plan, nil
	})
	if err != nil {
		return nil, fmt.Errorf("coll: composer geometry plan rejected: %w", err)
	}
	plan := v.(*composerPlan)
	geom := plan.geom

	// Materialize this rank's tier communicators, innermost first, into
	// this rank's run of the plan's shared handle arena; ranks that are
	// not leaders of the tier below hold nil handles, exactly as the
	// split-based construction produced.
	me := c.Rank()
	slot := geom.handleOff[me]
	for t := range levels {
		var sub *mpi.Comm
		if gi := geom.tierGroup[t][me]; gi >= 0 {
			sub = c.InitGroupComm(&plan.arena[slot], plan.tierCtx[t][gi], geom.tierRanks[t][gi], int(geom.tierRank[t][me]))
			slot++
		}
		k.tiers = append(k.tiers, sub)
	}
	if tr := geom.topRank[me]; tr >= 0 {
		k.top = c.InitGroupComm(&plan.arena[slot], plan.topCtx, geom.topRanks, int(tr))
	}

	shape := geom.shape
	k.shape = shape
	k.mySlot = shape.rankToSlot[me]
	if len(levels) <= len(k.groupStore) {
		k.myGroup = k.groupStore[:len(levels)]
	} else {
		k.myGroup = make([]int, len(levels))
	}
	for t := range levels {
		ts := &shape.tiers[t]
		g := sort.SearchInts(ts.first, k.mySlot+1) - 1
		if g < 0 || k.mySlot >= ts.first[g]+ts.size[g] {
			return nil, fmt.Errorf("coll: composer could not locate own tier-%d group", t)
		}
		k.myGroup[t] = g
	}
	return k, nil
}

// NewComposerNamed resolves level names ("numa", "socket", "node",
// "group") against the world topology and builds the composer.
func NewComposerNamed(c *mpi.Comm, names ...string) (*Composer, error) {
	if c == nil {
		return nil, fmt.Errorf("coll: NewComposerNamed on nil communicator")
	}
	topo := c.Proc().World().Topology()
	levels := make([]int, len(names))
	for i, name := range names {
		l, ok := topo.LevelIndex(name)
		if !ok {
			return nil, fmt.Errorf("coll: topology %s has no level %q", topo, name)
		}
		levels[i] = l
	}
	sort.Ints(levels)
	return NewComposer(c, levels)
}

// Comm returns the communicator the composer was built over.
func (k *Composer) Comm() *mpi.Comm { return k.comm }

// Tiers returns the number of stacked levels.
func (k *Composer) Tiers() int { return len(k.tiers) }

// Tier returns the tier-i communicator (nil on ranks that are not
// leaders of every tier below i).
func (k *Composer) Tier(i int) *mpi.Comm { return k.tiers[i] }

// Top returns the outermost leader communicator (nil on everyone else).
func (k *Composer) Top() *mpi.Comm { return k.top }

// Level returns the sim topology level index of tier i.
func (k *Composer) Level(i int) int { return k.level[i] }

// SMP reports whether comm ranks are laid out SMP-style (level-sorted
// slot order equals comm rank order).
func (k *Composer) SMP() bool { return k.shape.smp }

// SlotOf maps a comm rank to its slot in level-gathered buffers.
func (k *Composer) SlotOf(rank int) int { return k.shape.rankToSlot[rank] }

// RankAt is the inverse of SlotOf.
func (k *Composer) RankAt(slot int) int { return k.shape.slotToRank[slot] }

// RanksBySlot returns the slot -> comm rank table (shared across all
// ranks; do not modify).
func (k *Composer) RanksBySlot() []int { return k.shape.slotToRank }

// SlotsByRank returns the comm rank -> slot table (shared across all
// ranks; do not modify).
func (k *Composer) SlotsByRank() []int { return k.shape.rankToSlot }

// Groups returns the number of groups at tier i.
func (k *Composer) Groups(i int) int { return len(k.shape.tiers[i].first) }

// GroupSizes returns ranks per tier-i group in leader order (shared
// across all ranks; do not modify).
func (k *Composer) GroupSizes(i int) []int { return k.shape.tiers[i].size }

// GroupFirsts returns the first slot of each tier-i group in leader
// order (shared across all ranks; do not modify).
func (k *Composer) GroupFirsts(i int) []int { return k.shape.tiers[i].first }

// MyGroup returns this rank's group index at tier i.
func (k *Composer) MyGroup(i int) int { return k.myGroup[i] }

// IsLeader reports whether this rank leads its innermost group (and
// therefore participates in at least tier 1).
func (k *Composer) IsLeader() bool { return k.tiers[0].Rank() == 0 }

// groupOfSlot locates the tier-t group containing a slot.
func (k *Composer) groupOfSlot(t, slot int) int {
	ts := &k.shape.tiers[t]
	return sort.SearchInts(ts.first, slot+1) - 1
}

// requireSMP guards the composed collectives, which address recv
// buffers by comm rank: slot order must equal rank order.
func (k *Composer) requireSMP(op string) error {
	if !k.shape.smp {
		return fmt.Errorf("coll: composed %s needs SMP-style placement (level blocks contiguous in rank order)", op)
	}
	return nil
}

// Allgather runs the composed SMP-aware allgather (the N-level
// generalization of the paper's Fig. 3a baseline):
//
//  1. every innermost group gathers its members' blocks at the group
//     leader (linear, the intra-node aggregation phase),
//  2. each higher tier gathers the accumulated child-group blocks at
//     its leader,
//  3. the outermost leaders exchange whole-group blocks (tuned
//     MPI_Allgather when uniform, MPI_Allgatherv otherwise — [29],
//     Fig. 10),
//  4. the result is broadcast back down the tree, one tier at a time,
//     so every rank ends with a private full copy.
//
// With the one-level stack [node] this is bit-identical to the
// historical two-level Hier.Allgather.
func (k *Composer) Allgather(send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(k.comm, send, recv, per); err != nil {
		return err
	}
	if err := k.requireSMP("allgather"); err != nil {
		return err
	}
	shape := k.shape

	// Up phase, tier 0: linear gather at the leader, directly into the
	// group's slice of the final buffer.
	t0 := &shape.tiers[0]
	g0 := k.myGroup[0]
	base0 := t0.first[g0] * per
	if err := GatherLinear(k.tiers[0], send.Slice(0, per), recv.Slice(base0, t0.size[g0]*per), per, 0); err != nil {
		return fmt.Errorf("coll: composed allgather gather phase: %w", err)
	}
	// Up phase, higher tiers: leaders forward their accumulated child
	// blocks (irregular in general, so a linear gatherv at absolute
	// offsets; the root's own block is already in place).
	for t := 1; t < len(k.tiers); t++ {
		if k.tiers[t] == nil {
			break
		}
		ts := &shape.tiers[t]
		below := &shape.tiers[t-1]
		g := k.myGroup[t]
		counts := make([]int, ts.childN[g])
		offs := make([]int, ts.childN[g])
		for j := 0; j < ts.childN[g]; j++ {
			child := ts.childLo[g] + j
			counts[j] = below.size[child] * per
			offs[j] = below.first[child] * per
		}
		if err := gatherInPlaceLinear(k.tiers[t], recv, counts, offs); err != nil {
			return fmt.Errorf("coll: composed allgather tier %d gather: %w", t, err)
		}
	}

	// Top exchange: outermost leaders trade whole-group blocks.
	// Uniform group sizes use the tuned MPI_Allgather path; irregular
	// populations force the weaker MPI_Allgatherv ([29], Fig. 10).
	if k.top != nil && k.top.Size() > 1 {
		last := &shape.tiers[len(k.tiers)-1]
		if uniform(last.size) {
			blk := last.size[0] * per
			if err := AllgatherInPlace(k.top, recv, blk); err != nil {
				return fmt.Errorf("coll: composed allgather top exchange: %w", err)
			}
		} else {
			counts := scale(last.size, per)
			if err := AllgathervInPlace(k.top, recv, counts); err != nil {
				return fmt.Errorf("coll: composed allgather top exchange: %w", err)
			}
		}
	}

	// Down phase: every tier's leader broadcasts the full result to
	// its group, outermost tier first.
	total := len(shape.slotToRank) * per
	for t := len(k.tiers) - 1; t >= 0; t-- {
		if k.tiers[t] == nil {
			continue
		}
		if err := BcastBinomial(k.tiers[t], recv.Slice(0, total), 0); err != nil {
			return fmt.Errorf("coll: composed allgather tier %d bcast: %w", t, err)
		}
	}
	return nil
}

// gatherInPlaceLinear gathers variable-size blocks at tier comm rank 0,
// each landing at its absolute offset in recv. The root's own block is
// already in place (the tier below put it there), so unlike Gatherv no
// self-copy is charged.
func gatherInPlaceLinear(c *mpi.Comm, recv mpi.Buf, counts, offs []int) error {
	if c.Rank() != 0 {
		me := c.Rank()
		return c.Send(recv.Slice(offs[me], counts[me]), 0, tagGather)
	}
	for r := 1; r < c.Size(); r++ {
		if _, err := c.Recv(recv.Slice(offs[r], counts[r]), r, tagGather); err != nil {
			return fmt.Errorf("coll: in-place gather from %d: %w", r, err)
		}
	}
	return nil
}

// Bcast runs the composed SMP-aware broadcast: the root hands the
// message up its leader chain (one send per tier whose leader the chain
// has not yet reached), the outermost leaders broadcast among
// themselves, and every tier's leader fans out to its group, outermost
// first. Per-tier algorithms are chosen through the selection engine at
// each tier communicator's hop class. With the stack [node] this is
// bit-identical to the historical Hier.Bcast.
func (k *Composer) Bcast(buf mpi.Buf, root int) error {
	if err := checkBcastArgs(k.comm, buf, root); err != nil {
		return err
	}
	if err := k.requireSMP("bcast"); err != nil {
		return err
	}
	shape := k.shape
	me := k.comm.Rank()

	// Up the leader chain: rep is the comm rank currently holding the
	// payload on root's branch; it forwards to each tier's group
	// leader in turn.
	rep := root
	for t := 0; t < len(k.tiers); t++ {
		g := k.groupOfSlot(t, root) // slot == comm rank under SMP
		leader := shape.tiers[t].first[g]
		if rep != leader {
			if me == rep {
				if err := k.tiers[t].Send(buf, 0, tagBcast); err != nil {
					return fmt.Errorf("coll: composed bcast tier %d hand-off: %w", t, err)
				}
			}
			if me == leader {
				src := k.tierRankOf(t, rep)
				if _, err := k.tiers[t].Recv(buf, src, tagBcast); err != nil {
					return fmt.Errorf("coll: composed bcast tier %d hand-off: %w", t, err)
				}
			}
			rep = leader
		}
	}

	// Outermost leaders broadcast across groups.
	if k.top != nil && k.top.Size() > 1 {
		rootTop := k.groupOfSlot(len(k.tiers)-1, root)
		if err := Bcast(k.top, buf, rootTop); err != nil {
			return fmt.Errorf("coll: composed bcast top phase: %w", err)
		}
	}
	// Leaders fan out, outermost tier first.
	for t := len(k.tiers) - 1; t >= 0; t-- {
		if k.tiers[t] == nil {
			continue
		}
		if err := Bcast(k.tiers[t], buf, 0); err != nil {
			return fmt.Errorf("coll: composed bcast tier %d phase: %w", t, err)
		}
	}
	return nil
}

// tierRankOf returns the tier-t communicator rank of a comm rank that
// is a member of this rank's tier-t group: for tier 0 the offset within
// the group, above that the index of its child group within the parent.
func (k *Composer) tierRankOf(t, commRank int) int {
	slot := commRank // SMP guaranteed by callers
	ts := &k.shape.tiers[t]
	g := k.groupOfSlot(t, slot)
	if t == 0 {
		return slot - ts.first[g]
	}
	child := k.groupOfSlot(t-1, slot)
	return child - ts.childLo[g]
}

// TierEstimate is one phase of a priced composition.
type TierEstimate struct {
	Level     string  `json:"level"`
	Phase     string  `json:"phase"`
	CommSize  int     `json:"comm_size"`
	Hop       string  `json:"hop"`
	Algorithm string  `json:"algorithm"`
	EstUs     float64 `json:"est_us"`
}

// PriceAllgather prices the composition Allgather actually executes:
// the intra-tree phases are fixed by construction (linear gathers up,
// binomial broadcasts down — the SMP-aware baseline shape, kept
// bit-identical to the historical two-level code), so they are charged
// with their registered entries' estimates at each tier's communicator
// size, payload and hop class; only the top exchange goes through the
// selection engine, exactly as at run time, so its reported algorithm
// is the one the measured virtual time ran. Per-level selection over
// candidates is the composed Bcast's domain, where every tier routes
// through the registry. The total is the sequential sum over phases —
// the critical path of the worst-populated chain.
func (k *Composer) PriceAllgather(per int, tun Tuning) ([]TierEstimate, sim.Time, error) {
	topo := k.comm.Proc().World().Topology()
	model := k.comm.Proc().Model()
	var out []TierEstimate
	var total sim.Time
	add := func(level, phase, name string, e Env, cl Collective) error {
		if e.Size <= 1 {
			return nil
		}
		if name == "" {
			var err error
			if name, err = Choose(cl, e, tun); err != nil {
				return err
			}
		}
		en := findEntry(cl, name)
		if en == nil {
			return fmt.Errorf("coll: composition phase %s/%s prices unknown algorithm %q", level, phase, name)
		}
		est := en.cost(e)
		out = append(out, TierEstimate{
			Level: level, Phase: phase, CommSize: e.Size,
			Hop: e.Hop.String(), Algorithm: name, EstUs: est.Us(),
		})
		total += est
		return nil
	}

	ranks := len(k.shape.slotToRank)
	// Up phases: per-tier linear gathers (what Allgather runs) at the
	// tier's hop class, sized by the largest group — the chain that
	// bounds the makespan.
	carried := per
	for t := range k.tiers {
		ts := &k.shape.tiers[t]
		size := maxOf(ts.size)
		members := size
		if t > 0 {
			members = maxOf(ts.childN)
			carried = size * per / max(members, 1)
		}
		e := Env{Size: members, Bytes: carried, Model: model, Hop: topo.LevelClass(k.level[t])}
		if err := add(topo.LevelName(k.level[t]), "gather", "linear", e, CollGather); err != nil {
			return nil, 0, err
		}
		carried = size * per
	}
	// Top exchange across the outermost groups: the selection-driven
	// phase.
	last := &k.shape.tiers[len(k.tiers)-1]
	if len(last.size) > 1 {
		e := Env{Size: len(last.size), Bytes: maxOf(last.size) * per, Model: model, Hop: sim.HopNet}
		cl := CollAllgather
		if !uniform(last.size) {
			cl = CollAllgatherv
			e.Bytes = ranks * per
		}
		if err := add("top", "exchange", "", e, cl); err != nil {
			return nil, 0, err
		}
	}
	// Down phases: full-result binomial broadcasts (what Allgather
	// runs), outermost tier first.
	for t := len(k.tiers) - 1; t >= 0; t-- {
		ts := &k.shape.tiers[t]
		members := maxOf(ts.size)
		if t > 0 {
			members = maxOf(ts.childN)
		}
		e := Env{Size: members, Bytes: ranks * per, Model: model, Hop: topo.LevelClass(k.level[t])}
		if err := add(topo.LevelName(k.level[t]), "bcast", "binomial", e, CollBcast); err != nil {
			return nil, 0, err
		}
	}
	return out, total, nil
}

func maxOf(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
