package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Collective tag space (distinct from the runtime's internal tags; see
// mpi.Comm.Barrier). One tag per operation family is enough because MPI
// messages are non-overtaking and collectives on a communicator are
// serialized.
const (
	tagAllgather = 1<<25 + iota
	tagAllgatherv
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagAllreduce
	tagAlltoall
)

// Allgather gathers per-rank blocks of `per` bytes from every rank into
// every rank's recv buffer (rank order). The algorithm is resolved by
// the selection engine (see registry.go): under the default table
// policy, a logarithmic algorithm (recursive doubling on power-of-two
// communicators, Bruck otherwise) while the total result is small, the
// ring algorithm beyond — the way the profile's library would.
func Allgather(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(c, send, recv, per); err != nil {
		return err
	}
	en, err := pick(CollAllgather, envFor(c, per, 0), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(allgatherFn)(c, send, recv, per)
}

// AllgatherInPlace runs the allgather with every rank's block already
// placed at its slot of recv, selecting among the in-place-capable
// algorithms (Bruck's rotated layout rules it out). The hierarchical
// baselines use this on their bridge communicators.
func AllgatherInPlace(c *mpi.Comm, recv mpi.Buf, per int) error {
	switch {
	case c == nil:
		return fmt.Errorf("coll: allgather on nil communicator")
	case per < 0:
		return fmt.Errorf("coll: negative block size %d", per)
	case recv.Len() < per*c.Size():
		return fmt.Errorf("coll: recv buffer %dB < %d blocks of %dB", recv.Len(), c.Size(), per)
	}
	en, err := pick(CollAllgather, envFor(c, per, 0), tuningOf(c), true)
	if err != nil {
		return err
	}
	return en.runInPlace.(allgatherInPlaceFn)(c, recv, per)
}

func checkAllgatherArgs(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	switch {
	case c == nil:
		return fmt.Errorf("coll: allgather on nil communicator")
	case per < 0:
		return fmt.Errorf("coll: negative block size %d", per)
	case send.Len() < per:
		return fmt.Errorf("coll: send buffer %dB < block %dB", send.Len(), per)
	case recv.Len() < per*c.Size():
		return fmt.Errorf("coll: recv buffer %dB < %d blocks of %dB", recv.Len(), c.Size(), per)
	}
	return nil
}

// placeOwn copies the caller's block into its slot of recv; every
// allgather algorithm starts this way.
func placeOwn(c *mpi.Comm, send, recv mpi.Buf, per int) {
	c.Proc().CopyLocal(recv.Slice(c.Rank()*per, per), send.Slice(0, per), 1)
}

// AllgatherRing is the bandwidth-optimal ring: n-1 steps, each rank
// forwarding the block it received in the previous step to its right
// neighbour. Latency grows linearly in n, so libraries use it only for
// large totals.
func AllgatherRing(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(c, send, recv, per); err != nil {
		return err
	}
	placeOwn(c, send, recv, per)
	n := c.Size()
	if n == 1 {
		return nil
	}
	right := (c.Rank() + 1) % n
	left := (c.Rank() - 1 + n) % n
	for i := 0; i < n-1; i++ {
		sendIdx := (c.Rank() - i + n) % n
		recvIdx := (c.Rank() - i - 1 + n) % n
		_, err := c.Sendrecv(
			recv.Slice(sendIdx*per, per), right, tagAllgather,
			recv.Slice(recvIdx*per, per), left, tagAllgather,
		)
		if err != nil {
			return fmt.Errorf("coll: allgather ring step %d: %w", i, err)
		}
	}
	return nil
}

// AllgatherRecDbl is recursive doubling: log2(n) exchange steps that
// double the gathered range each time. Requires a power-of-two size.
func AllgatherRecDbl(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(c, send, recv, per); err != nil {
		return err
	}
	n := c.Size()
	if !isPow2(n) {
		return fmt.Errorf("coll: recursive doubling needs power-of-two size, got %d", n)
	}
	placeOwn(c, send, recv, per)
	rank := c.Rank()
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		// The block range I currently hold is my mask-aligned
		// group; the partner holds the adjacent group.
		haveBase := rank &^ (mask - 1)
		getBase := partner &^ (mask - 1)
		_, err := c.Sendrecv(
			recv.Slice(haveBase*per, mask*per), partner, tagAllgather,
			recv.Slice(getBase*per, mask*per), partner, tagAllgather,
		)
		if err != nil {
			return fmt.Errorf("coll: allgather recdbl mask %d: %w", mask, err)
		}
	}
	return nil
}

// AllgatherBruck is Bruck's algorithm: ceil(log2 n) steps on any size,
// at the price of a final local reordering pass (the rotation), which is
// why libraries prefer recursive doubling when n is a power of two.
func AllgatherBruck(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(c, send, recv, per); err != nil {
		return err
	}
	n := c.Size()
	p := c.Proc()
	rank := c.Rank()
	// Work buffer in rotated layout: my block at position 0.
	tmp := p.World().NewBuf(n * per)
	p.CopyLocal(tmp.Slice(0, per), send.Slice(0, per), 1)

	have := 1
	for step := 1; have < n; step <<= 1 {
		cnt := have
		if have+cnt > n {
			cnt = n - have
		}
		dst := (rank - step + n) % n
		src := (rank + step) % n
		_, err := c.Sendrecv(
			tmp.Slice(0, cnt*per), dst, tagAllgather,
			tmp.Slice(have*per, cnt*per), src, tagAllgather,
		)
		if err != nil {
			return fmt.Errorf("coll: allgather bruck step %d: %w", step, err)
		}
		have += cnt
	}
	// Un-rotate into rank order; this extra full-buffer copy is
	// charged, part of why Bruck loses to recursive doubling.
	for i := 0; i < n; i++ {
		p.CopyLocal(recv.Slice(((rank+i)%n)*per, per), tmp.Slice(i*per, per), 1)
	}
	return nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
