package coll

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// Hier is the SMP-aware (hierarchical) collective machinery the paper
// assumes for its pure-MPI baseline (Fig. 3a): a shared-memory
// communicator per node plus a bridge communicator over the node
// leaders [31, 34]. Every rank keeps a private copy of collective
// results — that per-rank copy, and the intra-node aggregation /
// broadcast phases that maintain it, are precisely what the hybrid
// approach removes.
type Hier struct {
	comm   *mpi.Comm // the communicator the hierarchy was built over
	node   *mpi.Comm // shared-memory communicator (Fig. 1a)
	bridge *mpi.Comm // leaders only; nil on children (Fig. 2)

	nodeBytesIdx []int // bridge rank -> number of comm ranks on that node
	nodeBase     []int // bridge rank -> first comm rank of that node
	myNodeIdx    int   // my node's bridge rank
}

// NewHier builds the two-level communicator structure. It requires
// SMP-style placement (each node's comm ranks contiguous), which is the
// paper's stated assumption (Sect. 4); construction is untimed setup.
func NewHier(c *mpi.Comm) (*Hier, error) {
	if c == nil {
		return nil, fmt.Errorf("coll: NewHier on nil communicator")
	}
	node, err := c.SplitTypeShared()
	if err != nil {
		return nil, err
	}
	bridge, err := c.SplitBridge(node)
	if err != nil {
		return nil, err
	}

	// Gather the per-node shapes (one-off setup metadata). Rank 0
	// deduplicates and validates once and publishes the shared tables;
	// each member only locates its own node block.
	type nodeInfo struct{ base, size, nodeIdx int }
	type hierPlan struct{ bases, sizes []int }
	leaderBase := c.Rank() - node.Rank()

	// Deduplicate per node, ordered by base rank (== bridge order,
	// since leaders are the lowest ranks and Split orders by key), and
	// verify contiguity (SMP placement); nil rejects the placement.
	build := func(vals []any) *hierPlan {
		plan := &hierPlan{}
		lastBase := -1
		for r := 0; r < len(vals); r++ {
			in := vals[r].(nodeInfo)
			if in.base == lastBase {
				continue
			}
			lastBase = in.base
			if n := len(plan.bases); n > 0 && in.base != plan.bases[n-1]+plan.sizes[n-1] {
				return nil
			}
			plan.bases = append(plan.bases, in.base)
			plan.sizes = append(plan.sizes, in.size)
		}
		return plan
	}
	plan, err := mpi.SharePlan(c,
		nodeInfo{base: leaderBase, size: node.Size(), nodeIdx: c.Proc().Node()}, build)
	if err != nil {
		return nil, fmt.Errorf("coll: NewHier needs SMP-style placement; node blocks not contiguous")
	}
	myIdx := sort.SearchInts(plan.bases, leaderBase)
	if myIdx >= len(plan.bases) || plan.bases[myIdx] != leaderBase {
		return nil, fmt.Errorf("coll: NewHier could not locate own node block")
	}
	return &Hier{
		comm:         c,
		node:         node,
		bridge:       bridge,
		nodeBytesIdx: plan.sizes,
		nodeBase:     plan.bases,
		myNodeIdx:    myIdx,
	}, nil
}

// Node returns the shared-memory communicator.
func (h *Hier) Node() *mpi.Comm { return h.node }

// Bridge returns the leader communicator (nil on children).
func (h *Hier) Bridge() *mpi.Comm { return h.bridge }

// IsLeader reports whether this rank leads its node.
func (h *Hier) IsLeader() bool { return h.node.Rank() == 0 }

// Nodes returns the number of nodes under the hierarchy.
func (h *Hier) Nodes() int { return len(h.nodeBase) }

// NodeCounts returns the number of ranks per node in bridge order
// (shared across all ranks; do not modify).
func (h *Hier) NodeCounts() []int { return h.nodeBytesIdx }

// Allgather is the paper's pure-MPI baseline allgather (Fig. 3a):
//  1. aggregate the node's blocks at the leader (shared-memory
//     transport),
//  2. exchange aggregated node blocks between leaders
//     (MPI_Allgather / MPI_Allgatherv on the bridge),
//  3. broadcast the full result to every on-node child, giving each
//     rank its own private copy.
func (h *Hier) Allgather(send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(h.comm, send, recv, per); err != nil {
		return err
	}
	nodeOff := h.nodeBase[h.myNodeIdx] * per

	// Phase 1: linear gather at the leader, directly into the node's
	// slice of the final buffer.
	nodeBytes := h.node.Size() * per
	if err := GatherLinear(h.node, send.Slice(0, per), recv.Slice(nodeOff, nodeBytes), per, 0); err != nil {
		return fmt.Errorf("coll: hier allgather gather phase: %w", err)
	}

	// Phase 2: leaders exchange node blocks. Uniform node sizes use
	// the tuned MPI_Allgather path; irregular populations force the
	// weaker MPI_Allgatherv ([29], Fig. 10).
	if h.bridge != nil && h.bridge.Size() > 1 {
		if uniform(h.nodeBytesIdx) {
			blk := h.nodeBytesIdx[0] * per
			if err := AllgatherInPlace(h.bridge, recv, blk); err != nil {
				return fmt.Errorf("coll: hier allgather bridge phase: %w", err)
			}
		} else {
			counts := scale(h.nodeBytesIdx, per)
			if err := AllgathervInPlace(h.bridge, recv, counts); err != nil {
				return fmt.Errorf("coll: hier allgather bridge phase: %w", err)
			}
		}
	}

	// Phase 3: every child obtains its own full copy.
	total := Total(h.nodeBytesIdx) * per
	if err := BcastBinomial(h.node, recv.Slice(0, total), 0); err != nil {
		return fmt.Errorf("coll: hier allgather bcast phase: %w", err)
	}
	return nil
}

func allgatherRingInPlace(c *mpi.Comm, recv mpi.Buf, per int) error {
	n := c.Size()
	right := (c.Rank() + 1) % n
	left := (c.Rank() - 1 + n) % n
	for i := 0; i < n-1; i++ {
		sendIdx := (c.Rank() - i + n) % n
		recvIdx := (c.Rank() - i - 1 + n) % n
		_, err := c.Sendrecv(
			recv.Slice(sendIdx*per, per), right, tagAllgather,
			recv.Slice(recvIdx*per, per), left, tagAllgather,
		)
		if err != nil {
			return err
		}
	}
	return nil
}

func allgatherRecDblInPlace(c *mpi.Comm, recv mpi.Buf, per int) error {
	n := c.Size()
	rank := c.Rank()
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		haveBase := rank &^ (mask - 1)
		getBase := partner &^ (mask - 1)
		_, err := c.Sendrecv(
			recv.Slice(haveBase*per, mask*per), partner, tagAllgather,
			recv.Slice(getBase*per, mask*per), partner, tagAllgather,
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// Bcast is the SMP-aware broadcast baseline: root hands the message to
// its node leader, leaders broadcast over the bridge, and every leader
// broadcasts inside its node — so every rank again holds a private
// copy.
func (h *Hier) Bcast(buf mpi.Buf, root int) error {
	if err := checkBcastArgs(h.comm, buf, root); err != nil {
		return err
	}
	rootNode := -1
	for i := range h.nodeBase {
		if root >= h.nodeBase[i] && root < h.nodeBase[i]+h.nodeBytesIdx[i] {
			rootNode = i
			break
		}
	}
	if rootNode < 0 {
		return fmt.Errorf("coll: hier bcast cannot place root %d", root)
	}
	rootLocal := root - h.nodeBase[rootNode]

	// Hand-off to the leader when the root is a child.
	if rootLocal != 0 {
		if h.comm.Rank() == root {
			if err := h.comm.Send(buf, h.nodeBase[rootNode], tagBcast); err != nil {
				return err
			}
		}
		if h.comm.Rank() == h.nodeBase[rootNode] {
			if _, err := h.comm.Recv(buf, root, tagBcast); err != nil {
				return err
			}
		}
	}
	// Leaders broadcast across nodes.
	if h.bridge != nil && h.bridge.Size() > 1 {
		if err := Bcast(h.bridge, buf, rootNode); err != nil {
			return fmt.Errorf("coll: hier bcast bridge phase: %w", err)
		}
	}
	// Leaders fan out on the node.
	if err := Bcast(h.node, buf, 0); err != nil {
		return fmt.Errorf("coll: hier bcast node phase: %w", err)
	}
	return nil
}

func uniform(v []int) bool {
	for _, x := range v {
		if x != v[0] {
			return false
		}
	}
	return true
}
