package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Hier is the SMP-aware (hierarchical) collective machinery the paper
// assumes for its pure-MPI baseline (Fig. 3a): a shared-memory
// communicator per node plus a bridge communicator over the node
// leaders [31, 34]. Every rank keeps a private copy of collective
// results — that per-rank copy, and the intra-node aggregation /
// broadcast phases that maintain it, are precisely what the hybrid
// approach removes.
//
// Hier is the thin two-level instantiation of the multi-level Composer:
// the stack holding only the node level. Deeper machine hierarchies
// (socket ⊂ node ⊂ group) run through NewHierStack or NewComposer
// directly.
type Hier struct {
	comp *Composer
}

// NewHier builds the two-level communicator structure. It requires
// SMP-style placement (each node's comm ranks contiguous), which is the
// paper's stated assumption (Sect. 4); construction is untimed setup.
func NewHier(c *mpi.Comm) (*Hier, error) {
	return NewHierStack(c, "node")
}

// NewHierStack builds the hierarchical machinery over an arbitrary
// stack of topology level names (innermost first, e.g. "socket",
// "node"). SMP-style placement is required at every level.
func NewHierStack(c *mpi.Comm, levels ...string) (*Hier, error) {
	if c == nil {
		return nil, fmt.Errorf("coll: NewHier on nil communicator")
	}
	comp, err := NewComposerNamed(c, levels...)
	if err != nil {
		return nil, err
	}
	if !comp.SMP() {
		return nil, fmt.Errorf("coll: NewHier needs SMP-style placement; level blocks not contiguous")
	}
	return &Hier{comp: comp}, nil
}

// Composer exposes the underlying multi-level composer.
func (h *Hier) Composer() *Composer { return h.comp }

// Node returns the innermost (shared-memory) communicator.
func (h *Hier) Node() *mpi.Comm { return h.comp.Tier(0) }

// Bridge returns the outermost leader communicator (nil on children).
func (h *Hier) Bridge() *mpi.Comm { return h.comp.Top() }

// IsLeader reports whether this rank leads its innermost group.
func (h *Hier) IsLeader() bool { return h.comp.IsLeader() }

// Nodes returns the number of outermost groups under the hierarchy.
func (h *Hier) Nodes() int { return h.comp.Groups(h.comp.Tiers() - 1) }

// NodeCounts returns the number of ranks per outermost group in bridge
// order (shared across all ranks; do not modify).
func (h *Hier) NodeCounts() []int { return h.comp.GroupSizes(h.comp.Tiers() - 1) }

// Allgather is the paper's pure-MPI baseline allgather (Fig. 3a),
// generalized to the composed leader tree:
//  1. aggregate each group's blocks at its leader (shared-memory
//     transport),
//  2. exchange aggregated blocks between the outermost leaders
//     (MPI_Allgather / MPI_Allgatherv on the bridge),
//  3. broadcast the full result down the tree, giving each rank its
//     own private copy.
func (h *Hier) Allgather(send, recv mpi.Buf, per int) error {
	return h.comp.Allgather(send, recv, per)
}

func allgatherRingInPlace(c *mpi.Comm, recv mpi.Buf, per int) error {
	n := c.Size()
	right := (c.Rank() + 1) % n
	left := (c.Rank() - 1 + n) % n
	for i := 0; i < n-1; i++ {
		sendIdx := (c.Rank() - i + n) % n
		recvIdx := (c.Rank() - i - 1 + n) % n
		_, err := c.Sendrecv(
			recv.Slice(sendIdx*per, per), right, tagAllgather,
			recv.Slice(recvIdx*per, per), left, tagAllgather,
		)
		if err != nil {
			return err
		}
	}
	return nil
}

func allgatherRecDblInPlace(c *mpi.Comm, recv mpi.Buf, per int) error {
	n := c.Size()
	rank := c.Rank()
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		haveBase := rank &^ (mask - 1)
		getBase := partner &^ (mask - 1)
		_, err := c.Sendrecv(
			recv.Slice(haveBase*per, mask*per), partner, tagAllgather,
			recv.Slice(getBase*per, mask*per), partner, tagAllgather,
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// Bcast is the SMP-aware broadcast baseline: the root hands the message
// up its leader chain, leaders broadcast over the bridge, and every
// leader fans out within its group — so every rank again holds a
// private copy.
func (h *Hier) Bcast(buf mpi.Buf, root int) error {
	return h.comp.Bcast(buf, root)
}

func uniform(v []int) bool {
	for _, x := range v {
		if x != v[0] {
			return false
		}
	}
	return true
}
