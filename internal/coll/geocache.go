package coll

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// The composer geometry — the leader-tree slot order plus every tier
// communicator's membership table — is fully determined by (topology
// structure, comm membership, level stack). The seed derived it per
// world through a chain of Splits and a rank-0-published plan, which
// dominated setup cost at Fig. 9 scale; sweeps additionally rebuild
// worlds of the same shape over and over. composerGeomFor therefore
// computes the geometry locally (no exchanges at all) and caches it
// across worlds, keyed by content with full verification on hit, so a
// rebuilt world of a known shape reuses the tables outright.

// composerGeom is the immutable cross-world geometry of one composer:
// shared read-only by every rank of every world with this shape.
type composerGeom struct {
	topo    *sim.Topology // first publisher's topology (structural verify)
	members []int         // comm rank table snapshot (exact key verify)
	levels  []int

	shape     *compShape
	tierRanks [][][]int // tier -> group -> member global ranks
	topRanks  []int     // top communicator's global ranks
	tierGroup [][]int32 // tier -> comm rank -> tier group index (-1 non-member)
	tierRank  [][]int32 // tier -> comm rank -> rank within tier comm (-1)
	topRank   []int32   // comm rank -> rank within top comm (-1)
	handleOff []int32   // comm rank -> first slot in the per-plan Comm arena
	handles   int       // arena size: total comm handles across all ranks
}

func (g *composerGeom) matches(topo *sim.Topology, members, levels []int) bool {
	if len(g.members) != len(members) || len(g.levels) != len(levels) || !g.topo.EqualStructure(topo) {
		return false
	}
	for i, l := range levels {
		if g.levels[i] != l {
			return false
		}
	}
	for i, m := range members {
		if g.members[i] != m {
			return false
		}
	}
	return true
}

var composerGeomCache = sim.NewShapeCache[*composerGeom](256)

// composerGeomFor returns the cached geometry for (topo, members,
// levels), building it on miss. Callers reach it once per (world,
// composer call) through mpi.SetupOnce, so the O(members) verification
// never lands on the per-rank path.
func composerGeomFor(topo *sim.Topology, members, levels []int) (*composerGeom, error) {
	h := topo.Fingerprint()
	h = sim.HashInts(h, members)
	h = sim.HashInts(h^0x9e3779b97f4a7c15, levels)
	return composerGeomCache.GetOrBuild(h,
		func(g *composerGeom) bool { return g.matches(topo, members, levels) },
		func() (*composerGeom, error) { return buildComposerGeom(topo, members, levels) })
}

// buildComposerGeom derives the full leader-tree geometry locally,
// reproducing exactly what the seed's Split chain produced:
//
//   - tier-t groups in ascending topology-group-id order (the color
//     sort of Split), members within a group in root-comm-rank order
//     (the key convention);
//   - tier t>0 members are the leaders (first member) of the tier-(t-1)
//     groups; the top communicator joins the outermost leaders in
//     ascending comm-rank order;
//   - the slot order comes from the same entry sort the exchanged plan
//     used (buildCompShape), so composed collectives stay op-for-op
//     identical.
func buildComposerGeom(topo *sim.Topology, members, levels []int) (*composerGeom, error) {
	n := len(members)
	tiers := len(levels)
	g := &composerGeom{
		topo:      topo,
		members:   append([]int(nil), members...),
		levels:    append([]int(nil), levels...),
		tierRanks: make([][][]int, tiers),
		tierGroup: make([][]int32, tiers),
		tierRank:  make([][]int32, tiers),
	}

	// parts: the comm ranks participating at the current tier, in
	// ascending comm-rank order (everyone at tier 0, leaders above).
	parts := make([]int, n)
	for r := range parts {
		parts[r] = r
	}
	for t := 0; t < tiers; t++ {
		g.tierGroup[t] = make([]int32, n)
		g.tierRank[t] = make([]int32, n)
		for r := range g.tierGroup[t] {
			g.tierGroup[t][r] = -1
			g.tierRank[t][r] = -1
		}
		// Partition the participants by their level-l group, groups in
		// ascending group-id order, members in comm-rank order.
		byID := map[int][]int{}
		ids := []int{}
		for _, r := range parts {
			id := topo.GroupOf(levels[t], members[r])
			if _, seen := byID[id]; !seen {
				ids = append(ids, id)
			}
			byID[id] = append(byID[id], r)
		}
		sort.Ints(ids)
		g.tierRanks[t] = make([][]int, len(ids))
		leaders := make([]int, 0, len(ids))
		for gi, id := range ids {
			grp := byID[id]
			table := make([]int, len(grp))
			for i, r := range grp {
				table[i] = members[r]
				g.tierGroup[t][r] = int32(gi)
				g.tierRank[t][r] = int32(i)
			}
			g.tierRanks[t][gi] = table
			leaders = append(leaders, grp[0])
		}
		sort.Ints(leaders)
		parts = leaders
	}

	// Top communicator: the outermost leaders, ascending comm rank.
	g.topRank = make([]int32, n)
	for r := range g.topRank {
		g.topRank[r] = -1
	}
	g.topRanks = make([]int, len(parts))
	for i, r := range parts {
		g.topRanks[i] = members[r]
		g.topRank[r] = int32(i)
	}

	// Slot order: synthesize the per-member entries the exchanged plan
	// carried (leader chain as global ranks) and run the same sort.
	entries := make([]compEntry, n)
	for r := 0; r < n; r++ {
		e := &entries[r]
		e.commRank = r
		e.sub0 = int(g.tierRank[0][r])
		e.leader = make([]int, tiers)
		for t := 0; t < tiers; t++ {
			e.leader[t] = -1
			if gi := g.tierGroup[t][r]; gi >= 0 {
				e.leader[t] = g.tierRanks[t][gi][0]
			}
		}
	}
	shape := buildCompShape(g.members, tiers, entries)
	if shape == nil {
		return nil, fmt.Errorf("coll: composer geometry derivation failed (unresolvable leader chain)")
	}
	g.shape = shape

	// Arena layout for the per-plan Comm handles: each rank owns a
	// contiguous run of slots, one per communicator it belongs to.
	g.handleOff = make([]int32, n)
	off := int32(0)
	for r := 0; r < n; r++ {
		g.handleOff[r] = off
		for t := 0; t < tiers; t++ {
			if g.tierGroup[t][r] >= 0 {
				off++
			}
		}
		if g.topRank[r] >= 0 {
			off++
		}
	}
	g.handles = int(off)
	return g, nil
}

// composerPlan is the per-world completion of a cached geometry: the
// shared tables plus the context ids this world assigned to the tier
// communicators. One plan is built per composer call (via
// mpi.SetupOnce) and shared by all members.
type composerPlan struct {
	geom    *composerGeom
	tierCtx [][]int // tier -> group -> context id
	topCtx  int
	arena   []mpi.Comm // per-rank handle storage, laid out by geom.handleOff
}
