package coll

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Irregularly populated nodes (paper Fig. 10) across every nonblocking
// collective, on multi-level topologies including single-rank groups
// and non-power-of-two communicator sizes. The schedule engine must
// terminate and produce correct results regardless of the population
// shape.
func irregularTopos(t *testing.T) map[string]*sim.Topology {
	t.Helper()
	out := map[string]*sim.Topology{}
	var err error
	if out["nodes_5_1_3"], err = sim.NewTopology([]int{5, 1, 3}); err != nil {
		t.Fatal(err)
	}
	if out["nodes_24_24_16_small"], err = sim.NewTopology([]int{6, 6, 4}); err != nil {
		t.Fatal(err)
	}
	if out["sockets_irregular"], err = sim.NewHierTopology([]sim.LevelSpec{
		{Name: "socket", Sizes: []int{2, 1, 3, 1}},
		{Name: "node", Sizes: []int{3, 4}},
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNonblockingIrregularNodes(t *testing.T) {
	for name, topo := range irregularTopos(t) {
		n := topo.Size()
		t.Run(name, func(t *testing.T) {
			const elems = 7
			runHierWorld(t, sim.VulcanOpenMPI(), topo, func(p *mpi.Proc) error {
				c := p.CommWorld()

				// Iallgather.
				recv := mpi.Bytes(make([]byte, 8*elems*n))
				s, err := Iallgather(c, fill(p.Rank(), elems), recv, 8*elems)
				if err != nil {
					return err
				}
				if err := s.Wait(); err != nil {
					return err
				}
				checkGathered(t, "iallgather/"+name, recv, n, elems)

				// Iallreduce.
				v := make([]float64, elems)
				for i := range v {
					v[i] = float64(p.Rank() + i)
				}
				red := mpi.Bytes(make([]byte, 8*elems))
				s, err = Iallreduce(c, mpi.FromFloat64s(v), red, elems, mpi.Float64, mpi.OpSum)
				if err != nil {
					return err
				}
				if err := s.Wait(); err != nil {
					return err
				}
				base := n * (n - 1) / 2
				for i := 0; i < elems; i++ {
					want := float64(base + n*i)
					if got := red.Float64At(i); got != want {
						return fmt.Errorf("iallreduce elem %d = %v, want %v", i, got, want)
					}
				}

				// Ibcast from a non-leader root on an irregular shape.
				root := n - 1
				var buf mpi.Buf
				if p.Rank() == root {
					buf = fill(root, elems)
				} else {
					buf = mpi.Bytes(make([]byte, 8*elems))
				}
				s, err = Ibcast(c, buf, root)
				if err != nil {
					return err
				}
				if err := s.Wait(); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := float64(root*1_000_000 + i)
					if got := buf.Float64At(i); got != want {
						return fmt.Errorf("ibcast elem %d = %v, want %v", i, got, want)
					}
				}

				// Ibarrier.
				s, err = Ibarrier(c)
				if err != nil {
					return err
				}
				return s.Wait()
			})
		})
	}
}

// TestComposedAllgatherOverlapsNonblocking runs the composer on the
// same irregular worlds the nonblocking suite uses, interleaving an
// Ibarrier between construction and the composed exchange — the
// schedule machinery and the composed collectives share the request
// engine and must coexist on any population shape.
func TestComposedAllgatherWithNonblockingTraffic(t *testing.T) {
	for name, topo := range irregularTopos(t) {
		n := topo.Size()
		t.Run(name, func(t *testing.T) {
			const elems = 5
			per := 8 * elems
			runHierWorld(t, sim.VulcanOpenMPI(), topo, func(p *mpi.Proc) error {
				c := p.CommWorld()
				h, err := NewHier(c)
				if err != nil {
					return err
				}
				s, err := Ibarrier(c)
				if err != nil {
					return err
				}
				recv := mpi.Bytes(make([]byte, per*n))
				if err := h.Allgather(fill(p.Rank(), elems), recv, per); err != nil {
					return err
				}
				if err := s.Wait(); err != nil {
					return err
				}
				checkGathered(t, "composed+ibarrier/"+name, recv, n, elems)
				return nil
			})
		})
	}
}
