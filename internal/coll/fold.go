package coll

import (
	"repro/internal/sim"
)

// This file decides, ahead of world construction, whether a given
// workload may run under the mpi package's rank-symmetry folding
// (mpi.WithFold): the caller names the collective it is about to run
// and the helpers replicate the selection engine's algorithm pick for
// the cross-unit exchange, then consult the registry's fold metadata
// (entry.foldable / FoldSafe). Folding is a property of the algorithm
// that actually crosses fold-unit boundaries, not of the collective
// family — a hierarchical allgather folds exactly when its top
// (leader-bridge) exchange folds, because every other phase stays
// inside one unit.
//
// Both helpers are conservative: they return 0 (folding disabled)
// unless the topology is uniform at every level, the total size and
// the unit are powers of two, and the picked algorithm carries the
// foldable mark. A 0 from here means "run unfolded", never an error.

// foldableUnit applies the topology-side fold preconditions shared by
// every workload: a uniform (regular) topology with power-of-two total
// size and power-of-two unit, and more than one unit (folding a
// single-unit topology is the identity, so it reports 0).
func foldableUnit(topo *sim.Topology) int {
	if topo == nil {
		return 0
	}
	u := topo.FoldUnit()
	size := topo.Size()
	if u <= 0 || u >= size || size%u != 0 || !isPow2(size) || !isPow2(u) {
		return 0
	}
	return u
}

// HierAllgatherFoldUnit reports the fold unit to pass to mpi.WithFold
// for a size-only hierarchical allgather (Hier.Allgather /
// Composer.Allgather with per bytes per rank) on the given topology,
// or 0 when folding must stay disabled. The composed allgather's
// intra-unit phases (linear gathers, down-phase broadcasts) never
// cross a fold-unit boundary; only the top exchange between the
// outermost leaders does, so the decision replicates the selection
// engine's in-place pick for that exchange — the leader communicator's
// size is the number of outermost groups, its block is one whole
// group's aggregate — and requires the chosen algorithm to be
// FoldSafe.
func HierAllgatherFoldUnit(model *sim.CostModel, topo *sim.Topology, per int, tun Tuning) int {
	u := foldableUnit(topo)
	if u == 0 || model == nil {
		return 0
	}
	// The outermost leaders always span units, so the bridge exchange
	// prices at the network hop class.
	env := Env{Size: topo.Size() / u, Bytes: u * per, Model: model, Hop: sim.HopNet}
	en, err := pick(CollAllgather, env, tun, true)
	if err != nil || !en.foldable {
		return 0
	}
	return u
}

// AllreduceFoldUnit reports the fold unit for a size-only flat
// Allreduce over the whole topology (bytes total payload, count
// elements), or 0 when folding must stay disabled. The flat algorithm
// itself crosses unit boundaries, so the pick at the full
// communicator size must be FoldSafe.
func AllreduceFoldUnit(model *sim.CostModel, topo *sim.Topology, bytes, count int, tun Tuning) int {
	u := foldableUnit(topo)
	if u == 0 || model == nil {
		return 0
	}
	env := Env{Size: topo.Size(), Bytes: bytes, Count: count, Model: model, Hop: sim.HopNet}
	en, err := pick(CollAllreduce, env, tun, false)
	if err != nil || !en.foldable {
		return 0
	}
	return u
}
