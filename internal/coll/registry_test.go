package coll

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestCostPolicyTieBreaksByRegistrationOrder pins the selection
// engine's tie-break: when two applicable algorithms price identically
// under PolicyCost, the first-registered one wins (the minimizer's
// strict `<` keeps the incumbent). This ordering is load-bearing for
// bit-identity — a tie broken differently across two runs, engines or
// processes would change which algorithm executes and therefore the
// virtual timeline — so it gets an explicit test instead of riding on
// the golden suites. Both cases below are genuine zero-cost ties at
// communicator size 1.
func TestCostPolicyTieBreaksByRegistrationOrder(t *testing.T) {
	model := sim.Laptop()
	cases := []struct {
		cl   Collective
		e    Env
		tied []string // every registered candidate priced equal here
		want string   // the first-registered of them
	}{
		{
			// Barrier at size 1: dissemination runs zero rounds,
			// central does zero round trips — both cost exactly 0.
			cl:   CollBarrier,
			e:    Env{Size: 1, Model: model, Hop: sim.HopNet},
			tied: []string{"dissemination", "central"},
			want: "dissemination",
		},
		{
			// Scan at size 1: zero steps for recursive doubling, zero
			// hops for linear — both cost exactly 0.
			cl:   CollScan,
			e:    Env{Size: 1, Bytes: 8, Count: 1, Model: model, Hop: sim.HopNet},
			tied: []string{"recdbl", "linear"},
			want: "recdbl",
		},
	}
	for _, tc := range cases {
		t.Run(tc.cl.String(), func(t *testing.T) {
			// The premise first: the case really is a tie, and the
			// expected winner really is first in registration order.
			var prices []sim.Time
			for _, name := range tc.tied {
				en := findEntry(tc.cl, name)
				if en == nil || !en.available(tc.e, false) {
					t.Fatalf("%s/%s not available", tc.cl, name)
				}
				prices = append(prices, en.cost(tc.e))
			}
			for i := 1; i < len(prices); i++ {
				if prices[i] != prices[0] {
					t.Fatalf("not a tie: %s prices %v", tc.cl, prices)
				}
			}
			if got := Algorithms(tc.cl)[0]; got != tc.want {
				t.Fatalf("expected winner %q is not first-registered (%q)", tc.want, got)
			}
			got, err := Choose(tc.cl, tc.e, Tuning{Policy: PolicyCost})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("tie broke to %q, want first-registered %q", got, tc.want)
			}
		})
	}
}

// TestRegistrationOrderPinned pins the full registration order per
// family to the table TUNING.md documents. Reordering entries would
// silently change every tie-break (and the measured policy's race
// order), so any such change must update this test — and the docs —
// deliberately.
func TestRegistrationOrderPinned(t *testing.T) {
	want := map[Collective][]string{
		CollAllgather:         {"recdbl", "bruck", "ring", "neighbor"},
		CollAllgatherv:        {"recdbl", "ring"},
		CollAllreduce:         {"recdbl", "rabenseifner"},
		CollReduce:            {"binomial"},
		CollBcast:             {"binomial", "scag", "pipelined"},
		CollBarrier:           {"dissemination", "central"},
		CollAlltoall:          {"pairwise"},
		CollGather:            {"binomial", "linear"},
		CollScan:              {"recdbl", "linear"},
		CollNeighborAllgather: {"pairwise", "linear"},
		CollNeighborAlltoall:  {"pairwise", "linear"},
		CollNeighborAlltoallv: {"pairwise", "linear"},
	}
	for cl, names := range want {
		if got := Algorithms(cl); !reflect.DeepEqual(got, names) {
			t.Errorf("%s registration order %v, want %v", cl, got, names)
		}
	}
}

// TestMeasuredPolicyPick covers the measured policy's resolution
// ladder at the unit level: cache hit wins, inapplicable or unknown
// cached names fall back, a miss reports through OnMiss exactly once
// and serves the cost choice, and a nil Lookup degenerates to
// PolicyCost.
func TestMeasuredPolicyPick(t *testing.T) {
	model := sim.Laptop()
	e := Env{Size: 64, Bytes: 16384, Count: 2048, Model: model, Hop: sim.HopNet}
	costPick, err := Choose(CollAllreduce, e, Tuning{Policy: PolicyCost})
	if err != nil {
		t.Fatal(err)
	}

	lookup := func(name string, ok bool) func(Collective, Env) (string, bool) {
		return func(Collective, Env) (string, bool) { return name, ok }
	}

	// Hit: the cached winner is served even when it is not the cost
	// choice.
	other := "recdbl"
	if costPick == "recdbl" {
		other = "rabenseifner"
	}
	got, err := Choose(CollAllreduce, e, Tuning{Policy: PolicyMeasured, Lookup: lookup(other, true)})
	if err != nil {
		t.Fatal(err)
	}
	if got != other {
		t.Fatalf("cache hit served %q, want %q", got, other)
	}

	// Unknown cached name: fall back to the cost choice.
	got, err = Choose(CollAllreduce, e, Tuning{Policy: PolicyMeasured, Lookup: lookup("warp", true)})
	if err != nil || got != costPick {
		t.Fatalf("unknown cached name served %q (%v), want cost pick %q", got, err, costPick)
	}

	// Inapplicable cached name: recdbl cannot serve a non-power-of-two
	// allgather; the cost path must answer instead.
	e3 := Env{Size: 6, Bytes: 1024, Model: model, Hop: sim.HopNet}
	got, err = Choose(CollAllgather, e3, Tuning{Policy: PolicyMeasured, Lookup: lookup("recdbl", true)})
	if err != nil {
		t.Fatal(err)
	}
	if got == "recdbl" {
		t.Fatal("inapplicable cached algorithm was served")
	}

	// Miss: OnMiss fires once with the call's env, and the cost choice
	// is served.
	var missed []Env
	tun := Tuning{
		Policy: PolicyMeasured,
		Lookup: lookup("", false),
		OnMiss: func(cl Collective, me Env) {
			if cl != CollAllreduce {
				t.Fatalf("OnMiss collective %v", cl)
			}
			missed = append(missed, me)
		},
	}
	got, err = Choose(CollAllreduce, e, tun)
	if err != nil || got != costPick {
		t.Fatalf("miss served %q (%v), want cost pick %q", got, err, costPick)
	}
	if len(missed) != 1 || missed[0].Size != e.Size || missed[0].Bytes != e.Bytes {
		t.Fatalf("OnMiss calls: %+v", missed)
	}

	// No cache at all: exactly the cost policy.
	got, err = Choose(CollAllreduce, e, Tuning{Policy: PolicyMeasured})
	if err != nil || got != costPick {
		t.Fatalf("nil Lookup served %q (%v), want cost pick %q", got, err, costPick)
	}

	// Force still outranks the cache.
	forced := Tuning{
		Policy: PolicyMeasured,
		Force:  map[Collective]string{CollAllreduce: "recdbl"},
		Lookup: lookup("rabenseifner", true),
	}
	got, err = Choose(CollAllreduce, e, forced)
	if err != nil || got != "recdbl" {
		t.Fatalf("force under measured served %q (%v), want recdbl", got, err)
	}
}

// TestAvailable pins the introspection hook the tuner races with.
func TestAvailable(t *testing.T) {
	model := sim.Laptop()
	pow2 := Env{Size: 8, Bytes: 64, Model: model, Hop: sim.HopNet}
	odd := Env{Size: 5, Bytes: 64, Model: model, Hop: sim.HopNet}
	if !Available(CollAllgather, "recdbl", pow2, false) {
		t.Fatal("recdbl must be available on a power-of-two comm")
	}
	if Available(CollAllgather, "recdbl", odd, false) {
		t.Fatal("recdbl must be unavailable on a 5-rank comm")
	}
	if Available(CollAllgather, "warp", pow2, false) {
		t.Fatal("unknown algorithm reported available")
	}
	if Available(CollAllgather, "bruck", pow2, true) {
		t.Fatal("bruck has no in-place runner")
	}
}
