package coll

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// fill writes a deterministic, rank-tagged pattern of `elems` doubles.
func fill(rank, elems int) mpi.Buf {
	v := make([]float64, elems)
	for i := range v {
		v[i] = float64(rank*1_000_000 + i)
	}
	return mpi.FromFloat64s(v)
}

// wantBlock checks that recv block r (of elems doubles each) carries
// rank r's pattern.
func checkGathered(t *testing.T, who string, recv mpi.Buf, ranks, elems int) {
	t.Helper()
	for r := 0; r < ranks; r++ {
		for i := 0; i < elems; i += 1 + elems/3 {
			want := float64(r*1_000_000 + i)
			if got := recv.Float64At(r*elems + i); got != want {
				t.Errorf("%s: block %d elem %d = %v, want %v", who, r, i, got, want)
				return
			}
		}
	}
}

func runWorld(t *testing.T, model *sim.CostModel, nodeSizes []int, body func(p *mpi.Proc) error) *mpi.World {
	t.Helper()
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(model, topo, mpi.WithRealData())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAllgatherAlgorithmsCorrect(t *testing.T) {
	algos := map[string]func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error{
		"ring":   AllgatherRing,
		"recdbl": AllgatherRecDbl,
		"bruck":  AllgatherBruck,
		"auto":   Allgather,
	}
	for name, fn := range algos {
		for _, shape := range [][]int{{4, 4}, {2, 2, 2, 2}, {8}} {
			n := 0
			for _, s := range shape {
				n += s
			}
			t.Run(fmt.Sprintf("%s/%v", name, shape), func(t *testing.T) {
				const elems = 17
				runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
					c := p.CommWorld()
					recv := mpi.Bytes(make([]byte, 8*elems*n))
					if err := fn(c, fill(p.Rank(), elems), recv, 8*elems); err != nil {
						return err
					}
					checkGathered(t, name, recv, n, elems)
					return nil
				})
			})
		}
	}
}

func TestAllgatherBruckNonPow2(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			const elems = 5
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				recv := mpi.Bytes(make([]byte, 8*elems*n))
				if err := AllgatherBruck(c, fill(p.Rank(), elems), recv, 8*elems); err != nil {
					return err
				}
				checkGathered(t, "bruck", recv, n, elems)
				return nil
			})
		})
	}
}

func TestAllgatherRecDblRejectsNonPow2(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{3}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		recv := mpi.Bytes(make([]byte, 8*3))
		if err := AllgatherRecDbl(c, fill(p.Rank(), 1), recv, 8); err == nil {
			t.Error("recursive doubling accepted size 3")
		}
		return nil
	})
}

func TestAllgatherArgValidation(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		if err := Allgather(c, mpi.Sized(4), mpi.Sized(16), 8); err == nil {
			t.Error("short send buffer accepted")
		}
		if err := Allgather(c, mpi.Sized(8), mpi.Sized(8), 8); err == nil {
			t.Error("short recv buffer accepted")
		}
		if err := Allgather(c, mpi.Sized(8), mpi.Sized(16), -1); err == nil {
			t.Error("negative block accepted")
		}
		if err := Allgather(nil, mpi.Sized(8), mpi.Sized(16), 8); err == nil {
			t.Error("nil comm accepted")
		}
		return nil
	})
}

func TestAllgathervCorrect(t *testing.T) {
	// Irregular block sizes, including an empty contribution.
	for _, variant := range []string{"ring", "recdbl", "auto"} {
		t.Run(variant, func(t *testing.T) {
			shape := []int{2, 2} // 4 ranks (pow2 so recdbl is reachable)
			counts := []int{3 * 8, 0, 5 * 8, 1 * 8}
			total := Total(counts)
			runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
				c := p.CommWorld()
				recv := mpi.Bytes(make([]byte, total))
				displs := Displs(counts)
				// Place own block (in-place semantics).
				mine := fill(p.Rank(), counts[p.Rank()]/8)
				p.CopyLocal(recv.Slice(displs[p.Rank()], counts[p.Rank()]), mine, 1)
				var err error
				switch variant {
				case "ring":
					err = allgathervRing(c, recv, counts)
				case "recdbl":
					err = allgathervRecDbl(c, recv, counts)
				default:
					err = AllgathervInPlace(c, recv, counts)
				}
				if err != nil {
					return err
				}
				for r := 0; r < 4; r++ {
					for i := 0; i < counts[r]/8; i++ {
						want := float64(r*1_000_000 + i)
						if got := recv.Float64At(displs[r]/8 + i); got != want {
							t.Errorf("rank %d block %d elem %d = %v, want %v", p.Rank(), r, i, got, want)
							return nil
						}
					}
				}
				return nil
			})
		})
	}
}

func TestAllgathervSendCopyVariant(t *testing.T) {
	counts := []int{8, 16}
	runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		recv := mpi.Bytes(make([]byte, 24))
		send := fill(p.Rank(), counts[p.Rank()]/8)
		if err := Allgatherv(c, send, recv, counts); err != nil {
			return err
		}
		if recv.Float64At(0) != 0 || recv.Float64At(1) != 1_000_000 || recv.Float64At(2) != 1_000_001 {
			t.Errorf("allgatherv copy variant wrong: %v", recv.Float64s())
		}
		return nil
	})
}

func TestAllgathervValidation(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		if err := AllgathervInPlace(c, mpi.Sized(8), []int{8}); err == nil {
			t.Error("wrong count vector length accepted")
		}
		if err := AllgathervInPlace(c, mpi.Sized(8), []int{8, -8}); err == nil {
			t.Error("negative count accepted")
		}
		if err := AllgathervInPlace(c, mpi.Sized(8), []int{8, 8}); err == nil {
			t.Error("short recv accepted")
		}
		if err := AllgathervExplicit(c, mpi.Sized(16), []int{8, 8}, []int{0}); err == nil {
			t.Error("wrong displs length accepted")
		}
		return nil
	})
}

func TestAllgathervExplicitStridedLayout(t *testing.T) {
	// Blocks at non-prefix displacements: rank r's block at r*16,
	// 8 bytes each, 8 bytes of padding between.
	runWorld(t, sim.Laptop(), []int{2, 2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		recv := mpi.Bytes(make([]byte, 4*16))
		counts := []int{8, 8, 8, 8}
		displs := []int{0, 16, 32, 48}
		recv.PutFloat64(p.Rank()*2, float64(100+p.Rank()))
		if err := AllgathervExplicit(c, recv, counts, displs); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if got := recv.Float64At(r * 2); got != float64(100+r) {
				t.Errorf("strided block %d = %v", r, got)
			}
		}
		return nil
	})
}

func TestBcastAlgorithmsCorrect(t *testing.T) {
	algos := map[string]func(*mpi.Comm, mpi.Buf, int) error{
		"binomial": BcastBinomial,
		"scag":     BcastScatterAllgather,
		"auto":     Bcast,
		"pipeline": func(c *mpi.Comm, b mpi.Buf, root int) error {
			return BcastPipelined(c, b, root, 64)
		},
	}
	for name, fn := range algos {
		for _, n := range []int{2, 5, 8} {
			for _, root := range []int{0, 1, n - 1} {
				t.Run(fmt.Sprintf("%s/n%d/root%d", name, n, root), func(t *testing.T) {
					const elems = 33
					runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
						c := p.CommWorld()
						var buf mpi.Buf
						if p.Rank() == root {
							buf = fill(root, elems)
						} else {
							buf = mpi.Bytes(make([]byte, 8*elems))
						}
						if err := fn(c, buf, root); err != nil {
							return err
						}
						for i := 0; i < elems; i++ {
							want := float64(root*1_000_000 + i)
							if got := buf.Float64At(i); got != want {
								t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
								return nil
							}
						}
						return nil
					})
				})
			}
		}
	}
}

func TestBcastLargeTriggersNonBinomialPaths(t *testing.T) {
	// A payload above PipelineMin must still broadcast correctly
	// through the auto selector.
	model := sim.Laptop()
	elems := model.Tuning.BcastPipelineMin/8 + 100
	runWorld(t, model, []int{3, 3}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		var buf mpi.Buf
		if p.Rank() == 0 {
			buf = fill(0, elems)
		} else {
			buf = mpi.Bytes(make([]byte, 8*elems))
		}
		if err := Bcast(c, buf, 0); err != nil {
			return err
		}
		for _, i := range []int{0, elems / 2, elems - 1} {
			if got := buf.Float64At(i); got != float64(i) {
				t.Errorf("rank %d elem %d = %v", p.Rank(), i, got)
			}
		}
		return nil
	})
}

func TestBcastValidation(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		if err := Bcast(c, mpi.Sized(8), 5); err == nil {
			t.Error("bad root accepted")
		}
		if err := Bcast(nil, mpi.Sized(8), 0); err == nil {
			t.Error("nil comm accepted")
		}
		return nil
	})
}

func TestGatherVariants(t *testing.T) {
	for _, variant := range []string{"linear", "binomial", "auto"} {
		for _, n := range []int{2, 5, 8} {
			for _, root := range []int{0, n - 1} {
				t.Run(fmt.Sprintf("%s/n%d/root%d", variant, n, root), func(t *testing.T) {
					const elems = 7
					runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
						c := p.CommWorld()
						recv := mpi.Buf{}
						if p.Rank() == root {
							recv = mpi.Bytes(make([]byte, 8*elems*n))
						}
						var err error
						switch variant {
						case "linear":
							err = GatherLinear(c, fill(p.Rank(), elems), recv, 8*elems, root)
						case "binomial":
							err = GatherBinomial(c, fill(p.Rank(), elems), recv, 8*elems, root)
						default:
							err = Gather(c, fill(p.Rank(), elems), recv, 8*elems, root)
						}
						if err != nil {
							return err
						}
						if p.Rank() == root {
							checkGathered(t, variant, recv, n, elems)
						}
						return nil
					})
				})
			}
		}
	}
}

func TestGatherv(t *testing.T) {
	counts := []int{16, 0, 8, 24}
	runWorld(t, sim.Laptop(), []int{4}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		recv := mpi.Buf{}
		if p.Rank() == 2 {
			recv = mpi.Bytes(make([]byte, Total(counts)))
		}
		send := fill(p.Rank(), counts[p.Rank()]/8)
		if err := Gatherv(c, send, recv, counts, 2); err != nil {
			return err
		}
		if p.Rank() == 2 {
			displs := Displs(counts)
			for r := range counts {
				for i := 0; i < counts[r]/8; i++ {
					want := float64(r*1_000_000 + i)
					if got := recv.Float64At(displs[r]/8 + i); got != want {
						t.Errorf("gatherv block %d elem %d = %v", r, i, got)
					}
				}
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		for _, root := range []int{0, n / 2} {
			t.Run(fmt.Sprintf("n%d/root%d", n, root), func(t *testing.T) {
				const elems = 3
				runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
					c := p.CommWorld()
					var send mpi.Buf
					if p.Rank() == root {
						v := make([]float64, elems*n)
						for r := 0; r < n; r++ {
							for i := 0; i < elems; i++ {
								v[r*elems+i] = float64(r*1_000_000 + i)
							}
						}
						send = mpi.FromFloat64s(v)
					}
					recv := mpi.Bytes(make([]byte, 8*elems))
					if err := Scatter(c, send, recv, 8*elems, root); err != nil {
						return err
					}
					for i := 0; i < elems; i++ {
						want := float64(p.Rank()*1_000_000 + i)
						if got := recv.Float64At(i); got != want {
							t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			const elems = 9
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				// Element i of rank r is r+i; the sum over ranks
				// is n*i + n(n-1)/2.
				v := make([]float64, elems)
				for i := range v {
					v[i] = float64(p.Rank() + i)
				}
				send := mpi.FromFloat64s(v)

				recv := mpi.Bytes(make([]byte, 8*elems))
				if err := Reduce(c, send, recv, elems, mpi.Float64, mpi.OpSum, 0); err != nil {
					return err
				}
				if p.Rank() == 0 {
					for i := 0; i < elems; i++ {
						want := float64(n*i + n*(n-1)/2)
						if got := recv.Float64At(i); got != want {
							t.Errorf("reduce elem %d = %v, want %v", i, got, want)
						}
					}
				}

				all := mpi.Bytes(make([]byte, 8*elems))
				if err := Allreduce(c, send, all, elems, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := float64(n*i + n*(n-1)/2)
					if got := all.Float64At(i); got != want {
						t.Errorf("allreduce elem %d = %v, want %v", i, got, want)
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceRabenseifnerLarge(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			const elems = 1024 // big enough for the selector to pick Rabenseifner
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				v := make([]float64, elems)
				for i := range v {
					v[i] = float64(p.Rank()*elems + i)
				}
				recv := mpi.Bytes(make([]byte, 8*elems))
				if err := AllreduceRabenseifner(c, mpi.FromFloat64s(v), recv, elems, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
				for _, i := range []int{0, 1, elems / 2, elems - 1} {
					want := 0.0
					for r := 0; r < n; r++ {
						want += float64(r*elems + i)
					}
					if got := recv.Float64At(i); got != want {
						t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
						return nil
					}
				}
				return nil
			})
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{5}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		send := mpi.FromFloat64s([]float64{float64(p.Rank())})
		recv := mpi.Bytes(make([]byte, 8))
		if err := Allreduce(c, send, recv, 1, mpi.Float64, mpi.OpMax); err != nil {
			return err
		}
		if recv.Float64At(0) != 4 {
			t.Errorf("max = %v", recv.Float64At(0))
		}
		if err := Allreduce(c, send, recv, 1, mpi.Float64, mpi.OpMin); err != nil {
			return err
		}
		if recv.Float64At(0) != 0 {
			t.Errorf("min = %v", recv.Float64At(0))
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				// send block j carries value 1000*me + j
				v := make([]float64, n)
				for j := range v {
					v[j] = float64(1000*p.Rank() + j)
				}
				send := mpi.FromFloat64s(v)
				recv := mpi.Bytes(make([]byte, 8*n))
				if err := Alltoall(c, send, recv, 8); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					want := float64(1000*i + p.Rank())
					if got := recv.Float64At(i); got != want {
						t.Errorf("rank %d block %d = %v, want %v", p.Rank(), i, got, want)
					}
				}
				return nil
			})
		})
	}
}

func TestBarrierCentral(t *testing.T) {
	w := runWorld(t, sim.Laptop(), []int{2, 2}, func(p *mpi.Proc) error {
		p.Elapse(sim.Time(p.Rank()) * sim.Millisecond)
		return BarrierCentral(p.CommWorld())
	})
	for r := 0; r < 4; r++ {
		if w.Proc(r).Clock() < 3*sim.Millisecond {
			t.Errorf("rank %d left central barrier early at %v", r, w.Proc(r).Clock())
		}
	}
}

func TestHierAllgatherCorrect(t *testing.T) {
	for _, shape := range [][]int{{4}, {2, 2}, {3, 3, 3}, {4, 4, 2}} {
		t.Run(fmt.Sprint(shape), func(t *testing.T) {
			n := 0
			for _, s := range shape {
				n += s
			}
			const elems = 11
			runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
				c := p.CommWorld()
				h, err := NewHier(c)
				if err != nil {
					return err
				}
				recv := mpi.Bytes(make([]byte, 8*elems*n))
				if err := h.Allgather(fill(p.Rank(), elems), recv, 8*elems); err != nil {
					return err
				}
				checkGathered(t, "hier", recv, n, elems)
				return nil
			})
		})
	}
}

func TestHierBcastCorrect(t *testing.T) {
	for _, root := range []int{0, 1, 5} {
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			const elems = 19
			runWorld(t, sim.Laptop(), []int{3, 3}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				h, err := NewHier(c)
				if err != nil {
					return err
				}
				var buf mpi.Buf
				if p.Rank() == root {
					buf = fill(root, elems)
				} else {
					buf = mpi.Bytes(make([]byte, 8*elems))
				}
				if err := h.Bcast(buf, root); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := float64(root*1_000_000 + i)
					if got := buf.Float64At(i); got != want {
						t.Errorf("rank %d elem %d = %v", p.Rank(), i, got)
						return nil
					}
				}
				return nil
			})
		})
	}
}

func TestHierLeaderStructure(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{3, 2}, func(p *mpi.Proc) error {
		h, err := NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		if h.Nodes() != 2 {
			t.Errorf("nodes = %d", h.Nodes())
		}
		wantLeader := p.Rank() == 0 || p.Rank() == 3
		if h.IsLeader() != wantLeader {
			t.Errorf("rank %d IsLeader = %v", p.Rank(), h.IsLeader())
		}
		if wantLeader && h.Bridge() == nil {
			t.Errorf("leader %d has no bridge", p.Rank())
		}
		if !wantLeader && h.Bridge() != nil {
			t.Errorf("child %d has a bridge", p.Rank())
		}
		if got := h.NodeCounts(); got[0] != 3 || got[1] != 2 {
			t.Errorf("node counts = %v", got)
		}
		return nil
	})
}

func TestDispls(t *testing.T) {
	d := Displs([]int{3, 0, 5})
	if d[0] != 0 || d[1] != 3 || d[2] != 3 {
		t.Errorf("Displs = %v", d)
	}
	if Total([]int{1, 2, 3}) != 6 {
		t.Error("Total broken")
	}
	if !uniform([]int{2, 2}) || uniform([]int{2, 3}) {
		t.Error("uniform broken")
	}
	if !isPow2(8) || isPow2(6) || isPow2(0) {
		t.Error("isPow2 broken")
	}
}

// Timing-shape assertions: these lock in the relative behaviours the
// figures depend on.

func latencyOf(t *testing.T, model *sim.CostModel, shape []int, body func(p *mpi.Proc) error) sim.Time {
	t.Helper()
	topo, err := sim.NewTopology(shape)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(model, topo) // size-only
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w.MaxClock()
}

func TestRingSlowerThanRecDblForSmall(t *testing.T) {
	model := sim.HazelHenCray()
	shape := []int{1, 1, 1, 1, 1, 1, 1, 1} // 8 nodes x 1 rank
	small := 64
	ring := latencyOf(t, model, shape, func(p *mpi.Proc) error {
		return AllgatherRing(p.CommWorld(), mpi.Sized(small), mpi.Sized(8*small), small)
	})
	recdbl := latencyOf(t, model, shape, func(p *mpi.Proc) error {
		return AllgatherRecDbl(p.CommWorld(), mpi.Sized(small), mpi.Sized(8*small), small)
	})
	if recdbl >= ring {
		t.Errorf("recursive doubling (%v) should beat ring (%v) for small messages", recdbl, ring)
	}
}

func TestAllgathervSlowerThanAllgather(t *testing.T) {
	// The Fig. 8 mechanism: with one rank per node, the hybrid
	// approach degenerates to MPI_Allgatherv vs MPI_Allgather, and
	// the v variant must be slightly slower.
	model := sim.VulcanOpenMPI()
	for _, nodes := range []int{4, 16} {
		shape := make([]int, nodes)
		for i := range shape {
			shape[i] = 1
		}
		per := 8 * 64
		counts := make([]int, nodes)
		for i := range counts {
			counts[i] = per
		}
		ag := latencyOf(t, model, shape, func(p *mpi.Proc) error {
			return Allgather(p.CommWorld(), mpi.Sized(per), mpi.Sized(per*nodes), per)
		})
		agv := latencyOf(t, model, shape, func(p *mpi.Proc) error {
			return AllgathervInPlace(p.CommWorld(), mpi.Sized(per*nodes), counts)
		})
		if agv <= ag {
			t.Errorf("%d nodes: allgatherv (%v) should be slower than allgather (%v)", nodes, agv, ag)
		}
	}
}

func TestPipelineBeatsBinomialForHuge(t *testing.T) {
	model := sim.HazelHenCray()
	shape := []int{1, 1, 1, 1, 1, 1, 1, 1}
	big := 4 << 20
	bin := latencyOf(t, model, shape, func(p *mpi.Proc) error {
		return BcastBinomial(p.CommWorld(), mpi.Sized(big), 0)
	})
	pipe := latencyOf(t, model, shape, func(p *mpi.Proc) error {
		return BcastPipelined(p.CommWorld(), mpi.Sized(big), 0, model.Tuning.BcastChunk)
	})
	if pipe >= bin {
		t.Errorf("pipeline (%v) should beat binomial (%v) for huge broadcasts", pipe, bin)
	}
}

func TestCollectiveTimingDeterministic(t *testing.T) {
	model := sim.HazelHenCray()
	shape := []int{6, 6, 6}
	run := func() sim.Time {
		return latencyOf(t, model, shape, func(p *mpi.Proc) error {
			h, err := NewHier(p.CommWorld())
			if err != nil {
				return err
			}
			recv := mpi.Sized(1024 * 18)
			for i := 0; i < 3; i++ {
				if err := h.Allgather(mpi.Sized(1024), recv, 1024); err != nil {
					return err
				}
			}
			return nil
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("hier allgather latency differs across runs: %v vs %v", a, b)
	}
}
