package coll

import (
	"fmt"

	"repro/internal/mpi"
)

const (
	tagScan = 1<<25 + 16 + iota
	tagReduceScatter
	tagNeighbor
)

// Scan computes the inclusive prefix reduction: rank r's recv holds
// op(send_0, ..., send_r). The algorithm is resolved by the selection
// engine: under the default table policy the classic recursive-doubling
// scan (what this entry point always ran), with the linear pipeline
// available to the cost policy and Force overrides.
func Scan(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return err
	}
	en, err := pick(CollScan, envFor(c, count*dt.Size(), count), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(scanFn)(c, send, recv, count, dt, op)
}

// ScanRecDbl is the classic recursive-doubling scan: log2 n steps,
// partial results folded in from strictly lower ranks only.
func ScanRecDbl(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return err
	}
	p := c.Proc()
	bytes := count * dt.Size()
	p.CopyLocal(recv.Slice(0, bytes), send.Slice(0, bytes), 1)
	if c.Size() == 1 {
		return nil
	}
	// acc carries the running prefix including my own contribution;
	// recv carries the value to report.
	acc := p.World().NewBuf(bytes)
	p.CopyLocal(acc, send.Slice(0, bytes), 1)
	tmp := p.World().NewBuf(bytes)

	rank, n := c.Rank(), c.Size()
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		if partner >= n {
			continue
		}
		if _, err := c.Sendrecv(acc, partner, tagScan, tmp, partner, tagScan); err != nil {
			return fmt.Errorf("coll: scan mask %d: %w", mask, err)
		}
		// Fold the partner's partial into the running total; only
		// lower-ranked partners contribute to my reported prefix.
		if partner < rank {
			op.Apply(recv, tmp, count, dt)
			p.Compute(float64(count))
		}
		op.Apply(acc, tmp, count, dt)
		p.Compute(float64(count))
	}
	return nil
}

// ScanLinear is the pipeline scan: each rank waits for its
// predecessor's prefix, folds in its own contribution and forwards the
// running total. n-1 serialized hops, but only one message per rank —
// the shape real libraries keep for short vectors on shallow
// communicators.
func ScanLinear(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, recv, count, dt); err != nil {
		return err
	}
	p := c.Proc()
	bytes := count * dt.Size()
	p.CopyLocal(recv.Slice(0, bytes), send.Slice(0, bytes), 1)
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	if rank > 0 {
		tmp := p.World().NewBuf(bytes)
		if _, err := c.Recv(tmp, rank-1, tagScan); err != nil {
			return fmt.Errorf("coll: scan linear recv: %w", err)
		}
		// Fold the predecessor prefix under mine (prefix order is
		// commutative-safe here; Op kernels are elementwise).
		op.Apply(recv, tmp, count, dt)
		p.Compute(float64(count))
	}
	if rank < n-1 {
		if err := c.Send(recv.Slice(0, bytes), rank+1, tagScan); err != nil {
			return fmt.Errorf("coll: scan linear send: %w", err)
		}
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: rank r's recv holds
// op(send_0, ..., send_{r-1}); rank 0's recv is left untouched (as in
// MPI, where it is undefined).
func Exscan(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op) error {
	if err := checkReduceArgs(c, send, send, count, dt); err != nil {
		return err
	}
	p := c.Proc()
	bytes := count * dt.Size()
	if c.Size() == 1 {
		return nil
	}
	acc := p.World().NewBuf(bytes)
	p.CopyLocal(acc, send.Slice(0, bytes), 1)
	tmp := p.World().NewBuf(bytes)

	rank, n := c.Rank(), c.Size()
	seeded := false
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		if partner >= n {
			continue
		}
		if _, err := c.Sendrecv(acc, partner, tagScan, tmp, partner, tagScan); err != nil {
			return fmt.Errorf("coll: exscan mask %d: %w", mask, err)
		}
		if partner < rank {
			if !seeded {
				p.CopyLocal(recv.Slice(0, bytes), tmp, 1)
				seeded = true
			} else {
				op.Apply(recv, tmp, count, dt)
				p.Compute(float64(count))
			}
		}
		op.Apply(acc, tmp, count, dt)
		p.Compute(float64(count))
	}
	return nil
}

// ReduceScatterBlock reduces count-per-rank blocks across all ranks and
// scatters the result: rank r ends with op-reduction of everyone's r-th
// block. Implemented as pairwise exchange (n-1 balanced steps), the
// algorithm MPICH uses for commutative ops on non-power-of-two counts.
func ReduceScatterBlock(c *mpi.Comm, send, recv mpi.Buf, countPer int, dt mpi.Datatype, op mpi.Op) error {
	n := c.Size()
	bytes := countPer * dt.Size()
	switch {
	case c == nil:
		return fmt.Errorf("coll: reduce-scatter on nil communicator")
	case countPer < 0:
		return fmt.Errorf("coll: negative block count %d", countPer)
	case send.Len() < bytes*n:
		return fmt.Errorf("coll: reduce-scatter send buffer %dB < %d blocks", send.Len(), n)
	case recv.Len() < bytes:
		return fmt.Errorf("coll: reduce-scatter recv buffer %dB < %dB", recv.Len(), bytes)
	}
	p := c.Proc()
	rank := c.Rank()
	p.CopyLocal(recv.Slice(0, bytes), send.Slice(rank*bytes, bytes), 1)
	if n == 1 {
		return nil
	}
	tmp := p.World().NewBuf(bytes)
	for step := 1; step < n; step++ {
		dst := (rank + step) % n
		src := (rank - step + n) % n
		// Send the block destined for dst, receive my block's
		// contribution from src.
		if _, err := c.Sendrecv(
			send.Slice(dst*bytes, bytes), dst, tagReduceScatter,
			tmp, src, tagReduceScatter,
		); err != nil {
			return fmt.Errorf("coll: reduce-scatter step %d: %w", step, err)
		}
		op.Apply(recv, tmp, countPer, dt)
		p.Compute(float64(countPer))
	}
	return nil
}

// AllgatherNeighbor is the neighbor-exchange allgather (Chen et al.):
// n/2 + 1 steps of pairwise exchanges with alternating neighbours,
// transferring two blocks per step. Even communicator sizes only; it
// trades latency against ring for medium messages and completes the
// classic algorithm family for the ablation sweep.
func AllgatherNeighbor(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(c, send, recv, per); err != nil {
		return err
	}
	n := c.Size()
	if n == 1 {
		placeOwn(c, send, recv, per)
		return nil
	}
	if n%2 != 0 {
		return fmt.Errorf("coll: neighbor-exchange needs an even size, got %d", n)
	}
	placeOwn(c, send, recv, per)
	rank := c.Rank()

	// First step: exchange own blocks with the first neighbour.
	var first int
	if rank%2 == 0 {
		first = (rank + 1) % n
	} else {
		first = (rank - 1 + n) % n
	}
	if _, err := c.Sendrecv(
		recv.Slice(rank*per, per), first, tagNeighbor,
		recv.Slice(first*per, per), first, tagNeighbor,
	); err != nil {
		return fmt.Errorf("coll: neighbor step 0: %w", err)
	}

	// Remaining steps: alternate left/right, forwarding the pair of
	// blocks learned two steps ago.
	// Track which contiguous pair (in ring distance) was received
	// last. Even ranks move left then right alternately; odd ranks
	// mirror. We follow the standard formulation: at odd steps
	// exchange with left neighbour of the first partner chain, at
	// even steps with right.
	lastPair := pairStart(rank, 0, n)
	for step := 1; step <= n/2-1; step++ {
		var partner int
		if (rank%2 == 0) == (step%2 == 1) {
			partner = (rank - 1 + n) % n
		} else {
			partner = (rank + 1) % n
		}
		sendBase := lastPair
		recvBase := pairStart(rank, step, n)
		if err := sendrecvPair(c, recv, per, n, sendBase, partner, recvBase); err != nil {
			return fmt.Errorf("coll: neighbor step %d: %w", step, err)
		}
		lastPair = recvBase
	}
	return nil
}

// pairStart returns the first block index of the pair a rank acquires
// at a given neighbor-exchange step.
func pairStart(rank, step, n int) int {
	// The pair acquired at step s sits 2s (even ranks, odd steps
	// moving left) or -(2s) blocks away from the rank's own pair.
	pairBase := rank &^ 1 // my pair: {even, even+1}
	var off int
	if rank%2 == 0 {
		if step%2 == 1 {
			off = -2 * ((step + 1) / 2)
		} else {
			off = 2 * (step / 2)
		}
	} else {
		if step%2 == 1 {
			off = 2 * ((step + 1) / 2)
		} else {
			off = -2 * (step / 2)
		}
	}
	return ((pairBase+off)%n + n) % n
}

// sendrecvPair exchanges two adjacent blocks (mod n wraparound handled
// block-by-block).
func sendrecvPair(c *mpi.Comm, recv mpi.Buf, per, n, sendBase, partner, recvBase int) error {
	// Two blocks, possibly wrapping: send blocks sendBase,
	// sendBase+1; receive recvBase, recvBase+1.
	r1, err := c.Irecv(recv.Slice((recvBase%n)*per, per), partner, tagNeighbor)
	if err != nil {
		return err
	}
	r2, err := c.Irecv(recv.Slice(((recvBase+1)%n)*per, per), partner, tagNeighbor)
	if err != nil {
		return err
	}
	if err := c.Send(recv.Slice((sendBase%n)*per, per), partner, tagNeighbor); err != nil {
		return err
	}
	if err := c.Send(recv.Slice(((sendBase+1)%n)*per, per), partner, tagNeighbor); err != nil {
		return err
	}
	return mpi.Waitall(r1, r2)
}
