package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Bcast broadcasts root's buffer to every rank. The algorithm is
// resolved by the selection engine; the default table policy selects
// by message size the way the profile's library would: binomial tree
// for short messages, scatter+ring-allgather for medium, and a chained
// pipeline for very large payloads.
func Bcast(c *mpi.Comm, buf mpi.Buf, root int) error {
	if err := checkBcastArgs(c, buf, root); err != nil {
		return err
	}
	en, err := pick(CollBcast, envFor(c, buf.Len(), 0), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(bcastFn)(c, buf, root)
}

func checkBcastArgs(c *mpi.Comm, buf mpi.Buf, root int) error {
	switch {
	case c == nil:
		return fmt.Errorf("coll: bcast on nil communicator")
	case root < 0 || root >= c.Size():
		return fmt.Errorf("coll: bcast root %d out of range (size %d)", root, c.Size())
	}
	return nil
}

// BcastBinomial is the classic binomial tree: log2(n) rounds, each
// holder forwarding the whole message to one new rank per round.
func BcastBinomial(c *mpi.Comm, buf mpi.Buf, root int) error {
	if err := checkBcastArgs(c, buf, root); err != nil {
		return err
	}
	n := c.Size()
	if n == 1 {
		return nil
	}
	rel := (c.Rank() - root + n) % n

	// Receive once from the parent...
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			if _, err := c.Recv(buf, parent, tagBcast); err != nil {
				return fmt.Errorf("coll: bcast binomial recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	// ...then forward to children under decreasing masks.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			child := (rel + mask + root) % n
			if err := c.Send(buf, child, tagBcast); err != nil {
				return fmt.Errorf("coll: bcast binomial send: %w", err)
			}
		}
		mask >>= 1
	}
	return nil
}

// bcastPieces splits a message into n near-equal pieces laid out in
// relative-rank order: relative rank i owns bytes
// [i*per, min((i+1)*per, total)).
func bcastPieces(total, n int) (per int, counts []int) {
	per = (total + n - 1) / n
	if per == 0 {
		per = 1
	}
	counts = make([]int, n)
	for i := range counts {
		lo := i * per
		hi := lo + per
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		counts[i] = hi - lo
	}
	return per, counts
}

// BcastScatterAllgather is the van de Geijn algorithm MPICH uses for
// medium and large messages: binomial-scatter the payload over the
// ranks, then ring-allgather the pieces back together. Bandwidth is
// near-optimal at the price of O(n) latency in the allgather phase.
func BcastScatterAllgather(c *mpi.Comm, buf mpi.Buf, root int) error {
	if err := checkBcastArgs(c, buf, root); err != nil {
		return err
	}
	n := c.Size()
	if n == 1 {
		return nil
	}
	total := buf.Len()
	if total == 0 {
		// No payload to scatter; the zero-byte tree still broadcasts.
		return BcastBinomial(c, buf, root)
	}
	per, counts := bcastPieces(total, n)
	rel := (c.Rank() - root + n) % n
	absRank := func(r int) int { return (r + root) % n }
	// pieceOff clamps a relative piece's offset to the payload end, so
	// empty tail pieces (payloads smaller than n*per) slice validly.
	pieceOff := func(i int) int {
		if o := i * per; o < total {
			return o
		}
		return total
	}

	// Phase 1: binomial scatter. Every rank ends up holding its own
	// relative piece; interior tree nodes transiently hold their
	// subtree's range [rel*per, rel*per+curr).
	curr := 0
	if rel == 0 {
		curr = total
	}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := absRank(rel - mask)
			curr = total - rel*per
			if curr < 0 {
				curr = 0
			}
			if max := mask * per; curr > max {
				curr = max
			}
			if curr > 0 {
				if _, err := c.Recv(buf.Slice(rel*per, curr), src, tagBcast); err != nil {
					return fmt.Errorf("coll: bcast scatter recv: %w", err)
				}
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			sendSize := curr - mask*per
			if sendSize > 0 {
				dst := absRank(rel + mask)
				off := (rel + mask) * per
				if err := c.Send(buf.Slice(off, sendSize), dst, tagBcast); err != nil {
					return fmt.Errorf("coll: bcast scatter send: %w", err)
				}
				curr -= sendSize
			}
		}
		mask >>= 1
	}

	// Phase 2: ring allgather of the pieces in relative-rank space.
	right := absRank(rel + 1)
	left := absRank(rel - 1 + n)
	for i := 0; i < n-1; i++ {
		sendIdx := (rel - i + n) % n
		recvIdx := (rel - i - 1 + n) % n
		_, err := c.Sendrecv(
			buf.Slice(pieceOff(sendIdx), counts[sendIdx]), right, tagBcast,
			buf.Slice(pieceOff(recvIdx), counts[recvIdx]), left, tagBcast,
		)
		if err != nil {
			return fmt.Errorf("coll: bcast allgather step %d: %w", i, err)
		}
	}
	return nil
}

// BcastPipelined is a chained pipeline for very large messages: the
// message is cut into chunks that flow down the rank chain, so total
// cost approaches (chunks + n) single-chunk hops instead of log2(n)
// full-message hops. This is the large-message path the paper's
// conclusion points at ([30]).
func BcastPipelined(c *mpi.Comm, buf mpi.Buf, root, chunk int) error {
	if err := checkBcastArgs(c, buf, root); err != nil {
		return err
	}
	if chunk <= 0 {
		chunk = 64 << 10
	}
	n := c.Size()
	if n == 1 || buf.Len() == 0 {
		return nil
	}
	rel := (c.Rank() - root + n) % n
	prev := (c.Rank() - 1 + n) % n
	next := (c.Rank() + 1) % n
	isTail := rel == n-1

	for off := 0; off < buf.Len(); off += chunk {
		sz := chunk
		if off+sz > buf.Len() {
			sz = buf.Len() - off
		}
		piece := buf.Slice(off, sz)
		if rel != 0 {
			if _, err := c.Recv(piece, prev, tagBcast); err != nil {
				return fmt.Errorf("coll: bcast pipeline recv: %w", err)
			}
		}
		if !isTail {
			if err := c.Send(piece, next, tagBcast); err != nil {
				return fmt.Errorf("coll: bcast pipeline send: %w", err)
			}
		}
	}
	return nil
}
