package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Displs returns the standard displacement vector for a count vector:
// displs[i] = sum(counts[:i]).
func Displs(counts []int) []int {
	d := make([]int, len(counts))
	off := 0
	for i, c := range counts {
		d[i] = off
		off += c
	}
	return d
}

// Total sums a count vector.
func Total(counts []int) int {
	t := 0
	for _, c := range counts {
		t += c
	}
	return t
}

func checkAllgathervArgs(c *mpi.Comm, recv mpi.Buf, counts []int) error {
	switch {
	case c == nil:
		return fmt.Errorf("coll: allgatherv on nil communicator")
	case len(counts) != c.Size():
		return fmt.Errorf("coll: allgatherv got %d counts for %d ranks", len(counts), c.Size())
	}
	for r, n := range counts {
		if n < 0 {
			return fmt.Errorf("coll: allgatherv count[%d] = %d", r, n)
		}
	}
	if recv.Len() < Total(counts) {
		return fmt.Errorf("coll: allgatherv recv buffer %dB < total %dB", recv.Len(), Total(counts))
	}
	return nil
}

// Allgatherv is the irregular allgather: rank r contributes counts[r]
// bytes. Algorithm selection mirrors how real libraries treat the v
// variant as a second-class citizen ([29], paper Fig. 8): the
// logarithmic path is used only for much smaller totals than
// MPI_Allgather's, every call pays a vector-walking setup, and every
// step pays a bookkeeping penalty.
//
// The caller's contribution must already sit at its displacement in recv
// (MPI_IN_PLACE semantics) — that is exactly how the paper's Fig. 4 uses
// MPI_Allgatherv on the shared buffer — unless send is non-empty, in
// which case it is copied there first.
func Allgatherv(c *mpi.Comm, send, recv mpi.Buf, counts []int) error {
	if err := checkAllgathervArgs(c, recv, counts); err != nil {
		return err
	}
	displs := Displs(counts)
	if send.Len() > 0 {
		c.Proc().CopyLocal(recv.Slice(displs[c.Rank()], counts[c.Rank()]), send, 1)
	}
	return AllgathervInPlace(c, recv, counts)
}

// AllgathervInPlace runs the irregular allgather assuming each rank's
// block is already placed at its displacement in recv. The algorithm
// is resolved by the selection engine; the v variant only registers
// the ring and (power-of-two) recursive-doubling runners, mirroring
// how real libraries under-tune it ([29]).
func AllgathervInPlace(c *mpi.Comm, recv mpi.Buf, counts []int) error {
	if err := checkAllgathervArgs(c, recv, counts); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	p := c.Proc()
	// The per-call setup: walking the count/displacement vectors.
	p.Elapse(p.Model().Tuning.AllgathervSetup)
	en, err := pick(CollAllgatherv, envFor(c, Total(counts), 0), tuningOf(c), true)
	if err != nil {
		return err
	}
	return en.runInPlace.(allgathervFn)(c, recv, counts)
}

// AllgathervExplicit runs the ring allgatherv with caller-provided
// displacements (which need not be prefix sums — the multi-leader
// hierarchy scatters node slices through a strided layout). Each rank's
// block must already sit at displs[rank].
func AllgathervExplicit(c *mpi.Comm, recv mpi.Buf, counts, displs []int) error {
	if c == nil {
		return fmt.Errorf("coll: allgatherv on nil communicator")
	}
	if len(counts) != c.Size() || len(displs) != c.Size() {
		return fmt.Errorf("coll: allgatherv got %d counts / %d displs for %d ranks",
			len(counts), len(displs), c.Size())
	}
	n := c.Size()
	if n == 1 {
		return nil
	}
	p := c.Proc()
	tun := p.Model().Tuning

	// When the displacements are an ordinary prefix layout the call is
	// equivalent to the standard in-place allgatherv and gets the same
	// engine-driven algorithm selection (including the logarithmic
	// small-message path). Genuinely strided layouts always ring.
	prefix := true
	for i := 1; i < n; i++ {
		if displs[i] != displs[i-1]+counts[i-1] {
			prefix = false
			break
		}
	}
	if prefix && displs[0] == 0 {
		return AllgathervInPlace(c, recv, counts)
	}

	p.Elapse(tun.AllgathervSetup)
	right := (c.Rank() + 1) % n
	left := (c.Rank() - 1 + n) % n
	penalty := tun.AllgathervStepPenalty
	for i := 0; i < n-1; i++ {
		sendIdx := (c.Rank() - i + n) % n
		recvIdx := (c.Rank() - i - 1 + n) % n
		p.Elapse(penalty)
		_, err := c.Sendrecv(
			recv.Slice(displs[sendIdx], counts[sendIdx]), right, tagAllgatherv,
			recv.Slice(displs[recvIdx], counts[recvIdx]), left, tagAllgatherv,
		)
		if err != nil {
			return fmt.Errorf("coll: allgatherv explicit step %d: %w", i, err)
		}
	}
	return nil
}

// allgathervRing is the ring algorithm on irregular blocks: n-1 steps;
// step cost is dominated by the largest block in flight, which is why
// the irregular-population case (paper Fig. 10) hurts the pure-MPI
// flavor that must run it over *all* ranks.
func allgathervRing(c *mpi.Comm, recv mpi.Buf, counts []int) error {
	n := c.Size()
	displs := Displs(counts)
	right := (c.Rank() + 1) % n
	left := (c.Rank() - 1 + n) % n
	penalty := c.Proc().Model().Tuning.AllgathervStepPenalty
	for i := 0; i < n-1; i++ {
		sendIdx := (c.Rank() - i + n) % n
		recvIdx := (c.Rank() - i - 1 + n) % n
		c.Proc().Elapse(penalty)
		_, err := c.Sendrecv(
			recv.Slice(displs[sendIdx], counts[sendIdx]), right, tagAllgatherv,
			recv.Slice(displs[recvIdx], counts[recvIdx]), left, tagAllgatherv,
		)
		if err != nil {
			return fmt.Errorf("coll: allgatherv ring step %d: %w", i, err)
		}
	}
	return nil
}

// allgathervRecDbl is recursive doubling over irregular blocks
// (power-of-two sizes only; the selector guarantees that).
func allgathervRecDbl(c *mpi.Comm, recv mpi.Buf, counts []int) error {
	n := c.Size()
	rank := c.Rank()
	displs := Displs(counts)
	penalty := c.Proc().Model().Tuning.AllgathervStepPenalty

	// rangeOf returns the byte span covering blocks [base, base+m).
	rangeOf := func(base, m int) (off, length int) {
		off = displs[base]
		for b := base; b < base+m; b++ {
			length += counts[b]
		}
		return off, length
	}
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		haveBase := rank &^ (mask - 1)
		getBase := partner &^ (mask - 1)
		hOff, hLen := rangeOf(haveBase, mask)
		gOff, gLen := rangeOf(getBase, mask)
		c.Proc().Elapse(penalty)
		_, err := c.Sendrecv(
			recv.Slice(hOff, hLen), partner, tagAllgatherv,
			recv.Slice(gOff, gLen), partner, tagAllgatherv,
		)
		if err != nil {
			return fmt.Errorf("coll: allgatherv recdbl mask %d: %w", mask, err)
		}
	}
	return nil
}
