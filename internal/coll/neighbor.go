package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Neighborhood collectives (MPI-3 MPI_Neighbor_*): sparse exchanges
// over a communicator's process topology (mpi.CartCreate /
// mpi.DistGraphCreate). Each rank sends one block per out-neighbor and
// receives one block per in-neighbor, slots ordered exactly like the
// neighborhood edge lists; ProcNull slots keep their buffer positions
// but move no data. Two algorithms are registered per family:
//
//   - pairwise: per grid dimension, one exchange in the negative then
//     the positive direction of travel — the hand-rolled halo pattern
//     stencil codes use, with the same deterministic virtual timeline.
//     Cartesian topologies only (it needs the grid's paired direction
//     structure).
//   - linear: post every receive, then every send, then complete all —
//     the NBX-style path that serves arbitrary graphs, including
//     self-edges and multi-edges.
//
// The selection engine picks between them like for every collective:
// the table policy pins pairwise on grids and linear on graphs, the
// cost policy prices both at the call's degree and block size.

// Neighborhood tag bases. Each family gets a stride of 256 relative
// tags — ample for the direction-of-travel tags 2*dim+dir, which
// mpi.MaxCartDims caps at 2*32-1 — spaced well clear of the
// single-tag collective block at 1<<25.
const (
	tagNeighborAllgather = 1<<25 + 1<<10 + 256*iota
	tagNeighborAlltoall
	tagNeighborAlltoallv
)

// neighborhoodOf fetches the communicator's neighborhood or reports a
// usable error for plain communicators.
func neighborhoodOf(c *mpi.Comm, what string) (in, out []mpi.NeighborEdge, err error) {
	if c == nil {
		return nil, nil, fmt.Errorf("coll: %s on nil communicator", what)
	}
	in, out, ok := c.Neighborhood()
	if !ok {
		return nil, nil, fmt.Errorf("coll: %s needs a communicator with a process topology (CartCreate / DistGraphCreate)", what)
	}
	return in, out, nil
}

// nonNull counts the edges that move data.
func nonNull(edges []mpi.NeighborEdge) int {
	n := 0
	for _, e := range edges {
		if e.Peer != mpi.ProcNull {
			n++
		}
	}
	return n
}

// envForNeighbor derives the selection environment of a neighborhood
// call: Bytes is the per-neighbor block, Degree the larger non-null
// neighbor count, Cart whether the pairwise grid exchange applies.
func envForNeighbor(c *mpi.Comm, in, out []mpi.NeighborEdge, bytes int) Env {
	e := envFor(c, bytes, 0)
	e.Degree = max(nonNull(in), nonNull(out))
	e.Cart = c.IsCart()
	return e
}

// neighborPairwiseCost prices the per-dimension paired exchange:
// Degree serialized steps, each one latency plus one block.
func neighborPairwiseCost(e Env) sim.Time {
	return timesT(e.Degree, alphaT(e)+betaT(e, e.Bytes))
}

// neighborLinearCost prices the posted-all exchange: the posts overlap
// on the wire (one latency each way) but serialize through the rank's
// injection port — Degree blocks of bandwidth plus Degree posting
// overheads.
func neighborLinearCost(e Env) sim.Time {
	return timesT(2, alphaT(e)) + betaT(e, e.Degree*e.Bytes) +
		timesT(e.Degree, e.Model.SendOverhead)
}

// nbrBufFn addresses one neighborhood slot's block.
type nbrBufFn = func(slot int) mpi.Buf

// runNeighborPairwise executes the paired per-dimension exchange on a
// Cartesian communicator: for each dimension, one step in the negative
// direction of travel (send to the negative neighbor, receive from the
// positive one — their block travels negative too), then one in the
// positive. Each step is a plain Sendrecv, degenerating to Send/Recv
// at non-periodic boundaries (ProcNull on one side) and to a
// self-exchange on 1-wide periodic dims.
func runNeighborPairwise(c *mpi.Comm, tagBase int, sendAt, recvAt nbrBufFn) error {
	in, out, _ := c.Neighborhood()
	for d := 0; d < len(out)/2; d++ {
		// Travel negative: out slot 2d (to the negative side), in slot
		// 2d+1 (the positive side's block arriving). Tags agree by
		// construction (both are 2d).
		if err := nbrStep(c, tagBase, out[2*d], sendAt(2*d), in[2*d+1], recvAt(2*d+1)); err != nil {
			return fmt.Errorf("coll: neighbor exchange dim %d negative: %w", d, err)
		}
		// Travel positive: out slot 2d+1, in slot 2d (tags 2d+1).
		if err := nbrStep(c, tagBase, out[2*d+1], sendAt(2*d+1), in[2*d], recvAt(2*d)); err != nil {
			return fmt.Errorf("coll: neighbor exchange dim %d positive: %w", d, err)
		}
	}
	return nil
}

// nbrStep is one direction of one dimension: a Sendrecv when both
// sides exist, a lone Send/Recv at a boundary.
func nbrStep(c *mpi.Comm, tagBase int, oe mpi.NeighborEdge, sbuf mpi.Buf, ie mpi.NeighborEdge, rbuf mpi.Buf) error {
	switch {
	case oe.Peer != mpi.ProcNull && ie.Peer != mpi.ProcNull:
		_, err := c.Sendrecv(sbuf, oe.Peer, tagBase+oe.Tag, rbuf, ie.Peer, tagBase+ie.Tag)
		return err
	case oe.Peer != mpi.ProcNull:
		return c.Send(sbuf, oe.Peer, tagBase+oe.Tag)
	case ie.Peer != mpi.ProcNull:
		_, err := c.Recv(rbuf, ie.Peer, tagBase+ie.Tag)
		return err
	default:
		return nil
	}
}

// runNeighborLinear executes the posted-all exchange: every receive is
// posted (in slot order), then every send, then all complete. Works on
// any neighborhood, including self-edges (the receive is already
// posted when the matching send arrives) and multi-edges (FIFO
// matching pairs them in slot order on both sides).
func runNeighborLinear(c *mpi.Comm, tagBase int, sendAt, recvAt nbrBufFn) error {
	in, out, _ := c.Neighborhood()
	reqs := make([]*mpi.Request, 0, len(in)+len(out))
	for j, e := range in {
		if e.Peer == mpi.ProcNull {
			continue
		}
		r, err := c.Irecv(recvAt(j), e.Peer, tagBase+e.Tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
	}
	for i, e := range out {
		if e.Peer == mpi.ProcNull {
			continue
		}
		r, err := c.Isend(sendAt(i), e.Peer, tagBase+e.Tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
	}
	return mpi.Waitall(reqs...)
}

func checkNeighborArgs(in, out []mpi.NeighborEdge, send, recv mpi.Buf, per int, gather bool) error {
	sendNeed := per * len(out)
	if gather {
		sendNeed = per
	}
	switch {
	case per < 0:
		return fmt.Errorf("coll: negative neighbor block size %d", per)
	case send.Len() < sendNeed:
		return fmt.Errorf("coll: neighbor send buffer %dB < %dB", send.Len(), sendNeed)
	case recv.Len() < per*len(in):
		return fmt.Errorf("coll: neighbor recv buffer %dB < %d slots of %dB", recv.Len(), len(in), per)
	}
	return nil
}

// NeighborAllgather sends the caller's single block of `per` bytes to
// every out-neighbor and gathers one block per in-neighbor into recv,
// in neighborhood slot order (MPI_Neighbor_allgather). The algorithm
// is resolved by the selection engine.
func NeighborAllgather(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	in, out, err := neighborhoodOf(c, "neighbor allgather")
	if err != nil {
		return err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, true); err != nil {
		return err
	}
	en, err := pick(CollNeighborAllgather, envForNeighbor(c, in, out, per), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(neighborFn)(c, send, recv, per)
}

// NeighborAllgatherPairwise is the paired per-dimension exchange
// (Cartesian topologies only).
func NeighborAllgatherPairwise(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	in, out, err := neighborhoodOf(c, "neighbor allgather")
	if err != nil {
		return err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, true); err != nil {
		return err
	}
	if !c.IsCart() {
		return fmt.Errorf("coll: pairwise neighbor exchange needs a Cartesian topology")
	}
	return runNeighborPairwise(c, tagNeighborAllgather,
		func(int) mpi.Buf { return send.Slice(0, per) },
		func(j int) mpi.Buf { return recv.Slice(j*per, per) })
}

// NeighborAllgatherLinear is the posted-all exchange (any topology).
func NeighborAllgatherLinear(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	in, out, err := neighborhoodOf(c, "neighbor allgather")
	if err != nil {
		return err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, true); err != nil {
		return err
	}
	return runNeighborLinear(c, tagNeighborAllgather,
		func(int) mpi.Buf { return send.Slice(0, per) },
		func(j int) mpi.Buf { return recv.Slice(j*per, per) })
}

// NeighborAlltoall sends a distinct block of `per` bytes to each
// out-neighbor (send slot i to out-neighbor i) and gathers one block
// per in-neighbor (MPI_Neighbor_alltoall). The algorithm is resolved
// by the selection engine.
func NeighborAlltoall(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	in, out, err := neighborhoodOf(c, "neighbor alltoall")
	if err != nil {
		return err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, false); err != nil {
		return err
	}
	en, err := pick(CollNeighborAlltoall, envForNeighbor(c, in, out, per), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(neighborFn)(c, send, recv, per)
}

// NeighborAlltoallPairwise is the paired per-dimension exchange
// (Cartesian topologies only).
func NeighborAlltoallPairwise(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	in, out, err := neighborhoodOf(c, "neighbor alltoall")
	if err != nil {
		return err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, false); err != nil {
		return err
	}
	if !c.IsCart() {
		return fmt.Errorf("coll: pairwise neighbor exchange needs a Cartesian topology")
	}
	return runNeighborPairwise(c, tagNeighborAlltoall,
		func(i int) mpi.Buf { return send.Slice(i*per, per) },
		func(j int) mpi.Buf { return recv.Slice(j*per, per) })
}

// NeighborAlltoallLinear is the posted-all exchange (any topology).
func NeighborAlltoallLinear(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	in, out, err := neighborhoodOf(c, "neighbor alltoall")
	if err != nil {
		return err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, false); err != nil {
		return err
	}
	return runNeighborLinear(c, tagNeighborAlltoall,
		func(i int) mpi.Buf { return send.Slice(i*per, per) },
		func(j int) mpi.Buf { return recv.Slice(j*per, per) })
}

// nbrOffsets turns per-slot byte counts into packed displacements and
// validates the buffer length.
func nbrOffsets(counts []int, buf mpi.Buf, what string) ([]int, error) {
	offs := make([]int, len(counts))
	total := 0
	for i, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("coll: negative %s count %d at slot %d", what, n, i)
		}
		offs[i] = total
		total += n
	}
	if buf.Len() < total {
		return nil, fmt.Errorf("coll: %s buffer %dB < %dB of counted blocks", what, buf.Len(), total)
	}
	return offs, nil
}

func checkNeighborVArgs(in, out []mpi.NeighborEdge, sendCounts, recvCounts []int) error {
	if len(sendCounts) != len(out) {
		return fmt.Errorf("coll: %d send counts for %d out-neighbors", len(sendCounts), len(out))
	}
	if len(recvCounts) != len(in) {
		return fmt.Errorf("coll: %d recv counts for %d in-neighbors", len(recvCounts), len(in))
	}
	return nil
}

// NeighborAlltoallv is the irregular complete neighborhood exchange
// (MPI_Neighbor_alltoallv with packed displacements): sendCounts[i]
// bytes go to out-neighbor i, recvCounts[j] bytes arrive from
// in-neighbor j, blocks packed back to back in slot order. The
// algorithm is resolved by the selection engine.
func NeighborAlltoallv(c *mpi.Comm, send mpi.Buf, sendCounts []int, recv mpi.Buf, recvCounts []int) error {
	in, out, err := neighborhoodOf(c, "neighbor alltoallv")
	if err != nil {
		return err
	}
	if err := checkNeighborVArgs(in, out, sendCounts, recvCounts); err != nil {
		return err
	}
	bytes := 0
	for _, n := range sendCounts {
		if n > bytes {
			bytes = n
		}
	}
	en, err := pick(CollNeighborAlltoallv, envForNeighbor(c, in, out, bytes), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(neighborVFn)(c, send, sendCounts, recv, recvCounts)
}

// neighborVBufs resolves the per-slot block addressing of the
// irregular exchange.
func neighborVBufs(send mpi.Buf, sendCounts []int, recv mpi.Buf, recvCounts []int) (sendAt, recvAt nbrBufFn, err error) {
	soffs, err := nbrOffsets(sendCounts, send, "neighbor send")
	if err != nil {
		return nil, nil, err
	}
	roffs, err := nbrOffsets(recvCounts, recv, "neighbor recv")
	if err != nil {
		return nil, nil, err
	}
	return func(i int) mpi.Buf { return send.Slice(soffs[i], sendCounts[i]) },
		func(j int) mpi.Buf { return recv.Slice(roffs[j], recvCounts[j]) }, nil
}

// NeighborAlltoallvPairwise is the paired per-dimension irregular
// exchange (Cartesian topologies only).
func NeighborAlltoallvPairwise(c *mpi.Comm, send mpi.Buf, sendCounts []int, recv mpi.Buf, recvCounts []int) error {
	in, out, err := neighborhoodOf(c, "neighbor alltoallv")
	if err != nil {
		return err
	}
	if err := checkNeighborVArgs(in, out, sendCounts, recvCounts); err != nil {
		return err
	}
	if !c.IsCart() {
		return fmt.Errorf("coll: pairwise neighbor exchange needs a Cartesian topology")
	}
	sendAt, recvAt, err := neighborVBufs(send, sendCounts, recv, recvCounts)
	if err != nil {
		return err
	}
	return runNeighborPairwise(c, tagNeighborAlltoallv, sendAt, recvAt)
}

// NeighborAlltoallvLinear is the posted-all irregular exchange (any
// topology).
func NeighborAlltoallvLinear(c *mpi.Comm, send mpi.Buf, sendCounts []int, recv mpi.Buf, recvCounts []int) error {
	in, out, err := neighborhoodOf(c, "neighbor alltoallv")
	if err != nil {
		return err
	}
	if err := checkNeighborVArgs(in, out, sendCounts, recvCounts); err != nil {
		return err
	}
	sendAt, recvAt, err := neighborVBufs(send, sendCounts, recv, recvCounts)
	if err != nil {
		return err
	}
	return runNeighborLinear(c, tagNeighborAlltoallv, sendAt, recvAt)
}

// ineighborSched compiles the one-round posted-all schedule shared by
// the nonblocking neighborhood collectives: all receives (slot order),
// then all sends, relative tags straight from the neighborhood edges.
func ineighborSched(c *mpi.Comm, in, out []mpi.NeighborEdge, sendAt, recvAt nbrBufFn) *mpi.Sched {
	ops := make([]mpi.SchedOp, 0, len(in)+len(out))
	for j, e := range in {
		if e.Peer == mpi.ProcNull {
			continue
		}
		ops = append(ops, mpi.SchedRecv(recvAt(j), e.Peer, e.Tag))
	}
	for i, e := range out {
		if e.Peer == mpi.ProcNull {
			continue
		}
		ops = append(ops, mpi.SchedSend(sendAt(i), e.Peer, e.Tag))
	}
	if len(ops) == 0 {
		return c.NewSched(nil)
	}
	return c.NewSched([]mpi.Round{{Ops: ops}})
}

// IneighborAllgather starts a nonblocking neighborhood allgather as a
// schedule on the asynchronous progress engine (mpi.Sched): one round
// posting every receive and send, completion fused at Wait. send and
// recv must stay untouched until Wait.
func IneighborAllgather(c *mpi.Comm, send, recv mpi.Buf, per int) (*mpi.Sched, error) {
	in, out, err := neighborhoodOf(c, "ineighbor allgather")
	if err != nil {
		return nil, err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, true); err != nil {
		return nil, err
	}
	return ineighborSched(c, in, out,
		func(int) mpi.Buf { return send.Slice(0, per) },
		func(j int) mpi.Buf { return recv.Slice(j*per, per) }), nil
}

// IneighborAlltoall starts a nonblocking neighborhood alltoall as a
// schedule on the asynchronous progress engine (mpi.Sched). send and
// recv must stay untouched until Wait.
func IneighborAlltoall(c *mpi.Comm, send, recv mpi.Buf, per int) (*mpi.Sched, error) {
	in, out, err := neighborhoodOf(c, "ineighbor alltoall")
	if err != nil {
		return nil, err
	}
	if err := checkNeighborArgs(in, out, send, recv, per, false); err != nil {
		return nil, err
	}
	return ineighborSched(c, in, out,
		func(i int) mpi.Buf { return send.Slice(i*per, per) },
		func(j int) mpi.Buf { return recv.Slice(j*per, per) }), nil
}
