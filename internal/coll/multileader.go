package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// MultiLeaderHier implements the multi-leader allgather of Kandalla et
// al. [14], the related-work design the paper positions itself against:
// instead of funneling a node's traffic through one leader, each node's
// ranks split into L contiguous groups, each with its own leader; the L
// disjoint bridge communicators exchange concurrently, spreading the
// aggregation and broadcast load over L paths.
//
// It exists as an ablation baseline (see cmd/ablations): the paper's
// single-copy hybrid scheme removes the aggregation/broadcast phases
// altogether, while multi-leader only parallelizes them. Uniform node
// population and SMP placement are required (it is a regular-cluster
// technique).
type MultiLeaderHier struct {
	comm    *mpi.Comm
	node    *mpi.Comm // all ranks of my physical node
	group   *mpi.Comm // my leader group within the node
	bridge  *mpi.Comm // group-g leaders across nodes (nil on children)
	leaders *mpi.Comm // this node's L group leaders (nil on children)

	nLeaders int
	nodes    int
	ppn      int
	myNode   int
	myGroup  int
}

// NewMultiLeaderHier builds the structure with nLeaders groups per node
// (clamped to the node size). The node shape is discovered through the
// composer's plan-published geometry — the same helper Hier and the
// hybrid context build on — rather than a bespoke exchange.
func NewMultiLeaderHier(c *mpi.Comm, nLeaders int) (*MultiLeaderHier, error) {
	if c == nil {
		return nil, fmt.Errorf("coll: NewMultiLeaderHier on nil communicator")
	}
	if nLeaders < 1 {
		return nil, fmt.Errorf("coll: need at least one leader, got %d", nLeaders)
	}
	comp, err := NewComposerNamed(c, "node")
	if err != nil {
		return nil, err
	}
	node := comp.Tier(0)

	// Validate identically on all ranks (every rank holds the same
	// published shape, so every rank fails the same way).
	if !uniform(comp.GroupSizes(0)) {
		return nil, fmt.Errorf("coll: multi-leader hierarchy needs uniform node population")
	}
	if !comp.SMP() {
		return nil, fmt.Errorf("coll: multi-leader hierarchy needs SMP-style placement")
	}
	ppn := node.Size()

	L := nLeaders
	if L > ppn {
		L = ppn
	}
	myGroup := groupOf(node.Rank(), ppn, L)
	group, err := node.Split(myGroup, node.Rank())
	if err != nil {
		return nil, err
	}
	bridgeColor := mpi.Undefined
	if group.Rank() == 0 {
		bridgeColor = myGroup
	}
	bridge, err := c.Split(bridgeColor, c.Rank())
	if err != nil {
		return nil, err
	}
	leadersColor := mpi.Undefined
	if group.Rank() == 0 {
		leadersColor = 0
	}
	leaders, err := node.Split(leadersColor, node.Rank())
	if err != nil {
		return nil, err
	}

	return &MultiLeaderHier{
		comm:     c,
		node:     node,
		group:    group,
		bridge:   bridge,
		leaders:  leaders,
		nLeaders: L,
		nodes:    comp.Groups(0),
		ppn:      ppn,
		myNode:   comp.MyGroup(0),
		myGroup:  myGroup,
	}, nil
}

// groupOf maps a local rank to its leader-group index under the
// contiguous chunk split.
func groupOf(local, nodeSize, groups int) int {
	base := nodeSize / groups
	extra := nodeSize % groups
	cut := extra * (base + 1)
	if local < cut {
		return local / (base + 1)
	}
	return extra + (local-cut)/base
}

// groupBounds returns the local-rank range of group g.
func groupBounds(nodeSize, groups, g int) (lo, hi int) {
	base := nodeSize / groups
	extra := nodeSize % groups
	lo = g*base + min(g, extra)
	hi = lo + base
	if g < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Leaders returns the number of leader groups per node.
func (m *MultiLeaderHier) Leaders() int { return m.nLeaders }

// Allgather runs the multi-leader allgather:
//  1. each group gathers its members' blocks at its group leader
//     (L concurrent gathers per node),
//  2. each of the L bridge communicators exchanges its group's slice
//     of every node concurrently,
//  3. the node's L leaders recombine so each holds the full result,
//  4. each leader broadcasts the result to its group.
func (m *MultiLeaderHier) Allgather(send, recv mpi.Buf, per int) error {
	if err := checkAllgatherArgs(m.comm, send, recv, per); err != nil {
		return err
	}
	total := m.nodes * m.ppn * per

	// Phase 1: group gather, placed at final offsets.
	gLo, gHi := groupBounds(m.ppn, m.nLeaders, m.myGroup)
	groupOff := (m.myNode*m.ppn + gLo) * per
	if err := GatherLinear(m.group, send.Slice(0, per), recv.Slice(groupOff, (gHi-gLo)*per), per, 0); err != nil {
		return fmt.Errorf("coll: multi-leader gather phase: %w", err)
	}

	// Phase 2: concurrent bridge exchanges over strided slices.
	if m.bridge != nil && m.bridge.Size() > 1 {
		counts := make([]int, m.bridge.Size())
		displs := make([]int, m.bridge.Size())
		for n := 0; n < m.nodes; n++ {
			counts[n] = (gHi - gLo) * per
			displs[n] = (n*m.ppn + gLo) * per
		}
		if err := AllgathervExplicit(m.bridge, recv, counts, displs); err != nil {
			return fmt.Errorf("coll: multi-leader bridge phase: %w", err)
		}
	}

	// Phase 3: leaders recombine their group stripes, one exchange
	// per node block so slices stay exact.
	if m.leaders != nil && m.leaders.Size() > 1 {
		for n := 0; n < m.nodes; n++ {
			cc := make([]int, m.leaders.Size())
			dd := make([]int, m.leaders.Size())
			for g := 0; g < m.leaders.Size(); g++ {
				lo, hi := groupBounds(m.ppn, m.nLeaders, g)
				cc[g] = (hi - lo) * per
				dd[g] = (n*m.ppn + lo) * per
			}
			if err := AllgathervExplicit(m.leaders, recv, cc, dd); err != nil {
				return fmt.Errorf("coll: multi-leader recombine node %d: %w", n, err)
			}
		}
	}

	// Phase 4: leaders fan out the full result within their groups.
	if err := BcastBinomial(m.group, recv.Slice(0, total), 0); err != nil {
		return fmt.Errorf("coll: multi-leader bcast phase: %w", err)
	}
	return nil
}
