package coll

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			const elems = 4
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				v := make([]float64, elems)
				for i := range v {
					v[i] = float64(p.Rank() + 1 + i)
				}
				recv := mpi.Bytes(make([]byte, 8*elems))
				if err := Scan(c, mpi.FromFloat64s(v), recv, elems, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := 0.0
					for r := 0; r <= p.Rank(); r++ {
						want += float64(r + 1 + i)
					}
					if got := recv.Float64At(i); got != want {
						t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
						return nil
					}
				}
				return nil
			})
		})
	}
}

func TestExscan(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				send := mpi.FromFloat64s([]float64{float64(p.Rank() + 1)})
				recv := mpi.FromFloat64s([]float64{-99})
				if err := Exscan(c, send, recv, 1, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
				if p.Rank() == 0 {
					// Undefined on rank 0: must be untouched.
					if recv.Float64At(0) != -99 {
						t.Errorf("rank 0 buffer touched: %v", recv.Float64At(0))
					}
					return nil
				}
				want := 0.0
				for r := 0; r < p.Rank(); r++ {
					want += float64(r + 1)
				}
				if got := recv.Float64At(0); got != want {
					t.Errorf("rank %d = %v, want %v", p.Rank(), got, want)
				}
				return nil
			})
		})
	}
}

func TestScanMaxOp(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{6}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		// Values zig-zag so the running max is interesting.
		val := float64((p.Rank() * 7) % 5)
		recv := mpi.Bytes(make([]byte, 8))
		if err := Scan(c, mpi.FromFloat64s([]float64{val}), recv, 1, mpi.Float64, mpi.OpMax); err != nil {
			return err
		}
		want := 0.0
		for r := 0; r <= p.Rank(); r++ {
			if v := float64((r * 7) % 5); v > want {
				want = v
			}
		}
		if got := recv.Float64At(0); got != want {
			t.Errorf("rank %d max = %v, want %v", p.Rank(), got, want)
		}
		return nil
	})
}

func TestReduceScatterBlock(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			const elems = 3
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				// Block b element i of rank r = r*100 + b*10 + i.
				v := make([]float64, elems*n)
				for b := 0; b < n; b++ {
					for i := 0; i < elems; i++ {
						v[b*elems+i] = float64(p.Rank()*100 + b*10 + i)
					}
				}
				recv := mpi.Bytes(make([]byte, 8*elems))
				if err := ReduceScatterBlock(c, mpi.FromFloat64s(v), recv, elems, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := 0.0
					for r := 0; r < n; r++ {
						want += float64(r*100 + p.Rank()*10 + i)
					}
					if got := recv.Float64At(i); got != want {
						t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
						return nil
					}
				}
				return nil
			})
		})
	}
}

func TestReduceScatterValidation(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		if err := ReduceScatterBlock(c, mpi.Sized(8), mpi.Sized(8), 1, mpi.Float64, mpi.OpSum); err == nil {
			t.Error("short send buffer accepted")
		}
		if err := ReduceScatterBlock(c, mpi.Sized(16), mpi.Sized(4), 1, mpi.Float64, mpi.OpSum); err == nil {
			t.Error("short recv buffer accepted")
		}
		return nil
	})
}

func TestAllgatherNeighbor(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 10} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			const elems = 5
			runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
				c := p.CommWorld()
				recv := mpi.Bytes(make([]byte, 8*elems*n))
				if err := AllgatherNeighbor(c, fill(p.Rank(), elems), recv, 8*elems); err != nil {
					return err
				}
				checkGathered(t, "neighbor", recv, n, elems)
				return nil
			})
		})
	}
}

func TestAllgatherNeighborRejectsOdd(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{3}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		if err := AllgatherNeighbor(c, fill(p.Rank(), 1), mpi.Sized(24), 8); err == nil {
			t.Error("odd size accepted")
		}
		return nil
	})
}

func TestMultiLeaderAllgather(t *testing.T) {
	for _, tc := range []struct {
		shape   []int
		leaders int
	}{
		{[]int{4, 4}, 1},
		{[]int{4, 4}, 2},
		{[]int{6, 6}, 3},
		{[]int{6, 6, 6}, 2},
		{[]int{8}, 4},
		{[]int{4, 4}, 99}, // clamped to node size
	} {
		t.Run(fmt.Sprintf("%v/L%d", tc.shape, tc.leaders), func(t *testing.T) {
			n := 0
			for _, s := range tc.shape {
				n += s
			}
			const elems = 7
			runWorld(t, sim.Laptop(), tc.shape, func(p *mpi.Proc) error {
				m, err := NewMultiLeaderHier(p.CommWorld(), tc.leaders)
				if err != nil {
					return err
				}
				recv := mpi.Bytes(make([]byte, 8*elems*n))
				if err := m.Allgather(fill(p.Rank(), elems), recv, 8*elems); err != nil {
					return err
				}
				checkGathered(t, "multileader", recv, n, elems)
				return nil
			})
		})
	}
}

func TestMultiLeaderRejects(t *testing.T) {
	// Irregular node population is rejected.
	runWorld(t, sim.Laptop(), []int{4, 2}, func(p *mpi.Proc) error {
		if _, err := NewMultiLeaderHier(p.CommWorld(), 2); err == nil {
			t.Error("irregular population accepted")
		}
		return nil
	})
	runWorld(t, sim.Laptop(), []int{4}, func(p *mpi.Proc) error {
		if _, err := NewMultiLeaderHier(p.CommWorld(), 0); err == nil {
			t.Error("zero leaders accepted")
		}
		return nil
	})
}

func TestGroupBoundsPartition(t *testing.T) {
	for _, tc := range []struct{ size, groups int }{{24, 4}, {7, 3}, {6, 6}, {10, 4}} {
		covered := 0
		for g := 0; g < tc.groups; g++ {
			lo, hi := groupBounds(tc.size, tc.groups, g)
			covered += hi - lo
			for l := lo; l < hi; l++ {
				if groupOf(l, tc.size, tc.groups) != g {
					t.Errorf("groupOf(%d, %d, %d) != %d", l, tc.size, tc.groups, g)
				}
			}
		}
		if covered != tc.size {
			t.Errorf("groups of %d/%d cover %d", tc.size, tc.groups, covered)
		}
	}
}

func TestMultiLeaderFasterThanSingleForBigNodes(t *testing.T) {
	// The [14] claim: extra leaders reduce the serialization at one
	// leader for large aggregate payloads.
	shape := []int{24, 24, 24, 24}
	per := 8 * 2048
	lat := func(leaders int) sim.Time {
		return latencyOf(t, sim.HazelHenCray(), shape, func(p *mpi.Proc) error {
			m, err := NewMultiLeaderHier(p.CommWorld(), leaders)
			if err != nil {
				return err
			}
			return m.Allgather(mpi.Sized(per), mpi.Sized(per*p.Size()), per)
		})
	}
	one := lat(1)
	four := lat(4)
	if four >= one {
		t.Errorf("4 leaders (%v) should beat 1 leader (%v) on 24-rank nodes", four, one)
	}
}
