package coll_test

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// A halo exchange on a periodic process grid: every rank sends one
// block to each ring neighbor with NeighborAlltoall and prints what
// arrived. The selection engine routes the call like any collective
// (the paired per-dimension exchange on grids by default).
func ExampleNeighborAlltoall() {
	topo := sim.MustUniform(1, 4)
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		panic(err)
	}
	got := make([][2]float64, topo.Size())
	err = w.Run(func(p *mpi.Proc) error {
		ring, err := p.CommWorld().CartCreate([]int{p.Size()}, []bool{true}, false)
		if err != nil {
			return err
		}
		// Send block 0 to the left neighbor, block 1 to the right.
		send := mpi.FromFloat64s([]float64{float64(p.Rank()), float64(p.Rank())})
		recv := mpi.Bytes(make([]byte, 16))
		if err := coll.NeighborAlltoall(ring, send, recv, 8); err != nil {
			return err
		}
		got[p.Rank()] = [2]float64{recv.Float64At(0), recv.Float64At(1)}
		return nil
	})
	if err != nil {
		panic(err)
	}
	for r, g := range got {
		fmt.Printf("rank %d got left=%g right=%g\n", r, g[0], g[1])
	}
	// Output:
	// rank 0 got left=3 right=1
	// rank 1 got left=0 right=2
	// rank 2 got left=1 right=3
	// rank 3 got left=2 right=0
}

// Tuning values configure the selection engine; the textual grammar
// the REPRO_COLL_TUNING environment variable accepts is parsed by
// internal/spec (see TUNING.md and spec.ParseTuning).
func ExampleWithTuning() {
	tun := coll.Tuning{Policy: coll.PolicyCost,
		Force: map[coll.Collective]string{coll.CollAllreduce: "rabenseifner"}}
	fmt.Println(tun.Policy, tun.Force[coll.CollAllreduce])
	// Output:
	// cost rabenseifner
}
