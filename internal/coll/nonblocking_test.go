package coll

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestIallgatherCorrect(t *testing.T) {
	for _, shape := range [][]int{{4}, {2, 2}, {3, 3}, {5}} {
		n := 0
		for _, s := range shape {
			n += s
		}
		for _, elems := range []int{0, 13} {
			t.Run(fmt.Sprintf("%v/e%d", shape, elems), func(t *testing.T) {
				runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
					c := p.CommWorld()
					recv := mpi.Bytes(make([]byte, 8*elems*n))
					s, err := Iallgather(c, fill(p.Rank(), elems), recv, 8*elems)
					if err != nil {
						return err
					}
					if err := s.Wait(); err != nil {
						return err
					}
					checkGathered(t, "iallgather", recv, n, elems)
					return nil
				})
			})
		}
	}
}

func TestIallreduceCorrect(t *testing.T) {
	for _, shape := range [][]int{{4}, {3, 3}, {7}, {2, 2, 2}} {
		n := 0
		for _, s := range shape {
			n += s
		}
		for _, elems := range []int{0, 9} {
			t.Run(fmt.Sprintf("%v/e%d", shape, elems), func(t *testing.T) {
				runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
					c := p.CommWorld()
					v := make([]float64, elems)
					for i := range v {
						v[i] = float64(p.Rank() + i)
					}
					recv := mpi.Bytes(make([]byte, 8*elems))
					s, err := Iallreduce(c, mpi.FromFloat64s(v), recv, elems, mpi.Float64, mpi.OpSum)
					if err != nil {
						return err
					}
					if err := s.Wait(); err != nil {
						return err
					}
					for i := 0; i < elems; i++ {
						want := float64(n*i + n*(n-1)/2)
						if got := recv.Float64At(i); got != want {
							t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
							return nil
						}
					}
					return nil
				})
			})
		}
	}
}

func TestIbcastCorrect(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		for _, root := range []int{0, n - 1} {
			t.Run(fmt.Sprintf("n%d/root%d", n, root), func(t *testing.T) {
				const elems = 21
				runWorld(t, sim.Laptop(), []int{n}, func(p *mpi.Proc) error {
					c := p.CommWorld()
					var buf mpi.Buf
					if p.Rank() == root {
						buf = fill(root, elems)
					} else {
						buf = mpi.Bytes(make([]byte, 8*elems))
					}
					s, err := Ibcast(c, buf, root)
					if err != nil {
						return err
					}
					if err := s.Wait(); err != nil {
						return err
					}
					for i := 0; i < elems; i++ {
						want := float64(root*1_000_000 + i)
						if got := buf.Float64At(i); got != want {
							t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
							return nil
						}
					}
					return nil
				})
			})
		}
	}
}

func TestIbarrierSynchronizes(t *testing.T) {
	for _, shape := range [][]int{{4}, {3, 3}, {1, 1, 1, 1, 1}} {
		n := 0
		for _, s := range shape {
			n += s
		}
		t.Run(fmt.Sprint(shape), func(t *testing.T) {
			w := runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
				p.Elapse(sim.Time(p.Rank()) * sim.Millisecond)
				s, err := Ibarrier(p.CommWorld())
				if err != nil {
					return err
				}
				return s.Wait()
			})
			for r := 0; r < n; r++ {
				if w.Proc(r).Clock() < sim.Time(n-1)*sim.Millisecond {
					t.Errorf("rank %d left ibarrier at %v, before the slowest entered", r, w.Proc(r).Clock())
				}
			}
		})
	}
}

// TestIallreduceOverlap is the point of nonblocking collectives: local
// compute between Start and Wait runs concurrently with the schedule,
// so the makespan is max(compute, collective), not their sum.
func TestIallreduceOverlap(t *testing.T) {
	model := sim.HazelHenCray()
	shape := []int{1, 1, 1, 1} // all-net, so the collective is slow
	const elems = 1 << 20      // 8 MiB vector: the collective takes ~2 ms
	compute := 500 * sim.Microsecond

	// Same algorithm on both sides (the schedule compiles recursive
	// doubling), so the difference is purely the overlap.
	blocking := latencyOf(t, model, shape, func(p *mpi.Proc) error {
		c := p.CommWorld()
		recv := mpi.Sized(8 * elems)
		if err := AllreduceRecDbl(c, mpi.Sized(8*elems), recv, elems, mpi.Float64, mpi.OpSum); err != nil {
			return err
		}
		p.Elapse(compute)
		return nil
	})
	overlapped := latencyOf(t, model, shape, func(p *mpi.Proc) error {
		c := p.CommWorld()
		recv := mpi.Sized(8 * elems)
		s, err := Iallreduce(c, mpi.Sized(8*elems), recv, elems, mpi.Float64, mpi.OpSum)
		if err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		p.Elapse(compute) // independent work, overlapped
		return s.Wait()
	})
	if overlapped >= blocking {
		t.Errorf("overlap bought nothing: nonblocking %v vs blocking %v", overlapped, blocking)
	}
	// Overlap can save at most min(compute, collective); here compute
	// is the smaller phase and must be mostly hidden.
	if blocking-overlapped < compute/2 {
		t.Errorf("overlap saved only %v of %v compute", blocking-overlapped, compute)
	}
}

// TestSchedTestSemantics polls with Test until completion and checks
// the virtual outcome is identical to a Wait-driven run — when (in
// host time) progress is observed must not move any virtual clock.
func TestSchedTestSemantics(t *testing.T) {
	model := sim.Laptop()
	shape := []int{3, 3}
	const elems = 257

	run := func(poll bool) sim.Time {
		t.Helper()
		return latencyOf(t, model, shape, func(p *mpi.Proc) error {
			c := p.CommWorld()
			recv := mpi.Sized(8 * elems * 6)
			s, err := Iallgather(c, mpi.Sized(8*elems), recv, 8*elems)
			if err != nil {
				return err
			}
			if poll {
				for i := 0; ; i++ {
					done, err := s.Test()
					if err != nil {
						return err
					}
					if done {
						break
					}
					if i%100 == 99 {
						time.Sleep(50 * time.Microsecond)
					}
				}
				if !s.Done() {
					t.Error("Test reported done but Done() is false")
				}
				// Test and Wait on a completed schedule stay done.
				if done, err := s.Test(); err != nil || !done {
					t.Errorf("repeat Test = %v, %v", done, err)
				}
				return s.Wait()
			}
			return s.Wait()
		})
	}
	waited := run(false)
	polled := run(true)
	if waited != polled {
		t.Errorf("virtual makespan differs by progression style: Wait %v vs Test %v", waited, polled)
	}
}

// TestSchedBackToBack runs two overlapping schedules on one
// communicator; the per-instance tag windows must keep their traffic
// apart.
func TestSchedBackToBack(t *testing.T) {
	const elems = 5
	runWorld(t, sim.Laptop(), []int{4}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		r1 := mpi.Bytes(make([]byte, 8*elems*4))
		r2 := mpi.Bytes(make([]byte, 8*elems))
		s1, err := Iallgather(c, fill(p.Rank(), elems), r1, 8*elems)
		if err != nil {
			return err
		}
		v := make([]float64, elems)
		for i := range v {
			v[i] = float64(p.Rank())
		}
		s2, err := Iallreduce(c, mpi.FromFloat64s(v), r2, elems, mpi.Float64, mpi.OpSum)
		if err != nil {
			return err
		}
		if err := s2.Wait(); err != nil {
			return err
		}
		if err := s1.Wait(); err != nil {
			return err
		}
		checkGathered(t, "sched1", r1, 4, elems)
		for i := 0; i < elems; i++ {
			if got := r2.Float64At(i); got != 6 { // 0+1+2+3
				t.Errorf("sched2 elem %d = %v, want 6", i, got)
				return nil
			}
		}
		return nil
	})
}

func TestRequestTest(t *testing.T) {
	runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			req, err := c.Isend(mpi.FromFloat64s([]float64{42}), 1, 7)
			if err != nil {
				return err
			}
			for {
				done, _, err := req.Test()
				if err != nil {
					return err
				}
				if done {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
			// A completed request stays completed.
			if done, _, err := req.Test(); !done || err != nil {
				t.Errorf("repeat Test = %v, %v", done, err)
			}
			return nil
		}
		buf := mpi.Bytes(make([]byte, 8))
		req, err := c.Irecv(buf, 0, 7)
		if err != nil {
			return err
		}
		for {
			done, st, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Bytes != 8 || buf.Float64At(0) != 42 {
					t.Errorf("Test status %+v payload %v", st, buf.Float64At(0))
				}
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
		return nil
	})
}
