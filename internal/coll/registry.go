package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// This file is the collective selection engine: a registry enumerating
// every algorithm the package implements per collective, each with an
// applicability predicate and an alpha-beta-gamma cost estimate, plus
// the three selection policies (the profile's static cutoff table, the
// cost-model minimizer, and the measurement cache with its cost
// fallback) that every entry point routes through.

// Collective identifies one collective operation family in the
// registry and in Tuning.Force keys.
type Collective int

// The collective families the registry enumerates, in the order the
// engine registers them.
const (
	CollAllgather Collective = iota
	CollAllgatherv
	CollAllreduce
	CollReduce
	CollBcast
	CollBarrier
	CollAlltoall
	CollGather
	CollScan
	CollNeighborAllgather
	CollNeighborAlltoall
	CollNeighborAlltoallv
	numCollectives
)

// String names the collective as accepted by ParseTuning.
func (cl Collective) String() string {
	switch cl {
	case CollAllgather:
		return "allgather"
	case CollAllgatherv:
		return "allgatherv"
	case CollAllreduce:
		return "allreduce"
	case CollReduce:
		return "reduce"
	case CollBcast:
		return "bcast"
	case CollBarrier:
		return "barrier"
	case CollAlltoall:
		return "alltoall"
	case CollGather:
		return "gather"
	case CollScan:
		return "scan"
	case CollNeighborAllgather:
		return "neighborallgather"
	case CollNeighborAlltoall:
		return "neighboralltoall"
	case CollNeighborAlltoallv:
		return "neighboralltoallv"
	default:
		return fmt.Sprintf("Collective(%d)", int(cl))
	}
}

// ParseCollective is the inverse of String.
func ParseCollective(s string) (Collective, error) {
	for cl := Collective(0); cl < numCollectives; cl++ {
		if cl.String() == s {
			return cl, nil
		}
	}
	return 0, fmt.Errorf("coll: unknown collective %q", s)
}

// Env describes one collective invocation for selection purposes: the
// communicator size, the payload, and which hop class dominates the
// exchange (shared memory on single-node communicators, the network
// otherwise). Bytes is the per-rank block for Allgather/Alltoall and
// the total payload for the other collectives; Count is the element
// count of the reducing collectives (their gamma term).
type Env struct {
	Size  int
	Bytes int
	Count int
	Model *sim.CostModel
	Hop   sim.HopClass

	// Degree and Cart describe the neighborhood of the Neighbor*
	// collectives: the larger of the non-null in/out neighbor counts,
	// and whether the communicator carries a Cartesian topology (the
	// pairwise per-dimension exchange needs the grid's paired
	// direction structure). Zero-valued for the global collectives.
	Degree int
	Cart   bool
}

// envFor derives the selection environment of a call on a communicator.
// The hop class is the communicator's locality: the class of the
// innermost topology level containing every member (on a node-only
// topology, exactly the historical single-node-shm / otherwise-net
// split). This is what moves crossovers independently per level: a
// socket-tier communicator prices its candidates with socket
// alpha/beta, the bridge with network alpha/beta.
func envFor(c *mpi.Comm, bytes, count int) Env {
	return Env{Size: c.Size(), Bytes: bytes, Count: count, Model: c.Proc().Model(), Hop: c.HopClass()}
}

// Runner signatures per collective family.
type (
	allgatherFn        = func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error
	allgatherInPlaceFn = func(*mpi.Comm, mpi.Buf, int) error
	allgathervFn       = func(*mpi.Comm, mpi.Buf, []int) error
	allreduceFn        = func(*mpi.Comm, mpi.Buf, mpi.Buf, int, mpi.Datatype, mpi.Op) error
	reduceFn           = func(*mpi.Comm, mpi.Buf, mpi.Buf, int, mpi.Datatype, mpi.Op, int) error
	bcastFn            = func(*mpi.Comm, mpi.Buf, int) error
	barrierFn          = func(*mpi.Comm) error
	alltoallFn         = func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error
	gatherFn           = func(*mpi.Comm, mpi.Buf, mpi.Buf, int, int) error
	scanFn             = func(*mpi.Comm, mpi.Buf, mpi.Buf, int, mpi.Datatype, mpi.Op) error
	neighborFn         = func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error
	neighborVFn        = func(*mpi.Comm, mpi.Buf, []int, mpi.Buf, []int) error
)

// entry is one registered algorithm.
type entry struct {
	name    string
	applies func(Env) bool     // nil = always applicable
	cost    func(Env) sim.Time // alpha-beta-gamma estimate (PolicyCost)

	run        any // full runner (signature per family), nil if in-place only
	runInPlace any // in-place runner, nil when unavailable

	// foldable marks algorithms proven safe under the mpi package's
	// rank-symmetry folding (mpi.WithFold) when the communicator size
	// and the fold unit are both powers of two: every rank executes the
	// same step sequence with rank-translation-consistent partners
	// (r -> r±s mod n, or r -> r^mask with power-of-two operands), and
	// each step keeps at most one crossed send outstanding (the
	// Sendrecv discipline), so FIFO matching pairs equivalence classes
	// correctly. Algorithms with rank-dependent schedules (binomial
	// trees rooted at one rank, Bruck's truncated last step paired with
	// rotation copies, the parity-split neighbor exchange,
	// Rabenseifner's halving buffers) stay unmarked even where a deeper
	// analysis might admit them. See internal/mpi/fold.go.
	foldable bool
}

// Cost-term helpers. The estimates intentionally mirror the textbook
// LogGP expressions the algorithm comments cite, not the simulator's
// exact event timeline: they only need to rank algorithms the way the
// real formulas do, so crossovers land where the literature puts them.
func alphaT(e Env) sim.Time { return e.Model.Alpha(e.Hop) }

func betaT(e Env, n int) sim.Time {
	if n < 0 {
		n = 0
	}
	return sim.Time(int64(n) * e.Model.BetaPsPerByte(e.Hop))
}

func gammaT(e Env, elems int) sim.Time { return e.Model.ComputeCost(float64(elems)) }

func timesT(k int, t sim.Time) sim.Time { return sim.Time(int64(k)) * t }

// bisection is the contention multiplier the estimates charge on the
// bandwidth term of doubling-distance algorithms (recursive doubling,
// Bruck): their later steps move half the result across the network
// bisection, where links are shared, while ring and neighbor exchange
// stay near-neighbor at full per-link bandwidth. This is the standard
// reason libraries cross over to ring for large totals; without it the
// logarithmic algorithms would win at every size on paper.
const bisection = 2

// registry holds every algorithm in registration order (the
// deterministic tie-break of PolicyCost).
var registry = [numCollectives][]entry{
	CollAllgather: {
		{
			name:    "recdbl",
			applies: func(e Env) bool { return isPow2(e.Size) },
			cost: func(e Env) sim.Time {
				return timesT(sim.Log2Ceil(e.Size), alphaT(e)) +
					timesT(bisection, betaT(e, (e.Size-1)*e.Bytes))
			},
			run:        allgatherFn(AllgatherRecDbl),
			runInPlace: allgatherInPlaceFn(allgatherRecDblInPlace),
			foldable:   true,
		},
		{
			name: "bruck",
			cost: func(e Env) sim.Time {
				return timesT(sim.Log2Ceil(e.Size), alphaT(e)) +
					timesT(bisection, betaT(e, (e.Size-1)*e.Bytes)) +
					e.Model.CopyCost(e.Size*e.Bytes, 1)
			},
			run: allgatherFn(AllgatherBruck),
		},
		{
			name: "ring",
			cost: func(e Env) sim.Time {
				return timesT(e.Size-1, alphaT(e)+betaT(e, e.Bytes))
			},
			run:        allgatherFn(AllgatherRing),
			runInPlace: allgatherInPlaceFn(allgatherRingInPlace),
			foldable:   true,
		},
		{
			name:    "neighbor",
			applies: func(e Env) bool { return e.Size%2 == 0 },
			cost: func(e Env) sim.Time {
				// n/2 pairwise steps, each exchanging two blocks:
				// half the ring's latency, one extra block of
				// bandwidth.
				return timesT(e.Size/2, alphaT(e)) + betaT(e, e.Size*e.Bytes)
			},
			run: allgatherFn(AllgatherNeighbor),
		},
	},
	CollAllgatherv: {
		{
			name:    "recdbl",
			applies: func(e Env) bool { return isPow2(e.Size) },
			cost: func(e Env) sim.Time {
				steps := sim.Log2Ceil(e.Size)
				return timesT(steps, alphaT(e)+e.Model.Tuning.AllgathervStepPenalty) +
					timesT(bisection, betaT(e, e.Bytes-e.Bytes/max(e.Size, 1)))
			},
			runInPlace: allgathervFn(allgathervRecDbl),
		},
		{
			name: "ring",
			cost: func(e Env) sim.Time {
				return timesT(e.Size-1, alphaT(e)+e.Model.Tuning.AllgathervStepPenalty) +
					betaT(e, e.Bytes-e.Bytes/max(e.Size, 1))
			},
			runInPlace: allgathervFn(allgathervRing),
		},
	},
	CollAllreduce: {
		{
			name: "recdbl",
			cost: func(e Env) sim.Time {
				steps := sim.Log2Ceil(e.Size)
				return timesT(steps, alphaT(e)+betaT(e, e.Bytes)) + gammaT(e, e.Count*steps)
			},
			run:      allreduceFn(AllreduceRecDbl),
			foldable: true,
		},
		{
			name: "rabenseifner",
			applies: func(e Env) bool {
				pof2, _ := foldCore(e.Size)
				return e.Count >= pof2
			},
			cost: func(e Env) sim.Time {
				n := e.Size
				moved := 2 * e.Bytes * (n - 1) / max(n, 1)
				return timesT(2*sim.Log2Ceil(n), alphaT(e)) + betaT(e, moved) +
					gammaT(e, e.Count*(n-1)/max(n, 1))
			},
			run: allreduceFn(AllreduceRabenseifner),
		},
	},
	CollReduce: {
		{
			name: "binomial",
			cost: func(e Env) sim.Time {
				steps := sim.Log2Ceil(e.Size)
				return timesT(steps, alphaT(e)+betaT(e, e.Bytes)) + gammaT(e, e.Count*steps)
			},
			run: reduceFn(ReduceBinomial),
		},
	},
	CollBcast: {
		{
			name: "binomial",
			cost: func(e Env) sim.Time {
				return timesT(sim.Log2Ceil(e.Size), alphaT(e)+betaT(e, e.Bytes))
			},
			run: bcastFn(BcastBinomial),
		},
		{
			name: "scag",
			cost: func(e Env) sim.Time {
				n := e.Size
				return timesT(sim.Log2Ceil(n)+n-1, alphaT(e)) +
					betaT(e, 2*e.Bytes*(n-1)/max(n, 1))
			},
			run: bcastFn(BcastScatterAllgather),
		},
		{
			name: "pipelined",
			cost: func(e Env) sim.Time {
				chunk := e.Model.Tuning.BcastChunk
				if chunk <= 0 {
					chunk = 64 << 10
				}
				chunks := (e.Bytes + chunk - 1) / chunk
				if chunks < 1 {
					chunks = 1
				}
				return timesT(e.Size-1+chunks, alphaT(e)+betaT(e, chunk))
			},
			run: bcastFn(func(c *mpi.Comm, buf mpi.Buf, root int) error {
				return BcastPipelined(c, buf, root, c.Proc().Model().Tuning.BcastChunk)
			}),
		},
	},
	CollBarrier: {
		{
			name: "dissemination",
			cost: func(e Env) sim.Time {
				rounds := sim.Log2Ceil(e.Size)
				if e.Hop.SharedMemory() {
					// The native barrier's single-node fast path:
					// flag-based rounds of two cache-line operations.
					// Socket/numa-tier communicators take it too.
					return timesT(rounds, 2*e.Model.MemAlpha)
				}
				return timesT(rounds, alphaT(e))
			},
			run:      barrierFn(func(c *mpi.Comm) error { return c.Barrier() }),
			foldable: true,
		},
		{
			name: "central",
			cost: func(e Env) sim.Time {
				return timesT(2*(e.Size-1), alphaT(e))
			},
			run: barrierFn(BarrierCentral),
		},
	},
	CollAlltoall: {
		{
			name: "pairwise",
			cost: func(e Env) sim.Time {
				return timesT(e.Size-1, alphaT(e)+betaT(e, e.Bytes))
			},
			run:      alltoallFn(AlltoallPairwise),
			foldable: true,
		},
	},
	CollGather: {
		{
			name: "binomial",
			cost: func(e Env) sim.Time {
				// log n rounds; the root-adjacent link still moves
				// (n-1) blocks, and the root pays the unrotate copy.
				return timesT(sim.Log2Ceil(e.Size), alphaT(e)) +
					betaT(e, (e.Size-1)*e.Bytes) +
					e.Model.CopyCost(e.Size*e.Bytes, 1)
			},
			run: gatherFn(GatherBinomial),
		},
		{
			name: "linear",
			cost: func(e Env) sim.Time {
				// Every child posts one message straight to the root:
				// n-1 latencies serialized at the root, no forwarding
				// copies — the intra-node winner.
				return timesT(e.Size-1, alphaT(e)) + betaT(e, (e.Size-1)*e.Bytes)
			},
			run: gatherFn(GatherLinear),
		},
	},
	CollNeighborAllgather: {
		{
			name:    "pairwise",
			applies: func(e Env) bool { return e.Cart },
			cost:    neighborPairwiseCost,
			run:     neighborFn(NeighborAllgatherPairwise),
		},
		{
			name: "linear",
			cost: neighborLinearCost,
			run:  neighborFn(NeighborAllgatherLinear),
		},
	},
	CollNeighborAlltoall: {
		{
			name:    "pairwise",
			applies: func(e Env) bool { return e.Cart },
			cost:    neighborPairwiseCost,
			run:     neighborFn(NeighborAlltoallPairwise),
		},
		{
			name: "linear",
			cost: neighborLinearCost,
			run:  neighborFn(NeighborAlltoallLinear),
		},
	},
	CollNeighborAlltoallv: {
		{
			name:    "pairwise",
			applies: func(e Env) bool { return e.Cart },
			cost:    neighborPairwiseCost,
			run:     neighborVFn(NeighborAlltoallvPairwise),
		},
		{
			name: "linear",
			cost: neighborLinearCost,
			run:  neighborVFn(NeighborAlltoallvLinear),
		},
	},
	CollScan: {
		{
			name: "recdbl",
			cost: func(e Env) sim.Time {
				steps := sim.Log2Ceil(e.Size)
				return timesT(steps, alphaT(e)+betaT(e, e.Bytes)) + gammaT(e, 2*e.Count*steps)
			},
			run: scanFn(ScanRecDbl),
		},
		{
			name: "linear",
			cost: func(e Env) sim.Time {
				// The last rank's critical path: the prefix trickles
				// through every predecessor.
				return timesT(e.Size-1, alphaT(e)+betaT(e, e.Bytes)) + gammaT(e, e.Count*(e.Size-1))
			},
			run: scanFn(ScanLinear),
		},
	},
}

// tableChoice is the PolicyTable decision function: the historical
// hard-wired cutoffs of the machine profile's tuning table, collected
// in one place. It must keep returning exactly what the pre-registry
// entry points chose — the determinism golden tests pin that.
func tableChoice(cl Collective, e Env, inPlace bool) string {
	tun := &e.Model.Tuning
	switch cl {
	case CollAllgather:
		if e.Size*e.Bytes <= tun.AllgatherShortMax {
			if isPow2(e.Size) {
				return "recdbl"
			}
			if !inPlace {
				return "bruck"
			}
		}
		return "ring"
	case CollAllgatherv:
		if e.Bytes <= tun.AllgathervShortMax && isPow2(e.Size) {
			return "recdbl"
		}
		return "ring"
	case CollAllreduce:
		if e.Bytes <= tun.AllreduceShortMax || e.Count < e.Size {
			return "recdbl"
		}
		return "rabenseifner"
	case CollReduce:
		return "binomial"
	case CollBcast:
		switch {
		case e.Bytes <= tun.BcastShortMax || e.Size <= 2:
			return "binomial"
		case e.Bytes >= tun.BcastPipelineMin:
			return "pipelined"
		default:
			return "scag"
		}
	case CollBarrier:
		return "dissemination"
	case CollAlltoall:
		return "pairwise"
	case CollGather:
		// The historical Gather entry point always ran the binomial
		// tree; the linear path was reached only by explicit callers.
		return "binomial"
	case CollScan:
		// The historical Scan was always recursive doubling.
		return "recdbl"
	case CollNeighborAllgather, CollNeighborAlltoall, CollNeighborAlltoallv:
		// On grids the paired per-dimension exchange mirrors the
		// hand-rolled halo pattern stencil codes use (and its virtual
		// timeline); irregular graphs take the posted-all path.
		if e.Cart {
			return "pairwise"
		}
		return "linear"
	}
	return ""
}

// available reports whether an entry can serve the call.
func (en *entry) available(e Env, inPlace bool) bool {
	if inPlace && en.runInPlace == nil {
		return false
	}
	if !inPlace && en.run == nil {
		return false
	}
	return en.applies == nil || en.applies(e)
}

func findEntry(cl Collective, name string) *entry {
	ents := registry[cl]
	for i := range ents {
		if ents[i].name == name {
			return &ents[i]
		}
	}
	return nil
}

// pick resolves the algorithm for one call: a forced override first
// (falling back to the policy when it cannot serve the call), then the
// configured policy. PolicyMeasured probes the tuning cache and falls
// through to the PolicyCost minimization on a miss (reporting the miss
// through OnMiss so a background tuner can measure the point), so a
// measured-policy call never blocks. In both minimizing policies ties
// break by registration order: the strict `<` comparison keeps the
// first-registered of equal-cost candidates, which is load-bearing for
// bit-identical reruns (TestCostPolicyTieBreaksByRegistrationOrder
// pins it).
func pick(cl Collective, e Env, tun Tuning, inPlace bool) (*entry, error) {
	if name := tun.Force[cl]; name != "" {
		if en := findEntry(cl, name); en != nil && en.available(e, inPlace) {
			return en, nil
		}
	}
	if tun.Policy == PolicyMeasured {
		if tun.Lookup != nil {
			if name, ok := tun.Lookup(cl, e); ok {
				if en := findEntry(cl, name); en != nil && en.available(e, inPlace) {
					return en, nil
				}
			} else if tun.OnMiss != nil {
				tun.OnMiss(cl, e)
			}
		}
		// Miss (or no cache attached): the cost prior answers now.
	}
	if tun.Policy == PolicyCost || tun.Policy == PolicyMeasured {
		var best *entry
		var bestCost sim.Time
		ents := registry[cl]
		for i := range ents {
			en := &ents[i]
			if !en.available(e, inPlace) {
				continue
			}
			if c := en.cost(e); best == nil || c < bestCost {
				best, bestCost = en, c
			}
		}
		if best == nil {
			return nil, fmt.Errorf("coll: no applicable %s algorithm for comm size %d", cl, e.Size)
		}
		return best, nil
	}
	name := tableChoice(cl, e, inPlace)
	en := findEntry(cl, name)
	if en == nil || !en.available(e, inPlace) {
		return nil, fmt.Errorf("coll: table policy chose unavailable %s algorithm %q", cl, name)
	}
	return en, nil
}

// Registered reports whether an algorithm name exists for a collective.
func Registered(cl Collective, name string) bool { return findEntry(cl, name) != nil }

// Available reports whether a registered algorithm can serve the
// described call (its runner for the requested form exists and its
// applicability predicate holds). The measured-policy tuner uses it to
// race only the candidates the engine could actually pick.
func Available(cl Collective, name string, e Env, inPlace bool) bool {
	en := findEntry(cl, name)
	return en != nil && en.available(e, inPlace)
}

// FoldSafe reports whether a registered algorithm carries the
// rank-symmetry metadata: it is known to execute a
// translation-class-consistent schedule (safe under mpi.WithFold) when
// the communicator size and the fold unit are both powers of two.
// Unknown names report false.
func FoldSafe(cl Collective, name string) bool {
	en := findEntry(cl, name)
	return en != nil && en.foldable
}

// Algorithms returns the registered algorithm names of a collective in
// registration order.
func Algorithms(cl Collective) []string {
	ents := registry[cl]
	names := make([]string, len(ents))
	for i := range ents {
		names[i] = ents[i].name
	}
	return names
}

// Choose returns the name of the algorithm the engine would run for
// the described call under the given tuning — the introspection hook
// the selection tests and the bench coll-sweep build on. Allgatherv
// only exists in in-place form, so it selects among in-place runners.
func Choose(cl Collective, e Env, tun Tuning) (string, error) {
	en, err := pick(cl, e, tun, cl == CollAllgatherv)
	if err != nil {
		return "", err
	}
	return en.name, nil
}

// Candidate is one registered algorithm's view of a hypothetical call.
type Candidate struct {
	Name       string
	Applicable bool
	Est        sim.Time
}

// Candidates prices every registered algorithm of a collective at the
// described call (inapplicable entries carry Est 0).
func Candidates(cl Collective, e Env) []Candidate {
	ents := registry[cl]
	out := make([]Candidate, len(ents))
	for i := range ents {
		en := &ents[i]
		out[i] = Candidate{Name: en.name, Applicable: en.applies == nil || en.applies(e)}
		if out[i].Applicable {
			out[i].Est = en.cost(e)
		}
	}
	return out
}
