package coll

import (
	"math/rand"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Property-based cross-checks: every algorithm of a family must produce
// the same bytes as its reference implementation across randomized
// communicator shapes and message sizes. These sweeps catch index
// arithmetic mistakes (wraparounds, subtree bounds) that fixed-size
// tests miss.

// randShape draws a topology with 1-4 nodes of 1-6 ranks.
func randShape(r *rand.Rand) []int {
	nodes := 1 + r.Intn(4)
	shape := make([]int, nodes)
	for i := range shape {
		shape[i] = 1 + r.Intn(6)
	}
	return shape
}

func totalOf(shape []int) int {
	t := 0
	for _, s := range shape {
		t += s
	}
	return t
}

func TestQuickAllgatherFamilyAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		shape := randShape(rng)
		n := totalOf(shape)
		per := 8 * (1 + rng.Intn(64))
		even := n%2 == 0
		pow2 := isPow2(n)
		runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
			c := p.CommWorld()
			send := fill(p.Rank(), per/8)
			ref := mpi.Bytes(make([]byte, per*n))
			if err := AllgatherRing(c, send, ref, per); err != nil {
				return err
			}
			check := func(name string, fn func() (mpi.Buf, error)) {
				got, err := fn()
				if err != nil {
					t.Errorf("trial %d %s (n=%d per=%d): %v", trial, name, n, per, err)
					return
				}
				for i := 0; i < per*n/8; i++ {
					if got.Float64At(i) != ref.Float64At(i) {
						t.Errorf("trial %d %s (n=%d per=%d): differs at %d", trial, name, n, per, i)
						return
					}
				}
			}
			check("bruck", func() (mpi.Buf, error) {
				out := mpi.Bytes(make([]byte, per*n))
				return out, AllgatherBruck(c, send, out, per)
			})
			if pow2 {
				check("recdbl", func() (mpi.Buf, error) {
					out := mpi.Bytes(make([]byte, per*n))
					return out, AllgatherRecDbl(c, send, out, per)
				})
			}
			if even {
				check("neighbor", func() (mpi.Buf, error) {
					out := mpi.Bytes(make([]byte, per*n))
					return out, AllgatherNeighbor(c, send, out, per)
				})
			}
			check("hier", func() (mpi.Buf, error) {
				h, err := NewHier(c)
				if err != nil {
					return mpi.Buf{}, err
				}
				out := mpi.Bytes(make([]byte, per*n))
				return out, h.Allgather(send, out, per)
			})
			check("auto", func() (mpi.Buf, error) {
				out := mpi.Bytes(make([]byte, per*n))
				return out, Allgather(c, send, out, per)
			})
			return nil
		})
	}
}

func TestQuickBcastFamilyAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		shape := randShape(rng)
		n := totalOf(shape)
		bytes := 8 * (1 + rng.Intn(256))
		root := rng.Intn(n)
		runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
			c := p.CommWorld()
			mk := func() mpi.Buf {
				if p.Rank() == root {
					return fill(root, bytes/8)
				}
				return mpi.Bytes(make([]byte, bytes))
			}
			// Ordered: every rank must run the collectives in the
			// same sequence (a map's iteration order differs per
			// goroutine and would deadlock the job).
			algos := []struct {
				name string
				fn   func(mpi.Buf) error
			}{
				{"binomial", func(b mpi.Buf) error { return BcastBinomial(c, b, root) }},
				{"scag", func(b mpi.Buf) error { return BcastScatterAllgather(c, b, root) }},
				{"pipeline", func(b mpi.Buf) error { return BcastPipelined(c, b, root, 64) }},
				{"auto", func(b mpi.Buf) error { return Bcast(c, b, root) }},
				{"hier", func(b mpi.Buf) error {
					h, err := NewHier(c)
					if err != nil {
						return err
					}
					return h.Bcast(b, root)
				}},
			}
			for _, algo := range algos {
				name, fn := algo.name, algo.fn
				buf := mk()
				if err := fn(buf); err != nil {
					t.Errorf("trial %d %s (n=%d bytes=%d root=%d): %v", trial, name, n, bytes, root, err)
					return nil
				}
				for i := 0; i < bytes/8; i++ {
					want := float64(root*1_000_000 + i)
					if got := buf.Float64At(i); got != want {
						t.Errorf("trial %d %s: elem %d = %v, want %v", trial, name, i, got, want)
						return nil
					}
				}
			}
			return nil
		})
	}
}

func TestQuickAllreduceAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		shape := randShape(rng)
		n := totalOf(shape)
		count := 1 + rng.Intn(200)
		runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
			c := p.CommWorld()
			v := make([]float64, count)
			for i := range v {
				// Integer-valued so every summation order agrees
				// exactly.
				v[i] = float64((p.Rank()*count+i)%17 - 8)
			}
			send := mpi.FromFloat64s(v)
			want := make([]float64, count)
			for i := range want {
				for r := 0; r < n; r++ {
					want[i] += float64((r*count+i)%17 - 8)
				}
			}
			algos := []struct {
				name string
				fn   func(mpi.Buf) error
			}{
				{"recdbl", func(out mpi.Buf) error {
					return AllreduceRecDbl(c, send, out, count, mpi.Float64, mpi.OpSum)
				}},
				{"rabenseifner", func(out mpi.Buf) error {
					return AllreduceRabenseifner(c, send, out, count, mpi.Float64, mpi.OpSum)
				}},
				{"auto", func(out mpi.Buf) error {
					return Allreduce(c, send, out, count, mpi.Float64, mpi.OpSum)
				}},
			}
			for _, algo := range algos {
				name, fn := algo.name, algo.fn
				out := mpi.Bytes(make([]byte, 8*count))
				if err := fn(out); err != nil {
					t.Errorf("trial %d %s (n=%d count=%d): %v", trial, name, n, count, err)
					return nil
				}
				for i := 0; i < count; i++ {
					if got := out.Float64At(i); got != want[i] {
						t.Errorf("trial %d %s: elem %d = %v, want %v", trial, name, i, got, want[i])
						return nil
					}
				}
			}
			return nil
		})
	}
}

func TestQuickScanConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		shape := randShape(rng)
		n := totalOf(shape)
		runWorld(t, sim.Laptop(), shape, func(p *mpi.Proc) error {
			c := p.CommWorld()
			send := mpi.FromFloat64s([]float64{float64(p.Rank() + 1)})
			inc := mpi.Bytes(make([]byte, 8))
			exc := mpi.FromFloat64s([]float64{0})
			if err := Scan(c, send, inc, 1, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
			if err := Exscan(c, send, exc, 1, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
			// Inclusive = exclusive + own contribution.
			if p.Rank() > 0 {
				if inc.Float64At(0) != exc.Float64At(0)+float64(p.Rank()+1) {
					t.Errorf("trial %d (n=%d) rank %d: scan %v, exscan %v", trial, n,
						p.Rank(), inc.Float64At(0), exc.Float64At(0))
				}
			}
			return nil
		})
	}
}
