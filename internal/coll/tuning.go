package coll

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mpi"
)

// Policy selects how the engine picks among the registered algorithms
// of a collective.
type Policy int

const (
	// PolicyTable replicates the MPICH/OpenMPI-style static cutoff
	// tables carried by the machine profile (sim.Tuning). It is the
	// default, and bit-identical to the selection the historical
	// hard-wired entry points performed.
	PolicyTable Policy = iota
	// PolicyCost consults the cost model: every applicable registered
	// algorithm is priced with its alpha-beta-gamma estimate at the
	// call's comm size, message size and hop class, and the cheapest
	// wins (ties break by registration order, deterministically).
	PolicyCost
	// PolicyMeasured serves selections from a measurement cache (the
	// internal/tune store, consulted through Tuning.Lookup): on a hit
	// the cached winner runs; on a miss the engine reports the point
	// through Tuning.OnMiss (so a background tuner can race the
	// candidates' virtual times) and falls back to the PolicyCost
	// choice, so calls never block on a measurement. With no Lookup
	// installed it degenerates to PolicyCost exactly.
	PolicyMeasured
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyTable:
		return "table"
	case PolicyCost:
		return "cost"
	case PolicyMeasured:
		return "measured"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "table":
		return PolicyTable, nil
	case "cost":
		return PolicyCost, nil
	case "measured":
		return PolicyMeasured, nil
	default:
		return 0, fmt.Errorf("coll: unknown policy %q (want table, cost or measured)", s)
	}
}

// Tuning configures the collective selection engine. The zero value is
// the default: table policy, no overrides, node-level hybrid windows.
//
// The textual key=value grammar historically parsed here (the
// REPRO_COLL_TUNING environment variable and the -tuning flags) is
// owned by internal/spec since the Spec API redesign: spec.ParseTuning
// parses it, spec.Tuning round-trips it, and importing internal/spec
// installs the environment compatibility shim that feeds
// SetDefaultTuning.
type Tuning struct {
	Policy Policy
	// Force pins a collective to a named algorithm regardless of
	// policy. A name that is unknown or inapplicable at a call site
	// (e.g. recursive doubling on a non-power-of-two communicator)
	// falls back to the policy choice rather than failing the call.
	Force map[Collective]string
	// SharedLevel names the topology level the hybrid context's shared
	// window (and its sync domain) sits at: "node" (the paper's
	// scheme, the default when empty) or any declared level inside the
	// node ("socket", "numa"). Parsed from the sharedlevel= key of
	// the spec tuning grammar.
	SharedLevel string
	// Lookup is the PolicyMeasured cache probe: given a call's family
	// and selection environment it returns the measured winner's name,
	// or ok=false on a miss. internal/spec installs a closure over an
	// immutable tuning-store snapshot here, so every pick within one
	// Run resolves against the same store generation (bit-identical
	// reruns on a warm store). A name that is unknown or inapplicable
	// at the call site falls back to the policy path like Force does.
	// Nil means every lookup misses.
	Lookup func(Collective, Env) (string, bool)
	// OnMiss, when non-nil, is invoked under PolicyMeasured for every
	// Lookup miss before the cost fallback runs. It must not block:
	// internal/spec's tuner uses it to enqueue a background
	// measurement of the missed point (singleflight per key).
	OnMiss func(Collective, Env)
}

// defaultTun holds the process-wide default tuning (nil = zero Tuning).
var defaultTun atomic.Pointer[Tuning]

// SetDefaultTuning installs the process-wide default tuning returned by
// DefaultTuning — the fallback for every communicator with no attached
// configuration. internal/spec calls it from its REPRO_COLL_TUNING
// compatibility shim; tests and harnesses may call it directly. The
// value is copied.
func SetDefaultTuning(t Tuning) { defaultTun.Store(&t) }

// DefaultTuning returns the process-wide default tuning: the zero
// Tuning unless SetDefaultTuning installed another (internal/spec does
// so from REPRO_COLL_TUNING when that variable is set).
func DefaultTuning() Tuning {
	if t := defaultTun.Load(); t != nil {
		return *t
	}
	return Tuning{}
}

// WithTuning attaches a tuning configuration to a communicator handle
// and returns the same handle; derived communicators inherit it. All
// members must configure the same value (the usual MPI collective
// discipline).
func WithTuning(c *mpi.Comm, t Tuning) *mpi.Comm {
	c.SetCollConfig(t)
	return c
}

// TuningFor resolves the tuning in effect for calls on a communicator:
// the handle's attached configuration if any, the process default
// otherwise. internal/hybrid uses it to pick up SharedLevel.
func TuningFor(c *mpi.Comm) Tuning { return tuningOf(c) }

// tuningOf resolves the tuning for a call on the communicator: the
// handle's attached configuration if any, the process default
// otherwise.
func tuningOf(c *mpi.Comm) Tuning {
	switch t := c.CollConfig().(type) {
	case Tuning:
		return t
	case *Tuning:
		if t != nil {
			return *t
		}
	}
	return DefaultTuning()
}
