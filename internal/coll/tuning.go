package coll

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/mpi"
)

// Policy selects how the engine picks among the registered algorithms
// of a collective.
type Policy int

const (
	// PolicyTable replicates the MPICH/OpenMPI-style static cutoff
	// tables carried by the machine profile (sim.Tuning). It is the
	// default, and bit-identical to the selection the historical
	// hard-wired entry points performed.
	PolicyTable Policy = iota
	// PolicyCost consults the cost model: every applicable registered
	// algorithm is priced with its alpha-beta-gamma estimate at the
	// call's comm size, message size and hop class, and the cheapest
	// wins (ties break by registration order, deterministically).
	PolicyCost
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyTable:
		return "table"
	case PolicyCost:
		return "cost"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Tuning configures the collective selection engine. The zero value is
// the default: table policy, no overrides, node-level hybrid windows.
type Tuning struct {
	Policy Policy
	// Force pins a collective to a named algorithm regardless of
	// policy. A name that is unknown or inapplicable at a call site
	// (e.g. recursive doubling on a non-power-of-two communicator)
	// falls back to the policy choice rather than failing the call.
	Force map[Collective]string
	// SharedLevel names the topology level the hybrid context's shared
	// window (and its sync domain) sits at: "node" (the paper's
	// scheme, the default when empty) or any declared level inside the
	// node ("socket", "numa"). Parsed from the sharedlevel= key of
	// REPRO_COLL_TUNING and the -tuning flags.
	SharedLevel string
}

// EnvVar is the environment variable the default tuning is read from.
const EnvVar = "REPRO_COLL_TUNING"

// ParseTuning parses a tuning spec of comma-separated key=value pairs:
// "policy" takes "table" or "cost"; a collective name (allgather,
// allgatherv, allreduce, reduce, bcast, barrier, alltoall) takes the
// algorithm to force, e.g.
//
//	policy=cost,allreduce=rabenseifner,barrier=central
//
// The same syntax is accepted by the REPRO_COLL_TUNING environment
// variable and the command-line -tuning flags.
func ParseTuning(spec string) (Tuning, error) {
	var t Tuning
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return t, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return t, fmt.Errorf("coll: tuning entry %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "policy" {
			switch val {
			case "table":
				t.Policy = PolicyTable
			case "cost":
				t.Policy = PolicyCost
			default:
				return t, fmt.Errorf("coll: unknown policy %q (want table or cost)", val)
			}
			continue
		}
		if key == "sharedlevel" {
			if val == "" {
				return t, fmt.Errorf("coll: sharedlevel needs a level name")
			}
			// Level existence is validated against the topology when a
			// hybrid context is built (the tuning spec is parsed before
			// any world exists).
			t.SharedLevel = val
			continue
		}
		cl, err := ParseCollective(key)
		if err != nil {
			return t, err
		}
		if !Registered(cl, val) {
			return t, fmt.Errorf("coll: no algorithm %q registered for %s", val, cl)
		}
		if t.Force == nil {
			t.Force = map[Collective]string{}
		}
		t.Force[cl] = val
	}
	return t, nil
}

var (
	defaultOnce sync.Once
	defaultTun  Tuning
)

// DefaultTuning returns the process-wide default tuning: the zero
// Tuning, overridden by REPRO_COLL_TUNING when set (a malformed value
// is ignored rather than failing every collective in the job).
func DefaultTuning() Tuning {
	defaultOnce.Do(func() {
		if spec := os.Getenv(EnvVar); spec != "" {
			if t, err := ParseTuning(spec); err == nil {
				defaultTun = t
			} else {
				fmt.Fprintf(os.Stderr, "coll: ignoring %s: %v\n", EnvVar, err)
			}
		}
	})
	return defaultTun
}

// WithTuning attaches a tuning configuration to a communicator handle
// and returns the same handle; derived communicators inherit it. All
// members must configure the same value (the usual MPI collective
// discipline).
func WithTuning(c *mpi.Comm, t Tuning) *mpi.Comm {
	c.SetCollConfig(t)
	return c
}

// TuningFor resolves the tuning in effect for calls on a communicator:
// the handle's attached configuration if any, the process default
// otherwise. internal/hybrid uses it to pick up SharedLevel.
func TuningFor(c *mpi.Comm) Tuning { return tuningOf(c) }

// tuningOf resolves the tuning for a call on the communicator: the
// handle's attached configuration if any, the process default
// otherwise.
func tuningOf(c *mpi.Comm) Tuning {
	switch t := c.CollConfig().(type) {
	case Tuning:
		return t
	case *Tuning:
		if t != nil {
			return *t
		}
	}
	return DefaultTuning()
}
