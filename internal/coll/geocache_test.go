package coll

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// The composer geometry must be shared across worlds of the same shape
// (the scale sweeps rebuild identical worlds for every measurement) and
// never shared across different memberships or stacks.

func TestComposerGeomCachedAcrossWorlds(t *testing.T) {
	topo := sim.MustUniformHier(3, sim.LevelDim{Name: "socket", Arity: 2}, sim.LevelDim{Name: "node", Arity: 2})
	members := make([]int, topo.Size())
	for i := range members {
		members[i] = i
	}
	g1, err := composerGeomFor(topo, members, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := composerGeomFor(topo, members, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("identical (topology, membership, stack) did not hit the geometry cache")
	}
	// A rebuilt topology of the same shape interns to the same object,
	// so a fresh world still hits.
	topo2 := sim.MustUniformHier(3, sim.LevelDim{Name: "socket", Arity: 2}, sim.LevelDim{Name: "node", Arity: 2})
	g3, err := composerGeomFor(topo2, members, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g3 != g1 {
		t.Error("rebuilt same-shape topology missed the geometry cache")
	}
	// Different stack or membership must not share.
	g4, err := composerGeomFor(topo, members, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if g4 == g1 {
		t.Error("different level stacks share a cached geometry")
	}
	g5, err := composerGeomFor(topo, members[:6], []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g5 == g1 {
		t.Error("different memberships share a cached geometry")
	}
}

// TestComposerMatchesHistoricalSplitConstruction cross-checks the
// derived tier communicators against the generic exchange-based Split
// chain the seed used — same groups, same ranks, same leader order.
func TestComposerMatchesHistoricalSplitConstruction(t *testing.T) {
	topo := sim.MustUniformHier(2, sim.LevelDim{Name: "socket", Arity: 2}, sim.LevelDim{Name: "node", Arity: 3})
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		comp, err := NewComposer(c, []int{0, 1})
		if err != nil {
			return err
		}
		// Historical construction with generic Splits.
		var prev *mpi.Comm
		var tiers []*mpi.Comm
		for i, l := range []int{0, 1} {
			color := mpi.Undefined
			if i == 0 || (prev != nil && prev.Rank() == 0) {
				color = topo.GroupOf(l, c.Global(c.Rank()))
			}
			sub, err := c.Split(color, c.Rank())
			if err != nil {
				return err
			}
			tiers = append(tiers, sub)
			prev = sub
		}
		topColor := mpi.Undefined
		if last := tiers[len(tiers)-1]; last != nil && last.Rank() == 0 {
			topColor = 0
		}
		top, err := c.Split(topColor, c.Rank())
		if err != nil {
			return err
		}

		for i := range tiers {
			cmpComms(t, p.Rank(), comp.Tier(i), tiers[i])
		}
		cmpComms(t, p.Rank(), comp.Top(), top)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func cmpComms(t *testing.T, rank int, got, want *mpi.Comm) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Errorf("rank %d: derived comm nil-ness %v, split comm %v", rank, got == nil, want == nil)
		return
	}
	if got == nil {
		return
	}
	if got.Rank() != want.Rank() || got.Size() != want.Size() {
		t.Errorf("rank %d: derived %d/%d, split %d/%d", rank, got.Rank(), got.Size(), want.Rank(), want.Size())
	}
	for r := 0; r < got.Size() && r < want.Size(); r++ {
		if got.Global(r) != want.Global(r) {
			t.Errorf("rank %d: member %d is global %d (derived) vs %d (split)", rank, r, got.Global(r), want.Global(r))
		}
	}
}
