package coll

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// ringWorld runs body on a world with a 1-D periodic Cartesian
// communicator over all ranks.
func ringWorld(t *testing.T, nodeSizes []int, body func(p *mpi.Proc, ring *mpi.Comm) error) *mpi.World {
	t.Helper()
	return runWorld(t, sim.Laptop(), nodeSizes, func(p *mpi.Proc) error {
		ring, err := p.CommWorld().CartCreate([]int{p.Size()}, []bool{true}, false)
		if err != nil {
			return err
		}
		return body(p, ring)
	})
}

// checkRingAlltoall verifies a ring NeighborAlltoall result: slot 0
// (negative side) holds the left neighbor's positive-direction block,
// slot 1 the right neighbor's negative-direction block.
func checkRingAlltoall(t *testing.T, who string, rank, n int, recv mpi.Buf, elems int) {
	t.Helper()
	left, right := (rank-1+n)%n, (rank+1)%n
	for i := 0; i < elems; i++ {
		// Each rank's send buffer: block 0 (to left) = pattern
		// rank*1e6+i, block 1 (to right) = pattern rank*1e6+elems+i.
		if got, want := recv.Float64At(i), float64(left*1_000_000+elems+i); got != want {
			t.Errorf("%s rank %d: negative slot elem %d = %v, want %v", who, rank, i, got, want)
			return
		}
		if got, want := recv.Float64At(elems+i), float64(right*1_000_000+i); got != want {
			t.Errorf("%s rank %d: positive slot elem %d = %v, want %v", who, rank, i, got, want)
			return
		}
	}
}

func TestNeighborAlltoallOnRing(t *testing.T) {
	for name, fn := range map[string]func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error{
		"auto":     NeighborAlltoall,
		"pairwise": NeighborAlltoallPairwise,
		"linear":   NeighborAlltoallLinear,
	} {
		for _, shape := range [][]int{{3, 3}, {2, 2, 2}, {5}} {
			n := 0
			for _, s := range shape {
				n += s
			}
			ringWorld(t, shape, func(p *mpi.Proc, ring *mpi.Comm) error {
				send := fill(p.Rank(), 2*4)
				recv := mpi.Bytes(make([]byte, 2*4*8))
				if err := fn(ring, send, recv, 4*8); err != nil {
					return err
				}
				checkRingAlltoall(t, name, p.Rank(), n, recv, 4)
				return nil
			})
		}
	}
}

func TestNeighborAllgatherOnRing(t *testing.T) {
	for name, fn := range map[string]func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error{
		"auto":     NeighborAllgather,
		"pairwise": NeighborAllgatherPairwise,
		"linear":   NeighborAllgatherLinear,
	} {
		ringWorld(t, []int{3, 3}, func(p *mpi.Proc, ring *mpi.Comm) error {
			n := p.Size()
			send := fill(p.Rank(), 4)
			recv := mpi.Bytes(make([]byte, 2*4*8))
			if err := fn(ring, send, recv, 4*8); err != nil {
				return err
			}
			left, right := (p.Rank()-1+n)%n, (p.Rank()+1)%n
			for i := 0; i < 4; i++ {
				if got, want := recv.Float64At(i), float64(left*1_000_000+i); got != want {
					t.Errorf("%s rank %d: left slot elem %d = %v, want %v", name, p.Rank(), i, got, want)
				}
				if got, want := recv.Float64At(4+i), float64(right*1_000_000+i); got != want {
					t.Errorf("%s rank %d: right slot elem %d = %v, want %v", name, p.Rank(), i, got, want)
				}
			}
			return nil
		})
	}
}

// TestNeighborAlltoallTwoWidePeriodic pins the double-edge case: on a
// 2-wide periodic dim both directions reach the same peer, and the
// direction-of-travel tags must keep the two blocks apart (a naive
// FIFO pairing would swap them).
func TestNeighborAlltoallTwoWidePeriodic(t *testing.T) {
	for name, fn := range map[string]func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error{
		"pairwise": NeighborAlltoallPairwise,
		"linear":   NeighborAlltoallLinear,
	} {
		runWorld(t, sim.Laptop(), []int{2}, func(p *mpi.Proc) error {
			ring, err := p.CommWorld().CartCreate([]int{2}, []bool{true}, false)
			if err != nil {
				return err
			}
			send := fill(p.Rank(), 2)
			recv := mpi.Bytes(make([]byte, 2*8))
			if err := fn(ring, send, recv, 8); err != nil {
				return err
			}
			other := 1 - p.Rank()
			// My negative slot must hold the peer's positive-direction
			// block (its elem 1), my positive slot its negative block.
			if got, want := recv.Float64At(0), float64(other*1_000_000+1); got != want {
				t.Errorf("%s rank %d: negative slot = %v, want %v", name, p.Rank(), got, want)
			}
			if got, want := recv.Float64At(1), float64(other*1_000_000+0); got != want {
				t.Errorf("%s rank %d: positive slot = %v, want %v", name, p.Rank(), got, want)
			}
			return nil
		})
	}
}

// TestNeighborAlltoallOneWidePeriodic pins the self-edge case: a
// 1-wide periodic dim makes the rank its own neighbor in both
// directions, and the blocks must cross over (a block sent positive
// arrives on the negative side).
func TestNeighborAlltoallOneWidePeriodic(t *testing.T) {
	for name, fn := range map[string]func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error{
		"pairwise": NeighborAlltoallPairwise,
		"linear":   NeighborAlltoallLinear,
	} {
		runWorld(t, sim.Laptop(), []int{4}, func(p *mpi.Proc) error {
			cart, err := p.CommWorld().CartCreate([]int{1, 4}, []bool{true, true}, false)
			if err != nil {
				return err
			}
			send := fill(p.Rank(), 4)
			recv := mpi.Bytes(make([]byte, 4*8))
			if err := fn(cart, send, recv, 8); err != nil {
				return err
			}
			// Dim 0 is the self-loop: negative slot (0) receives my own
			// positive-direction block (1); positive slot (1) my
			// negative block (0).
			if got, want := recv.Float64At(0), float64(p.Rank()*1_000_000+1); got != want {
				t.Errorf("%s rank %d: self negative slot = %v, want %v", name, p.Rank(), got, want)
			}
			if got, want := recv.Float64At(1), float64(p.Rank()*1_000_000+0); got != want {
				t.Errorf("%s rank %d: self positive slot = %v, want %v", name, p.Rank(), got, want)
			}
			return nil
		})
	}
}

// TestNeighborAlltoallNonPeriodicBoundary checks ProcNull handling: the
// boundary slots stay untouched and no transfer deadlocks.
func TestNeighborAlltoallNonPeriodicBoundary(t *testing.T) {
	for name, fn := range map[string]func(*mpi.Comm, mpi.Buf, mpi.Buf, int) error{
		"pairwise": NeighborAlltoallPairwise,
		"linear":   NeighborAlltoallLinear,
	} {
		runWorld(t, sim.Laptop(), []int{5}, func(p *mpi.Proc) error {
			line, err := p.CommWorld().CartCreate([]int{5}, []bool{false}, false)
			if err != nil {
				return err
			}
			n := p.Size()
			send := fill(p.Rank(), 2)
			recv := mpi.FromFloat64s([]float64{-1, -1})
			if err := fn(line, send, recv, 8); err != nil {
				return err
			}
			if p.Rank() == 0 {
				if got := recv.Float64At(0); got != -1 {
					t.Errorf("%s rank 0: boundary slot overwritten with %v", name, got)
				}
			} else if got, want := recv.Float64At(0), float64((p.Rank()-1)*1_000_000+1); got != want {
				t.Errorf("%s rank %d: negative slot = %v, want %v", name, p.Rank(), got, want)
			}
			if p.Rank() == n-1 {
				if got := recv.Float64At(1); got != -1 {
					t.Errorf("%s last rank: boundary slot overwritten with %v", name, got)
				}
			} else if got, want := recv.Float64At(1), float64((p.Rank()+1)*1_000_000+0); got != want {
				t.Errorf("%s rank %d: positive slot = %v, want %v", name, p.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestNeighborAlltoallvIrregularBlocks(t *testing.T) {
	for name, fn := range map[string]func(*mpi.Comm, mpi.Buf, []int, mpi.Buf, []int) error{
		"auto":     NeighborAlltoallv,
		"pairwise": NeighborAlltoallvPairwise,
		"linear":   NeighborAlltoallvLinear,
	} {
		ringWorld(t, []int{6}, func(p *mpi.Proc, ring *mpi.Comm) error {
			n := p.Size()
			left, right := (p.Rank()-1+n)%n, (p.Rank()+1)%n
			// Rank r sends r+1 doubles in each direction; so it
			// receives left+1 from the left and right+1 from the right.
			mine := p.Rank() + 1
			send := fill(p.Rank(), 2*mine)
			sendCounts := []int{8 * mine, 8 * mine}
			recvCounts := []int{8 * (left + 1), 8 * (right + 1)}
			recv := mpi.Bytes(make([]byte, recvCounts[0]+recvCounts[1]))
			if err := fn(ring, send, sendCounts, recv, recvCounts); err != nil {
				return err
			}
			// Left neighbor's positive-direction block is its second
			// half: elems left+1 .. 2(left+1)-1 of its pattern.
			for i := 0; i < left+1; i++ {
				if got, want := recv.Float64At(i), float64(left*1_000_000+(left+1)+i); got != want {
					t.Errorf("%s rank %d: left block elem %d = %v, want %v", name, p.Rank(), i, got, want)
					return nil
				}
			}
			for i := 0; i < right+1; i++ {
				if got, want := recv.Float64At(left+1+i), float64(right*1_000_000+i); got != want {
					t.Errorf("%s rank %d: right block elem %d = %v, want %v", name, p.Rank(), i, got, want)
					return nil
				}
			}
			return nil
		})
	}
}

func TestNeighborAlltoallOnDistGraph(t *testing.T) {
	// A directed 3-cycle over 6 ranks' even members plus self-declared
	// spokes: keep it simple — ring graph, so results match the cart
	// version, but selection must land on "linear".
	runWorld(t, sim.Laptop(), []int{3, 3}, func(p *mpi.Proc) error {
		n := p.Size()
		left, right := (p.Rank()-1+n)%n, (p.Rank()+1)%n
		g, err := p.CommWorld().DistGraphCreateAdjacent([]int{left, right}, []int{left, right}, false)
		if err != nil {
			return err
		}
		send := fill(p.Rank(), 4)
		recv := mpi.Bytes(make([]byte, 4*8))
		if err := NeighborAlltoall(g, send, recv, 2*8); err != nil {
			return err
		}
		// Slot 0 <- left's block for its right neighbor (slot 1 of its
		// send buffer: elems 2,3); slot 1 <- right's block for its left
		// (elems 0,1).
		if got, want := recv.Float64At(0), float64(left*1_000_000+2); got != want {
			t.Errorf("rank %d: graph slot 0 = %v, want %v", p.Rank(), got, want)
		}
		if got, want := recv.Float64At(2), float64(right*1_000_000+0); got != want {
			t.Errorf("rank %d: graph slot 1 = %v, want %v", p.Rank(), got, want)
		}
		return nil
	})
}

func TestNeighborSelectionPolicies(t *testing.T) {
	cartEnv := Env{Size: 16, Bytes: 1024, Model: sim.Laptop(), Hop: sim.HopNet, Degree: 4, Cart: true}
	graphEnv := cartEnv
	graphEnv.Cart = false

	for _, cl := range []Collective{CollNeighborAllgather, CollNeighborAlltoall, CollNeighborAlltoallv} {
		// Table policy: pairwise on grids, linear on graphs.
		if got, err := Choose(cl, cartEnv, Tuning{}); err != nil || got != "pairwise" {
			t.Errorf("%s table on cart: %q, %v", cl, got, err)
		}
		if got, err := Choose(cl, graphEnv, Tuning{}); err != nil || got != "linear" {
			t.Errorf("%s table on graph: %q, %v", cl, got, err)
		}
		// Cost policy: pairwise never prices below linear's overlapped
		// posts at degree >= 2, and on graphs it is inapplicable.
		if got, err := Choose(cl, graphEnv, Tuning{Policy: PolicyCost}); err != nil || got != "linear" {
			t.Errorf("%s cost on graph: %q, %v", cl, got, err)
		}
		// Forcing an inapplicable algorithm falls back to the policy.
		if got, err := Choose(cl, graphEnv, Tuning{Force: map[Collective]string{cl: "pairwise"}}); err != nil || got != "linear" {
			t.Errorf("%s forced-pairwise on graph: %q, %v", cl, got, err)
		}
	}
}

// TestNeighborMatchesHandRolledHalo pins the acceptance anchor: the
// pairwise NeighborAlltoall on a 1-D periodic grid is virtual-time
// bit-identical to the hand-rolled two-Sendrecv halo exchange it
// replaces.
func TestNeighborMatchesHandRolledHalo(t *testing.T) {
	const per = 64
	shape := []int{6, 6}

	manual := func(p *mpi.Proc) error {
		c := p.CommWorld()
		n := p.Size()
		left, right := (p.Rank()-1+n)%n, (p.Rank()+1)%n
		lb, rb := fill(p.Rank(), per/8), fill(p.Rank()+1000, per/8)
		gl := mpi.Bytes(make([]byte, per))
		gr := mpi.Bytes(make([]byte, per))
		// The classic pattern: leftward travel, then rightward.
		if _, err := c.Sendrecv(lb, left, 1, gr, right, 1); err != nil {
			return err
		}
		if _, err := c.Sendrecv(rb, right, 2, gl, left, 2); err != nil {
			return err
		}
		return nil
	}
	neighbor := func(p *mpi.Proc) error {
		ring, err := p.CommWorld().CartCreate([]int{p.Size()}, []bool{true}, false)
		if err != nil {
			return err
		}
		send := mpi.Bytes(make([]byte, 2*per))
		mpi.CopyData(send.Slice(0, per), fill(p.Rank(), per/8))
		mpi.CopyData(send.Slice(per, per), fill(p.Rank()+1000, per/8))
		recv := mpi.Bytes(make([]byte, 2*per))
		return NeighborAlltoall(ring, send, recv, per)
	}

	wm := runWorld(t, sim.Laptop(), shape, manual)
	wn := runWorld(t, sim.Laptop(), shape, neighbor)
	if wm.MaxClock() != wn.MaxClock() {
		t.Errorf("virtual time moved: hand-rolled %v, neighborhood %v", wm.MaxClock(), wn.MaxClock())
	}
}

func TestIneighborMatchesBlocking(t *testing.T) {
	const elems = 8
	run := func(nonblocking bool) (sim.Time, *testing.T) {
		w := ringWorld(t, []int{4, 4}, func(p *mpi.Proc, ring *mpi.Comm) error {
			send := fill(p.Rank(), 2*elems)
			recv := mpi.Bytes(make([]byte, 2*elems*8))
			if nonblocking {
				sched, err := IneighborAlltoall(ring, send, recv, elems*8)
				if err != nil {
					return err
				}
				if err := sched.Wait(); err != nil {
					return err
				}
			} else if err := NeighborAlltoallLinear(ring, send, recv, elems*8); err != nil {
				return err
			}
			checkRingAlltoall(t, "ineighbor", p.Rank(), p.Size(), recv, elems)
			return nil
		})
		return w.MaxClock(), t
	}
	blocking, _ := run(false)
	overlap, _ := run(true)
	// With no compute between Start and Wait the schedule timeline
	// matches the posted-all blocking path.
	if blocking != overlap {
		t.Errorf("Ineighbor virtual time %v != blocking %v", overlap, blocking)
	}
}

func TestIneighborAllgatherOverlap(t *testing.T) {
	ringWorld(t, []int{4}, func(p *mpi.Proc, ring *mpi.Comm) error {
		send := fill(p.Rank(), 4)
		recv := mpi.Bytes(make([]byte, 2*4*8))
		sched, err := IneighborAllgather(ring, send, recv, 4*8)
		if err != nil {
			return err
		}
		if err := sched.Start(); err != nil {
			return err
		}
		p.Compute(1e4) // overlapped local work
		if err := sched.Wait(); err != nil {
			return err
		}
		n := p.Size()
		left, right := (p.Rank()-1+n)%n, (p.Rank()+1)%n
		if got, want := recv.Float64At(0), float64(left*1_000_000); got != want {
			t.Errorf("rank %d: left slot = %v, want %v", p.Rank(), got, want)
		}
		if got, want := recv.Float64At(4), float64(right*1_000_000); got != want {
			t.Errorf("rank %d: right slot = %v, want %v", p.Rank(), got, want)
		}
		return nil
	})
}
