package coll

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestFoldSafeMetadata(t *testing.T) {
	safe := []struct {
		cl   Collective
		name string
	}{
		{CollAllgather, "ring"},
		{CollAllgather, "recdbl"},
		{CollAllreduce, "recdbl"},
		{CollBarrier, "dissemination"},
		{CollAlltoall, "pairwise"},
	}
	for _, s := range safe {
		if !FoldSafe(s.cl, s.name) {
			t.Errorf("FoldSafe(%s, %s) = false, want true", s.cl, s.name)
		}
	}
	unsafe := []struct {
		cl   Collective
		name string
	}{
		{CollAllgather, "bruck"},
		{CollAllgather, "neighbor"},
		{CollAllreduce, "rabenseifner"},
		{CollBcast, "binomial"},
		{CollBarrier, "central"},
		{CollAllgather, "no-such-algorithm"},
	}
	for _, s := range unsafe {
		if FoldSafe(s.cl, s.name) {
			t.Errorf("FoldSafe(%s, %s) = true, want false", s.cl, s.name)
		}
	}
}

func TestHierAllgatherFoldUnit(t *testing.T) {
	model := sim.HazelHenCray()
	irregular, err := sim.NewTopology([]int{3, 5, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		topo *sim.Topology
		want int
	}{
		{"uniform pow2", sim.MustUniform(64, 64), 64},
		{"non-pow2 total", sim.MustUniform(6, 4), 0},
		{"non-pow2 unit", sim.MustUniform(4, 6), 0},
		{"irregular", irregular, 0},
		{"single unit", sim.MustUniform(1, 8), 0},
	}
	for _, tc := range cases {
		if got := HierAllgatherFoldUnit(model, tc.topo, 8, Tuning{}); got != tc.want {
			t.Errorf("%s: HierAllgatherFoldUnit = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Forcing a specific (fold-safe) top algorithm keeps the unit: the
	// helper follows the same Force/policy resolution as the runtime.
	if got := HierAllgatherFoldUnit(model, sim.MustUniform(64, 64), 8,
		Tuning{Force: map[Collective]string{CollAllgather: "ring"}}); got != 64 {
		t.Errorf("forced ring: HierAllgatherFoldUnit = %d, want 64", got)
	}
}

func TestAllreduceFoldUnit(t *testing.T) {
	model := sim.HazelHenCray()
	topo := sim.MustUniform(64, 64)
	// The sweep's point: 8 bytes, one element — the table picks
	// recursive doubling, which is fold-safe.
	if got := AllreduceFoldUnit(model, topo, 8, 1, Tuning{}); got != 64 {
		t.Errorf("AllreduceFoldUnit(small) = %d, want 64", got)
	}
	// Forcing Rabenseifner (unmarked: halving buffers) must disable
	// folding even though the topology qualifies.
	tun := Tuning{Force: map[Collective]string{CollAllreduce: "rabenseifner"}}
	if got := AllreduceFoldUnit(model, topo, 1<<20, 1<<17, tun); got != 0 {
		t.Errorf("AllreduceFoldUnit(rabenseifner) = %d, want 0", got)
	}
	if got := AllreduceFoldUnit(model, sim.MustUniform(6, 4), 8, 1, Tuning{}); got != 0 {
		t.Errorf("AllreduceFoldUnit(non-pow2) = %d, want 0", got)
	}
}

// TestFoldedHierAllgatherMatchesUnfolded runs the actual sweep workload
// — the hierarchical allgather — folded on both engines and checks the
// virtual makespan against the unfolded full-width run, end to end
// through the composer, the top-exchange pick and the folded runtime.
func TestFoldedHierAllgatherMatchesUnfolded(t *testing.T) {
	model := sim.HazelHenCray()
	topo := sim.MustUniform(8, 4)
	const per = 8
	body := func(p *mpi.Proc) error {
		h, err := NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		send := mpi.Sized(per)
		recv := mpi.Sized(per * p.Size())
		for i := 0; i < 2; i++ {
			if err := h.Allgather(send, recv, per); err != nil {
				return err
			}
		}
		return nil
	}
	run := func(opts ...mpi.Option) sim.Time {
		t.Helper()
		w, err := mpi.NewWorld(model, topo, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
		return w.MaxClock()
	}
	u := HierAllgatherFoldUnit(model, topo, per, Tuning{})
	if u != 4 {
		t.Fatalf("HierAllgatherFoldUnit = %d, want 4", u)
	}
	want := run()
	for _, e := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		if got := run(mpi.WithEngine(e), mpi.WithFold(u)); got != want {
			t.Errorf("folded %v: makespan %d ps, want %d ps", e, int64(got), int64(want))
		}
	}
}
