package coll

import (
	"fmt"

	"repro/internal/mpi"
)

func checkAlltoallArgs(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	switch {
	case c == nil:
		return fmt.Errorf("coll: alltoall on nil communicator")
	case per < 0:
		return fmt.Errorf("coll: alltoall negative block size")
	case send.Len() < per*c.Size() || recv.Len() < per*c.Size():
		return fmt.Errorf("coll: alltoall buffers too small for %d x %dB", c.Size(), per)
	}
	return nil
}

// Alltoall performs the complete exchange: rank i's j-th send block of
// `per` bytes lands in rank j's recv buffer at block i. The algorithm
// is resolved by the selection engine.
func Alltoall(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAlltoallArgs(c, send, recv, per); err != nil {
		return err
	}
	en, err := pick(CollAlltoall, envFor(c, per, 0), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(alltoallFn)(c, send, recv, per)
}

// AlltoallPairwise is the pairwise exchange algorithm: n-1 balanced
// steps (XOR pairing on power-of-two sizes, shifted pairing otherwise).
func AlltoallPairwise(c *mpi.Comm, send, recv mpi.Buf, per int) error {
	if err := checkAlltoallArgs(c, send, recv, per); err != nil {
		return err
	}
	n := c.Size()
	rank := c.Rank()
	p := c.Proc()
	p.CopyLocal(recv.Slice(rank*per, per), send.Slice(rank*per, per), 1)
	for step := 1; step < n; step++ {
		var sendTo, recvFrom int
		if isPow2(n) {
			sendTo = rank ^ step
			recvFrom = sendTo
		} else {
			sendTo = (rank + step) % n
			recvFrom = (rank - step + n) % n
		}
		_, err := c.Sendrecv(
			send.Slice(sendTo*per, per), sendTo, tagAlltoall,
			recv.Slice(recvFrom*per, per), recvFrom, tagAlltoall,
		)
		if err != nil {
			return fmt.Errorf("coll: alltoall step %d: %w", step, err)
		}
	}
	return nil
}

// Reduce folds count elements onto root (commutative ops only, like
// every op in internal/mpi). The algorithm is resolved by the
// selection engine.
func Reduce(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	if err := checkReduceArgs(c, send, send, count, dt); err != nil {
		return err
	}
	en, err := pick(CollReduce, envFor(c, count*dt.Size(), count), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(reduceFn)(c, send, recv, count, dt, op, root)
}

// ReduceBinomial accumulates partial results up a binomial tree.
func ReduceBinomial(c *mpi.Comm, send, recv mpi.Buf, count int, dt mpi.Datatype, op mpi.Op, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	if err := checkReduceArgs(c, send, send, count, dt); err != nil {
		return err
	}
	p := c.Proc()
	bytes := count * dt.Size()
	n := c.Size()
	rel := (c.Rank() - root + n) % n

	acc := p.World().NewBuf(bytes)
	p.CopyLocal(acc, send.Slice(0, bytes), 1)
	tmp := p.World().NewBuf(bytes)

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			if err := c.Send(acc, parent, tagReduce); err != nil {
				return fmt.Errorf("coll: reduce send: %w", err)
			}
			return nil
		}
		if rel+mask < n {
			child := (rel + mask + root) % n
			if _, err := c.Recv(tmp, child, tagReduce); err != nil {
				return fmt.Errorf("coll: reduce recv: %w", err)
			}
			op.Apply(acc, tmp, count, dt)
			p.Compute(float64(count))
		}
		mask <<= 1
	}
	// Root deposits the result.
	if recv.Len() < bytes {
		return fmt.Errorf("coll: reduce recv buffer %dB < %dB", recv.Len(), bytes)
	}
	p.CopyLocal(recv.Slice(0, bytes), acc, 1)
	return nil
}

// Barrier synchronizes the communicator. The algorithm is resolved by
// the selection engine: the runtime's native dissemination barrier
// (with its shared-memory fast path) by default, the central-counter
// ablation when forced or when the cost policy prefers it.
func Barrier(c *mpi.Comm) error {
	if c == nil {
		return fmt.Errorf("coll: barrier on nil communicator")
	}
	en, err := pick(CollBarrier, envFor(c, 0, 0), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(barrierFn)(c)
}

// BarrierCentral is the naive central-counter barrier: gather
// zero-byte tokens at rank 0, then broadcast a release. It exists as an
// ablation against the dissemination barrier (2(n-1) serialized hops vs
// log2(n) balanced rounds).
func BarrierCentral(c *mpi.Comm) error {
	n := c.Size()
	if n <= 1 {
		return nil
	}
	empty := mpi.Sized(0)
	if c.Rank() == 0 {
		for r := 1; r < n; r++ {
			if _, err := c.Recv(empty, r, tagGather); err != nil {
				return err
			}
		}
		for r := 1; r < n; r++ {
			if err := c.Send(empty, r, tagBcast); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(empty, 0, tagGather); err != nil {
		return err
	}
	_, err := c.Recv(empty, 0, tagBcast)
	return err
}
