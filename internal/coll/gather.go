package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Gather collects per-rank blocks of `per` bytes at root (rank order in
// root's recv buffer). The algorithm is resolved by the selection
// engine: under the default table policy the binomial tree (what this
// entry point always ran), with the linear path available to the cost
// policy and Force overrides.
func Gather(c *mpi.Comm, send, recv mpi.Buf, per, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	en, err := pick(CollGather, envFor(c, per, 0), tuningOf(c), false)
	if err != nil {
		return err
	}
	return en.run.(gatherFn)(c, send, recv, per, root)
}

func checkRootArgs(c *mpi.Comm, root int) error {
	if c == nil {
		return fmt.Errorf("coll: nil communicator")
	}
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("coll: root %d out of range (size %d)", root, c.Size())
	}
	return nil
}

// GatherLinear has every non-root rank send its block straight to root.
// Real libraries use exactly this inside a node, where the "network" is
// the shared-memory transport and trees buy nothing — it is the
// aggregation phase of the paper's SMP-aware baseline (Fig. 3a).
func GatherLinear(c *mpi.Comm, send, recv mpi.Buf, per, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	if c.Rank() != root {
		return c.Send(send.Slice(0, per), root, tagGather)
	}
	if recv.Len() < per*c.Size() {
		return fmt.Errorf("coll: gather recv buffer %dB < %d x %dB", recv.Len(), c.Size(), per)
	}
	p := c.Proc()
	p.CopyLocal(recv.Slice(root*per, per), send.Slice(0, per), 1)
	// Receive in deterministic rank order; arrivals overlap on the
	// wire, the root serializes only its own unpacking.
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if _, err := c.Recv(recv.Slice(r*per, per), r, tagGather); err != nil {
			return fmt.Errorf("coll: gather linear from %d: %w", r, err)
		}
	}
	return nil
}

// GatherBinomial aggregates subtrees up a binomial tree: log2(n) rounds,
// interior nodes forwarding their accumulated range. Blocks travel in
// relative-rank order through a scratch buffer and are unrotated at the
// root (charged), as in MPICH.
func GatherBinomial(c *mpi.Comm, send, recv mpi.Buf, per, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	n := c.Size()
	p := c.Proc()
	if c.Rank() == root && recv.Len() < per*n {
		return fmt.Errorf("coll: gather recv buffer %dB < %d x %dB", recv.Len(), n, per)
	}
	if n == 1 {
		p.CopyLocal(recv.Slice(root*per, per), send.Slice(0, per), 1)
		return nil
	}
	rel := (c.Rank() - root + n) % n

	// tmp holds the relative range [rel, rel+have).
	tmp := p.World().NewBuf(subtreeSpan(rel, n) * per)
	p.CopyLocal(tmp.Slice(0, per), send.Slice(0, per), 1)
	have := 1

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			// Send my accumulated range to the parent and stop.
			parent := (rel - mask + root) % n
			if err := c.Send(tmp.Slice(0, have*per), parent, tagGather); err != nil {
				return fmt.Errorf("coll: gather binomial send: %w", err)
			}
			return nil
		}
		// Receive the child's range, if that child exists.
		childRel := rel + mask
		if childRel < n {
			cnt := subtreeSpan(childRel, n)
			if cnt > mask {
				cnt = mask
			}
			child := (childRel + root) % n
			if _, err := c.Recv(tmp.Slice(have*per, cnt*per), child, tagGather); err != nil {
				return fmt.Errorf("coll: gather binomial recv: %w", err)
			}
			have += cnt
		}
		mask <<= 1
	}

	// Only the root reaches here; unrotate relative blocks into comm
	// rank order.
	for i := 0; i < n; i++ {
		p.CopyLocal(recv.Slice(((i+root)%n)*per, per), tmp.Slice(i*per, per), 1)
	}
	return nil
}

// subtreeSpan returns the number of relative ranks in the binomial
// subtree rooted at rel on an n-rank communicator.
func subtreeSpan(rel, n int) int {
	if rel == 0 {
		return n
	}
	// The subtree of rel covers [rel, rel + lowbit(rel)) clipped to n.
	span := rel & (-rel)
	if rel+span > n {
		span = n - rel
	}
	return span
}

// Gatherv collects variable-size blocks at root (counts in comm rank
// order), linearly — the irregular gather real libraries run for modest
// sizes.
func Gatherv(c *mpi.Comm, send, recv mpi.Buf, counts []int, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	if len(counts) != c.Size() {
		return fmt.Errorf("coll: gatherv got %d counts for %d ranks", len(counts), c.Size())
	}
	if c.Rank() != root {
		return c.Send(send.Slice(0, counts[c.Rank()]), root, tagGather)
	}
	displs := Displs(counts)
	if recv.Len() < Total(counts) {
		return fmt.Errorf("coll: gatherv recv buffer %dB < %dB", recv.Len(), Total(counts))
	}
	p := c.Proc()
	p.CopyLocal(recv.Slice(displs[root], counts[root]), send.Slice(0, counts[root]), 1)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if _, err := c.Recv(recv.Slice(displs[r], counts[r]), r, tagGather); err != nil {
			return fmt.Errorf("coll: gatherv from %d: %w", r, err)
		}
	}
	return nil
}

// Scatter distributes root's per-rank blocks with a binomial tree
// (reverse of GatherBinomial): interior nodes receive their subtree's
// range and forward the halves.
func Scatter(c *mpi.Comm, send, recv mpi.Buf, per, root int) error {
	if err := checkRootArgs(c, root); err != nil {
		return err
	}
	n := c.Size()
	p := c.Proc()
	if c.Rank() == root && send.Len() < per*n {
		return fmt.Errorf("coll: scatter send buffer %dB < %d x %dB", send.Len(), n, per)
	}
	if n == 1 {
		p.CopyLocal(recv.Slice(0, per), send.Slice(root*per, per), 1)
		return nil
	}
	rel := (c.Rank() - root + n) % n

	tmp := p.World().NewBuf(subtreeSpan(rel, n) * per)
	have := 0
	if rel == 0 {
		// Rotate into relative order once (charged), like MPICH's
		// root-side pack.
		for i := 0; i < n; i++ {
			p.CopyLocal(tmp.Slice(i*per, per), send.Slice(((i+root)%n)*per, per), 1)
		}
		have = n
	} else {
		mask := 1
		for mask < n {
			if rel&mask != 0 {
				parent := (rel - mask + root) % n
				have = subtreeSpan(rel, n)
				if _, err := c.Recv(tmp.Slice(0, have*per), parent, tagScatter); err != nil {
					return fmt.Errorf("coll: scatter recv: %w", err)
				}
				break
			}
			mask <<= 1
		}
	}

	// Forward the upper halves to children, largest first.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			cnt := subtreeSpan(rel+mask, n)
			if cnt > mask {
				cnt = mask
			}
			if cnt > have-mask {
				cnt = have - mask
			}
			if cnt > 0 {
				child := (rel + mask + root) % n
				if err := c.Send(tmp.Slice(mask*per, cnt*per), child, tagScatter); err != nil {
					return fmt.Errorf("coll: scatter send: %w", err)
				}
				have = mask
			}
		}
		mask >>= 1
	}
	p.CopyLocal(recv.Slice(0, per), tmp.Slice(0, per), 1)
	return nil
}
