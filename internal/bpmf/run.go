package bpmf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Config describes one BPMF run.
type Config struct {
	// Users (compounds) and Items (targets); both are rounded up to a
	// multiple of the rank count so latent blocks stay uniform, as in
	// the reference code's block distribution.
	Users, Items int
	// K is the latent dimension (num_latent).
	K int
	// AvgDeg is the mean ratings per user of the synthetic dataset.
	AvgDeg int
	// Iters is the number of Gibbs iterations (the paper samples 20).
	Iters int
	// Seed drives the dataset and every sampling draw.
	Seed int64
	// Hybrid selects Hy_BPMF (hybrid allgather) over Ori_BPMF.
	Hybrid bool
	// Real runs the actual sampler (requires a real-data world);
	// otherwise only virtual compute/communication time is charged.
	Real bool
	// RowOverheadFlops is the fixed per-row sampling cost beyond pure
	// flops (library/RNG overhead); see EXPERIMENTS.md for the
	// calibration.
	RowOverheadFlops float64
	// Sync selects the hybrid synchronization flavor.
	Sync hybrid.SyncMode
}

// Result carries timing and (in Real mode) convergence evidence.
type Result struct {
	Makespan sim.Time
	RMSE     []float64 // per-iteration training RMSE (Real mode)
	Checksum float64   // digest of the final latent matrices (Real mode)
}

// Run executes the distributed Gibbs sampler and returns the virtual
// makespan of all iterations (the paper's TotalTime).
func Run(w *mpi.World, cfg Config) (Result, error) {
	if err := validate(w, cfg); err != nil {
		return Result{}, err
	}
	p := w.Size()
	cfg.Users = roundUp(cfg.Users, p)
	cfg.Items = roundUp(cfg.Items, p)

	ds := Synthetic(cfg.Users, cfg.Items, cfg.AvgDeg, cfg.Seed, cfg.Real)

	w.ResetClocks()
	results := make([]Result, w.Size())
	err := w.Run(func(proc *mpi.Proc) error {
		r, err := runRank(proc, cfg, ds)
		results[proc.Rank()] = r
		return err
	})
	if err != nil {
		return Result{}, err
	}
	out := results[0]
	out.Makespan = w.MaxClock()
	return out, nil
}

func validate(w *mpi.World, cfg Config) error {
	switch {
	case cfg.Users <= 0 || cfg.Items <= 0:
		return fmt.Errorf("bpmf: need positive Users/Items, got %d/%d", cfg.Users, cfg.Items)
	case cfg.K <= 0:
		return fmt.Errorf("bpmf: latent dimension %d", cfg.K)
	case cfg.Iters <= 0:
		return fmt.Errorf("bpmf: iterations %d", cfg.Iters)
	case cfg.AvgDeg <= 0:
		return fmt.Errorf("bpmf: average degree %d", cfg.AvgDeg)
	case cfg.Real && !w.RealData():
		return fmt.Errorf("bpmf: Real needs a world with real data (mpi.WithRealData)")
	case cfg.Users < w.Size() || cfg.Items < w.Size():
		return fmt.Errorf("bpmf: %d ranks need at least that many users and items", w.Size())
	}
	return nil
}

func roundUp(n, k int) int { return (n + k - 1) / k * k }

// phase bundles one side's state (items a.k.a. movies, or users).
type phase struct {
	name   string
	rows   int   // total rows on this side
	deg    []int // per-row degree
	idx    [][]int32
	val    [][]float64
	perRow int // bytes per latent row

	// Gathered latent matrix access: exactly one of these is set.
	pureBuf mpi.Buf             // private full copy (pure MPI)
	hyAg    *hybrid.Allgatherer // shared node copy (hybrid)
}

// buffer returns the full gathered latent matrix.
func (ph *phase) buffer() mpi.Buf {
	if ph.hyAg != nil {
		return ph.hyAg.Buffer()
	}
	return ph.pureBuf
}

// runRank is the per-rank Gibbs driver.
func runRank(proc *mpi.Proc, cfg Config, ds *Dataset) (Result, error) {
	world := proc.CommWorld()
	nRanks := world.Size()
	rank := world.Rank()
	kBytes := 8 * cfg.K

	var hier *coll.Hier
	var hctx *hybrid.Ctx
	var err error
	if cfg.Hybrid {
		if hctx, err = hybrid.New(world, hybrid.WithSync(cfg.Sync)); err != nil {
			return Result{}, err
		}
	} else {
		if hier, err = coll.NewHier(world); err != nil {
			return Result{}, err
		}
	}

	mkPhase := func(name string, rows int, deg []int, idx [][]int32, val [][]float64) (*phase, error) {
		ph := &phase{name: name, rows: rows, deg: deg, idx: idx, val: val, perRow: kBytes}
		if cfg.Hybrid {
			ag, err := hctx.NewAllgatherer(rows / nRanks * kBytes)
			if err != nil {
				return nil, err
			}
			ph.hyAg = ag
		} else {
			ph.pureBuf = proc.World().NewBuf(rows * kBytes)
		}
		return ph, nil
	}
	items, err := mkPhase("items", cfg.Items, ds.ItemDeg, ds.ItemIdx, ds.ItemVal)
	if err != nil {
		return Result{}, err
	}
	users, err := mkPhase("users", cfg.Users, ds.UserDeg, ds.UserIdx, ds.UserVal)
	if err != nil {
		return Result{}, err
	}

	// Initialize latent rows deterministically (each rank fills its
	// own block; hybrid writes land directly in the shared segment).
	rowScratch := make([]float64, cfg.K)
	for _, ph := range []*phase{items, users} {
		lo, hi := Share(ph.rows, nRanks, rank)
		if cfg.Real {
			blk := ph.myBlock(rank, nRanks)
			for r := lo; r < hi; r++ {
				rng := rowRNG(cfg.Seed, -1, ph.name, r)
				for c := 0; c < cfg.K; c++ {
					rowScratch[c] = 0.3 * rng.NormFloat64()
				}
				blk.PutFloat64s((r-lo)*cfg.K, rowScratch)
			}
		}
		// The initial gather distributes the starting matrices.
		if err := ph.gather(proc, hier, rank, nRanks); err != nil {
			return Result{}, err
		}
	}

	res := Result{}
	for iter := 0; iter < cfg.Iters; iter++ {
		// Movies region, then users region — each ends in the
		// all-to-all gather (Sect. 5.2.2).
		if err := samplePhase(proc, cfg, items, users, iter, hier, rank, nRanks); err != nil {
			return Result{}, err
		}
		if err := samplePhase(proc, cfg, users, items, iter, hier, rank, nRanks); err != nil {
			return Result{}, err
		}
		if cfg.Real && rank == 0 {
			res.RMSE = append(res.RMSE, rmse(ds, users.buffer(), items.buffer(), cfg.K))
		}
	}

	if cfg.Real && rank == 0 {
		sum := 0.0
		for _, ph := range []*phase{items, users} {
			for _, x := range f64s(ph.buffer()) {
				sum += x
			}
		}
		res.Checksum = sum
	}
	return res, nil
}

// f64s returns a zero-copy float64 view of the buffer when one exists,
// falling back to an unpacking copy (size-only buffers, misalignment).
func f64s(b mpi.Buf) []float64 {
	if v := b.Float64sView(); v != nil {
		return v
	}
	return b.Float64s()
}

// myBlock returns this rank's writable slice of the gathered matrix.
func (ph *phase) myBlock(rank, nRanks int) mpi.Buf {
	per := ph.rows / nRanks * ph.perRow
	if ph.hyAg != nil {
		return ph.hyAg.Mine()
	}
	return ph.pureBuf.Slice(rank*per, per)
}

// gather runs the flavor-appropriate allgather of this phase's latent
// blocks.
func (ph *phase) gather(proc *mpi.Proc, hier *coll.Hier, rank, nRanks int) error {
	if ph.hyAg != nil {
		return ph.hyAg.Allgather()
	}
	per := ph.rows / nRanks * ph.perRow
	send := ph.pureBuf.Slice(rank*per, per)
	return hier.Allgather(send, ph.pureBuf, per)
}

// samplePhase samples this rank's rows of `side` conditioned on
// `other`, charges virtual compute, and gathers the results.
func samplePhase(proc *mpi.Proc, cfg Config, side, other *phase, iter int, hier *coll.Hier, rank, nRanks int) error {
	lo, hi := Share(side.rows, nRanks, rank)

	// Hyperparameter draw (computed redundantly on every rank from
	// the gathered matrix, as in the reference implementation).
	proc.Compute(hyperFlops(side.rows, cfg.K))
	var h hyper
	var otherVals []float64
	if cfg.Real {
		latent := f64s(side.buffer())
		var err error
		h, err = sampleHyper(latent, side.rows, cfg.K, phaseRNG(cfg.Seed, iter, side.name))
		if err != nil {
			return err
		}
		// Reading the gathered matrices through zero-copy views is
		// safe: `side` reads complete before the ReadFence below, and
		// no rank writes `other` until its next phase, which every
		// on-node peer reaches only after this phase's closing
		// gather.
		otherVals = f64s(other.buffer())
	}
	// Hybrid flavor: everyone reads the shared gathered matrix for
	// the hyperparameter statistics, and is about to overwrite its
	// own rows of the same segment — fence the reads from the writes
	// (the epoch discipline of hybrid.Allgatherer.ReadFence).
	if side.hyAg != nil {
		if err := side.hyAg.ReadFence(); err != nil {
			return err
		}
	}

	// Row conditionals.
	flops := 0.0
	blk := side.myBlock(rank, nRanks)
	for r := lo; r < hi; r++ {
		flops += rowFlops(cfg.K, side.deg[r], cfg.RowOverheadFlops)
		if cfg.Real {
			row, err := sampleRow(h, otherVals, cfg.K, side.idx[r], side.val[r], rowRNG(cfg.Seed, iter, side.name, r))
			if err != nil {
				return fmt.Errorf("bpmf: %s row %d: %w", side.name, r, err)
			}
			blk.PutFloat64s((r-lo)*cfg.K, row)
		}
	}
	proc.Compute(flops)

	// The phase-ending allgather. (The alternation of the two phases
	// is what makes single-buffered shared segments safe: phase X's
	// synchronization orders every read of phase Y's previous epoch
	// before Y's next write.)
	return side.gather(proc, hier, rank, nRanks)
}

// rmse evaluates training RMSE over all materialized entries.
func rmse(ds *Dataset, userBuf, itemBuf mpi.Buf, k int) float64 {
	u := f64s(userBuf)
	v := f64s(itemBuf)
	sum, n := 0.0, 0
	for uu := range ds.UserIdx {
		urow := rowOf(u, k, uu)
		for t, j := range ds.UserIdx[uu] {
			d := ds.UserVal[uu][t] - dot(urow, rowOf(v, k, int(j)))
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// rowRNG / phaseRNG derive deterministic, partition-independent RNG
// streams.
func rowRNG(seed int64, iter int, name string, row int) *rand.Rand {
	h := seed*1_000_003 + int64(iter+2)*7_919
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource(h*1_000_033 + int64(row)))
}

func phaseRNG(seed int64, iter int, name string) *rand.Rand {
	return rowRNG(seed, iter, name, -7)
}
