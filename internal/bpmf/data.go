// Package bpmf implements Bayesian Probabilistic Matrix Factorization
// (Salakhutdinov & Mnih [26]) with the distributed Gibbs sampler of
// Vander Aa et al. [1], in the two flavors the paper benchmarks in
// Fig. 12: Ori_BPMF (pure-MPI allgather of the sampled latent blocks)
// and Hy_BPMF (the hybrid allgather of Fig. 4).
//
// The chembl_20 compound-on-target activity matrix is proprietary-ish
// and external; experiments here run on a synthetic dataset with the
// same shape characteristics (a tall sparse matrix with power-law-ish
// row degrees and low-rank structure plus noise), which preserves the
// communication pattern — two allgathers of latent feature blocks per
// Gibbs iteration — that Fig. 12 measures.
package bpmf

import (
	"math/rand"
)

// Dataset is a sparse users x items rating matrix in both CSR (by user)
// and CSC (by item) form. Shape metadata (degrees) is always present;
// the actual indices/values are materialized only when real sampling is
// requested, so size-only performance runs stay cheap at scale.
type Dataset struct {
	Users, Items int
	NNZ          int

	UserDeg []int // ratings per user
	ItemDeg []int // ratings per item

	// Materialized entries (nil when shape-only).
	UserIdx [][]int32   // item ids per user
	UserVal [][]float64 // ratings per user
	ItemIdx [][]int32   // user ids per item
	ItemVal [][]float64 // ratings per item
}

// Materialized reports whether the entries exist.
func (d *Dataset) Materialized() bool { return d.UserIdx != nil }

// Synthetic builds a deterministic chembl_20-shaped dataset. Each user
// (compound) gets a degree drawn from a heavy-tailed distribution with
// the given mean; ratings follow a rank-`trueK` model plus Gaussian
// noise so the sampler has real structure to recover.
func Synthetic(users, items, avgDeg int, seed int64, materialize bool) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Users:   users,
		Items:   items,
		UserDeg: make([]int, users),
		ItemDeg: make([]int, items),
	}

	// Heavy-tailed degrees: geometric-ish with a power-law bump, at
	// least one rating each so no row is empty.
	degs := make([]int, users)
	for u := range degs {
		deg := 1
		for deg < avgDeg*8 && rng.Float64() < 1-1/float64(avgDeg) {
			deg++
		}
		if r := rng.Float64(); r < 0.02 {
			deg *= 4 // a few promiscuous compounds
		}
		if deg > items {
			deg = items
		}
		degs[u] = deg
		d.UserDeg[u] = deg
		d.NNZ += deg
	}

	// Item assignment: preferential-ish, via a squared-uniform skew.
	pickItem := func() int32 {
		f := rng.Float64()
		return int32(float64(items-1) * f * f)
	}

	if !materialize {
		// Shape-only: distribute degrees over items the same way so
		// ItemDeg is consistent, but store no entries.
		for u := 0; u < users; u++ {
			for t := 0; t < degs[u]; t++ {
				d.ItemDeg[pickItem()]++
			}
		}
		return d
	}

	const trueK = 4
	uTrue := make([][]float64, users)
	for u := range uTrue {
		uTrue[u] = normVec(trueK, rng)
	}
	vTrue := make([][]float64, items)
	for j := range vTrue {
		vTrue[j] = normVec(trueK, rng)
	}

	d.UserIdx = make([][]int32, users)
	d.UserVal = make([][]float64, users)
	d.ItemIdx = make([][]int32, items)
	d.ItemVal = make([][]float64, items)
	for u := 0; u < users; u++ {
		seen := map[int32]bool{}
		d.UserIdx[u] = make([]int32, 0, degs[u])
		d.UserVal[u] = make([]float64, 0, degs[u])
		for t := 0; t < degs[u]; t++ {
			j := pickItem()
			for seen[j] {
				j = (j + 1) % int32(items)
			}
			seen[j] = true
			r := dot(uTrue[u], vTrue[j]) + 0.3*rng.NormFloat64()
			d.UserIdx[u] = append(d.UserIdx[u], j)
			d.UserVal[u] = append(d.UserVal[u], r)
			d.ItemIdx[j] = append(d.ItemIdx[j], int32(u))
			d.ItemVal[j] = append(d.ItemVal[j], r)
			d.ItemDeg[j]++
		}
	}
	return d
}

func normVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.7
	}
	return v
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Share splits count rows over parts, returning the [lo, hi) range of
// part p — the contiguous block distribution both BPMF flavors use.
func Share(count, parts, p int) (lo, hi int) {
	base := count / parts
	extra := count % parts
	lo = p*base + min(p, extra)
	hi = lo + base
	if p < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
