package bpmf

import (
	"fmt"
	"math/rand"

	"repro/internal/la"
)

// Gibbs-sampling machinery: the Normal-Wishart hyperparameter draws and
// the per-row conditional draws of BPMF [26]. All draws are seeded by
// (seed, iteration, phase, row), never by rank, so a run partitioned
// over any number of processes produces bit-identical samples — the
// property the pure-vs-hybrid equivalence tests rely on.

const (
	alphaPrec = 2.0 // observation precision (paper-standard)
	beta0     = 2.0 // Normal-Wishart prior strength
)

// hyper is one phase's sampled hyperparameter set.
type hyper struct {
	mu     []float64 // K
	lambda *la.Mat   // K x K precision
	lmu    []float64 // lambda * mu, precomputed for the row draws
}

// rowMajor reads row r of an N x K latent matrix stored as a flat
// float64 slice.
func rowOf(m []float64, k, r int) []float64 { return m[r*k : (r+1)*k] }

// sampleHyper draws the Normal-Wishart conditional given the current
// latent matrix (flat N x K). Every rank calls it with the same inputs
// and seed and obtains the same draw.
func sampleHyper(latent []float64, n, k int, rng *rand.Rand) (hyper, error) {
	// Sufficient statistics.
	mean := make([]float64, k)
	for r := 0; r < n; r++ {
		row := rowOf(latent, k, r)
		for i := range mean {
			mean[i] += row[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	cov := la.NewMat(k, k)
	d := make([]float64, k)
	for r := 0; r < n; r++ {
		row := rowOf(latent, k, r)
		for i := range d {
			d[i] = row[i] - mean[i]
		}
		if err := la.SyrkUpper(cov, d); err != nil {
			return hyper{}, err
		}
	}

	// Posterior Normal-Wishart parameters (mu0 = 0, W0 = I, nu0 = k).
	nF := float64(n)
	betaStar := beta0 + nF
	nuStar := k + n
	wInv := la.Eye(k)
	if err := wInv.AddMat(cov); err != nil {
		return hyper{}, err
	}
	coef := beta0 * nF / betaStar
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			wInv.Add(i, j, coef*mean[i]*mean[j])
		}
	}
	wStar, err := la.InvSPD(wInv)
	if err != nil {
		return hyper{}, fmt.Errorf("bpmf: hyper W* inversion: %w", err)
	}
	lambda, err := la.SampleWishart(wStar, nuStar, rng)
	if err != nil {
		return hyper{}, fmt.Errorf("bpmf: Wishart draw: %w", err)
	}

	// mu ~ N(mu*, (betaStar * lambda)^-1).
	muStar := make([]float64, k)
	for i := range muStar {
		muStar[i] = nF * mean[i] / betaStar
	}
	covMu, err := la.InvSPD(lambda.Clone().Scale(betaStar))
	if err != nil {
		return hyper{}, fmt.Errorf("bpmf: mu covariance: %w", err)
	}
	mu, err := la.SampleMVN(muStar, covMu, rng)
	if err != nil {
		return hyper{}, err
	}
	lmu, err := la.MulVec(lambda, mu)
	if err != nil {
		return hyper{}, err
	}
	return hyper{mu: mu, lambda: lambda, lmu: lmu}, nil
}

// sampleRow draws one row's conditional: given the other side's latent
// matrix `other` (flat, K columns), the row's observed column indices
// and values, and the phase hyperparameters.
func sampleRow(h hyper, other []float64, k int, idx []int32, val []float64, rng *rand.Rand) ([]float64, error) {
	prec := h.lambda.Clone()
	b := make([]float64, k)
	copy(b, h.lmu)
	for t, j := range idx {
		o := rowOf(other, k, int(j))
		for i := 0; i < k; i++ {
			b[i] += alphaPrec * val[t] * o[i]
			for c := 0; c < k; c++ {
				prec.Add(i, c, alphaPrec*o[i]*o[c])
			}
		}
	}
	l, err := la.Cholesky(prec)
	if err != nil {
		return nil, fmt.Errorf("bpmf: row precision not SPD: %w", err)
	}
	y, err := la.SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	mean, err := la.SolveUpperT(l, y)
	if err != nil {
		return nil, err
	}
	// Sample = mean + L^-T z (covariance = prec^-1).
	z := make([]float64, k)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	dev, err := la.SolveUpperT(l, z)
	if err != nil {
		return nil, err
	}
	for i := range mean {
		mean[i] += dev[i]
	}
	return mean, nil
}

// rowFlops is the virtual-compute charge for sampling one row with the
// given degree: the Cholesky (k^3/3), the rank-1 accumulations
// (deg * (k^2 + k)), the solves (~3k^2), plus a fixed per-row library
// overhead (RNG, small-matrix handling, probit bookkeeping in the real
// code) that dominates wall time at chembl-like k — the calibrationknob
// recorded in EXPERIMENTS.md.
func rowFlops(k, deg int, overhead float64) float64 {
	kf := float64(k)
	return kf*kf*kf/3 + float64(deg)*(kf*kf+kf) + 3*kf*kf + overhead
}

// hyperFlops is the virtual-compute charge of the hyperparameter draw
// over an n x k latent matrix (covariance accumulation dominates).
func hyperFlops(n, k int) float64 {
	kf := float64(k)
	return float64(n)*(kf*kf+kf) + 10*kf*kf*kf
}
