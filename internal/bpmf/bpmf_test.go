package bpmf

import (
	"fmt"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func worldFor(t *testing.T, nodeSizes []int, real bool) *mpi.World {
	t.Helper()
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		t.Fatal(err)
	}
	var opts []mpi.Option
	if real {
		opts = append(opts, mpi.WithRealData())
	}
	w, err := mpi.NewWorld(sim.HazelHenCray(), topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallCfg(hy, real bool) Config {
	return Config{
		Users: 96, Items: 48, K: 4, AvgDeg: 6, Iters: 3,
		Seed: 11, Hybrid: hy, Real: real, RowOverheadFlops: 1e4,
	}
}

func TestSyntheticDataset(t *testing.T) {
	ds := Synthetic(100, 40, 5, 3, true)
	if !ds.Materialized() {
		t.Fatal("materialize flag ignored")
	}
	if ds.Users != 100 || ds.Items != 40 {
		t.Fatalf("dims %dx%d", ds.Users, ds.Items)
	}
	if ds.NNZ < 100 {
		t.Errorf("NNZ = %d, want >= users", ds.NNZ)
	}
	// CSR/CSC must agree.
	totU, totI := 0, 0
	for u := range ds.UserIdx {
		totU += len(ds.UserIdx[u])
		if len(ds.UserIdx[u]) != ds.UserDeg[u] {
			t.Errorf("user %d deg mismatch", u)
		}
	}
	for j := range ds.ItemIdx {
		totI += len(ds.ItemIdx[j])
		if len(ds.ItemIdx[j]) != ds.ItemDeg[j] {
			t.Errorf("item %d deg mismatch", j)
		}
	}
	if totU != ds.NNZ || totI != ds.NNZ {
		t.Errorf("entry counts: user %d item %d nnz %d", totU, totI, ds.NNZ)
	}
	// Determinism.
	ds2 := Synthetic(100, 40, 5, 3, true)
	if ds2.NNZ != ds.NNZ || ds2.UserVal[0][0] != ds.UserVal[0][0] {
		t.Error("dataset not reproducible")
	}
	// Shape-only mode carries degrees but no entries.
	shape := Synthetic(100, 40, 5, 3, false)
	if shape.Materialized() {
		t.Error("shape-only dataset materialized")
	}
	if shape.NNZ != ds.NNZ {
		t.Error("shape-only NNZ differs")
	}
}

func TestShare(t *testing.T) {
	// Shares must partition [0, count) exactly.
	for _, tc := range []struct{ count, parts int }{{10, 3}, {7, 7}, {100, 8}, {5, 1}} {
		covered := 0
		prevHi := 0
		for p := 0; p < tc.parts; p++ {
			lo, hi := Share(tc.count, tc.parts, p)
			if lo != prevHi {
				t.Errorf("Share(%d,%d,%d): lo %d != prev hi %d", tc.count, tc.parts, p, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.count || prevHi != tc.count {
			t.Errorf("Share(%d,%d) covers %d", tc.count, tc.parts, covered)
		}
	}
}

func TestBPMFConvergesAndMatchesAcrossFlavors(t *testing.T) {
	// The Gibbs sampler must (a) reduce training RMSE and (b) produce
	// bit-identical samples in the pure and hybrid flavors.
	var checksums [2]float64
	var lastRMSE [2]float64
	for i, hy := range []bool{false, true} {
		w := worldFor(t, []int{4, 4}, true)
		res, err := Run(w, smallCfg(hy, true))
		if err != nil {
			t.Fatalf("hybrid=%v: %v", hy, err)
		}
		if len(res.RMSE) != 3 {
			t.Fatalf("hybrid=%v: got %d RMSE points", hy, len(res.RMSE))
		}
		if res.RMSE[len(res.RMSE)-1] >= res.RMSE[0] {
			t.Errorf("hybrid=%v: RMSE did not decrease: %v", hy, res.RMSE)
		}
		checksums[i] = res.Checksum
		lastRMSE[i] = res.RMSE[len(res.RMSE)-1]
	}
	if checksums[0] != checksums[1] {
		t.Errorf("pure and hybrid samples differ: %v vs %v", checksums[0], checksums[1])
	}
	if lastRMSE[0] != lastRMSE[1] {
		t.Errorf("pure and hybrid RMSE differ: %v vs %v", lastRMSE[0], lastRMSE[1])
	}
}

func TestBPMFPartitionInvariance(t *testing.T) {
	// The same configuration on different rank counts must sample the
	// same values (RNG streams are row-keyed, not rank-keyed).
	var sums []float64
	for _, shape := range [][]int{{4}, {2, 2}, {8}} {
		w := worldFor(t, shape, true)
		cfg := smallCfg(true, true)
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Checksum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("samples depend on partitioning: %v", sums)
	}
}

func TestBPMFAllSyncModes(t *testing.T) {
	for _, mode := range []hybrid.SyncMode{hybrid.SyncBarrier, hybrid.SyncP2P, hybrid.SyncSharedFlags} {
		t.Run(mode.String(), func(t *testing.T) {
			w := worldFor(t, []int{3, 3}, true)
			cfg := smallCfg(true, true)
			cfg.Sync = mode
			res, err := Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.RMSE[len(res.RMSE)-1] >= res.RMSE[0] {
				t.Errorf("%v: RMSE did not decrease: %v", mode, res.RMSE)
			}
		})
	}
}

func TestBPMFModelMode(t *testing.T) {
	// Size-only worlds charge time without data.
	w := worldFor(t, []int{12, 12}, false)
	cfg := smallCfg(false, false)
	cfg.Users, cfg.Items = 2400, 480
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("no virtual time charged")
	}
	if res.RMSE != nil {
		t.Error("RMSE produced without real data")
	}
}

func TestBPMFHybridBeatsPureAtScale(t *testing.T) {
	// The Fig. 12 direction: Ori/Hy ratio above 1 on a multi-node run.
	shape := make([]int, 4)
	for i := range shape {
		shape[i] = 12
	}
	times := map[bool]sim.Time{}
	for _, hy := range []bool{false, true} {
		w := worldFor(t, shape, false)
		cfg := smallCfg(hy, false)
		cfg.Users, cfg.Items = 4800, 960
		cfg.RowOverheadFlops = 1e5
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[hy] = res.Makespan
	}
	if times[true] >= times[false] {
		t.Errorf("hybrid (%v) should beat pure (%v) at 4x12 ranks", times[true], times[false])
	}
}

func TestBPMFValidation(t *testing.T) {
	w := worldFor(t, []int{4}, false)
	bad := []Config{
		{Users: 0, Items: 10, K: 2, AvgDeg: 2, Iters: 1},
		{Users: 10, Items: 10, K: 0, AvgDeg: 2, Iters: 1},
		{Users: 10, Items: 10, K: 2, AvgDeg: 0, Iters: 1},
		{Users: 10, Items: 10, K: 2, AvgDeg: 2, Iters: 0},
		{Users: 2, Items: 10, K: 2, AvgDeg: 2, Iters: 1},
		{Users: 10, Items: 10, K: 2, AvgDeg: 2, Iters: 1, Real: true},
	}
	for i, cfg := range bad {
		if _, err := Run(w, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestBPMFDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		w := worldFor(t, []int{6, 6}, false)
		cfg := smallCfg(true, false)
		cfg.Users, cfg.Items = 1200, 240
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestRowFlopsMonotone(t *testing.T) {
	if rowFlops(8, 10, 0) <= rowFlops(8, 1, 0) {
		t.Error("rowFlops not monotone in degree")
	}
	if rowFlops(16, 1, 0) <= rowFlops(4, 1, 0) {
		t.Error("rowFlops not monotone in K")
	}
	if hyperFlops(100, 8) <= hyperFlops(10, 8) {
		t.Error("hyperFlops not monotone in rows")
	}
	if rowFlops(4, 1, 5e5)-rowFlops(4, 1, 0) != 5e5 {
		t.Error("overhead not additive")
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := rowRNG(1, 0, "items", 5).Float64()
	b := rowRNG(1, 0, "items", 6).Float64()
	c := rowRNG(1, 0, "users", 5).Float64()
	d := rowRNG(1, 1, "items", 5).Float64()
	vals := []float64{a, b, c, d}
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[i] == vals[j] {
				t.Errorf("streams %d and %d collide", i, j)
			}
		}
	}
	if x, y := rowRNG(1, 0, "items", 5).Float64(), rowRNG(1, 0, "items", 5).Float64(); x != y {
		t.Error("stream not reproducible")
	}
}

func TestRoundUp(t *testing.T) {
	cases := [][3]int{{10, 4, 12}, {12, 4, 12}, {1, 7, 7}}
	for _, c := range cases {
		if got := roundUp(c[0], c[1]); got != c[2] {
			t.Errorf("roundUp(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestBPMFIrregularTopology(t *testing.T) {
	// Mirrors the Fig. 10 situation at application level: irregularly
	// populated nodes must still work in both flavors.
	for _, hy := range []bool{false, true} {
		t.Run(fmt.Sprintf("hybrid=%v", hy), func(t *testing.T) {
			w := worldFor(t, []int{3, 2, 1}, true)
			res, err := Run(w, smallCfg(hy, true))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.RMSE) == 0 {
				t.Error("no RMSE recorded")
			}
		})
	}
}
