package npb

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// runEP is the embarrassingly-parallel skeleton (NPB EP): each rank
// generates pseudo-random pairs, counts Gaussian deviates by the
// Marsaglia polar method, and one allreduce per iteration combines the
// per-ring counts — almost pure compute with a single small collective,
// the opposite extreme from FT.
//
// Verification (real mode): the acceptance rate of the polar method
// must approach pi/4, and the combined counts must equal the sum of the
// per-rank counts (checked through a second, independent reduction).
func runEP(p *mpi.Proc, cfg Config) (bool, error) {
	red, err := newAllreducer(p, cfg.Hybrid, 3)
	if err != nil {
		return false, err
	}
	n := cfg.N
	rng := p.RNG(4321)

	okAll := true
	for it := 0; it < cfg.Iters; it++ {
		accepted, produced := 0, 0
		if cfg.Verify {
			for i := 0; i < n; i++ {
				x := 2*rng.Float64() - 1
				y := 2*rng.Float64() - 1
				if x*x+y*y <= 1 {
					accepted++
				}
				produced++
			}
		}
		// ~10 flops per trial pair.
		p.Compute(float64(10 * n))

		sums, err := red.sum(p, []float64{float64(accepted), float64(produced), 1})
		if err != nil {
			return false, err
		}
		if cfg.Verify {
			totalAcc, totalProd, ranks := sums[0], sums[1], sums[2]
			if int(ranks) != p.Size() {
				return false, fmt.Errorf("npb: EP rank count reduced to %v", ranks)
			}
			if totalProd != float64(p.Size()*n) {
				return false, fmt.Errorf("npb: EP produced %v, want %d", totalProd, p.Size()*n)
			}
			rate := totalAcc / totalProd
			if math.Abs(rate-math.Pi/4) > 0.05 {
				okAll = false
			}
		}
	}
	if cfg.Verify && !okAll {
		return false, fmt.Errorf("npb: EP acceptance rate off pi/4")
	}
	return cfg.Verify, nil
}
