// Package npb provides three NPB-style kernel skeletons — CG
// (allreduce-dominated), FT (alltoall-dominated) and IS
// (alltoall+allgather) — in pure-MPI and hybrid MPI+MPI flavors.
//
// The paper motivates its collectives work with "a spectrum of
// scientific applications or kernels" citing the NAS Parallel
// Benchmarks [21]; these kernels exercise the hybrid collective family
// (Allreducer, Alltoaller, Allgatherer) on the communication skeletons
// of that suite, with real data and verifiable results at test scale
// and modeled compute at benchmark scale.
package npb

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Kernel identifies one NPB-style kernel.
type Kernel int

const (
	// CG is the conjugate-gradient skeleton: a 1-D Laplacian solve
	// whose iterations mix halo point-to-point with two scalar
	// allreduces (the dot products).
	CG Kernel = iota
	// FT is the spectral-transform skeleton: repeated all-to-all
	// transposes of a distributed matrix with local compute between.
	FT
	// IS is the integer-sort skeleton: a bucket exchange (alltoall)
	// followed by an allgather of bucket boundaries.
	IS
	// EP is the embarrassingly-parallel skeleton: heavy local compute
	// with one small allreduce per iteration.
	EP
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case CG:
		return "CG"
	case FT:
		return "FT"
	case IS:
		return "IS"
	case EP:
		return "EP"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Config describes one kernel run.
type Config struct {
	Kernel Kernel
	// N is the per-rank problem size (rows for CG, matrix columns
	// per rank for FT, keys per rank for IS).
	N int
	// Iters is the number of kernel iterations.
	Iters int
	// Hybrid selects the hybrid MPI+MPI collectives.
	Hybrid bool
	// Verify runs with real data and checks the kernel's invariant
	// (requires a real-data world).
	Verify bool
}

// Result carries timing and verification.
type Result struct {
	Makespan sim.Time
	Verified bool
}

// Run executes the kernel on the world.
func Run(w *mpi.World, cfg Config) (Result, error) {
	switch {
	case cfg.N <= 0:
		return Result{}, fmt.Errorf("npb: N = %d", cfg.N)
	case cfg.Iters <= 0:
		return Result{}, fmt.Errorf("npb: Iters = %d", cfg.Iters)
	case cfg.Verify && !w.RealData():
		return Result{}, fmt.Errorf("npb: Verify needs a world with real data")
	}
	w.ResetClocks()
	okAll := make([]bool, w.Size())
	err := w.Run(func(p *mpi.Proc) error {
		var ok bool
		var err error
		switch cfg.Kernel {
		case CG:
			ok, err = runCG(p, cfg)
		case FT:
			ok, err = runFT(p, cfg)
		case IS:
			ok, err = runIS(p, cfg)
		case EP:
			ok, err = runEP(p, cfg)
		default:
			err = fmt.Errorf("npb: unknown kernel %v", cfg.Kernel)
		}
		okAll[p.Rank()] = ok
		return err
	})
	if err != nil {
		return Result{}, err
	}
	verified := cfg.Verify
	for _, ok := range okAll {
		verified = verified && ok
	}
	return Result{Makespan: w.MaxClock(), Verified: verified}, nil
}

// allreducer abstracts the two allreduce flavors behind one call.
type allreducer struct {
	comm *mpi.Comm
	hy   *hybrid.Allreducer
	node *mpi.Comm // for the hybrid epoch fence
	tmpS mpi.Buf
	tmpR mpi.Buf
}

func newAllreducer(p *mpi.Proc, hybridMode bool, count int) (*allreducer, error) {
	world := p.CommWorld()
	a := &allreducer{comm: world}
	if hybridMode {
		ctx, err := hybrid.New(world)
		if err != nil {
			return nil, err
		}
		red, err := ctx.NewAllreducer(count, mpi.Float64)
		if err != nil {
			return nil, err
		}
		a.hy = red
		a.node = ctx.Node()
		return a, nil
	}
	a.tmpS = p.World().NewBuf(8 * count)
	a.tmpR = p.World().NewBuf(8 * count)
	return a, nil
}

// sum reduces vals element-wise across ranks (returns a fresh slice).
func (a *allreducer) sum(p *mpi.Proc, vals []float64) ([]float64, error) {
	if a.hy != nil {
		a.hy.Mine().PutFloat64s(0, vals)
		if err := a.hy.Allreduce(mpi.OpSum); err != nil {
			return nil, err
		}
		out := make([]float64, len(vals))
		a.hy.Result().CopyFloat64s(out, 0)
		// Fence reads before the next epoch's writes.
		if err := a.node.Barrier(); err != nil {
			return nil, err
		}
		return out, nil
	}
	a.tmpS.PutFloat64s(0, vals)
	if err := coll.Allreduce(a.comm, a.tmpS, a.tmpR, len(vals), mpi.Float64, mpi.OpSum); err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	a.tmpR.CopyFloat64s(out, 0)
	return out, nil
}
