package npb

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func worldFor(t *testing.T, nodeSizes []int, real bool) *mpi.World {
	t.Helper()
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		t.Fatal(err)
	}
	var opts []mpi.Option
	if real {
		opts = append(opts, mpi.WithRealData())
	}
	w, err := mpi.NewWorld(sim.HazelHenCray(), topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestKernelString(t *testing.T) {
	if CG.String() != "CG" || FT.String() != "FT" || IS.String() != "IS" || EP.String() != "EP" {
		t.Error("kernel names wrong")
	}
	if Kernel(9).String() == "" {
		t.Error("unknown kernel name empty")
	}
}

func TestKernelsVerify(t *testing.T) {
	for _, kernel := range []Kernel{CG, FT, IS, EP} {
		for _, hy := range []bool{false, true} {
			for _, shape := range [][]int{{4}, {3, 3}, {4, 4, 2}} {
				t.Run(fmt.Sprintf("%v/hybrid=%v/%v", kernel, hy, shape), func(t *testing.T) {
					w := worldFor(t, shape, true)
					cfg := Config{Kernel: kernel, N: 64, Iters: 4, Hybrid: hy, Verify: true}
					res, err := Run(w, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Verified {
						t.Errorf("%v hybrid=%v not verified", kernel, hy)
					}
					if res.Makespan <= 0 {
						t.Error("no virtual time charged")
					}
				})
			}
		}
	}
}

func TestKernelsModelMode(t *testing.T) {
	for _, kernel := range []Kernel{CG, FT, IS, EP} {
		t.Run(kernel.String(), func(t *testing.T) {
			w := worldFor(t, []int{12, 12}, false)
			res, err := Run(w, Config{Kernel: kernel, N: 256, Iters: 3, Hybrid: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan <= 0 {
				t.Error("no virtual time charged")
			}
			if res.Verified {
				t.Error("verified without real data")
			}
		})
	}
}

func TestNPBValidation(t *testing.T) {
	w := worldFor(t, []int{4}, false)
	if _, err := Run(w, Config{Kernel: CG, N: 0, Iters: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(w, Config{Kernel: CG, N: 8, Iters: 0}); err == nil {
		t.Error("Iters=0 accepted")
	}
	if _, err := Run(w, Config{Kernel: CG, N: 8, Iters: 1, Verify: true}); err == nil {
		t.Error("verify on size-only world accepted")
	}
	if _, err := Run(w, Config{Kernel: Kernel(9), N: 8, Iters: 1}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	run := func() sim.Time {
		w := worldFor(t, []int{6, 6}, false)
		res, err := Run(w, Config{Kernel: FT, N: 128, Iters: 3, Hybrid: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("FT nondeterministic: %v vs %v", a, b)
	}
}

func TestHybridHelpsAllreduceHeavyKernel(t *testing.T) {
	// CG's scalar allreduces are tiny; the hybrid flavor's advantage
	// is modest but its cost must stay in the same ballpark (the
	// kernels mainly demonstrate composition, not a new headline).
	shape := []int{24, 24}
	times := map[bool]sim.Time{}
	for _, hy := range []bool{false, true} {
		w := worldFor(t, shape, false)
		res, err := Run(w, Config{Kernel: CG, N: 512, Iters: 8, Hybrid: hy})
		if err != nil {
			t.Fatal(err)
		}
		times[hy] = res.Makespan
	}
	if times[true] > times[false]*2 {
		t.Errorf("hybrid CG (%v) should not be more than 2x pure (%v)", times[true], times[false])
	}
}
