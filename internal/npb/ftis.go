package npb

import (
	"fmt"
	"sort"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
)

// runFT is the spectral-method skeleton: a P x (P*N) matrix of complex
// values (16 bytes each) distributed by block rows is repeatedly
// "transformed" (modeled local FFT compute) and transposed with an
// all-to-all, the dominant pattern of NPB FT.
//
// Verification (real mode): after one transpose, block (i, j) must hold
// what rank j wrote for destination i.
func runFT(p *mpi.Proc, cfg Config) (bool, error) {
	world := p.CommWorld()
	nRanks := world.Size()
	blockBytes := 16 * cfg.N // complex128 per (src,dst) pair

	var hyA *hybrid.Alltoaller
	var hctx *hybrid.Ctx
	var send, recv mpi.Buf
	var err error
	if cfg.Hybrid {
		if hctx, err = hybrid.New(world); err != nil {
			return false, err
		}
		if hyA, err = hctx.NewAlltoaller(blockBytes); err != nil {
			return false, err
		}
		send, recv = hyA.MineSend(), hyA.MineRecv()
	} else {
		send = p.World().NewBuf(blockBytes * nRanks)
		recv = p.World().NewBuf(blockBytes * nRanks)
	}

	ok := true
	for it := 0; it < cfg.Iters; it++ {
		// "FFT" the local slab: 5 N log N flops per butterfly pass.
		logN := 1
		for 1<<logN < cfg.N*nRanks {
			logN++
		}
		p.Compute(5 * float64(cfg.N*nRanks) * float64(logN) / float64(nRanks))

		// Tag the first element of every destination block.
		if cfg.Verify {
			for dstRank := 0; dstRank < nRanks; dstRank++ {
				send.Slice(dstRank*blockBytes, blockBytes).
					PutFloat64(0, float64(it*1_000_000+world.Rank()*1000+dstRank))
			}
		}

		if cfg.Hybrid {
			if err := hyA.Alltoall(); err != nil {
				return false, err
			}
		} else {
			if err := coll.Alltoall(world, send, recv, blockBytes); err != nil {
				return false, err
			}
		}

		if cfg.Verify {
			for srcRank := 0; srcRank < nRanks; srcRank++ {
				want := float64(it*1_000_000 + srcRank*1000 + world.Rank())
				got := recv.Slice(srcRank*blockBytes, blockBytes).Float64At(0)
				if got != want {
					return false, fmt.Errorf("npb: FT transpose wrong at iter %d src %d: %g != %g",
						it, srcRank, got, want)
				}
			}
		}
		// Epoch fence for the shared segments before rewriting.
		if cfg.Hybrid {
			if err := hctx.Node().Barrier(); err != nil {
				return false, err
			}
		}
	}
	return ok, nil
}

// runIS is the integer-sort skeleton: each rank holds N keys, buckets
// them by destination rank (keys are uniform over rank-aligned ranges),
// exchanges buckets with an all-to-all, sorts locally, and allgathers
// the per-rank extrema to check global order — NPB IS's communication
// mix.
func runIS(p *mpi.Proc, cfg Config) (bool, error) {
	world := p.CommWorld()
	nRanks := world.Size()
	rank := world.Rank()
	n := cfg.N

	// Bucket capacity: keys are near-uniform; leave a fat margin
	// (mean + ~10 sigma) so statistical excursions cannot overflow.
	capPer := 3*(n/nRanks) + 16
	blockBytes := 8 * (capPer + 1) // slot 0 holds the bucket length

	var hyA *hybrid.Alltoaller
	var hyG *hybrid.Allgatherer
	var hctx *hybrid.Ctx
	var send, recv mpi.Buf
	var err error
	if cfg.Hybrid {
		if hctx, err = hybrid.New(world); err != nil {
			return false, err
		}
		if hyA, err = hctx.NewAlltoaller(blockBytes); err != nil {
			return false, err
		}
		if hyG, err = hctx.NewAllgatherer(16); err != nil {
			return false, err
		}
		send, recv = hyA.MineSend(), hyA.MineRecv()
	} else {
		send = p.World().NewBuf(blockBytes * nRanks)
		recv = p.World().NewBuf(blockBytes * nRanks)
	}

	ok := true
	for it := 0; it < cfg.Iters; it++ {
		// Generate keys in [0, nRanks*1000) and bucket them.
		keyRange := 1000
		counts := make([]int, nRanks)
		if cfg.Verify || send.Real() {
			// Reset the count slots (buckets may shrink between
			// iterations).
			for dst := 0; dst < nRanks; dst++ {
				send.Slice(dst*blockBytes, blockBytes).PutFloat64(0, 0)
			}
			rng := p.RNG(int64(1000 + it))
			for i := 0; i < n; i++ {
				key := rng.Intn(nRanks * keyRange)
				dst := key / keyRange
				if counts[dst] >= capPer {
					return false, fmt.Errorf("npb: IS bucket %d overflow", dst)
				}
				blk := send.Slice(dst*blockBytes, blockBytes)
				counts[dst]++
				blk.PutFloat64(0, float64(counts[dst]))
				blk.PutFloat64(counts[dst], float64(key))
			}
		}
		p.Compute(float64(2 * n)) // bucketing passes

		if cfg.Hybrid {
			if err := hyA.Alltoall(); err != nil {
				return false, err
			}
		} else {
			if err := coll.Alltoall(world, send, recv, blockBytes); err != nil {
				return false, err
			}
		}

		// Collect and sort my keys.
		var mine []float64
		if cfg.Verify {
			for src := 0; src < nRanks; src++ {
				blk := recv.Slice(src*blockBytes, blockBytes)
				cnt := int(blk.Float64At(0))
				for i := 1; i <= cnt; i++ {
					mine = append(mine, blk.Float64At(i))
				}
			}
			sort.Float64s(mine)
		}
		p.Compute(float64(n) * 10) // sort cost ~ n log n

		// Allgather per-rank extrema and check global order.
		lo, hi := float64(rank*keyRange), float64(rank*keyRange)
		if len(mine) > 0 {
			lo, hi = mine[0], mine[len(mine)-1]
		}
		var extrema mpi.Buf
		if cfg.Hybrid {
			hyG.Mine().PutFloat64(0, lo)
			hyG.Mine().PutFloat64(1, hi)
			if err := hyG.Allgather(); err != nil {
				return false, err
			}
			extrema = hyG.Buffer()
		} else {
			sendE := mpi.FromFloat64s([]float64{lo, hi})
			extrema = p.World().NewBuf(16 * nRanks)
			h, err := coll.NewHier(world)
			if err != nil {
				return false, err
			}
			if err := h.Allgather(sendE, extrema, 16); err != nil {
				return false, err
			}
		}
		if cfg.Verify {
			for r := 1; r < nRanks; r++ {
				prevHi := extrema.Float64At((r-1)*2 + 1)
				curLo := extrema.Float64At(r * 2)
				if prevHi > curLo {
					return false, fmt.Errorf("npb: IS order violated between ranks %d and %d: %g > %g",
						r-1, r, prevHi, curLo)
				}
			}
			// My keys must be inside my range.
			if len(mine) > 0 && (mine[0] < float64(rank*keyRange) || mine[len(mine)-1] >= float64((rank+1)*keyRange)) {
				return false, fmt.Errorf("npb: IS rank %d keys out of range", rank)
			}
		}
		if cfg.Hybrid {
			if err := hctx.Node().Barrier(); err != nil {
				return false, err
			}
		}
	}
	return ok, nil
}
