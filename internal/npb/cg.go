package npb

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

const tagHalo = 1<<25 + 60

// runCG solves the 1-D diffusion-reaction system A x = b with unpreconditioned
// conjugate gradients: A is tridiagonal (4 on the diagonal, -1 off; diagonally dominant so a handful of iterations already contracts the residual),
// rows partitioned contiguously over ranks. Each iteration performs a
// halo exchange (two point-to-point messages), one matvec, two dot
// products (allreduces) and three AXPYs — the NPB CG communication
// skeleton.
//
// Verification (real mode): the residual norm after Iters iterations
// must be strictly below the initial one.
func runCG(p *mpi.Proc, cfg Config) (bool, error) {
	world := p.CommWorld()
	n := cfg.N // rows per rank
	nRanks := world.Size()
	rank := world.Rank()

	red, err := newAllreducer(p, cfg.Hybrid, 2)
	if err != nil {
		return false, err
	}

	// b = 1 everywhere; x = 0.
	x := make([]float64, n)
	r := make([]float64, n)
	d := make([]float64, n)
	for i := range r {
		r[i] = 1
		d[i] = 1
	}
	ad := make([]float64, n)

	// matvec computes ad = A d with halo exchange of the partition
	// boundary values.
	matvec := func() error {
		var left, right float64
		lb := mpi.FromFloat64s(d[:1])
		rb := mpi.FromFloat64s(d[n-1:])
		gl := mpi.Bytes(make([]byte, 8))
		gr := mpi.Bytes(make([]byte, 8))
		if rank > 0 {
			if _, err := world.Sendrecv(lb, rank-1, tagHalo, gl, rank-1, tagHalo); err != nil {
				return err
			}
			left = gl.Float64At(0)
		}
		if rank < nRanks-1 {
			if _, err := world.Sendrecv(rb, rank+1, tagHalo, gr, rank+1, tagHalo); err != nil {
				return err
			}
			right = gr.Float64At(0)
		}
		for i := 0; i < n; i++ {
			l, rr := left, right
			if i > 0 {
				l = d[i-1]
			}
			if i < n-1 {
				rr = d[i+1]
			}
			ad[i] = 4*d[i] - l - rr
		}
		p.Compute(float64(3 * n))
		return nil
	}

	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}

	r0 := 0.0
	sums, err := red.sum(p, []float64{dot(r, r), 0})
	if err != nil {
		return false, err
	}
	rr := sums[0]
	r0 = rr

	for it := 0; it < cfg.Iters; it++ {
		if err := matvec(); err != nil {
			return false, fmt.Errorf("npb: CG matvec: %w", err)
		}
		// One fused allreduce for d.Ad (and rr refresh slot).
		sums, err := red.sum(p, []float64{dot(d, ad), 0})
		if err != nil {
			return false, err
		}
		dAd := sums[0]
		if dAd == 0 {
			break
		}
		alpha := rr / dAd
		for i := 0; i < n; i++ {
			x[i] += alpha * d[i]
			r[i] -= alpha * ad[i]
		}
		p.Compute(float64(4 * n))
		sums, err = red.sum(p, []float64{dot(r, r), 0})
		if err != nil {
			return false, err
		}
		rrNew := sums[0]
		beta := rrNew / rr
		for i := 0; i < n; i++ {
			d[i] = r[i] + beta*d[i]
		}
		p.Compute(float64(2 * n))
		rr = rrNew
	}

	if !cfg.Verify {
		return false, nil
	}
	if !(rr < r0) || math.IsNaN(rr) {
		return false, fmt.Errorf("npb: CG residual did not drop: %g -> %g", r0, rr)
	}
	return true, nil
}
