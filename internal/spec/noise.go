package spec

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Noise is the declarative noise-and-fault block of a Query: the JSON
// form of sim.Noise. A nil (absent) block — or one whose every field is
// zero — means a clean world; Canonicalize rewrites the all-zero form
// to nil so that a query with an empty noise object fingerprints
// identically to one without the block.
type Noise struct {
	// Seed keys every noise draw; equal configs with equal seeds are
	// bit-identical, different seeds diverge.
	Seed int64 `json:"seed,omitempty"`
	// Jitter stretches each compute span and transfer by a factor drawn
	// uniformly from [1, 1+jitter). Must lie in [0, 16].
	Jitter float64 `json:"jitter,omitempty"`
	// Stragglers lists ranks slowed by StragglerFactor.
	Stragglers []int `json:"stragglers,omitempty"`
	// StragglerFactor is the compute slowdown of straggler ranks, in
	// [1, 1024]; required when stragglers is non-empty.
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
	// Congestion multiplies transfer costs per hop class, keyed by the
	// class name (self, shm, net, numa, socket, group); factors in
	// [1, 1024].
	Congestion map[string]float64 `json:"congestion,omitempty"`
	// Failures schedules rank deaths at virtual-time deadlines.
	Failures []Failure `json:"failures,omitempty"`
}

// Failure schedules the death of one rank (see sim.Failure).
type Failure struct {
	// Rank is the world rank that dies.
	Rank int `json:"rank"`
	// AtPs is the virtual-time deadline in picoseconds: the rank dies
	// at its first operation boundary with clock >= at_ps.
	AtPs int64 `json:"at_ps"`
}

// zero reports whether the block configures nothing.
func (n *Noise) zero() bool {
	return n.Seed == 0 && n.Jitter == 0 && len(n.Stragglers) == 0 &&
		n.StragglerFactor == 0 && len(n.Congestion) == 0 && len(n.Failures) == 0
}

// ToSim converts the block to the simulator's config. Nil-safe.
func (n *Noise) ToSim() (*sim.Noise, error) {
	if n == nil {
		return nil, nil
	}
	out := &sim.Noise{
		Seed:            n.Seed,
		Jitter:          n.Jitter,
		Stragglers:      append([]int(nil), n.Stragglers...),
		StragglerFactor: n.StragglerFactor,
	}
	if len(n.Congestion) > 0 {
		out.Congestion = make(map[sim.HopClass]float64, len(n.Congestion))
		for name, f := range n.Congestion {
			c, err := sim.ParseHopClass(name)
			if err != nil {
				return nil, fmt.Errorf("spec: noise congestion: %w", err)
			}
			out.Congestion[c] = f
		}
	}
	for _, fl := range n.Failures {
		out.Failures = append(out.Failures, sim.Failure{Rank: fl.Rank, At: sim.Time(fl.AtPs)})
	}
	return out, nil
}

// canonicalize validates the block against the topology's rank count
// and rewrites it into canonical form: stragglers sorted and deduped,
// failures sorted by (rank, time). encoding/json already emits map keys
// sorted, so Congestion needs no reordering. Returns the canonical
// block (nil when the input is nil or all-zero) — the caller stores the
// result back into the query.
func (n *Noise) canonicalize(ranks int) (*Noise, error) {
	if n == nil || n.zero() {
		return nil, nil
	}
	sn, err := n.ToSim()
	if err != nil {
		return nil, err
	}
	if err := sn.Validate(ranks); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	sn = sn.Clone() // sorts and dedupes
	c := &Noise{
		Seed:            sn.Seed,
		Jitter:          sn.Jitter,
		Stragglers:      sn.Stragglers,
		StragglerFactor: sn.StragglerFactor,
	}
	if len(sn.Congestion) > 0 {
		c.Congestion = make(map[string]float64, len(sn.Congestion))
		for cl, f := range sn.Congestion {
			c.Congestion[cl.String()] = f
		}
	}
	for _, fl := range sn.Failures {
		c.Failures = append(c.Failures, Failure{Rank: fl.Rank, AtPs: int64(fl.At)})
	}
	sort.Slice(c.Failures, func(i, j int) bool {
		if c.Failures[i].Rank != c.Failures[j].Rank {
			return c.Failures[i].Rank < c.Failures[j].Rank
		}
		return c.Failures[i].AtPs < c.Failures[j].AtPs
	})
	return c, nil
}

// BreaksSymmetry reports whether the block invalidates rank-symmetry
// folding (see sim.Noise.BreaksSymmetry). Nil-safe.
func (n *Noise) BreaksSymmetry() bool {
	if n == nil {
		return false
	}
	return n.Jitter > 0 || len(n.Stragglers) > 0 || len(n.Failures) > 0
}
