package spec_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/spec"
)

// poolWorld builds a small event-engine world for pool tests: shape
// tests only need Size() and the aborted/closed lifecycle, so the
// cheapest healthy world does.
func poolWorld(t testing.TB, topo *sim.Topology) func() (*mpi.World, error) {
	t.Helper()
	return func() (*mpi.World, error) {
		return mpi.NewWorldConfig(sim.Laptop(), topo, mpi.Config{Engine: sim.EngineEvent})
	}
}

func poolKey(topo *sim.Topology, fold int) spec.ShapeKey {
	return spec.ShapeKey{Machine: "laptop", Topo: topo, Engine: sim.EngineEvent, FoldUnit: fold}
}

func TestWorldPoolReuse(t *testing.T) {
	topo := sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2})
	p := spec.NewWorldPool(spec.PoolConfig{MaxIdle: -1})
	defer p.Close()
	key := poolKey(topo, 0)

	a, err := p.Checkout(key, poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(a)
	b, err := p.Checkout(key, poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	if b.W != a.W {
		t.Error("second checkout of the same shape built a new world")
	}
	// A different shape must not be served by the parked world.
	c, err := p.Checkout(poolKey(topo, 4), poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	if c.W == a.W {
		t.Error("checkout crossed shape keys")
	}
	p.Checkin(b)
	p.Checkin(c)

	s := p.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", s.Hits, s.Misses)
	}
	if s.IdleWorlds != 2 || s.IdleRanks != 16 || s.Leased != 0 {
		t.Errorf("residency = %+v", s)
	}
	if got := s.HitRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("hit ratio = %g", got)
	}
}

func TestWorldPoolEvictsLRUOverBudget(t *testing.T) {
	small := sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2}) // 8 ranks
	p := spec.NewWorldPool(spec.PoolConfig{MaxRanks: 12, MaxIdle: -1})
	defer p.Close()

	a, err := p.Checkout(poolKey(small, 0), poolWorld(t, small))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Checkout(poolKey(small, 4), poolWorld(t, small))
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(a) // 8 idle ranks, under budget
	p.Checkin(b) // 16 idle ranks: a (least recent) must go
	s := p.Stats()
	if s.Evicted != 1 || s.IdleWorlds != 1 || s.IdleRanks != 8 {
		t.Errorf("after overflow: %+v", s)
	}
	if !a.W.Closed() {
		t.Error("evicted world was not closed")
	}
	if a.W == b.W || b.W.Closed() {
		t.Error("most recently used world did not survive eviction")
	}
}

func TestWorldPoolOversizedWorldStillParks(t *testing.T) {
	big := sim.MustUniformHier(8, sim.LevelDim{Name: "node", Arity: 4}) // 32 ranks
	p := spec.NewWorldPool(spec.PoolConfig{MaxRanks: 4, MaxIdle: -1})
	defer p.Close()
	a, err := p.Checkout(poolKey(big, 0), poolWorld(t, big))
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(a)
	// The budget bounds variety, not a single world: the lone world
	// parks even though it exceeds MaxRanks on its own.
	if s := p.Stats(); s.IdleWorlds != 1 || s.Evicted != 0 {
		t.Errorf("oversized lone world: %+v", s)
	}
	b, err := p.Checkout(poolKey(big, 0), poolWorld(t, big))
	if err != nil {
		t.Fatal(err)
	}
	if b.W != a.W {
		t.Error("oversized world was not reused")
	}
	p.Checkin(b)
}

func TestWorldPoolRecyclesAtCheckoutCap(t *testing.T) {
	topo := sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2})
	p := spec.NewWorldPool(spec.PoolConfig{MaxCheckouts: 2, MaxIdle: -1})
	defer p.Close()
	key := poolKey(topo, 0)

	a, _ := p.Checkout(key, poolWorld(t, topo))
	p.Checkin(a)
	b, _ := p.Checkout(key, poolWorld(t, topo)) // second use: at the cap
	if b.W != a.W {
		t.Fatal("expected a pool hit")
	}
	p.Checkin(b)
	s := p.Stats()
	if s.Recycled != 1 || s.IdleWorlds != 0 {
		t.Errorf("after cap: %+v", s)
	}
	if !b.W.Closed() {
		t.Error("recycled world was not closed")
	}
}

func TestWorldPoolDiscardsAbortedWorlds(t *testing.T) {
	topo := sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2})
	p := spec.NewWorldPool(spec.PoolConfig{MaxIdle: -1})
	defer p.Close()
	key := poolKey(topo, 0)

	a, err := p.Checkout(key, poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	a.W.Abort()
	p.Checkin(a)
	s := p.Stats()
	if s.Discarded != 1 || s.IdleWorlds != 0 {
		t.Errorf("after aborted check-in: %+v", s)
	}
	if !a.W.Closed() {
		t.Error("discarded world was not closed")
	}
}

func TestWorldPoolReapsIdleWorlds(t *testing.T) {
	topo := sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2})
	p := spec.NewWorldPool(spec.PoolConfig{MaxIdle: 100 * time.Millisecond})
	defer p.Close()
	a, err := p.Checkout(poolKey(topo, 0), poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(a)
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Reaped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle world never reaped: %+v", p.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := p.Stats(); s.IdleWorlds != 0 {
		t.Errorf("after reap: %+v", s)
	}
	if !a.W.Closed() {
		t.Error("reaped world was not closed")
	}
}

func TestWorldPoolCloseRetiresEverything(t *testing.T) {
	topo := sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2})
	p := spec.NewWorldPool(spec.PoolConfig{})
	key := poolKey(topo, 0)

	parked, err := p.Checkout(key, poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	leased, err := p.Checkout(key, poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(parked)

	p.Close()
	if !parked.W.Closed() {
		t.Error("Close left an idle world open")
	}
	// The world still checked out at Close time is closed when its
	// holder checks it back in.
	if leased.W.Closed() {
		t.Error("Close closed a world it does not own")
	}
	p.Checkin(leased)
	if !leased.W.Closed() {
		t.Error("check-in on a closed pool did not retire the world")
	}
	s := p.Stats()
	if s.IdleWorlds != 0 || s.IdleRanks != 0 || s.Leased != 0 {
		t.Errorf("after close: %+v", s)
	}
	// A late checkout still works — it just never gets a warm world.
	late, err := p.Checkout(key, poolWorld(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(late)
	if !late.W.Closed() {
		t.Error("post-close checkout leaked a world")
	}
	p.Close() // idempotent
}

// TestWorldPoolConcurrentHammer drives checkout/checkin/eviction from
// many goroutines at once with a rank budget small enough that parking
// constantly evicts, plus a fast reaper and a low checkout cap — every
// retirement path races every other. Run under -race this is the
// pool's memory-safety proof; the accounting invariants are asserted
// at the end.
func TestWorldPoolConcurrentHammer(t *testing.T) {
	topos := []*sim.Topology{
		sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 2}),
		sim.MustUniformHier(4, sim.LevelDim{Name: "node", Arity: 4}),
		sim.MustUniformHier(8, sim.LevelDim{Name: "node", Arity: 2}),
	}
	p := spec.NewWorldPool(spec.PoolConfig{
		MaxRanks:     24, // two small worlds at most
		MaxIdle:      100 * time.Millisecond,
		MaxCheckouts: 4,
	})
	const goroutines = 16
	const iters = 40
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				topo := topos[(g+i)%len(topos)]
				pw, err := p.Checkout(poolKey(topo, 0), poolWorld(t, topo))
				if err != nil {
					errs[g] = fmt.Errorf("iter %d: %w", i, err)
					return
				}
				if pw.W.Closed() {
					errs[g] = fmt.Errorf("iter %d: checkout returned a closed world", i)
					return
				}
				// Exercise the world while holding it so a racing
				// eviction/reap of a leased world would be caught.
				if err := pw.W.Run(func(proc *mpi.Proc) error { return nil }); err != nil {
					errs[g] = fmt.Errorf("iter %d: %w", i, err)
					return
				}
				if i%7 == 0 {
					pw.W.Abort() // force the discard path too
				}
				p.Checkin(pw)
				if i%5 == 0 {
					_ = p.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	s := p.Stats()
	if s.Leased != 0 {
		t.Errorf("leaked leases: %+v", s)
	}
	if s.Hits+s.Misses != goroutines*iters {
		t.Errorf("checkout accounting: %+v", s)
	}
	if s.IdleRanks > 24+32 { // budget plus one oversized parked world
		t.Errorf("idle ranks over budget: %+v", s)
	}
	p.Close()
	if s := p.Stats(); s.IdleWorlds != 0 || s.IdleRanks != 0 {
		t.Errorf("after close: %+v", s)
	}
}
