package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/coll"
	"repro/internal/sim"
)

// Level is one uniform nesting level of a Topology stack: Arity groups
// of this level per group of the next (outer) level; the outermost
// level's Arity is its total group count (sim.LevelDim).
type Level struct {
	// Name is the level's name; exactly one level must be "node" (the
	// shared-memory boundary).
	Name string `json:"name"`
	// Arity is the number of groups of this level per outer group.
	Arity int `json:"arity"`
}

// Topology declares the simulated machine shape. Two input forms are
// accepted — the nodes x ppn shorthand, or an explicit uniform level
// stack (per-leaf ranks plus levels, innermost first) — and
// canonicalization rewrites the shorthand into the stack form, so a
// canonical Topology always carries PerLeaf and Levels only.
type Topology struct {
	// Nodes and PPN are the single-level shorthand: Nodes nodes of PPN
	// ranks. Mutually exclusive with PerLeaf/Levels; cleared by
	// canonicalization.
	Nodes int `json:"nodes,omitempty"`
	// PPN is the ranks-per-node half of the shorthand.
	PPN int `json:"ppn,omitempty"`
	// PerLeaf is the number of ranks per innermost group of the
	// canonical stack form.
	PerLeaf int `json:"per_leaf,omitempty"`
	// Levels is the uniform level stack, innermost first, e.g.
	// [{socket 2} {node 64}] for 64 nodes of 2 sockets.
	Levels []Level `json:"levels,omitempty"`
}

// maxRanks bounds the total rank count a Query may declare — a
// validation backstop against arithmetic overflow and absurd worlds;
// the service layer applies its own (much lower) per-engine caps.
const maxRanks = 1 << 27

// Canonicalize validates the topology and rewrites the nodes x ppn
// shorthand into the canonical stack form. Idempotent.
func (t *Topology) Canonicalize() error {
	shorthand := t.Nodes != 0 || t.PPN != 0
	stack := t.PerLeaf != 0 || len(t.Levels) != 0
	switch {
	case shorthand && stack:
		return fmt.Errorf("spec: topology declares both nodes/ppn and per_leaf/levels")
	case shorthand:
		if t.Nodes <= 0 || t.PPN <= 0 {
			return fmt.Errorf("spec: topology needs nodes>0 and ppn>0, got %dx%d", t.Nodes, t.PPN)
		}
		t.PerLeaf, t.Levels = t.PPN, []Level{{Name: sim.NodeLevelName, Arity: t.Nodes}}
		t.Nodes, t.PPN = 0, 0
	case stack:
		if t.PerLeaf <= 0 || len(t.Levels) == 0 {
			return fmt.Errorf("spec: topology stack needs per_leaf>0 and at least one level")
		}
		node := 0
		for i, l := range t.Levels {
			if l.Name == "" {
				return fmt.Errorf("spec: topology level %d has no name", i)
			}
			if l.Arity <= 0 || l.Arity > maxRanks {
				return fmt.Errorf("spec: topology level %q needs arity in [1, %d], got %d", l.Name, maxRanks, l.Arity)
			}
			if l.Name == sim.NodeLevelName {
				node++
			}
			for _, prev := range t.Levels[:i] {
				if prev.Name == l.Name {
					return fmt.Errorf("spec: duplicate topology level %q", l.Name)
				}
			}
		}
		if node != 1 {
			return fmt.Errorf("spec: topology needs exactly one %q level, got %d", sim.NodeLevelName, node)
		}
	default:
		return fmt.Errorf("spec: topology is empty (give nodes+ppn or per_leaf+levels)")
	}
	if t.Ranks() <= 0 {
		return fmt.Errorf("spec: topology declares more than %d ranks", maxRanks)
	}
	return nil
}

// Ranks returns the total rank count of a canonicalized topology, or
// -1 when the product leaves (0, maxRanks]. Each multiply is
// overflow-checked against the cap first, so a crafted arity cannot
// wrap the total back into range.
func (t *Topology) Ranks() int {
	total := t.PerLeaf
	if total <= 0 || total > maxRanks {
		return -1
	}
	for _, l := range t.Levels {
		if l.Arity <= 0 || l.Arity > maxRanks/total {
			return -1
		}
		total *= l.Arity
	}
	return total
}

// Build materializes the canonical topology through the interned
// sim.Topology constructor.
func (t *Topology) Build() (*sim.Topology, error) {
	dims := make([]sim.LevelDim, len(t.Levels))
	for i, l := range t.Levels {
		dims[i] = sim.LevelDim{Name: l.Name, Arity: l.Arity}
	}
	return sim.UniformHier(t.PerLeaf, dims...)
}

// Query is the declarative description of one what-if run: everything
// needed to reproduce it bit-identically via CLI, HTTP or a test
// harness. See Parse for the strict JSON decoding rules and
// Canonicalize for the normal form behind Fingerprint.
type Query struct {
	// Machine names the cost-model profile (sim.Profiles): one of
	// "hazelhen-cray", "vulcan-openmpi", "laptop".
	Machine string `json:"machine"`
	// Topology is the simulated machine shape.
	Topology Topology `json:"topology"`
	// Collective names the operation: allgather, allgatherv,
	// allreduce, reduce, bcast, barrier, alltoall, gather or scan.
	// (Neighborhood collectives need a process topology, which a Query
	// cannot yet express.)
	Collective string `json:"collective"`
	// Sizes is the message-size ladder in bytes, one simulated point
	// per entry: the per-rank block for allgather, allgatherv,
	// alltoall and gather; the whole payload for bcast and the
	// reducing collectives (rounded down to whole float64 elements);
	// ignored for barrier (canonicalized to [0]).
	Sizes []int `json:"sizes"`
	// Iters is how many back-to-back operations each point runs
	// (default 1). Virtual times in the Result are exact totals over
	// Iters operations.
	Iters int `json:"iters,omitempty"`
	// Engine selects the execution backend: "goroutine" (default) or
	// "event".
	Engine string `json:"engine,omitempty"`
	// Fold selects rank-symmetry folding: "auto" (default; fold on the
	// event engine whenever the coll fold helpers approve the
	// workload), "off", or an explicit positive fold unit.
	Fold string `json:"fold,omitempty"`
	// Tuning configures the collective selection engine.
	Tuning Tuning `json:"tuning"`
	// Noise configures deterministic noise and fault injection (seeded
	// jitter, stragglers, link congestion, scheduled rank failures).
	// Absent means a clean world; an all-zero block canonicalizes to
	// absent, keeping noise-free fingerprints stable.
	Noise *Noise `json:"noise,omitempty"`
}

// maxSizeBytes bounds one ladder entry (1 GiB per rank).
const maxSizeBytes = 1 << 30

// maxIters bounds the per-point repetition count.
const maxIters = 1 << 20

// Parse strictly decodes a Query from JSON — unknown fields and
// trailing data are rejected — and canonicalizes it.
func Parse(data []byte) (*Query, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	q := &Query{}
	if err := dec.Decode(q); err != nil {
		return nil, fmt.Errorf("spec: parse query: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("spec: trailing data after query")
	}
	if err := q.Canonicalize(); err != nil {
		return nil, err
	}
	return q, nil
}

// Canonicalize validates the query and rewrites it into its canonical
// normal form: topology in stack form, defaults made explicit (engine
// "goroutine", fold "auto", iters 1, policy "table"), and the size
// ladder sorted ascending with duplicates removed. Canonicalize is
// idempotent; Fingerprint and the service cache key are defined over
// the canonical form.
func (q *Query) Canonicalize() error {
	if q.Machine == "" {
		return fmt.Errorf("spec: query needs a machine")
	}
	if _, ok := sim.Profiles()[q.Machine]; !ok {
		return fmt.Errorf("spec: unknown machine %q", q.Machine)
	}
	if err := q.Topology.Canonicalize(); err != nil {
		return err
	}
	cl, err := coll.ParseCollective(q.Collective)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, ok := runBodies[cl]; !ok {
		return fmt.Errorf("spec: collective %q is not expressible in a query", q.Collective)
	}
	if cl == coll.CollBarrier {
		q.Sizes = []int{0}
	} else {
		if len(q.Sizes) == 0 {
			return fmt.Errorf("spec: query needs a non-empty size ladder")
		}
		sizes := append([]int(nil), q.Sizes...)
		sort.Ints(sizes)
		out := sizes[:0]
		for i, b := range sizes {
			if b <= 0 || b > maxSizeBytes {
				return fmt.Errorf("spec: size %d out of range (0, %d]", b, maxSizeBytes)
			}
			if i == 0 || b != sizes[i-1] {
				out = append(out, b)
			}
		}
		q.Sizes = out
	}
	if q.Iters == 0 {
		q.Iters = 1
	}
	if q.Iters < 1 || q.Iters > maxIters {
		return fmt.Errorf("spec: iters %d out of range [1, %d]", q.Iters, maxIters)
	}
	if q.Engine == "" {
		q.Engine = sim.EngineGoroutine.String()
	}
	if _, err := sim.ParseEngine(q.Engine); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	switch q.Fold {
	case "":
		q.Fold = "auto"
	case "auto", "off":
	default:
		u, err := strconv.Atoi(q.Fold)
		if err != nil || u <= 0 {
			return fmt.Errorf("spec: fold %q is not auto, off or a positive unit", q.Fold)
		}
		q.Fold = strconv.Itoa(u)
	}
	noise, err := q.Noise.canonicalize(q.Topology.Ranks())
	if err != nil {
		return err
	}
	q.Noise = noise
	if q.Noise.BreaksSymmetry() && q.Fold != "auto" && q.Fold != "off" {
		// Asymmetric noise (jitter, stragglers, failures) invalidates
		// rank-symmetry folding; "auto" quietly resolves to unfolded,
		// but an explicit unit is a contradiction worth rejecting here
		// rather than at world construction.
		return fmt.Errorf("spec: fold %q incompatible with noise that breaks rank symmetry", q.Fold)
	}
	return q.Tuning.Canonicalize()
}

// CanonicalJSON returns the canonical JSON encoding of the query: the
// canonicalized form marshaled with the fixed field order of the Query
// struct (object keys in Force maps sort lexically under
// encoding/json). Two queries describing the same run byte-compare
// equal here; Fingerprint hashes exactly these bytes.
func (q *Query) CanonicalJSON() ([]byte, error) {
	c := *q
	c.Sizes = append([]int(nil), q.Sizes...)
	c.Topology.Levels = append([]Level(nil), q.Topology.Levels...)
	if err := c.Canonicalize(); err != nil {
		return nil, err
	}
	return json.Marshal(&c)
}

// Fingerprint returns the stable identity of the run the query
// describes: the hex SHA-256 of its canonical JSON. The service layer
// keys its result cache and request coalescing on it.
func (q *Query) Fingerprint() (string, error) {
	data, err := q.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Model instantiates the query's machine profile.
func (q *Query) Model() (*sim.CostModel, error) {
	mk, ok := sim.Profiles()[q.Machine]
	if !ok {
		return nil, fmt.Errorf("spec: unknown machine %q", q.Machine)
	}
	return mk(), nil
}
