package spec

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Point is one ladder entry of a Result: the exact virtual cost of
// Iters back-to-back operations at one message size.
type Point struct {
	// Bytes is the ladder entry (see Query.Sizes for per-collective
	// semantics).
	Bytes int `json:"bytes"`
	// FoldUnit is the rank-symmetry fold unit this point executed
	// under (0 = every rank ran).
	FoldUnit int `json:"fold_unit"`
	// VirtualPs is the exact total virtual makespan of Iters
	// operations, in picoseconds — the bit-identity anchor across CLI,
	// HTTP and engines.
	VirtualPs int64 `json:"virtual_ps"`
	// VirtualUsPerOp is the per-operation virtual makespan in
	// microseconds.
	VirtualUsPerOp float64 `json:"virtual_us_per_op"`
}

// Result is what executing a Query produces: one Point per ladder
// size, plus the canonical identity of the run.
type Result struct {
	// Fingerprint is the query's canonical fingerprint (the service
	// cache key).
	Fingerprint string `json:"fingerprint"`
	// Machine is the cost-model profile name.
	Machine string `json:"machine"`
	// Topology is the human-readable shape, e.g. "64x24".
	Topology string `json:"topology"`
	// Ranks is the total rank count.
	Ranks int `json:"ranks"`
	// Collective is the operation simulated.
	Collective string `json:"collective"`
	// Engine is the execution backend the points ran on.
	Engine string `json:"engine"`
	// Iters is the per-point repetition count.
	Iters int `json:"iters"`
	// Tuning is the selection-engine tuning in the textual grammar.
	Tuning string `json:"tuning"`
	// Points is the ladder, ascending by Bytes.
	Points []Point `json:"points"`
}

// runBody executes iters operations of one collective at ladder size b
// on one rank. Buffers are size-only (no data movement): a Query
// measures virtual time, not payload contents.
type runBody func(p *mpi.Proc, b, iters int) error

// elems converts a byte size into whole float64 elements for the
// reducing collectives (at least one).
func elems(b int) int {
	if b < 8 {
		return 1
	}
	return b / 8
}

// runBodies maps every collective expressible in a Query to its
// executor. Canonicalize consults the key set, so adding an entry here
// is all it takes to open a collective to the Spec API.
var runBodies = map[coll.Collective]runBody{
	coll.CollAllgather: func(p *mpi.Proc, b, iters int) error {
		// The hierarchical (node+bridge) allgather — the paper's
		// canonical what-if subject and the scale sweep's workload.
		h, err := coll.NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		send, recv := mpi.Sized(b), mpi.Sized(b*p.Size())
		for i := 0; i < iters; i++ {
			if err := h.Allgather(send, recv, b); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollAllgatherv: func(p *mpi.Proc, b, iters int) error {
		c := p.CommWorld()
		counts := make([]int, c.Size())
		for i := range counts {
			counts[i] = b
		}
		send, recv := mpi.Sized(b), mpi.Sized(b*c.Size())
		for i := 0; i < iters; i++ {
			if err := coll.Allgatherv(c, send, recv, counts); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollAllreduce: func(p *mpi.Proc, b, iters int) error {
		c, n := p.CommWorld(), elems(b)
		send, recv := mpi.Sized(n*8), mpi.Sized(n*8)
		for i := 0; i < iters; i++ {
			if err := coll.Allreduce(c, send, recv, n, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollReduce: func(p *mpi.Proc, b, iters int) error {
		c, n := p.CommWorld(), elems(b)
		send, recv := mpi.Sized(n*8), mpi.Sized(n*8)
		for i := 0; i < iters; i++ {
			if err := coll.Reduce(c, send, recv, n, mpi.Float64, mpi.OpSum, 0); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollScan: func(p *mpi.Proc, b, iters int) error {
		c, n := p.CommWorld(), elems(b)
		send, recv := mpi.Sized(n*8), mpi.Sized(n*8)
		for i := 0; i < iters; i++ {
			if err := coll.Scan(c, send, recv, n, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollBcast: func(p *mpi.Proc, b, iters int) error {
		c, buf := p.CommWorld(), mpi.Sized(b)
		for i := 0; i < iters; i++ {
			if err := coll.Bcast(c, buf, 0); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollBarrier: func(p *mpi.Proc, _, iters int) error {
		c := p.CommWorld()
		for i := 0; i < iters; i++ {
			if err := coll.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollAlltoall: func(p *mpi.Proc, b, iters int) error {
		c := p.CommWorld()
		send, recv := mpi.Sized(b*c.Size()), mpi.Sized(b*c.Size())
		for i := 0; i < iters; i++ {
			if err := coll.Alltoall(c, send, recv, b); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollGather: func(p *mpi.Proc, b, iters int) error {
		c := p.CommWorld()
		send, recv := mpi.Sized(b), mpi.Sized(b*c.Size())
		for i := 0; i < iters; i++ {
			if err := coll.Gather(c, send, recv, b, 0); err != nil {
				return err
			}
		}
		return nil
	},
}

// autoFoldUnit resolves the rank-symmetry fold unit of a ladder point
// under fold "auto": the coll fold helpers' approval for the workloads
// they cover, 0 (unfolded) otherwise.
func autoFoldUnit(model *sim.CostModel, topo *sim.Topology, cl coll.Collective, b int, tun coll.Tuning) int {
	switch cl {
	case coll.CollAllgather:
		return coll.HierAllgatherFoldUnit(model, topo, b, tun)
	case coll.CollAllreduce:
		n := elems(b)
		return coll.AllreduceFoldUnit(model, topo, n*8, n, tun)
	}
	return 0
}

// Run executes the query and returns its Result. The query is
// canonicalized in place.
func Run(q *Query) (*Result, error) { return RunContext(context.Background(), q) }

// RunContext is Run with cancellation: when ctx is cancelled the
// in-flight world is aborted (every blocked rank wakes with an error)
// and the context's error is returned. One world is built per ladder
// size — construction is cheap against the interned topology and
// geometry caches — and closed before the next, so a finished run
// holds no rank-pool goroutines.
func RunContext(ctx context.Context, q *Query) (*Result, error) {
	if err := q.Canonicalize(); err != nil {
		return nil, err
	}
	fp, err := q.Fingerprint()
	if err != nil {
		return nil, err
	}
	model, err := q.Model()
	if err != nil {
		return nil, err
	}
	topo, err := q.Topology.Build()
	if err != nil {
		return nil, err
	}
	engine, err := sim.ParseEngine(q.Engine)
	if err != nil {
		return nil, err
	}
	cl, err := coll.ParseCollective(q.Collective)
	if err != nil {
		return nil, err
	}
	body, ok := runBodies[cl]
	if !ok {
		return nil, fmt.Errorf("spec: collective %q is not expressible in a query", q.Collective)
	}
	collTun, err := q.Tuning.Coll()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Fingerprint: fp,
		Machine:     q.Machine,
		Topology:    topo.String(),
		Ranks:       topo.Size(),
		Collective:  q.Collective,
		Engine:      q.Engine,
		Iters:       q.Iters,
		Tuning:      q.Tuning.Spec(),
	}
	for _, b := range q.Sizes {
		fold := 0
		switch q.Fold {
		case "off":
		case "auto":
			if engine == sim.EngineEvent {
				fold = autoFoldUnit(model, topo, cl, b, collTun)
			}
		default:
			fold, _ = strconv.Atoi(q.Fold)
		}
		pt, err := runPoint(ctx, model, topo, engine, fold, collTun, body, b, q.Iters)
		if err != nil {
			return nil, fmt.Errorf("spec: %s at %d B: %w", q.Collective, b, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// runPoint builds one world and executes one ladder point on it.
func runPoint(ctx context.Context, model *sim.CostModel, topo *sim.Topology, engine sim.Engine,
	fold int, tun coll.Tuning, body runBody, b, iters int) (Point, error) {
	w, err := mpi.NewWorldConfig(model, topo, mpi.Config{
		Engine:     engine,
		FoldUnit:   fold,
		CollConfig: tun,
	})
	if err != nil {
		return Point{}, err
	}
	defer w.Close()

	// Cancellation: an expired context aborts the world, waking every
	// blocked rank. The watcher is released before Close.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			w.Abort()
		case <-stop:
		}
	}()

	if err := w.Run(func(p *mpi.Proc) error { return body(p, b, iters) }); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Point{}, fmt.Errorf("run cancelled: %w", ctxErr)
		}
		return Point{}, err
	}
	virtual := w.MaxClock()
	return Point{
		Bytes:          b,
		FoldUnit:       fold,
		VirtualPs:      int64(virtual),
		VirtualUsPerOp: (virtual / sim.Time(iters)).Us(),
	}, nil
}
