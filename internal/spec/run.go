package spec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Point is one ladder entry of a Result: the exact virtual cost of
// Iters back-to-back operations at one message size.
type Point struct {
	// Bytes is the ladder entry (see Query.Sizes for per-collective
	// semantics).
	Bytes int `json:"bytes"`
	// FoldUnit is the rank-symmetry fold unit this point executed
	// under (0 = every rank ran).
	FoldUnit int `json:"fold_unit"`
	// VirtualPs is the exact total virtual makespan of Iters
	// operations, in picoseconds — the bit-identity anchor across CLI,
	// HTTP and engines.
	VirtualPs int64 `json:"virtual_ps"`
	// VirtualUsPerOp is the per-operation virtual makespan in
	// microseconds.
	VirtualUsPerOp float64 `json:"virtual_us_per_op"`
}

// Result is what executing a Query produces: one Point per ladder
// size, plus the canonical identity of the run.
type Result struct {
	// Fingerprint is the query's canonical fingerprint (the service
	// cache key).
	Fingerprint string `json:"fingerprint"`
	// Machine is the cost-model profile name.
	Machine string `json:"machine"`
	// Topology is the human-readable shape, e.g. "64x24".
	Topology string `json:"topology"`
	// Ranks is the total rank count.
	Ranks int `json:"ranks"`
	// Collective is the operation simulated.
	Collective string `json:"collective"`
	// Engine is the execution backend the points ran on.
	Engine string `json:"engine"`
	// Iters is the per-point repetition count.
	Iters int `json:"iters"`
	// Tuning is the selection-engine tuning in the textual grammar.
	Tuning string `json:"tuning"`
	// Points is the ladder, ascending by Bytes.
	Points []Point `json:"points"`
}

// runBody executes iters operations of one collective at ladder size b
// on one rank. Buffers are size-only (no data movement): a Query
// measures virtual time, not payload contents.
type runBody func(p *mpi.Proc, b, iters int) error

// elems converts a byte size into whole float64 elements for the
// reducing collectives (at least one).
func elems(b int) int {
	if b < 8 {
		return 1
	}
	return b / 8
}

// runBodies maps every collective expressible in a Query to its
// executor. Canonicalize consults the key set, so adding an entry here
// is all it takes to open a collective to the Spec API.
var runBodies = map[coll.Collective]runBody{
	coll.CollAllgather: func(p *mpi.Proc, b, iters int) error {
		// The hierarchical (node+bridge) allgather — the paper's
		// canonical what-if subject and the scale sweep's workload.
		h, err := coll.NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		send, recv := mpi.Sized(b), mpi.Sized(b*p.Size())
		for i := 0; i < iters; i++ {
			if err := h.Allgather(send, recv, b); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollAllgatherv: func(p *mpi.Proc, b, iters int) error {
		c := p.CommWorld()
		counts := make([]int, c.Size())
		for i := range counts {
			counts[i] = b
		}
		send, recv := mpi.Sized(b), mpi.Sized(b*c.Size())
		for i := 0; i < iters; i++ {
			if err := coll.Allgatherv(c, send, recv, counts); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollAllreduce: func(p *mpi.Proc, b, iters int) error {
		c, n := p.CommWorld(), elems(b)
		send, recv := mpi.Sized(n*8), mpi.Sized(n*8)
		for i := 0; i < iters; i++ {
			if err := coll.Allreduce(c, send, recv, n, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollReduce: func(p *mpi.Proc, b, iters int) error {
		c, n := p.CommWorld(), elems(b)
		send, recv := mpi.Sized(n*8), mpi.Sized(n*8)
		for i := 0; i < iters; i++ {
			if err := coll.Reduce(c, send, recv, n, mpi.Float64, mpi.OpSum, 0); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollScan: func(p *mpi.Proc, b, iters int) error {
		c, n := p.CommWorld(), elems(b)
		send, recv := mpi.Sized(n*8), mpi.Sized(n*8)
		for i := 0; i < iters; i++ {
			if err := coll.Scan(c, send, recv, n, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollBcast: func(p *mpi.Proc, b, iters int) error {
		c, buf := p.CommWorld(), mpi.Sized(b)
		for i := 0; i < iters; i++ {
			if err := coll.Bcast(c, buf, 0); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollBarrier: func(p *mpi.Proc, _, iters int) error {
		c := p.CommWorld()
		for i := 0; i < iters; i++ {
			if err := coll.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollAlltoall: func(p *mpi.Proc, b, iters int) error {
		c := p.CommWorld()
		send, recv := mpi.Sized(b*c.Size()), mpi.Sized(b*c.Size())
		for i := 0; i < iters; i++ {
			if err := coll.Alltoall(c, send, recv, b); err != nil {
				return err
			}
		}
		return nil
	},
	coll.CollGather: func(p *mpi.Proc, b, iters int) error {
		c := p.CommWorld()
		send, recv := mpi.Sized(b), mpi.Sized(b*c.Size())
		for i := 0; i < iters; i++ {
			if err := coll.Gather(c, send, recv, b, 0); err != nil {
				return err
			}
		}
		return nil
	},
}

// autoFoldUnit resolves the rank-symmetry fold unit of a ladder point
// under fold "auto": the coll fold helpers' approval for the workloads
// they cover, 0 (unfolded) otherwise.
func autoFoldUnit(model *sim.CostModel, topo *sim.Topology, cl coll.Collective, b int, tun coll.Tuning) int {
	switch cl {
	case coll.CollAllgather:
		return coll.HierAllgatherFoldUnit(model, topo, b, tun)
	case coll.CollAllreduce:
		n := elems(b)
		return coll.AllreduceFoldUnit(model, topo, n*8, n, tun)
	}
	return 0
}

// Exec is a query execution environment: how worlds are obtained and
// how much of a ladder runs concurrently. The zero value is the
// standalone CLI behavior — no cross-query pool, groups run one at a
// time — and still reuses one warm world across the ladder points of
// each fold group. Virtual times are bit-identical across every
// combination of Pool/Parallelism/PerPointWorlds settings; the golden
// suite and the in-sweep cross-checks referee that.
type Exec struct {
	// Pool, when non-nil, keeps worlds resident across queries: ladder
	// groups check their world out by ShapeKey and return it when the
	// group finishes, so distinct fingerprints sharing a shape skip
	// world construction entirely.
	Pool *WorldPool
	// Parallelism bounds how many ladder groups of one query execute
	// concurrently (each group owns its own world). <= 1 runs groups
	// sequentially. Points keep their deterministic ascending-size
	// order in the Result either way.
	Parallelism int
	// PerPointWorlds restores the historical construct-per-point path:
	// every ladder point builds and closes its own world, bypassing
	// Pool. It is the referee configuration the warm paths are
	// bit-compared against (and the baseline the service sweep's cold
	// phase measures speedup over).
	PerPointWorlds bool
	// Tuner, when non-nil, backs the measured tuning policy: queries
	// with policy "measured" resolve selections against one snapshot
	// of its store (taken at run start, so a whole run sees one store
	// generation) and report world-communicator misses to it for
	// background measurement. Nil makes the measured policy behave
	// exactly like the cost policy.
	Tuner *Tuner
}

// Run executes the query and returns its Result. The query is
// canonicalized in place.
func Run(q *Query) (*Result, error) { return RunContext(context.Background(), q) }

// RunContext is Run with cancellation, on the zero Exec environment:
// no cross-query pool, sequential groups, warm worlds within each
// group.
func RunContext(ctx context.Context, q *Query) (*Result, error) {
	return (&Exec{}).RunContext(ctx, q)
}

// pointGroup is one warm-world unit of a ladder: the indices of every
// point sharing (engine, fold unit), in ascending-size order.
type pointGroup struct {
	fold int
	idx  []int
}

// RunContext executes the query and returns its Result; the query is
// canonicalized in place. Ladder points are grouped by fold unit (the
// engine is fixed per query, so the fold unit is the only shape
// divergence inside one ladder) and each group runs on ONE world —
// checked out of the pool when the environment has one, built
// otherwise — with ResetClocks between points instead of a
// construct/close per point. Groups execute concurrently up to
// Parallelism. When ctx is cancelled every in-flight world is aborted
// (each blocked rank wakes with an error) and the context's error is
// returned.
func (e *Exec) RunContext(ctx context.Context, q *Query) (*Result, error) {
	if err := q.Canonicalize(); err != nil {
		return nil, err
	}
	fp, err := q.Fingerprint()
	if err != nil {
		return nil, err
	}
	model, err := q.Model()
	if err != nil {
		return nil, err
	}
	topo, err := q.Topology.Build()
	if err != nil {
		return nil, err
	}
	engine, err := sim.ParseEngine(q.Engine)
	if err != nil {
		return nil, err
	}
	cl, err := coll.ParseCollective(q.Collective)
	if err != nil {
		return nil, err
	}
	body, ok := runBodies[cl]
	if !ok {
		return nil, fmt.Errorf("spec: collective %q is not expressible in a query", q.Collective)
	}
	collTun, err := q.Tuning.Coll()
	if err != nil {
		return nil, err
	}
	noise, err := q.Noise.ToSim()
	if err != nil {
		return nil, err
	}
	nk := noiseKey(q.Noise)

	// Measured policy: bind the selections to one store snapshot before
	// anything (fold resolution included) consults the tuning, so the
	// fold units and the worlds' picks always agree.
	var tuneGen uint64
	if collTun.Policy == coll.PolicyMeasured && e.Tuner != nil {
		tuneGen = installMeasured(&collTun, e.Tuner, model, topo, noise, nk)
	}

	// Resolve every point's fold unit up front: the grouping key.
	// Noise that breaks rank symmetry self-disables folding — replica
	// ranks would no longer behave like their class representative.
	folds := make([]int, len(q.Sizes))
	for i, b := range q.Sizes {
		switch q.Fold {
		case "off":
		case "auto":
			if engine == sim.EngineEvent && !noise.BreaksSymmetry() {
				folds[i] = autoFoldUnit(model, topo, cl, b, collTun)
			}
		default:
			u, err := strconv.Atoi(q.Fold)
			if err != nil || u <= 0 {
				return nil, fmt.Errorf("spec: fold %q is not auto, off or a positive unit", q.Fold)
			}
			folds[i] = u
		}
	}
	groups := groupByFold(folds)

	res := &Result{
		Fingerprint: fp,
		Machine:     q.Machine,
		Topology:    topo.String(),
		Ranks:       topo.Size(),
		Collective:  q.Collective,
		Engine:      q.Engine,
		Iters:       q.Iters,
		Tuning:      q.Tuning.Spec(),
	}
	env := groupEnv{
		exec: e, model: model, topo: topo, engine: engine,
		tun: collTun, body: body, machine: q.Machine,
		tuning: q.Tuning.Spec(), sizes: q.Sizes, iters: q.Iters,
		noise: noise, noiseKey: nk, tuneGen: tuneGen,
	}
	points := make([]Point, len(q.Sizes))
	if err := e.runGroups(ctx, env, groups, points); err != nil {
		return nil, fmt.Errorf("spec: %s: %w", q.Collective, err)
	}
	res.Points = points
	return res, nil
}

// groupByFold partitions ladder indices by fold unit, groups ordered
// by first appearance in the ascending-size ladder, indices ascending
// within each group — fully deterministic, so a parallel run fills the
// same Points slots as a sequential one.
func groupByFold(folds []int) []pointGroup {
	var groups []pointGroup
	at := map[int]int{}
	for i, f := range folds {
		gi, ok := at[f]
		if !ok {
			gi = len(groups)
			at[f] = gi
			groups = append(groups, pointGroup{fold: f})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}
	return groups
}

// groupEnv carries the compiled query pieces every group shares.
type groupEnv struct {
	exec     *Exec
	model    *sim.CostModel
	topo     *sim.Topology
	engine   sim.Engine
	tun      coll.Tuning
	body     runBody
	machine  string
	tuning   string
	sizes    []int
	iters    int
	noise    *sim.Noise
	noiseKey string
	tuneGen  uint64
}

// noiseKey renders a canonical noise block as the pool ShapeKey's noise
// component ("" for a clean world): the canonical JSON is stable field
// order with sorted map keys, so equal configs key equal.
func noiseKey(n *Noise) string {
	if n == nil {
		return ""
	}
	data, err := json.Marshal(n)
	if err != nil {
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	return string(data)
}

// runGroups executes every group, sequentially or bounded-parallel,
// and fills points (indexed like the ladder). The first failure wins;
// a shared cancel aborts the remaining groups' worlds so a sweep does
// not keep simulating past a dead point.
func (e *Exec) runGroups(ctx context.Context, env groupEnv, groups []pointGroup, points []Point) error {
	par := e.Parallelism
	if par <= 1 || len(groups) == 1 {
		for _, g := range groups {
			if err := runGroup(ctx, env, g, points); err != nil {
				return err
			}
		}
		return nil
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, par)
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi, g := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(gi int, g pointGroup) {
			defer wg.Done()
			defer func() { <-sem }()
			if errs[gi] = runGroup(gctx, env, g, points); errs[gi] != nil {
				cancel()
			}
		}(gi, g)
	}
	wg.Wait()
	// Prefer the original failure over the cancellations it induced in
	// sibling groups; if every group reports cancellation (the outer
	// ctx died), the first one stands.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}

// runGroup executes one fold group on one warm world: checkout (or
// build), then ResetClocks+Run per ladder point, then check-in. A
// cancelled ctx aborts the world mid-Run; an aborted or failed world
// is never returned to the pool. With PerPointWorlds the group instead
// builds and closes a fresh world per point — the referee path.
func runGroup(ctx context.Context, env groupEnv, g pointGroup, points []Point) error {
	if env.exec.PerPointWorlds {
		for _, i := range g.idx {
			w, err := buildWorld(env, g.fold)
			if err != nil {
				return err
			}
			err = runPointOn(ctx, w, env, g.fold, i, points)
			w.Close()
			if err != nil {
				return err
			}
		}
		return nil
	}

	var (
		w   *mpi.World
		pw  *PooledWorld
		err error
	)
	if pool := env.exec.Pool; pool != nil {
		key := ShapeKey{
			Machine: env.machine, Topo: env.topo, Engine: env.engine,
			FoldUnit: g.fold, Tuning: env.tuning, Noise: env.noiseKey,
			TuneGen: env.tuneGen,
		}
		pw, err = pool.Checkout(key, func() (*mpi.World, error) { return buildWorld(env, g.fold) })
		if err != nil {
			return err
		}
		w = pw.W
		// Checkin inspects the world: an abort (cancellation, rank
		// failure) poisons it, and poisoned worlds are discarded, so
		// error paths need no special-casing here.
		defer pool.Checkin(pw)
	} else {
		if w, err = buildWorld(env, g.fold); err != nil {
			return err
		}
		defer w.Close()
	}

	for _, i := range g.idx {
		if err := runPointOn(ctx, w, env, g.fold, i, points); err != nil {
			return err
		}
	}
	return nil
}

// buildWorld constructs the group's world.
func buildWorld(env groupEnv, fold int) (*mpi.World, error) {
	return mpi.NewWorldConfig(env.model, env.topo, mpi.Config{
		Engine:     env.engine,
		FoldUnit:   fold,
		CollConfig: env.tun,
		Noise:      env.noise,
	})
}

// runPointOn executes ladder point i on the (possibly warm) world w
// and stores its Point. Clocks are reset first, so the measurement is
// independent of whatever ran on w before — the bit-identity
// guarantee against a cold world.
func runPointOn(ctx context.Context, w *mpi.World, env groupEnv, fold, i int, points []Point) error {
	b := env.sizes[i]

	// Cancellation: an expired context aborts the world, waking every
	// blocked rank. The watcher must be fully retired (not merely
	// signalled) before the world can be reused or checked in — a
	// straggling Abort after a clean Run would poison a parked world —
	// hence the done handshake.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			w.Abort()
		case <-stop:
		}
	}()
	w.ResetClocks()
	err := w.Run(func(p *mpi.Proc) error { return env.body(p, b, env.iters) })
	close(stop)
	<-done
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("at %d B: run cancelled: %w", b, ctxErr)
		}
		return fmt.Errorf("at %d B: %w", b, err)
	}
	virtual := w.MaxClock()
	points[i] = Point{
		Bytes:          b,
		FoldUnit:       fold,
		VirtualPs:      int64(virtual),
		VirtualUsPerOp: (virtual / sim.Time(env.iters)).Us(),
	}
	return nil
}
