package spec

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/tune"
)

// This file is the measurement side of the selection engine's measured
// policy: a background Tuner that races every applicable registered
// algorithm's virtual time at a missed selection point — on a world
// built from the query's own topology, machine and noise profile, on
// the discrete-event engine — and records the winner in the tuning
// store. Selections never block on it: while a point's measurement is
// pending the engine serves the cost-policy choice (see coll.pick),
// and a later run against the warmed store serves the measured winner.
//
// Only world-communicator selection points are measured (the
// environment's communicator size equals the topology's rank count):
// there the race replays the exact call — same topology, same hop
// class, same noise — so the cached winner is the true argmin of the
// candidates' virtual times at that point. Sub-communicator points
// (the tiers of hierarchical compositions) keep the cost fallback; the
// store still answers for them if an entry exists.

// tuneKeyFor renders a selection environment as a store key. topoFP is
// the topology fingerprint in hex; noise the canonical noise JSON (""
// for a clean world).
func tuneKeyFor(cl coll.Collective, e coll.Env, topoFP, noise string) tune.Key {
	return tune.Key{
		Collective: cl.String(),
		CommSize:   e.Size,
		Bytes:      e.Bytes,
		Count:      e.Count,
		Hop:        e.Hop.String(),
		TopoFP:     topoFP,
		Noise:      noise,
	}
}

// topoFingerprint renders the store's topology-fingerprint field.
func topoFingerprint(t *sim.Topology) string {
	return fmt.Sprintf("%016x", t.Fingerprint())
}

// measureReq is one queued measurement: a missed selection point plus
// everything needed to rebuild its world.
type measureReq struct {
	key   tune.Key
	cl    coll.Collective
	env   coll.Env
	model *sim.CostModel
	topo  *sim.Topology
	noise *sim.Noise
}

// Tuner runs measured-policy measurements in the background and feeds
// a tune.Store. Attach one to Exec.Tuner (the server does this for
// every daemon); queries whose tuning policy is "measured" then report
// their selection misses here. One worker goroutine drains the queue,
// so measurements never compete with the query worlds for more than
// one core and each point is measured exactly once (the store's claim
// set is the singleflight).
type Tuner struct {
	store *tune.Store

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []measureReq
	busy   bool
	closed bool
	done   chan struct{}

	errs atomic.Int64
}

// NewTuner starts a tuner over a store and returns it. Close releases
// its worker.
func NewTuner(store *tune.Store) *Tuner {
	t := &Tuner{store: store, done: make(chan struct{})}
	t.cond = sync.NewCond(&t.mu)
	go t.worker()
	return t
}

// Store returns the tuning store the tuner measures into.
func (t *Tuner) Store() *tune.Store { return t.store }

// Errors returns how many measurements failed (world build or run
// errors); failed points are released for a later retry.
func (t *Tuner) Errors() int64 { return t.errs.Load() }

// request enqueues a measurement unless the point is already cached,
// already in flight, or the tuner is closed. Never blocks (it runs on
// simulated ranks' goroutines, under OnMiss).
func (t *Tuner) request(req measureReq) {
	if !t.store.Claim(req.key) {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.store.Release(req.key)
		return
	}
	t.queue = append(t.queue, req)
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Drain blocks until the measurement queue is empty and no measurement
// is in flight — the synchronous warm-up hook the tuned sweep and the
// tests use. Returns immediately on a closed tuner.
func (t *Tuner) Drain() {
	t.mu.Lock()
	for (len(t.queue) > 0 || t.busy) && !t.closed {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Close stops the worker (waiting for an in-flight measurement to
// finish), abandons queued requests, and releases their claims.
// Idempotent.
func (t *Tuner) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return
	}
	t.closed = true
	abandoned := t.queue
	t.queue = nil
	t.cond.Broadcast()
	t.mu.Unlock()
	for _, req := range abandoned {
		t.store.Release(req.key)
	}
	<-t.done
}

// worker drains the queue serially.
func (t *Tuner) worker() {
	defer close(t.done)
	t.mu.Lock()
	for {
		for len(t.queue) == 0 && !t.closed {
			t.cond.Broadcast() // wake Drain: idle
			t.cond.Wait()
		}
		if t.closed {
			t.cond.Broadcast()
			t.mu.Unlock()
			return
		}
		req := t.queue[0]
		t.queue = t.queue[1:]
		t.busy = true
		t.mu.Unlock()

		t.measure(req)

		t.mu.Lock()
		t.busy = false
	}
}

// measure races every applicable registered algorithm of the missed
// point on one world — the query's topology, machine and noise, on the
// discrete-event engine with folding off — and records the winner.
// Candidates run back-to-back with ResetClocks between them, so each
// timing starts from operation zero exactly like a fresh world (noise
// draws are keyed by op index and reset with the clocks). Ties break
// by registration order, matching the cost policy's tie-break.
func (t *Tuner) measure(req measureReq) {
	w, err := mpi.NewWorldConfig(req.model, req.topo, mpi.Config{
		Engine: sim.EngineEvent,
		Noise:  req.noise,
	})
	if err != nil {
		t.fail(req, err)
		return
	}
	defer w.Close()

	inPlace := req.cl == coll.CollAllgatherv
	raced := map[string]int64{}
	var winner string
	var winnerPs int64
	for _, name := range coll.Algorithms(req.cl) {
		if !coll.Available(req.cl, name, req.env, inPlace) {
			continue
		}
		forced := coll.Tuning{Force: map[coll.Collective]string{req.cl: name}}
		body, err := raceBody(req.cl, req.env)
		if err != nil {
			t.fail(req, err)
			return
		}
		w.ResetClocks()
		if err := w.Run(func(p *mpi.Proc) error {
			coll.WithTuning(p.CommWorld(), forced)
			return body(p)
		}); err != nil {
			t.fail(req, fmt.Errorf("racing %s: %w", name, err))
			return
		}
		ps := int64(w.MaxClock())
		raced[name] = ps
		if winner == "" || ps < winnerPs {
			winner, winnerPs = name, ps
		}
	}
	if winner == "" {
		t.fail(req, fmt.Errorf("no applicable candidate"))
		return
	}
	t.store.Put(req.key, tune.Entry{Algorithm: winner, WinnerPs: winnerPs, RacedPs: raced})
}

// fail releases the point's claim (a later miss may retry) and counts
// the error.
func (t *Tuner) fail(req measureReq, err error) {
	t.store.Release(req.key)
	t.errs.Add(1)
	slog.Debug("tune measurement failed",
		"collective", req.key.Collective, "bytes", req.key.Bytes, "error", err)
}

// raceBody builds the single-operation measurement body of one
// selection point: the flat collective at the point's message size on
// the world communicator (the only communicators measured — see the
// file comment). Size-only buffers, one iteration: the race ranks
// candidates by the virtual makespan of exactly the call that missed.
func raceBody(cl coll.Collective, e coll.Env) (func(p *mpi.Proc) error, error) {
	b, n := e.Bytes, e.Count
	switch cl {
	case coll.CollAllgather:
		return func(p *mpi.Proc) error {
			return coll.Allgather(p.CommWorld(), mpi.Sized(b), mpi.Sized(b*p.Size()), b)
		}, nil
	case coll.CollAllgatherv:
		// The missed environment's Bytes is the total result; race a
		// uniform split of it (the closest expressible call).
		return func(p *mpi.Proc) error {
			c := p.CommWorld()
			per := b / max(c.Size(), 1)
			counts := make([]int, c.Size())
			for i := range counts {
				counts[i] = per
			}
			return coll.Allgatherv(c, mpi.Sized(per), mpi.Sized(per*c.Size()), counts)
		}, nil
	case coll.CollAllreduce:
		return func(p *mpi.Proc) error {
			return coll.Allreduce(p.CommWorld(), mpi.Sized(n*8), mpi.Sized(n*8), n, mpi.Float64, mpi.OpSum)
		}, nil
	case coll.CollReduce:
		return func(p *mpi.Proc) error {
			return coll.Reduce(p.CommWorld(), mpi.Sized(n*8), mpi.Sized(n*8), n, mpi.Float64, mpi.OpSum, 0)
		}, nil
	case coll.CollScan:
		return func(p *mpi.Proc) error {
			return coll.Scan(p.CommWorld(), mpi.Sized(n*8), mpi.Sized(n*8), n, mpi.Float64, mpi.OpSum)
		}, nil
	case coll.CollBcast:
		return func(p *mpi.Proc) error {
			return coll.Bcast(p.CommWorld(), mpi.Sized(b), 0)
		}, nil
	case coll.CollBarrier:
		return func(p *mpi.Proc) error { return coll.Barrier(p.CommWorld()) }, nil
	case coll.CollAlltoall:
		return func(p *mpi.Proc) error {
			c := p.CommWorld()
			return coll.Alltoall(c, mpi.Sized(b*c.Size()), mpi.Sized(b*c.Size()), b)
		}, nil
	case coll.CollGather:
		return func(p *mpi.Proc) error {
			c := p.CommWorld()
			return coll.Gather(c, mpi.Sized(b), mpi.Sized(b*c.Size()), b, 0)
		}, nil
	default:
		return nil, fmt.Errorf("collective %s is not measurable", cl)
	}
}

// installMeasured wires a query's compiled coll tuning to the tuner:
// lookups resolve against one immutable store snapshot (so every pick
// in the run sees the same store generation — bit-identical reruns on
// a warm store) and misses at world-communicator points enqueue
// background measurements. Returns the snapshot generation for the
// pool's shape key.
func installMeasured(tun *coll.Tuning, tr *Tuner, model *sim.CostModel, topo *sim.Topology, noise *sim.Noise, noiseKey string) uint64 {
	snap := tr.store.Snapshot()
	topoFP := topoFingerprint(topo)
	worldSize := topo.Size()
	tun.Lookup = func(cl coll.Collective, e coll.Env) (string, bool) {
		ent, ok := snap.Lookup(tuneKeyFor(cl, e, topoFP, noiseKey))
		if !ok {
			return "", false
		}
		return ent.Algorithm, true
	}
	tun.OnMiss = func(cl coll.Collective, e coll.Env) {
		if e.Size != worldSize {
			return
		}
		tr.request(measureReq{
			key:   tuneKeyFor(cl, e, topoFP, noiseKey),
			cl:    cl,
			env:   e,
			model: model,
			topo:  topo,
			noise: noise,
		})
	}
	return snap.Generation()
}
