package spec

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// ShapeKey identifies a world shape: everything that goes into
// mpi.NewWorldConfig and therefore everything two queries must agree
// on before they can share a resident world. Distinct fingerprints —
// different ladders, iteration counts, even different collectives —
// map onto the same ShapeKey whenever they describe the same machine,
// topology, engine, fold unit and tuning, which is exactly the
// geometry-reuse opportunity the pool exploits. Topo is the interned
// *sim.Topology pointer (sim.UniformHier interns structurally equal
// topologies), so the key is comparable and collision-free.
type ShapeKey struct {
	// Machine is the cost-model profile name. Profiles are
	// deterministic constructors, so two models of the same name are
	// interchangeable.
	Machine string
	// Topo is the interned topology.
	Topo *sim.Topology
	// Engine is the execution backend.
	Engine sim.Engine
	// FoldUnit is the rank-symmetry fold unit (0 = unfolded).
	FoldUnit int
	// Tuning is the canonical textual tuning spec (Tuning.Spec()).
	Tuning string
	// Noise is the canonical JSON of the query's noise block, "" for a
	// clean world. Noise is baked into a world at construction, so two
	// queries can only share a resident world when their noise configs
	// are identical.
	Noise string
	// TuneGen is the tuning-store generation a measured-policy query's
	// selections are bound to (0 otherwise). A world built against an
	// older snapshot carries that snapshot's picks in its CollConfig,
	// so it must not serve a query that expects newer measurements.
	TuneGen uint64
}

// PoolConfig sizes a WorldPool. The zero value is usable: every field
// defaults sensibly in NewWorldPool.
type PoolConfig struct {
	// MaxRanks is the rank budget across idle resident worlds; parking
	// a world that would push the idle total past it evicts the least
	// recently used idle worlds first. A single world larger than the
	// whole budget still parks alone — the hottest shape must stay
	// reusable — so the budget bounds variety, not one world's size
	// (default 1<<20).
	MaxRanks int
	// MaxIdle is how long a parked world may sit unused before the
	// reaper closes it (default 60s; <= 0 disables the reaper, so
	// worlds stay resident until evicted or the pool closes).
	MaxIdle time.Duration
	// MaxCheckouts caps how many times one world is handed out before
	// check-in retires it instead of parking it. Every Run appends a
	// few communicator contexts to the world's matcher tables, so an
	// immortal world would grow without bound; recycling bounds that
	// while still amortizing construction across many queries
	// (default 64).
	MaxCheckouts int
}

// PoolStats is a point-in-time snapshot of a WorldPool, exported as
// /metrics gauges by the service layer.
type PoolStats struct {
	// Hits counts checkouts served by a resident world.
	Hits int64
	// Misses counts checkouts that had to build a world.
	Misses int64
	// Evicted counts worlds closed to keep idle ranks under budget.
	Evicted int64
	// Reaped counts worlds closed by the idle reaper.
	Reaped int64
	// Recycled counts worlds retired at the checkout cap.
	Recycled int64
	// Discarded counts aborted or post-close worlds closed at check-in.
	Discarded int64
	// IdleWorlds is the resident world count awaiting checkout.
	IdleWorlds int
	// IdleRanks is the rank total across idle resident worlds.
	IdleRanks int
	// Leased is the number of worlds currently checked out.
	Leased int
}

// HitRatio returns Hits/(Hits+Misses), 0 when the pool is untouched.
func (s PoolStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PooledWorld is one checked-out world plus the bookkeeping the pool
// needs to decide its fate at check-in. The holder owns W exclusively
// until Checkin (or discards it by closing W and calling Checkin
// anyway — an aborted or closed world is never re-parked).
type PooledWorld struct {
	// W is the world, exclusively owned until check-in.
	W *mpi.World
	// key remembers the shape bucket the world parks under.
	key ShapeKey
	// uses counts checkouts of this world, against MaxCheckouts.
	uses int
	// last is the park time, consulted by the idle reaper.
	last time.Time
	// elem is the world's LRU position while parked.
	elem *list.Element
}

// WorldPool keeps warm mpi.Worlds resident between queries, keyed by
// ShapeKey. Checkout pops a matching idle world (most recently used
// first — its caches are hottest) or reports a miss so the caller
// builds one; Checkin parks the world for the next query of the same
// shape. The pool holds only idle worlds: a checked-out world is
// exclusively the holder's until it comes back, so the one-Run-at-a-
// time World contract is structural. Idle residency is bounded three
// ways — a rank budget with LRU eviction, an idle reaper, and a
// per-world checkout cap (see PoolConfig) — and Close retires
// everything, integrating with mpi.DrainIdleWorkers for graceful
// daemon shutdown.
type WorldPool struct {
	cfg PoolConfig

	mu        sync.Mutex
	idle      map[ShapeKey][]*PooledWorld // per-shape stacks, newest last
	lru       *list.List                  // *PooledWorld, front = most recent
	idleRanks int
	leased    int
	closed    bool

	hits, misses, evicted, reaped, recycled, discarded int64

	reapStop chan struct{}
	reapDone chan struct{}
}

// NewWorldPool builds a pool from cfg, applying defaults for zero
// fields, and starts the idle reaper unless MaxIdle disables it.
func NewWorldPool(cfg PoolConfig) *WorldPool {
	if cfg.MaxRanks <= 0 {
		cfg.MaxRanks = 1 << 20
	}
	if cfg.MaxIdle == 0 {
		cfg.MaxIdle = 60 * time.Second
	}
	if cfg.MaxCheckouts <= 0 {
		cfg.MaxCheckouts = 64
	}
	p := &WorldPool{
		cfg:  cfg,
		idle: make(map[ShapeKey][]*PooledWorld),
		lru:  list.New(),
	}
	if cfg.MaxIdle > 0 {
		p.reapStop = make(chan struct{})
		p.reapDone = make(chan struct{})
		go p.reaper()
	}
	return p
}

// Checkout hands out a resident world of the given shape, or builds
// one via build on a miss. The returned PooledWorld is exclusively the
// caller's until Checkin. Clocks are reset before a resident world is
// returned, so the caller sees the same starting state either way. A
// closed pool still works — every checkout is a miss and check-in
// closes — so shutdown never races request tails.
func (p *WorldPool) Checkout(key ShapeKey, build func() (*mpi.World, error)) (*PooledWorld, error) {
	p.mu.Lock()
	if stack := p.idle[key]; len(stack) > 0 {
		pw := stack[len(stack)-1]
		p.popLocked(pw)
		p.hits++
		p.leased++
		p.mu.Unlock()
		pw.uses++
		pw.W.ResetClocks()
		return pw, nil
	}
	p.misses++
	p.leased++
	p.mu.Unlock()

	w, err := build()
	if err != nil {
		p.mu.Lock()
		p.leased--
		p.mu.Unlock()
		return nil, err
	}
	return &PooledWorld{W: w, key: key, uses: 1}, nil
}

// Checkin returns a checked-out world. Poisoned, closed or worn-out
// worlds are retired; healthy ones park on the shape's idle stack,
// evicting least-recently-used idle worlds if the rank budget
// overflows. Always call it exactly once per successful Checkout.
func (p *WorldPool) Checkin(pw *PooledWorld) {
	w := pw.W
	// A damaged world (a scheduled rank failure fired) is permanently
	// missing ranks; parking it would hand dead state to the next query.
	healthy := !w.Aborted() && !w.Closed() && !w.Damaged()

	p.mu.Lock()
	p.leased--
	switch {
	case p.closed || !healthy:
		p.discarded++
	case pw.uses >= p.cfg.MaxCheckouts:
		p.recycled++
	default:
		pw.last = time.Now()
		pw.elem = p.lru.PushFront(pw)
		p.idle[pw.key] = append(p.idle[pw.key], pw)
		p.idleRanks += w.Size()
		var evict []*PooledWorld
		for p.idleRanks > p.cfg.MaxRanks && p.lru.Len() > 1 {
			oldest := p.lru.Back().Value.(*PooledWorld)
			p.popLocked(oldest)
			p.evicted++
			evict = append(evict, oldest)
		}
		p.mu.Unlock()
		for _, e := range evict {
			e.W.Close()
		}
		return
	}
	p.mu.Unlock()
	w.Close()
}

// popLocked unparks pw: removes it from its shape stack, the LRU list
// and the idle rank total. Caller holds p.mu.
func (p *WorldPool) popLocked(pw *PooledWorld) {
	stack := p.idle[pw.key]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == pw {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(p.idle, pw.key)
	} else {
		p.idle[pw.key] = stack
	}
	p.lru.Remove(pw.elem)
	pw.elem = nil
	p.idleRanks -= pw.W.Size()
}

// reaper closes worlds idle past MaxIdle, so a burst of one shape does
// not pin its ranks forever after traffic moves on.
func (p *WorldPool) reaper() {
	defer close(p.reapDone)
	interval := p.cfg.MaxIdle / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.reapStop:
			return
		case now := <-t.C:
			var stale []*PooledWorld
			p.mu.Lock()
			for {
				back := p.lru.Back()
				if back == nil {
					break
				}
				pw := back.Value.(*PooledWorld)
				if now.Sub(pw.last) < p.cfg.MaxIdle {
					break
				}
				p.popLocked(pw)
				p.reaped++
				stale = append(stale, pw)
			}
			p.mu.Unlock()
			for _, pw := range stale {
				pw.W.Close()
			}
		}
	}
}

// Close retires every idle world and stops the reaper. Worlds checked
// out at the time are closed when they come back (Checkin on a closed
// pool discards). After Close plus the holders' check-ins, the only
// simulator goroutines left are the parked cross-world rank workers,
// which mpi.DrainIdleWorkers releases.
func (p *WorldPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var all []*PooledWorld
	for e := p.lru.Front(); e != nil; e = e.Next() {
		all = append(all, e.Value.(*PooledWorld))
	}
	p.lru.Init()
	p.idle = make(map[ShapeKey][]*PooledWorld)
	p.idleRanks = 0
	p.mu.Unlock()

	for _, pw := range all {
		pw.W.Close()
	}
	if p.reapStop != nil {
		close(p.reapStop)
		<-p.reapDone
	}
}

// Stats snapshots the pool's counters and residency gauges.
func (p *WorldPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits:       p.hits,
		Misses:     p.misses,
		Evicted:    p.evicted,
		Reaped:     p.reaped,
		Recycled:   p.recycled,
		Discarded:  p.discarded,
		IdleWorlds: p.lru.Len(),
		IdleRanks:  p.idleRanks,
		Leased:     p.leased,
	}
}
