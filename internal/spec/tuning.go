package spec

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"

	"repro/internal/coll"
)

// Tuning is the declarative form of the collective selection engine's
// configuration (internal/coll Tuning): the policy, per-collective
// algorithm overrides, and the hybrid shared-window level. The zero
// value means "all defaults"; Canonicalize resolves it to the explicit
// canonical form (policy "table").
type Tuning struct {
	// Policy is "table" (profile cutoff tables, the default), "cost"
	// (LogGP minimizer over every applicable candidate), or "measured"
	// (winners cached in the tuning store, cost fallback while a
	// point's measurement is pending — see TUNING.md).
	Policy string `json:"policy,omitempty"`
	// Force pins collectives to named algorithms, e.g.
	// {"allreduce": "rabenseifner"}. Keys are collective names, values
	// registered algorithm names.
	Force map[string]string `json:"force,omitempty"`
	// SharedLevel names the topology level hosting the hybrid shared
	// window: "node" (default when empty) or a level inside the node.
	SharedLevel string `json:"shared_level,omitempty"`
}

// EnvVar is the environment variable the process-default tuning is
// read from — kept as a compatibility shim: importing this package
// parses it, installs the result via coll.SetDefaultTuning, and logs
// its spec-form equivalent.
const EnvVar = "REPRO_COLL_TUNING"

// ParseTuning parses the textual tuning grammar of comma-separated
// key=value pairs: "policy" takes "table", "cost" or "measured";
// "sharedlevel"
// takes a topology level name; a collective name (allgather,
// allreduce, bcast, ...) takes the algorithm to force, e.g.
//
//	policy=cost,allreduce=rabenseifner,barrier=central
//
// The same syntax is accepted by the REPRO_COLL_TUNING environment
// variable and the command-line -tuning flags. The grammar lived in
// internal/coll before the Spec API redesign; it round-trips through
// Tuning.Spec (parse -> Tuning -> render -> parse is the identity on
// canonical values).
func ParseTuning(s string) (Tuning, error) {
	var t Tuning
	s = strings.TrimSpace(s)
	if s == "" {
		return t, t.Canonicalize()
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return t, fmt.Errorf("spec: tuning entry %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "policy":
			t.Policy = val
		case "sharedlevel":
			if val == "" {
				return t, fmt.Errorf("spec: sharedlevel needs a level name")
			}
			t.SharedLevel = val
		default:
			if t.Force == nil {
				t.Force = map[string]string{}
			}
			t.Force[key] = val
		}
	}
	if err := t.Canonicalize(); err != nil {
		return t, err
	}
	return t, nil
}

// Canonicalize validates the tuning and rewrites it into the canonical
// form: an explicit policy ("" becomes "table"), validated collective
// and algorithm names, and a nil Force map when empty. It is
// idempotent.
func (t *Tuning) Canonicalize() error {
	switch t.Policy {
	case "":
		t.Policy = "table"
	case "table", "cost", "measured":
	default:
		return fmt.Errorf("spec: unknown policy %q (want table, cost or measured)", t.Policy)
	}
	if len(t.Force) == 0 {
		t.Force = nil
	}
	for name, algo := range t.Force {
		cl, err := coll.ParseCollective(name)
		if err != nil {
			return fmt.Errorf("spec: tuning force: %w", err)
		}
		if !coll.Registered(cl, algo) {
			return fmt.Errorf("spec: no algorithm %q registered for %s", algo, cl)
		}
	}
	// SharedLevel existence is validated against the topology when a
	// hybrid context is built (a tuning exists before any world does).
	return nil
}

// Spec renders the tuning in the textual grammar, canonically: policy
// first, forced collectives in name order, sharedlevel last.
// ParseTuning(t.Spec()) reproduces t for any canonicalized t.
func (t Tuning) Spec() string {
	policy := t.Policy
	if policy == "" {
		policy = "table"
	}
	parts := []string{"policy=" + policy}
	names := make([]string, 0, len(t.Force))
	for name := range t.Force {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		parts = append(parts, name+"="+t.Force[name])
	}
	if t.SharedLevel != "" {
		parts = append(parts, "sharedlevel="+t.SharedLevel)
	}
	return strings.Join(parts, ",")
}

// Coll converts the declarative tuning into the selection engine's
// runtime configuration. The tuning must canonicalize cleanly.
func (t Tuning) Coll() (coll.Tuning, error) {
	if err := t.Canonicalize(); err != nil {
		return coll.Tuning{}, err
	}
	var ct coll.Tuning
	switch t.Policy {
	case "cost":
		ct.Policy = coll.PolicyCost
	case "measured":
		ct.Policy = coll.PolicyMeasured
	}
	ct.SharedLevel = t.SharedLevel
	for name, algo := range t.Force {
		cl, err := coll.ParseCollective(name)
		if err != nil {
			return coll.Tuning{}, err
		}
		if ct.Force == nil {
			ct.Force = map[coll.Collective]string{}
		}
		ct.Force[cl] = algo
	}
	return ct, nil
}

// TuningFromColl converts a runtime coll.Tuning back into the
// declarative form (the render direction of the round trip).
func TuningFromColl(ct coll.Tuning) Tuning {
	t := Tuning{Policy: ct.Policy.String(), SharedLevel: ct.SharedLevel}
	for cl, algo := range ct.Force {
		if t.Force == nil {
			t.Force = map[string]string{}
		}
		t.Force[cl.String()] = algo
	}
	return t
}

// init installs the REPRO_COLL_TUNING compatibility shim: a set,
// well-formed value becomes the process-default coll tuning exactly as
// when internal/coll parsed the variable itself, and its spec-form
// equivalent (textual and JSON) is logged so users can migrate to the
// Spec API. A malformed value is logged and ignored rather than
// failing every collective in the job.
func init() {
	s := os.Getenv(EnvVar)
	if s == "" {
		return
	}
	t, err := ParseTuning(s)
	if err != nil {
		slog.Warn("ignoring "+EnvVar, "error", err)
		return
	}
	ct, err := t.Coll()
	if err != nil {
		slog.Warn("ignoring "+EnvVar, "error", err)
		return
	}
	coll.SetDefaultTuning(ct)
	js, _ := json.Marshal(t)
	slog.Info(EnvVar+" installed as the process-default tuning",
		"spec", t.Spec(), "spec_json", string(js))
}
