package spec

import (
	"repro/internal/coll"
	"repro/internal/sim"
)

// PriceCandidate is one registered algorithm's alpha-beta-gamma
// estimate at a ladder point.
type PriceCandidate struct {
	// Name is the registered algorithm name.
	Name string `json:"name"`
	// Applicable reports whether the algorithm can run this call at
	// all (e.g. recursive doubling needs a power-of-two communicator).
	Applicable bool `json:"applicable"`
	// EstUs is the cost-model estimate in microseconds (0 when
	// inapplicable).
	EstUs float64 `json:"est_us"`
}

// PricePoint is the selection engine's view of one ladder size: the
// policy's pick and every candidate's price.
type PricePoint struct {
	// Bytes is the ladder entry.
	Bytes int `json:"bytes"`
	// Chosen is the algorithm the query's tuning policy selects.
	Chosen string `json:"chosen"`
	// Candidates lists every registered algorithm's estimate, in
	// registration order.
	Candidates []PriceCandidate `json:"candidates"`
}

// PriceReport is what pricing a Query produces: no simulation, only
// the selection engine's cost estimates — microseconds to compute, so
// the service serves it outside the worker pool.
type PriceReport struct {
	// Fingerprint is the query's canonical fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Machine is the cost-model profile name.
	Machine string `json:"machine"`
	// Topology is the human-readable shape.
	Topology string `json:"topology"`
	// Ranks is the total rank count.
	Ranks int `json:"ranks"`
	// Collective is the operation priced.
	Collective string `json:"collective"`
	// Hop is the hop class the estimates assume: the class of the
	// innermost topology level containing every rank (the
	// communicator-wide locality of CommWorld).
	Hop string `json:"hop"`
	// Policy is the selection policy in effect.
	Policy string `json:"policy"`
	// Points is the ladder, ascending by Bytes.
	Points []PricePoint `json:"points"`
}

// commWideHop returns the hop class of a communicator spanning the
// whole topology: the class of the innermost level with a single
// group, HopNet when every level is partitioned.
func commWideHop(t *sim.Topology) sim.HopClass {
	for l := 0; l < t.NumLevels(); l++ {
		if t.Groups(l) == 1 {
			return t.LevelClass(l)
		}
	}
	return sim.HopNet
}

// Price evaluates the query against the selection engine's cost
// estimates only: for every ladder size, the algorithm the tuning
// policy picks and each registered candidate's price. The query is
// canonicalized in place.
func Price(q *Query) (*PriceReport, error) {
	if err := q.Canonicalize(); err != nil {
		return nil, err
	}
	fp, err := q.Fingerprint()
	if err != nil {
		return nil, err
	}
	model, err := q.Model()
	if err != nil {
		return nil, err
	}
	topo, err := q.Topology.Build()
	if err != nil {
		return nil, err
	}
	cl, err := coll.ParseCollective(q.Collective)
	if err != nil {
		return nil, err
	}
	collTun, err := q.Tuning.Coll()
	if err != nil {
		return nil, err
	}
	hop := commWideHop(topo)

	rep := &PriceReport{
		Fingerprint: fp,
		Machine:     q.Machine,
		Topology:    topo.String(),
		Ranks:       topo.Size(),
		Collective:  q.Collective,
		Hop:         hop.String(),
		Policy:      collTun.Policy.String(),
	}
	for _, b := range q.Sizes {
		// Env conventions (see coll.Env): Bytes is the per-rank block
		// for allgather/alltoall, the total payload otherwise; Count
		// feeds the reduction gamma term and uses the same whole-element
		// floor as the run path, so /v1/price and /v1/run agree on
		// sub-8-byte ladder entries.
		e := coll.Env{Size: topo.Size(), Bytes: b, Count: elems(b), Model: model, Hop: hop}
		pt := PricePoint{Bytes: b}
		if chosen, err := coll.Choose(cl, e, collTun); err == nil {
			pt.Chosen = chosen
		}
		for _, c := range coll.Candidates(cl, e) {
			pt.Candidates = append(pt.Candidates, PriceCandidate{
				Name:       c.Name,
				Applicable: c.Applicable,
				EstUs:      c.Est.Us(),
			})
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
