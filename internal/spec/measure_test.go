package spec_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/spec"
	"repro/internal/tune"
)

// tunedQueryJSON is the measured-policy workload the determinism tests
// share: a congested allreduce ladder, where the LogGP prior and the
// measured winners can disagree.
func tunedQueryJSON(engine string) string {
	eng := ""
	if engine != "" {
		eng = `,"engine":"` + engine + `"`
	}
	return `{"machine":"laptop","topology":{"nodes":4,"ppn":4},` +
		`"collective":"allreduce","sizes":[1024,4096,16384],"iters":2` + eng + `,` +
		`"tuning":{"policy":"measured"},` +
		`"noise":{"seed":1,"congestion":{"net":16}}}`
}

func runTuned(t *testing.T, e *spec.Exec, raw string) *spec.Result {
	t.Helper()
	q, err := spec.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.RunContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMeasuredColdFallsBackToCost: with an empty store every selection
// misses, so a measured-policy run must return exactly the cost
// policy's virtual times (the never-block contract), while the tuner
// measures the missed points in the background.
func TestMeasuredColdFallsBackToCost(t *testing.T) {
	costRaw := `{"machine":"laptop","topology":{"nodes":4,"ppn":4},` +
		`"collective":"allreduce","sizes":[1024,4096,16384],"iters":2,` +
		`"tuning":{"policy":"cost"},` +
		`"noise":{"seed":1,"congestion":{"net":16}}}`
	cost := runTuned(t, &spec.Exec{}, costRaw)

	store := tune.NewStore()
	tuner := spec.NewTuner(store)
	defer tuner.Close()
	cold := runTuned(t, &spec.Exec{Tuner: tuner}, tunedQueryJSON(""))
	for i := range cost.Points {
		if cold.Points[i].VirtualPs != cost.Points[i].VirtualPs {
			t.Errorf("point %d: cold measured %d ps, cost %d ps — pending measurements must serve the cost choice",
				i, cold.Points[i].VirtualPs, cost.Points[i].VirtualPs)
		}
	}
	tuner.Drain()
	st := store.Stats()
	if st.Measured != 3 {
		t.Fatalf("measured %d points, want 3 (one per world-communicator ladder size)", st.Measured)
	}
	// A tuner-less measured run is also exactly the cost run.
	plain := runTuned(t, &spec.Exec{}, tunedQueryJSON(""))
	for i := range cost.Points {
		if plain.Points[i].VirtualPs != cost.Points[i].VirtualPs {
			t.Errorf("point %d: tuner-less measured %d ps, cost %d ps",
				i, plain.Points[i].VirtualPs, cost.Points[i].VirtualPs)
		}
	}
}

// TestMeasuredWarmGoldenDeterminism is the PR 10 golden: once the
// store is warm (and persisted + reloaded, so the on-disk round trip
// is in the loop), every execution path — goroutine/event engine ×
// {perpoint, warm, pooled, pooled-parallel} — and a full rerun must
// produce bit-identical virtual times.
func TestMeasuredWarmGoldenDeterminism(t *testing.T) {
	// Warm a store through a cold run.
	store := tune.NewStore()
	tuner := spec.NewTuner(store)
	runTuned(t, &spec.Exec{Tuner: tuner}, tunedQueryJSON(""))
	tuner.Drain()
	tuner.Close()
	if store.Len() == 0 {
		t.Fatal("warm-up measured nothing")
	}

	// Persist and reload: the warm runs serve from the reloaded store.
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := store.Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := tune.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != store.Len() {
		t.Fatalf("reloaded %d entries, saved %d", reloaded.Len(), store.Len())
	}
	warmTuner := spec.NewTuner(reloaded)
	defer warmTuner.Close()

	pool := spec.NewWorldPool(spec.PoolConfig{MaxIdle: -1})
	defer pool.Close()
	execs := map[string]*spec.Exec{
		"perpoint":        {PerPointWorlds: true, Tuner: warmTuner},
		"warm":            {Tuner: warmTuner},
		"pooled":          {Pool: pool, Tuner: warmTuner},
		"pooled-parallel": {Pool: pool, Parallelism: 4, Tuner: warmTuner},
	}
	var ref *spec.Result
	for _, engine := range []string{"", "event"} {
		for name, e := range execs {
			for rerun := 0; rerun < 2; rerun++ {
				r := runTuned(t, e, tunedQueryJSON(engine))
				if ref == nil {
					ref = r
					continue
				}
				for i := range ref.Points {
					if r.Points[i].VirtualPs != ref.Points[i].VirtualPs {
						t.Errorf("engine=%q %s rerun=%d point %d: %d ps, reference %d ps",
							engine, name, rerun, i, r.Points[i].VirtualPs, ref.Points[i].VirtualPs)
					}
				}
			}
		}
	}
	// The warm runs resolved from the store, not the cost fallback.
	if st := reloaded.Stats(); st.Hits == 0 {
		t.Fatal("warm runs never hit the store")
	}
	if reloaded.Generation() != 0 || reloaded.Len() != store.Len() {
		t.Fatalf("warm runs mutated the store (gen %d, len %d)", reloaded.Generation(), reloaded.Len())
	}
}

// TestMeasuredSharedStoreFile: two independent tuners loading one
// store file (two daemons sharing -tune-store) make identical picks
// and produce bit-identical virtual times.
func TestMeasuredSharedStoreFile(t *testing.T) {
	store := tune.NewStore()
	tuner := spec.NewTuner(store)
	runTuned(t, &spec.Exec{Tuner: tuner}, tunedQueryJSON(""))
	tuner.Drain()
	tuner.Close()
	path := filepath.Join(t.TempDir(), "store.jsonl")
	if err := store.Save(path); err != nil {
		t.Fatal(err)
	}

	var results [2]*spec.Result
	for d := range results {
		st, err := tune.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		tr := spec.NewTuner(st)
		results[d] = runTuned(t, &spec.Exec{Tuner: tr}, tunedQueryJSON("event"))
		tr.Close()
	}
	for i := range results[0].Points {
		if results[0].Points[i] != results[1].Points[i] {
			t.Errorf("point %d: daemon A %+v, daemon B %+v",
				i, results[0].Points[i], results[1].Points[i])
		}
	}
}

// TestMeasuredHammer is the -race satellite: many goroutines resolving
// selections through ONE shared store while the measurement backfill
// runs concurrently. The store must never tear (the race detector
// referees) and every point must be measured exactly once
// (singleflight on the measurement key), no matter how many runs miss
// it simultaneously.
func TestMeasuredHammer(t *testing.T) {
	store := tune.NewStore()
	tuner := spec.NewTuner(store)
	defer tuner.Close()
	e := &spec.Exec{Tuner: tuner}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Alternate engines so both backends race through the
			// same store concurrently.
			engine := ""
			if g%2 == 1 {
				engine = "event"
			}
			for rep := 0; rep < 3; rep++ {
				q, err := spec.Parse([]byte(tunedQueryJSON(engine)))
				if err != nil {
					errs <- err
					return
				}
				if _, err := e.RunContext(context.Background(), q); err != nil {
					errs <- fmt.Errorf("goroutine %d rep %d: %w", g, rep, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tuner.Drain()
	st := store.Stats()
	// 3 ladder sizes -> 3 world-communicator points, measured exactly
	// once each no matter how many of the 24 runs missed them.
	if st.Measured != 3 {
		t.Fatalf("measured %d times for 3 distinct points (singleflight broken)", st.Measured)
	}
	if st.Entries != 3 {
		t.Fatalf("store holds %d entries, want 3", st.Entries)
	}
	if tuner.Errors() != 0 {
		t.Fatalf("%d measurement errors", tuner.Errors())
	}

	// And hammer the warm store: concurrent warm runs must all agree.
	results := make([]*spec.Result, goroutines)
	wg = sync.WaitGroup{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q, _ := spec.Parse([]byte(tunedQueryJSON("event")))
			r, err := e.RunContext(context.Background(), q)
			if err == nil {
				results[g] = r
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] == nil || results[0] == nil {
			t.Fatal("warm hammer run failed")
		}
		for i := range results[0].Points {
			if results[g].Points[i] != results[0].Points[i] {
				t.Errorf("warm run %d point %d: %+v, run 0 has %+v",
					g, i, results[g].Points[i], results[0].Points[i])
			}
		}
	}
}
