package spec_test

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/spec"
)

// noisyQuery builds a query exercising every noise dimension at once:
// jitter, stragglers, per-hop congestion, and a scheduled failure whose
// deadline lies far beyond the run's makespan (so the delivery machinery
// is armed but the collectives complete). seed and engine vary per call.
func noisyQuery(t *testing.T, engine string, seed int64) *spec.Query {
	t.Helper()
	raw := `{"machine":"laptop","topology":{"nodes":2,"ppn":4},
		"collective":"allreduce","sizes":[8,4096,65536],"iters":2,
		"engine":"` + engine + `",
		"noise":{"seed":` + strconv.FormatInt(seed, 10) + `,"jitter":0.3,
			"stragglers":[1,5],"straggler_factor":4,
			"congestion":{"net":2,"shm":1.5},
			"failures":[{"rank":7,"at_ps":1000000000000000}]}}`
	q, err := spec.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestNoiseGoldenDeterminism is the PR's golden suite: one seed, every
// execution path — both engines, per-point referee worlds, the warm
// within-query path, and a pooled world run twice (second pass warm) —
// must produce bit-identical virtual times; a different seed must not.
func TestNoiseGoldenDeterminism(t *testing.T) {
	pool := spec.NewWorldPool(spec.PoolConfig{MaxIdle: -1})
	defer pool.Close()
	run := func(engine string, seed int64, e *spec.Exec) *spec.Result {
		r, err := e.RunContext(context.Background(), noisyQuery(t, engine, seed))
		if err != nil {
			t.Fatalf("engine %s seed %d: %v", engine, seed, err)
		}
		return r
	}
	ref := run("goroutine", 3, &spec.Exec{PerPointWorlds: true})
	challengers := map[string]*spec.Result{
		"goroutine/warm":     run("goroutine", 3, &spec.Exec{}),
		"event/perpoint":     run("event", 3, &spec.Exec{PerPointWorlds: true}),
		"event/warm":         run("event", 3, &spec.Exec{}),
		"goroutine/pooled":   run("goroutine", 3, &spec.Exec{Pool: pool}),
		"goroutine/pooled-2": run("goroutine", 3, &spec.Exec{Pool: pool}),
	}
	for name, r := range challengers {
		if len(r.Points) != len(ref.Points) {
			t.Fatalf("%s: %d points, referee has %d", name, len(r.Points), len(ref.Points))
		}
		for i := range ref.Points {
			if r.Points[i].VirtualPs != ref.Points[i].VirtualPs {
				t.Errorf("%s point %d (%d B): %d ps, referee %d ps",
					name, i, ref.Points[i].Bytes, r.Points[i].VirtualPs, ref.Points[i].VirtualPs)
			}
		}
	}
	if s := pool.Stats(); s.Hits == 0 {
		t.Errorf("second pooled run never reused the noisy world: %+v", s)
	}
	other := run("goroutine", 4, &spec.Exec{})
	diverged := false
	for i := range ref.Points {
		if other.Points[i].VirtualPs != ref.Points[i].VirtualPs {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seed 3 and seed 4 produced identical ladders — seed is not keying the draws")
	}
}

// TestNoiseFreeFingerprintPinned pins the canonical JSON and fingerprint
// of a representative noise-free query to their pre-noise values: adding
// the noise block to the schema must not move a single byte of the
// canonical form of queries that don't use it, or every cache entry and
// recorded baseline keyed by fingerprint silently invalidates.
func TestNoiseFreeFingerprintPinned(t *testing.T) {
	q, err := spec.Parse([]byte(`{"machine":"hazelhen-cray","topology":{"nodes":4,"ppn":8},
		"collective":"allreduce","sizes":[64,4096],"iters":2,"tuning":{"policy":"cost"}}`))
	if err != nil {
		t.Fatal(err)
	}
	cj, err := q.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	const wantCanon = `{"machine":"hazelhen-cray","topology":{"per_leaf":8,"levels":[{"name":"node","arity":4}]},"collective":"allreduce","sizes":[64,4096],"iters":2,"engine":"goroutine","fold":"auto","tuning":{"policy":"cost"}}`
	if string(cj) != wantCanon {
		t.Errorf("canonical JSON drifted:\n got %s\nwant %s", cj, wantCanon)
	}
	fp, err := q.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	const wantFP = "5ff86377b0c6670a947b1efb02c174b8b104402061e214dabd8ead96ca0e0ef1"
	if fp != wantFP {
		t.Errorf("fingerprint drifted: got %s, want %s", fp, wantFP)
	}
}

// TestNoiseZeroBlockCanonicalizesAway: an explicit noise block that
// configures nothing is the same query as no block at all — identical
// canonical JSON (no "noise" key) and identical fingerprint.
func TestNoiseZeroBlockCanonicalizesAway(t *testing.T) {
	base := `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]`
	bare, err := spec.Parse([]byte(base + `}`))
	if err != nil {
		t.Fatal(err)
	}
	bareFP, err := bare.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []string{`{}`, `{"seed":0}`, `{"jitter":0,"congestion":{}}`} {
		q, err := spec.Parse([]byte(base + `,"noise":` + block + `}`))
		if err != nil {
			t.Fatalf("noise %s: %v", block, err)
		}
		if q.Noise != nil {
			t.Errorf("noise %s: canonical query kept the block: %+v", block, q.Noise)
		}
		cj, err := q.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(cj, []byte(`"noise"`)) {
			t.Errorf("noise %s: canonical JSON kept the key: %s", block, cj)
		}
		fp, err := q.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp != bareFP {
			t.Errorf("noise %s: fingerprint %s differs from bare %s", block, fp, bareFP)
		}
	}
	// A seeded block, by contrast, must change the fingerprint even
	// though it perturbs nothing else about the query.
	seeded, err := spec.Parse([]byte(base + `,"noise":{"seed":7,"jitter":0.1}}`))
	if err != nil {
		t.Fatal(err)
	}
	seededFP, err := seeded.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if seededFP == bareFP {
		t.Error("seeded noise block did not change the fingerprint")
	}
}

// TestNoiseCanonicalOrdering: stragglers are sorted and deduped and
// failures sorted by (rank, time), so declaration order cannot leak
// into the fingerprint.
func TestNoiseCanonicalOrdering(t *testing.T) {
	mk := func(noise string) string {
		q, err := spec.Parse([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":4},
			"collective":"bcast","sizes":[8],"noise":` + noise + `}`))
		if err != nil {
			t.Fatalf("%s: %v", noise, err)
		}
		fp, err := q.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	a := mk(`{"stragglers":[5,1,5],"straggler_factor":2,
		"failures":[{"rank":3,"at_ps":200},{"rank":0,"at_ps":100},{"rank":3,"at_ps":50}]}`)
	b := mk(`{"stragglers":[1,5],"straggler_factor":2,
		"failures":[{"rank":0,"at_ps":100},{"rank":3,"at_ps":50},{"rank":3,"at_ps":200}]}`)
	if a != b {
		t.Errorf("declaration order leaked into the fingerprint: %s vs %s", a, b)
	}
}

// TestNoiseRejections: malformed noise blocks are refused at Parse with
// an error naming the offending field, never deferred to run time.
func TestNoiseRejections(t *testing.T) {
	cases := map[string]string{
		"jitter above cap":       `{"jitter":17}`,
		"negative jitter":        `{"jitter":-0.5}`,
		"stragglers sans factor": `{"stragglers":[1]}`,
		"factor below one":       `{"stragglers":[1],"straggler_factor":0.5}`,
		"straggler out of range": `{"stragglers":[64],"straggler_factor":2}`,
		"unknown hop class":      `{"congestion":{"warp":2}}`,
		"congestion below one":   `{"congestion":{"net":0.5}}`,
		"failure out of range":   `{"failures":[{"rank":-1,"at_ps":100}]}`,
		"negative failure time":  `{"failures":[{"rank":1,"at_ps":-5}]}`,
		"unknown noise field":    `{"seeds":42}`,
	}
	for name, block := range cases {
		_, err := spec.Parse([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":4},
			"collective":"bcast","sizes":[8],"noise":` + block + `}`))
		if err == nil {
			t.Errorf("%s: accepted %s", name, block)
		} else if !strings.Contains(err.Error(), "noise") && !strings.Contains(err.Error(), "unknown field") {
			t.Errorf("%s: error does not identify the noise block: %v", name, err)
		}
	}
}
