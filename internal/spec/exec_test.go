package spec_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/spec"
)

// allCollectives is every runnable Query collective — the warm-world
// paths must be refereed against the cold path on all of them.
var allCollectives = []string{
	"allgather", "allgatherv", "allreduce", "reduce", "scan",
	"bcast", "barrier", "alltoall", "gather",
}

// TestExecWarmPathsBitIdentical is the PR 8 referee: for every
// collective on both engines, the construct-per-point path
// (PerPointWorlds — the historical behavior), the warm within-query
// path (zero Exec), the pooled path and the pooled+parallel path must
// return bit-identical virtual times. The ladder mixes sizes so the
// event engine's fold=auto produces multiple fold groups for the
// foldable collectives, covering group partitioning too.
func TestExecWarmPathsBitIdentical(t *testing.T) {
	pool := spec.NewWorldPool(spec.PoolConfig{MaxIdle: -1})
	defer pool.Close()
	execs := map[string]*spec.Exec{
		"perpoint":        {PerPointWorlds: true},
		"warm":            {},
		"pooled":          {Pool: pool},
		"pooled-parallel": {Pool: pool, Parallelism: 4},
	}
	for _, collective := range allCollectives {
		for _, engine := range []string{"", `,"engine":"event"`} {
			raw := `{"machine":"laptop","topology":{"nodes":2,"ppn":4},"collective":"` +
				collective + `","sizes":[8,512,4096,65536],"iters":2` + engine + `}`
			results := map[string]*spec.Result{}
			for name, e := range execs {
				q, err := spec.Parse([]byte(raw))
				if err != nil {
					t.Fatal(err)
				}
				r, err := e.RunContext(context.Background(), q)
				if err != nil {
					t.Fatalf("%s %s %s: %v", collective, engine, name, err)
				}
				results[name] = r
			}
			ref := results["perpoint"]
			for name, r := range results {
				if len(r.Points) != len(ref.Points) {
					t.Fatalf("%s %s %s: %d points, referee has %d",
						collective, engine, name, len(r.Points), len(ref.Points))
				}
				for i := range ref.Points {
					if r.Points[i] != ref.Points[i] {
						t.Errorf("%s %s %s point %d: %+v, referee %+v",
							collective, engine, name, i, r.Points[i], ref.Points[i])
					}
				}
			}
		}
	}
	// Sanity: the pooled runs actually reused worlds — otherwise the
	// referee proved nothing about warm state.
	if s := pool.Stats(); s.Hits == 0 {
		t.Errorf("pooled executions never hit the pool: %+v", s)
	}
}

// TestExecPooledSequenceMatchesCold reruns one query through the SAME
// pooled world several times: the second and later runs execute on a
// warm, already-run world and must still match the cold result
// exactly.
func TestExecPooledSequenceMatchesCold(t *testing.T) {
	pool := spec.NewWorldPool(spec.PoolConfig{MaxIdle: -1})
	defer pool.Close()
	raw := `{"machine":"laptop","topology":{"nodes":2,"ppn":4},"collective":"allgather","sizes":[64,4096],"iters":3}`
	cold := func() *spec.Result {
		q, err := spec.Parse([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		r, err := (&spec.Exec{PerPointWorlds: true}).RunContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	e := &spec.Exec{Pool: pool}
	for rerun := 0; rerun < 3; rerun++ {
		q, err := spec.Parse([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.RunContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cold.Points {
			if r.Points[i] != cold.Points[i] {
				t.Errorf("rerun %d point %d: %+v, cold %+v", rerun, i, r.Points[i], cold.Points[i])
			}
		}
	}
	if s := pool.Stats(); s.Hits < 2 {
		t.Errorf("reruns did not reuse the world: %+v", s)
	}
}

// TestRunRejectsBadFold pins the satellite fix: a malformed or
// non-positive fold reaches the caller as an error instead of being
// silently ignored (the old path ran unfolded as if nothing happened).
func TestRunRejectsBadFold(t *testing.T) {
	for _, fold := range []string{"banana", "0", "-4", "1.5"} {
		q, err := spec.Parse([]byte(
			`{"machine":"laptop","topology":{"nodes":2,"ppn":4},"collective":"allgather","sizes":[64],"fold":"` + fold + `"}`))
		if err == nil {
			_, err = spec.Run(q)
		}
		if err == nil || !strings.Contains(err.Error(), "fold") {
			t.Errorf("fold %q: got %v, want fold error", fold, err)
		}
	}
}
