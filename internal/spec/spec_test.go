package spec_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/coll"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestParseTuningGrammar(t *testing.T) {
	tun, err := spec.ParseTuning("policy=cost, allreduce=rabenseifner ,barrier=central")
	if err != nil {
		t.Fatal(err)
	}
	if tun.Policy != "cost" {
		t.Errorf("policy = %q", tun.Policy)
	}
	if tun.Force["allreduce"] != "rabenseifner" || tun.Force["barrier"] != "central" {
		t.Errorf("force map = %v", tun.Force)
	}
	if tun, err := spec.ParseTuning(""); err != nil || tun.Policy != "table" || tun.Force != nil {
		t.Errorf("empty spec: %+v %v", tun, err)
	}
	for _, bad := range []string{"policy=fast", "allgather=quantum", "warp=9", "nokey", "sharedlevel="} {
		if _, err := spec.ParseTuning(bad); err == nil {
			t.Errorf("ParseTuning(%q) accepted", bad)
		}
	}
}

// TestTuningRoundTrip is the re-homing guarantee: parse -> render ->
// parse is the identity, and the rendered form is canonical.
func TestTuningRoundTrip(t *testing.T) {
	for _, s := range []string{
		"",
		"policy=table",
		"policy=cost",
		"policy=cost,allreduce=rabenseifner,barrier=central",
		"policy=measured",
		"policy=measured,allreduce=recdbl",
		"sharedlevel=socket,gather=linear,scan=linear",
		"bcast=binomial,policy=cost,sharedlevel=numa",
	} {
		tun, err := spec.ParseTuning(s)
		if err != nil {
			t.Fatalf("ParseTuning(%q): %v", s, err)
		}
		rendered := tun.Spec()
		again, err := spec.ParseTuning(rendered)
		if err != nil {
			t.Fatalf("ParseTuning(render(%q) = %q): %v", s, rendered, err)
		}
		if again.Spec() != rendered {
			t.Errorf("round trip of %q: %q != %q", s, again.Spec(), rendered)
		}
	}
}

// TestTuningCollConversion checks the declarative <-> runtime
// conversion both ways.
func TestTuningCollConversion(t *testing.T) {
	tun, err := spec.ParseTuning("policy=cost,allreduce=rabenseifner,sharedlevel=socket")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tun.Coll()
	if err != nil {
		t.Fatal(err)
	}
	if ct.Policy != coll.PolicyCost || ct.Force[coll.CollAllreduce] != "rabenseifner" || ct.SharedLevel != "socket" {
		t.Fatalf("converted %+v", ct)
	}
	back := spec.TuningFromColl(ct)
	if back.Spec() != tun.Spec() {
		t.Errorf("round trip through coll.Tuning: %q != %q", back.Spec(), tun.Spec())
	}
	mt, err := spec.ParseTuning("policy=measured")
	if err != nil {
		t.Fatal(err)
	}
	mct, err := mt.Coll()
	if err != nil {
		t.Fatal(err)
	}
	if mct.Policy != coll.PolicyMeasured {
		t.Fatalf("measured converted to %v", mct.Policy)
	}
	if back := spec.TuningFromColl(mct); back.Spec() != "policy=measured" {
		t.Errorf("measured render: %q", back.Spec())
	}
}

func FuzzParseTuning(f *testing.F) {
	f.Add("policy=cost,allreduce=rabenseifner")
	f.Add("sharedlevel=socket")
	f.Add("policy=table,barrier=central,bcast=binomial")
	f.Add("")
	f.Add("warp=9")
	f.Add("policy=measured")
	f.Add("policy=measured,allreduce=recdbl,sharedlevel=numa")
	f.Add("policy=measured,store=ignored")
	f.Fuzz(func(t *testing.T, s string) {
		tun, err := spec.ParseTuning(s)
		if err != nil {
			return
		}
		rendered := tun.Spec()
		again, err := spec.ParseTuning(rendered)
		if err != nil {
			t.Fatalf("render of accepted spec %q rejected: %q: %v", s, rendered, err)
		}
		if again.Spec() != rendered {
			t.Fatalf("render not a fixed point: %q -> %q -> %q", s, rendered, again.Spec())
		}
	})
}

const pointQuery = `{
  "machine": "laptop",
  "topology": {"nodes": 2, "ppn": 2},
  "collective": "allreduce",
  "sizes": [64, 8, 64],
  "tuning": {"policy": "cost"}
}`

// TestQueryCanonicalIdempotent: canonicalize∘parse is idempotent, the
// ladder is sorted and deduplicated, and defaults are explicit.
func TestQueryCanonicalIdempotent(t *testing.T) {
	q, err := spec.Parse([]byte(pointQuery))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Sizes; len(got) != 2 || got[0] != 8 || got[1] != 64 {
		t.Fatalf("ladder not sorted+deduped: %v", got)
	}
	if q.Engine != "goroutine" || q.Fold != "auto" || q.Iters != 1 || q.Tuning.Policy != "cost" {
		t.Fatalf("defaults not explicit: %+v", q)
	}
	if q.Topology.Nodes != 0 || q.Topology.PPN != 0 || q.Topology.PerLeaf != 2 {
		t.Fatalf("shorthand not canonicalized: %+v", q.Topology)
	}
	first, err := q.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := spec.Parse(first)
	if err != nil {
		t.Fatalf("canonical JSON rejected: %v", err)
	}
	second, err := q2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("canonicalize not idempotent:\n%s\n%s", first, second)
	}
}

// TestFingerprintInvariance: equivalent declarations fingerprint
// identically, different runs differently.
func TestFingerprintInvariance(t *testing.T) {
	fp := func(s string) string {
		q, err := spec.Parse([]byte(s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		f, err := q.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a := fp(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`)
	b := fp(`{"machine":"laptop","topology":{"per_leaf":2,"levels":[{"name":"node","arity":2}]},
	          "collective":"bcast","sizes":[8],"engine":"goroutine","fold":"auto","iters":1,
	          "tuning":{"policy":"table"}}`)
	if a != b {
		t.Errorf("equivalent queries fingerprint differently: %s vs %s", a, b)
	}
	c := fp(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[16]}`)
	if a == c {
		t.Errorf("different ladders share a fingerprint")
	}
}

func TestQueryRejections(t *testing.T) {
	cases := map[string]string{
		"unknown field":       `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"warp":9}`,
		"unknown machine":     `{"machine":"cray-3","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`,
		"no machine":          `{"topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]}`,
		"empty topology":      `{"machine":"laptop","topology":{},"collective":"bcast","sizes":[8]}`,
		"both topology forms": `{"machine":"laptop","topology":{"nodes":2,"ppn":2,"per_leaf":2,"levels":[{"name":"node","arity":2}]},"collective":"bcast","sizes":[8]}`,
		"no node level":       `{"machine":"laptop","topology":{"per_leaf":2,"levels":[{"name":"socket","arity":2}]},"collective":"bcast","sizes":[8]}`,
		"unknown collective":  `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"warpgather","sizes":[8]}`,
		"neighbor collective": `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"neighboralltoall","sizes":[8]}`,
		"empty ladder":        `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[]}`,
		"negative size":       `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[-8]}`,
		"bad engine":          `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"engine":"warp"}`,
		"bad fold":            `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"fold":"-3"}`,
		"bad policy":          `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"tuning":{"policy":"fast"}}`,
		"trailing data":       `{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8]} {}`,
	}
	for name, body := range cases {
		if _, err := spec.Parse([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func FuzzParseQuery(f *testing.F) {
	f.Add([]byte(pointQuery))
	f.Add([]byte(`{"machine":"laptop","topology":{"per_leaf":2,"levels":[{"name":"socket","arity":2},{"name":"node","arity":2}]},"collective":"allgather","sizes":[8,64],"engine":"event"}`))
	f.Add([]byte(`{"machine":"hazelhen-cray","topology":{"nodes":4,"ppn":4},"collective":"barrier","sizes":[1]}`))
	f.Add([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":4},"collective":"allreduce","sizes":[8],"noise":{"seed":42,"jitter":0.25,"stragglers":[5,1],"straggler_factor":4,"congestion":{"net":2,"shm":1.5},"failures":[{"rank":3,"at_ps":1000000}]}}`))
	f.Add([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"noise":{}}`))
	f.Add([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"bcast","sizes":[8],"noise":{"congestion":{"group":1024}}}`))
	f.Add([]byte(`{"machine":"laptop","topology":{"nodes":8,"ppn":8},"collective":"allreduce","sizes":[1024,16384],"tuning":{"policy":"measured"},"noise":{"seed":1,"congestion":{"net":16}}}`))
	f.Add([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"allreduce","sizes":[8],"tuning":{"policy":"measured","force":{"allreduce":"recdbl"}}}`))
	f.Add([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},"collective":"allreduce","sizes":[8],"tuning":{"policy":"measured","store":"/tmp/x"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := spec.Parse(data)
		if err != nil {
			return
		}
		first, err := q.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted query cannot canonicalize: %v", err)
		}
		q2, err := spec.Parse(first)
		if err != nil {
			t.Fatalf("canonical JSON of accepted query rejected: %s: %v", first, err)
		}
		second, err := q2.CanonicalJSON()
		if err != nil || !bytes.Equal(first, second) {
			t.Fatalf("canonicalize not idempotent:\n%s\n%s (%v)", first, second, err)
		}
	})
}

// TestRunEnginesBitIdentical executes the same Query on both backends
// and demands bit-identical virtual times — the spec-level form of the
// cross-engine contract.
func TestRunEnginesBitIdentical(t *testing.T) {
	for _, collective := range []string{"allgather", "allreduce", "bcast", "barrier", "alltoall", "gather", "scan", "reduce", "allgatherv"} {
		base := `{"machine":"laptop","topology":{"nodes":2,"ppn":4},"collective":"` + collective + `","sizes":[8,4096],"iters":2`
		qg, err := spec.Parse([]byte(base + `}`))
		if err != nil {
			t.Fatal(err)
		}
		qe, err := spec.Parse([]byte(base + `,"engine":"event"}`))
		if err != nil {
			t.Fatal(err)
		}
		rg, err := spec.Run(qg)
		if err != nil {
			t.Fatalf("%s goroutine: %v", collective, err)
		}
		re, err := spec.Run(qe)
		if err != nil {
			t.Fatalf("%s event: %v", collective, err)
		}
		if len(rg.Points) != len(re.Points) {
			t.Fatalf("%s: point count %d vs %d", collective, len(rg.Points), len(re.Points))
		}
		for i := range rg.Points {
			if rg.Points[i].VirtualPs != re.Points[i].VirtualPs {
				t.Errorf("%s at %d B: goroutine %d ps, event %d ps",
					collective, rg.Points[i].Bytes, rg.Points[i].VirtualPs, re.Points[i].VirtualPs)
			}
			if rg.Points[i].VirtualPs <= 0 {
				t.Errorf("%s at %d B: non-positive virtual time", collective, rg.Points[i].Bytes)
			}
		}
	}
}

// TestRunDeterministic: the same Query run twice is bit-identical.
func TestRunDeterministic(t *testing.T) {
	run := func() *spec.Result {
		q, err := spec.Parse([]byte(pointQuery))
		if err != nil {
			t.Fatal(err)
		}
		r, err := spec.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs across runs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestRunCancelled(t *testing.T) {
	q, err := spec.Parse([]byte(pointQuery))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := spec.RunContext(ctx, q); err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Errorf("cancelled run returned %v", err)
	}
}

func TestPrice(t *testing.T) {
	q, err := spec.Parse([]byte(`{"machine":"hazelhen-cray","topology":{"nodes":8,"ppn":8},
		"collective":"allgather","sizes":[64,1048576],"tuning":{"policy":"cost"}}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := spec.Price(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 64 || rep.Policy != "cost" || len(rep.Points) != 2 {
		t.Fatalf("report %+v", rep)
	}
	for _, pt := range rep.Points {
		if pt.Chosen == "" || len(pt.Candidates) == 0 {
			t.Fatalf("point %+v has no selection", pt)
		}
		var est float64
		for _, c := range pt.Candidates {
			if c.Name == pt.Chosen {
				est = c.EstUs
			}
		}
		if est <= 0 {
			t.Errorf("chosen %q at %d B has no positive estimate", pt.Chosen, pt.Bytes)
		}
	}
}

// TestTopologyRanksOverflow: the maxRanks backstop must survive a
// crafted level arity whose product wraps the int total back into
// range (the 1<<27 x (huge) OOM vector) — Ranks multiplies checked,
// and Canonicalize rejects any arity above the cap outright.
func TestTopologyRanksOverflow(t *testing.T) {
	huge := math.MaxInt/(1<<27) + 2 // (1<<27) * huge wraps past MaxInt
	top := spec.Topology{PerLeaf: 1 << 27, Levels: []spec.Level{{Name: "node", Arity: huge}}}
	if r := top.Ranks(); r != -1 {
		t.Errorf("Ranks() = %d on an overflowing stack, want -1", r)
	}
	if err := top.Canonicalize(); err == nil {
		t.Error("Canonicalize accepted an overflowing topology")
	}
	body := fmt.Sprintf(`{"machine":"laptop","topology":{"per_leaf":%d,"levels":[{"name":"node","arity":%d}]},
		"collective":"bcast","sizes":[8]}`, 1<<27, huge)
	if _, err := spec.Parse([]byte(body)); err == nil {
		t.Error("Parse accepted a query with an overflowing topology")
	}
	// Multi-level wrap with every arity individually modest enough to
	// pass a naive per-field glance: 2^10 per leaf, levels of 2^10.
	deep := spec.Topology{PerLeaf: 1 << 10, Levels: []spec.Level{
		{Name: "socket", Arity: 1 << 10}, {Name: "node", Arity: 1 << 10}, {Name: "rack", Arity: 1 << 10}}}
	if r := deep.Ranks(); r != -1 {
		t.Errorf("Ranks() = %d for 2^40 ranks, want -1", r)
	}
}

// TestPriceFloorsSubElementSizes pins the price path to the run
// path's whole-element floor: a sub-8-byte reducing collective is
// executed with one float64 element, so pricing must feed Count 1
// (not 0) to the selection engine or /v1/price and /v1/run describe
// different workloads at the same canonical Query.
func TestPriceFloorsSubElementSizes(t *testing.T) {
	q, err := spec.Parse([]byte(`{"machine":"laptop","topology":{"nodes":2,"ppn":2},
		"collective":"allreduce","sizes":[4]}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := spec.Price(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hop != sim.HopNet.String() {
		t.Fatalf("hop %q, want %q (test assumes a partitioned node level)", rep.Hop, sim.HopNet)
	}
	want := coll.Candidates(coll.CollAllreduce,
		coll.Env{Size: 4, Bytes: 4, Count: 1, Model: sim.Profiles()["laptop"](), Hop: sim.HopNet})
	got := rep.Points[0].Candidates
	if len(got) != len(want) {
		t.Fatalf("%d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Applicable != want[i].Applicable ||
			got[i].EstUs != want[i].Est.Us() {
			t.Errorf("candidate %d: got %+v, want {%s %v %v}",
				i, got[i], want[i].Name, want[i].Applicable, want[i].Est.Us())
		}
	}
}
