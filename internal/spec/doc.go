// Package spec is the declarative description of a simulator run — the
// single serializable surface the CLI (cmd/perf), the what-if daemon
// (cmd/serverd) and test harnesses all compile onto the sim/mpi/coll
// stack, so one Query evaluated anywhere is provably the same run.
//
// A Query names a machine profile, a topology (nodes x ppn shorthand or
// an explicit uniform level stack), a collective, a message-size
// ladder, the execution engine, the rank-symmetry fold mode and the
// selection-engine tuning. Queries are JSON-(de)serializable with
// strict decoding (unknown fields are rejected), validated and
// canonicalized into exactly one normal form, and carry a stable
// Fingerprint — the cache and request-coalescing key of the service
// layer.
//
// Two executors compile a Query onto the stack: Run builds the world
// and executes the collective at every ladder size, returning exact
// virtual times; Price consults only the selection engine's
// alpha-beta-gamma estimates, returning every candidate algorithm's
// price without simulating.
//
// The package also owns the textual tuning grammar historically parsed
// by internal/coll ("policy=cost,allreduce=rabenseifner,..."):
// ParseTuning parses it, Tuning.Spec renders it back canonically, and
// importing this package installs the REPRO_COLL_TUNING environment
// compatibility shim (see EnvVar).
package spec
