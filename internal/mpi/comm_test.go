package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestSplitTypeShared(t *testing.T) {
	w := newTestWorld(t, 3, 4)
	err := w.Run(func(p *Proc) error {
		node, err := p.CommWorld().SplitTypeShared()
		if err != nil {
			return err
		}
		if node.Size() != 4 {
			t.Errorf("rank %d: node comm size %d", p.Rank(), node.Size())
		}
		if node.Rank() != p.LocalRank() {
			t.Errorf("rank %d: node rank %d != local rank %d", p.Rank(), node.Rank(), p.LocalRank())
		}
		// Every member must be on my node.
		for r := 0; r < node.Size(); r++ {
			if w.Topology().NodeOf(node.Global(r)) != p.Node() {
				t.Errorf("rank %d: node comm contains foreign rank %d", p.Rank(), node.Global(r))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitBridge(t *testing.T) {
	w := newTestWorld(t, 3, 4)
	err := w.Run(func(p *Proc) error {
		world := p.CommWorld()
		node, err := world.SplitTypeShared()
		if err != nil {
			return err
		}
		bridge, err := world.SplitBridge(node)
		if err != nil {
			return err
		}
		if node.Rank() == 0 {
			// Leaders: bridge of one rank per node, ordered by node.
			if bridge == nil {
				t.Errorf("leader %d got nil bridge", p.Rank())
				return nil
			}
			if bridge.Size() != 3 {
				t.Errorf("bridge size %d, want 3", bridge.Size())
			}
			if bridge.Rank() != p.Node() {
				t.Errorf("leader of node %d has bridge rank %d", p.Node(), bridge.Rank())
			}
		} else if bridge != nil {
			t.Errorf("child %d got a bridge communicator", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	w := newTestWorld(t, 1, 6)
	err := w.Run(func(p *Proc) error {
		c, err := p.CommWorld().Split(p.Rank()%2, -p.Rank())
		if err != nil {
			return err
		}
		if c.Size() != 3 {
			t.Errorf("parity comm size %d", c.Size())
		}
		// Negative keys reverse the order.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[p.Rank()]
		if c.Rank() != wantRank {
			t.Errorf("rank %d: got comm rank %d, want %d", p.Rank(), c.Rank(), wantRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitCommIsolation(t *testing.T) {
	// Traffic on a split communicator must not be visible to the
	// parent (distinct contexts).
	w := newTestWorld(t, 1, 4)
	err := w.Run(func(p *Proc) error {
		world := p.CommWorld()
		sub, err := world.Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		if p.Rank()%2 == 0 {
			// Even ranks exchange on sub with tag 0...
			peer := 1 - sub.Rank()
			buf := FromFloat64s([]float64{float64(p.Rank())})
			got := Bytes(make([]byte, 8))
			if _, err := sub.Sendrecv(buf, peer, 0, got, peer, 0); err != nil {
				return err
			}
		} else {
			// ...while odd ranks exchange on world with tag 0.
			peer := map[int]int{1: 3, 3: 1}[p.Rank()]
			buf := FromFloat64s([]float64{float64(p.Rank())})
			got := Bytes(make([]byte, 8))
			if _, err := world.Sendrecv(buf, peer, 0, got, peer, 0); err != nil {
				return err
			}
			if int(got.Float64At(0)) != peer {
				t.Errorf("rank %d: cross-context leak, got %v", p.Rank(), got.Float64At(0))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDup(t *testing.T) {
	w := newTestWorld(t, 1, 3)
	err := w.Run(func(p *Proc) error {
		d, err := p.CommWorld().Dup()
		if err != nil {
			return err
		}
		if d.Size() != 3 || d.Rank() != p.Rank() {
			t.Errorf("dup mismatch: size %d rank %d", d.Size(), d.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	err := w.Run(func(p *Proc) error {
		color := Undefined
		if p.Rank() < 2 {
			color = 0
		}
		c, err := p.CommWorld().Split(color, 0)
		if err != nil {
			return err
		}
		if p.Rank() < 2 && (c == nil || c.Size() != 2) {
			t.Errorf("rank %d: want 2-rank comm, got %v", p.Rank(), c)
		}
		if p.Rank() >= 2 && c != nil {
			t.Errorf("rank %d: want nil comm", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommWorldSingleton(t *testing.T) {
	// Regression: CommWorld() used to hand out fresh handles whose
	// independent coordination sequence numbers collided, deadlocking
	// repeated single-node barriers obtained through separate calls.
	w := newTestWorld(t, 1, 8)
	err := w.Run(func(p *Proc) error {
		if p.CommWorld() != p.CommWorld() {
			t.Error("CommWorld not a singleton")
		}
		for i := 0; i < 4; i++ {
			if err := p.CommWorld().Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinAllocateShared(t *testing.T) {
	w := newTestWorld(t, 2, 3)
	err := w.Run(func(p *Proc) error {
		node, err := p.CommWorld().SplitTypeShared()
		if err != nil {
			return err
		}
		// The paper's pattern: only the leader contributes.
		mySize := 0
		if node.Rank() == 0 {
			mySize = 3 * 8
		}
		win, err := WinAllocateShared(node, mySize)
		if err != nil {
			return err
		}
		if win.Size() != 24 {
			t.Errorf("window size %d, want 24", win.Size())
		}
		// Each rank writes its slot in the leader's segment.
		seg := win.Query(0)
		seg.PutFloat64(node.Rank(), float64(p.Rank()))
		if err := node.Barrier(); err != nil {
			return err
		}
		// Every rank must observe everyone's writes: one real
		// shared copy per node.
		for r := 0; r < node.Size(); r++ {
			want := float64(p.Rank() - node.Rank() + r)
			if got := seg.Float64At(r); got != want {
				t.Errorf("rank %d sees slot %d = %v, want %v", p.Rank(), r, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinPerRankSegments(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	err := w.Run(func(p *Proc) error {
		node, err := p.CommWorld().SplitTypeShared()
		if err != nil {
			return err
		}
		win, err := WinAllocateShared(node, 8)
		if err != nil {
			return err
		}
		win.Mine().PutFloat64(0, float64(100+p.Rank()))
		if err := node.Barrier(); err != nil {
			return err
		}
		for r := 0; r < node.Size(); r++ {
			if got := win.Query(r).Float64At(0); got != float64(100+r) {
				t.Errorf("segment %d reads %v", r, got)
			}
		}
		if win.Whole().Len() != 32 {
			t.Errorf("whole segment %d bytes", win.Whole().Len())
		}
		if win.Comm() != node {
			t.Error("win.Comm mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinRejectsCrossNode(t *testing.T) {
	w := newTestWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		if _, err := WinAllocateShared(p.CommWorld(), 8); err == nil {
			t.Errorf("rank %d: cross-node window accepted", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWinRejectsBadArgs(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		node, err := p.CommWorld().SplitTypeShared()
		if err != nil {
			return err
		}
		if _, err := WinAllocateShared(node, -1); err == nil {
			t.Error("negative size accepted")
		}
		// All ranks must still agree on the subsequent calls, so
		// make the failing call collectively... it failed before
		// exchanging, which is fine: the error path is local.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WinAllocateShared(nil, 8); err == nil {
		t.Error("nil comm accepted")
	}
}

func TestSizeOnlyWorldMovesNoData(t *testing.T) {
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(2, 2)) // no WithRealData
	if err != nil {
		t.Fatal(err)
	}
	if w.RealData() {
		t.Fatal("world unexpectedly real")
	}
	err = w.Run(func(p *Proc) error {
		if w.NewBuf(64).Real() {
			t.Error("NewBuf returned real buffer in size-only mode")
		}
		c := p.CommWorld()
		// Timing must flow even with no bytes anywhere.
		if p.Rank() == 0 {
			return c.Send(Sized(1<<20), 1, 0)
		}
		if p.Rank() == 1 {
			_, err := c.Recv(Sized(1<<20), 0, 0)
			if err != nil {
				return err
			}
			if p.Clock() < p.Model().XferCost(sim.HopShm, 1<<20) {
				t.Errorf("size-only transfer undercharged: %v", p.Clock())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
