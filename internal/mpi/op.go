package mpi

import "fmt"

// Datatype identifies the element type of a reduction, fixing the
// element size and arithmetic.
type Datatype int

const (
	// Float64 is double precision — the element type of every
	// experiment in the paper.
	Float64 Datatype = iota
	// Int64 is signed 64-bit integers.
	Int64
	// Byte is raw bytes (reduced with max/min/sum modulo 256; mostly
	// for tests).
	Byte
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Float64, Int64:
		return 8
	default:
		return 1
	}
}

// String names the datatype.
func (d Datatype) String() string {
	switch d {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case Byte:
		return "byte"
	default:
		return fmt.Sprintf("Datatype(%d)", int(d))
	}
}

// opKind tags the standard operators so Apply can dispatch to the
// datatype-specialized kernels instead of calling a function pointer
// per element. opCustom (the zero value of an Op built from bare
// closures) always takes the generic path.
type opKind int

const (
	opCustom opKind = iota
	opSum
	opProd
	opMax
	opMin
)

// Op is a reduction operator: dst[i] = dst[i] op src[i] for count
// elements. Size-only buffers reduce to a no-op on data (virtual compute
// time is charged by the collective, not the operator).
type Op struct {
	Name  string
	kind  opKind
	f64   func(a, b float64) float64
	i64   func(a, b int64) int64
	byteF func(a, b byte) byte
}

// Apply folds src into dst element-wise. The standard operators run
// datatype-specialized kernels over zero-copy views of the buffers;
// custom operators (and buffers that cannot expose a typed view) use
// the generic per-element path, which Apply is bit-for-bit equivalent
// to (see ApplyGeneric).
func (o Op) Apply(dst, src Buf, count int, dt Datatype) {
	if !dst.Real() || !src.Real() {
		return
	}
	if o.kind != opCustom {
		switch dt {
		case Float64:
			d, s := dst.Float64sView(), src.Float64sView()
			if d != nil && s != nil {
				o.kernelF64(d[:count], s[:count])
				return
			}
		case Int64:
			d, s := dst.Int64sView(), src.Int64sView()
			if d != nil && s != nil {
				kernelInt(o.kind, d[:count], s[:count])
				return
			}
		case Byte:
			kernelInt(o.kind, dst.Raw()[:count], src.Raw()[:count])
			return
		}
	}
	o.ApplyGeneric(dst, src, count, dt)
}

// ApplyGeneric is the reference implementation: per-element closure
// dispatch through the portable byte codec. The specialized kernels in
// Apply must produce byte-identical results; tests assert that.
func (o Op) ApplyGeneric(dst, src Buf, count int, dt Datatype) {
	if !dst.Real() || !src.Real() {
		return
	}
	switch dt {
	case Float64:
		for i := 0; i < count; i++ {
			dst.PutFloat64(i, o.f64(dst.Float64At(i), src.Float64At(i)))
		}
	case Int64:
		for i := 0; i < count; i++ {
			dst.PutInt64(i, o.i64(dst.Int64At(i), src.Int64At(i)))
		}
	case Byte:
		d, s := dst.Raw(), src.Raw()
		for i := 0; i < count; i++ {
			d[i] = o.byteF(d[i], s[i])
		}
	}
}

// The specialized kernels. The comparison forms mirror the reference
// closures exactly (`if a > b { a } else { b }`), so NaN and signed-zero
// behavior is identical to the generic path — math.Max would not be.

func (o Op) kernelF64(d, s []float64) {
	switch o.kind {
	case opSum:
		for i, x := range s {
			d[i] += x
		}
	case opProd:
		for i, x := range s {
			d[i] *= x
		}
	case opMax:
		for i, x := range s {
			if !(d[i] > x) {
				d[i] = x
			}
		}
	case opMin:
		for i, x := range s {
			if !(d[i] < x) {
				d[i] = x
			}
		}
	}
}

// kernelInt serves both integer datatypes: unlike float64, plain
// comparisons and wrapping arithmetic need no special-case handling.
func kernelInt[T int64 | byte](kind opKind, d, s []T) {
	switch kind {
	case opSum:
		for i, x := range s {
			d[i] += x
		}
	case opProd:
		for i, x := range s {
			d[i] *= x
		}
	case opMax:
		for i, x := range s {
			if x > d[i] {
				d[i] = x
			}
		}
	case opMin:
		for i, x := range s {
			if x < d[i] {
				d[i] = x
			}
		}
	}
}

// The standard reduction operators.
var (
	OpSum = Op{
		Name:  "sum",
		kind:  opSum,
		f64:   func(a, b float64) float64 { return a + b },
		i64:   func(a, b int64) int64 { return a + b },
		byteF: func(a, b byte) byte { return a + b },
	}
	OpProd = Op{
		Name:  "prod",
		kind:  opProd,
		f64:   func(a, b float64) float64 { return a * b },
		i64:   func(a, b int64) int64 { return a * b },
		byteF: func(a, b byte) byte { return a * b },
	}
	OpMax = Op{
		Name: "max",
		kind: opMax,
		f64: func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
		i64: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		byteF: func(a, b byte) byte {
			if a > b {
				return a
			}
			return b
		},
	}
	OpMin = Op{
		Name: "min",
		kind: opMin,
		f64: func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		i64: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		byteF: func(a, b byte) byte {
			if a < b {
				return a
			}
			return b
		},
	}
)
