package mpi

import "fmt"

// Datatype identifies the element type of a reduction, fixing the
// element size and arithmetic.
type Datatype int

const (
	// Float64 is double precision — the element type of every
	// experiment in the paper.
	Float64 Datatype = iota
	// Int64 is signed 64-bit integers.
	Int64
	// Byte is raw bytes (reduced with max/min/sum modulo 256; mostly
	// for tests).
	Byte
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Float64, Int64:
		return 8
	default:
		return 1
	}
}

// String names the datatype.
func (d Datatype) String() string {
	switch d {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case Byte:
		return "byte"
	default:
		return fmt.Sprintf("Datatype(%d)", int(d))
	}
}

// Op is a reduction operator: dst[i] = dst[i] op src[i] for count
// elements. Size-only buffers reduce to a no-op on data (virtual compute
// time is charged by the collective, not the operator).
type Op struct {
	Name  string
	f64   func(a, b float64) float64
	i64   func(a, b int64) int64
	byteF func(a, b byte) byte
}

// Apply folds src into dst element-wise.
func (o Op) Apply(dst, src Buf, count int, dt Datatype) {
	if !dst.Real() || !src.Real() {
		return
	}
	switch dt {
	case Float64:
		for i := 0; i < count; i++ {
			dst.PutFloat64(i, o.f64(dst.Float64At(i), src.Float64At(i)))
		}
	case Int64:
		for i := 0; i < count; i++ {
			dst.PutInt64(i, o.i64(dst.Int64At(i), src.Int64At(i)))
		}
	case Byte:
		d, s := dst.Raw(), src.Raw()
		for i := 0; i < count; i++ {
			d[i] = o.byteF(d[i], s[i])
		}
	}
}

// The standard reduction operators.
var (
	OpSum = Op{
		Name:  "sum",
		f64:   func(a, b float64) float64 { return a + b },
		i64:   func(a, b int64) int64 { return a + b },
		byteF: func(a, b byte) byte { return a + b },
	}
	OpProd = Op{
		Name:  "prod",
		f64:   func(a, b float64) float64 { return a * b },
		i64:   func(a, b int64) int64 { return a * b },
		byteF: func(a, b byte) byte { return a * b },
	}
	OpMax = Op{
		Name: "max",
		f64: func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
		i64: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		byteF: func(a, b byte) byte {
			if a > b {
				return a
			}
			return b
		},
	}
	OpMin = Op{
		Name: "min",
		f64: func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		i64: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		byteF: func(a, b byte) byte {
			if a < b {
				return a
			}
			return b
		},
	}
)
