package mpi

import (
	"errors"
	"testing"
)

// Failure injection: a rank that errors out must not strand peers that
// are blocked in communication — the job aborts like an mpirun job.

func TestAbortWakesBlockedRecv(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	boom := errors.New("rank 0 died")
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			return boom // dies without sending anything
		}
		// Everyone else waits for a message that will never come.
		_, err := p.CommWorld().Recv(Sized(8), 0, 1)
		return err
	})
	if err == nil {
		t.Fatal("Run returned nil")
	}
	if !errors.Is(err, boom) {
		t.Errorf("original error lost: %v", err)
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("peers not woken with ErrAborted: %v", err)
	}
	if !w.Aborted() {
		t.Error("world not marked aborted")
	}
}

func TestAbortWakesBlockedBarrier(t *testing.T) {
	// Multi-node barrier (message-based path).
	w := newTestWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 3 {
			return errors.New("deserter")
		}
		return p.CommWorld().Barrier()
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("barrier peers not aborted: %v", err)
	}
}

func TestAbortWakesShmBarrier(t *testing.T) {
	// Single-node barrier goes through the coordinator (panic path).
	w := newTestWorld(t, 1, 4)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 2 {
			return errors.New("deserter")
		}
		return p.CommWorld().Barrier()
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("shm barrier peers not aborted: %v", err)
	}
}

func TestAbortWakesSplit(t *testing.T) {
	// Exchange-based communicator construction must abort too. (The
	// derived SplitLevel/SplitTypeShared path never rendezvouses — a
	// member computes the partition locally and cannot be stranded —
	// so the generic color Split is the path that needs waking.)
	w := newTestWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			return errors.New("deserter")
		}
		_, err := p.CommWorld().Split(0, p.Rank())
		return err
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("split peers not aborted: %v", err)
	}
}

func TestAbortWakesRendezvousSend(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	big := w.Model().EagerLimit * 2
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			return errors.New("receiver died before posting")
		}
		return p.CommWorld().Send(Alloc(big, true), 1, 0)
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("rendezvous sender not aborted: %v", err)
	}
}

func TestAbortFromPanic(t *testing.T) {
	w := newTestWorld(t, 1, 3)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		_, err := p.CommWorld().Recv(Sized(8), 0, 0)
		return err
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("panic did not abort peers: %v", err)
	}
}

func TestCleanRunNotAborted(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	if err := w.Run(func(p *Proc) error { return p.CommWorld().Barrier() }); err != nil {
		t.Fatal(err)
	}
	if w.Aborted() {
		t.Error("clean run marked aborted")
	}
}
