package mpi

import (
	"testing"

	"repro/internal/sim"
)

// The matcher fast path must not allocate once the object pools are
// warm: post/match/complete of a small eager send recycles its message
// and receive records and (for real payloads) the eager snapshot
// storage. These are regression tests for the allocation-lean data
// plane; the threshold of 1 (instead of 0) tolerates a GC emptying a
// sync.Pool mid-measurement, which is legal and rare.

func allocWorld(t *testing.T, opts ...Option) *World {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(1, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// exerciseEager runs one eager round-trip between two ranks, driven
// from a single goroutine (eager sends complete at post time, so the
// sequence never blocks).
func exerciseEager(c0, c1 *Comm, buf0, buf1 Buf) error {
	if err := c0.Send(buf0, 1, 5); err != nil {
		return err
	}
	if _, err := c1.Recv(buf1, 0, 5); err != nil {
		return err
	}
	if err := c1.Send(buf1, 0, 6); err != nil {
		return err
	}
	if _, err := c0.Recv(buf0, 1, 6); err != nil {
		return err
	}
	return nil
}

func TestEagerMatcherPathAllocationFree(t *testing.T) {
	w := allocWorld(t)
	c0 := w.Proc(0).CommWorld()
	c1 := w.Proc(1).CommWorld()
	buf := Sized(8)

	// Warm the pools and the queue backing arrays.
	for i := 0; i < 32; i++ {
		if err := exerciseEager(c0, c1, buf, buf); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := exerciseEager(c0, c1, buf, buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 1 {
		t.Errorf("eager send/recv round trip allocates %.2f objects/op, want ~0", avg)
	}
}

func TestEagerRealDataAllocationFree(t *testing.T) {
	w := allocWorld(t, WithRealData())
	c0 := w.Proc(0).CommWorld()
	c1 := w.Proc(1).CommWorld()
	buf0 := Bytes(make([]byte, 64))
	buf1 := Bytes(make([]byte, 64))

	for i := 0; i < 32; i++ {
		if err := exerciseEager(c0, c1, buf0, buf1); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := exerciseEager(c0, c1, buf0, buf1); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 1 {
		t.Errorf("real-data eager round trip allocates %.2f objects/op, want ~0 (pooled snapshots)", avg)
	}
}

// TestSendrecvAllocationFree covers the collectives' workhorse: the
// blocking Sendrecv must stay allocation-free on the eager path too.
func TestSendrecvAllocationFree(t *testing.T) {
	w := allocWorld(t)
	c0 := w.Proc(0).CommWorld()
	c1 := w.Proc(1).CommWorld()
	buf := Sized(8)

	step := func() {
		// Post both receives first (single-goroutine driving), then
		// the eager sends satisfy them.
		r0, err := c0.postRecvReq(buf, 1, 9)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := c1.postRecvReq(buf, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if err := c0.Send(buf, 1, 9); err != nil {
			t.Fatal(err)
		}
		if err := c1.Send(buf, 0, 9); err != nil {
			t.Fatal(err)
		}
		if _, err := c0.p.waitRecvReq(r0); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.p.waitRecvReq(r1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		step()
	}
	avg := testing.AllocsPerRun(200, step)
	if avg >= 1 {
		t.Errorf("posted-receive exchange allocates %.2f objects/op, want ~0", avg)
	}
}
