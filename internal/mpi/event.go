package mpi

import "sync"

// This file is the discrete-event execution backend (sim.EngineEvent):
// a cooperative single-threaded scheduler that runs exactly one ready
// rank at a time and hands control off through an event (ready) queue,
// instead of letting the Go runtime schedule all ranks in parallel and
// park them on channels (pool.go, sim.EngineGoroutine).
//
// Rank bodies are arbitrary Go closures, so the continuation mechanism
// is still a goroutine per executing rank — Go offers no way to capture
// and resume a stack by hand — but at any moment exactly one of them
// runs; the rest are parked on per-rank gate channels. What the event
// core eliminates is everything the parallel engine pays for
// concurrency: lock contention in the matcher and coordinator, host
// scheduler churn, cache-line traffic between rank stacks, and the
// nondeterminism of execution order. Combined with rank-symmetry
// folding (fold logic in world.go/p2p.go), which shrinks the number of
// *executing* ranks to the number of distinct rank behaviors, it is
// what makes million-rank worlds affordable.
//
// Scheduling protocol. Control is a token: it starts with the Run
// caller, passes to a rank through a gate send, and comes back through
// the ctrl channel when every rank is done. A running rank that blocks
// (evAwait) parks itself and forwards the token via dispatchNext; a
// rank whose operation completes is enqueued on the ready ring by the
// completer (wake) and resumed later by whichever rank holds the token.
// All scheduler state (states, ready ring, done count) is therefore
// mutated only by the token holder, and every handoff flows through a
// channel operation, so the backend is race-detector clean by
// construction.
//
// Abort. External goroutines may only close the world's abort channel
// and poison the matcher/coordinator (World.Abort) — they never touch
// scheduler state. When the token holder finds the ready ring empty
// with ranks still parked, no internal event can ever complete them:
// it blocks on the abort channel (a genuine deadlock hangs there, just
// like the goroutine engine) and, once poisoned, wakes every parked
// rank so each can observe its sentinel or the aborted flag.

// Per-rank scheduler states. Only the token holder reads or writes
// them (see the protocol note above), so they are plain ints.
const (
	evIdle    int32 = iota // between Runs
	evReady                // enqueued on the ready ring
	evRunning              // holds the token (at most one rank)
	evParked               // blocked in evAwait or a coordinator wait
	evDone                 // body finished this Run
)

// evSched is the event scheduler of one World: per-rank continuation
// goroutines, their gate channels, and the ready ring. It is created
// lazily at the first event-engine Run and lives until Close.
type evSched struct {
	w     *World
	n     int             // executing ranks (World.execN)
	gates []chan struct{} // cap 1: resume signal per rank
	state []int32
	ready []int32 // ring buffer; each rank appears at most once
	rhead int
	rlen  int
	done  int // ranks finished this Run

	st   *runState
	ctrl chan struct{} // Run-complete signal back to the caller
	quit chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

// newEvSched builds the scheduler and spawns the continuation
// goroutines, parked until their first dispatch.
func newEvSched(w *World, n int) *evSched {
	ev := &evSched{
		w:     w,
		n:     n,
		gates: make([]chan struct{}, n),
		state: make([]int32, n),
		ready: make([]int32, n),
		ctrl:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	for i := range ev.gates {
		// Cap 1 so a rank can be dispatched before it reaches its gate
		// receive — in particular when the token holder pops *itself*
		// after an abort wake-up.
		ev.gates[i] = make(chan struct{}, 1)
	}
	ev.wg.Add(n)
	for r := 0; r < n; r++ {
		go ev.worker(r)
	}
	return ev
}

// begin resets the per-Run state and enqueues every rank. Called by the
// Run driver before the first dispatch; the gate sends that follow
// publish these writes to the workers.
func (ev *evSched) begin(st *runState) {
	ev.st = st
	ev.done = 0
	ev.rhead, ev.rlen = 0, 0
	for r := 0; r < ev.n; r++ {
		ev.state[r] = evReady
		ev.pushReady(r)
	}
}

func (ev *evSched) pushReady(r int) {
	ev.ready[(ev.rhead+ev.rlen)%ev.n] = int32(r)
	ev.rlen++
}

// dispatchNext passes the token: to the next ready rank, back to the
// Run caller when every rank is done, or — with parked ranks and an
// empty ring — to whoever aborts the job (the only external event that
// can unblock a single-threaded world).
func (ev *evSched) dispatchNext() {
	for {
		if ev.rlen > 0 {
			r := ev.ready[ev.rhead]
			ev.rhead = (ev.rhead + 1) % ev.n
			ev.rlen--
			ev.state[r] = evRunning
			ev.gates[r] <- struct{}{}
			return
		}
		if ev.done == ev.n {
			ev.ctrl <- struct{}{}
			return
		}
		<-ev.w.abortCh
		ev.wakeAllParked()
	}
}

// wakeAllParked readies every parked rank after an abort, so each can
// drain its poison sentinel or observe the aborted state and unwind.
func (ev *evSched) wakeAllParked() {
	for r := 0; r < ev.n; r++ {
		if ev.state[r] == evParked {
			ev.state[r] = evReady
			ev.pushReady(r)
		}
	}
}

// wake enqueues a parked rank whose awaited record was just completed.
// Called by the completing rank (the token holder); idempotent for
// ranks already ready, running, or done — a rank parked on record B
// may be woken by record A's completion, re-check B, and park again.
func (ev *evSched) wake(r int) {
	if ev.state[r] == evParked {
		ev.state[r] = evReady
		ev.pushReady(r)
	}
}

// park blocks the calling rank: it hands the token off and waits for a
// wake. The caller must re-check its wait condition on resume (wakes
// can be spurious, see wake).
func (ev *evSched) park(r int) {
	ev.state[r] = evParked
	ev.dispatchNext()
	<-ev.gates[r]
}

// yield re-enqueues the calling rank behind the current ready set and
// hands the token off — the polling primitive behind Test in event
// mode, where a spin loop would otherwise starve every other rank
// forever.
func (ev *evSched) yield(r int) {
	ev.state[r] = evReady
	ev.pushReady(r)
	ev.dispatchNext()
	<-ev.gates[r]
}

// worker is one rank's continuation goroutine: dispatched once per Run,
// it executes the body with the same recovery and abort semantics as
// the goroutine engine's rankJob, then marks itself done and passes the
// token on.
func (ev *evSched) worker(r int) {
	defer ev.wg.Done()
	for {
		select {
		case <-ev.gates[r]:
		case <-ev.quit:
			return
		}
		ev.runBody(r)
		ev.state[r] = evDone
		ev.done++
		ev.dispatchNext()
	}
}

func (ev *evSched) runBody(r int) {
	p, st := ev.w.procs[r], ev.st
	defer func() {
		if rec := recover(); rec != nil {
			st.errs[r] = recoveredRankError(p, rec)
		}
	}()
	if err := st.body(p); err != nil {
		st.errs[r] = &RankError{Rank: r, Err: err}
		p.world.Abort()
	}
}

// shutdown wakes the parked workers and waits for them to exit. Only
// legal between Runs (all workers at their loop-top select).
func (ev *evSched) shutdown() {
	ev.stop.Do(func() { close(ev.quit) })
	ev.wg.Wait()
}

// release is the finalizer flavor of shutdown: signal, don't wait.
func (ev *evSched) release() {
	ev.stop.Do(func() { close(ev.quit) })
}

// evAwait is the event-mode replacement for a blocking channel receive
// on a matcher record (message.done / recvReq.result): poll the
// channel, park if empty, re-check on every wake. After an abort the
// receive is taken directly — the poison walk delivers a sentinel to
// every queued record and completions are synchronous, so the channel
// is guaranteed to produce a value.
func evAwait[T any](ev *evSched, rank int, ch chan T) T {
	for {
		select {
		case v := <-ch:
			return v
		default:
		}
		if ev.w.Aborted() {
			return <-ch
		}
		ev.park(rank)
	}
}
