package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestSendRecvFlagOrdering(t *testing.T) {
	// The flag carries a happens-before edge: data written before
	// SendFlag must be visible after RecvFlag.
	w := newTestWorld(t, 1, 2)
	shared := make([]float64, 1)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			shared[0] = 42
			return c.SendFlag(1, 9)
		}
		if err := c.RecvFlag(0, 9); err != nil {
			return err
		}
		if shared[0] != 42 {
			t.Errorf("flag did not order the write: %v", shared[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlagCheaperThanMessage(t *testing.T) {
	// A flag signal must cost far less than a shm transport message —
	// that gap is what makes the "light-weight means" light.
	w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var flagT, msgT sim.Time
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.SendFlag(1, 1); err != nil {
				return err
			}
			return c.Send(Sized(0), 1, 2)
		}
		if err := c.RecvFlag(0, 1); err != nil {
			return err
		}
		flagT = p.Clock()
		if _, err := c.Recv(Sized(0), 0, 2); err != nil {
			return err
		}
		msgT = p.Clock() - flagT
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if flagT >= msgT {
		t.Errorf("flag (%v) should be cheaper than a message (%v)", flagT, msgT)
	}
}

func TestFlagRejectsCrossNode(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if err := c.SendFlag(1-p.Rank(), 1); err == nil {
			t.Errorf("rank %d: cross-node SendFlag accepted", p.Rank())
		}
		if err := c.RecvFlag(1-p.Rank(), 1); err == nil {
			t.Errorf("rank %d: cross-node RecvFlag accepted", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlagRankValidation(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if err := c.SendFlag(99, 1); err == nil {
			t.Error("bad dst accepted")
		}
		if err := c.RecvFlag(-3, 1); err == nil {
			t.Error("bad src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
