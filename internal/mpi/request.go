package mpi

import (
	"errors"

	"repro/internal/sim"
)

// Request is a nonblocking operation handle (MPI_Request).
type Request struct {
	p      *Proc
	isSend bool
	eager  bool
	msg    *message // send side
	rr     *recvReq // recv side
	status Status
	done   bool
}

// Isend posts a nonblocking send. The payload of a real-data eager send
// is snapshotted so the caller may reuse buf immediately, matching MPI's
// buffered-eager semantics.
func (c *Comm) Isend(buf Buf, dst, tag int) (*Request, error) {
	if err := c.validRank(dst, false); err != nil {
		return nil, err
	}
	w := c.p.world
	eager := w.model.Eager(buf.Len())
	data := buf
	if eager {
		data = buf.clone()
	}
	msg := &message{
		src:       c.p.rank,
		dst:       c.ranks[dst],
		commSrc:   c.rank,
		tag:       tag,
		data:      data,
		eager:     eager,
		postClock: c.p.clock,
		done:      make(chan sim.Time, 1),
	}
	c.p.trace("send", buf.Len(), "")
	if r := w.match.postSend(c.ctx, msg); r != nil {
		w.complete(msg, r)
	}
	if eager {
		// The sender pays only its posting overhead and moves on.
		c.p.advance(w.model.SendOverhead)
	}
	return &Request{p: c.p, isSend: true, eager: eager, msg: msg}, nil
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(buf Buf, src, tag int) (*Request, error) {
	if err := c.validRank(src, true); err != nil {
		return nil, err
	}
	srcGlobal := AnySource
	if src != AnySource {
		srcGlobal = c.ranks[src]
	}
	w := c.p.world
	rr := &recvReq{
		src:       src,
		tag:       tag,
		srcGlobal: srcGlobal,
		buf:       buf,
		postClock: c.p.clock,
		result:    make(chan recvResult, 1),
	}
	if msg := w.match.postRecv(c.ctx, c.p.rank, rr); msg != nil {
		w.complete(msg, rr)
	}
	return &Request{p: c.p, rr: rr}, nil
}

// Wait blocks until the operation completes and advances the caller's
// virtual clock to the completion time. For receives it returns the
// Status.
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, errors.New("mpi: Wait on nil request")
	}
	if r.done {
		return r.status, nil
	}
	r.done = true
	abort := r.p.world.abortCh
	if r.isSend {
		if r.eager {
			// Completion time was already charged at post.
			return Status{}, nil
		}
		select {
		case at := <-r.msg.done:
			r.p.syncTo(at)
			return Status{}, nil
		case <-abort:
			return Status{}, ErrAborted
		}
	}
	var res recvResult
	select {
	case res = <-r.rr.result:
	case <-abort:
		return Status{}, ErrAborted
	}
	r.p.syncTo(res.at)
	r.p.trace("recv", res.bytes, "")
	r.status = Status{Source: res.source, Tag: res.tag, Bytes: res.bytes}
	return r.status, nil
}

// Waitall completes a set of requests, returning the first error.
func Waitall(reqs ...*Request) error {
	var firstErr error
	for _, rq := range reqs {
		if rq == nil {
			continue
		}
		if _, err := rq.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
