package mpi

import (
	"errors"

	"repro/internal/sim"
)

// Request is a nonblocking operation handle (MPI_Request).
type Request struct {
	p      *Proc
	isSend bool
	eager  bool
	msg    *message // send side (rendezvous only; eager sends complete at post)
	rr     *recvReq // recv side
	status Status
	done   bool
	err    error // latched failure (abort/rank-failed/revoked): every later Wait/Test repeats it
}

// postSendAtClock posts a send whose virtual posting time is `at` —
// the caller's clock on the blocking/Isend path, the schedule
// executor's cursor otherwise — and returns the pending message, or
// nil for an eager send (which completes at post; the message is owned
// by the matcher/pool from there on and must not be retained). The
// caller charges the eager posting overhead to its own timeline.
func (c *Comm) postSendAtClock(buf Buf, dst, tag int, at sim.Time, kind string) (*message, error) {
	if err := c.validRank(dst, false); err != nil {
		return nil, err
	}
	c.p.maybeFail()
	w := c.p.world
	eager := w.model.Eager(buf.Len())
	data := buf
	var store *[]byte
	if eager {
		data, store = cloneEager(buf)
	}
	var xscale float64
	if ns := w.noise; ns != nil {
		xscale = ns.xferScale(c.p, w.topo.Hop(c.p.rank, c.ranks[dst]))
	}
	msg := getMessage()
	*msg = message{
		src:       c.p.rank,
		dst:       c.ranks[dst],
		commSrc:   c.rank,
		tag:       tag,
		data:      data,
		store:     store,
		eager:     eager,
		xferScale: xscale,
		postClock: at,
		done:      msg.done,
	}
	if w.tracer.Enabled() {
		w.tracer.Record(sim.Event{At: at, Rank: c.p.rank, Kind: kind, Bytes: buf.Len()})
	}
	r, err := w.match.postSend(c.ctx, msg)
	if err != nil {
		putMessage(msg)
		return nil, err
	}
	if r != nil {
		w.complete(msg, r)
	}
	if eager {
		return nil, nil
	}
	return msg, nil
}

// postSendMsg posts a send at the caller's clock and returns the
// pending message (nil for eager sends, whose posting overhead is
// charged here).
func (c *Comm) postSendMsg(buf Buf, dst, tag int) (*message, error) {
	msg, err := c.postSendAtClock(buf, dst, tag, c.p.clock, "send")
	if err != nil {
		return nil, err
	}
	if msg == nil {
		// The sender pays only its posting overhead and moves on.
		c.p.advance(c.p.world.model.SendOverhead)
	}
	return msg, nil
}

// postRecvReqAt posts a receive at an explicit virtual time. A
// non-empty kind records a trace event at post (the blocking path
// traces at completion instead). The caller must hand the record to
// waitRecvReq (or the schedule executor's drain) exactly once, which
// recycles it.
func (c *Comm) postRecvReqAt(buf Buf, src, tag int, at sim.Time, kind string) (*recvReq, error) {
	if err := c.validRank(src, true); err != nil {
		return nil, err
	}
	c.p.maybeFail()
	srcGlobal := AnySource
	if src != AnySource {
		srcGlobal = c.ranks[src]
	}
	w := c.p.world
	rr := getRecvReq()
	*rr = recvReq{
		src:       src,
		tag:       tag,
		srcGlobal: srcGlobal,
		dst:       c.p.rank,
		buf:       buf,
		postClock: at,
		result:    rr.result,
	}
	if kind != "" && w.tracer.Enabled() {
		w.tracer.Record(sim.Event{At: at, Rank: c.p.rank, Kind: kind, Bytes: buf.Len()})
	}
	msg, err := w.match.postRecv(c.ctx, c.p.rank, rr)
	if err != nil {
		putRecvReq(rr)
		return nil, err
	}
	if msg != nil {
		w.complete(msg, rr)
	}
	return rr, nil
}

// postRecvReq posts a receive at the caller's clock.
func (c *Comm) postRecvReq(buf Buf, src, tag int) (*recvReq, error) {
	return c.postRecvReqAt(buf, src, tag, c.p.clock, "")
}

// waitSendMsg blocks until a rendezvous send completes, advances the
// clock, and recycles the message. The wait is a plain channel receive
// — no select against the abort channel — because Abort's poison walk
// delivers the abortClock sentinel through the same channel (p2p.go),
// which keeps the hottest park path free of the select machinery.
func (p *Proc) waitSendMsg(m *message) error {
	var at sim.Time
	if w := p.world; w.evLive {
		at = evAwait(w.ev, p.rank, m.done)
	} else {
		at = <-m.done
	}
	if err := failErr(at); err != nil {
		putMessage(m)
		return err
	}
	p.syncTo(at)
	putMessage(m)
	return nil
}

// waitRecvReq blocks until a receive completes, advances the clock, and
// recycles the record. A receive whose send was already queued
// completed synchronously inside postRecv, so the result is often
// sitting in the buffered channel and the receive doesn't even park;
// abort is delivered as the abortClock poison, like waitSendMsg.
func (p *Proc) waitRecvReq(rr *recvReq) (Status, error) {
	var res recvResult
	if w := p.world; w.evLive {
		res = evAwait(w.ev, p.rank, rr.result)
	} else {
		res = <-rr.result
	}
	if err := failErr(res.at); err != nil {
		putRecvReq(rr)
		return Status{}, err
	}
	putRecvReq(rr)
	p.syncTo(res.at)
	p.trace("recv", res.bytes, "")
	return Status{Source: res.source, Tag: res.tag, Bytes: res.bytes}, nil
}

// Isend posts a nonblocking send. The payload of a real-data eager send
// is snapshotted so the caller may reuse buf immediately, matching MPI's
// buffered-eager semantics.
func (c *Comm) Isend(buf Buf, dst, tag int) (*Request, error) {
	msg, err := c.postSendMsg(buf, dst, tag)
	if err != nil {
		return nil, err
	}
	return &Request{p: c.p, isSend: true, eager: msg == nil, msg: msg}, nil
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(buf Buf, src, tag int) (*Request, error) {
	rr, err := c.postRecvReq(buf, src, tag)
	if err != nil {
		return nil, err
	}
	return &Request{p: c.p, rr: rr}, nil
}

// Wait blocks until the operation completes and advances the caller's
// virtual clock to the completion time. For receives it returns the
// Status.
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, errors.New("mpi: Wait on nil request")
	}
	if r.err != nil {
		return Status{}, r.err
	}
	if r.done {
		return r.status, nil
	}
	r.done = true
	if r.isSend {
		if r.eager {
			// Completion time was already charged at post.
			return Status{}, nil
		}
		msg := r.msg
		r.msg = nil
		if err := r.p.waitSendMsg(msg); err != nil {
			r.err = err
			return Status{}, err
		}
		return Status{}, nil
	}
	rr := r.rr
	r.rr = nil
	st, err := r.p.waitRecvReq(rr)
	if err != nil {
		r.err = err
		return Status{}, err
	}
	r.status = st
	return r.status, nil
}

// Test polls for completion without blocking (MPI_Test). When the
// operation has completed it behaves exactly like Wait: the caller's
// clock advances to the completion time and the Status is returned.
// The virtual timestamps involved are deterministic; only *when* (in
// host time) Test first observes them is not, which mirrors real MPI,
// where Test's return value depends on progress timing.
func (r *Request) Test() (bool, Status, error) {
	if r == nil {
		return false, Status{}, errors.New("mpi: Test on nil request")
	}
	if r.err != nil {
		return false, Status{}, r.err
	}
	if r.done {
		return true, r.status, nil
	}
	if r.isSend {
		if r.eager {
			// Completion time was already charged at post.
			r.done = true
			return true, Status{}, nil
		}
		select {
		case at := <-r.msg.done:
			putMessage(r.msg)
			r.msg = nil
			if err := failErr(at); err != nil {
				// Latch the failure so later Wait/Test keep reporting it
				// instead of touching the recycled message.
				r.err = err
				return false, Status{}, err
			}
			r.p.syncTo(at)
			r.done = true
			return true, Status{}, nil
		case <-r.p.world.abortCh:
			return false, Status{}, ErrAborted
		default:
			// On the single-threaded event engine a Test loop must hand
			// control off or no other rank can ever make progress.
			if w := r.p.world; w.evLive {
				w.ev.yield(r.p.rank)
			}
			return false, Status{}, nil
		}
	}
	select {
	case res := <-r.rr.result:
		putRecvReq(r.rr)
		r.rr = nil
		if err := failErr(res.at); err != nil {
			r.err = err
			return false, Status{}, err
		}
		r.p.syncTo(res.at)
		r.p.trace("recv", res.bytes, "")
		r.status = Status{Source: res.source, Tag: res.tag, Bytes: res.bytes}
		r.done = true
		return true, r.status, nil
	case <-r.p.world.abortCh:
		return false, Status{}, ErrAborted
	default:
		if w := r.p.world; w.evLive {
			w.ev.yield(r.p.rank)
		}
		return false, Status{}, nil
	}
}

// Waitall completes a set of requests, returning the first error.
func Waitall(reqs ...*Request) error {
	var firstErr error
	for _, rq := range reqs {
		if rq == nil {
			continue
		}
		if _, err := rq.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
