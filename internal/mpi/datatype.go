package mpi

import "fmt"

// Layout describes a derived datatype: a recipe mapping a typed view
// onto a byte buffer, in the spirit of MPI's derived datatypes. The
// paper's Sect. 6 names them as one way to support rank placements
// other than SMP-style ("the MPI derived datatype can be employed [31];
// however, the procedures of packing and unpacking always come with
// performance penalty") — Pack/Unpack realize exactly that trade, and
// charge the copy costs that make the node-sorted rank array (the
// approach internal/hybrid uses instead) the better deal.
type Layout interface {
	// Extent is the span in bytes from the first to one past the
	// last byte the layout touches.
	Extent() int
	// Size is the number of bytes the layout actually transfers.
	Size() int
	// regions yields the (offset, length) runs in extent order.
	regions(yield func(off, n int) bool)
}

// Contig is a contiguous run of bytes — MPI_Type_contiguous.
type Contig struct{ N int }

// Extent implements Layout.
func (c Contig) Extent() int { return c.N }

// Size implements Layout.
func (c Contig) Size() int { return c.N }

func (c Contig) regions(yield func(off, n int) bool) {
	if c.N > 0 {
		yield(0, c.N)
	}
}

// Vector is count blocks of BlockLen bytes separated by Stride bytes —
// MPI_Type_vector. A column of a row-major matrix is Vector{Count:
// rows, BlockLen: elemSize, Stride: rowBytes}.
type Vector struct {
	Count    int
	BlockLen int
	Stride   int
}

// Extent implements Layout.
func (v Vector) Extent() int {
	if v.Count == 0 {
		return 0
	}
	return (v.Count-1)*v.Stride + v.BlockLen
}

// Size implements Layout.
func (v Vector) Size() int { return v.Count * v.BlockLen }

func (v Vector) regions(yield func(off, n int) bool) {
	for i := 0; i < v.Count; i++ {
		if !yield(i*v.Stride, v.BlockLen) {
			return
		}
	}
}

// Indexed is an explicit run list — MPI_Type_indexed (byte
// granularity).
type Indexed struct {
	Offsets []int
	Lengths []int
}

// Validate checks the run list.
func (x Indexed) Validate() error {
	if len(x.Offsets) != len(x.Lengths) {
		return fmt.Errorf("mpi: indexed layout has %d offsets, %d lengths", len(x.Offsets), len(x.Lengths))
	}
	for i := range x.Offsets {
		if x.Offsets[i] < 0 || x.Lengths[i] < 0 {
			return fmt.Errorf("mpi: indexed layout run %d negative", i)
		}
	}
	return nil
}

// Extent implements Layout.
func (x Indexed) Extent() int {
	max := 0
	for i := range x.Offsets {
		if end := x.Offsets[i] + x.Lengths[i]; end > max {
			max = end
		}
	}
	return max
}

// Size implements Layout.
func (x Indexed) Size() int {
	s := 0
	for _, n := range x.Lengths {
		s += n
	}
	return s
}

func (x Indexed) regions(yield func(off, n int) bool) {
	for i := range x.Offsets {
		if !yield(x.Offsets[i], x.Lengths[i]) {
			return
		}
	}
}

// Pack serializes the laid-out bytes of src into a fresh contiguous
// buffer, charging the gather-copy cost (the "performance penalty" of
// Sect. 6). src must cover the layout's extent.
func (p *Proc) Pack(src Buf, l Layout) (Buf, error) {
	if src.Len() < l.Extent() {
		return Buf{}, fmt.Errorf("mpi: pack source %dB < layout extent %dB", src.Len(), l.Extent())
	}
	dst := p.world.NewBuf(l.Size())
	off := 0
	l.regions(func(o, n int) bool {
		CopyData(dst.Slice(off, n), src.Slice(o, n))
		off += n
		return true
	})
	p.advance(p.world.model.CopyCost(l.Size(), 1))
	p.trace("pack", l.Size(), "")
	return dst, nil
}

// Unpack scatters a contiguous buffer back through the layout into dst,
// charging the scatter-copy cost.
func (p *Proc) Unpack(src Buf, dst Buf, l Layout) error {
	if src.Len() < l.Size() {
		return fmt.Errorf("mpi: unpack source %dB < layout size %dB", src.Len(), l.Size())
	}
	if dst.Len() < l.Extent() {
		return fmt.Errorf("mpi: unpack destination %dB < layout extent %dB", dst.Len(), l.Extent())
	}
	off := 0
	l.regions(func(o, n int) bool {
		CopyData(dst.Slice(o, n), src.Slice(off, n))
		off += n
		return true
	})
	p.advance(p.world.model.CopyCost(l.Size(), 1))
	p.trace("unpack", l.Size(), "")
	return nil
}

// SendLayout packs a laid-out region and sends it (convenience for
// strided transfers such as matrix columns).
func (c *Comm) SendLayout(src Buf, l Layout, dst, tag int) error {
	packed, err := c.p.Pack(src, l)
	if err != nil {
		return err
	}
	return c.Send(packed, dst, tag)
}

// RecvLayout receives a packed region and scatters it through the
// layout.
func (c *Comm) RecvLayout(dst Buf, l Layout, src, tag int) (Status, error) {
	staging := c.p.world.NewBuf(l.Size())
	st, err := c.Recv(staging, src, tag)
	if err != nil {
		return st, err
	}
	if err := c.p.Unpack(staging, dst, l); err != nil {
		return st, err
	}
	return st, nil
}
