//go:build race

package mpi

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation allocates and breaks exact
// allocation-count assertions.
const raceEnabled = true
