package mpi

import (
	"fmt"
)

// Win is an MPI-3 shared-memory window (MPI_Win_allocate_shared). All
// ranks of a shared-memory communicator contribute a (possibly zero)
// number of bytes to one contiguous per-node segment; any member can
// obtain a direct view of any other member's contribution
// (MPI_Win_shared_query) and access it by load/store.
//
// In the paper's allgather (Fig. 4) only the node leader contributes a
// non-zero size and every child queries the leader's base pointer —
// exactly the pattern WinAllocateShared + Query support here.
type Win struct {
	comm  *Comm
	base  Buf   // the whole node segment
	offs  []int // comm rank -> offset into base
	sizes []int // comm rank -> contributed bytes
}

// WinAllocateShared collectively allocates a shared segment over a
// shared-memory communicator; mySize is this rank's contribution in
// bytes. All members must be on the same node. Like communicator
// construction, allocation is an untimed one-off (paper Sect. 4.1:
// "the allocation of the shared-memory segment [is a] one-off").
func WinAllocateShared(c *Comm, mySize int) (*Win, error) {
	if c == nil {
		return nil, fmt.Errorf("mpi: WinAllocateShared on nil communicator")
	}
	if mySize < 0 {
		return nil, fmt.Errorf("mpi: negative window size %d", mySize)
	}
	if err := winCheckSingleNode(c); err != nil {
		return nil, err
	}

	vals := c.exchange(mySize)
	sizes := make([]int, c.Size())
	offs := make([]int, c.Size())
	total := 0
	for r, v := range vals {
		sizes[r] = v.(int)
		offs[r] = total
		total += sizes[r]
	}

	// Rank 0 allocates the node segment and publishes it; everyone
	// shares the same backing storage, which is what makes the
	// hybrid collectives single-copy-per-node by construction.
	var seg Buf
	if c.Rank() == 0 {
		seg = c.p.world.NewBuf(total)
	}
	published := c.exchange(seg)
	seg = published[0].(Buf)

	return &Win{comm: c, base: seg, offs: offs, sizes: sizes}, nil
}

// winLeaderPlan is the shared state of a leader-pattern window: the
// node segment plus the offset/size tables every member adopts. total
// is kept for validation — members must have passed the same size, or
// whichever member built the plan would silently decide the geometry.
type winLeaderPlan struct {
	total int
	base  Buf
	offs  []int
	sizes []int
}

// WinAllocateLeader allocates a shared window in the paper's dominant
// pattern: comm rank 0 contributes total bytes, every other member
// zero. The geometry is fully determined by (comm size, total), so
// unlike the general WinAllocateShared no sizes exchange runs: one
// member allocates the segment and publishes it through the world's
// setup slot (SetupOnce), and everyone else adopts it. Semantically
// identical to every member calling WinAllocateShared with
// mySize = total on rank 0 and 0 elsewhere.
func WinAllocateLeader(c *Comm, total int) (*Win, error) {
	if c == nil {
		return nil, fmt.Errorf("mpi: WinAllocateLeader on nil communicator")
	}
	if total < 0 {
		return nil, fmt.Errorf("mpi: negative window size %d", total)
	}
	if err := winCheckSingleNode(c); err != nil {
		return nil, err
	}
	v, err := SetupOnce(c, func() (any, error) {
		plan := &winLeaderPlan{
			total: total,
			base:  c.p.world.NewBuf(total),
			offs:  make([]int, c.Size()),
			sizes: make([]int, c.Size()),
		}
		plan.sizes[0] = total
		for r := 1; r < c.Size(); r++ {
			plan.offs[r] = total
		}
		return plan, nil
	})
	if err != nil {
		return nil, err
	}
	plan := v.(*winLeaderPlan)
	// Divergent sizes are an application bug that must fail loudly on
	// the rank that holds the odd value, not silently adopt whichever
	// member reached the setup slot first.
	if plan.total != total {
		return nil, fmt.Errorf("mpi: WinAllocateLeader sizes diverge across ranks (builder has %d, this rank has %d)",
			plan.total, total)
	}
	return &Win{comm: c, base: plan.base, offs: plan.offs, sizes: plan.sizes}, nil
}

// winCheckSingleNode verifies every member shares a node (load/store
// reachability).
func winCheckSingleNode(c *Comm) error {
	node := c.p.world.topo.NodeOf(c.Global(0))
	for r := 1; r < c.Size(); r++ {
		if c.p.world.topo.NodeOf(c.Global(r)) != node {
			return fmt.Errorf("mpi: shared window communicator spans nodes %d and %d",
				node, c.p.world.topo.NodeOf(c.Global(r)))
		}
	}
	return nil
}

// Mine returns this rank's contributed segment.
func (w *Win) Mine() Buf { return w.Query(w.comm.Rank()) }

// Query returns the segment contributed by a comm rank
// (MPI_Win_shared_query).
func (w *Win) Query(rank int) Buf {
	return w.base.Slice(w.offs[rank], w.sizes[rank])
}

// Whole returns the entire contiguous node segment starting at the
// lowest rank's base — what the paper's children obtain by querying the
// leader.
func (w *Win) Whole() Buf { return w.base }

// Size returns the total segment size in bytes.
func (w *Win) Size() int { return w.base.Len() }

// Comm returns the shared-memory communicator the window lives on.
func (w *Win) Comm() *Comm { return w.comm }
