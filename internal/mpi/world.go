// Package mpi is an MPI-like message-passing runtime over the simulated
// cluster of internal/sim. Each rank is a goroutine; communicators,
// point-to-point messaging, and MPI-3-style shared-memory windows follow
// the MPI-3 semantics the paper relies on (MPI_Comm_split_type,
// MPI_Win_allocate_shared, MPI_Win_shared_query, ...), while all timing
// is virtual and deterministic.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// World owns one simulated job: the topology, the cost model, the
// message-matching engine, and the per-rank processes.
type World struct {
	topo   *sim.Topology
	model  *sim.CostModel
	tracer *sim.Tracer
	real   bool // real data movement (tests) vs size-only (big benches)

	match   *matcher
	coord   *coordinator
	nextCtx atomic.Int64
	collCfg any // default collective-tuning config inherited by CommWorld

	identity []int // comm rank == global rank table for COMM_WORLD
	procs    []*Proc

	abortOnce sync.Once
	abortCh   chan struct{}
}

// ErrAborted is returned from blocking operations when another rank of
// the job failed. Real MPI jobs abort globally on rank failure; the
// simulator mirrors that so one rank's error cannot strand its peers in
// a barrier forever.
var ErrAborted = errors.New("mpi: job aborted because another rank failed")

// Abort wakes every blocked operation with ErrAborted. It is invoked
// automatically when a rank body returns an error or panics; tests use
// it directly for failure injection. A world stays poisoned after
// Abort.
func (w *World) Abort() {
	w.abortOnce.Do(func() { close(w.abortCh) })
}

// Aborted reports whether the job was aborted.
func (w *World) Aborted() bool {
	select {
	case <-w.abortCh:
		return true
	default:
		return false
	}
}

// Option configures a World.
type Option func(*World)

// WithRealData makes buffers allocated through World helpers carry real
// bytes and eager sends snapshot payloads. Tests use this; the big
// benchmark sweeps do not (see Buf).
func WithRealData() Option { return func(w *World) { w.real = true } }

// WithTracer attaches an event tracer.
func WithTracer(t *sim.Tracer) Option { return func(w *World) { w.tracer = t } }

// WithCollConfig sets the world-default collective-tuning configuration
// (an internal/coll Tuning value, opaque here). Every rank's CommWorld
// handle — and every communicator derived from it — inherits the value,
// which is how a workload or benchmark threads a tuning policy through
// to the hybrid and collective layers.
func WithCollConfig(v any) Option { return func(w *World) { w.collCfg = v } }

// NewWorld creates a simulated MPI job on the given topology and machine
// model.
func NewWorld(model *sim.CostModel, topo *sim.Topology, opts ...Option) (*World, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if topo == nil || topo.Size() == 0 {
		return nil, errors.New("mpi: nil or empty topology")
	}
	w := &World{
		topo:    topo,
		model:   model,
		match:   newMatcher(),
		coord:   newCoordinator(),
		abortCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(w)
	}
	w.match.sizeTo(topo.Size())
	w.identity = make([]int, topo.Size())
	w.procs = make([]*Proc, topo.Size())
	for r := range w.procs {
		w.identity[r] = r
		w.procs[r] = &Proc{world: w, rank: r}
	}
	return w, nil
}

// Topology returns the node layout.
func (w *World) Topology() *sim.Topology { return w.topo }

// Model returns the machine cost model.
func (w *World) Model() *sim.CostModel { return w.model }

// RealData reports whether buffers carry real bytes.
func (w *World) RealData() bool { return w.real }

// Size returns the number of ranks.
func (w *World) Size() int { return w.topo.Size() }

// NewBuf allocates a buffer honoring the world's data mode.
func (w *World) NewBuf(n int) Buf { return Alloc(n, w.real) }

// newContext issues a fresh communication context id (one per
// communicator), isolating message matching between communicators.
func (w *World) newContext() int { return int(w.nextCtx.Add(1)) }

// RankError describes a failure on one rank of a Run.
type RankError struct {
	Rank int
	Err  error
}

// Error implements error.
func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// Unwrap exposes the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes body once per rank, each on its own goroutine, and waits
// for all of them. Panics inside a rank are recovered and reported as
// that rank's error. The returned error joins every failing rank's
// error (errors.Join), nil if all ranks succeeded.
//
// Run may be called repeatedly on the same World; clocks continue from
// where the previous Run left them (use ResetClocks between independent
// measurements).
func (w *World) Run(body func(p *Proc) error) error {
	errs := make([]error, w.Size())
	var wg sync.WaitGroup
	wg.Add(w.Size())
	for r := 0; r < w.Size(); r++ {
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					// Coordinator waits signal job aborts by
					// panicking with ErrAborted; report those
					// cleanly rather than as crashes.
					if e, ok := rec.(error); ok && errors.Is(e, ErrAborted) {
						errs[p.rank] = &RankError{Rank: p.rank, Err: e}
						return
					}
					errs[p.rank] = &RankError{
						Rank: p.rank,
						Err:  fmt.Errorf("panic: %v\n%s", rec, debug.Stack()),
					}
					w.Abort()
				}
			}()
			if err := body(p); err != nil {
				errs[p.rank] = &RankError{Rank: p.rank, Err: err}
				// A failing rank aborts the job, as mpirun
				// would, so peers blocked in collectives wake
				// up with ErrAborted instead of hanging.
				w.Abort()
			}
		}(w.procs[r])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ResetClocks zeroes every rank's virtual clock (between benchmark
// repetitions).
func (w *World) ResetClocks() {
	for _, p := range w.procs {
		p.clock = 0
	}
}

// MaxClock returns the latest clock across ranks — the virtual makespan
// of everything run so far.
func (w *World) MaxClock() sim.Time {
	var max sim.Time
	for _, p := range w.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Proc returns the process object for a rank (for post-Run inspection).
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }
