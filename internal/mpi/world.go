// Package mpi is an MPI-like message-passing runtime over the simulated
// cluster of internal/sim. Each rank is a goroutine; communicators,
// point-to-point messaging, and MPI-3-style shared-memory windows follow
// the MPI-3 semantics the paper relies on (MPI_Comm_split_type,
// MPI_Win_allocate_shared, MPI_Win_shared_query, ...), while all timing
// is virtual and deterministic.
package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// World owns one simulated job: the topology, the cost model, the
// message-matching engine, the persistent rank pool, and the per-rank
// processes.
type World struct {
	topo   *sim.Topology
	model  *sim.CostModel
	tracer *sim.Tracer
	real   bool // real data movement (tests) vs size-only (big benches)

	match   *matcher
	coord   *coordinator
	nextCtx atomic.Int64
	collCfg any // default collective-tuning config inherited by CommWorld

	// Deterministic noise/fault layer (fault.go). noise is the compiled
	// per-world state (nil for a clean world); damaged latches once any
	// rank dies so pools never reuse a world with dead ranks; commRanks
	// maps context id -> member global ranks, maintained only under
	// failure configs so the coordinator's death walk can tell which
	// sessions a dead rank participates in.
	noise     *noiseState
	damaged   atomic.Bool
	commRanks sync.Map

	identity []int // comm rank == global rank table for COMM_WORLD
	procs    []*Proc

	// Execution engine: the persistent rank pool (goroutine backend),
	// the event scheduler (event backend, lazily created), the reusable
	// per-Run dispatch record, and the Run gate that enforces the
	// one-Run-at-a-time / no-clock-reads-during-Run contract. evLive is
	// set only while an event-engine Run is in flight; the park sites
	// (request.go, sched.go, coord.go) branch on it.
	engine       sim.Engine
	ev           *evSched
	evLive       bool
	pool         *rankPool
	run          runState
	running      atomic.Bool
	closed       atomic.Bool
	finalizerSet bool // leak-backstop finalizer installed (see pool.go)

	// Rank-symmetry folding (fold.go): with foldUnit u > 0 only ranks
	// 0..u-1 execute; every rank r aliases the Proc of its class
	// representative r%u, so replica clocks are literally the
	// representative's. execN is the number of executing ranks (u when
	// folded, Size() otherwise).
	foldUnit int
	execN    int

	// setupSlots holds the SetupOnce slots: one once-guarded record per
	// (communicator context, coordination sequence) collective setup
	// call, through which derived-communicator plans (SplitLevel, the
	// composer geometry) are shared exchange-free (see derive.go).
	setupSlots sync.Map

	abortOnce sync.Once
	abortCh   chan struct{}
}

// ErrAborted is returned from blocking operations when another rank of
// the job failed. Real MPI jobs abort globally on rank failure; the
// simulator mirrors that so one rank's error cannot strand its peers in
// a barrier forever.
var ErrAborted = errors.New("mpi: job aborted because another rank failed")

// Abort wakes every blocked operation with ErrAborted. It is invoked
// automatically when a rank body returns an error or panics; tests use
// it directly for failure injection. A world stays poisoned after
// Abort.
//
// The hot wait paths (message completion, small-comm clock fusion)
// park on plain channel receives; Abort wakes those by poisoning their
// channels directly (matcher.poison, poisonFusers). The remaining
// waiters — exchange sessions, large-comm fusion trees — still select
// on abortCh and wake through its close.
func (w *World) Abort() {
	w.abortOnce.Do(func() {
		close(w.abortCh)
		w.match.poison()
		w.coord.poisonFusers()
	})
}

// Closed reports whether Close has run. A closed world cannot Run
// again; pools holding warm worlds consult it before parking one.
func (w *World) Closed() bool { return w.closed.Load() }

// Aborted reports whether the job was aborted.
func (w *World) Aborted() bool {
	select {
	case <-w.abortCh:
		return true
	default:
		return false
	}
}

// Config collects every World construction knob in one declarative,
// value-semantics record — the single construction path layered
// packages (internal/spec in particular) target. The functional
// options below are thin wrappers over its fields; DefaultConfig is
// the zero behavior NewWorld applies them to.
type Config struct {
	// Engine selects the execution backend Runs dispatch on:
	// sim.EngineGoroutine (one parked worker per rank) or
	// sim.EngineEvent (single-threaded discrete-event scheduler).
	// DefaultConfig seeds it from the package default (SetDefaultEngine).
	Engine sim.Engine
	// FoldUnit enables rank-symmetry folding: only ranks 0..FoldUnit-1
	// execute, every other rank aliases its class representative (see
	// fold.go for the contract). 0 runs every rank. The unit is
	// validated against the topology at construction.
	FoldUnit int
	// RealData makes buffers allocated through World helpers carry real
	// bytes and eager sends snapshot payloads. Tests use it; the big
	// size-only benchmark sweeps do not (see Buf). Incompatible with
	// FoldUnit > 0.
	RealData bool
	// Tracer, when non-nil, receives every simulated event.
	Tracer *sim.Tracer
	// CollConfig is the world-default collective-tuning configuration
	// (an internal/coll Tuning value, opaque here). Every rank's
	// CommWorld handle — and every communicator derived from it —
	// inherits the value.
	CollConfig any
	// Noise configures the deterministic noise/fault layer (compute
	// jitter, stragglers, link congestion, scheduled rank failures).
	// Nil (or a zero value) runs a perfectly clean world. A config
	// whose BreaksSymmetry() is true is incompatible with FoldUnit > 0.
	Noise *sim.Noise
}

// DefaultConfig returns the configuration NewWorld starts from before
// applying options: the package-default engine, no folding, size-only
// buffers, no tracer, no collective tuning.
func DefaultConfig() Config { return Config{Engine: DefaultEngine()} }

// Option configures a World at construction by editing its Config.
type Option func(*Config)

// WithRealData makes buffers allocated through World helpers carry real
// bytes and eager sends snapshot payloads (Config.RealData).
func WithRealData() Option { return func(c *Config) { c.RealData = true } }

// WithTracer attaches an event tracer (Config.Tracer).
func WithTracer(t *sim.Tracer) Option { return func(c *Config) { c.Tracer = t } }

// WithCollConfig sets the world-default collective-tuning configuration
// (Config.CollConfig), which is how a workload or benchmark threads a
// tuning policy through to the hybrid and collective layers.
func WithCollConfig(v any) Option { return func(c *Config) { c.CollConfig = v } }

// WithEngine selects the execution backend for this world
// (Config.Engine), overriding the package default (see
// SetDefaultEngine).
func WithEngine(e sim.Engine) Option { return func(c *Config) { c.Engine = e } }

// WithFold enables rank-symmetry folding with the given fold unit
// (Config.FoldUnit).
func WithFold(unit int) Option { return func(c *Config) { c.FoldUnit = unit } }

// WithNoise attaches a deterministic noise/fault config (Config.Noise).
func WithNoise(n *sim.Noise) Option { return func(c *Config) { c.Noise = n } }

// defaultEngine holds the package-wide backend worlds are created with
// when no WithEngine option is given. Harnesses that construct worlds
// deep inside benchmark closures (internal/bench) switch engines
// through it without threading an option through every layer.
var defaultEngine atomic.Int32

// SetDefaultEngine sets the execution backend NewWorld uses when no
// WithEngine option is given. The process default is EngineGoroutine.
func SetDefaultEngine(e sim.Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the current package-wide default backend.
func DefaultEngine() sim.Engine { return sim.Engine(defaultEngine.Load()) }

// NewWorld creates a simulated MPI job on the given topology and machine
// model, applying the options to DefaultConfig.
func NewWorld(model *sim.CostModel, topo *sim.Topology, opts ...Option) (*World, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return NewWorldConfig(model, topo, cfg)
}

// NewWorldConfig creates a simulated MPI job from an explicit Config —
// the declarative construction path. NewWorld's functional options are
// a thin layer over it.
func NewWorldConfig(model *sim.CostModel, topo *sim.Topology, cfg Config) (*World, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if topo == nil || topo.Size() == 0 {
		return nil, errors.New("mpi: nil or empty topology")
	}
	w := &World{
		topo:     topo,
		model:    model,
		engine:   cfg.Engine,
		real:     cfg.RealData,
		tracer:   cfg.Tracer,
		collCfg:  cfg.CollConfig,
		foldUnit: cfg.FoldUnit,
		match:    newMatcher(),
		coord:    newCoordinator(),
		abortCh:  make(chan struct{}),
	}
	if err := w.validateFold(); err != nil {
		return nil, err
	}
	if err := cfg.Noise.Validate(topo.Size()); err != nil {
		return nil, err
	}
	if cfg.Noise.BreaksSymmetry() && cfg.FoldUnit > 0 {
		return nil, fmt.Errorf("mpi: noise config breaks rank symmetry (jitter/stragglers/failures): %w", ErrFoldUnsafe)
	}
	w.noise = compileNoise(cfg.Noise, topo.Size())
	w.execN = topo.Size()
	if w.foldUnit > 0 {
		w.execN = w.foldUnit
	}
	w.pool = newRankPool(w.execN)
	w.match.fold = w.foldUnit
	w.match.sizeTo(w.execN)
	if w.hasFailures() {
		w.match.dead = make([]atomic.Bool, topo.Size())
	}
	w.identity = make([]int, topo.Size())
	w.procs = make([]*Proc, topo.Size())
	store := make([]Proc, w.execN) // one allocation, not one per rank
	for i := range store {
		store[i] = Proc{world: w, rank: i}
	}
	for r := range w.procs {
		w.identity[r] = r
		w.procs[r] = &store[r%w.execN]
	}
	w.registerComm(0, w.identity)
	return w, nil
}

// Engine returns the execution backend currently selected for Runs.
func (w *World) Engine() sim.Engine { return w.engine }

// SetEngine switches the execution backend for subsequent Runs. Both
// backends may be used on the same World interchangeably (each is
// created lazily and kept until Close); virtual clocks are
// bit-identical either way. Must not be called while a Run is in
// flight.
func (w *World) SetEngine(e sim.Engine) {
	w.assertNotRunning("SetEngine")
	w.engine = e
}

// Topology returns the node layout.
func (w *World) Topology() *sim.Topology { return w.topo }

// Model returns the machine cost model.
func (w *World) Model() *sim.CostModel { return w.model }

// RealData reports whether buffers carry real bytes.
func (w *World) RealData() bool { return w.real }

// Size returns the number of ranks.
func (w *World) Size() int { return w.topo.Size() }

// NewBuf allocates a buffer honoring the world's data mode.
func (w *World) NewBuf(n int) Buf { return Alloc(n, w.real) }

// newContext issues a fresh communication context id (one per
// communicator), isolating message matching between communicators.
func (w *World) newContext() int { return int(w.nextCtx.Add(1)) }

// RankError describes a failure on one rank of a Run.
type RankError struct {
	Rank int
	Err  error
}

// Error implements error.
func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// Unwrap exposes the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// ErrClosed is returned by Run on a World whose pool was shut down.
var ErrClosed = errors.New("mpi: world closed")

// Run executes body once per rank on the persistent rank pool and waits
// for all of them. Workers are long-lived goroutines parked on per-rank
// mailboxes: the first Run spawns them, every later Run reuses them, so
// the steady state dispatches without spawning or allocating. Panics
// inside a rank are recovered and reported as that rank's error. The
// returned error joins every failing rank's error (errors.Join), nil if
// all ranks succeeded.
//
// Run may be called repeatedly on the same World; clocks continue from
// where the previous Run left them (use ResetClocks between independent
// measurements). This is the warm-world contract the spec layer's
// world pool is built on: a world that finished a Run cleanly (no
// error, no abort) is drained — matcher queues empty, coordinator
// sessions released — and a ResetClocks+Run cycle on it produces
// virtual times bit-identical to a freshly constructed world of the
// same shape. Run on an aborted world fails immediately with
// ErrAborted (the world stays poisoned), and on a closed world with
// ErrClosed. Calls must not overlap: a second Run while one is in
// flight panics.
func (w *World) Run(body func(p *Proc) error) error {
	if w.closed.Load() {
		return ErrClosed
	}
	if w.Aborted() {
		return fmt.Errorf("mpi: Run on poisoned world: %w", ErrAborted)
	}
	if !w.running.CompareAndSwap(false, true) {
		panic("mpi: concurrent World.Run calls")
	}
	defer w.running.Store(false)

	st := &w.run
	st.body = body
	if st.errs == nil {
		st.errs = make([]error, w.execN)
	} else {
		clear(st.errs)
	}
	if w.engine == sim.EngineEvent {
		if w.ev == nil {
			w.ev = newEvSched(w, w.execN)
			setWorldFinalizer(w)
		}
		w.evLive = true
		w.ev.begin(st)
		w.ev.dispatchNext()
		<-w.ev.ctrl
		w.evLive = false
	} else {
		if !w.pool.started {
			w.pool.start()
			setWorldFinalizer(w)
		}
		st.wg.Add(w.execN)
		for r := 0; r < w.execN; r++ {
			w.pool.dispatch(rankJob{p: w.procs[r], st: st})
		}
		st.wg.Wait()
	}
	st.body = nil
	err := errors.Join(st.errs...)
	if w.foldUnit > 0 {
		err = w.finishFoldedRun(err)
	}
	return err
}

// recoveredRankError converts a recovered rank panic into the rank's
// reported error. Coordinator waits signal job aborts by panicking with
// ErrAborted; those are reported cleanly rather than as crashes. Any
// other panic aborts the job.
func recoveredRankError(p *Proc, rec any) error {
	if rec == errRankKilled {
		// A scheduled death is not a bug: the rank simply stops. Its
		// peers observe the failure through the fault machinery
		// (ErrRankFailed) and decide whether to recover or abort.
		return nil
	}
	if e, ok := rec.(error); ok {
		if errors.Is(e, ErrAborted) {
			return &RankError{Rank: p.rank, Err: e}
		}
		if errors.Is(e, ErrRankFailed) || errors.Is(e, ErrRevoked) {
			// A rank that gives up on a peer's failure (instead of
			// recovering via Revoke/Shrink) fails the job, MPI's
			// MPI_ERRORS_ARE_FATAL default. Abort so ranks parked in
			// collectives with the dead rank wake up.
			p.world.Abort()
			return &RankError{Rank: p.rank, Err: e}
		}
		if errors.Is(e, ErrFoldUnsafe) {
			// A fold-unsafe operation is symmetric: every executing
			// rank hits the same guard. Abort so any rank already
			// parked in the offending collective wakes up.
			p.world.Abort()
			return &RankError{Rank: p.rank, Err: e}
		}
	}
	p.world.Abort()
	return &RankError{
		Rank: p.rank,
		Err:  fmt.Errorf("panic: %v\n%s", rec, debug.Stack()),
	}
}

// Close shuts the rank pool down: parked workers wake up and exit, and
// later Run calls fail with ErrClosed. Close is idempotent and safe on
// a world that never ran; it must not be called while a Run is in
// flight. Worlds the harnesses churn through (one per measured
// operation) should be closed so their parked goroutines are released
// deterministically; a world dropped without Close is cleaned up by a
// GC finalizer instead.
func (w *World) Close() {
	if w.running.Load() {
		panic("mpi: Close during Run")
	}
	if w.closed.CompareAndSwap(false, true) {
		w.pool.shutdown()
		if w.ev != nil {
			w.ev.shutdown()
		}
		if !w.Aborted() {
			// All fusions completed, so the trees' channels are empty
			// and the trees can serve the next same-shape world.
			w.coord.releaseTrees()
		}
		runtime.SetFinalizer(w, nil)
	}
}

// assertNotRunning guards the clock accessors: per-rank clocks are
// owned by the rank goroutines while a Run is in flight, so reading or
// writing them concurrently would race. They are meaningful only
// between Runs.
func (w *World) assertNotRunning(op string) {
	if w.running.Load() {
		panic("mpi: " + op + " during Run — clocks are owned by the rank goroutines while a Run is in flight")
	}
}

// ResetClocks zeroes every rank's virtual clock (between benchmark
// repetitions). It must not be called while a Run is in flight.
func (w *World) ResetClocks() {
	w.assertNotRunning("ResetClocks")
	for _, p := range w.procs {
		p.clock = 0
		p.noiseOps = 0
	}
}

// MaxClock returns the latest clock across ranks — the virtual makespan
// of everything run so far. It must not be called while a Run is in
// flight.
func (w *World) MaxClock() sim.Time {
	w.assertNotRunning("MaxClock")
	var max sim.Time
	for _, p := range w.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Proc returns the process object for a rank (for post-Run inspection).
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }
