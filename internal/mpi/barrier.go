package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Reserved tag space for runtime-internal collective traffic. User tags
// below tagInternalBase never collide with these.
const (
	tagInternalBase = 1 << 24
	tagBarrier      = tagInternalBase + 0
	tagFlag         = tagInternalBase + 1 // hybrid p2p-flag sync
)

// Barrier blocks until every rank of the communicator has entered.
//
// Communicators whose members all live on one node take the
// shared-memory fast path real MPI libraries use: a flag-based
// dissemination barrier costing ~log2(n) cache-line exchanges, far
// cheaper than message passing. This is the barrier the paper's hybrid
// collectives lean on (their sharedmemComm barriers are always
// node-local), and its cost is what keeps Hy_Allgather flat in Fig. 7
// and lets Hy_SUMMA reach ~5x on one node in Fig. 11a.
//
// Multi-node communicators run the message-based dissemination
// algorithm: ceil(log2 n) rounds of zero-byte exchanges.
func (c *Comm) Barrier() error {
	n := c.Size()
	if n <= 1 {
		return nil
	}
	if c.isSingleNode() {
		c.shmBarrier()
		return nil
	}
	empty := Sized(0)
	for k := 1; k < n; k <<= 1 {
		dst := (c.rank + k) % n
		src := (c.rank - k + n) % n
		if _, err := c.Sendrecv(empty, dst, tagBarrier, empty, src, tagBarrier); err != nil {
			return fmt.Errorf("mpi: barrier round %d: %w", k, err)
		}
	}
	return nil
}

// isSingleNode reports whether every member lives on one node (cached).
func (c *Comm) isSingleNode() bool {
	if c.oneNode == 0 {
		topo := c.p.world.topo
		node := topo.NodeOf(c.ranks[0])
		c.oneNode = 1
		for _, g := range c.ranks[1:] {
			if topo.NodeOf(g) != node {
				c.oneNode = -1
				break
			}
		}
	}
	return c.oneNode > 0
}

// shmBarrier models the flag-based dissemination barrier: every rank
// leaves once the last rank has arrived, paying ceil(log2 n) rounds of
// two cache-line operations each. Clocks are fused through the untimed
// coordinator; the timed cost is charged explicitly, so the result stays
// deterministic.
func (c *Comm) shmBarrier() {
	p := c.p
	latest := c.FuseClocks(p.clock)
	rounds := 0
	for k := 1; k < c.Size(); k <<= 1 {
		rounds++
	}
	p.syncTo(latest)
	p.advance(sim.Time(rounds) * 2 * p.world.model.MemAlpha)
}
