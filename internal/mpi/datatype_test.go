package mpi

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestContigLayout(t *testing.T) {
	c := Contig{N: 10}
	if c.Extent() != 10 || c.Size() != 10 {
		t.Error("contig geometry wrong")
	}
	if (Contig{}).Extent() != 0 {
		t.Error("empty contig extent")
	}
}

func TestVectorLayout(t *testing.T) {
	// A column of a 4x3 matrix of 8-byte elements.
	v := Vector{Count: 4, BlockLen: 8, Stride: 24}
	if v.Size() != 32 {
		t.Errorf("size = %d", v.Size())
	}
	if v.Extent() != 3*24+8 {
		t.Errorf("extent = %d", v.Extent())
	}
	if (Vector{}).Extent() != 0 {
		t.Error("empty vector extent")
	}
}

func TestIndexedLayout(t *testing.T) {
	x := Indexed{Offsets: []int{8, 0, 32}, Lengths: []int{4, 4, 8}}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.Size() != 16 || x.Extent() != 40 {
		t.Errorf("size=%d extent=%d", x.Size(), x.Extent())
	}
	if (Indexed{Offsets: []int{0}, Lengths: []int{1, 2}}).Validate() == nil {
		t.Error("ragged indexed accepted")
	}
	if (Indexed{Offsets: []int{-1}, Lengths: []int{1}}).Validate() == nil {
		t.Error("negative offset accepted")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	w := newTestWorld(t, 1, 1)
	err := w.Run(func(p *Proc) error {
		// 4x4 matrix of float64; pack column 1.
		src := Bytes(make([]byte, 4*4*8))
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				src.PutFloat64(r*4+c, float64(10*r+c))
			}
		}
		col := Vector{Count: 4, BlockLen: 8, Stride: 32}
		packed, err := p.Pack(src.Slice(8, src.Len()-8), col)
		if err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if got := packed.Float64At(r); got != float64(10*r+1) {
				t.Errorf("packed[%d] = %v", r, got)
			}
		}
		// Scatter it into column 2 of a fresh matrix.
		dst := Bytes(make([]byte, 4*4*8))
		if err := p.Unpack(packed, dst.Slice(16, dst.Len()-16), col); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if got := dst.Float64At(r*4 + 2); got != float64(10*r+1) {
				t.Errorf("dst col2[%d] = %v", r, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackChargesTime(t *testing.T) {
	w := newTestWorld(t, 1, 1)
	err := w.Run(func(p *Proc) error {
		src := Bytes(make([]byte, 1<<16))
		before := p.Clock()
		if _, err := p.Pack(src, Contig{N: 1 << 16}); err != nil {
			return err
		}
		if p.Clock() == before {
			t.Error("pack charged no time")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackValidation(t *testing.T) {
	w := newTestWorld(t, 1, 1)
	err := w.Run(func(p *Proc) error {
		if _, err := p.Pack(Sized(4), Contig{N: 8}); err == nil {
			t.Error("short pack source accepted")
		}
		if err := p.Unpack(Sized(4), Sized(64), Contig{N: 8}); err == nil {
			t.Error("short unpack source accepted")
		}
		if err := p.Unpack(Sized(8), Sized(4), Contig{N: 8}); err == nil {
			t.Error("short unpack destination accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvLayout(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		// Send a strided column; the receiver scatters it into a
		// different stride.
		col := Vector{Count: 3, BlockLen: 8, Stride: 16}
		if p.Rank() == 0 {
			src := Bytes(make([]byte, col.Extent()))
			for i := 0; i < 3; i++ {
				src.PutFloat64(i*2, float64(7+i))
			}
			return c.SendLayout(src, col, 1, 5)
		}
		wide := Vector{Count: 3, BlockLen: 8, Stride: 24}
		dst := Bytes(make([]byte, wide.Extent()))
		if _, err := c.RecvLayout(dst, wide, 0, 5); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if got := dst.Float64At(i * 3); got != float64(7+i) {
				t.Errorf("elem %d = %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorSizeProperty(t *testing.T) {
	f := func(count, blockLen uint8) bool {
		v := Vector{Count: int(count), BlockLen: int(blockLen), Stride: int(blockLen) + 3}
		if v.Size() != int(count)*int(blockLen) {
			return false
		}
		// Extent >= Size whenever stride >= blocklen.
		return v.Extent() >= v.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackNonSMPUseCase(t *testing.T) {
	// The Sect. 6 scenario: under round-robin placement a node's
	// blocks are strided in rank order; packing them costs time the
	// node-sorted rank array avoids. Lock in that pack+send is
	// costlier than the direct send of the same bytes.
	topo, err := sim.NewTopology([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(sim.HazelHenCray(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var packed, direct sim.Time
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		// Keep the message eager so the sender-side comparison is
		// not polluted by rendezvous waits on the receiver.
		const blk = 512
		l := Vector{Count: 8, BlockLen: blk, Stride: 2 * blk}
		if p.Rank() == 0 {
			src := Sized(l.Extent())
			start := p.Clock()
			if err := c.SendLayout(src, l, 2, 1); err != nil {
				return err
			}
			packed = p.Clock() - start
			start = p.Clock()
			if err := c.Send(Sized(l.Size()), 2, 2); err != nil {
				return err
			}
			direct = p.Clock() - start
		}
		if p.Rank() == 2 {
			if _, err := c.RecvLayout(Sized(l.Extent()), l, 0, 1); err != nil {
				return err
			}
			if _, err := c.Recv(Sized(l.Size()), 0, 2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if packed <= direct {
		t.Errorf("packing penalty missing: packed %v <= direct %v", packed, direct)
	}
}
