package mpi

import (
	"math"
	"math/rand"
	"testing"
)

// TestFloat64sViewAliasesBuffer checks the zero-copy contract: writes
// through the view are visible to the codec accessors and vice versa.
func TestFloat64sViewAliasesBuffer(t *testing.T) {
	b := Bytes(make([]byte, 4*8))
	v := b.Float64sView()
	if v == nil {
		t.Skip("no typed views on this platform (big-endian)")
	}
	if len(v) != 4 {
		t.Fatalf("view length = %d, want 4", len(v))
	}
	v[2] = 6.25
	if got := b.Float64At(2); got != 6.25 {
		t.Errorf("write through view not visible via Float64At: %v", got)
	}
	b.PutFloat64(3, -1.5)
	if v[3] != -1.5 {
		t.Errorf("PutFloat64 not visible through view: %v", v[3])
	}
}

// TestViewUnavailableCases enumerates when a view must be refused.
func TestViewUnavailableCases(t *testing.T) {
	if Sized(64).Float64sView() != nil {
		t.Error("size-only buffer returned a view")
	}
	if Sized(64).Int64sView() != nil {
		t.Error("size-only buffer returned an int64 view")
	}
	if Bytes(nil).Float64sView() != nil {
		t.Error("empty buffer returned a view")
	}
	misaligned := Bytes(make([]byte, 72)).Slice(4, 64)
	if misaligned.Float64sView() != nil {
		t.Error("4-byte-offset sub-buffer returned a view")
	}
}

// TestBulkFloat64sMatchPerElement proves PutFloat64s/CopyFloat64s
// byte-identical to the per-element accessors, on buffers that take the
// view path and buffers that fall back to the codec.
func TestBulkFloat64sMatchPerElement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 31)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	vals[7] = math.NaN()
	vals[11] = math.Inf(-1)

	mk := func(aligned bool) (bulk, ref Buf) {
		if aligned {
			return Bytes(make([]byte, 8*40)), Bytes(make([]byte, 8*40))
		}
		return Bytes(make([]byte, 8*40+4)).Slice(4, 8*40),
			Bytes(make([]byte, 8*40+4)).Slice(4, 8*40)
	}
	for _, aligned := range []bool{true, false} {
		bulk, ref := mk(aligned)
		bulk.PutFloat64s(5, vals)
		for j, v := range vals {
			ref.PutFloat64(5+j, v)
		}
		for i := 0; i < 40; i++ {
			gb, gr := bulk.Float64At(i), ref.Float64At(i)
			if math.Float64bits(gb) != math.Float64bits(gr) {
				t.Fatalf("aligned=%v: PutFloat64s elem %d = %v, per-element wrote %v", aligned, i, gb, gr)
			}
		}

		got := make([]float64, len(vals))
		bulk.CopyFloat64s(got, 5)
		for j := range vals {
			if math.Float64bits(got[j]) != math.Float64bits(vals[j]) {
				t.Fatalf("aligned=%v: CopyFloat64s elem %d = %v, want %v", aligned, j, got[j], vals[j])
			}
		}
	}
}

// TestBulkFloat64sSizeOnly: writes are ignored, reads yield zeros (the
// destination is cleared, matching what Float64s always returned).
func TestBulkFloat64sSizeOnly(t *testing.T) {
	b := Sized(64)
	b.PutFloat64s(0, []float64{1, 2, 3}) // must not panic
	got := []float64{9, 9, 9}
	b.CopyFloat64s(got, 2)
	for i, v := range got {
		if v != 0 {
			t.Errorf("size-only CopyFloat64s elem %d = %v, want 0", i, v)
		}
	}
}

// TestInt64sView mirrors the float64 aliasing contract for int64.
func TestInt64sView(t *testing.T) {
	b := Bytes(make([]byte, 3*8))
	v := b.Int64sView()
	if v == nil {
		t.Skip("no typed views on this platform (big-endian)")
	}
	v[1] = -42
	if got := b.Int64At(1); got != -42 {
		t.Errorf("write through int64 view not visible: %d", got)
	}
	b.PutInt64(2, 1<<40)
	if v[2] != 1<<40 {
		t.Errorf("PutInt64 not visible through view: %d", v[2])
	}
}
