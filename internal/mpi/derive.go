package mpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// This file holds the exchange-free communicator-derivation machinery.
// Splits whose outcome is fully determined by world-global data — the
// topology and the parent communicator's rank table — do not need the
// contribute/publish exchanges of the generic Split: any member can
// compute the whole partition locally. SetupOnce shares exactly one
// such computation per collective call among the members, and the
// expensive membership tables are additionally cached across worlds
// (sweeps rebuild worlds of the same shape thousands of times), so a
// repeated-world benchmark re-derives nothing.

// setupKey identifies one collective setup call-site instance on a
// communicator: the context plus the per-handle coordination sequence
// number every member advances identically.
type setupKey struct{ ctx, seq int }

// setupEntry is the once-guarded slot one SetupOnce call shares. left
// counts the members that have not fetched the result yet; the last
// one deletes the slot, so setup plans don't accumulate on the world
// (the same hygiene the coordinator's exchange sessions get).
type setupEntry struct {
	once sync.Once
	val  any
	err  error
	left atomic.Int32
}

// SetupOnce runs build exactly once per collective call on the
// communicator and hands the result to every member — the local,
// exchange-free analogue of SharePlan for plans derivable from
// world-global data (topology, rank tables). Like Setup and SharePlan
// it must be called collectively and in the same order by all members;
// unlike them it performs no rendezvous: members that arrive after the
// build simply read the shared slot and proceed, and the last arrival
// retires the slot.
func SetupOnce(c *Comm, build func() (any, error)) (any, error) {
	key := setupKey{ctx: c.ctx, seq: c.nextSeq()}
	w := c.p.world
	v, ok := w.setupSlots.Load(key)
	if !ok {
		e := &setupEntry{}
		e.left.Store(int32(len(c.ranks)))
		v, _ = w.setupSlots.LoadOrStore(key, e)
	}
	e := v.(*setupEntry)
	e.once.Do(func() { e.val, e.err = build() })
	val, err := e.val, e.err
	if e.left.Add(-1) == 0 {
		w.setupSlots.Delete(key)
	}
	return val, err
}

// NewContext issues a fresh communication context id. It exists for
// runtime-internal derived-communicator construction (the composer's
// tier communicators); the ids must be allocated inside a SetupOnce
// build so all members adopt the same values.
func (w *World) NewContext() int { return w.newContext() }

// NewGroupComm materializes this member's handle on a derived
// communicator whose shape was computed deterministically by every
// member (through SetupOnce): ctx from NewContext, ranks the shared
// read-only comm-rank -> global-rank table, rank this member's position
// in it. The new handle inherits the parent's collective tuning, and
// this rank's receive-side match queue for the context is preallocated.
func (c *Comm) NewGroupComm(ctx int, ranks []int, rank int) *Comm {
	return c.InitGroupComm(new(Comm), ctx, ranks, rank)
}

// InitGroupComm is NewGroupComm into caller-provided storage: bulk
// constructors (the composer materializes one to a few handles per rank
// per call) cut their handles from one arena instead of allocating each.
// dst must be written by exactly one rank.
func (c *Comm) InitGroupComm(dst *Comm, ctx int, ranks []int, rank int) *Comm {
	c.p.world.match.reserve(ctx, c.p.rank)
	c.p.world.registerComm(ctx, ranks)
	*dst = Comm{p: c.p, ctx: ctx, ranks: ranks, rank: rank, collCfg: c.collCfg}
	return dst
}

// levelShape is the world-independent part of a SplitLevel partition:
// the per-group member tables and lookup vectors, everything except the
// per-world context ids. Shapes are immutable and shared — across the
// ranks of one world and across worlds of the same shape.
type levelShape struct {
	topo    *sim.Topology // first publisher's topology (structural verify)
	members []int         // parent rank-table snapshot (exact key verify)
	level   int
	groups  [][]int // group -> member global ranks, parent-comm-rank order
	byComm  []int32 // parent comm rank -> group index
	rankIn  []int32 // parent comm rank -> rank within its group
}

// matches reports whether a cached shape is exactly the requested one.
// Fingerprints only pick the bucket; membership is verified in full, so
// a hash collision can never hand out a wrong geometry.
func (s *levelShape) matches(topo *sim.Topology, members []int, level int) bool {
	if s.level != level || len(s.members) != len(members) || !s.topo.EqualStructure(topo) {
		return false
	}
	for i, m := range members {
		if s.members[i] != m {
			return false
		}
	}
	return true
}

// levelShapeCache is the cross-world shape store, hashed by (topology,
// membership, level) fingerprint with full verification on hit
// (sim.ShapeCache: bounded, drop-on-overflow).
var levelShapeCache = sim.NewShapeCache[*levelShape](256)

// levelShapeFor returns the cached shape for (topo, members, level),
// building and inserting it on miss. Called once per (world, parent
// context, level) — the per-call O(members) verification never lands on
// the per-rank path.
func levelShapeFor(topo *sim.Topology, members []int, level int) *levelShape {
	h := topo.Fingerprint() ^ sim.HashInts(sim.HashSeed, members) ^ (uint64(level)+1)*0x9e3779b97f4a7c15
	s, _ := levelShapeCache.GetOrBuild(h,
		func(s *levelShape) bool { return s.matches(topo, members, level) },
		func() (*levelShape, error) { return buildLevelShape(topo, members, level), nil })
	return s
}

// buildLevelShape derives the partition of members by their level-l
// topology group: groups in ascending group-id order (the order the
// generic Split's color sort produced), members within a group in
// parent-comm-rank order (the key=rank convention).
func buildLevelShape(topo *sim.Topology, members []int, level int) *levelShape {
	n := len(members)
	s := &levelShape{
		topo:    topo,
		members: append([]int(nil), members...),
		level:   level,
		byComm:  make([]int32, n),
		rankIn:  make([]int32, n),
	}
	// Dense remap of the (sorted) distinct group ids. Group ids of
	// consecutive members are non-decreasing under SMP placement, but
	// arbitrary parent memberships are allowed, so count per id first.
	counts := make(map[int]int, 16)
	for _, g := range members {
		counts[topo.GroupOf(level, g)]++
	}
	ids := make([]int, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idx := make(map[int]int32, len(ids))
	s.groups = make([][]int, len(ids))
	for gi, id := range ids {
		idx[id] = int32(gi)
		s.groups[gi] = make([]int, 0, counts[id])
	}
	for r, g := range members {
		gi := idx[topo.GroupOf(level, g)]
		s.byComm[r] = gi
		s.rankIn[r] = int32(len(s.groups[gi]))
		s.groups[gi] = append(s.groups[gi], g)
	}
	return s
}

// levelPlan is the per-world completion of a cached shape: the shared
// shape plus the context ids this world assigned to its groups.
type levelPlan struct {
	shape *levelShape
	ctxs  []int
}

// splitLevelDerived is the exchange-free SplitLevel: the shape comes
// from the cross-world cache, the context ids are assigned by whichever
// member builds the per-call plan first, and every other member only
// performs O(1) lookups. Each collective call yields a fresh plan
// (fresh contexts), exactly like the exchange-based Split did.
func (c *Comm) splitLevelDerived(l int) (*Comm, error) {
	v, err := SetupOnce(c, func() (any, error) {
		shape := levelShapeFor(c.p.world.topo, c.ranks, l)
		ctxs := make([]int, len(shape.groups))
		for g := range ctxs {
			ctxs[g] = c.p.world.newContext()
		}
		return &levelPlan{shape: shape, ctxs: ctxs}, nil
	})
	if err != nil {
		return nil, err
	}
	plan := v.(*levelPlan)
	gi := plan.shape.byComm[c.rank]
	if int(plan.shape.rankIn[c.rank]) >= len(plan.shape.groups[gi]) {
		return nil, fmt.Errorf("mpi: rank %d missing from its own level-%d group", c.p.rank, l)
	}
	return c.NewGroupComm(plan.ctxs[gi], plan.shape.groups[gi], int(plan.shape.rankIn[c.rank])), nil
}
