package mpi

import (
	"testing"

	"repro/internal/sim"
)

// Coordinator hygiene: completed exchange sessions must be deleted and
// their records recycled (the seed's maps grew without bound across
// communicator creations), and the clock-fusion engines must be
// allocation-lean at steady state.

func TestExchangeSessionsDeletedAfterRun(t *testing.T) {
	w := newTestWorld(t, 2, 4)
	defer w.Close()
	err := w.Run(func(p *Proc) error {
		// Exchange-based construction: generic Split and a window.
		sub, err := p.CommWorld().Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		if _, err := sub.Dup(); err != nil {
			return err
		}
		node, err := p.CommWorld().SplitTypeShared()
		if err != nil {
			return err
		}
		_, err = WinAllocateShared(node, 8)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.coord.sessionCount(); n != 0 {
		t.Errorf("%d exchange sessions left after Run; completed sessions must be deleted", n)
	}
}

func TestSetupExchangeAllocationLean(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	// A single-member communicator completes its session at contribute
	// time, exercising the create/complete/release/pool cycle without
	// needing a peer goroutine.
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := w.Proc(0).CommWorld()
	for i := 0; i < 32; i++ {
		c.Setup(i)
	}
	avg := testing.AllocsPerRun(200, func() {
		c.Setup(7)
	})
	// The returned contribution vector escapes (one allocation); the
	// session record itself must come from the pool.
	if avg >= 3 {
		t.Errorf("Setup allocates %.2f objects/op, want <= 2 (pooled session records)", avg)
	}
}

func TestFuseClocksSteadyStateAllocationLean(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	w := newTestWorld(t, 1, 4)
	defer w.Close()
	body := func(p *Proc) error { return p.CommWorld().Barrier() } // shm barrier -> FuseClocks
	for i := 0; i < 16; i++ {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	})
	// Per Run: one pooled fusion round plus its lazily-created done
	// channel; everything else must be recycled.
	if avg >= 8 {
		t.Errorf("shm-barrier Run allocates %.2f objects/op, want a handful (pooled fusion rounds)", avg)
	}
}

func TestClockTreeLargeCommFusion(t *testing.T) {
	// A single node wider than clockTreeMin routes FuseClocks through
	// the tree engine; the fused max must still be exact.
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(1, clockTreeMin+3))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		got := c.FuseClocks(sim.Time(100 + p.Rank()))
		want := sim.Time(100 + p.Size() - 1)
		if got != want {
			t.Errorf("rank %d: fused max %v, want %v", p.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevelShapeCachedAcrossWorlds(t *testing.T) {
	topo := sim.MustUniform(3, 4)
	s1 := levelShapeFor(topo, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 0)
	s2 := levelShapeFor(topo, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 0)
	if s1 != s2 {
		t.Error("identical (topology, membership, level) did not hit the shape cache")
	}
	s3 := levelShapeFor(topo, []int{0, 1, 2, 3}, 0)
	if s3 == s1 {
		t.Error("different membership shares a cached shape")
	}
	if len(s1.groups) != 3 || len(s3.groups) != 1 {
		t.Errorf("group counts %d/%d, want 3/1", len(s1.groups), len(s3.groups))
	}
}

func TestSplitLevelRepeatedCallsAreIsolated(t *testing.T) {
	// Two SplitLevel calls on the same parent must produce distinct
	// communicators (fresh contexts) with identical membership, like
	// the exchange-based Split did.
	w := newTestWorld(t, 2, 3)
	defer w.Close()
	err := w.Run(func(p *Proc) error {
		world := p.CommWorld()
		a, err := world.SplitTypeShared()
		if err != nil {
			return err
		}
		b, err := world.SplitTypeShared()
		if err != nil {
			return err
		}
		if a == b {
			t.Error("repeated SplitLevel returned the same handle")
		}
		if a.Size() != b.Size() || a.Rank() != b.Rank() {
			t.Errorf("repeated SplitLevel disagrees: %d/%d vs %d/%d", a.Size(), a.Rank(), b.Size(), b.Rank())
		}
		// Traffic must not cross between the two: post on `a`, then
		// exchange on `b` with the same tag; the `a` message may only
		// be consumed by the `a` receive.
		if a.Size() == 3 {
			peer := (a.Rank() + 1) % 3
			prev := (a.Rank() + 2) % 3
			if err := a.Send(Sized(4), peer, 9); err != nil {
				return err
			}
			if err := b.Send(Sized(8), peer, 9); err != nil {
				return err
			}
			st, err := b.Recv(Sized(8), prev, 9)
			if err != nil {
				return err
			}
			if st.Bytes != 8 {
				t.Errorf("rank %d: context leak — b received the a message (%d bytes)", p.Rank(), st.Bytes)
			}
			if st, err = a.Recv(Sized(4), prev, 9); err != nil {
				return err
			}
			if st.Bytes != 4 {
				t.Errorf("rank %d: a received %d bytes, want 4", p.Rank(), st.Bytes)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
