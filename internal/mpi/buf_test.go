package mpi

import (
	"testing"
	"testing/quick"
)

func TestBufBasics(t *testing.T) {
	b := Bytes(make([]byte, 16))
	if !b.Real() || b.Len() != 16 {
		t.Fatalf("Bytes(16): real=%v len=%d", b.Real(), b.Len())
	}
	s := Sized(32)
	if s.Real() || s.Len() != 32 {
		t.Fatalf("Sized(32): real=%v len=%d", s.Real(), s.Len())
	}
	if Sized(-3).Len() != 0 {
		t.Error("negative size should clamp to 0")
	}
	if Alloc(8, true).Real() != true || Alloc(8, false).Real() != false {
		t.Error("Alloc real flag not honored")
	}
}

func TestBufSlice(t *testing.T) {
	b := Bytes([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	s := b.Slice(2, 4)
	if s.Len() != 4 || s.Raw()[0] != 2 {
		t.Fatalf("Slice(2,4) = len %d first %d", s.Len(), s.Raw()[0])
	}
	// Size-only slices keep only the length.
	m := Sized(100).Slice(10, 20)
	if m.Real() || m.Len() != 20 {
		t.Errorf("model slice: real=%v len=%d", m.Real(), m.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice did not panic")
		}
	}()
	b.Slice(6, 4)
}

func TestCopyData(t *testing.T) {
	src := Bytes([]byte{1, 2, 3, 4})
	dst := Bytes(make([]byte, 4))
	if n := CopyData(dst, src); n != 4 {
		t.Fatalf("copied %d, want 4", n)
	}
	if dst.Raw()[3] != 4 {
		t.Error("bytes not copied")
	}
	// Accounting must be identical when either side is size-only.
	if n := CopyData(Sized(4), src); n != 4 {
		t.Errorf("size-only dst accounted %d", n)
	}
	if n := CopyData(dst, Sized(2)); n != 2 {
		t.Errorf("short size-only src accounted %d", n)
	}
}

func TestBufFloat64RoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		b := FromFloat64s(v)
		got := b.Float64s()
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(v[i] != v[i] && got[i] != got[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBufInt64(t *testing.T) {
	b := Bytes(make([]byte, 24))
	b.PutInt64(0, -7)
	b.PutInt64(2, 1<<40)
	if b.Int64At(0) != -7 || b.Int64At(2) != 1<<40 || b.Int64At(1) != 0 {
		t.Error("int64 round trip failed")
	}
	// Size-only buffers ignore writes and read zero.
	m := Sized(24)
	m.PutInt64(0, 42)
	m.PutFloat64(1, 3.14)
	if m.Int64At(0) != 0 || m.Float64At(1) != 0 {
		t.Error("size-only buffer should read zeros")
	}
}

func TestBufCloneEager(t *testing.T) {
	orig := Bytes([]byte{9, 9})
	c, store := cloneEager(orig)
	if store == nil {
		t.Error("real clone should carry a pool token")
	}
	orig.Raw()[0] = 1
	if c.Raw()[0] != 9 {
		t.Error("clone shares storage with original")
	}
	m, store := cloneEager(Sized(8))
	if store != nil {
		t.Error("size-only clone needs no pooled storage")
	}
	if m.Real() || m.Len() != 8 {
		t.Error("size-only clone should stay size-only")
	}
}

func TestOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{OpSum, 2, 3, 5},
		{OpProd, 2, 3, 6},
		{OpMax, 2, 3, 3},
		{OpMin, 2, 3, 2},
	}
	for _, c := range cases {
		dst := FromFloat64s([]float64{c.a})
		src := FromFloat64s([]float64{c.b})
		c.op.Apply(dst, src, 1, Float64)
		if got := dst.Float64At(0); got != c.want {
			t.Errorf("%s(%v,%v) = %v, want %v", c.op.Name, c.a, c.b, got, c.want)
		}
	}
}

func TestOpsInt64AndByte(t *testing.T) {
	dst := Bytes(make([]byte, 8))
	src := Bytes(make([]byte, 8))
	dst.PutInt64(0, 10)
	src.PutInt64(0, -4)
	OpSum.Apply(dst, src, 1, Int64)
	if dst.Int64At(0) != 6 {
		t.Errorf("int64 sum = %d", dst.Int64At(0))
	}
	d := Bytes([]byte{1, 200})
	s := Bytes([]byte{3, 100})
	OpMax.Apply(d, s, 2, Byte)
	if d.Raw()[0] != 3 || d.Raw()[1] != 200 {
		t.Errorf("byte max = %v", d.Raw())
	}
}

func TestOpsSizeOnlyNoop(t *testing.T) {
	dst := Sized(8)
	OpSum.Apply(dst, FromFloat64s([]float64{1}), 1, Float64) // must not panic
	OpSum.Apply(FromFloat64s([]float64{1}), Sized(8), 1, Float64)
}

func TestDatatype(t *testing.T) {
	if Float64.Size() != 8 || Int64.Size() != 8 || Byte.Size() != 1 {
		t.Error("datatype sizes wrong")
	}
	if Float64.String() != "float64" || Byte.String() != "byte" {
		t.Error("datatype names wrong")
	}
	if Datatype(42).String() == "" || Datatype(42).Size() != 1 {
		t.Error("unknown datatype misbehaves")
	}
}

func TestOpSumProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		dst := FromFloat64s(a[:n])
		src := FromFloat64s(b[:n])
		OpSum.Apply(dst, src, n, Float64)
		for i := 0; i < n; i++ {
			want := a[i] + b[i]
			got := dst.Float64At(i)
			if got != want && !(want != want && got != got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
