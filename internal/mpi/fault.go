package mpi

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Deterministic noise and fault injection (the mpi half; the config and
// PRNG live in internal/sim/noise.go).
//
// Noise perturbs the clean LogGP timeline in three ways — per-rank
// compute jitter, straggler slowdown, per-hop-class link congestion —
// all drawn from the counter-based sim.NoiseU01 PRNG in each rank's own
// program order, so a seed is bit-identical across the goroutine and
// event engines and across warm-world reuse. Scheduled rank failures
// are the fourth knob, with ULFM-flavored (MPI Fault Tolerance WG)
// recovery semantics:
//
//   - a rank whose virtual clock reaches its failure deadline dies at
//     its next operation boundary: it stops executing (its Run slot
//     reports no error — the death is configured, not a bug) and the
//     world is marked Damaged;
//   - point-to-point operations touching the dead rank fail with
//     ErrRankFailed — receives already parked on it are woken with the
//     failClock sentinel, later posts are refused at the matcher;
//     messages the dead rank posted before dying remain deliverable
//     (in-flight delivery, as ULFM allows);
//   - non-fault-aware collectives (FuseClocks, exchange-based setup) on
//     a communicator with a dead member panic with ErrRankFailed, which
//     aborts the job — exactly MPI's default MPI_ERRORS_ARE_FATAL
//     behavior. Members already parked inside a fusion round or setup
//     session are woken by the death walk and fail the same way;
//   - fault-tolerant programs instead use Comm.Revoke (poison the
//     communicator so every member's pending and future p2p ops fail),
//     Comm.Agree (fault-aware agreement over the live members) and
//     Comm.Shrink (build a live-ranks communicator) to recover —
//     see examples/faulttol.
//
// Failure limitations (documented contract): a second rank death while
// survivors are inside Agree/Shrink aborts the job rather than
// cascading the recovery, and a receive from AnySource is not failed by
// a peer's death (only source-specific receives are).

// ErrRankFailed is returned (or delivered via panic and recovered as a
// rank error, for collectives) when an operation cannot complete
// because a peer rank died — the simulator's MPI_ERR_PROC_FAILED.
var ErrRankFailed = errors.New("mpi: peer rank failed")

// ErrRevoked is returned from point-to-point operations on a revoked
// communicator — the simulator's MPI_ERR_REVOKED.
var ErrRevoked = errors.New("mpi: communicator revoked")

// errRankKilled is the panic value a rank dies with when its scheduled
// failure deadline passes. It unwinds the rank body; recoveredRankError
// maps it to a nil error (the death is configuration, not a failure of
// the run).
var errRankKilled = errors.New("mpi: rank killed by scheduled failure")

// noiseState is the world's compiled noise configuration: the sim.Noise
// knobs turned into flat per-rank lookup tables so the hot paths pay
// one nil check when noise is off and plain indexed loads when it is
// on.
type noiseState struct {
	seed    int64
	jitter  float64
	congest [sim.HopGroup + 1]float64 // per hop class; 0 = unscaled
	// straggler holds the per-rank compute slowdown (0 for non-straggler
	// ranks); nil when no stragglers are configured.
	straggler []float64
	// failAt holds each rank's failure deadline (-1 = never dies); nil
	// when no failures are scheduled.
	failAt []sim.Time
}

// compileNoise flattens a validated sim.Noise into the lookup tables.
// A nil or all-zero config compiles to nil: a clean world pays one nil
// check per operation and nothing else.
func compileNoise(n *sim.Noise, size int) *noiseState {
	if !n.Enabled() {
		return nil
	}
	ns := &noiseState{seed: n.Seed, jitter: n.Jitter}
	for c, f := range n.Congestion {
		if f != 1 {
			ns.congest[c] = f
		}
	}
	if len(n.Stragglers) > 0 {
		ns.straggler = make([]float64, size)
		for _, r := range n.Stragglers {
			ns.straggler[r] = n.StragglerFactor
		}
	}
	if len(n.Failures) > 0 {
		ns.failAt = make([]sim.Time, size)
		for i := range ns.failAt {
			ns.failAt[i] = -1
		}
		for _, f := range n.Failures {
			// Earliest deadline wins for a rank listed twice.
			if ns.failAt[f.Rank] < 0 || f.At < ns.failAt[f.Rank] {
				ns.failAt[f.Rank] = f.At
			}
		}
	}
	return ns
}

// xferScale computes the multiplicative factor a transfer posted by p
// over the given hop class carries: the class's congestion factor times
// a jitter draw. The draw consumes one PRNG coordinate in p's program
// order, which is identical across engines. Returns 0 for an unscaled
// transfer (the common representation the matcher tests for).
func (ns *noiseState) xferScale(p *Proc, class sim.HopClass) float64 {
	s := ns.congest[class]
	if s == 0 {
		s = 1
	}
	if ns.jitter > 0 {
		u := sim.NoiseU01(ns.seed, p.rank, p.noiseOps, class)
		p.noiseOps++
		s *= 1 + ns.jitter*u
	}
	if s == 1 {
		return 0
	}
	return s
}

// perturb stretches a compute span by the rank's straggler factor and a
// jitter draw. Pure float64 multiplies (no fusable multiply-add), so
// the result is bit-identical across platforms and engines.
func (p *Proc) perturb(d sim.Time) sim.Time {
	ns := p.world.noise
	if ns == nil || d <= 0 {
		return d
	}
	if ns.straggler != nil {
		if f := ns.straggler[p.rank]; f > 1 {
			d = sim.Time(float64(d) * f)
		}
	}
	if ns.jitter > 0 {
		u := sim.NoiseU01(ns.seed, p.rank, p.noiseOps, sim.HopSelf)
		p.noiseOps++
		d += sim.Time(float64(d) * ns.jitter * u)
	}
	return d
}

// maybeFail is the failure boundary check: a rank whose clock reached
// its scheduled deadline dies here (killRank panics, so maybeFail does
// not return for a dying rank). It is called at every operation
// boundary — compute spans, p2p posts, collective entries — so the
// death point is a deterministic function of the virtual timeline.
func (p *Proc) maybeFail() {
	ns := p.world.noise
	if ns == nil || ns.failAt == nil {
		return
	}
	if at := ns.failAt[p.rank]; at >= 0 && p.clock >= at {
		p.world.killRank(p)
	}
}

// hasFailures reports whether this world has scheduled rank failures.
func (w *World) hasFailures() bool { return w.noise != nil && w.noise.failAt != nil }

// Damaged reports whether a scheduled rank failure has occurred. A
// damaged world keeps running (survivors may recover via Shrink), but
// it must not be reused for fresh measurements: dead-rank state is
// permanent, so warm pools discard damaged worlds instead of parking
// them.
func (w *World) Damaged() bool { return w.damaged.Load() }

// killRank executes rank p's scheduled death. It marks the world
// damaged, publishes the death flag, fails every matcher record that
// can no longer complete, wakes collective waiters stranded in fusion
// rounds or setup sessions on communicators containing p, and unwinds
// the rank body with errRankKilled. Runs on the dying rank's own
// goroutine — which in event mode is the token holder, making the
// scheduler wakes safe.
func (w *World) killRank(p *Proc) {
	w.damaged.Store(true)
	// The coordinator walk runs first: survivors can only learn of the
	// death through matcher sentinels or the dead flag (both published
	// by the matcher walk below), so no survivor can start a recovery
	// exchange while this walk might still mistake it for a stranded
	// session and fail it.
	w.coord.failRank(w, p.rank)
	w.match.killRank(w, p.rank)
	if w.tracer.Enabled() {
		w.tracer.Record(sim.Event{At: p.clock, Rank: p.rank, Kind: "fail", Note: "scheduled rank failure"})
	}
	panic(errRankKilled)
}

// registerComm records a communicator's member table for the death
// walk (which must know whether a context's communicator contains the
// dead rank). Only worlds with scheduled failures track this; for
// everyone else it is a single nil check.
func (w *World) registerComm(ctx int, ranks []int) {
	if w.hasFailures() {
		w.commRanks.Store(ctx, ranks)
	}
}

// ctxHasRank reports whether the communicator registered for ctx
// contains the given global rank. Unregistered contexts conservatively
// report true: wrongly failing a waiter is loud, stranding one is a
// hang.
func (w *World) ctxHasRank(ctx, rank int) bool {
	v, ok := w.commRanks.Load(ctx)
	if !ok {
		return true
	}
	for _, g := range v.([]int) {
		if g == rank {
			return true
		}
	}
	return false
}

// deadMember returns the first dead global rank in ranks, -1 if none.
func (m *matcher) deadMember(ranks []int) int {
	if m.dead == nil {
		return -1
	}
	for _, g := range ranks {
		if m.dead[g].Load() {
			return g
		}
	}
	return -1
}

// checkFailed is the collective-entry failure gate: the caller dies if
// its own deadline passed, and panics with ErrRankFailed if the
// communicator contains a dead member — non-fault-aware collectives on
// a broken communicator fail fast (and fatally) instead of deadlocking.
func (c *Comm) checkFailed() {
	w := c.p.world
	if !w.hasFailures() {
		return
	}
	c.p.maybeFail()
	if r := w.match.deadMember(c.ranks); r >= 0 {
		panic(fmt.Errorf("mpi: collective on communicator containing failed rank %d: %w", r, ErrRankFailed))
	}
}

// deadCheck is the fold of checkFailed the fusion cell re-evaluates
// under its own lock, closing the race between a member's entry check
// and a concurrent death.
func (c *Comm) deadCheck() bool {
	return c.p.world.match.deadMember(c.ranks) >= 0
}

// killRank fails the matcher records a rank's death strands. Shard
// `rank` holds exactly the sends addressed to the dead rank and the
// dead rank's own posted receives; receives expecting the dead rank as
// their source live wherever their poster's queue is. The death flag is
// published first, so a concurrent post either observes it under the
// shard lock (and fails with ErrRankFailed) or lands before this walk
// locks that shard (and is failed by it) — the same interleaving
// argument as the abort poison.
func (m *matcher) killRank(w *World, rank int) {
	if m.dead == nil {
		panic("mpi: killRank without failure configuration")
	}
	m.dead[rank].Store(true)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, cq := range s.queues {
			q := cq.q
			if i == rank {
				// Sends to the dead rank can never be received: wake
				// rendezvous senders with the failure sentinel, recycle
				// fire-and-forget eager payloads.
				for j := q.sends.head; j < len(q.sends.items); j++ {
					msg := q.sends.items[j]
					if msg.eager {
						if msg.store != nil {
							putEagerStore(msg.store)
						}
						putMessage(msg)
					} else {
						msg.done <- failClock
						if w.evLive {
							w.ev.wake(msg.src)
						}
					}
				}
				q.sends.items = q.sends.items[:0]
				q.sends.head = 0
				// The dead rank's own posted receives stay matchable:
				// whether a peer's send pairs with them then depends only
				// on virtual program order (the receive was posted before
				// the death), never on how the peer's post interleaves
				// with this walk in host time. The dead rank never reads
				// the results; the records are simply never recycled.
				continue
			}
			// Receives on other ranks expecting the dead rank as their
			// source fail; everything else is compacted back in place
			// (writes trail reads on the shared backing array).
			items := q.recvs.items[q.recvs.head:]
			q.recvs.items = q.recvs.items[:q.recvs.head]
			kept := q.recvs.items
			for _, rr := range items {
				if rr.srcGlobal == rank {
					rr.result <- recvResult{at: failClock}
					if w.evLive {
						w.ev.wake(rr.dst)
					}
				} else {
					kept = append(kept, rr)
				}
			}
			q.recvs.items = kept
		}
		s.mu.Unlock()
	}
}

// revokeCtx revokes a communicator context: the revoked mark is
// published first (posts check it under the shard lock), then every
// queued record of the context is failed with the revoked sentinel.
// Idempotent; safe from any rank (the event engine's caller is the
// token holder).
func (m *matcher) revokeCtx(w *World, ctx int) {
	if _, loaded := m.revoked.LoadOrStore(ctx, struct{}{}); loaded {
		return
	}
	m.nRevoked.Add(1)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, cq := range s.queues {
			if cq.ctx != ctx {
				continue
			}
			q := cq.q
			for j := q.recvs.head; j < len(q.recvs.items); j++ {
				rr := q.recvs.items[j]
				rr.result <- recvResult{at: revokedClock}
				if w.evLive {
					w.ev.wake(rr.dst)
				}
			}
			q.recvs.items = q.recvs.items[:0]
			q.recvs.head = 0
			for j := q.sends.head; j < len(q.sends.items); j++ {
				msg := q.sends.items[j]
				if msg.eager {
					if msg.store != nil {
						putEagerStore(msg.store)
					}
					putMessage(msg)
				} else {
					msg.done <- revokedClock
					if w.evLive {
						w.ev.wake(msg.src)
					}
				}
			}
			q.sends.items = q.sends.items[:0]
			q.sends.head = 0
		}
		s.mu.Unlock()
	}
}

// isRevoked reports whether a context has been revoked (one atomic
// load on the clean path).
func (m *matcher) isRevoked(ctx int) bool {
	if m.nRevoked.Load() == 0 {
		return false
	}
	_, ok := m.revoked.Load(ctx)
	return ok
}

// Revoke poisons this communicator on every member — the simulator's
// MPI_Comm_revoke. Pending and future point-to-point operations on the
// communicator fail with ErrRevoked on all members, which is how one
// rank's failure observation propagates to members that were not
// communicating with the dead rank. Revocation is permanent; recovery
// continues on the communicator returned by Shrink. Coordination-plane
// calls (Agree, Shrink) still work on a revoked communicator.
func (c *Comm) Revoke() {
	c.p.world.match.revokeCtx(c.p.world, c.ctx)
}

// Revoked reports whether this communicator has been revoked.
func (c *Comm) Revoked() bool { return c.p.world.match.isRevoked(c.ctx) }

// liveMembers returns the global ranks of this communicator that have
// not died, and the caller's index among them. Every member observes
// the same live set by the time it reaches a recovery call (the
// failure it is recovering from happened causally before), so the
// live-indexed coordination sessions line up across members.
func (c *Comm) liveMembers() (live []int, idx int) {
	m := c.p.world.match
	live = make([]int, 0, len(c.ranks))
	idx = -1
	for _, g := range c.ranks {
		if m.dead != nil && m.dead[g].Load() {
			continue
		}
		if g == c.p.rank {
			idx = len(live)
		}
		live = append(live, g)
	}
	return live, idx
}

// exchangeLive is the fault-aware flavor of exchange: an untimed
// allgather over the live members only, keyed by the same per-handle
// sequence counters (dead members never advance theirs, and every live
// member computes the same live set). The returned contribution vector
// is indexed by live index.
func (c *Comm) exchangeLive(val any) (vals []any, live []int, idx int) {
	c.p.maybeFail()
	live, idx = c.liveMembers()
	key := coordKey{ctx: c.ctx, seq: c.nextSeq()}
	return c.p.world.coord.exchange(key, c.p, idx, len(live), val), live, idx
}

// recoveryCost models the virtual time a fault-aware agreement over n
// members costs: two dissemination sweeps of latency-bound hops on the
// communicator's dominant hop class.
func (c *Comm) recoveryCost(n int) sim.Time {
	if n <= 1 {
		return 0
	}
	return sim.Time(2*sim.Log2Ceil(n)) * c.p.world.model.Alpha(c.HopClass())
}

// Agree performs fault-aware agreement over the communicator's live
// members — the simulator's MPI_Comm_agree: it returns the logical AND
// of every live member's flag, synchronizing their virtual clocks (max
// entry clock plus the modeled agreement cost). Dead members are
// excluded; a rank that dies during the agreement aborts the job (see
// the package limitations note).
func (c *Comm) Agree(flag bool) (bool, error) {
	type agreeVal struct {
		flag  bool
		clock sim.Time
	}
	vals, live, _ := c.exchangeLive(agreeVal{flag: flag, clock: c.p.clock})
	out := true
	var max sim.Time
	for _, v := range vals {
		av := v.(agreeVal)
		out = out && av.flag
		if av.clock > max {
			max = av.clock
		}
	}
	c.p.syncTo(max + c.recoveryCost(len(live)))
	return out, nil
}

// shrinkPlan is the shared shape of one Shrink call: the fresh context
// id and the live-rank table, computed by the lowest live member.
type shrinkPlan struct {
	ctx   int
	ranks []int
}

// Shrink builds a new communicator over this one's live members — the
// simulator's MPI_Comm_shrink, the recovery step fault-tolerant
// programs call after revoking a broken communicator. The new
// communicator orders members by their old comm rank, inherits the
// collective tuning, and is immediately usable for p2p and
// collectives. Clocks synchronize like Agree.
func (c *Comm) Shrink() (*Comm, error) {
	vals, live, idx := c.exchangeLive(c.p.clock)
	if idx < 0 {
		return nil, fmt.Errorf("mpi: Shrink on rank %d which is itself dead", c.p.rank)
	}
	var max sim.Time
	for _, v := range vals {
		if t := v.(sim.Time); t > max {
			max = t
		}
	}
	var plan *shrinkPlan
	if idx == 0 {
		plan = &shrinkPlan{ctx: c.p.world.newContext(), ranks: live}
	}
	published, _, _ := c.exchangeLive(plan)
	plan, _ = published[0].(*shrinkPlan)
	if plan == nil {
		return nil, errors.New("mpi: shrink plan missing from live leader")
	}
	w := c.p.world
	w.match.reserve(plan.ctx, c.p.rank)
	w.registerComm(plan.ctx, plan.ranks)
	c.p.syncTo(max + c.recoveryCost(len(live)))
	return &Comm{p: c.p, ctx: plan.ctx, ranks: plan.ranks, rank: idx, collCfg: c.collCfg}, nil
}

// DeadRanks returns the global ranks that have died so far (tests and
// recovery diagnostics). Only meaningful between operations.
func (w *World) DeadRanks() []int {
	m := w.match
	if m.dead == nil {
		return nil
	}
	var dead []int
	for r := range m.dead {
		if m.dead[r].Load() {
			dead = append(dead, r)
		}
	}
	return dead
}

// failErr maps a sentinel completion time delivered through a matcher
// record's channel to its error (nil for a legitimate completion
// time). Sentinels are the most negative Times; legitimate completions
// are never negative.
func failErr(at sim.Time) error {
	switch at {
	case abortClock:
		return ErrAborted
	case failClock:
		return ErrRankFailed
	case revokedClock:
		return ErrRevoked
	}
	return nil
}
