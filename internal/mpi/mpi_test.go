package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func newTestWorld(t *testing.T, nodes, ppn int) *World {
	t.Helper()
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(nodes, ppn), WithRealData())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(nil, sim.MustUniform(1, 2)); err == nil {
		t.Error("nil model accepted")
	}
	bad := sim.Laptop()
	bad.MemSaturation = 0
	if _, err := NewWorld(bad, sim.MustUniform(1, 2)); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := NewWorld(sim.Laptop(), nil); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestRunBasics(t *testing.T) {
	w := newTestWorld(t, 2, 3)
	seen := make([]bool, 6)
	err := w.Run(func(p *Proc) error {
		seen[p.Rank()] = true
		if p.Size() != 6 {
			t.Errorf("rank %d sees size %d", p.Rank(), p.Size())
		}
		if p.Node() != p.Rank()/3 || p.LocalRank() != p.Rank()%3 {
			t.Errorf("rank %d placement wrong: node=%d local=%d", p.Rank(), p.Node(), p.LocalRank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestRunCollectsErrors(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	boom := errors.New("boom")
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 2 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 {
		t.Errorf("RankError not exposed: %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			panic("deliberate")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestEagerSendRecv(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			buf := FromFloat64s([]float64{1, 2, 3})
			if err := c.Send(buf, 1, 7); err != nil {
				return err
			}
			// Eager: sender pays only its overhead, far less
			// than the network latency.
			if p.Clock() >= p.Model().NetAlpha {
				t.Errorf("eager send blocked: clock=%v", p.Clock())
			}
			return nil
		}
		buf := Bytes(make([]byte, 24))
		st, err := c.Recv(buf, 0, 7)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Bytes != 24 {
			t.Errorf("status = %+v", st)
		}
		if got := buf.Float64At(2); got != 3 {
			t.Errorf("payload corrupted: %v", got)
		}
		// Receiver must have paid at least the network transfer.
		if p.Clock() < p.Model().NetAlpha {
			t.Errorf("receiver clock %v below net alpha", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerBufferReuse(t *testing.T) {
	// After an eager Send returns, the sender may overwrite its buffer
	// without corrupting the in-flight message.
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			buf := FromFloat64s([]float64{42})
			if err := c.Send(buf, 1, 0); err != nil {
				return err
			}
			buf.PutFloat64(0, -1) // scribble
			return nil
		}
		buf := Bytes(make([]byte, 8))
		if _, err := c.Recv(buf, 0, 0); err != nil {
			return err
		}
		if got := buf.Float64At(0); got != 42 {
			t.Errorf("eager payload overwritten: got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousTiming(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	m := w.Model()
	big := m.EagerLimit + 1024
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.Send(Alloc(big, true), 1, 0); err != nil {
				return err
			}
			// Rendezvous: sender waits for the transfer.
			if p.Clock() < m.XferCost(sim.HopNet, big) {
				t.Errorf("rendezvous sender returned early: %v", p.Clock())
			}
			return nil
		}
		// Receiver arrives late; transfer cannot start before it.
		p.Elapse(5 * sim.Millisecond)
		if _, err := c.Recv(Alloc(big, true), 0, 0); err != nil {
			return err
		}
		want := 5*sim.Millisecond + m.XferCost(sim.HopNet, big)
		if p.Clock() < want {
			t.Errorf("receiver clock %v < %v", p.Clock(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const n = 8
	w := newTestWorld(t, 2, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		val := FromFloat64s([]float64{float64(p.Rank())})
		got := Bytes(make([]byte, 8))
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		if _, err := c.Sendrecv(val, right, 3, got, left, 3); err != nil {
			return err
		}
		if int(got.Float64At(0)) != left {
			t.Errorf("rank %d got %v, want %d", p.Rank(), got.Float64At(0), left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newTestWorld(t, 1, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			got := Bytes(make([]byte, 8))
			for i := 0; i < 2; i++ {
				st, err := c.Recv(got, AnySource, AnyTag)
				if err != nil {
					return err
				}
				if st.Source != 1 && st.Source != 2 {
					t.Errorf("unexpected source %d", st.Source)
				}
			}
			return nil
		default:
			return c.Send(FromFloat64s([]float64{1}), 0, 10+p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	w := newTestWorld(t, 2, 1)
	m := w.Model()
	big := m.EagerLimit * 4
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			req, err := c.Isend(Alloc(big, true), 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(Alloc(big, true), 0, 0)
		if err != nil {
			return err
		}
		// Compute while the transfer is in flight: completion
		// should overlap rather than add.
		overlap := 10 * m.XferCost(sim.HopNet, big)
		p.Elapse(overlap)
		if _, err := req.Wait(); err != nil {
			return err
		}
		if p.Clock() > overlap+m.XferCost(sim.HopNet, big) {
			t.Errorf("no overlap: clock %v", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitIdempotent(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(FromFloat64s([]float64{5}), 1, 0)
		}
		req, err := c.Irecv(Bytes(make([]byte, 8)), 0, 0)
		if err != nil {
			return err
		}
		st1, err := req.Wait()
		if err != nil {
			return err
		}
		st2, err := req.Wait()
		if err != nil || st1 != st2 {
			t.Errorf("second Wait differs: %+v vs %+v (%v)", st1, st2, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Waitall(nil); err != nil {
		t.Errorf("Waitall(nil) = %v", err)
	}
}

func TestRankValidation(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if _, err := c.Isend(Sized(8), 99, 0); err == nil {
			t.Error("out-of-range dst accepted")
		}
		if _, err := c.Irecv(Sized(8), -5, 0); err == nil {
			t.Error("negative src accepted")
		}
		if _, err := c.Irecv(Sized(8), AnySource, 0); err != nil {
			t.Errorf("AnySource rejected: %v", err)
		}
		// Drain the AnySource recv so ranks exit cleanly.
		if p.Rank() == 0 {
			return c.Send(Sized(8), 1, 0)
		}
		return c.Send(Sized(8), 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertaking(t *testing.T) {
	// Two same-tag messages from the same sender must arrive in
	// posting order (MPI's FIFO guarantee that lets collectives reuse
	// one tag).
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.Send(FromFloat64s([]float64{1}), 1, 0); err != nil {
				return err
			}
			return c.Send(FromFloat64s([]float64{2}), 1, 0)
		}
		got := Bytes(make([]byte, 8))
		if _, err := c.Recv(got, 0, 0); err != nil {
			return err
		}
		first := got.Float64At(0)
		if _, err := c.Recv(got, 0, 0); err != nil {
			return err
		}
		if first != 1 || got.Float64At(0) != 2 {
			t.Errorf("messages overtook: %v then %v", first, got.Float64At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newTestWorld(t, 2, 2)
	var after [4]sim.Time
	err := w.Run(func(p *Proc) error {
		// Stagger arrival times.
		p.Elapse(sim.Time(p.Rank()) * sim.Millisecond)
		if err := p.CommWorld().Barrier(); err != nil {
			return err
		}
		after[p.Rank()] = p.Clock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks must leave the barrier no earlier than the last
	// arrival (3 ms).
	for r, tm := range after {
		if tm < 3*sim.Millisecond {
			t.Errorf("rank %d left barrier at %v, before last arrival", r, tm)
		}
	}
}

func TestBarrierSingleRankFree(t *testing.T) {
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		if err := p.CommWorld().Barrier(); err != nil {
			return err
		}
		if p.Clock() != 0 {
			t.Errorf("1-rank barrier cost %v", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicClocks(t *testing.T) {
	// The same program must yield bit-identical virtual clocks on
	// every execution, regardless of host scheduling.
	run := func() []sim.Time {
		w := newTestWorld(t, 4, 4)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			for iter := 0; iter < 3; iter++ {
				sendBuf := Alloc(1<<12, true)
				recvBuf := Alloc(1<<12, true)
				right := (p.Rank() + 1) % p.Size()
				left := (p.Rank() - 1 + p.Size()) % p.Size()
				if _, err := c.Sendrecv(sendBuf, right, 1, recvBuf, left, 1); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]sim.Time, w.Size())
		for r := range out {
			out[r] = w.Proc(r).Clock()
		}
		return out
	}
	a, b := run(), run()
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d clock differs across runs: %v vs %v", r, a[r], b[r])
		}
	}
}

func TestResetAndMaxClock(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		p.Elapse(sim.Time(p.Rank()+1) * sim.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxClock() != 2*sim.Microsecond {
		t.Errorf("MaxClock = %v", w.MaxClock())
	}
	w.ResetClocks()
	if w.MaxClock() != 0 {
		t.Errorf("clocks not reset: %v", w.MaxClock())
	}
}

func TestComputeAndCopyCharges(t *testing.T) {
	w := newTestWorld(t, 1, 1)
	err := w.Run(func(p *Proc) error {
		m := p.Model()
		p.Compute(m.FlopsPerSecond) // one virtual second
		if p.Clock() != sim.Second {
			t.Errorf("compute charge = %v", p.Clock())
		}
		start := p.Clock()
		dst, src := Alloc(1024, true), Alloc(1024, true)
		src.PutFloat64(0, 9)
		p.CopyLocal(dst, src, 1)
		if dst.Float64At(0) != 9 {
			t.Error("CopyLocal did not move data")
		}
		if p.Clock()-start != m.CopyCost(1024, 1) {
			t.Errorf("copy charge = %v", p.Clock()-start)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministicPerRank(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	vals := make([]float64, 2)
	_ = w.Run(func(p *Proc) error {
		vals[p.Rank()] = p.RNG(1).Float64()
		return nil
	})
	if vals[0] == vals[1] {
		t.Error("ranks share an RNG stream")
	}
	again := make([]float64, 2)
	_ = w.Run(func(p *Proc) error {
		again[p.Rank()] = p.RNG(1).Float64()
		return nil
	})
	if vals[0] != again[0] {
		t.Error("RNG not reproducible")
	}
}
