package mpi

import (
	"math/rand"

	"repro/internal/sim"
)

// Proc is one MPI rank: a goroutine-local handle carrying the rank's
// virtual clock. A Proc's clock is only ever touched from its own
// goroutine; cross-rank time flows exclusively through message and
// coordination records, which keeps the simulation deterministic.
type Proc struct {
	world *World
	rank  int
	clock sim.Time

	// noiseOps counts this rank's noise draws, forming the opIndex
	// coordinate of the counter-based PRNG. It advances only at the
	// rank's own operation boundaries (program order), so the draw
	// sequence is identical on both engines and across warm reruns.
	noiseOps uint64

	commWorld *Comm // cached singleton handle (see CommWorld)
	cw        Comm  // its embedded storage: no per-rank allocation
}

// Rank returns the global rank (MPI_COMM_WORLD rank).
func (p *Proc) Rank() int { return p.rank }

// Size returns the global number of ranks.
func (p *Proc) Size() int { return p.world.Size() }

// Node returns the node index hosting this rank.
func (p *Proc) Node() int { return p.world.topo.NodeOf(p.rank) }

// LocalRank returns the on-node rank.
func (p *Proc) LocalRank() int { return p.world.topo.LocalRank(p.rank) }

// GroupAt returns the topology group hosting this rank at level l.
func (p *Proc) GroupAt(l int) int { return p.world.topo.GroupOf(l, p.rank) }

// LocalRankAt returns this rank's local index within its level-l group.
func (p *Proc) LocalRankAt(l int) int { return p.world.topo.LocalAt(l, p.rank) }

// World returns the owning world.
func (p *Proc) World() *World { return p.world }

// Model returns the machine cost model.
func (p *Proc) Model() *sim.CostModel { return p.world.model }

// Clock returns the rank's current virtual time.
func (p *Proc) Clock() sim.Time { return p.clock }

// advance moves the clock forward by d (never backward).
func (p *Proc) advance(d sim.Time) {
	if d > 0 {
		p.clock += d
	}
}

// syncTo pulls the clock up to at least t.
func (p *Proc) syncTo(t sim.Time) {
	if t > p.clock {
		p.clock = t
	}
}

// Compute charges virtual CPU time for the given flop count. The
// applications use it so that communication/computation ratios (and thus
// the paper's Fig. 11/12 ratios) are modeled consistently across scales.
func (p *Proc) Compute(flops float64) {
	p.maybeFail()
	d := p.world.model.ComputeCost(flops)
	p.advance(p.perturb(d))
	p.trace("compute", 0, "")
}

// Elapse advances the clock by an explicit duration (for modeled costs
// that are not flop-shaped).
func (p *Proc) Elapse(d sim.Time) {
	p.maybeFail()
	p.advance(p.perturb(d))
}

// AwaitTime blocks virtually until t: the clock jumps to t if it is
// still behind (no-op otherwise). Synchronization primitives built on
// shared flags use it to model "spin until the flag shows epoch k".
func (p *Proc) AwaitTime(t sim.Time) { p.syncTo(t) }

// CopyLocal copies src into dst as a local memory operation, charging
// copy cost under the stated on-node concurrency (how many ranks of this
// node are known by the calling algorithm to copy at the same moment).
func (p *Proc) CopyLocal(dst, src Buf, concurrent int) {
	n := CopyData(dst, src)
	p.advance(p.world.model.CopyCost(n, concurrent))
	p.trace("copy", n, "")
}

// TouchAll charges the cost of reading n bytes from the shared segment
// (children "accessing the updated buffer" in the paper's Figs. 4/6 read
// for free through load/store; reading is charged only where an
// experiment's compute phase consumes the data).
func (p *Proc) TouchAll(n, concurrent int) {
	p.advance(p.world.model.CopyCost(n, concurrent))
	p.trace("touch", n, "")
}

// RNG returns a deterministic per-rank random generator; seed selects
// independent streams (benchmark repetitions, apps).
func (p *Proc) RNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(p.rank) + 1))
}

// trace records an event if tracing is enabled.
func (p *Proc) trace(kind string, bytes int, note string) {
	if p.world.tracer.Enabled() {
		p.world.tracer.Record(sim.Event{At: p.clock, Rank: p.rank, Kind: kind, Bytes: bytes, Note: note})
	}
}
