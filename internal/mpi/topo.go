package mpi

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file implements process topologies: Cartesian grids
// (MPI_Cart_create and its coordinate queries) and distributed graphs
// (MPI_Dist_graph_create), attached to communicator handles. A
// topology-carrying communicator exposes a neighborhood — ordered in-
// and out-edge lists — which internal/coll's neighborhood collectives
// iterate. The optional Cartesian reorder maps grid bricks onto
// machine-topology groups (sim.TileExtents) so grid neighbors land on
// low hop classes.

// ProcNull is the null process rank (MPI_PROC_NULL): the value
// CartShift reports past a non-periodic boundary. A neighborhood slot
// whose peer is ProcNull takes part in no transfer, but its buffer
// block keeps its position.
const ProcNull = -1

// MaxCartDims bounds the dimensionality of a Cartesian topology: the
// largest grid whose direction-of-travel tags (2*dim+dir, at most
// 2*MaxCartDims-1) still fit inside one nonblocking-schedule tag
// stride (see mpi.Sched's schedTagStride), so neighborhood schedules
// can never alias tags across dimensions.
const MaxCartDims = schedTagStride / 2

// NeighborEdge is one edge of a communicator's neighborhood: the peer
// (a comm rank, or ProcNull for a missing Cartesian neighbor) and the
// schedule-relative matching tag both endpoints of the edge derive
// independently. On Cartesian topologies the tag encodes the
// direction of travel (2*dim for the negative direction, 2*dim+1 for
// the positive), which keeps blocks unambiguous even when both
// directions of a dimension reach the same peer (2-wide periodic
// dims) or the peer is the rank itself (1-wide periodic dims). On
// graph topologies the tag is 0 and FIFO ordering pairs multi-edges.
type NeighborEdge struct {
	Peer int
	Tag  int
}

// procTopo is the topology state attached to a communicator handle.
type procTopo struct {
	cart    *cartInfo      // non-nil for Cartesian topologies
	in, out []NeighborEdge // neighborhood, shared read-only
}

// cartInfo is the Cartesian grid shape. Coordinates are row-major over
// dims (the last dimension varies fastest), exactly MPI's convention.
type cartInfo struct {
	dims    []int
	periods []bool
}

// rowMajorRank linearizes coordinates over dims (last dim fastest).
func rowMajorRank(coords, dims []int) int {
	r := 0
	for d := range dims {
		r = r*dims[d] + coords[d]
	}
	return r
}

// rowMajorCoords fills out with the coordinates of rank over dims.
func rowMajorCoords(rank int, dims, out []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		out[d] = rank % dims[d]
		rank /= dims[d]
	}
}

// cartPlan is the shared outcome of one CartCreate call: the grid's
// context id and rank table plus every parent rank's grid position,
// computed once by whichever member arrives first (SetupOnce) — the
// partition is fully determined by world-global data, so no exchange
// runs.
type cartPlan struct {
	info   *cartInfo
	ctx    int
	ranks  []int // grid rank -> global rank
	gridOf []int // parent comm rank -> grid rank, -1 beyond the volume
}

// CartCreate builds a communicator with an attached N-dimensional
// Cartesian topology (MPI_Cart_create): dims are the per-dimension
// extents, periods marks the wraparound dimensions. Ranks beyond the
// grid volume receive nil (MPI_COMM_NULL); the call is collective over
// the parent communicator.
//
// With reorder false, comm ranks keep the parent's order: grid rank r
// is parent comm rank r, bit-for-bit the layout a hand-rolled
// decomposition over the parent would use. With reorder true, the
// runtime may permute ranks so that each machine-topology node holds a
// compact brick of the grid (sim.TileExtents over the node size),
// turning most halo neighbors into intra-node peers; when no exact
// brick decomposition exists the identity order is kept. The partition
// is a pure function of the machine topology, the parent rank table
// and the grid, so one member computes it and the rest perform O(1)
// lookups (SetupOnce) — no exchange, like SplitLevel.
func (c *Comm) CartCreate(dims []int, periods []bool, reorder bool) (*Comm, error) {
	if c == nil {
		return nil, fmt.Errorf("mpi: CartCreate on nil communicator")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("mpi: CartCreate needs at least one dimension")
	}
	if len(dims) > MaxCartDims {
		// Direction-of-travel tags (2*dim+dir) must fit the schedule
		// tag stride of the nonblocking neighborhood collectives;
		// beyond it, tags would alias across dimensions and match
		// blocks into the wrong slots. Fail loudly instead.
		return nil, fmt.Errorf("mpi: CartCreate supports at most %d dimensions, got %d", MaxCartDims, len(dims))
	}
	if len(periods) != len(dims) {
		return nil, fmt.Errorf("mpi: CartCreate got %d dims but %d periods", len(dims), len(periods))
	}
	vol := 1
	for d, n := range dims {
		if n <= 0 {
			return nil, fmt.Errorf("mpi: CartCreate dimension %d has extent %d", d, n)
		}
		vol *= n
	}
	if vol > len(c.ranks) {
		return nil, fmt.Errorf("mpi: CartCreate grid volume %d exceeds communicator size %d", vol, len(c.ranks))
	}

	v, err := SetupOnce(c, func() (any, error) {
		return buildCartPlan(c, dims, periods, vol, reorder), nil
	})
	if err != nil {
		return nil, err
	}
	plan := v.(*cartPlan)
	g := plan.gridOf[c.rank]
	if g < 0 {
		return nil, nil
	}
	nc := c.NewGroupComm(plan.ctx, plan.ranks, g)
	in, out := cartEdges(plan.info, g)
	nc.ptopo = &procTopo{cart: plan.info, in: in, out: out}
	return nc, nil
}

// buildCartPlan assembles the shared plan of one CartCreate call.
func buildCartPlan(c *Comm, dims []int, periods []bool, vol int, reorder bool) *cartPlan {
	plan := &cartPlan{
		info: &cartInfo{
			dims:    append([]int(nil), dims...),
			periods: append([]bool(nil), periods...),
		},
		ctx:    c.p.world.newContext(),
		ranks:  make([]int, vol),
		gridOf: make([]int, len(c.ranks)),
	}
	var perm []int // parent comm rank -> grid rank; nil = identity
	if reorder {
		perm = cartReorderPlan(c, dims, vol)
	}
	for r := range plan.gridOf {
		plan.gridOf[r] = -1
	}
	for r := 0; r < vol; r++ {
		g := r
		if perm != nil {
			g = perm[r]
		}
		plan.gridOf[r] = g
		plan.ranks[g] = c.ranks[r]
	}
	return plan
}

// cartReorderPlan computes the parent-rank -> grid-rank permutation of
// a reordering CartCreate, or nil when the identity order must be
// kept. The heuristic: the first vol parent ranks must fall into
// equal-length runs of node-sharing members (SMP placement gives
// exactly that), and the node size must brick-decompose the grid
// (sim.TileExtents). Each node then owns one brick, enumerated
// row-major over the brick grid, with the node's members filling the
// brick row-major — so every neighbor pair inside a brick is an
// intra-node hop.
func cartReorderPlan(c *Comm, dims []int, vol int) []int {
	topo := c.p.world.topo
	// Runs of node-sharing members over the first vol parent ranks.
	ppn := 0
	runStart, runNode := 0, topo.NodeOf(c.ranks[0])
	for r := 1; r <= vol; r++ {
		if r == vol || topo.NodeOf(c.ranks[r]) != runNode {
			runLen := r - runStart
			if ppn == 0 {
				ppn = runLen
			} else if runLen != ppn {
				return nil
			}
			if r < vol {
				runStart, runNode = r, topo.NodeOf(c.ranks[r])
			}
		}
	}
	if ppn <= 1 || vol%ppn != 0 {
		return nil
	}
	ext, ok := sim.TileExtents(ppn, dims)
	if !ok {
		return nil
	}
	tdims := make([]int, len(dims))
	for d := range dims {
		tdims[d] = dims[d] / ext[d]
	}
	plan := make([]int, vol)
	coords := make([]int, len(dims))
	tc := make([]int, len(dims))
	lc := make([]int, len(dims))
	for r := 0; r < vol; r++ {
		rowMajorCoords(r/ppn, tdims, tc)
		rowMajorCoords(r%ppn, ext, lc)
		for d := range coords {
			coords[d] = tc[d]*ext[d] + lc[d]
		}
		plan[r] = rowMajorRank(coords, dims)
	}
	return plan
}

// cartEdges builds the neighborhood of one grid rank: for each
// dimension, the negative-direction neighbor then the positive one —
// MPI's neighbor order for Cartesian neighborhood collectives.
// Missing neighbors (past a non-periodic boundary) appear as ProcNull
// edges so buffer slots keep their positions. Tags encode direction
// of travel: a block sent toward negative (tag 2d) arrives at its
// receiver's positive-side slot, and vice versa.
func cartEdges(info *cartInfo, rank int) (in, out []NeighborEdge) {
	nd := len(info.dims)
	coords := make([]int, nd)
	rowMajorCoords(rank, info.dims, coords)
	in = make([]NeighborEdge, 0, 2*nd)
	out = make([]NeighborEdge, 0, 2*nd)
	for d := 0; d < nd; d++ {
		neg := cartNeighbor(info, coords, d, -1)
		pos := cartNeighbor(info, coords, d, +1)
		// In-slot order per dim: the neighbor on the negative side
		// (whose block traveled positive, tag 2d+1), then the
		// positive side (traveled negative, tag 2d).
		in = append(in,
			NeighborEdge{Peer: neg, Tag: 2*d + 1},
			NeighborEdge{Peer: pos, Tag: 2 * d})
		out = append(out,
			NeighborEdge{Peer: neg, Tag: 2 * d},
			NeighborEdge{Peer: pos, Tag: 2*d + 1})
	}
	return in, out
}

// cartNeighbor resolves the neighbor of coords displaced by delta
// along dim: wrapped on periodic dims, ProcNull past a non-periodic
// boundary.
func cartNeighbor(info *cartInfo, coords []int, dim, delta int) int {
	n := info.dims[dim]
	nc := coords[dim] + delta
	if info.periods[dim] {
		nc = ((nc % n) + n) % n
	} else if nc < 0 || nc >= n {
		return ProcNull
	}
	old := coords[dim]
	coords[dim] = nc
	r := rowMajorRank(coords, info.dims)
	coords[dim] = old
	return r
}

// CartDims reports the Cartesian grid attached to the communicator
// (copies of the extents and periodicity flags), with ok false when
// the communicator carries no Cartesian topology.
func (c *Comm) CartDims() (dims []int, periods []bool, ok bool) {
	if c.ptopo == nil || c.ptopo.cart == nil {
		return nil, nil, false
	}
	info := c.ptopo.cart
	return append([]int(nil), info.dims...), append([]bool(nil), info.periods...), true
}

// CartCoords translates a comm rank to grid coordinates
// (MPI_Cart_coords).
func (c *Comm) CartCoords(rank int) ([]int, error) {
	if c.ptopo == nil || c.ptopo.cart == nil {
		return nil, fmt.Errorf("mpi: CartCoords on a communicator without Cartesian topology")
	}
	if err := c.validRank(rank, false); err != nil {
		return nil, err
	}
	info := c.ptopo.cart
	coords := make([]int, len(info.dims))
	rowMajorCoords(rank, info.dims, coords)
	return coords, nil
}

// CartRank translates grid coordinates to a comm rank (MPI_Cart_rank).
// Coordinates on periodic dimensions wrap; out-of-range coordinates on
// non-periodic dimensions are an error.
func (c *Comm) CartRank(coords []int) (int, error) {
	if c.ptopo == nil || c.ptopo.cart == nil {
		return 0, fmt.Errorf("mpi: CartRank on a communicator without Cartesian topology")
	}
	info := c.ptopo.cart
	if len(coords) != len(info.dims) {
		return 0, fmt.Errorf("mpi: CartRank got %d coordinates for a %d-dim grid", len(coords), len(info.dims))
	}
	wrapped := make([]int, len(coords))
	for d, x := range coords {
		n := info.dims[d]
		if info.periods[d] {
			x = ((x % n) + n) % n
		} else if x < 0 || x >= n {
			return 0, fmt.Errorf("mpi: CartRank coordinate %d out of range on non-periodic dim %d (extent %d)", x, d, n)
		}
		wrapped[d] = x
	}
	return rowMajorRank(wrapped, info.dims), nil
}

// CartShift reports the calling rank's neighbors displaced by ±disp
// along dim (MPI_Cart_shift): src is the rank disp steps in the
// negative direction (the one whose data arrives when everybody sends
// positive), dst the rank disp steps positive. Past a non-periodic
// boundary the respective value is ProcNull.
func (c *Comm) CartShift(dim, disp int) (src, dst int, err error) {
	if c.ptopo == nil || c.ptopo.cart == nil {
		return 0, 0, fmt.Errorf("mpi: CartShift on a communicator without Cartesian topology")
	}
	info := c.ptopo.cart
	if dim < 0 || dim >= len(info.dims) {
		return 0, 0, fmt.Errorf("mpi: CartShift dimension %d out of range on a %d-dim grid", dim, len(info.dims))
	}
	coords := make([]int, len(info.dims))
	rowMajorCoords(c.rank, info.dims, coords)
	return cartNeighbor(info, coords, dim, -disp), cartNeighbor(info, coords, dim, +disp), nil
}

// Neighborhood returns the communicator's neighborhood edge lists
// (read-only, shared): in-edges in receive-slot order and out-edges in
// send-slot order. ok is false on communicators without a process
// topology. Cartesian neighborhoods list 2*ndims slots (per dim:
// negative then positive side) and may contain ProcNull peers; graph
// neighborhoods list exactly the declared edges.
func (c *Comm) Neighborhood() (in, out []NeighborEdge, ok bool) {
	if c.ptopo == nil {
		return nil, nil, false
	}
	return c.ptopo.in, c.ptopo.out, true
}

// IsCart reports whether the communicator carries a Cartesian process
// topology (as opposed to none, or a distributed graph).
func (c *Comm) IsCart() bool { return c.ptopo != nil && c.ptopo.cart != nil }

// distGraphContrib is one member's edge contribution to
// DistGraphCreate.
type distGraphContrib struct {
	srcs, dsts []int
}

// distGraphPlan is the assembled adjacency of a DistGraphCreate call,
// computed by comm rank 0 and shared read-only.
type distGraphPlan struct {
	in, out [][]NeighborEdge
}

// DistGraphCreateAdjacent attaches a distributed-graph topology from
// adjacent edge lists (MPI_Dist_graph_create_adjacent): sources are
// the comm ranks this rank receives from, destinations the ranks it
// sends to, in neighborhood slot order. The edge sets must be
// mutually consistent across ranks — the k-th occurrence of rank s in
// my sources pairs with the k-th occurrence of me in s's destinations.
// reorder is accepted for symmetry with CartCreate but the identity
// order is always kept (as MPI permits). The call is collective and
// returns a new communicator.
func (c *Comm) DistGraphCreateAdjacent(sources, destinations []int, reorder bool) (*Comm, error) {
	if c == nil {
		return nil, fmt.Errorf("mpi: DistGraphCreateAdjacent on nil communicator")
	}
	for _, r := range sources {
		if err := c.validRank(r, false); err != nil {
			return nil, fmt.Errorf("mpi: DistGraphCreateAdjacent source: %w", err)
		}
	}
	for _, r := range destinations {
		if err := c.validRank(r, false); err != nil {
			return nil, fmt.Errorf("mpi: DistGraphCreateAdjacent destination: %w", err)
		}
	}
	nc, err := c.dupDerived()
	if err != nil {
		return nil, err
	}
	nc.ptopo = &procTopo{in: edgeList(sources), out: edgeList(destinations)}
	return nc, nil
}

// dupDerived is an exchange-free communicator duplicate: the rank
// table is inherited and only the fresh context id needs to be agreed,
// which SetupOnce shares without a rendezvous.
func (c *Comm) dupDerived() (*Comm, error) {
	v, err := SetupOnce(c, func() (any, error) { return c.p.world.newContext(), nil })
	if err != nil {
		return nil, err
	}
	return c.NewGroupComm(v.(int), c.ranks, c.rank), nil
}

// edgeList wraps plain peer ranks as tag-0 neighborhood edges.
func edgeList(peers []int) []NeighborEdge {
	edges := make([]NeighborEdge, len(peers))
	for i, p := range peers {
		edges[i] = NeighborEdge{Peer: p}
	}
	return edges
}

// DistGraphCreate attaches a distributed-graph topology from an
// arbitrary edge contribution (MPI_Dist_graph_create): this rank
// declares degrees[i] edges from sources[i] to the next entries of
// destinations — any rank may contribute any edge, and the union over
// all members forms the graph. Every rank's resulting neighbor lists
// are sorted by peer rank (a deterministic order MPI leaves
// implementation-defined), so multi-edges pair by ascending position.
// The call is collective and returns a new communicator.
func (c *Comm) DistGraphCreate(sources, degrees, destinations []int, reorder bool) (*Comm, error) {
	if c == nil {
		return nil, fmt.Errorf("mpi: DistGraphCreate on nil communicator")
	}
	if len(degrees) != len(sources) {
		return nil, fmt.Errorf("mpi: DistGraphCreate got %d sources but %d degrees", len(sources), len(degrees))
	}
	total := 0
	for i, deg := range degrees {
		if deg < 0 {
			return nil, fmt.Errorf("mpi: DistGraphCreate negative degree for source %d", sources[i])
		}
		total += deg
	}
	if total != len(destinations) {
		return nil, fmt.Errorf("mpi: DistGraphCreate degrees sum to %d but %d destinations given", total, len(destinations))
	}
	for _, r := range sources {
		if err := c.validRank(r, false); err != nil {
			return nil, fmt.Errorf("mpi: DistGraphCreate source: %w", err)
		}
	}
	for _, r := range destinations {
		if err := c.validRank(r, false); err != nil {
			return nil, fmt.Errorf("mpi: DistGraphCreate destination: %w", err)
		}
	}
	// Flatten this member's contribution into parallel edge arrays.
	contrib := distGraphContrib{}
	k := 0
	for i, src := range sources {
		for j := 0; j < degrees[i]; j++ {
			contrib.srcs = append(contrib.srcs, src)
			contrib.dsts = append(contrib.dsts, destinations[k])
			k++
		}
	}
	n := len(c.ranks)
	plan, err := SharePlan(c, contrib, func(vals []any) *distGraphPlan {
		p := &distGraphPlan{in: make([][]NeighborEdge, n), out: make([][]NeighborEdge, n)}
		for _, v := range vals {
			e := v.(distGraphContrib)
			for i := range e.srcs {
				src, dst := e.srcs[i], e.dsts[i]
				p.out[src] = append(p.out[src], NeighborEdge{Peer: dst})
				p.in[dst] = append(p.in[dst], NeighborEdge{Peer: src})
			}
		}
		for r := 0; r < n; r++ {
			sortEdges(p.in[r])
			sortEdges(p.out[r])
		}
		return p
	})
	if err != nil {
		return nil, err
	}
	nc, err := c.dupDerived()
	if err != nil {
		return nil, err
	}
	nc.ptopo = &procTopo{in: plan.in[nc.rank], out: plan.out[nc.rank]}
	return nc, nil
}

// sortEdges orders a neighbor list ascending by peer rank — the pinned
// deterministic adjacency order of DistGraphCreate.
func sortEdges(edges []NeighborEdge) {
	sort.Slice(edges, func(i, j int) bool { return edges[i].Peer < edges[j].Peer })
}
