package mpi

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// noisyWorld builds a world with the given noise config on a 2x4 grid.
func noisyWorld(t *testing.T, n *sim.Noise, opts ...Option) *World {
	t.Helper()
	opts = append(opts, WithNoise(n), WithRealData())
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(2, 4), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// pingRing runs one compute+ring-exchange step per rank and returns the
// makespan.
func pingRing(t *testing.T, w *World) sim.Time {
	t.Helper()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		p.Compute(1e6)
		buf := w.NewBuf(4096)
		next, prev := (p.Rank()+1)%p.Size(), (p.Rank()+p.Size()-1)%p.Size()
		rq, err := c.Irecv(buf, prev, 7)
		if err != nil {
			return err
		}
		if err := c.Send(buf, next, 7); err != nil {
			return err
		}
		_, err = rq.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.MaxClock()
}

func TestNoiseDeterministicAcrossEnginesAndReruns(t *testing.T) {
	n := &sim.Noise{Seed: 11, Jitter: 0.3, Stragglers: []int{5}, StragglerFactor: 4,
		Congestion: map[sim.HopClass]float64{sim.HopNet: 2}}
	var clocks [2]sim.Time
	for i, eng := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		w := noisyWorld(t, n, WithEngine(eng))
		first := pingRing(t, w)
		// Warm rerun: ResetClocks must give a bit-identical timeline.
		w.ResetClocks()
		if again := pingRing(t, w); again != first {
			t.Fatalf("engine %v: warm rerun %v != cold run %v", eng, again, first)
		}
		clocks[i] = first
	}
	if clocks[0] != clocks[1] {
		t.Fatalf("engines disagree under noise: goroutine %v, event %v", clocks[0], clocks[1])
	}

	// A different seed must actually change the timeline.
	other := &sim.Noise{Seed: 12, Jitter: 0.3, Stragglers: []int{5}, StragglerFactor: 4,
		Congestion: map[sim.HopClass]float64{sim.HopNet: 2}}
	if c := pingRing(t, noisyWorld(t, other)); c == clocks[0] {
		t.Fatalf("seed change did not change the makespan (%v)", c)
	}
}

func TestNoiseSlowsThingsDown(t *testing.T) {
	clean := pingRing(t, noisyWorld(t, nil))
	congested := pingRing(t, noisyWorld(t,
		&sim.Noise{Congestion: map[sim.HopClass]float64{sim.HopNet: 8, sim.HopShm: 8}}))
	if congested <= clean {
		t.Errorf("congestion did not slow the ring: clean %v, congested %v", clean, congested)
	}
	straggled := pingRing(t, noisyWorld(t,
		&sim.Noise{Stragglers: []int{0}, StragglerFactor: 64}))
	if straggled <= clean {
		t.Errorf("straggler did not slow the ring: clean %v, straggled %v", clean, straggled)
	}
	jittered := pingRing(t, noisyWorld(t, &sim.Noise{Seed: 3, Jitter: 1.5}))
	if jittered <= clean {
		t.Errorf("jitter did not slow the ring: clean %v, jittered %v", clean, jittered)
	}
}

func TestNoiseRejectsFoldedAsymmetry(t *testing.T) {
	_, err := NewWorld(sim.Laptop(), sim.MustUniform(2, 4),
		WithFold(4), WithNoise(&sim.Noise{Seed: 1, Jitter: 0.1}))
	if !errors.Is(err, ErrFoldUnsafe) {
		t.Fatalf("jitter+fold accepted: %v", err)
	}
	// Congestion preserves rank symmetry and must stay foldable.
	w, err := NewWorld(sim.Laptop(), sim.MustUniform(2, 4),
		WithFold(4), WithNoise(&sim.Noise{Congestion: map[sim.HopClass]float64{sim.HopNet: 2}}))
	if err != nil {
		t.Fatalf("congestion-only noise rejected under folding: %v", err)
	}
	w.Close()
}

func TestRankFailureP2P(t *testing.T) {
	for _, eng := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		w := noisyWorld(t, &sim.Noise{Failures: []sim.Failure{{Rank: 1, At: 0}}},
			WithEngine(eng))
		errs := make([]error, w.Size())
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			switch p.Rank() {
			case 0:
				// Blocking receive from the rank that dies at its first
				// operation boundary.
				_, err := c.Recv(w.NewBuf(8), 1, 1)
				errs[0] = err
				return err
			case 1:
				p.Compute(1e6) // dies here (deadline 0)
				t.Error("rank 1 survived its scheduled failure")
				return nil
			default:
				return nil
			}
		})
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("engine %v: Run error = %v, want ErrRankFailed", eng, err)
		}
		if !errors.Is(errs[0], ErrRankFailed) {
			t.Fatalf("engine %v: rank 0 recv error = %v", eng, errs[0])
		}
		if !w.Damaged() {
			t.Errorf("engine %v: world not marked damaged", eng)
		}
		if dead := w.DeadRanks(); len(dead) != 1 || dead[0] != 1 {
			t.Errorf("engine %v: DeadRanks = %v", eng, dead)
		}
	}
}

func TestRankFailurePreDeathSendStillDelivered(t *testing.T) {
	// Rank 1 sends before its deadline passes; the in-flight message
	// must still reach rank 0 (ULFM allows completing such transfers).
	w := noisyWorld(t, &sim.Noise{Failures: []sim.Failure{{Rank: 1, At: sim.Millisecond}}})
	var got byte
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			buf := w.NewBuf(1)
			if _, err := c.Recv(buf, 1, 1); err != nil {
				return err
			}
			got = buf.Raw()[0]
			return nil
		case 1:
			buf := w.NewBuf(1)
			buf.Raw()[0] = 42
			if err := c.Send(buf, 0, 1); err != nil {
				return err
			}
			p.Elapse(2 * sim.Millisecond)
			p.Compute(1) // past the deadline: dies
			return nil
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 42 {
		t.Fatalf("pre-death payload lost: got %d", got)
	}
}

func TestRankFailureSendToDead(t *testing.T) {
	w := noisyWorld(t, &sim.Noise{Failures: []sim.Failure{{Rank: 2, At: 0}}})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			// Give the failure time to happen in virtual terms, then wait
			// on a flag from rank 3 so the send below is posted after rank
			// 2's death in host time too.
			if err := c.RecvFlag(3, 9); err != nil {
				return err
			}
			return c.Send(w.NewBuf(1<<20), 2, 1)
		case 2:
			p.Compute(1) // dies
			return nil
		case 3:
			p.Elapse(sim.Millisecond)
			return c.SendFlag(0, 9)
		default:
			return nil
		}
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("Run error = %v, want ErrRankFailed", err)
	}
}

func TestRankFailureCollectiveAborts(t *testing.T) {
	for _, eng := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		w := noisyWorld(t, &sim.Noise{Failures: []sim.Failure{{Rank: 3, At: 0}}},
			WithEngine(eng))
		err := w.Run(func(p *Proc) error {
			if p.Rank() == 3 {
				p.Compute(1) // dies
				return nil
			}
			p.CommWorld().FuseClocks(p.Clock())
			return nil
		})
		if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrAborted) {
			t.Fatalf("engine %v: collective with dead member: %v", eng, err)
		}
	}
}

func TestRevokeFailsPendingAndFutureOps(t *testing.T) {
	w := noisyWorld(t, &sim.Noise{Failures: []sim.Failure{{Rank: 7, At: 0}}})
	errs := make([]error, w.Size())
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			// Parked receive from a live rank that never sends; rank 1
			// revokes and this must wake with ErrRevoked.
			_, err := c.Recv(w.NewBuf(8), 5, 1)
			errs[0] = err
		case 1:
			p.Elapse(sim.Millisecond)
			c.Revoke()
			if !c.Revoked() {
				t.Error("Revoked() false after Revoke")
			}
			// Future ops on the revoked communicator fail too.
			errs[1] = c.Send(w.NewBuf(8), 5, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(errs[0], ErrRevoked) {
		t.Errorf("parked recv after revoke: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrRevoked) {
		t.Errorf("post-revoke send: %v", errs[1])
	}
}

func TestShrinkAndAgreeRecovery(t *testing.T) {
	for _, eng := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		w := noisyWorld(t, &sim.Noise{Failures: []sim.Failure{{Rank: 2, At: 0}}},
			WithEngine(eng))
		sizes := make([]int, w.Size())
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			if p.Rank() == 2 {
				p.Compute(1) // dies
				return nil
			}
			// Observe the failure first — real fault-tolerant code only
			// recovers after an operation failed. Ranks that post after a
			// faster peer already revoked see ErrRevoked instead of
			// ErrRankFailed; both mean "this communicator is broken".
			_, err := c.Recv(w.NewBuf(8), 2, 1)
			if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrRevoked) {
				t.Errorf("rank %d: recv from dead rank: %v", p.Rank(), err)
			}
			c.Revoke()
			ok, err := c.Agree(true)
			if err != nil {
				return err
			}
			if !ok {
				t.Errorf("rank %d: Agree(true) over live members = false", p.Rank())
			}
			nc, err := c.Shrink()
			if err != nil {
				return err
			}
			sizes[p.Rank()] = nc.Size()
			// The shrunken communicator must be usable: ring exchange.
			buf := w.NewBuf(64)
			next := (nc.Rank() + 1) % nc.Size()
			prev := (nc.Rank() + nc.Size() - 1) % nc.Size()
			rq, err := nc.Irecv(buf, prev, 3)
			if err != nil {
				return err
			}
			if err := nc.Send(buf, next, 3); err != nil {
				return err
			}
			_, err = rq.Wait()
			return err
		})
		if err != nil {
			t.Fatalf("engine %v: Run: %v", eng, err)
		}
		for r, s := range sizes {
			if r == 2 {
				continue
			}
			if s != w.Size()-1 {
				t.Errorf("engine %v: rank %d shrunken size %d, want %d", eng, r, s, w.Size()-1)
			}
		}
	}
}
