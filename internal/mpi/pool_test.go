package mpi

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Pool lifecycle coverage: Run must reuse the parked workers instead of
// spawning per call, Abort must behave in both the parked and the
// active phase, and Close must be idempotent.

// goroutinesSettled samples the goroutine count until it stops moving
// (worker hand-offs finish asynchronously).
func goroutinesSettled() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func TestRunReusesPoolGoroutines(t *testing.T) {
	w := newTestWorld(t, 1, 8)
	defer w.Close()
	body := func(p *Proc) error { return p.CommWorld().Barrier() }
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	after1 := goroutinesSettled()
	for i := 0; i < 50; i++ {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	}
	after51 := goroutinesSettled()
	if after51 > after1+2 {
		t.Errorf("goroutines grew across repeated Runs: %d after first, %d after 51 — workers not reused", after1, after51)
	}
}

func TestRunSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	w := newTestWorld(t, 1, 4)
	defer w.Close()
	body := func(p *Proc) error { return nil }
	for i := 0; i < 16; i++ {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	})
	// The dispatch path itself is allocation-free; a tiny budget covers
	// runtime scheduling internals (sudog cache refills and the like).
	if avg >= 4 {
		t.Errorf("steady-state Run allocates %.2f objects/op, want ~0", avg)
	}
}

func TestAbortWhileParked(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	defer w.Close()
	if err := w.Run(func(p *Proc) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Pool is parked between Runs; Abort must poison the world without
	// disturbing the parked workers.
	w.Abort()
	if err := w.Run(func(p *Proc) error { return nil }); !errors.Is(err, ErrAborted) {
		t.Errorf("Run on aborted world returned %v, want ErrAborted", err)
	}
}

func TestAbortWhileActiveThenRunRefuses(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	defer w.Close()
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			return errors.New("deserter")
		}
		return p.CommWorld().Barrier()
	})
	if err == nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("active-phase abort not propagated: %v", err)
	}
	if err := w.Run(func(p *Proc) error { return nil }); !errors.Is(err, ErrAborted) {
		t.Errorf("Run after active-phase abort returned %v, want ErrAborted", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	// Close on a never-run world.
	w := newTestWorld(t, 1, 2)
	w.Close()
	w.Close()
	if err := w.Run(func(p *Proc) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close returned %v, want ErrClosed", err)
	}

	// Close (twice) on a world that ran.
	w2 := newTestWorld(t, 2, 2)
	if err := w2.Run(func(p *Proc) error { return p.CommWorld().Barrier() }); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w2.Close()
	if err := w2.Run(func(p *Proc) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close returned %v, want ErrClosed", err)
	}
}

func TestWorkersReusedAcrossWorlds(t *testing.T) {
	// A closed world's workers return to the cross-world reserve; the
	// next same-sized world must not spawn a full complement again.
	w := newTestWorld(t, 1, 8)
	if err := w.Run(func(p *Proc) error { return nil }); err != nil {
		t.Fatal(err)
	}
	w.Close()
	base := goroutinesSettled()
	w2 := newTestWorld(t, 1, 8)
	defer w2.Close()
	if err := w2.Run(func(p *Proc) error { return nil }); err != nil {
		t.Fatal(err)
	}
	after := goroutinesSettled()
	if after > base+2 {
		t.Errorf("second world grew goroutines %d -> %d; reserve workers not reused", base, after)
	}
}

func TestMaxClockDuringRunPanics(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	defer w.Close()
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			w.MaxClock() // contract violation: clocks are owned by rank goroutines
		}
		return nil
	})
	if err == nil {
		t.Fatal("MaxClock during Run did not fail")
	}
	if want := "MaxClock during Run"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

// TestRepeatedRunMaxClockRace drives the documented contract — clock
// reads strictly between Runs — under the race detector: the CI race
// job fails here if MaxClock/ResetClocks ever race with the pool.
func TestRepeatedRunMaxClockRace(t *testing.T) {
	w := newTestWorld(t, 2, 3)
	defer w.Close()
	for i := 0; i < 25; i++ {
		if err := w.Run(func(p *Proc) error {
			p.Elapse(1)
			return p.CommWorld().Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		if got := w.MaxClock(); got <= 0 {
			t.Fatalf("iteration %d: makespan %v", i, got)
		}
		w.ResetClocks()
		if w.MaxClock() != 0 {
			t.Fatal("clocks not reset")
		}
	}
}
