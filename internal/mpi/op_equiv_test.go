package mpi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// ops under test: every standard operator must produce byte-identical
// results through the specialized kernels (Apply) and the per-element
// reference path (ApplyGeneric).
var stdOps = []Op{OpSum, OpProd, OpMax, OpMin}

// trickyFloats mixes ordinary values with the cases where a careless
// kernel (e.g. math.Max) would diverge from the reference closures.
func trickyFloats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1,
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = specials[rng.Intn(len(specials))]
		} else {
			out[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
	}
	return out
}

func fillBytes(rng *rand.Rand, b Buf, dt Datatype, count int) {
	switch dt {
	case Float64:
		for i, v := range trickyFloats(rng, count) {
			b.PutFloat64(i, v)
		}
	case Int64:
		for i := 0; i < count; i++ {
			b.PutInt64(i, rng.Int63()-rng.Int63())
		}
	case Byte:
		rng.Read(b.Raw()[:count])
	}
}

// TestOpKernelsMatchGeneric proves the specialized kernels byte-identical
// to the reference implementation, on aligned buffers (which take the
// zero-copy view path).
func TestOpKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, op := range stdOps {
		for _, dt := range []Datatype{Float64, Int64, Byte} {
			for _, count := range []int{0, 1, 3, 17, 256} {
				n := count * dt.Size()
				dst := Bytes(make([]byte, n))
				src := Bytes(make([]byte, n))
				fillBytes(rng, dst, dt, count)
				fillBytes(rng, src, dt, count)

				dstRef := Bytes(append([]byte(nil), dst.Raw()...))
				op.Apply(dst, src, count, dt)
				op.ApplyGeneric(dstRef, src, count, dt)
				if !bytes.Equal(dst.Raw(), dstRef.Raw()) {
					t.Errorf("%s/%s count=%d: specialized kernel diverges from generic path",
						op.Name, dt, count)
				}
			}
		}
	}
}

// TestOpKernelsMatchGenericMisaligned forces the view-less fallback by
// reducing into 8-byte-element buffers at a 4-byte offset, and checks it
// still matches a straight generic application.
func TestOpKernelsMatchGenericMisaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const count = 32
	for _, op := range stdOps {
		for _, dt := range []Datatype{Float64, Int64} {
			n := count * dt.Size()
			backing1 := make([]byte, n+8)
			backing2 := make([]byte, n+8)
			dst := Bytes(backing1).Slice(4, n)
			src := Bytes(backing2).Slice(4, n)
			if dst.Float64sView() != nil {
				t.Fatalf("expected no typed view at 4-byte offset")
			}
			fillBytes(rng, dst, dt, count)
			fillBytes(rng, src, dt, count)

			dstRef := Bytes(append([]byte(nil), dst.Raw()...))
			op.Apply(dst, src, count, dt)
			op.ApplyGeneric(dstRef, src, count, dt)
			if !bytes.Equal(dst.Raw(), dstRef.Raw()) {
				t.Errorf("%s/%s misaligned: fallback diverges from generic path", op.Name, dt)
			}
		}
	}
}

// TestOpApplySizeOnly checks that reductions on size-only buffers stay
// no-ops in both paths.
func TestOpApplySizeOnly(t *testing.T) {
	real := FromFloat64s([]float64{1, 2, 3})
	OpSum.Apply(Sized(24), real, 3, Float64)
	OpSum.Apply(real, Sized(24), 3, Float64)
	OpSum.ApplyGeneric(Sized(24), real, 3, Float64)
	for i, want := range []float64{1, 2, 3} {
		if got := real.Float64At(i); got != want {
			t.Errorf("real buffer mutated by size-only reduction: elem %d = %v", i, got)
		}
	}
}
