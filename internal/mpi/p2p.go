package mpi

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Wildcards for Recv/Irecv, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG. The
// collective algorithms never use them (determinism), but user code may.
const (
	AnySource = -1
	AnyTag    = -2
)

// Status describes a completed receive.
type Status struct {
	Source int // comm rank the message came from
	Tag    int
	Bytes  int
}

// message is a posted send waiting to be matched.
type message struct {
	src, dst  int // global ranks
	commSrc   int // sender's comm rank (reported in Status)
	tag       int
	data      Buf
	eager     bool
	flag      bool          // shared-memory flag signal (store/poll, not transport)
	postClock sim.Time      // sender clock when the send was posted
	done      chan sim.Time // sender completion time (rendezvous)
}

// recvReq is a posted receive waiting to be matched.
type recvReq struct {
	src, tag  int // comm-rank source filter (or wildcards)
	srcGlobal int // resolved global source, or AnySource
	buf       Buf
	postClock sim.Time
	result    chan recvResult
}

type recvResult struct {
	at     sim.Time
	bytes  int
	source int // comm rank
	tag    int
}

// matcher pairs posted sends with posted receives. It is sharded by
// destination rank so that large jobs do not serialize on one lock.
type matcher struct {
	shards []matchShard
}

type matchShard struct {
	mu    sync.Mutex
	byCtx map[int]*rankQueue
}

// rankQueue holds the unmatched sends and receives targeting one
// (context, destination) pair, in posting order (MPI's non-overtaking
// rule).
type rankQueue struct {
	sends []*message
	recvs []*recvReq
}

func newMatcher() *matcher { return &matcher{} }

func (m *matcher) shard(dst int) *matchShard {
	return &m.shards[dst]
}

// init sizes the shard table once the world size is known.
func (m *matcher) sizeTo(n int) {
	m.shards = make([]matchShard, n)
	for i := range m.shards {
		m.shards[i].byCtx = make(map[int]*rankQueue)
	}
}

func (s *matchShard) queue(ctx int) *rankQueue {
	q := s.byCtx[ctx]
	if q == nil {
		q = &rankQueue{}
		s.byCtx[ctx] = q
	}
	return q
}

// matches reports whether a posted receive accepts a message.
func (r *recvReq) matches(m *message) bool {
	if r.srcGlobal != AnySource && r.srcGlobal != m.src {
		return false
	}
	return r.tag == AnyTag || r.tag == m.tag
}

// postSend enqueues a send or pairs it with a waiting receive. It
// returns the matched receive (nil if queued).
func (m *matcher) postSend(ctx int, msg *message) *recvReq {
	s := m.shard(msg.dst)
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queue(ctx)
	for i, r := range q.recvs {
		if r.matches(msg) {
			q.recvs = append(q.recvs[:i], q.recvs[i+1:]...)
			return r
		}
	}
	q.sends = append(q.sends, msg)
	return nil
}

// postRecv enqueues a receive or pairs it with a waiting send. It
// returns the matched send (nil if queued).
func (m *matcher) postRecv(ctx, dst int, r *recvReq) *message {
	s := m.shard(dst)
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queue(ctx)
	for i, msg := range q.sends {
		if r.matches(msg) {
			q.sends = append(q.sends[:i], q.sends[i+1:]...)
			return msg
		}
	}
	q.recvs = append(q.recvs, r)
	return nil
}

// complete computes the virtual-time semantics of a matched pair, moves
// the data, and wakes both sides. Exactly one goroutine calls complete
// per pair (whichever posted second), so no further locking is needed.
func (w *World) complete(m *message, r *recvReq) {
	if m.flag {
		// Shared-memory flag: the signaler paid one store at post;
		// the waiter leaves as soon as the store lands, plus one
		// hot-line load.
		arrival := m.postClock + w.model.MemAlpha
		m.done <- m.postClock + w.model.MemAlpha
		r.result <- recvResult{
			at:     sim.MaxTime(r.postClock, arrival) + w.model.MemAlpha/4,
			source: m.commSrc,
			tag:    m.tag,
		}
		return
	}
	class := w.topo.Hop(m.src, m.dst)
	n := m.data.Len()
	if r.buf.Len() < n {
		n = r.buf.Len() // truncation: account only what lands
	}
	xfer := w.model.XferCost(class, n)
	var sendDone, recvDone sim.Time
	if m.eager {
		// Sender fired and forgot at post time; the wire delay
		// runs concurrently with whatever the sender did next.
		arrival := m.postClock + w.model.SendOverhead + xfer
		sendDone = m.postClock + w.model.SendOverhead
		recvDone = sim.MaxTime(r.postClock, arrival) + w.model.RecvOverhead
	} else {
		// Rendezvous: the transfer starts when both sides are
		// ready and both observe its completion.
		start := sim.MaxTime(m.postClock+w.model.SendOverhead, r.postClock)
		sendDone = start + xfer
		recvDone = sendDone + w.model.RecvOverhead
	}
	bytes := CopyData(r.buf, m.data)
	m.done <- sendDone
	r.result <- recvResult{at: recvDone, bytes: bytes, source: m.commSrc, tag: m.tag}
}

// SendFlag signals a same-node peer through a shared-memory flag: one
// cache-line store on the signaling side. It is the building block of
// the "light-weight means" of synchronization the paper discusses in
// Sect. 6 — ordering without message-transport costs. dst must live on
// the caller's node.
func (c *Comm) SendFlag(dst, tag int) error {
	if err := c.validRank(dst, false); err != nil {
		return err
	}
	w := c.p.world
	if w.topo.Hop(c.p.rank, c.ranks[dst]) == sim.HopNet {
		return fmt.Errorf("mpi: SendFlag to rank %d on another node", dst)
	}
	msg := &message{
		src:       c.p.rank,
		dst:       c.ranks[dst],
		commSrc:   c.rank,
		tag:       tag,
		data:      Sized(0),
		eager:     true,
		flag:      true,
		postClock: c.p.clock,
		done:      make(chan sim.Time, 1),
	}
	if r := w.match.postSend(c.ctx, msg); r != nil {
		w.complete(msg, r)
	}
	c.p.advance(w.model.MemAlpha) // the flag store
	return nil
}

// RecvFlag blocks until the matching SendFlag from src lands (modeled
// as spinning on the shared flag).
func (c *Comm) RecvFlag(src, tag int) error {
	if err := c.validRank(src, false); err != nil {
		return err
	}
	if c.p.world.topo.Hop(c.p.rank, c.ranks[src]) == sim.HopNet {
		return fmt.Errorf("mpi: RecvFlag from rank %d on another node", src)
	}
	req, err := c.Irecv(Sized(0), src, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Send posts a blocking standard-mode send on the communicator. Small
// messages (<= the model's eager limit) buffer and return immediately;
// large messages rendezvous with the matching receive, exactly like the
// protocols the cost model mimics.
func (c *Comm) Send(buf Buf, dst, tag int) error {
	req, err := c.Isend(buf, dst, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Recv posts a blocking receive. src may be a comm rank or AnySource;
// tag may be AnyTag.
func (c *Comm) Recv(buf Buf, src, tag int) (Status, error) {
	req, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Sendrecv posts the receive, then the send, then completes both — the
// deadlock-free exchange the ring and recursive-doubling collectives are
// built on.
func (c *Comm) Sendrecv(sendBuf Buf, dst, sendTag int, recvBuf Buf, src, recvTag int) (Status, error) {
	rr, err := c.Irecv(recvBuf, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	if err := c.Send(sendBuf, dst, sendTag); err != nil {
		return Status{}, err
	}
	return rr.Wait()
}

// validRank checks a comm rank argument.
func (c *Comm) validRank(r int, wildcardOK bool) error {
	if wildcardOK && r == AnySource {
		return nil
	}
	if r < 0 || r >= len(c.ranks) {
		return fmt.Errorf("mpi: rank %d out of range on %d-rank communicator", r, len(c.ranks))
	}
	return nil
}
