package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Wildcards for Recv/Irecv, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG. The
// collective algorithms never use them (determinism), but user code may.
const (
	AnySource = -1
	AnyTag    = -2
)

// Status describes a completed receive.
type Status struct {
	Source int // comm rank the message came from
	Tag    int
	Bytes  int
}

// message is a posted send waiting to be matched.
type message struct {
	src, dst  int // global ranks
	commSrc   int // sender's comm rank (reported in Status)
	tag       int
	data      Buf
	store     *[]byte // pooled backing of an eager payload snapshot, if any
	eager     bool
	flag      bool          // shared-memory flag signal (store/poll, not transport)
	xferScale float64       // noise transfer multiplier; 0 = unscaled (fault.go)
	postClock sim.Time      // sender clock when the send was posted
	done      chan sim.Time // sender completion time (rendezvous)
}

// recvReq is a posted receive waiting to be matched.
type recvReq struct {
	src, tag  int // comm-rank source filter (or wildcards)
	srcGlobal int // resolved global source, or AnySource
	dst       int // posting rank (event-engine wake routing)
	buf       Buf
	postClock sim.Time
	result    chan recvResult
}

type recvResult struct {
	at     sim.Time
	bytes  int
	source int // comm rank
	tag    int
}

// Object pools for the matcher fast path. A large run posts millions of
// sends and receives; recycling the request records (each carrying its
// buffered rendezvous channel) and the eager-send payload snapshots
// keeps the steady state allocation-free. Pooled channels are reused
// only after being drained (or, for fire-and-forget eager sends, never
// written), so a recycled object's channel is always empty.
var (
	msgPool = sync.Pool{New: func() any {
		return &message{done: make(chan sim.Time, 1)}
	}}
	recvReqPool = sync.Pool{New: func() any {
		return &recvReq{result: make(chan recvResult, 1)}
	}}
	eagerBytesPool sync.Pool // of *[]byte
)

func getMessage() *message { return msgPool.Get().(*message) }

// putMessage recycles a message whose done channel is known empty.
func putMessage(m *message) {
	m.data = Buf{}
	m.store = nil
	msgPool.Put(m)
}

func getRecvReq() *recvReq { return recvReqPool.Get().(*recvReq) }

// putRecvReq recycles a receive record whose result channel was drained.
func putRecvReq(r *recvReq) {
	r.buf = Buf{}
	recvReqPool.Put(r)
}

// cloneEager snapshots a real payload into pooled scratch storage so
// the sender may immediately reuse its buffer. The returned pointer is
// the pool token to release via putEagerStore once the copy lands;
// size-only payloads need no snapshot and return nil.
func cloneEager(b Buf) (Buf, *[]byte) {
	if !b.Real() {
		return b, nil
	}
	n := b.Len()
	if p, ok := eagerBytesPool.Get().(*[]byte); ok {
		// Grow an undersized token in place rather than dropping it:
		// pooled buffers converge to the largest payload size and
		// mixed-size workloads stay allocation-free at steady state.
		if cap(*p) < n {
			*p = make([]byte, n)
		}
		s := (*p)[:n]
		copy(s, b.Raw())
		return Bytes(s), p
	}
	s := make([]byte, n)
	copy(s, b.Raw())
	return Bytes(s), &s
}

func putEagerStore(p *[]byte) { eagerBytesPool.Put(p) }

// abortClock is the poison timestamp delivered to blocked waiters when
// the job aborts: instead of every wait being a two-way select against
// the abort channel (the select machinery is measurable on the hot
// path), Abort walks the queues once and feeds each parked waiter this
// sentinel through the channel it is already blocked on. Legitimate
// completion times are never negative.
const abortClock = sim.Time(math.MinInt64)

// failClock and revokedClock are the fault-injection cousins of
// abortClock: the death walk feeds failClock to waiters whose peer
// died, revokeCtx feeds revokedClock to waiters on a revoked
// communicator (fault.go). failErr maps all three back to errors.
const (
	failClock    = sim.Time(math.MinInt64 + 1)
	revokedClock = sim.Time(math.MinInt64 + 2)
)

// matcher pairs posted sends with posted receives. It is sharded by
// destination rank so that large jobs do not serialize on one lock.
type matcher struct {
	shards  []matchShard
	fold    int // rank-symmetry fold unit, 0 when unfolded (fold.go)
	aborted atomic.Bool

	// Fault-injection state (fault.go): per-global-rank death flags
	// (nil unless the world schedules failures) and the revoked
	// context set, both checked under the shard lock on posts so a
	// post either precedes the corresponding purge walk (which then
	// fails it) or observes the flag.
	dead     []atomic.Bool
	revoked  sync.Map // ctx int -> struct{}
	nRevoked atomic.Int32

	// Queue arena: rank queues for all shards are cut from shared
	// chunks (setup-path only, so one extra mutex is harmless), which
	// turns "one allocation per (rank, communicator)" into a handful
	// of chunk allocations per world.
	arenaMu sync.Mutex
	arena   []rankQueue
}

// newQueue cuts one rank queue from the arena. Pointers stay valid:
// chunks are never reallocated, a fresh chunk is cut when one runs out.
func (m *matcher) newQueue() *rankQueue {
	m.arenaMu.Lock()
	if len(m.arena) == 0 {
		m.arena = make([]rankQueue, 256)
	}
	q := &m.arena[0]
	m.arena = m.arena[1:]
	m.arenaMu.Unlock()
	return q
}

type matchShard struct {
	mu     sync.Mutex
	queues []ctxQueue  // tiny per-rank context table, linear scan
	qstore [3]ctxQueue // its inline backing: no heap for ≤3 comms
}

// ctxQueue maps one context id to its queue. A rank only ever belongs
// to a handful of communicators (world, its node/tier comms, maybe a
// leader comm), so a linear scan over a 2-4 entry slice beats a dense
// context-indexed array: the seed's byCtx slices re-grew toward the
// world's highest context id on every shard, which was the single
// largest allocation source at Fig. 9 scale.
type ctxQueue struct {
	ctx int
	q   *rankQueue
}

// fifo is a head-indexed queue: the overwhelmingly common FIFO match
// pops the head in O(1) without shifting the slice, and the backing
// array is reused across the life of the communicator.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) {
	if q.head > 0 && len(q.items) == cap(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v)
}

// remove deletes index i (>= head). The head case is O(1); middle
// deletion (wildcard/tag skips) shifts, which is rare.
func (q *fifo[T]) remove(i int) {
	var zero T
	if i == q.head {
		q.items[i] = zero
		q.head++
		if q.head == len(q.items) {
			q.items = q.items[:0]
			q.head = 0
		}
		return
	}
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
}

// rankQueue holds the unmatched sends and receives targeting one
// (context, destination) pair, in posting order (MPI's non-overtaking
// rule).
type rankQueue struct {
	sends fifo[*message]
	recvs fifo[*recvReq]
}

func newMatcher() *matcher { return &matcher{} }

func (m *matcher) shard(dst int) *matchShard {
	// Folded worlds route messages for a replica rank to its class
	// representative: the representative posts the translated receive
	// (see fold.go).
	if m.fold > 0 && dst >= m.fold {
		dst %= m.fold
	}
	return &m.shards[dst]
}

// init sizes the shard table once the world size is known. Queues are
// created per (shard, context) on first use or via reserve.
func (m *matcher) sizeTo(n int) {
	m.shards = make([]matchShard, n)
}

// reserve preallocates the rank queue for a context on one shard. Each
// rank calls it for its own shard when a communicator is created, so
// the hot matching path never allocates queue heads.
func (m *matcher) reserve(ctx, dst int) {
	s := m.shard(dst)
	s.mu.Lock()
	s.queue(m, ctx)
	s.mu.Unlock()
}

func (s *matchShard) queue(m *matcher, ctx int) *rankQueue {
	for i := range s.queues {
		if s.queues[i].ctx == ctx {
			return s.queues[i].q
		}
	}
	q := m.newQueue()
	if s.queues == nil {
		s.queues = s.qstore[:0:len(s.qstore)]
	}
	s.queues = append(s.queues, ctxQueue{ctx: ctx, q: q})
	return q
}

// matches reports whether a posted receive accepts a message.
func (r *recvReq) matches(m *message) bool {
	if r.srcGlobal != AnySource && r.srcGlobal != m.src {
		return false
	}
	return r.tag == AnyTag || r.tag == m.tag
}

// accepts is the matching rule, folded-mode aware. Under folding only
// class representatives post, so a receive expecting source s pairs
// with the representative message standing for s's class: same
// crossedness (both sides inside the fold unit, or both across it) and
// s's class equals the message's source (representatives always send
// from ranks < u, so s%u == m.src is the uniform check for both the
// in-unit exact match and the crossed class match). The translated
// receive a representative posts for an incoming crossed message is
// exactly the one whose expected source lies in the sender
// representative's class, so costs and clocks line up — see fold.go.
func (m *matcher) accepts(r *recvReq, msg *message) bool {
	if u := m.fold; u > 0 && r.srcGlobal != AnySource {
		if (msg.dst >= u) != (r.srcGlobal >= u) || r.srcGlobal%u != msg.src {
			return false
		}
		return r.tag == AnyTag || r.tag == msg.tag
	}
	return r.matches(msg)
}

// postSend enqueues a send or pairs it with a waiting receive. It
// returns the matched receive (nil if queued), or ErrAborted on a
// poisoned matcher: the abort flag is checked under the shard lock, so
// a post either lands before Abort's poison walk (which then wakes it)
// or observes the flag — a waiter can never be stranded.
func (m *matcher) postSend(ctx int, msg *message) (*recvReq, error) {
	s := m.shard(msg.dst)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.aborted.Load() {
		return nil, ErrAborted
	}
	if m.isRevoked(ctx) {
		return nil, ErrRevoked
	}
	q := s.queue(m, ctx)
	for i := q.recvs.head; i < len(q.recvs.items); i++ {
		if r := q.recvs.items[i]; m.accepts(r, msg) {
			q.recvs.remove(i)
			return r, nil
		}
	}
	// The dead check runs after the match scan: a receive the dead rank
	// posted before dying stays matchable (the outcome then depends
	// only on virtual program order, not on how the sender's post
	// interleaves with the death walk in host time).
	if m.dead != nil && m.dead[msg.dst].Load() {
		return nil, fmt.Errorf("mpi: send to failed rank %d: %w", msg.dst, ErrRankFailed)
	}
	q.sends.push(msg)
	return nil, nil
}

// postRecv enqueues a receive or pairs it with a waiting send. It
// returns the matched send (nil if queued); abort handling matches
// postSend.
func (m *matcher) postRecv(ctx, dst int, r *recvReq) (*message, error) {
	s := m.shard(dst)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.aborted.Load() {
		return nil, ErrAborted
	}
	if m.isRevoked(ctx) {
		return nil, ErrRevoked
	}
	q := s.queue(m, ctx)
	for i := q.sends.head; i < len(q.sends.items); i++ {
		if msg := q.sends.items[i]; m.accepts(r, msg) {
			q.sends.remove(i)
			return msg, nil
		}
	}
	// After the scan, like postSend: a message the dead rank sent
	// before dying is still delivered (in-flight delivery, as ULFM
	// allows); only a receive that would have to wait on the dead rank
	// fails.
	if m.dead != nil && r.srcGlobal != AnySource && m.dead[r.srcGlobal].Load() {
		return nil, fmt.Errorf("mpi: receive from failed rank %d: %w", r.srcGlobal, ErrRankFailed)
	}
	q.recvs.push(r)
	return nil, nil
}

// poison wakes every queued waiter with the abortClock sentinel and
// flips the matcher into its poisoned state (all later posts fail with
// ErrAborted). Called once, from Abort.
func (m *matcher) poison() {
	m.aborted.Store(true)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, cq := range s.queues {
			q := cq.q
			for j := q.recvs.head; j < len(q.recvs.items); j++ {
				q.recvs.items[j].result <- recvResult{at: abortClock}
			}
			q.recvs.items = q.recvs.items[:0]
			q.recvs.head = 0
			for j := q.sends.head; j < len(q.sends.items); j++ {
				if msg := q.sends.items[j]; !msg.eager {
					msg.done <- abortClock
				}
			}
			q.sends.items = q.sends.items[:0]
			q.sends.head = 0
		}
		s.mu.Unlock()
	}
}

// complete computes the virtual-time semantics of a matched pair, moves
// the data, and wakes both sides. Exactly one goroutine calls complete
// per pair (whichever posted second), so no further locking is needed.
//
// Eager messages (including flag signals) are fire-and-forget: the
// sender already charged its completion at post time and never reads
// the done channel, so complete owns the message afterwards and
// recycles it (and any pooled payload snapshot). Rendezvous messages
// stay live until the sender's wait drains done.
func (w *World) complete(m *message, r *recvReq) {
	if m.flag {
		// Shared-memory flag: the signaler paid one store at post;
		// the waiter leaves as soon as the store lands, plus one
		// hot-line load.
		arrival := m.postClock + w.model.MemAlpha
		r.result <- recvResult{
			at:     sim.MaxTime(r.postClock, arrival) + w.model.MemAlpha/4,
			source: m.commSrc,
			tag:    m.tag,
		}
		if w.evLive {
			w.ev.wake(r.dst)
		}
		putMessage(m)
		return
	}
	class := w.topo.Hop(m.src, m.dst)
	n := m.data.Len()
	if r.buf.Len() < n {
		n = r.buf.Len() // truncation: account only what lands
	}
	xfer := w.model.XferCost(class, n)
	if m.xferScale > 0 {
		// Congestion/jitter stretch drawn at post time in the sender's
		// program order (fault.go); a single float64 multiply keeps the
		// result bit-identical across engines and platforms.
		xfer = sim.Time(float64(xfer) * m.xferScale)
	}
	var sendDone, recvDone sim.Time
	if m.eager {
		// Sender fired and forgot at post time; the wire delay
		// runs concurrently with whatever the sender did next.
		arrival := m.postClock + w.model.SendOverhead + xfer
		recvDone = sim.MaxTime(r.postClock, arrival) + w.model.RecvOverhead
	} else {
		// Rendezvous: the transfer starts when both sides are
		// ready and both observe its completion.
		start := sim.MaxTime(m.postClock+w.model.SendOverhead, r.postClock)
		sendDone = start + xfer
		recvDone = sendDone + w.model.RecvOverhead
	}
	bytes := CopyData(r.buf, m.data)
	res := recvResult{at: recvDone, bytes: bytes, source: m.commSrc, tag: m.tag}
	if m.eager {
		if m.store != nil {
			putEagerStore(m.store)
		}
		putMessage(m)
	} else {
		m.done <- sendDone
		if w.evLive {
			w.ev.wake(m.src)
		}
	}
	r.result <- res
	if w.evLive {
		w.ev.wake(r.dst)
	}
}

// pendingRecords counts the unmatched sends and receives queued across
// all shards — the folded-run tripwire (fold.go) and a test hook. Only
// meaningful between Runs.
func (m *matcher) pendingRecords() int {
	total := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, cq := range s.queues {
			total += len(cq.q.sends.items) - cq.q.sends.head
			total += len(cq.q.recvs.items) - cq.q.recvs.head
		}
		s.mu.Unlock()
	}
	return total
}

// SendFlag signals a same-node peer through a shared-memory flag: one
// cache-line store on the signaling side. It is the building block of
// the "light-weight means" of synchronization the paper discusses in
// Sect. 6 — ordering without message-transport costs. dst must live on
// the caller's node.
func (c *Comm) SendFlag(dst, tag int) error {
	if err := c.validRank(dst, false); err != nil {
		return err
	}
	w := c.p.world
	if !w.topo.SameNode(c.p.rank, c.ranks[dst]) {
		return fmt.Errorf("mpi: SendFlag to rank %d on another node", dst)
	}
	msg := getMessage()
	*msg = message{
		src:       c.p.rank,
		dst:       c.ranks[dst],
		commSrc:   c.rank,
		tag:       tag,
		data:      Sized(0),
		eager:     true,
		flag:      true,
		postClock: c.p.clock,
		done:      msg.done,
	}
	r, err := w.match.postSend(c.ctx, msg)
	if err != nil {
		return err
	}
	if r != nil {
		w.complete(msg, r)
	}
	c.p.advance(w.model.MemAlpha) // the flag store
	return nil
}

// RecvFlag blocks until the matching SendFlag from src lands (modeled
// as spinning on the shared flag).
func (c *Comm) RecvFlag(src, tag int) error {
	if err := c.validRank(src, false); err != nil {
		return err
	}
	if !c.p.world.topo.SameNode(c.p.rank, c.ranks[src]) {
		return fmt.Errorf("mpi: RecvFlag from rank %d on another node", src)
	}
	rr, err := c.postRecvReq(Sized(0), src, tag)
	if err != nil {
		return err
	}
	_, err = c.p.waitRecvReq(rr)
	return err
}

// Send posts a blocking standard-mode send on the communicator. Small
// messages (<= the model's eager limit) buffer and return immediately;
// large messages rendezvous with the matching receive, exactly like the
// protocols the cost model mimics.
func (c *Comm) Send(buf Buf, dst, tag int) error {
	msg, err := c.postSendMsg(buf, dst, tag)
	if err != nil || msg == nil {
		return err
	}
	return c.p.waitSendMsg(msg)
}

// Recv posts a blocking receive. src may be a comm rank or AnySource;
// tag may be AnyTag.
func (c *Comm) Recv(buf Buf, src, tag int) (Status, error) {
	rr, err := c.postRecvReq(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	return c.p.waitRecvReq(rr)
}

// Sendrecv posts the receive, then the send, then completes both — the
// deadlock-free exchange the ring and recursive-doubling collectives are
// built on.
func (c *Comm) Sendrecv(sendBuf Buf, dst, sendTag int, recvBuf Buf, src, recvTag int) (Status, error) {
	rr, err := c.postRecvReq(recvBuf, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	if err := c.Send(sendBuf, dst, sendTag); err != nil {
		return Status{}, err
	}
	return c.p.waitRecvReq(rr)
}

// validRank checks a comm rank argument.
func (c *Comm) validRank(r int, wildcardOK bool) error {
	if wildcardOK && r == AnySource {
		return nil
	}
	if r < 0 || r >= len(c.ranks) {
		return fmt.Errorf("mpi: rank %d out of range on %d-rank communicator", r, len(c.ranks))
	}
	return nil
}
