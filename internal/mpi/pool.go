package mpi

import (
	"runtime"
	"sync"
)

// rankPool is the persistent execution engine behind World.Run: one
// long-lived goroutine per rank, parked on a per-rank mailbox between
// calls. Spawning and tearing down a goroutine per rank per Run is the
// control-plane cost the 100k-rank sweeps cannot afford (a 65k-rank
// world would pay ~65k spawns for every measured operation), so Run
// dispatches work to the parked workers instead and the pool lives for
// the life of the World.
//
// The pool deliberately holds no reference back to the World: workers
// close over the pool and their mailbox only, and each dispatched job
// carries the *Proc it runs on. A World abandoned without Close
// therefore becomes unreachable even while its workers are parked, and
// the finalizer installed at pool start shuts them down — explicit
// Close is still the deterministic path the harnesses use.
type rankPool struct {
	size    int
	jobs    chan rankJob // shared dispatch queue, buffered to size
	quit    chan struct{}
	started bool
	stop    sync.Once
	workers sync.WaitGroup
}

// rankJob is one rank's share of a Run: the process to run on and the
// shared per-call state.
type rankJob struct {
	p  *Proc
	st *runState
}

// runState is the per-Run dispatch record, owned by the World and
// reused across calls so a steady-state Run allocates nothing.
type runState struct {
	body func(p *Proc) error
	errs []error
	wg   sync.WaitGroup
}

// newRankPool creates the pool shell; workers start lazily at the
// first Run so a World that is built but never run costs no goroutines.
func newRankPool(n int) *rankPool {
	return &rankPool{size: n, quit: make(chan struct{})}
}

// workerAssignment binds a free-agent worker to one world's pool for
// the pool's lifetime.
type workerAssignment struct {
	jobs    <-chan rankJob
	quit    <-chan struct{}
	workers *sync.WaitGroup
}

// freeWorkers is the cross-world worker reserve: when a pool shuts
// down, up to freeWorkerCap of its workers park here (holding their
// grown stacks) instead of exiting, and the next world's pool start
// reassigns them instead of spawning. Sweeps that churn through
// same-shape worlds stop paying a spawn plus stack-growth ramp per
// world; anything beyond the cap exits so a one-off 65k-rank world
// does not pin 65k idle stacks forever.
var freeWorkers = struct {
	mu   sync.Mutex
	idle []chan workerAssignment
}{}

const freeWorkerCap = 4096

// IdleWorkers reports how many parked workers the cross-world reserve
// currently holds. Long-running hosts (the what-if daemon's /metrics
// endpoint) export it as a pool-occupancy gauge.
func IdleWorkers() int {
	freeWorkers.mu.Lock()
	defer freeWorkers.mu.Unlock()
	return len(freeWorkers.idle)
}

// DrainIdleWorkers releases every worker parked on the cross-world
// reserve and returns how many it released. Workers still serving a
// live World are untouched (they re-park or exit on their own when
// that World closes), so this is the graceful-shutdown hook: after the
// last World is closed, a drain leaves the process with no simulator
// goroutines.
func DrainIdleWorkers() int {
	freeWorkers.mu.Lock()
	idle := freeWorkers.idle
	freeWorkers.idle = nil
	freeWorkers.mu.Unlock()
	for _, assign := range idle {
		close(assign)
	}
	return len(idle)
}

// freeAgent is a reusable worker: it serves one pool assignment at a
// time and re-parks itself on the reserve between worlds.
func freeAgent(assign chan workerAssignment) {
	for a := range assign {
		rankWorker(a.jobs, a.quit, a.workers)
		freeWorkers.mu.Lock()
		if len(freeWorkers.idle) >= freeWorkerCap {
			freeWorkers.mu.Unlock()
			return
		}
		freeWorkers.idle = append(freeWorkers.idle, assign)
		freeWorkers.mu.Unlock()
	}
}

// start assembles the pool's workers — reserve workers first, fresh
// spawns for the remainder. Called under the owning World's Run gate,
// so it never races with itself. One shared, size-buffered dispatch
// channel replaces per-rank mailboxes: a job carries the Proc it runs
// on, so any worker can take any rank, and a 65k-rank world allocates
// one queue instead of 65k.
func (rp *rankPool) start() {
	if rp.started {
		return
	}
	rp.started = true
	rp.jobs = make(chan rankJob, rp.size)
	rp.workers.Add(rp.size)

	need := rp.size
	freeWorkers.mu.Lock()
	n := len(freeWorkers.idle)
	take := n
	if take > need {
		take = need
	}
	// Copy the grabbed tail out: the idle slice's backing array is
	// appended to again by re-parking workers, so handing out an
	// aliased sub-slice would race.
	grabbed := make([]chan workerAssignment, take)
	copy(grabbed, freeWorkers.idle[n-take:])
	freeWorkers.idle = freeWorkers.idle[:n-take]
	freeWorkers.mu.Unlock()

	a := workerAssignment{jobs: rp.jobs, quit: rp.quit, workers: &rp.workers}
	for _, assign := range grabbed {
		assign <- a
		need--
	}
	for i := 0; i < need; i++ {
		assign := make(chan workerAssignment, 1)
		assign <- a
		go freeAgent(assign)
	}
}

// dispatch enqueues one rank's job. The queue is buffered to the world
// size and a Run has at most one job per rank outstanding, so the send
// never blocks.
func (rp *rankPool) dispatch(j rankJob) {
	rp.jobs <- j
}

// shutdown wakes every parked worker and waits for them to exit.
// Idempotent; safe on a pool that never started.
func (rp *rankPool) shutdown() {
	rp.stop.Do(func() { close(rp.quit) })
	rp.workers.Wait()
}

// release is the finalizer flavor of shutdown: it signals the workers
// but does not block the finalizer goroutine on their exit.
func (rp *rankPool) release() {
	rp.stop.Do(func() { close(rp.quit) })
}

// rankWorker is the parked worker loop. It deliberately references
// only the job queue, the quit channel and the worker group — never the
// World — so parked workers do not keep an abandoned World reachable.
// Jobs and quit cannot race: Close and the finalizer only fire when no
// Run is in flight, so a closed quit channel implies an empty queue.
func rankWorker(jobs <-chan rankJob, quit <-chan struct{}, workers *sync.WaitGroup) {
	defer workers.Done()
	for {
		select {
		case j := <-jobs:
			j.run()
		case <-quit:
			return
		}
	}
}

// run executes the rank body with the same recovery semantics the
// spawn-per-Run engine had: panics are recovered and reported as the
// rank's error, coordinator aborts surface as ErrAborted, and any
// failure aborts the job so blocked peers wake up.
func (j rankJob) run() {
	p, st := j.p, j.st
	defer st.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			st.errs[p.rank] = recoveredRankError(p, rec)
		}
	}()
	if err := st.body(p); err != nil {
		st.errs[p.rank] = &RankError{Rank: p.rank, Err: err}
		// A failing rank aborts the job, as mpirun would, so peers
		// blocked in collectives wake up with ErrAborted instead of
		// hanging.
		p.world.Abort()
	}
}

// setWorldFinalizer installs the leak backstop once either engine has
// goroutines: a World dropped without Close still releases its parked
// pool workers and event-scheduler continuations on the next GC cycle.
// The guard matters when both engines start on one world (an engine
// switch between Runs): runtime.SetFinalizer throws on a second
// install. Runs never overlap, so the flag needs no lock.
func setWorldFinalizer(w *World) {
	if w.finalizerSet {
		return
	}
	w.finalizerSet = true
	runtime.SetFinalizer(w, func(w *World) {
		w.pool.release()
		if w.ev != nil {
			w.ev.release()
		}
	})
}
