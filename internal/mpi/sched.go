package mpi

import (
	"errors"

	"repro/internal/sim"
)

// This file is the executor for nonblocking collectives: a Sched is a
// compiled communication schedule — rounds of sends and receives with
// local epilogue work — driven through the same posting/matching
// machinery as Isend/Irecv (see request.go), but on its own virtual
// timeline.
//
// The timeline is the key design point. A schedule models an
// asynchronous progress engine (hardware offload / firmware, as in
// triggered-operations NICs): its operations execute at the engine's
// cursor, which starts at the caller's clock when the schedule starts
// and then advances only by the schedule's own communication and
// epilogue costs. The caller's clock is untouched until Wait (or a
// successful Test) fuses the two: clock = max(clock, cursor). That is
// exactly the overlap semantics nonblocking collectives exist for —
// total time is max(local compute, collective) — and, unlike
// caller-clock-driven progression, it is deterministic: when (in host
// time) the caller happens to poll has no influence on any virtual
// timestamp.

// Nonblocking-schedule tag space. Each schedule instance gets a stride
// of tags so that overlapping schedules on one communicator cannot
// cross-match even when their rounds interleave on the wire. 1<<26
// keeps clear of user tags (conventionally < 1<<24), runtime-internal
// tags (1<<24) and the blocking collectives' tag block (1<<25).
const (
	schedTagBase   = 1 << 26
	schedTagStride = 64
	schedTagWindow = 1 << 14
)

// SchedOp is one communication operation of a schedule round. Tag is a
// schedule-relative tag (reduced modulo the per-schedule stride); ops
// that can pair across ranks must use the same relative tag on both
// sides, and relative tags must not depend on rank-local round counts.
type SchedOp struct {
	IsSend bool
	Buf    Buf
	Peer   int // comm rank
	Tag    int // schedule-relative tag
}

// SchedSend builds a send operation for a schedule round.
func SchedSend(buf Buf, peer, tag int) SchedOp {
	return SchedOp{IsSend: true, Buf: buf, Peer: peer, Tag: tag}
}

// SchedRecv builds a receive operation for a schedule round.
func SchedRecv(buf Buf, peer, tag int) SchedOp {
	return SchedOp{Buf: buf, Peer: peer, Tag: tag}
}

// Round is one dependency level of a schedule. Its operations are
// posted together once every earlier round has completed; After — the
// local epilogue (reduction fold, unpack copy) — runs at the round's
// virtual completion time and returns the cursor after its local work.
// Within a round, receives should be listed before sends, mirroring
// the deadlock-free Sendrecv posting order of the blocking algorithms.
type Round struct {
	Ops   []SchedOp
	After func(now sim.Time) sim.Time
}

// schedPending tracks one posted, not-yet-drained operation.
type schedPending struct {
	msg  *message // rendezvous send
	rr   *recvReq // receive
	done bool
	at   sim.Time
}

// Sched is a nonblocking collective in flight (MPI_Request for an
// I-collective). Exactly one of Wait/Test drives it at a time, from
// the owning rank's goroutine.
type Sched struct {
	c       *Comm
	tagBase int
	rounds  []Round
	cur     int
	cursor  sim.Time
	pend    []schedPending
	started bool
	done    bool
	err     error
}

// NewSched compiles rounds into a schedule on this communicator. Like
// the blocking collectives, schedules must be created in the same
// order by every member of the communicator: the per-communicator
// sequence number that isolates concurrent schedules' tag spaces is
// symmetric only under that (standard MPI) discipline.
func (c *Comm) NewSched(rounds []Round) *Sched {
	base := schedTagBase + schedTagStride*(c.sched%schedTagWindow)
	c.sched++
	return &Sched{c: c, tagBase: base, rounds: rounds}
}

// Start begins execution: the cursor latches the caller's current
// clock and the first round is posted. Start is idempotent; Wait and
// Test call it implicitly.
func (s *Sched) Start() error {
	if s.started || s.err != nil {
		return s.err
	}
	s.started = true
	s.cursor = s.c.p.clock
	return s.fail(s.postRounds())
}

// fail records a terminal error.
func (s *Sched) fail(err error) error {
	if err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// postRounds posts rounds starting at s.cur until one has outstanding
// operations or the schedule ends. Rounds whose operations are all
// local (or all eager sends) complete inline at the cursor.
func (s *Sched) postRounds() error {
	model := s.c.p.world.model
	for s.cur < len(s.rounds) {
		r := &s.rounds[s.cur]
		s.pend = s.pend[:0]
		for _, op := range r.Ops {
			tag := s.tagBase + op.Tag%schedTagStride
			if op.IsSend {
				msg, err := s.c.postSendAtClock(op.Buf, op.Peer, tag, s.cursor, "sched-send")
				if err != nil {
					return err
				}
				if msg == nil {
					// Eager: the engine pays the posting overhead
					// and moves on, like the blocking send path.
					s.cursor += model.SendOverhead
				} else {
					s.pend = append(s.pend, schedPending{msg: msg})
				}
			} else {
				rr, err := s.c.postRecvReqAt(op.Buf, op.Peer, tag, s.cursor, "sched-recv")
				if err != nil {
					return err
				}
				s.pend = append(s.pend, schedPending{rr: rr})
			}
		}
		if len(s.pend) > 0 {
			return nil
		}
		s.finishRound()
	}
	s.done = true
	return nil
}

// finishRound folds the drained completion times into the cursor, runs
// the epilogue, and advances to the next round. All pending ops must
// be done.
func (s *Sched) finishRound() {
	for i := range s.pend {
		if at := s.pend[i].at; at > s.cursor {
			s.cursor = at
		}
	}
	s.pend = s.pend[:0]
	if after := s.rounds[s.cur].After; after != nil {
		s.cursor = after(s.cursor)
	}
	s.cur++
}

// drain blocks until every outstanding operation of the current round
// has completed. In event mode the park goes through the scheduler
// (evAwait always yields a value: real completion or the poison
// sentinel); in goroutine mode it is the two-way select against the
// abort channel.
func (s *Sched) drain() error {
	w := s.c.p.world
	rank := s.c.p.rank
	for i := range s.pend {
		p := &s.pend[i]
		if p.done {
			continue
		}
		if p.msg != nil {
			var at sim.Time
			if w.evLive {
				at = evAwait(w.ev, rank, p.msg.done)
			} else {
				select {
				case at = <-p.msg.done:
				case <-w.abortCh:
					return ErrAborted
				}
			}
			putMessage(p.msg)
			if at == abortClock {
				p.msg = nil
				return ErrAborted
			}
			p.msg, p.done, p.at = nil, true, at
		} else {
			var res recvResult
			if w.evLive {
				res = evAwait(w.ev, rank, p.rr.result)
			} else {
				select {
				case res = <-p.rr.result:
				case <-w.abortCh:
					return ErrAborted
				}
			}
			putRecvReq(p.rr)
			if res.at == abortClock {
				p.rr = nil
				return ErrAborted
			}
			p.rr, p.done, p.at = nil, true, res.at
		}
	}
	return nil
}

// poll drains whatever has already completed and reports whether the
// whole round is done, without blocking.
func (s *Sched) poll() (bool, error) {
	all := true
	for i := range s.pend {
		p := &s.pend[i]
		if p.done {
			continue
		}
		if p.msg != nil {
			select {
			case at := <-p.msg.done:
				putMessage(p.msg)
				if at == abortClock {
					p.msg = nil
					return false, ErrAborted
				}
				p.msg, p.done, p.at = nil, true, at
			default:
				all = false
			}
		} else {
			select {
			case res := <-p.rr.result:
				putRecvReq(p.rr)
				if res.at == abortClock {
					p.rr = nil
					return false, ErrAborted
				}
				p.rr, p.done, p.at = nil, true, res.at
			default:
				all = false
			}
		}
	}
	if !all {
		if w := s.c.p.world; w.evLive {
			// Hand control off so the peers this round is waiting on
			// can run (see Request.Test).
			w.ev.yield(s.c.p.rank)
		}
		if s.c.p.world.Aborted() {
			return false, ErrAborted
		}
	}
	return all, nil
}

// Wait drives the schedule to completion and fuses the caller's clock
// with the engine cursor: clock = max(clock, cursor). Calling Wait on
// a completed schedule is a no-op.
func (s *Sched) Wait() error {
	if s == nil {
		return errors.New("mpi: Wait on nil schedule")
	}
	if err := s.Start(); err != nil {
		return err
	}
	for !s.done {
		if err := s.fail(s.drain()); err != nil {
			return err
		}
		s.finishRound()
		if err := s.fail(s.postRounds()); err != nil {
			return err
		}
	}
	s.c.p.syncTo(s.cursor)
	return nil
}

// Test makes progress without blocking and reports whether the
// schedule has completed; on completion it fuses clocks exactly like
// Wait. Whether a given Test observes completion depends on host
// scheduling (as in real MPI), but every virtual timestamp is
// deterministic either way.
func (s *Sched) Test() (bool, error) {
	if s == nil {
		return false, errors.New("mpi: Test on nil schedule")
	}
	if err := s.Start(); err != nil {
		return false, err
	}
	for !s.done {
		ok, err := s.poll()
		if err := s.fail(err); err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		s.finishRound()
		if err := s.fail(s.postRounds()); err != nil {
			return false, err
		}
	}
	s.c.p.syncTo(s.cursor)
	return true, nil
}

// Done reports whether the schedule has completed (after which Wait
// and Test are no-ops).
func (s *Sched) Done() bool { return s.done }
