package mpi

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// The coordinator implements the untimed rendezvous primitives behind
// communicator setup (exchange) and clock fusion (FuseClocks). The seed
// implementation funneled both through one mutex and one map, which
// became the control-plane bottleneck at 1k+ ranks: every shared-memory
// barrier of every node-level communicator serialized on the same lock.
// Two structures replace it:
//
//   - exchange sessions live in a sharded map (hashed by session key),
//     their records recycled through a pool and deleted as soon as the
//     last member leaves, so the maps stay small and mostly uncontended;
//   - FuseClocks bypasses maps and locks entirely: each communicator
//     context gets a persistent binary fusion tree of per-rank channels
//     (see clockTree), so concurrent barriers on different node
//     communicators never touch shared state.

// coordShardCount is the number of session-map shards (power of two).
const coordShardCount = 64

type coordKey struct{ ctx, seq int }

type coordSession struct {
	vals      []any
	remaining int
	released  int
	failed    bool          // a member died: every waiter fails with ErrRankFailed
	done      chan struct{} // created lazily by the first waiter's arrival
	waiters   []int         // event-engine parked ranks, woken by the completer
}

// coordSessionPool recycles session records. Only the record is pooled:
// the vals vector escapes to every caller (exchange returns it), so it
// is detached before the record goes back.
var coordSessionPool = sync.Pool{New: func() any { return new(coordSession) }}

type coordShard struct {
	mu       sync.Mutex
	sessions map[coordKey]*coordSession
	// Pad shards apart so neighboring locks don't share a cache line.
	_ [40]byte
}

type coordinator struct {
	shards [coordShardCount]coordShard
	trees  sync.Map // ctx int -> *clockTree (large comms)

	// Fuser creation and the abort poison walk are ordered through
	// fuserMu: a cell is either inserted before the walk (which then
	// poisons it) or its creator observes fusersPoisoned — a rank can
	// never park in a cell the walk missed.
	fuserMu        sync.Mutex
	fusersPoisoned bool
	fusers         sync.Map // ctx int -> *clockFuser (small comms)
}

func newCoordinator() *coordinator {
	co := &coordinator{}
	for i := range co.shards {
		co.shards[i].sessions = make(map[coordKey]*coordSession, 4)
	}
	return co
}

func (co *coordinator) shard(key coordKey) *coordShard {
	h := uint64(key.ctx)*0x9e3779b97f4a7c15 ^ uint64(key.seq)*0xbf58476d1ce4e5b9
	return &co.shards[(h>>32)&(coordShardCount-1)]
}

// exchange blocks until all size members of the (ctx, seq) session have
// contributed, then returns the full contribution vector to each. The
// session record is deleted and recycled when the last member leaves;
// the maps never accumulate completed sessions. If the job aborts while
// waiting, exchange panics with ErrAborted; the panic is recovered by
// World.Run and reported as the rank's error.
//
// In event mode (p.world.evLive) a waiting member cannot block on the
// done channel — that would stall the single-threaded scheduler — so
// it registers itself on the session's waiter list and parks; the
// completing member wakes the list. Wakes can be spurious (any record
// completion readies the rank), hence the re-check loop.
func (co *coordinator) exchange(key coordKey, p *Proc, rank, size int, val any) []any {
	w := p.world
	sh := co.shard(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s == nil {
		s = coordSessionPool.Get().(*coordSession)
		s.vals = make([]any, size)
		s.remaining = size
		s.released = 0
		s.failed = false
		s.done = nil
		sh.sessions[key] = s
	}
	if s.failed {
		// The death walk failed this session before we arrived; a dead
		// member means it can never complete.
		sh.mu.Unlock()
		panic(fmt.Errorf("mpi: setup exchange with failed member: %w", ErrRankFailed))
	}
	s.vals[rank] = val
	s.remaining--
	complete := s.remaining == 0
	if complete {
		if s.done != nil {
			close(s.done)
		}
		for _, wr := range s.waiters {
			w.ev.wake(wr)
		}
		s.waiters = s.waiters[:0]
	} else if s.done == nil {
		s.done = make(chan struct{})
	}
	done := s.done
	vals := s.vals
	sh.mu.Unlock()

	// The member that completed the session already holds every
	// contribution; everyone else waits for the close (non-blocking
	// attempt first — late arrivals find it already closed).
	if !complete {
		if w.evLive {
			for !chanClosed(done) {
				if w.Aborted() {
					panic(ErrAborted)
				}
				sh.mu.Lock()
				s.waiters = append(s.waiters, p.rank)
				sh.mu.Unlock()
				w.ev.park(p.rank)
			}
		} else {
			select {
			case <-done:
			default:
				select {
				case <-done:
				case <-w.abortCh:
					panic(ErrAborted)
				}
			}
		}
	}

	// The close of done (or the completer's own arrival) happens after
	// any failed-flag write, so the flag is safely readable here.
	if s.failed {
		// A member died mid-session. The record stays in the map (never
		// pooled — stragglers may still be waking through it); the world
		// is damaged and either aborts or recovers on a fresh context.
		panic(fmt.Errorf("mpi: setup exchange with failed member: %w", ErrRankFailed))
	}

	sh.mu.Lock()
	s.released++
	if s.released == size {
		delete(sh.sessions, key)
		s.vals = nil
		s.waiters = s.waiters[:0]
		coordSessionPool.Put(s)
	}
	sh.mu.Unlock()
	return vals
}

// chanClosed reports (without blocking) whether a signal channel is
// closed. Only valid for channels that are never sent to.
func chanClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// FuseClocks runs on one of two per-context fusion engines, both of
// which eliminate the seed's global session map and mutex (every
// shared-memory barrier of every node communicator serialized there):
//
//   - clockFuser, a counter cell, for small communicators: arrivals
//     fold their clock into the round's max under a per-context lock,
//     all but the last park once on the round's done channel. Minimal
//     park count, but the lock and the broadcast wake are O(n) on one
//     spot, so
//   - clockTree, a binary channel tree, serves large communicators,
//     where fan-in through tree edges keeps any single lock or wake
//     list constant-size.
const clockTreeMin = 65 // comm size at which fusion switches to the tree

// fuseRound is one fusion round of a clockFuser. Records are pooled;
// the done channel is created lazily by the first member that has to
// wait and closed by the round's last arriver (or Abort's poison walk,
// which also sets aborted).
type fuseRound struct {
	max       sim.Time
	remaining int
	released  int
	aborted   bool
	failed    bool // a member died mid-round (see coordinator.failRank)
	done      chan struct{}
	waiters   []int // event-engine parked ranks (see exchange)
}

var fuseRoundPool = sync.Pool{New: func() any { return new(fuseRound) }}

// clockFuser is the counter-cell engine: one live round at a time
// (FuseClocks is collective and called in lockstep, so a member of
// round k+1 can only arrive after round k completed on its goroutine —
// but stragglers of round k may still be waking up, which is why
// rounds are separate pooled records rather than fields of the cell).
// The park is a plain channel receive: abort is delivered by poisoning
// the live round under the same mutex (poisonFusers), never by a
// second select case.
type clockFuser struct {
	mu      sync.Mutex
	aborted bool
	failed  bool // a communicator member died: the context is unusable
	cur     *fuseRound
}

// fuse folds the caller's clock into the current round. failed, when
// non-nil, re-checks for dead communicator members under f.mu — closing
// the race between the caller's collective-entry check and a concurrent
// death, which would otherwise let a member park in a round the death
// walk already visited (or will never visit, for a cell created after
// the walk).
func (f *clockFuser) fuse(p *Proc, size int, clk sim.Time, failed func() bool) sim.Time {
	w := p.world
	f.mu.Lock()
	if f.aborted {
		f.mu.Unlock()
		panic(ErrAborted)
	}
	if f.failed || (failed != nil && failed()) {
		f.mu.Unlock()
		panic(fmt.Errorf("mpi: clock fusion with failed member: %w", ErrRankFailed))
	}
	r := f.cur
	if r == nil {
		r = fuseRoundPool.Get().(*fuseRound)
		r.max = clk
		r.remaining = size
		r.released = 0
		r.aborted = false
		r.failed = false
		r.done = nil
		f.cur = r
	} else if clk > r.max {
		r.max = clk
	}
	r.remaining--
	last := r.remaining == 0
	if last {
		f.cur = nil
		if r.done != nil {
			close(r.done)
		}
		for _, wr := range r.waiters {
			w.ev.wake(wr)
		}
		r.waiters = r.waiters[:0]
	} else if r.done == nil {
		r.done = make(chan struct{})
	}
	done := r.done
	f.mu.Unlock()

	if !last {
		if w.evLive {
			// Event mode: park on the scheduler instead of the channel;
			// the round's last arriver (or the abort poison, via the
			// scheduler's abort path) wakes us. Re-check after every
			// wake — wakes can be spurious.
			for !chanClosed(done) {
				f.mu.Lock()
				r.waiters = append(r.waiters, p.rank)
				f.mu.Unlock()
				w.ev.park(p.rank)
			}
		} else {
			<-done
		}
		if r.aborted {
			panic(ErrAborted)
		}
		if r.failed {
			panic(fmt.Errorf("mpi: clock fusion with failed member: %w", ErrRankFailed))
		}
	}
	res := r.max
	f.mu.Lock()
	r.released++
	if r.released == size {
		r.done = nil
		r.waiters = r.waiters[:0]
		fuseRoundPool.Put(r)
	}
	f.mu.Unlock()
	return res
}

// clockTree is the tree engine: one node per comm rank, wired as a
// binary heap (children of i are 2i+1 and 2i+2). A fusion flows child
// contributions up the tree (each node maxing them with its own clock)
// and the root's result back down. Channels are buffered so the
// pipelined hand-offs of back-to-back fusions never block, and
// consecutive fusions need no session bookkeeping at all: the tree
// edges themselves sequence the rounds. Max is commutative and
// associative, so the result is deterministic regardless of arrival
// order.
type clockTree struct {
	nodes []clockNode
}

type clockNode struct {
	up   chan sim.Time // contributions from this node's children
	down chan sim.Time // result from this node's parent
}

func newClockTree(size int) *clockTree {
	t := &clockTree{nodes: make([]clockNode, size)}
	for i := range t.nodes {
		t.nodes[i] = clockNode{up: make(chan sim.Time, 2), down: make(chan sim.Time, 1)}
	}
	return t
}

// clockTreePools recycles fusion trees across worlds, one pool per
// size: a completed fusion leaves every channel empty, so a tree from
// a cleanly closed world is indistinguishable from a fresh one, and a
// sweep that churns through same-shape worlds stops allocating
// thousands of channels per world. Trees of aborted worlds may hold
// residue and are never returned.
var clockTreePools sync.Map // size int -> *sync.Pool

func getClockTree(size int) *clockTree {
	v, ok := clockTreePools.Load(size)
	if !ok {
		v, _ = clockTreePools.LoadOrStore(size, &sync.Pool{})
	}
	if t, ok := v.(*sync.Pool).Get().(*clockTree); ok {
		return t
	}
	return newClockTree(size)
}

func putClockTree(t *clockTree) {
	if v, ok := clockTreePools.Load(len(t.nodes)); ok {
		v.(*sync.Pool).Put(t)
	}
}

// clockFuser returns the counter cell for a communicator context,
// creating it on first use. Creation panics with ErrAborted on a
// poisoned coordinator: a cell minted after the poison walk would
// never be woken (see fuserMu).
func (co *coordinator) clockFuser(ctx int) *clockFuser {
	if v, ok := co.fusers.Load(ctx); ok {
		// Pre-existing cell: it was inserted under fuserMu before the
		// poison walk (and was poisoned) or the walk hasn't happened.
		return v.(*clockFuser)
	}
	co.fuserMu.Lock()
	if co.fusersPoisoned {
		co.fuserMu.Unlock()
		panic(ErrAborted)
	}
	v, _ := co.fusers.LoadOrStore(ctx, new(clockFuser))
	co.fuserMu.Unlock()
	return v.(*clockFuser)
}

// poisonFusers marks every counter cell aborted and wakes the parked
// members of any live round. Called once, from Abort. Holding fuserMu
// across the flag flip and the walk excludes concurrent creation, so
// no cell can slip past unpoisoned.
func (co *coordinator) poisonFusers() {
	co.fuserMu.Lock()
	defer co.fuserMu.Unlock()
	co.fusersPoisoned = true
	co.fusers.Range(func(_, v any) bool {
		f := v.(*clockFuser)
		f.mu.Lock()
		f.aborted = true
		if r := f.cur; r != nil {
			f.cur = nil
			r.aborted = true
			if r.done != nil {
				close(r.done)
			}
		}
		f.mu.Unlock()
		return true
	})
}

// failRank wakes the collective waiters a rank's death strands: fusion
// rounds and setup sessions on communicator contexts containing the
// dead rank can never complete (the dead member will not arrive), so
// they are failed — waiters wake and panic with ErrRankFailed. Runs on
// the dying rank's goroutine (the token holder in event mode, making
// the scheduler wakes safe). Holding fuserMu across the fuser walk
// orders it against cell creation, exactly like the abort poison; cells
// created after the walk are covered by fuse's under-lock dead re-check
// (the matcher's dead flag is published before this walk starts).
func (co *coordinator) failRank(w *World, rank int) {
	co.fuserMu.Lock()
	co.fusers.Range(func(k, v any) bool {
		if !w.ctxHasRank(k.(int), rank) {
			return true
		}
		f := v.(*clockFuser)
		f.mu.Lock()
		f.failed = true
		if r := f.cur; r != nil {
			f.cur = nil
			r.failed = true
			if r.done != nil {
				close(r.done)
			}
			if w.evLive {
				for _, wr := range r.waiters {
					w.ev.wake(wr)
				}
			}
			r.waiters = r.waiters[:0]
		}
		f.mu.Unlock()
		return true
	})
	co.fuserMu.Unlock()

	// Sessions still waiting on contributions (remaining > 0) from a
	// communicator containing the dead rank can never complete. Failed
	// sessions stay in their maps so late arrivals observe the flag;
	// completed sessions (remaining == 0) are left alone — their
	// stragglers only read the finished vals vector.
	for i := range co.shards {
		sh := &co.shards[i]
		sh.mu.Lock()
		for key, s := range sh.sessions {
			if s.remaining == 0 || s.failed || !w.ctxHasRank(key.ctx, rank) {
				continue
			}
			s.failed = true
			if s.done != nil {
				close(s.done)
			}
			if w.evLive {
				for _, wr := range s.waiters {
					w.ev.wake(wr)
				}
			}
			s.waiters = s.waiters[:0]
		}
		sh.mu.Unlock()
	}
}

// clockTree returns the fusion tree for a communicator context,
// creating it on first use. The losing copy of a creation race is
// returned to the pool; every rank ends up on the same tree.
func (co *coordinator) clockTree(ctx, size int) *clockTree {
	if v, ok := co.trees.Load(ctx); ok {
		return v.(*clockTree)
	}
	t := getClockTree(size)
	v, loaded := co.trees.LoadOrStore(ctx, t)
	if loaded {
		putClockTree(t)
	}
	return v.(*clockTree)
}

// releaseTrees returns every fusion tree to the cross-world pools.
// Only called for cleanly closed worlds (never after an abort, whose
// half-run fusions can leave values in the channels).
func (co *coordinator) releaseTrees() {
	co.trees.Range(func(k, v any) bool {
		putClockTree(v.(*clockTree))
		co.trees.Delete(k)
		return true
	})
}

// fuse runs one tree-structured max-reduction. Every member of the
// communicator must call it exactly once per fusion round (the
// collective lockstep FuseClocks already requires). Abort handling
// matches exchange: a closed abort channel panics with ErrAborted.
// Each channel operation tries the non-blocking form first: the
// buffered capacities make sends succeed immediately in the steady
// state, and contributions that already arrived skip the select
// machinery and the park on the receive side.
func (t *clockTree) fuse(rank int, clk sim.Time, abort <-chan struct{}) sim.Time {
	n := len(t.nodes)
	acc := clk
	left, right := 2*rank+1, 2*rank+2
	for c := left; c <= right && c < n; c++ {
		var v sim.Time
		select {
		case v = <-t.nodes[rank].up:
		default:
			select {
			case v = <-t.nodes[rank].up:
			case <-abort:
				panic(ErrAborted)
			}
		}
		if v > acc {
			acc = v
		}
	}
	if rank > 0 {
		select {
		case t.nodes[(rank-1)/2].up <- acc:
		default:
			select {
			case t.nodes[(rank-1)/2].up <- acc:
			case <-abort:
				panic(ErrAborted)
			}
		}
		select {
		case acc = <-t.nodes[rank].down:
		default:
			select {
			case acc = <-t.nodes[rank].down:
			case <-abort:
				panic(ErrAborted)
			}
		}
	}
	for c := left; c <= right && c < n; c++ {
		select {
		case t.nodes[c].down <- acc:
		default:
			select {
			case t.nodes[c].down <- acc:
			case <-abort:
				panic(ErrAborted)
			}
		}
	}
	return acc
}

// sessionCount reports the live sessions across all shards (tests).
func (co *coordinator) sessionCount() int {
	total := 0
	for i := range co.shards {
		sh := &co.shards[i]
		sh.mu.Lock()
		total += len(sh.sessions)
		sh.mu.Unlock()
	}
	return total
}
