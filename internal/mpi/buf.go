package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Buf is a message buffer. It always knows its length; whether it also
// carries real bytes depends on how it was created.
//
// The paper's large experiments (e.g. Fig. 9: 64 nodes x 24 ranks, each
// holding a 1536-rank x 16384-double result buffer) would need hundreds
// of gigabytes if every rank really allocated its receive buffer, so the
// benchmark harness runs with size-only buffers: every transfer and copy
// is charged its full virtual-time cost, but no bytes move. Correctness
// tests run the identical code paths with real buffers at small scale.
type Buf struct {
	b []byte
	n int
}

// nativeIsLE reports whether the host stores multi-byte words
// little-endian. The wire format of Buf is little-endian, so on (the
// overwhelmingly common) little-endian hosts a typed view of the bytes
// is exactly the element sequence and the per-element codec can be
// bypassed; on big-endian hosts every typed accessor falls back to the
// portable byte codec.
var nativeIsLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Bytes wraps a real byte slice as a buffer.
func Bytes(b []byte) Buf { return Buf{b: b, n: len(b)} }

// Sized returns a size-only buffer of n bytes with no backing storage.
func Sized(n int) Buf {
	if n < 0 {
		n = 0
	}
	return Buf{n: n}
}

// Alloc returns an n-byte buffer, with real backing storage iff real is
// true. It is the allocation primitive the harness and tests share.
func Alloc(n int, real bool) Buf {
	if real {
		return Bytes(make([]byte, n))
	}
	return Sized(n)
}

// Len returns the buffer length in bytes.
func (b Buf) Len() int { return b.n }

// Real reports whether the buffer carries actual bytes.
func (b Buf) Real() bool { return b.b != nil }

// Raw exposes the backing bytes (nil for size-only buffers).
func (b Buf) Raw() []byte { return b.b }

// Slice returns the sub-buffer [off, off+n). It works for size-only
// buffers as well, where it only adjusts the accounted length.
func (b Buf) Slice(off, n int) Buf {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("mpi: Buf.Slice(%d, %d) out of range of %d-byte buffer", off, n, b.n))
	}
	if b.b == nil {
		return Buf{n: n}
	}
	return Buf{b: b.b[off : off+n], n: n}
}

// CopyData moves bytes from src to dst when both sides are real. The
// byte count accounted (and returned) is min(len(dst), len(src))
// regardless, so size-only runs charge identical virtual time.
func CopyData(dst, src Buf) int {
	n := dst.n
	if src.n < n {
		n = src.n
	}
	if dst.b != nil && src.b != nil {
		copy(dst.b[:n], src.b[:n])
	}
	return n
}

// Float64 element helpers. The collectives and applications store
// double-precision values (the element type of every experiment in the
// paper) in little-endian order.

// PutFloat64 stores v at element index i (8-byte stride). Size-only
// buffers ignore writes.
func (b Buf) PutFloat64(i int, v float64) {
	if b.b == nil {
		return
	}
	binary.LittleEndian.PutUint64(b.b[8*i:], math.Float64bits(v))
}

// Float64At loads the element at index i; size-only buffers read zero.
func (b Buf) Float64At(i int) float64 {
	if b.b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b.b[8*i:]))
}

// PutInt64 stores v at element index i (8-byte stride).
func (b Buf) PutInt64(i int, v int64) {
	if b.b == nil {
		return
	}
	binary.LittleEndian.PutUint64(b.b[8*i:], uint64(v))
}

// Int64At loads the element at index i.
func (b Buf) Int64At(i int) int64 {
	if b.b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b.b[8*i:]))
}

// viewOK reports whether the backing bytes can be reinterpreted as a
// slice of 8-byte elements: real storage, a whole number of elements,
// native little-endian order, and 8-byte alignment (Slice can produce
// views at arbitrary byte offsets).
func (b Buf) viewOK() bool {
	return b.b != nil && nativeIsLE && b.n >= 8 && b.n%8 == 0 &&
		uintptr(unsafe.Pointer(&b.b[0]))%8 == 0
}

// Float64sView returns a zero-copy []float64 aliasing the buffer's
// first Len()/8 elements, or nil when no such view exists (size-only
// buffer, empty buffer, misaligned sub-slice, or big-endian host).
// Writes through the view are writes to the buffer. Callers must keep
// a per-element or bulk-codec fallback for the nil case.
func (b Buf) Float64sView() []float64 {
	if !b.viewOK() {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b.b[0])), b.n/8)
}

// Int64sView is Float64sView for signed 64-bit integers.
func (b Buf) Int64sView() []int64 {
	if !b.viewOK() {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b.b[0])), b.n/8)
}

// PutFloat64s bulk-stores v starting at element index i. It is
// equivalent to calling PutFloat64 for each element (including the
// panic on an out-of-range element span) but goes through one memmove
// on little-endian hosts. Size-only buffers ignore writes.
func (b Buf) PutFloat64s(i int, v []float64) {
	if b.b == nil {
		return
	}
	if dst := b.Float64sView(); dst != nil {
		copy(dst[i:i+len(v)], v)
		return
	}
	for j, x := range v {
		b.PutFloat64(i+j, x)
	}
}

// CopyFloat64s bulk-loads len(dst) elements starting at element index i
// into dst, with per-element bounds semantics like PutFloat64s.
// Size-only buffers yield zeros.
func (b Buf) CopyFloat64s(dst []float64, i int) {
	if b.b == nil {
		clear(dst)
		return
	}
	if src := b.Float64sView(); src != nil {
		copy(dst, src[i:i+len(dst)])
		return
	}
	for j := range dst {
		dst[j] = b.Float64At(i + j)
	}
}

// FromFloat64s packs a float64 slice into a fresh real buffer.
func FromFloat64s(v []float64) Buf {
	b := Bytes(make([]byte, 8*len(v)))
	b.PutFloat64s(0, v)
	return b
}

// Float64s unpacks the buffer into a fresh float64 slice (length
// Len()/8). Size-only buffers produce zeros.
func (b Buf) Float64s() []float64 {
	out := make([]float64, b.n/8)
	b.CopyFloat64s(out, 0)
	return out
}
