package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buf is a message buffer. It always knows its length; whether it also
// carries real bytes depends on how it was created.
//
// The paper's large experiments (e.g. Fig. 9: 64 nodes x 24 ranks, each
// holding a 1536-rank x 16384-double result buffer) would need hundreds
// of gigabytes if every rank really allocated its receive buffer, so the
// benchmark harness runs with size-only buffers: every transfer and copy
// is charged its full virtual-time cost, but no bytes move. Correctness
// tests run the identical code paths with real buffers at small scale.
type Buf struct {
	b []byte
	n int
}

// Bytes wraps a real byte slice as a buffer.
func Bytes(b []byte) Buf { return Buf{b: b, n: len(b)} }

// Sized returns a size-only buffer of n bytes with no backing storage.
func Sized(n int) Buf {
	if n < 0 {
		n = 0
	}
	return Buf{n: n}
}

// Alloc returns an n-byte buffer, with real backing storage iff real is
// true. It is the allocation primitive the harness and tests share.
func Alloc(n int, real bool) Buf {
	if real {
		return Bytes(make([]byte, n))
	}
	return Sized(n)
}

// Len returns the buffer length in bytes.
func (b Buf) Len() int { return b.n }

// Real reports whether the buffer carries actual bytes.
func (b Buf) Real() bool { return b.b != nil }

// Raw exposes the backing bytes (nil for size-only buffers).
func (b Buf) Raw() []byte { return b.b }

// Slice returns the sub-buffer [off, off+n). It works for size-only
// buffers as well, where it only adjusts the accounted length.
func (b Buf) Slice(off, n int) Buf {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("mpi: Buf.Slice(%d, %d) out of range of %d-byte buffer", off, n, b.n))
	}
	if b.b == nil {
		return Buf{n: n}
	}
	return Buf{b: b.b[off : off+n], n: n}
}

// CopyData moves bytes from src to dst when both sides are real. The
// byte count accounted (and returned) is min(len(dst), len(src))
// regardless, so size-only runs charge identical virtual time.
func CopyData(dst, src Buf) int {
	n := dst.n
	if src.n < n {
		n = src.n
	}
	if dst.b != nil && src.b != nil {
		copy(dst.b[:n], src.b[:n])
	}
	return n
}

// clone snapshots a buffer for eager sends: real buffers are copied so
// the sender may immediately reuse its storage, size-only buffers just
// keep their length.
func (b Buf) clone() Buf {
	if b.b == nil {
		return b
	}
	c := make([]byte, b.n)
	copy(c, b.b)
	return Bytes(c)
}

// Float64 element helpers. The collectives and applications store
// double-precision values (the element type of every experiment in the
// paper) in little-endian order.

// PutFloat64 stores v at element index i (8-byte stride). Size-only
// buffers ignore writes.
func (b Buf) PutFloat64(i int, v float64) {
	if b.b == nil {
		return
	}
	binary.LittleEndian.PutUint64(b.b[8*i:], math.Float64bits(v))
}

// Float64At loads the element at index i; size-only buffers read zero.
func (b Buf) Float64At(i int) float64 {
	if b.b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b.b[8*i:]))
}

// PutInt64 stores v at element index i (8-byte stride).
func (b Buf) PutInt64(i int, v int64) {
	if b.b == nil {
		return
	}
	binary.LittleEndian.PutUint64(b.b[8*i:], uint64(v))
}

// Int64At loads the element at index i.
func (b Buf) Int64At(i int) int64 {
	if b.b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b.b[8*i:]))
}

// FromFloat64s packs a float64 slice into a fresh real buffer.
func FromFloat64s(v []float64) Buf {
	b := Bytes(make([]byte, 8*len(v)))
	for i, x := range v {
		b.PutFloat64(i, x)
	}
	return b
}

// Float64s unpacks the buffer into a fresh float64 slice (length
// Len()/8). Size-only buffers produce zeros.
func (b Buf) Float64s() []float64 {
	out := make([]float64, b.n/8)
	if b.b == nil {
		return out
	}
	for i := range out {
		out[i] = b.Float64At(i)
	}
	return out
}
