package mpi

import (
	"testing"
)

func TestCartCreateIdentityWithoutReorder(t *testing.T) {
	w := newTestWorld(t, 2, 6)
	err := w.Run(func(p *Proc) error {
		cart, err := p.CommWorld().CartCreate([]int{3, 4}, []bool{true, false}, false)
		if err != nil {
			return err
		}
		if cart == nil {
			t.Errorf("rank %d excluded from a full-size grid", p.Rank())
			return nil
		}
		// reorder=false keeps the parent order: grid rank r is parent
		// rank r, and row-major coordinates follow.
		if cart.Rank() != p.Rank() {
			t.Errorf("rank %d: cart rank %d without reorder", p.Rank(), cart.Rank())
		}
		coords, err := cart.CartCoords(cart.Rank())
		if err != nil {
			return err
		}
		if want0, want1 := p.Rank()/4, p.Rank()%4; coords[0] != want0 || coords[1] != want1 {
			t.Errorf("rank %d: coords %v, want [%d %d]", p.Rank(), coords, want0, want1)
		}
		back, err := cart.CartRank(coords)
		if err != nil {
			return err
		}
		if back != cart.Rank() {
			t.Errorf("rank %d: CartRank(CartCoords) = %d", p.Rank(), back)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCreateRejectsTooManyDims(t *testing.T) {
	w := newTestWorld(t, 1, 2)
	err := w.Run(func(p *Proc) error {
		// MaxCartDims+1 one-wide dims: volume 1, legal in MPI terms,
		// but the direction tags would alias across the schedule tag
		// stride — must be rejected loudly.
		dims := make([]int, MaxCartDims+1)
		periods := make([]bool, len(dims))
		for i := range dims {
			dims[i] = 1
		}
		if _, err := p.CommWorld().CartCreate(dims, periods, false); err == nil {
			t.Errorf("rank %d: %d-dim grid accepted", p.Rank(), len(dims))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCreateExcludesRanksBeyondVolume(t *testing.T) {
	w := newTestWorld(t, 1, 6)
	err := w.Run(func(p *Proc) error {
		cart, err := p.CommWorld().CartCreate([]int{4}, []bool{false}, false)
		if err != nil {
			return err
		}
		if p.Rank() < 4 && cart == nil {
			t.Errorf("rank %d inside the grid got nil", p.Rank())
		}
		if p.Rank() >= 4 && cart != nil {
			t.Errorf("rank %d beyond the grid got a communicator", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftPeriodicWraparound(t *testing.T) {
	w := newTestWorld(t, 2, 6)
	err := w.Run(func(p *Proc) error {
		world := p.CommWorld()
		n := p.Size()

		ring, err := world.CartCreate([]int{n}, []bool{true}, false)
		if err != nil {
			return err
		}
		src, dst, err := ring.CartShift(0, 1)
		if err != nil {
			return err
		}
		if want := (p.Rank() - 1 + n) % n; src != want {
			t.Errorf("rank %d: periodic src %d, want %d", p.Rank(), src, want)
		}
		if want := (p.Rank() + 1) % n; dst != want {
			t.Errorf("rank %d: periodic dst %d, want %d", p.Rank(), dst, want)
		}

		line, err := world.CartCreate([]int{n}, []bool{false}, false)
		if err != nil {
			return err
		}
		src, dst, err = line.CartShift(0, 1)
		if err != nil {
			return err
		}
		if p.Rank() == 0 && src != ProcNull {
			t.Errorf("rank 0: non-periodic src %d, want ProcNull", src)
		}
		if p.Rank() == n-1 && dst != ProcNull {
			t.Errorf("last rank: non-periodic dst %d, want ProcNull", dst)
		}
		if p.Rank() > 0 && src != p.Rank()-1 {
			t.Errorf("rank %d: non-periodic src %d", p.Rank(), src)
		}

		// A displacement beyond the boundary is ProcNull too; a wrapped
		// one lands anywhere on the ring.
		src, dst, err = line.CartShift(0, n)
		if err != nil {
			return err
		}
		if src != ProcNull || dst != ProcNull {
			t.Errorf("rank %d: shift by %d on a line gave (%d, %d)", p.Rank(), n, src, dst)
		}
		src, dst, err = ring.CartShift(0, n)
		if err != nil {
			return err
		}
		if src != p.Rank() || dst != p.Rank() {
			t.Errorf("rank %d: full-circle shift gave (%d, %d)", p.Rank(), src, dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftOneWideDims(t *testing.T) {
	w := newTestWorld(t, 1, 4)
	err := w.Run(func(p *Proc) error {
		// dims [1,4]: dimension 0 is 1 wide. Periodic, every shift
		// along it is a self-neighbor; non-periodic, ProcNull.
		wrap, err := p.CommWorld().CartCreate([]int{1, 4}, []bool{true, true}, false)
		if err != nil {
			return err
		}
		src, dst, err := wrap.CartShift(0, 1)
		if err != nil {
			return err
		}
		if src != wrap.Rank() || dst != wrap.Rank() {
			t.Errorf("rank %d: 1-wide periodic shift gave (%d, %d), want self", p.Rank(), src, dst)
		}
		open, err := p.CommWorld().CartCreate([]int{1, 4}, []bool{false, true}, false)
		if err != nil {
			return err
		}
		src, dst, err = open.CartShift(0, 1)
		if err != nil {
			return err
		}
		if src != ProcNull || dst != ProcNull {
			t.Errorf("rank %d: 1-wide open shift gave (%d, %d), want ProcNull", p.Rank(), src, dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartRankWrapsOnlyPeriodicDims(t *testing.T) {
	w := newTestWorld(t, 1, 6)
	err := w.Run(func(p *Proc) error {
		cart, err := p.CommWorld().CartCreate([]int{2, 3}, []bool{true, false}, false)
		if err != nil {
			return err
		}
		r, err := cart.CartRank([]int{-1, 2}) // -1 wraps to 1 on the periodic dim
		if err != nil {
			return err
		}
		if r != 1*3+2 {
			t.Errorf("wrapped CartRank = %d, want 5", r)
		}
		if _, err := cart.CartRank([]int{0, 3}); err == nil {
			t.Error("out-of-range coordinate on a non-periodic dim accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartNeighborhoodOrderAndTags(t *testing.T) {
	w := newTestWorld(t, 1, 6)
	err := w.Run(func(p *Proc) error {
		cart, err := p.CommWorld().CartCreate([]int{2, 3}, []bool{false, true}, false)
		if err != nil {
			return err
		}
		in, out, ok := cart.Neighborhood()
		if !ok {
			t.Fatalf("rank %d: no neighborhood on a cart comm", p.Rank())
		}
		if len(in) != 4 || len(out) != 4 {
			t.Fatalf("rank %d: neighborhood sizes %d/%d, want 4/4", p.Rank(), len(in), len(out))
		}
		// Slot order per dim: negative side then positive side; the
		// peers must agree with CartShift.
		for d := 0; d < 2; d++ {
			src, dst, err := cart.CartShift(d, 1)
			if err != nil {
				return err
			}
			if in[2*d].Peer != src || out[2*d].Peer != src {
				t.Errorf("rank %d dim %d: negative slot peer %d/%d, want %d",
					p.Rank(), d, in[2*d].Peer, out[2*d].Peer, src)
			}
			if in[2*d+1].Peer != dst || out[2*d+1].Peer != dst {
				t.Errorf("rank %d dim %d: positive slot peer %d/%d, want %d",
					p.Rank(), d, in[2*d+1].Peer, out[2*d+1].Peer, dst)
			}
			// Direction-of-travel tags: a block sent negative (tag 2d)
			// arrives at its receiver's positive-side slot (tag 2d).
			if out[2*d].Tag != 2*d || in[2*d+1].Tag != 2*d {
				t.Errorf("rank %d dim %d: travel-negative tags %d/%d, want %d",
					p.Rank(), d, out[2*d].Tag, in[2*d+1].Tag, 2*d)
			}
			if out[2*d+1].Tag != 2*d+1 || in[2*d].Tag != 2*d+1 {
				t.Errorf("rank %d dim %d: travel-positive tags %d/%d, want %d",
					p.Rank(), d, out[2*d+1].Tag, in[2*d].Tag, 2*d+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartReorderMapsBricksOntoNodes(t *testing.T) {
	w := newTestWorld(t, 4, 4)
	nodeOf := make([]int, 16) // grid rank -> node
	coords := make([][]int, 16)
	err := w.Run(func(p *Proc) error {
		cart, err := p.CommWorld().CartCreate([]int{4, 4}, []bool{true, true}, true)
		if err != nil {
			return err
		}
		c, err := cart.CartCoords(cart.Rank())
		if err != nil {
			return err
		}
		nodeOf[cart.Rank()] = p.Node()
		coords[cart.Rank()] = c
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every node's four members must form a 2x2 brick: their
	// coordinates span extents of exactly 2 in both dims.
	byNode := map[int][][]int{}
	for g := range coords {
		byNode[nodeOf[g]] = append(byNode[nodeOf[g]], coords[g])
	}
	if len(byNode) != 4 {
		t.Fatalf("grid spread over %d nodes, want 4", len(byNode))
	}
	for node, cs := range byNode {
		if len(cs) != 4 {
			t.Fatalf("node %d holds %d grid ranks, want 4", node, len(cs))
		}
		for d := 0; d < 2; d++ {
			lo, hi := cs[0][d], cs[0][d]
			for _, c := range cs {
				if c[d] < lo {
					lo = c[d]
				}
				if c[d] > hi {
					hi = c[d]
				}
			}
			if hi-lo != 1 {
				t.Errorf("node %d: dim %d spans [%d,%d], not a 2-wide brick", node, d, lo, hi)
			}
		}
	}
}

func TestCartReorderFallsBackToIdentity(t *testing.T) {
	// 5 is prime and does not brick-decompose a 2x6 grid's nodes of 5
	// — but here the simpler failure: a 12-rank world, 3-wide grid of
	// volume 9 whose runs over the first 9 ranks are 6 and 3 (unequal)
	// must keep the identity order.
	w := newTestWorld(t, 2, 6)
	err := w.Run(func(p *Proc) error {
		cart, err := p.CommWorld().CartCreate([]int{3, 3}, []bool{true, true}, true)
		if err != nil {
			return err
		}
		if p.Rank() >= 9 {
			if cart != nil {
				t.Errorf("rank %d beyond the grid got a communicator", p.Rank())
			}
			return nil
		}
		if cart.Rank() != p.Rank() {
			t.Errorf("rank %d: fallback reorder moved it to %d", p.Rank(), cart.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistGraphCreateAdjacentRing(t *testing.T) {
	w := newTestWorld(t, 1, 6)
	err := w.Run(func(p *Proc) error {
		n := p.Size()
		left, right := (p.Rank()-1+n)%n, (p.Rank()+1)%n
		g, err := p.CommWorld().DistGraphCreateAdjacent([]int{left, right}, []int{right, left}, false)
		if err != nil {
			return err
		}
		in, out, ok := g.Neighborhood()
		if !ok {
			t.Fatalf("rank %d: no neighborhood on a graph comm", p.Rank())
		}
		if len(in) != 2 || in[0].Peer != left || in[1].Peer != right {
			t.Errorf("rank %d: in-neighbors %v", p.Rank(), in)
		}
		if len(out) != 2 || out[0].Peer != right || out[1].Peer != left {
			t.Errorf("rank %d: out-neighbors %v", p.Rank(), out)
		}
		if g.IsCart() {
			t.Errorf("rank %d: graph comm claims a Cartesian topology", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistGraphCreateAssemblesUnionSorted(t *testing.T) {
	w := newTestWorld(t, 1, 6)
	err := w.Run(func(p *Proc) error {
		// Rank 0 contributes the whole star 0 <-> r for every r; the
		// others contribute nothing. Everyone must still see the
		// assembled adjacency, sorted by peer.
		var sources, degrees, destinations []int
		if p.Rank() == 0 {
			for r := 1; r < p.Size(); r++ {
				sources = append(sources, 0, r)
				degrees = append(degrees, 1, 1)
				destinations = append(destinations, r, 0)
			}
		}
		g, err := p.CommWorld().DistGraphCreate(sources, degrees, destinations, false)
		if err != nil {
			return err
		}
		in, out, _ := g.Neighborhood()
		if p.Rank() == 0 {
			if len(in) != 5 || len(out) != 5 {
				t.Fatalf("rank 0: degree %d/%d, want 5/5", len(in), len(out))
			}
			for i := range in {
				if in[i].Peer != i+1 || out[i].Peer != i+1 {
					t.Errorf("rank 0: slot %d peers %d/%d, want %d (sorted)", i, in[i].Peer, out[i].Peer, i+1)
				}
			}
		} else {
			if len(in) != 1 || in[0].Peer != 0 || len(out) != 1 || out[0].Peer != 0 {
				t.Errorf("rank %d: adjacency %v/%v, want spoke to 0", p.Rank(), in, out)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
