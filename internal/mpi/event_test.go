package mpi

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// The discrete-event backend must be observationally identical to the
// goroutine backend: every virtual clock bit-identical on every
// workload, aborts delivered, worlds re-runnable across engine
// switches without leaking pooled records. These tests drive the same
// bodies through both engines and diff the full per-rank clock vector.

// mixedBody exercises every park site the event scheduler converted:
// blocking Sendrecv (eager and rendezvous), crossed Isend/Irecv with
// Wait and with a Test polling loop (the yield path), the dissemination
// barrier, a nonblocking schedule driven by Test (Sched.poll's yield
// path) and a clock fusion.
func mixedBody(iters int) func(p *Proc) error {
	return func(p *Proc) error {
		c := p.CommWorld()
		n := c.Size()
		rank := c.Rank()
		right, left := (rank+1)%n, (rank-1+n)%n
		for i := 0; i < iters; i++ {
			p.Compute(500)
			if _, err := c.Sendrecv(Sized(64+i*8), right, 7, Sized(64+i*8), left, 7); err != nil {
				return err
			}
			rq, err := c.Irecv(Sized(32), left, 8)
			if err != nil {
				return err
			}
			sq, err := c.Isend(Sized(32), right, 8)
			if err != nil {
				return err
			}
			if err := Waitall(rq, sq); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		// Rendezvous pair completed through a Test polling loop: on the
		// single-threaded engine the loop must hand control off (yield)
		// or the partner could never post its matching operation.
		big := Sized(1 << 20)
		rq, err := c.Irecv(big, left, 9)
		if err != nil {
			return err
		}
		sq, err := c.Isend(big, right, 9)
		if err != nil {
			return err
		}
		for {
			ok, _, err := rq.Test()
			if err != nil {
				return err
			}
			if ok {
				break
			}
		}
		if _, err := sq.Wait(); err != nil {
			return err
		}
		// Nonblocking schedule overlapped with local compute, driven by
		// Test to completion.
		s := c.NewSched([]Round{{Ops: []SchedOp{
			SchedRecv(Sized(128), left, 1),
			SchedSend(Sized(128), right, 1),
		}}})
		if err := s.Start(); err != nil {
			return err
		}
		p.Compute(5000)
		for {
			ok, err := s.Test()
			if err != nil {
				return err
			}
			if ok {
				break
			}
		}
		p.AwaitTime(c.FuseClocks(p.Clock()))
		return nil
	}
}

// perRankClocks runs body on a fresh world and returns every rank's
// final virtual clock.
func perRankClocks(t *testing.T, topo *sim.Topology, e sim.Engine, body func(p *Proc) error, opts ...Option) []sim.Time {
	t.Helper()
	w, err := NewWorld(sim.HazelHenCray(), topo, append([]Option{WithEngine(e)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	clocks := make([]sim.Time, topo.Size())
	for r := range clocks {
		clocks[r] = w.Proc(r).Clock()
	}
	return clocks
}

func diffClocks(t *testing.T, label string, got, want []sim.Time) {
	t.Helper()
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("%s: rank %d clock %d ps, want %d ps", label, r, int64(got[r]), int64(want[r]))
		}
	}
}

func TestEventEngineClocksIdentical(t *testing.T) {
	topo := sim.MustUniform(4, 4)
	want := perRankClocks(t, topo, sim.EngineGoroutine, mixedBody(3))
	got := perRankClocks(t, topo, sim.EngineEvent, mixedBody(3))
	diffClocks(t, "event vs goroutine", got, want)
}

func TestEventEngineClocksIdenticalIrregular(t *testing.T) {
	// Irregular node populations: folding can never apply here
	// (FoldUnit reports 0), but the event engine itself must still
	// reproduce the goroutine timeline exactly.
	topo, err := sim.NewTopology([]int{3, 5, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if topo.FoldUnit() != 0 {
		t.Fatalf("irregular topology reports fold unit %d, want 0", topo.FoldUnit())
	}
	want := perRankClocks(t, topo, sim.EngineGoroutine, mixedBody(2))
	got := perRankClocks(t, topo, sim.EngineEvent, mixedBody(2))
	diffClocks(t, "event vs goroutine (irregular)", got, want)
}

func TestEventEngineAbort(t *testing.T) {
	w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(2, 4), WithEngine(sim.EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			p.Elapse(1)
			p.World().Abort()
			return nil
		}
		// Never satisfied: rank 0 aborts instead of sending. The abort
		// must wake every parked rank (poisoned matcher records plus the
		// scheduler's abort wake), not hang the single-threaded engine.
		_, err := p.CommWorld().Recv(Sized(8), 0, 99)
		return err
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Run after Abort returned %v, want ErrAborted", err)
	}
	if _, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(2, 4), WithEngine(sim.EngineEvent)); err != nil {
		t.Fatalf("fresh world after aborted one: %v", err)
	}
}

// TestEngineSwitchRerun is the re-run satellite: a world must survive
// goroutine -> event -> goroutine engine switches across Runs with
// clocks continuing exactly as if one engine had run throughout, and
// with no coordinator sessions or matcher records left behind by
// either backend.
func TestEngineSwitchRerun(t *testing.T) {
	topo := sim.MustUniform(2, 4)
	ref, err := NewWorld(sim.HazelHenCray(), topo)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	w, err := NewWorld(sim.HazelHenCray(), topo)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	body := mixedBody(2)
	for i, e := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent, sim.EngineGoroutine, sim.EngineEvent} {
		if err := ref.Run(body); err != nil {
			t.Fatal(err)
		}
		w.SetEngine(e)
		if got := w.Engine(); got != e {
			t.Fatalf("run %d: Engine() = %v after SetEngine(%v)", i, got, e)
		}
		if err := w.Run(body); err != nil {
			t.Fatalf("run %d (%v): %v", i, e, err)
		}
		if n := w.coord.sessionCount(); n != 0 {
			t.Fatalf("run %d (%v): %d coordinator sessions still live", i, e, n)
		}
		if n := w.match.pendingRecords(); n != 0 {
			t.Fatalf("run %d (%v): %d matcher records still queued", i, e, n)
		}
		for r := 0; r < topo.Size(); r++ {
			if got, want := w.Proc(r).Clock(), ref.Proc(r).Clock(); got != want {
				t.Fatalf("run %d (%v): rank %d clock %d ps, want %d ps", i, e, r, int64(got), int64(want))
			}
		}
	}
}

// TestEventEngineRunAllocationLean pins the steady-state allocation
// cost of an event-engine Run: dispatch rides the pre-spawned workers
// and pooled matcher records, so repeated Runs must not accumulate
// per-rank state.
func TestEventEngineRunAllocationLean(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(1, 4), WithEngine(sim.EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	body := func(p *Proc) error {
		c := p.CommWorld()
		n := c.Size()
		right, left := (p.Rank()+1)%n, (p.Rank()-1+n)%n
		for i := 0; i < 4; i++ {
			if _, err := c.Sendrecv(Sized(64), right, 7, Sized(64), left, 7); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 32; i++ {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 24 {
		t.Errorf("event-engine Run allocates %.1f objects/op in steady state, want < 24", avg)
	}
}
