package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// foldSafeBody is a workload inside the folding contract: size-only
// payloads, translational cross-unit Sendrecv (ring pattern over the
// whole world), an XOR exchange, in-unit traffic, the dissemination
// barrier and a clock fusion — all rank-symmetric.
func foldSafeBody(iters int) func(p *Proc) error {
	return func(p *Proc) error {
		c := p.CommWorld()
		n := c.Size()
		rank := c.Rank()
		right, left := (rank+1)%n, (rank-1+n)%n
		for i := 0; i < iters; i++ {
			p.Compute(200)
			// Translational ring step crossing unit boundaries.
			if _, err := c.Sendrecv(Sized(96), right, 3, Sized(96), left, 3); err != nil {
				return err
			}
			// XOR exchange at a mask spanning units (n and the unit are
			// powers of two in these tests).
			if _, err := c.Sendrecv(Sized(48), rank^(n/2), 4, Sized(48), rank^(n/2), 4); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		p.AwaitTime(c.FuseClocks(p.Clock()))
		return nil
	}
}

// TestFoldedClocksMatchUnfolded is the core folding guarantee: with
// WithFold(u) only ranks 0..u-1 execute, yet every rank — including
// the non-representative replicas, whose Procs alias their class
// representative — must report exactly the clock the full-width run
// produces. Checked on both engines.
func TestFoldedClocksMatchUnfolded(t *testing.T) {
	topo := sim.MustUniform(4, 4)
	if got := topo.FoldUnit(); got != 4 {
		t.Fatalf("FoldUnit() = %d, want 4", got)
	}
	want := perRankClocks(t, topo, sim.EngineGoroutine, foldSafeBody(3))
	for _, e := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		got := perRankClocks(t, topo, e, foldSafeBody(3), WithFold(4))
		diffClocks(t, "folded "+e.String(), got, want)
	}
}

// TestFoldedWorldExecRanks pins the folded world's bookkeeping: the
// executing set collapses to the unit and replica Procs alias their
// representative.
func TestFoldedWorldExecRanks(t *testing.T) {
	w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(4, 4), WithFold(4))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.FoldUnit(); got != 4 {
		t.Errorf("FoldUnit() = %d, want 4", got)
	}
	if !w.Folded() {
		t.Error("Folded() = false on a folded world")
	}
	if got := w.ExecRanks(); got != 4 {
		t.Errorf("ExecRanks() = %d, want 4", got)
	}
	for r := 0; r < w.Size(); r++ {
		if w.Proc(r) != w.Proc(r%4) {
			t.Errorf("rank %d does not alias representative %d", r, r%4)
		}
	}
}

func TestFoldValidation(t *testing.T) {
	model := sim.HazelHenCray()
	irregular, err := sim.NewTopology([]int{3, 5, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		topo *sim.Topology
		opts []Option
		want string
	}{
		{"negative", sim.MustUniform(4, 4), []Option{WithFold(-1)}, "fold unit"},
		{"irregular", irregular, []Option{WithFold(4)}, "irregular"},
		{"not-multiple", sim.MustUniform(4, 4), []Option{WithFold(3)}, "multiple"},
		{"real-data", sim.MustUniform(4, 4), []Option{WithFold(4), WithRealData()}, "size-only"},
	}
	for _, tc := range cases {
		w, err := NewWorld(model, tc.topo, tc.opts...)
		if err == nil {
			w.Close()
			t.Errorf("%s: NewWorld accepted an invalid fold configuration", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestFoldUnsafeSplit: communicator construction that exchanges across
// a fold-unit boundary cannot be replicated analytically, so it must
// fail the Run with ErrFoldUnsafe instead of computing wrong clocks.
func TestFoldUnsafeSplit(t *testing.T) {
	for _, e := range []sim.Engine{sim.EngineGoroutine, sim.EngineEvent} {
		w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(4, 4), WithEngine(e), WithFold(4))
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(p *Proc) error {
			// Splitting by parity groups ranks across units: the comm
			// spans the world, and Split's plan exchange trips the guard.
			_, err := p.CommWorld().Split(p.Rank()%2, p.Rank())
			return err
		})
		if !errors.Is(err, ErrFoldUnsafe) {
			t.Errorf("%v: Run returned %v, want ErrFoldUnsafe", e, err)
		}
		w.Close()
	}
}

// TestFoldAsymmetryTripwire: a workload whose representatives leave
// unmatched cross-unit traffic behind is not fold-symmetric; the run
// must fail loudly rather than silently drop the messages.
func TestFoldAsymmetryTripwire(t *testing.T) {
	w, err := NewWorld(sim.HazelHenCray(), sim.MustUniform(4, 4), WithEngine(sim.EngineEvent), WithFold(4))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		// Rank-dependent behavior: only rank 0 sends, to a replica rank
		// whose representative posts no matching receive. The eager send
		// completes at post and the message sits in the matcher.
		return p.CommWorld().Send(Sized(8), 5, 11)
	})
	if err == nil || !strings.Contains(err.Error(), "fold-symmetric") {
		t.Errorf("Run returned %v, want a not-fold-symmetric error", err)
	}
}
