package mpi

import (
	"errors"
	"fmt"
)

// Rank-symmetry folding. On a homogeneous topology whose every level
// has uniform group sizes, shifting all ranks by the topology's fold
// unit u (sim.Topology.FoldUnit) maps the machine onto itself. A
// size-only workload whose communication pattern is covariant under
// that shift — ring and recursive-doubling exchanges, dissemination
// barriers, the hierarchical collectives built from them — makes rank
// r+ku behave exactly like rank r, just translated: same operation
// sequence, same costs, same virtual timestamps. Folding exploits
// this: only the u class representatives (ranks 0..u-1) execute; every
// other rank's Proc aliases its representative's, so replica clocks
// need no copying at all, and a 1,048,576-rank world runs (and
// allocates rank state for) only u ranks.
//
// Messages a representative sends across the unit boundary (dst >= u)
// stand for the whole class of translated sends. The matcher routes
// them to the destination's class representative and matches by
// (crossedness, source class, tag) instead of exact source — see
// matcher.accepts in p2p.go for the pairing rule and request.go for
// where replica-destination receives are posted. Costs stay exact:
// each message keeps its original (src, dst) pair, and hop classes are
// translation-invariant on a foldable topology.
//
// The contract, enforced at construction and at run end:
//
//   - the topology must be foldable (FoldUnit() > 0) and the unit a
//     multiple of the topology's period dividing the world size;
//   - the world must be size-only (folding replicates clocks, not
//     payload bytes);
//   - operations that inherently need every rank — generic Split,
//     Setup/SharePlan, window construction on a communicator spanning
//     ranks >= u — panic with ErrFoldUnsafe (recovered as the rank's
//     error) instead of deadlocking;
//   - a workload that is not actually fold-symmetric leaves unmatched
//     message records behind; the end-of-run tripwire turns that into
//     a Run error rather than silently wrong clocks.
//
// Which collective algorithms are shift-covariant (and on which group
// sizes) is knowledge of the algorithm layer: internal/coll marks its
// registry entries and derives safe fold units (coll/fold.go); this
// package only provides the mechanism.

// ErrFoldUnsafe is the sentinel for operations that cannot run under
// rank-symmetry folding because they would require the non-executing
// replica ranks to participate. It is delivered by panic and recovered
// into the offending rank's Run error.
var ErrFoldUnsafe = errors.New("mpi: operation requires ranks outside the fold unit (rank-symmetry folding active)")

// FoldUnit returns the configured fold unit, 0 when the world is
// unfolded.
func (w *World) FoldUnit() int { return w.foldUnit }

// Folded reports whether rank-symmetry folding is active.
func (w *World) Folded() bool { return w.foldUnit > 0 }

// ExecRanks returns the number of ranks that actually execute a Run:
// the fold unit when folding is active, Size() otherwise.
func (w *World) ExecRanks() int { return w.execN }

// validateFold checks the WithFold configuration against the topology
// (called from NewWorld, before any engine state is sized).
func (w *World) validateFold() error {
	u := w.foldUnit
	if u == 0 {
		return nil
	}
	if u < 0 {
		return fmt.Errorf("mpi: negative fold unit %d", u)
	}
	if w.real {
		return errors.New("mpi: rank-symmetry folding requires a size-only world (WithRealData is set)")
	}
	tu := w.topo.FoldUnit()
	if tu == 0 {
		return errors.New("mpi: rank-symmetry folding on an irregular topology (no translation symmetry)")
	}
	if u%tu != 0 {
		return fmt.Errorf("mpi: fold unit %d is not a multiple of the topology's period %d", u, tu)
	}
	if w.topo.Size()%u != 0 {
		return fmt.Errorf("mpi: fold unit %d does not divide the world size %d", u, w.topo.Size())
	}
	return nil
}

// finishFoldedRun is the end-of-Run housekeeping of a folded world.
//
// SetupOnce slots created on communicators spanning ranks >= u can
// never retire on their own: their member countdown starts at the full
// communicator size but only the representatives ever arrive. They are
// wiped here so repeated Runs do not accumulate slots (and do not
// collide with the next Run's identical (ctx, seq) keys).
//
// The matcher tripwire then catches workloads that were not actually
// fold-symmetric: every correct folded run matches all representative
// sends and receives (each crossed send pairs with the translated
// receive its destination's representative posted), so leftover queued
// records mean the pattern was asymmetric and the clocks are not
// trustworthy. That becomes a Run error and poisons the world.
func (w *World) finishFoldedRun(runErr error) error {
	w.setupSlots.Clear()
	if runErr != nil || w.Aborted() {
		return runErr
	}
	if pending := w.match.pendingRecords(); pending > 0 {
		w.Abort()
		return fmt.Errorf("mpi: folded run left %d unmatched message records — workload is not fold-symmetric for unit %d", pending, w.foldUnit)
	}
	return nil
}
