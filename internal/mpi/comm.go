package mpi

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Undefined is the color value that opts a rank out of a Split —
// MPI_UNDEFINED. Split returns a nil *Comm for such ranks, mirroring
// MPI_COMM_NULL (the paper's Fig. 4 pseudo-code checks exactly this to
// distinguish leaders from children).
const Undefined = int(^uint(0) >> 1) // MaxInt

// Comm is a communicator handle local to one rank. Handles on different
// ranks that were created by the same collective call share a context id
// and a rank translation table.
type Comm struct {
	p     *Proc
	ctx   int
	ranks []int // comm rank -> global rank (shared, read-only)
	rank  int   // this process's comm rank
	seq   int   // sequence number for untimed coordination calls
	sched int   // sequence number for nonblocking schedule tag windows

	// collCfg carries the collective-tuning configuration attached to
	// this communicator (opaque here; internal/coll owns the concrete
	// type, which keeps the layering acyclic). Derived communicators
	// inherit it, so hybrid and workload layers see the tuning the
	// world or a parent communicator was configured with.
	collCfg any

	// ctree/cfuser cache the communicator's clock-fusion engine (see
	// coord.go) after the first FuseClocks, so the steady-state fusion
	// path touches no shared maps at all.
	ctree  *clockTree
	cfuser *clockFuser

	// ptopo is the process topology (Cartesian grid or distributed
	// graph) attached by CartCreate / DistGraphCreate, nil on plain
	// communicators. See topo.go.
	ptopo *procTopo

	oneNode int8 // cached single-node test: 0 unknown, 1 yes, -1 no
	hopCl   int8 // cached comm-wide hop class: 0 unknown, else class+1
	foldSz  int  // cached folded member count: 0 unknown (see foldSize)
}

// CommWorld returns this rank's handle on MPI_COMM_WORLD. The handle is
// a per-process singleton: untimed coordination calls (Split, window
// allocation, shm barriers) are sequenced per communicator handle, so
// every call site must observe the same sequence counter.
func (p *Proc) CommWorld() *Comm {
	if p.commWorld == nil {
		p.cw = Comm{p: p, ctx: 0, ranks: p.world.identity, rank: p.rank, collCfg: p.world.collCfg}
		p.commWorld = &p.cw
		p.world.match.reserve(0, p.rank)
	}
	return p.commWorld
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Proc returns the owning process.
func (c *Comm) Proc() *Proc { return c.p }

// Global translates a comm rank to a global (world) rank.
func (c *Comm) Global(rank int) int { return c.ranks[rank] }

// Ranks returns the comm-rank -> global-rank table (do not modify).
func (c *Comm) Ranks() []int { return c.ranks }

// nextSeq issues the next coordination sequence number. Untimed
// collective setup calls (Split, window allocation) must be invoked in
// the same order by every member, which MPI requires anyway.
func (c *Comm) nextSeq() int {
	c.seq++
	return c.seq
}

// exchange performs an untimed allgather of one value per member. It is
// the building block for communicator and window construction — the
// "one-off" operations whose cost the paper explicitly excludes from
// measurements (Sect. 4.1).
//
// Under rank-symmetry folding an exchange can only complete when every
// member executes, so communicators spanning ranks outside the fold
// unit refuse loudly (ErrFoldUnsafe, recovered as the rank's error)
// instead of deadlocking: generic Split, Setup/SharePlan and window
// construction on such communicators are inherently unfoldable.
// Communicators wholly inside the unit — node and tier communicators
// of the hierarchical collectives — exchange normally.
func (c *Comm) exchange(val any) []any {
	w := c.p.world
	if u := w.foldUnit; u > 0 {
		for _, g := range c.ranks {
			if g >= u {
				panic(fmt.Errorf("%w: exchange on a communicator spanning rank %d (fold unit %d)", ErrFoldUnsafe, g, u))
			}
		}
	}
	c.checkFailed()
	key := coordKey{ctx: c.ctx, seq: c.nextSeq()}
	return w.coord.exchange(key, c.p, c.rank, len(c.ranks), val)
}

// Setup performs an untimed allgather of one value per member. It
// exists for "one-off" construction work — communicator metadata,
// window geometry, hierarchy shapes — which the paper's measurements
// explicitly exclude (Sect. 4.1). It must be called collectively and in
// the same order by all members, like every MPI setup call.
func (c *Comm) Setup(val any) []any { return c.exchange(val) }

// SharePlan runs the "rank 0 computes, everyone shares" setup pattern
// used by communicator construction at scale: every member contributes
// val (an untimed allgather, like Setup); comm rank 0 derives a plan
// from the full contribution vector; every member receives the same
// plan to use read-only. A nil plan from build signals a validation
// failure and surfaces as an error on every member (rank 0 may keep a
// more precise error of its own). Like Setup, SharePlan must be called
// collectively and in the same order by all members.
func SharePlan[T any](c *Comm, val any, build func(vals []any) *T) (*T, error) {
	vals := c.exchange(val)
	var plan *T
	if c.rank == 0 {
		plan = build(vals)
	}
	published := c.exchange(plan)
	plan, _ = published[0].(*T)
	if plan == nil {
		return nil, fmt.Errorf("mpi: setup plan rejected by comm rank 0")
	}
	return plan, nil
}

// FuseClocks performs an untimed max-reduction of the members' virtual
// clocks. It is the repeatedly-invoked core of the shared-memory
// synchronization primitives (flag barriers, epoch counters), so it
// avoids the session machinery entirely: each communicator context
// owns a persistent fusion engine, cached on the handle — a pooled
// counter cell for small communicators, a binary channel tree for
// large ones (see coord.go). No per-call session key is needed — but
// like every collective, all members must call FuseClocks in the same
// order. The timed cost of the modeled synchronization is charged by
// the caller.
func (c *Comm) FuseClocks(t sim.Time) sim.Time {
	w := c.p.world
	n := len(c.ranks)
	folded := w.foldUnit > 0
	if folded {
		// Only the class representatives execute, and every replica's
		// clock is (by construction) its representative's, so the max
		// over the representative members equals the max over all
		// members. The fuser just has to count representatives.
		n = c.foldSize()
	}
	if n == 1 {
		return t
	}
	hasFail := w.hasFailures()
	if hasFail {
		c.checkFailed()
	}
	if folded || w.evLive || hasFail || n < clockTreeMin {
		// The channel tree cannot serve folded comms (missing members
		// would strand its edges), the event engine (its mid-tree
		// parks are plain channel receives the scheduler cannot see),
		// or failure configs (the tree cannot be woken rank-selectively
		// by the death walk), so all three use the counter cell, which
		// parks through the scheduler in event mode and is poisoned
		// per-context by coordinator.failRank.
		if c.cfuser == nil {
			c.cfuser = w.coord.clockFuser(c.ctx)
		}
		var failed func() bool
		if hasFail {
			failed = c.deadCheck
		}
		return c.cfuser.fuse(c.p, n, t, failed)
	}
	if c.ctree == nil {
		c.ctree = w.coord.clockTree(c.ctx, n)
	}
	return c.ctree.fuse(c.rank, t, w.abortCh)
}

// foldSize counts the communicator members that execute under folding
// (global rank below the fold unit), cached on the handle.
func (c *Comm) foldSize() int {
	if c.foldSz == 0 {
		u := c.p.world.foldUnit
		k := 0
		for _, g := range c.ranks {
			if g < u {
				k++
			}
		}
		c.foldSz = k
	}
	return c.foldSz
}

type splitEntry struct {
	color, key, globalRank, commRank int
}

// splitGroup is one color's new communicator shape: the context id and
// the comm-rank -> global-rank table, shared read-only by all members.
type splitGroup struct {
	ctx   int
	ranks []int
}

// splitPlan is the full partition of one Split call. Parent comm rank 0
// computes it once and publishes it; every other member only performs
// two O(1) lookups. (The seed implementation had every rank rebuild and
// re-sort the whole partition, which dominated setup wall-clock time at
// Fig. 9 scale — 1536 ranks each doing O(n log n) work per Split.)
type splitPlan struct {
	groups []*splitGroup
	byComm []int32 // parent comm rank -> group index, -1 for Undefined
	rankIn []int32 // parent comm rank -> rank within the new group
}

// buildSplitPlan groups the exchanged entries by color (ordering each
// group by key, then parent rank — MPI_Comm_split) and allocates one
// context id per color in ascending color order, exactly the assignment
// order the per-rank implementation used.
func (w *World) buildSplitPlan(vals []any) *splitPlan {
	n := len(vals)
	entries := make([]splitEntry, 0, n)
	for _, v := range vals {
		if e := v.(splitEntry); e.color != Undefined {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.color != b.color {
			return a.color < b.color
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.commRank < b.commRank
	})

	plan := &splitPlan{byComm: make([]int32, n), rankIn: make([]int32, n)}
	for i := range plan.byComm {
		plan.byComm[i] = -1
	}
	for i := 0; i < len(entries); {
		j := i
		for j < len(entries) && entries[j].color == entries[i].color {
			j++
		}
		g := &splitGroup{ctx: w.newContext(), ranks: make([]int, j-i)}
		gi := int32(len(plan.groups))
		for k := i; k < j; k++ {
			g.ranks[k-i] = entries[k].globalRank
			plan.byComm[entries[k].commRank] = gi
			plan.rankIn[entries[k].commRank] = int32(k - i)
		}
		plan.groups = append(plan.groups, g)
		i = j
	}
	return plan
}

// Split partitions the communicator by color, ordering each new group
// by (key, parent rank) — MPI_Comm_split. Ranks passing Undefined
// receive nil.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Comm rank 0 computes the whole partition (group tables and
	// context ids, which must be identical across members) and
	// publishes it; everyone else just looks itself up.
	plan, err := SharePlan(c,
		splitEntry{color: color, key: key, globalRank: c.p.rank, commRank: c.rank},
		c.p.world.buildSplitPlan)
	if err != nil {
		return nil, err
	}

	gi := plan.byComm[c.rank]
	if gi < 0 {
		if color != Undefined {
			return nil, fmt.Errorf("mpi: rank %d missing from its own split group", c.p.rank)
		}
		return nil, nil
	}
	g := plan.groups[gi]
	// Preallocate this rank's receive-side match queue for the new
	// context so first use of the communicator doesn't allocate.
	c.p.world.match.reserve(g.ctx, c.p.rank)
	c.p.world.registerComm(g.ctx, g.ranks)
	return &Comm{p: c.p, ctx: g.ctx, ranks: g.ranks, rank: int(plan.rankIn[c.rank]), collCfg: c.collCfg}, nil
}

// CollConfig returns the collective-tuning configuration attached to
// this communicator handle (nil when unset). internal/coll owns the
// concrete type.
func (c *Comm) CollConfig() any { return c.collCfg }

// SetCollConfig attaches a collective-tuning configuration to this
// handle. Communicators split off afterwards inherit it. Like every
// property that influences collective algorithm choice, all members of
// a communicator must configure the same value, or collective calls
// mix algorithms and deadlock.
func (c *Comm) SetCollConfig(v any) { c.collCfg = v }

// SingleNode reports whether every member of the communicator lives on
// one node (cached after the first call).
func (c *Comm) SingleNode() bool { return c.isSingleNode() }

// HopClass returns the hop class that dominates traffic on this
// communicator: the class of the innermost topology level containing
// every member, HopNet when the members share no declared level. On a
// node-level-only topology this is exactly the historical
// single-node-means-shm / otherwise-net classification. Cached after
// the first call.
func (c *Comm) HopClass() sim.HopClass {
	if c.hopCl == 0 {
		topo := c.p.world.topo
		class := sim.HopNet
		for l := 0; l < topo.NumLevels(); l++ {
			g := topo.GroupOf(l, c.ranks[0])
			same := true
			for _, r := range c.ranks[1:] {
				if topo.GroupOf(l, r) != g {
					same = false
					break
				}
			}
			if same {
				class = topo.LevelClass(l)
				break
			}
		}
		c.hopCl = int8(class) + 1
	}
	return sim.HopClass(c.hopCl - 1)
}

// SplitLevel splits the communicator into one group per level-l
// topology group, the level-indexed generalization of
// MPI_Comm_split_type: every member lands in the communicator of its
// numa domain, socket, node or network group, ordered by parent rank.
//
// The partition is fully determined by the topology and the parent's
// rank table, so no exchange runs: the shape comes from the cross-world
// geometry cache and one member assigns the context ids (derive.go).
// The result is member-for-member identical to the generic
// Split(GroupOf(l, rank), rank).
func (c *Comm) SplitLevel(l int) (*Comm, error) {
	topo := c.p.world.topo
	if l < 0 || l >= topo.NumLevels() {
		return nil, fmt.Errorf("mpi: SplitLevel(%d) on a %d-level topology", l, topo.NumLevels())
	}
	return c.splitLevelDerived(l)
}

// SplitTypeShared splits the communicator into shared-memory groups, one
// per node — MPI_Comm_split_type(MPI_COMM_TYPE_SHARED). This is the
// first step of the paper's hierarchical communicator setup (Fig. 1a).
func (c *Comm) SplitTypeShared() (*Comm, error) {
	return c.SplitLevel(c.p.world.topo.NodeLevel())
}

// SplitLeaders builds the leader communicator over a sub-communicator
// partition: the lowest rank of each sub group joins, everyone else
// gets nil. sub must be a communicator obtained by splitting this one
// (SplitLevel / SplitTypeShared), and the call is collective over this
// communicator's members.
func (c *Comm) SplitLeaders(sub *Comm) (*Comm, error) {
	color := Undefined
	if sub.Rank() == 0 {
		color = 0
	}
	return c.Split(color, c.rank)
}

// SplitBridge builds the paper's bridge communicator (Fig. 2): the
// lowest rank of each shared-memory group becomes a leader; leaders form
// the bridge, everyone else gets nil.
func (c *Comm) SplitBridge(nodeComm *Comm) (*Comm, error) {
	return c.SplitLeaders(nodeComm)
}

// Dup duplicates the communicator with a fresh context (MPI_Comm_dup),
// isolating its traffic from the parent's.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}
