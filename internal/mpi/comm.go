package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// Undefined is the color value that opts a rank out of a Split —
// MPI_UNDEFINED. Split returns a nil *Comm for such ranks, mirroring
// MPI_COMM_NULL (the paper's Fig. 4 pseudo-code checks exactly this to
// distinguish leaders from children).
const Undefined = int(^uint(0) >> 1) // MaxInt

// Comm is a communicator handle local to one rank. Handles on different
// ranks that were created by the same collective call share a context id
// and a rank translation table.
type Comm struct {
	p     *Proc
	ctx   int
	ranks []int // comm rank -> global rank (shared, read-only)
	rank  int   // this process's comm rank
	seq   int   // sequence number for untimed coordination calls

	oneNode int8 // cached single-node test: 0 unknown, 1 yes, -1 no
}

// CommWorld returns this rank's handle on MPI_COMM_WORLD. The handle is
// a per-process singleton: untimed coordination calls (Split, window
// allocation, shm barriers) are sequenced per communicator handle, so
// every call site must observe the same sequence counter.
func (p *Proc) CommWorld() *Comm {
	if p.commWorld == nil {
		p.commWorld = &Comm{p: p, ctx: 0, ranks: p.world.identity, rank: p.rank}
	}
	return p.commWorld
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Proc returns the owning process.
func (c *Comm) Proc() *Proc { return c.p }

// Global translates a comm rank to a global (world) rank.
func (c *Comm) Global(rank int) int { return c.ranks[rank] }

// Ranks returns the comm-rank -> global-rank table (do not modify).
func (c *Comm) Ranks() []int { return c.ranks }

// nextSeq issues the next coordination sequence number. Untimed
// collective setup calls (Split, window allocation) must be invoked in
// the same order by every member, which MPI requires anyway.
func (c *Comm) nextSeq() int {
	c.seq++
	return c.seq
}

// exchange performs an untimed allgather of one value per member. It is
// the building block for communicator and window construction — the
// "one-off" operations whose cost the paper explicitly excludes from
// measurements (Sect. 4.1).
func (c *Comm) exchange(val any) []any {
	key := coordKey{ctx: c.ctx, seq: c.nextSeq()}
	return c.p.world.coord.exchange(key, c.rank, len(c.ranks), val, c.p.world.abortCh)
}

// Setup performs an untimed allgather of one value per member. It
// exists for "one-off" construction work — communicator metadata,
// window geometry, hierarchy shapes — which the paper's measurements
// explicitly exclude (Sect. 4.1). It must be called collectively and in
// the same order by all members, like every MPI setup call.
func (c *Comm) Setup(val any) []any { return c.exchange(val) }

type splitEntry struct {
	color, key, globalRank, commRank int
}

// Split partitions the communicator by color, ordering each new group
// by (key, parent rank) — MPI_Comm_split. Ranks passing Undefined
// receive nil.
func (c *Comm) Split(color, key int) (*Comm, error) {
	vals := c.exchange(splitEntry{color: color, key: key, globalRank: c.p.rank, commRank: c.rank})

	// Collect the distinct colors in deterministic order so every
	// member assigns the same context ids.
	entries := make([]splitEntry, 0, len(vals))
	colorSet := map[int]bool{}
	var colors []int
	for _, v := range vals {
		e := v.(splitEntry)
		entries = append(entries, e)
		if e.color != Undefined && !colorSet[e.color] {
			colorSet[e.color] = true
			colors = append(colors, e.color)
		}
	}
	sort.Ints(colors)

	// Comm rank 0 allocates a context id per color and publishes the
	// assignment; ids must be identical across members.
	var ctxByColor map[int]int
	if c.rank == 0 {
		ctxByColor = make(map[int]int, len(colors))
		for _, col := range colors {
			ctxByColor[col] = c.p.world.newContext()
		}
	}
	published := c.exchange(ctxByColor)
	ctxByColor, _ = published[0].(map[int]int)
	if ctxByColor == nil && len(colors) > 0 {
		return nil, fmt.Errorf("mpi: Split context assignment missing")
	}

	if color == Undefined {
		return nil, nil
	}
	group := make([]splitEntry, 0, len(entries))
	for _, e := range entries {
		if e.color == color {
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].commRank < group[j].commRank
	})
	ranks := make([]int, len(group))
	myRank := -1
	for i, e := range group {
		ranks[i] = e.globalRank
		if e.globalRank == c.p.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("mpi: rank %d missing from its own split group", c.p.rank)
	}
	return &Comm{p: c.p, ctx: ctxByColor[color], ranks: ranks, rank: myRank}, nil
}

// SplitTypeShared splits the communicator into shared-memory groups, one
// per node — MPI_Comm_split_type(MPI_COMM_TYPE_SHARED). This is the
// first step of the paper's hierarchical communicator setup (Fig. 1a).
func (c *Comm) SplitTypeShared() (*Comm, error) {
	return c.Split(c.p.Node(), c.rank)
}

// SplitBridge builds the paper's bridge communicator (Fig. 2): the
// lowest rank of each shared-memory group becomes a leader; leaders form
// the bridge, everyone else gets nil.
func (c *Comm) SplitBridge(nodeComm *Comm) (*Comm, error) {
	color := Undefined
	if nodeComm.Rank() == 0 {
		color = 0
	}
	return c.Split(color, c.rank)
}

// Dup duplicates the communicator with a fresh context (MPI_Comm_dup),
// isolating its traffic from the parent's.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}

// coordinator implements the untimed rendezvous used by exchange.
type coordKey struct{ ctx, seq int }

type coordSession struct {
	vals      []any
	remaining int
	released  int
	done      chan struct{}
}

type coordinator struct {
	mu       sync.Mutex
	sessions map[coordKey]*coordSession
}

func newCoordinator() *coordinator {
	return &coordinator{sessions: map[coordKey]*coordSession{}}
}

// exchange blocks until all size members of the (ctx, seq) session have
// contributed, then returns the full contribution vector to each. If
// the job aborts while waiting, exchange panics with ErrAborted; the
// panic is recovered by World.Run and reported as the rank's error.
func (co *coordinator) exchange(key coordKey, rank, size int, val any, abort <-chan struct{}) []any {
	co.mu.Lock()
	s := co.sessions[key]
	if s == nil {
		s = &coordSession{vals: make([]any, size), remaining: size, done: make(chan struct{})}
		co.sessions[key] = s
	}
	s.vals[rank] = val
	s.remaining--
	if s.remaining == 0 {
		close(s.done)
	}
	co.mu.Unlock()

	select {
	case <-s.done:
	case <-abort:
		panic(ErrAborted)
	}

	co.mu.Lock()
	s.released++
	if s.released == size {
		delete(co.sessions, key)
	}
	co.mu.Unlock()
	return s.vals
}
