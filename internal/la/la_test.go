package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(1, 2) != 6 {
		t.Error("Set/Add/At broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 6 {
		t.Error("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero broken")
	}
}

func TestFromRowsAndT(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.T()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Error("transpose wrong")
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("empty FromRows broken")
	}
}

func TestEyeScaleAddMat(t *testing.T) {
	e := Eye(3).Scale(2)
	if e.At(1, 1) != 2 || e.At(0, 1) != 0 {
		t.Error("Eye/Scale broken")
	}
	if err := e.AddMat(Eye(3)); err != nil {
		t.Fatal(err)
	}
	if e.At(2, 2) != 3 {
		t.Error("AddMat broken")
	}
	if err := e.AddMat(NewMat(2, 2)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestGemm(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMat(2, 2)
	if err := Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	// Accumulation semantics: a second Gemm doubles the result.
	if err := Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 38 {
		t.Error("Gemm does not accumulate")
	}
	if err := Gemm(NewMat(2, 3), a, b); err == nil {
		t.Error("bad shapes accepted")
	}
	if GemmFlops(2, 3, 4) != 48 {
		t.Error("GemmFlops wrong")
	}
}

func TestGemmAssociativityProperty(t *testing.T) {
	// (A*B)*x == A*(B*x) for random small matrices.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a, b := NewMat(n, n), NewMat(n, n)
		x := make([]float64, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ab := NewMat(n, n)
		if err := Gemm(ab, a, b); err != nil {
			t.Fatal(err)
		}
		lhs, err := MulVec(ab, x)
		if err != nil {
			t.Fatal(err)
		}
		bx, _ := MulVec(b, x)
		rhs, _ := MulVec(a, bx)
		for i := range lhs {
			if !almostEq(lhs[i], rhs[i], 1e-9*(1+math.Abs(lhs[i]))) {
				t.Fatalf("trial %d: (AB)x != A(Bx) at %d: %v vs %v", trial, i, lhs[i], rhs[i])
			}
		}
	}
}

func TestMulVecErrors(t *testing.T) {
	if _, err := MulVec(NewMat(2, 3), []float64{1}); err == nil {
		t.Error("bad vector length accepted")
	}
}

func TestSyrk(t *testing.T) {
	c := NewMat(2, 2)
	if err := SyrkUpper(c, []float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 4 || c.At(0, 1) != 6 || c.At(1, 1) != 9 {
		t.Error("Syrk wrong")
	}
	if err := SyrkUpper(c, []float64{1}); err == nil {
		t.Error("bad vector accepted")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		// Build SPD A = M Mᵀ + n*I.
		m := NewMat(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := NewMat(n, n)
		if err := Gemm(a, m, m.T()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// L Lᵀ must reproduce A.
		back := NewMat(n, n)
		if err := Gemm(back, l, l.T()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(back.At(i, j), a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					t.Fatalf("trial %d: LLt != A at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejects(t *testing.T) {
	if _, err := Cholesky(NewMat(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	neg, _ := FromRows([][]float64{{-1}})
	if _, err := Cholesky(neg); err == nil {
		t.Error("negative-definite accepted")
	}
}

func TestSolveSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Check A x == b.
	ax, _ := MulVec(a, x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-12) {
			t.Errorf("Ax[%d] = %v, want %v", i, ax[i], b[i])
		}
	}
}

func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := NewMat(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := NewMat(n, n)
		_ = Gemm(a, m, m.T())
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		ax, _ := MulVec(a, x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-7*(1+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSolveErrors(t *testing.T) {
	l := Eye(2)
	if _, err := SolveLower(l, []float64{1}); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := SolveUpperT(l, []float64{1}); err == nil {
		t.Error("bad length accepted")
	}
	sing := NewMat(1, 1)
	if _, err := SolveLower(sing, []float64{1}); err == nil {
		t.Error("singular accepted")
	}
	if _, err := SolveUpperT(sing, []float64{1}); err == nil {
		t.Error("singular accepted")
	}
}

func TestSampleMVNMoments(t *testing.T) {
	// Sample mean and covariance should approach the parameters.
	mean := []float64{1, -2}
	cov, _ := FromRows([][]float64{{2, 0.5}, {0.5, 1}})
	rng := rand.New(rand.NewSource(42))
	const nSamp = 20000
	sum := make([]float64, 2)
	cc := NewMat(2, 2)
	for s := 0; s < nSamp; s++ {
		x, err := SampleMVN(mean, cov, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := []float64{x[0] - mean[0], x[1] - mean[1]}
		sum[0] += x[0]
		sum[1] += x[1]
		_ = SyrkUpper(cc, d)
	}
	for i := range mean {
		if !almostEq(sum[i]/nSamp, mean[i], 0.05) {
			t.Errorf("sample mean[%d] = %v, want ~%v", i, sum[i]/nSamp, mean[i])
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(cc.At(i, j)/nSamp, cov.At(i, j), 0.08) {
				t.Errorf("sample cov[%d][%d] = %v, want ~%v", i, j, cc.At(i, j)/nSamp, cov.At(i, j))
			}
		}
	}
}

func TestSampleWishartMean(t *testing.T) {
	// E[Wishart(S, dof)] = dof * S.
	scale, _ := FromRows([][]float64{{0.5, 0.1}, {0.1, 0.3}})
	const dof = 10
	rng := rand.New(rand.NewSource(9))
	mean := NewMat(2, 2)
	const nSamp = 4000
	for s := 0; s < nSamp; s++ {
		w, err := SampleWishart(scale, dof, rng)
		if err != nil {
			t.Fatal(err)
		}
		_ = mean.AddMat(w)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := dof * scale.At(i, j)
			got := mean.At(i, j) / nSamp
			if !almostEq(got, want, 0.25) {
				t.Errorf("Wishart mean[%d][%d] = %v, want ~%v", i, j, got, want)
			}
		}
	}
	if _, err := SampleWishart(scale, 1, rng); err == nil {
		t.Error("dof < dim accepted")
	}
}

func TestSampleMVNDeterministicPerSeed(t *testing.T) {
	mean := []float64{0, 0, 0}
	cov := Eye(3)
	a, _ := SampleMVN(mean, cov, rand.New(rand.NewSource(5)))
	b, _ := SampleMVN(mean, cov, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Error("MVN sampling not reproducible per seed")
		}
	}
}
