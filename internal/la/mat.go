// Package la provides the dense linear-algebra kernels the application
// benchmarks need (SUMMA's block multiply; BPMF's Cholesky-based
// multivariate-normal sampling), replacing the Eigen library the paper's
// BPMF code links against. Matrices are small and dense, stored
// row-major.
package la

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: NewMat(%d, %d)", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) (*Mat, error) {
	if len(rows) == 0 {
		return NewMat(0, 0), nil
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("la: row %d has %d entries, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Eye returns the n x n identity.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Scale multiplies every element by s in place and returns m.
func (m *Mat) Scale(s float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMat accumulates a into m element-wise (in place); dimensions must
// match.
func (m *Mat) AddMat(a *Mat) error {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		return fmt.Errorf("la: AddMat shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, a.Rows, a.Cols)
	}
	for i := range m.Data {
		m.Data[i] += a.Data[i]
	}
	return nil
}

// Gemm computes C += A * B (naive triple loop with ikj order for cache
// friendliness). Returns an error on dimension mismatch.
func Gemm(c, a, b *Mat) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("la: Gemm shapes %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return nil
}

// GemmFlops returns the flop count of a gemm of the given shape
// (2*m*n*k), used to charge virtual compute time.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// MulVec computes y = A x.
func MulVec(a *Mat, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("la: MulVec %dx%d with %d-vector", a.Rows, a.Cols, len(x))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// SyrkUpper computes C += x xᵀ for a vector x (rank-1 update, full
// storage but symmetric content).
func SyrkUpper(c *Mat, x []float64) error {
	if c.Rows != len(x) || c.Cols != len(x) {
		return fmt.Errorf("la: Syrk %dx%d with %d-vector", c.Rows, c.Cols, len(x))
	}
	for i := range x {
		for j := range x {
			c.Add(i, j, x[i]*x[j])
		}
	}
	return nil
}

// ErrNotSPD is returned when a Cholesky factorization meets a
// non-positive pivot.
var ErrNotSPD = errors.New("la: matrix not symmetric positive definite")

// Cholesky factors SPD A = L Lᵀ, returning lower-triangular L.
func Cholesky(a *Mat) (*Mat, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: Cholesky of %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotSPD, i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L y = b for lower-triangular L.
func SolveLower(l *Mat, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("la: SolveLower %dx%d with %d-vector", n, l.Cols, len(b))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("la: singular triangular factor at %d", i)
		}
		y[i] = s / d
	}
	return y, nil
}

// SolveUpperT solves Lᵀ x = y given lower-triangular L.
func SolveUpperT(l *Mat, y []float64) ([]float64, error) {
	n := l.Rows
	if len(y) != n {
		return nil, fmt.Errorf("la: SolveUpperT %dx%d with %d-vector", n, l.Cols, len(y))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("la: singular triangular factor at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveSPD solves A x = b for SPD A via Cholesky.
func SolveSPD(a *Mat, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y, err := SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	return SolveUpperT(l, y)
}

// InvSPD inverts an SPD matrix via Cholesky (column-by-column solves).
func InvSPD(a *Mat) (*Mat, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMat(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		y, err := SolveLower(l, e)
		if err != nil {
			return nil, err
		}
		x, err := SolveUpperT(l, y)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	return inv, nil
}

// SampleMVN draws x ~ N(mean, cov) using the Cholesky factor of cov:
// x = mean + L z with z standard normal.
func SampleMVN(mean []float64, cov *Mat, rng *rand.Rand) ([]float64, error) {
	l, err := Cholesky(cov)
	if err != nil {
		return nil, err
	}
	return SampleMVNChol(mean, l, rng), nil
}

// SampleMVNChol draws x = mean + L z for a precomputed Cholesky factor.
func SampleMVNChol(mean []float64, l *Mat, rng *rand.Rand) []float64 {
	n := len(mean)
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := mean[i]
		for k := 0; k <= i; k++ {
			s += l.At(i, k) * z[k]
		}
		x[i] = s
	}
	return x
}

// SampleWishart draws W ~ Wishart(scale, dof) with the Bartlett
// decomposition: W = L A Aᵀ Lᵀ where scale = L Lᵀ, A lower with
// chi-distributed diagonal and standard-normal subdiagonal.
func SampleWishart(scale *Mat, dof int, rng *rand.Rand) (*Mat, error) {
	n := scale.Rows
	if dof < n {
		return nil, fmt.Errorf("la: Wishart dof %d < dim %d", dof, n)
	}
	l, err := Cholesky(scale)
	if err != nil {
		return nil, err
	}
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		// chi_k draw via sum of squares of k normals (k is small).
		k := dof - i
		s := 0.0
		for t := 0; t < k; t++ {
			z := rng.NormFloat64()
			s += z * z
		}
		a.Set(i, i, math.Sqrt(s))
		for j := 0; j < i; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	la_ := NewMat(n, n)
	if err := Gemm(la_, l, a); err != nil {
		return nil, err
	}
	w := NewMat(n, n)
	if err := Gemm(w, la_, la_.T()); err != nil {
		return nil, err
	}
	return w, nil
}
