package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1_000_000*Picosecond {
		t.Fatalf("Microsecond = %d ps, want 1e6", int64(Microsecond))
	}
	if got := (2500 * Nanosecond).Us(); got != 2.5 {
		t.Errorf("2500ns = %vus, want 2.5", got)
	}
	if got := FromUs(3.25); got != 3250*Nanosecond {
		t.Errorf("FromUs(3.25) = %v, want 3.25us", got)
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v, want 1ms", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5 * Picosecond, "5ps"},
		{2 * Microsecond, "2.00us"},
		{150 * Microsecond, "150.0us"},
		{3 * Millisecond, "3.00ms"},
		{12 * Second, "12.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d ps).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMaxMinTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime broken")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime broken")
	}
}

func TestProfilesValidate(t *testing.T) {
	for name, mk := range Profiles() {
		m := mk()
		if err := m.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("profile registered as %q names itself %q", name, m.Name)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CostModel)
	}{
		{"negative net beta", func(m *CostModel) { m.NetBetaPsPerByte = -1 }},
		{"negative alpha", func(m *CostModel) { m.ShmAlpha = -Nanosecond }},
		{"zero saturation", func(m *CostModel) { m.MemSaturation = 0 }},
		{"zero flops", func(m *CostModel) { m.FlopsPerSecond = 0 }},
		{"negative eager", func(m *CostModel) { m.EagerLimit = -1 }},
	}
	for _, c := range cases {
		m := Laptop()
		c.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken model", c.name)
		}
	}
	var nilModel *CostModel
	if err := nilModel.Validate(); err == nil {
		t.Error("Validate accepted nil model")
	}
}

func TestHopClassOrdering(t *testing.T) {
	// The whole reproduction rests on shm hops being cheaper than net
	// hops, and memory copies being cheaper than shm transfers.
	for name, mk := range Profiles() {
		m := mk()
		const n = 4096
		if m.XferCost(HopShm, n) >= m.XferCost(HopNet, n) {
			t.Errorf("%s: shm transfer not cheaper than net", name)
		}
		if m.CopyCost(n, 1) >= m.XferCost(HopShm, n) {
			t.Errorf("%s: local copy not cheaper than shm transfer", name)
		}
	}
}

func TestXferCostLinear(t *testing.T) {
	m := HazelHenCray()
	base := m.XferCost(HopNet, 0)
	if base != m.NetAlpha {
		t.Fatalf("zero-byte transfer = %v, want alpha %v", base, m.NetAlpha)
	}
	c1 := m.XferCost(HopNet, 1000)
	c2 := m.XferCost(HopNet, 2000)
	if c2-c1 != c1-base {
		t.Errorf("transfer cost not linear: %v %v %v", base, c1, c2)
	}
	if m.XferCost(HopNet, -5) != base {
		t.Errorf("negative sizes should clamp to alpha")
	}
}

func TestCopyCostContention(t *testing.T) {
	m := HazelHenCray()
	const n = 1 << 20
	flat := m.CopyCost(n, 1)
	if m.CopyCost(n, m.MemSaturation) != flat {
		t.Errorf("copy cost should stay flat up to saturation")
	}
	over := m.CopyCost(n, 2*m.MemSaturation)
	if over <= flat {
		t.Errorf("copy cost should grow past saturation: %v <= %v", over, flat)
	}
	if m.CopyCost(0, 1) != m.MemAlpha {
		t.Errorf("zero-byte copy should cost MemAlpha")
	}
	if m.CopyCost(n, 0) != flat {
		t.Errorf("concurrency 0 should clamp to 1")
	}
}

func TestComputeCost(t *testing.T) {
	m := HazelHenCray()
	if m.ComputeCost(0) != 0 || m.ComputeCost(-10) != 0 {
		t.Error("non-positive flops should cost zero")
	}
	// One second worth of flops should cost one virtual second.
	if got := m.ComputeCost(m.FlopsPerSecond); got != Second {
		t.Errorf("ComputeCost(rate) = %v, want 1s", got)
	}
}

func TestCopyCostMonotone(t *testing.T) {
	m := VulcanOpenMPI()
	f := func(a, b uint16, conc uint8) bool {
		n1, n2 := int(a), int(a)+int(b)
		c := int(conc%16) + 1
		return m.CopyCost(n1, c) <= m.CopyCost(n2, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXferCostMonotoneInSizeAndClass(t *testing.T) {
	m := HazelHenCray()
	f := func(a, b uint16) bool {
		n1, n2 := int(a), int(a)+int(b)
		for _, class := range []HopClass{HopSelf, HopShm, HopNet} {
			if m.XferCost(class, n1) > m.XferCost(class, n2) {
				return false
			}
		}
		return m.XferCost(HopShm, n1) <= m.XferCost(HopNet, n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopologyUniform(t *testing.T) {
	topo := MustUniform(4, 6)
	if topo.Size() != 24 || topo.Nodes() != 4 {
		t.Fatalf("4x6 topology: size=%d nodes=%d", topo.Size(), topo.Nodes())
	}
	for r := 0; r < topo.Size(); r++ {
		if got, want := topo.NodeOf(r), r/6; got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", r, got, want)
		}
		if got, want := topo.LocalRank(r), r%6; got != want {
			t.Errorf("LocalRank(%d) = %d, want %d", r, got, want)
		}
	}
	for n := 0; n < 4; n++ {
		if got, want := topo.NodeLeader(n), n*6; got != want {
			t.Errorf("NodeLeader(%d) = %d, want %d", n, got, want)
		}
	}
	if topo.String() != "4x6" {
		t.Errorf("String() = %q", topo.String())
	}
}

func TestTopologyIrregular(t *testing.T) {
	topo, err := NewTopology([]int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 6 {
		t.Fatalf("size = %d, want 6", topo.Size())
	}
	wantNode := []int{0, 0, 0, 1, 2, 2}
	wantLocal := []int{0, 1, 2, 0, 0, 1}
	for r := range wantNode {
		if topo.NodeOf(r) != wantNode[r] || topo.LocalRank(r) != wantLocal[r] {
			t.Errorf("rank %d: node=%d local=%d, want %d/%d",
				r, topo.NodeOf(r), topo.LocalRank(r), wantNode[r], wantLocal[r])
		}
	}
	if topo.NodeLeader(2) != 4 {
		t.Errorf("NodeLeader(2) = %d, want 4", topo.NodeLeader(2))
	}
	if topo.MaxNodeSize() != 3 {
		t.Errorf("MaxNodeSize = %d, want 3", topo.MaxNodeSize())
	}
	if !strings.Contains(topo.String(), "3 nodes") {
		t.Errorf("String() = %q", topo.String())
	}
}

func TestTopologyHop(t *testing.T) {
	topo := MustUniform(2, 2)
	if topo.Hop(0, 0) != HopSelf {
		t.Error("self hop misclassified")
	}
	if topo.Hop(0, 1) != HopShm {
		t.Error("intra-node hop misclassified")
	}
	if topo.Hop(1, 2) != HopNet {
		t.Error("inter-node hop misclassified")
	}
}

func TestTopologyErrors(t *testing.T) {
	if _, err := NewTopology(nil); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := NewTopology([]int{2, 0}); err == nil {
		t.Error("zero-rank node accepted")
	}
	if _, err := Uniform(0, 4); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Uniform(4, -1); err == nil {
		t.Error("negative ppn accepted")
	}
}

func TestHopClassString(t *testing.T) {
	if HopSelf.String() != "self" || HopShm.String() != "shm" || HopNet.String() != "net" {
		t.Error("hop class names wrong")
	}
	if !strings.Contains(HopClass(99).String(), "99") {
		t.Error("unknown hop class should include its number")
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer()
	if !tr.Enabled() {
		t.Fatal("new tracer should be enabled")
	}
	// Insert out of order; Events must sort by time.
	tr.Record(Event{At: 30, Rank: 1, Kind: "recv", Bytes: 8})
	tr.Record(Event{At: 10, Rank: 0, Kind: "send", Bytes: 8})
	tr.Record(Event{At: 30, Rank: 0, Kind: "copy", Bytes: 4})
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].At != 10 || ev[1].Rank != 0 || ev[2].Rank != 1 {
		t.Errorf("events not sorted: %+v", ev)
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "send") {
		t.Errorf("dump missing events: %q", buf.String())
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

func TestTracerNilAndDisabled(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{}) // must not panic
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	if tr.Events() != nil {
		t.Error("nil tracer has events")
	}
	tr.Reset() // must not panic

	var off Tracer // zero value records nothing
	off.Record(Event{At: 1})
	if len(off.Events()) != 0 {
		t.Error("zero-value tracer recorded an event")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				tr.Record(Event{At: Time(r.Intn(1000)), Rank: g})
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(tr.Events()); got != 800 {
		t.Errorf("got %d events, want 800", got)
	}
}
