package sim

import "fmt"

// HopClass classifies the path a message takes between two ranks. The
// class decides which latency/bandwidth pair of the cost model applies.
type HopClass int

const (
	// HopSelf is a rank talking to itself (pure memory traffic).
	HopSelf HopClass = iota
	// HopShm is an intra-node hop through the shared-memory transport.
	HopShm
	// HopNet is an inter-node hop through the interconnect.
	HopNet
	// HopNuma is a hop within one NUMA domain (inside the node level).
	// Without a per-level cost override it prices like HopShm.
	HopNuma
	// HopSocket is a hop within one socket (inside the node level).
	// Without a per-level cost override it prices like HopShm.
	HopSocket
	// HopGroup is a hop within one network group (electrical group,
	// cabinet — outside the node level). Without a per-level cost
	// override it prices like HopNet.
	HopGroup
)

// String names the hop class for traces and error messages.
func (h HopClass) String() string {
	switch h {
	case HopSelf:
		return "self"
	case HopShm:
		return "shm"
	case HopNet:
		return "net"
	case HopNuma:
		return "numa"
	case HopSocket:
		return "socket"
	case HopGroup:
		return "group"
	default:
		return fmt.Sprintf("HopClass(%d)", int(h))
	}
}

// SharedMemory reports whether the hop class stays within one node's
// load/store domain.
func (h HopClass) SharedMemory() bool {
	switch h {
	case HopSelf, HopShm, HopNuma, HopSocket:
		return true
	}
	return false
}

// LevelCost is the per-level latency/bandwidth override a profile may
// attach to the extended hop classes (HopNuma, HopSocket, HopGroup).
type LevelCost struct {
	Alpha         Time
	BetaPsPerByte int64
}

// AllgatherAlg etc. enumerate the pure-MPI algorithm choices the tuning
// tables select between. They live here (rather than in internal/coll)
// so that machine profiles can carry their library's selection policy
// without an import cycle.
type AllgatherAlg int

// The allgather algorithm choices a tuning table can force.
const (
	AllgatherAuto AllgatherAlg = iota
	AllgatherRecursiveDoubling
	AllgatherBruck
	AllgatherRing
)

// BcastAlg enumerates broadcast algorithm choices.
type BcastAlg int

// The broadcast algorithm choices a tuning table can force.
const (
	BcastAuto BcastAlg = iota
	BcastBinomial
	BcastScatterAllgather
	BcastPipelined
)

// Tuning holds the MPICH/OpenMPI-style runtime selection cutoffs that
// differ between the two library stacks of the paper (Cray MPI on Hazel
// Hen, OpenMPI on Vulcan). Sizes are in bytes.
type Tuning struct {
	// AllgatherShortMax: total receive size up to which a
	// logarithmic algorithm (recursive doubling / Bruck) is used for
	// MPI_Allgather; above it the ring algorithm runs.
	AllgatherShortMax int
	// AllgathervShortMax: same cutoff for MPI_Allgatherv. The v
	// variant is less aggressively tuned in real libraries ([29]);
	// keeping this smaller than AllgatherShortMax reproduces the
	// paper's Fig. 8 observation.
	AllgathervShortMax int
	// AllgathervStepPenalty is the extra per-step bookkeeping cost of
	// the irregular variant (displacement arrays, non-uniform
	// blocks).
	AllgathervStepPenalty Time
	// AllgathervSetup is the fixed per-call cost of the irregular
	// variant (walking the count/displacement vectors). MPI_Allgather
	// has no such vectors, which is part of why the v variant loses
	// at one process per node (paper Fig. 8, [29]).
	AllgathervSetup Time
	// BcastShortMax: message size up to which binomial-tree broadcast
	// is used; above it scatter+allgather runs.
	BcastShortMax int
	// BcastPipelineMin: message size from which the pipelined
	// broadcast path is preferred.
	BcastPipelineMin int
	// BcastChunk is the pipeline chunk size for large broadcasts.
	BcastChunk int
	// AllreduceShortMax: size up to which recursive doubling is used
	// for allreduce; above it Rabenseifner's algorithm runs.
	AllreduceShortMax int
}

// CostModel parameterizes the virtual machine: a LogGP-style model with
// distinct latency (alpha) and inverse bandwidth (beta) per hop class,
// memory-copy costs with a saturation-based contention term, a CPU rate
// for modeled compute, and the library tuning cutoffs.
type CostModel struct {
	// Name identifies the profile ("hazelhen-cray", "vulcan-openmpi").
	Name string

	// NetAlpha is the inter-node latency per message.
	NetAlpha Time
	// NetBetaPsPerByte is the inter-node transfer cost per byte.
	NetBetaPsPerByte int64
	// ShmAlpha is the intra-node (shared-memory transport) latency.
	ShmAlpha Time
	// ShmBetaPsPerByte is the intra-node transfer cost per byte.
	ShmBetaPsPerByte int64

	// MemAlpha is the fixed cost of initiating a local memory copy.
	MemAlpha Time
	// MemBetaPsPerByte is the local copy cost per byte at full
	// bandwidth.
	MemBetaPsPerByte int64
	// MemSaturation is the number of concurrent on-node copiers the
	// memory system sustains before bandwidth is divided among them.
	// A node with 4 memory channels keeps per-copier bandwidth flat
	// up to ~4 copiers and degrades linearly beyond.
	MemSaturation int

	// SendOverhead/RecvOverhead are the CPU costs of posting a send
	// or completing a receive (the o of LogGP).
	SendOverhead Time
	RecvOverhead Time

	// EagerLimit is the message size (bytes) up to which sends
	// complete without waiting for the receiver (eager protocol);
	// larger messages rendezvous.
	EagerLimit int

	// LevelCosts carries optional per-level latency/bandwidth pairs
	// for the extended hop classes of multi-level topologies
	// (HopNuma, HopSocket, HopGroup). A class without an entry falls
	// back to the shm pair (classes inside the node) or the net pair
	// (classes outside it), so single-node-level topologies and
	// profiles without overrides price bit-identically to the
	// historical two-level model.
	LevelCosts map[HopClass]LevelCost

	// FlopsPerSecond is the modeled per-core compute rate used by the
	// application kernels (SUMMA, BPMF) to charge virtual time for
	// arithmetic.
	FlopsPerSecond float64

	// Tuning carries the collective algorithm selection policy of the
	// MPI library this profile imitates.
	Tuning Tuning
}

// Validate reports a configuration error if the model is unusable.
func (m *CostModel) Validate() error {
	switch {
	case m == nil:
		return fmt.Errorf("sim: nil cost model")
	case m.NetBetaPsPerByte < 0 || m.ShmBetaPsPerByte < 0 || m.MemBetaPsPerByte < 0:
		return fmt.Errorf("sim: cost model %q has negative bandwidth term", m.Name)
	case m.NetAlpha < 0 || m.ShmAlpha < 0 || m.MemAlpha < 0:
		return fmt.Errorf("sim: cost model %q has negative latency term", m.Name)
	case m.MemSaturation < 1:
		return fmt.Errorf("sim: cost model %q has MemSaturation %d < 1", m.Name, m.MemSaturation)
	case m.FlopsPerSecond <= 0:
		return fmt.Errorf("sim: cost model %q has non-positive flop rate", m.Name)
	case m.EagerLimit < 0:
		return fmt.Errorf("sim: cost model %q has negative eager limit", m.Name)
	}
	for class, lc := range m.LevelCosts {
		if lc.Alpha < 0 || lc.BetaPsPerByte < 0 {
			return fmt.Errorf("sim: cost model %q has negative %s level cost", m.Name, class)
		}
	}
	return nil
}

// Alpha returns the per-message latency for a hop class.
func (m *CostModel) Alpha(class HopClass) Time {
	if lc, ok := m.LevelCosts[class]; ok {
		return lc.Alpha
	}
	switch class {
	case HopNet, HopGroup:
		return m.NetAlpha
	case HopShm, HopNuma, HopSocket:
		return m.ShmAlpha
	default:
		return m.MemAlpha
	}
}

// BetaPsPerByte returns the per-byte transfer cost for a hop class.
func (m *CostModel) BetaPsPerByte(class HopClass) int64 {
	if lc, ok := m.LevelCosts[class]; ok {
		return lc.BetaPsPerByte
	}
	switch class {
	case HopNet, HopGroup:
		return m.NetBetaPsPerByte
	case HopShm, HopNuma, HopSocket:
		return m.ShmBetaPsPerByte
	default:
		return m.MemBetaPsPerByte
	}
}

// XferCost returns the wire time of an n-byte message on the given hop
// class: alpha + n*beta. Overheads are charged separately by the p2p
// engine so that they can overlap with transfers.
func (m *CostModel) XferCost(class HopClass, n int) Time {
	if n < 0 {
		n = 0
	}
	return m.Alpha(class) + Time(int64(n)*m.BetaPsPerByte(class))
}

// CopyCost returns the time for one rank to copy n bytes locally while
// `concurrent` ranks on the same node are copying at the same moment.
// Contention is modeled deterministically: the caller (a collective
// phase) states the concurrency level instead of the simulator observing
// races, so results do not depend on host scheduling.
func (m *CostModel) CopyCost(n, concurrent int) Time {
	if n <= 0 {
		return m.MemAlpha
	}
	if concurrent < 1 {
		concurrent = 1
	}
	factor := int64(1)
	if concurrent > m.MemSaturation {
		// Per-copier bandwidth degrades linearly once the memory
		// system saturates.
		factor = int64((concurrent + m.MemSaturation - 1) / m.MemSaturation)
	}
	return m.MemAlpha + Time(int64(n)*m.MemBetaPsPerByte*factor)
}

// ComputeCost converts a flop count into virtual CPU time.
func (m *CostModel) ComputeCost(flops float64) Time {
	if flops <= 0 {
		return 0
	}
	return Time(flops / m.FlopsPerSecond * float64(Second))
}

// Eager reports whether an n-byte message uses the eager protocol.
func (m *CostModel) Eager(n int) bool { return n <= m.EagerLimit }

// Log2Ceil returns ceil(log2(n)) for n >= 1 (0 for smaller) — the
// round count of the logarithmic collective algorithms, used by the
// selection engine's cost estimates.
func Log2Ceil(n int) int {
	k := 0
	for p := 1; p < n; p <<= 1 {
		k++
	}
	return k
}
