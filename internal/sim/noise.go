package sim

import (
	"fmt"
	"sort"
)

// Noise configures the deterministic noise-and-failure layer of a
// simulated world. The clean LogGP model prices every operation
// identically on every rank; real machines do not behave that way —
// they have OS jitter, straggler nodes, congested links and outright
// node failures. Noise injects those effects without giving up
// reproducibility: every perturbation is drawn from the counter-based
// NoiseU01 PRNG keyed by (seed, rank, opIndex, hopClass), never by
// wall clock or goroutine scheduling order, so a given seed produces
// bit-identical virtual times on the goroutine and discrete-event
// engines and across warm/pooled world reuse.
//
// The zero value (and a nil *Noise) means a perfectly clean world.
type Noise struct {
	// Seed keys every draw. Two worlds with equal Noise configs and
	// equal seeds are bit-identical; different seeds diverge.
	Seed int64

	// Jitter is the per-operation noise amplitude: each compute span
	// and each transfer is stretched by a factor drawn uniformly from
	// [1, 1+Jitter). Zero disables jitter.
	Jitter float64

	// Stragglers lists ranks whose compute runs StragglerFactor times
	// slower (a persistently slow node, as opposed to Jitter's
	// transient noise).
	Stragglers []int

	// StragglerFactor is the compute slowdown applied to straggler
	// ranks. Must be >= 1 when Stragglers is non-empty.
	StragglerFactor float64

	// Congestion multiplies transfer costs per hop class (e.g. 1.5
	// on HopNet models a persistently congested interconnect). Values
	// must be >= 1; a missing class (or 1.0) is unscaled. Congestion
	// applies uniformly to every rank, so unlike the other knobs it
	// preserves rank symmetry.
	Congestion map[HopClass]float64

	// Failures schedules rank deaths: each listed rank permanently
	// stops executing at the first operation boundary at or after its
	// virtual-time deadline, and peers observe its death through the
	// mpi layer's fault machinery (ErrRankFailed, Shrink, Agree).
	Failures []Failure
}

// Failure schedules the death of one rank at a virtual-time deadline.
type Failure struct {
	// Rank is the world rank that dies.
	Rank int
	// At is the virtual time at or after which the rank stops. The
	// rank dies at its first operation boundary with clock >= At.
	At Time
}

// Validate checks the config against a world of the given size.
func (n *Noise) Validate(size int) error {
	if n == nil {
		return nil
	}
	if n.Jitter < 0 || n.Jitter > 16 {
		return fmt.Errorf("noise: jitter %v outside [0, 16]", n.Jitter)
	}
	if len(n.Stragglers) > 0 && n.StragglerFactor < 1 {
		return fmt.Errorf("noise: straggler factor %v < 1 with %d straggler ranks",
			n.StragglerFactor, len(n.Stragglers))
	}
	if n.StragglerFactor != 0 && (n.StragglerFactor < 1 || n.StragglerFactor > 1024) {
		return fmt.Errorf("noise: straggler factor %v outside [1, 1024]", n.StragglerFactor)
	}
	for _, r := range n.Stragglers {
		if r < 0 || r >= size {
			return fmt.Errorf("noise: straggler rank %d outside world of %d ranks", r, size)
		}
	}
	for c, f := range n.Congestion {
		if c < HopSelf || c > HopGroup {
			return fmt.Errorf("noise: unknown congestion hop class %d", int(c))
		}
		if f < 1 || f > 1024 {
			return fmt.Errorf("noise: congestion factor %v for %s outside [1, 1024]", f, c)
		}
	}
	for _, fl := range n.Failures {
		if fl.Rank < 0 || fl.Rank >= size {
			return fmt.Errorf("noise: failure rank %d outside world of %d ranks", fl.Rank, size)
		}
		if fl.At < 0 {
			return fmt.Errorf("noise: failure time %d ps for rank %d is negative", fl.At, fl.Rank)
		}
	}
	return nil
}

// BreaksSymmetry reports whether this config makes ranks behave
// differently from one another, which invalidates rank-symmetry
// folding: jitter draws differ per rank, stragglers and failures name
// specific ranks. Pure congestion scales every rank identically and
// stays fold-safe.
func (n *Noise) BreaksSymmetry() bool {
	if n == nil {
		return false
	}
	return n.Jitter > 0 || len(n.Stragglers) > 0 || len(n.Failures) > 0
}

// Enabled reports whether the config perturbs anything at all.
func (n *Noise) Enabled() bool {
	if n == nil {
		return false
	}
	return n.Jitter > 0 || len(n.Stragglers) > 0 || len(n.Failures) > 0 || len(n.Congestion) > 0
}

// Clone returns a deep copy, with Stragglers sorted/deduplicated and
// Failures sorted by (rank, time) so that semantically equal configs
// compare equal field-by-field.
func (n *Noise) Clone() *Noise {
	if n == nil {
		return nil
	}
	c := &Noise{
		Seed:            n.Seed,
		Jitter:          n.Jitter,
		StragglerFactor: n.StragglerFactor,
	}
	if len(n.Stragglers) > 0 {
		c.Stragglers = append([]int(nil), n.Stragglers...)
		sort.Ints(c.Stragglers)
		w := 1
		for i := 1; i < len(c.Stragglers); i++ {
			if c.Stragglers[i] != c.Stragglers[w-1] {
				c.Stragglers[w] = c.Stragglers[i]
				w++
			}
		}
		c.Stragglers = c.Stragglers[:w]
	}
	if len(n.Congestion) > 0 {
		c.Congestion = make(map[HopClass]float64, len(n.Congestion))
		for k, v := range n.Congestion {
			c.Congestion[k] = v
		}
	}
	if len(n.Failures) > 0 {
		c.Failures = append([]Failure(nil), n.Failures...)
		sort.Slice(c.Failures, func(i, j int) bool {
			if c.Failures[i].Rank != c.Failures[j].Rank {
				return c.Failures[i].Rank < c.Failures[j].Rank
			}
			return c.Failures[i].At < c.Failures[j].At
		})
	}
	return c
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// mixer over uint64 (Steele, Lea & Flood, OOPSLA 2014). Feeding it a
// running hash of the draw coordinates gives an independent stream
// per (seed, rank, op, class) tuple with no sequential state, which
// is what makes draws independent of execution order.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NoiseU01 draws a uniform float64 in [0, 1) keyed purely by the
// coordinates (seed, rank, op, class). The draw is a pure function —
// no hidden state, no wall clock — so any execution order (goroutine
// engine, event engine, warm-world reruns) observes the same value
// for the same coordinates. The top 53 bits of the mixed hash map
// exactly onto the float64 mantissa, so the conversion is itself
// deterministic across platforms.
func NoiseU01(seed int64, rank int, op uint64, class HopClass) float64 {
	h := mix64(uint64(seed))
	h = mix64(h ^ uint64(rank))
	h = mix64(h ^ op)
	h = mix64(h ^ uint64(class))
	return float64(h>>11) / (1 << 53)
}

// ParseHopClass resolves a HopClass from its String() name
// (self, shm, net, numa, socket, group).
func ParseHopClass(name string) (HopClass, error) {
	for c := HopSelf; c <= HopGroup; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown hop class %q (want self, shm, net, numa, socket or group)", name)
}
