package sim

// Grid-to-level-stack mapping support for reordered Cartesian process
// topologies (mpi.CartCreate with reorder). The placement problem is:
// carve an N-dimensional process grid into equal bricks of `volume`
// ranks each — one brick per topology group — so that as many grid
// neighbors as possible share the group and their halo traffic stays on
// the cheap hop class. TileExtents computes the brick shape; the rank
// permutation itself is assembled by internal/mpi from the brick
// enumeration order.

// TileExtents factors volume into one extent per grid dimension so that
// extents[d] divides dims[d] and the extents multiply to volume — an
// exact brick decomposition of the grid into volume-sized tiles. The
// heuristic aims for compact (low-surface) bricks: volume's prime
// factors are assigned largest-first, each to the currently shortest
// brick edge that can still absorb it. Returns ok=false when no exact
// decomposition exists (volume does not divide the grid this way), in
// which case callers fall back to the unreordered identity placement.
// The result is deterministic: same inputs, same extents.
func TileExtents(volume int, dims []int) ([]int, bool) {
	if volume <= 0 || len(dims) == 0 {
		return nil, false
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, false
		}
		total *= d
	}
	if total%volume != 0 {
		return nil, false
	}
	ext := make([]int, len(dims))
	for i := range ext {
		ext[i] = 1
	}
	for _, f := range primeFactorsDesc(volume) {
		best := -1
		for d := range dims {
			if dims[d]%(ext[d]*f) != 0 {
				continue
			}
			if best < 0 || ext[d] < ext[best] {
				best = d
			}
		}
		if best < 0 {
			return nil, false
		}
		ext[best] *= f
	}
	return ext, true
}

// primeFactorsDesc returns n's prime factorization with multiplicity,
// largest factor first (the assignment order of TileExtents).
func primeFactorsDesc(n int) []int {
	var fac []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fac = append(fac, f)
			n /= f
		}
	}
	if n > 1 {
		fac = append(fac, n)
	}
	// The trial division above emits ascending factors; reverse.
	for i, j := 0, len(fac)-1; i < j; i, j = i+1, j-1 {
		fac[i], fac[j] = fac[j], fac[i]
	}
	return fac
}
