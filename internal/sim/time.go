package sim

import "fmt"

// Time is a virtual duration or instant measured in picoseconds.
//
// Picoseconds keep the arithmetic integral: a 10 GB/s link costs
// 100 ps/byte and a 1.3 µs network latency is 1 300 000 ps, so every cost
// in the model is an exact int64 and simulations are bit-reproducible.
type Time int64

// Common virtual-time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Us reports t in microseconds, the unit used by every figure in the
// paper.
func (t Time) Us() float64 { return float64(t) / float64(Microsecond) }

// Ms reports t in milliseconds (used by the SUMMA figures for large
// blocks).
func (t Time) Ms() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with an adaptive unit, e.g. "12.3us" or "4.56ms".
func (t Time) String() string {
	switch {
	case t < 10*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < 10*Microsecond:
		return fmt.Sprintf("%.2fus", t.Us())
	case t < Millisecond:
		return fmt.Sprintf("%.1fus", t.Us())
	case t < 10*Second:
		return fmt.Sprintf("%.2fms", t.Ms())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// FromUs converts a duration in microseconds into virtual Time.
func FromUs(us float64) Time { return Time(us * float64(Microsecond)) }

// FromSeconds converts a duration in seconds into virtual Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }
