package sim

import "testing"

func TestHierTopologyShape(t *testing.T) {
	// 2 groups ⊃ 2 nodes each ⊃ 2 sockets each ⊃ 3 ranks: 24 ranks.
	topo, err := UniformHier(3,
		LevelDim{Name: "socket", Arity: 2},
		LevelDim{Name: "node", Arity: 2},
		LevelDim{Name: "group", Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 24 {
		t.Fatalf("size = %d, want 24", topo.Size())
	}
	if topo.NumLevels() != 3 {
		t.Fatalf("levels = %d, want 3", topo.NumLevels())
	}
	if topo.Nodes() != 4 || topo.NodeSize(0) != 6 {
		t.Fatalf("nodes = %d x %d, want 4 x 6", topo.Nodes(), topo.NodeSize(0))
	}
	if l, ok := topo.LevelIndex("socket"); !ok || l != 0 {
		t.Fatalf("socket level = %d, %v", l, ok)
	}
	if topo.NodeLevel() != 1 {
		t.Fatalf("node level = %d, want 1", topo.NodeLevel())
	}
	// Rank 7: socket 2, node 1, group 0.
	if g := topo.GroupOf(0, 7); g != 2 {
		t.Errorf("rank 7 socket = %d, want 2", g)
	}
	if topo.NodeOf(7) != 1 || topo.GroupOf(2, 7) != 0 {
		t.Errorf("rank 7 node/group = %d/%d, want 1/0", topo.NodeOf(7), topo.GroupOf(2, 7))
	}
}

func TestHierTopologyHopClasses(t *testing.T) {
	topo, err := UniformHier(2,
		LevelDim{Name: "socket", Arity: 2},
		LevelDim{Name: "node", Arity: 2},
		LevelDim{Name: "group", Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		want HopClass
	}{
		{0, 0, HopSelf},
		{0, 1, HopSocket}, // same socket
		{0, 2, HopShm},    // same node, different socket
		{0, 4, HopGroup},  // same group, different node
		{0, 8, HopNet},    // different group
	}
	for _, tc := range cases {
		if got := topo.Hop(tc.a, tc.b); got != tc.want {
			t.Errorf("Hop(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if !topo.SameNode(0, 2) || topo.SameNode(0, 4) {
		t.Error("SameNode misclassifies node boundaries")
	}
}

func TestHierTopologyIrregular(t *testing.T) {
	// Irregular at both levels: sockets of 3,1 on node 0 and 2,2,1 on
	// node 1 — single-rank groups included.
	topo, err := NewHierTopology([]LevelSpec{
		{Name: "socket", Sizes: []int{3, 1, 2, 2, 1}},
		{Name: "node", Sizes: []int{4, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 9 || topo.Groups(0) != 5 || topo.Nodes() != 2 {
		t.Fatalf("shape %d ranks, %d sockets, %d nodes", topo.Size(), topo.Groups(0), topo.Nodes())
	}
	if topo.GroupLeader(0, 2) != 4 || topo.GroupSize(0, 4) != 1 {
		t.Errorf("socket leaders/sizes wrong: leader(2)=%d size(4)=%d",
			topo.GroupLeader(0, 2), topo.GroupSize(0, 4))
	}
	if topo.Hop(0, 3) != HopShm || topo.Hop(0, 2) != HopSocket {
		t.Errorf("irregular hop classes wrong: %v %v", topo.Hop(0, 3), topo.Hop(0, 2))
	}
}

func TestHierTopologyValidation(t *testing.T) {
	bad := [][]LevelSpec{
		// No node level.
		{{Name: "socket", Sizes: []int{2, 2}}},
		// Rank count mismatch between levels.
		{{Name: "socket", Sizes: []int{2, 2}}, {Name: "node", Sizes: []int{5}}},
		// Node boundary splits a socket.
		{{Name: "socket", Sizes: []int{3, 3}}, {Name: "node", Sizes: []int{2, 4}}},
		// Empty group.
		{{Name: "node", Sizes: []int{4, 0}}},
		// Duplicate names.
		{{Name: "node", Sizes: []int{2}}, {Name: "node", Sizes: []int{2}}},
	}
	for i, specs := range bad {
		if _, err := NewHierTopology(specs); err == nil {
			t.Errorf("case %d: invalid topology accepted", i)
		}
	}
}

// TestLevelCostFallback pins the acceptance requirement that the
// extended hop classes price bit-identically to the historical shm/net
// pair when the profile declares no per-level override.
func TestLevelCostFallback(t *testing.T) {
	m := Laptop() // no LevelCosts
	if m.Alpha(HopSocket) != m.ShmAlpha || m.Alpha(HopNuma) != m.ShmAlpha {
		t.Error("inner-level classes must fall back to shm alpha")
	}
	if m.Alpha(HopGroup) != m.NetAlpha {
		t.Error("outer-level classes must fall back to net alpha")
	}
	if m.BetaPsPerByte(HopSocket) != m.ShmBetaPsPerByte || m.BetaPsPerByte(HopGroup) != m.NetBetaPsPerByte {
		t.Error("level beta fallbacks wrong")
	}

	cray := HazelHenCray()
	if cray.Alpha(HopSocket) >= cray.ShmAlpha {
		t.Error("hazelhen socket override should be cheaper than the shm transport")
	}
	if cray.Alpha(HopGroup) >= cray.NetAlpha {
		t.Error("hazelhen group override should be cheaper than the global network")
	}
	if err := cray.Validate(); err != nil {
		t.Fatal(err)
	}
}
