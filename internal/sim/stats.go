package sim

import (
	"fmt"
	"io"
	"sort"
)

// TraceStats aggregates a recorded event stream into the quantities an
// MPI performance engineer would pull from a real trace: message and
// byte counts per event kind, and the virtual time span.
type TraceStats struct {
	Events int
	Span   Time // last event time - first event time
	ByKind map[string]KindStats
}

// KindStats summarizes one event kind.
type KindStats struct {
	Count int
	Bytes int64
}

// Stats computes aggregate statistics over the tracer's events.
func (t *Tracer) Stats() TraceStats {
	events := t.Events()
	st := TraceStats{ByKind: map[string]KindStats{}, Events: len(events)}
	if len(events) == 0 {
		return st
	}
	st.Span = events[len(events)-1].At - events[0].At
	for _, e := range events {
		k := st.ByKind[e.Kind]
		k.Count++
		k.Bytes += int64(e.Bytes)
		st.ByKind[e.Kind] = k
	}
	return st
}

// Fprint writes the statistics as an aligned table.
func (s TraceStats) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace: %d events over %v\n", s.Events, s.Span); err != nil {
		return err
	}
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := s.ByKind[k]
		if _, err := fmt.Fprintf(w, "  %-10s %8d events %12d bytes\n", k, ks.Count, ks.Bytes); err != nil {
			return err
		}
	}
	return nil
}
