// Package sim provides the virtual-time cluster substrate used by the
// MPI-like runtime in internal/mpi.
//
// The reproduction target (Zhou, Gracia, Schneider, ICPP'19) was
// evaluated on a Cray XC40 and a NEC InfiniBand cluster. Neither
// machine — nor any MPI library — is available here, so the cluster is
// simulated: every MPI rank is a goroutine that owns a virtual clock,
// and every communication or memory-copy operation advances clocks
// through a LogGP-style cost model. Because clocks advance only
// through explicit, causal rules, the reported latencies are
// deterministic and independent of the host's scheduler, while data
// still really moves between ranks so correctness remains testable.
//
// The package's pieces:
//
//   - Time: an integer picosecond count, the unit of every clock and
//     cost. Integral arithmetic keeps simulations bit-reproducible.
//   - Topology: the machine layout as an ordered stack of nesting
//     levels (numa ⊂ socket ⊂ node ⊂ group), each partitioning the
//     ranks into contiguous, possibly irregular groups. Exactly one
//     level is "node", the shared-memory boundary. Hop classifies the
//     path between two ranks by their innermost common level.
//   - CostModel: per-hop-class alpha/beta pairs (with optional
//     per-level overrides), memory-copy costs, send/recv overheads and
//     the library tuning cutoffs of the two machine profiles
//     (HazelHenCray, VulcanOpenMPI) plus a small Laptop profile for
//     examples and tests.
//   - TileExtents: the grid-to-level-stack mapping used by reordering
//     Cartesian communicators (mpi.CartCreate) to place compact grid
//     bricks onto topology groups.
//   - Tracer and the stats helpers for event capture.
//
// Topologies are immutable and interned by structural fingerprint, so
// sweeps that rebuild the same shape thousands of times share one
// canonical instance and every downstream geometry cache hits its
// pointer-equality fast path.
package sim
