package sim

import "sync"

// ShapeCache is the bounded verify-on-hit cache shared by the geometry
// layers (topology interning here, split shapes in internal/mpi,
// composer geometry in internal/coll). Entries are bucketed by a
// 64-bit content hash and confirmed by the caller's match function, so
// a hash collision can select a bucket but never hand out a wrong
// value. The cache is bounded: filling past max drops the whole map —
// shape variety in practice is a sweep's handful of cluster layouts,
// so the crude policy never fires on real workloads while still
// keeping pathological churn from growing without bound.
type ShapeCache[T any] struct {
	mu      sync.Mutex
	entries map[uint64][]T
	count   int
	max     int
}

// NewShapeCache creates a cache holding at most max entries.
func NewShapeCache[T any](max int) *ShapeCache[T] {
	return &ShapeCache[T]{entries: map[uint64][]T{}, max: max}
}

// Lookup returns the first bucket entry accepted by match.
func (c *ShapeCache[T]) Lookup(h uint64, match func(T) bool) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.entries[h] {
		if match(v) {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// GetOrBuild returns the matching entry, building and inserting it on
// miss. The lock is held across build so concurrent misses on the same
// key produce one canonical entry.
func (c *ShapeCache[T]) GetOrBuild(h uint64, match func(T) bool, build func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.entries[h] {
		if match(v) {
			return v, nil
		}
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	if c.count >= c.max {
		c.entries = map[uint64][]T{}
		c.count = 0
	}
	c.entries[h] = append(c.entries[h], v)
	c.count++
	return v, nil
}

// HashSeed is the FNV-1a offset basis the geometry fingerprints start
// from; HashInts folds a vector into a running hash. One shared fold
// keeps every cache's hashing consistent by construction.
const HashSeed = uint64(1469598103934665603)

// HashInts folds vals into h with FNV-1a.
func HashInts(h uint64, vals []int) uint64 {
	for _, v := range vals {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return h
}
