package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A multi-level machine: two nodes of two sockets of two ranks. Hop
// classifies rank pairs by their innermost common level, which is what
// prices every message and moves collective crossovers per level.
func ExampleUniformHier() {
	topo, err := sim.UniformHier(2,
		sim.LevelDim{Name: "socket", Arity: 2},
		sim.LevelDim{Name: "node", Arity: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(topo)
	fmt.Println(topo.Hop(0, 1), topo.Hop(0, 2), topo.Hop(0, 4))
	// Output:
	// 2x4 (socket⊂node)
	// socket shm net
}

// TileExtents bricks a process grid into node-sized tiles — the
// placement heuristic behind mpi.CartCreate's reorder: here 8-rank
// nodes each take a 2x2x2 brick of a 4x4x4 grid.
func ExampleTileExtents() {
	ext, ok := sim.TileExtents(8, []int{4, 4, 4})
	fmt.Println(ext, ok)
	// Output:
	// [2 2 2] true
}
