package sim

// Machine profiles. The parameters are not calibrated against the real
// machines (which are unavailable); they are set to the published
// ballpark characteristics of the two systems in the paper so that the
// *shape* of every figure is produced by the same mechanisms the paper
// credits: network alpha/beta for inter-node traffic, shared-memory
// transport costs and memory-copy costs for intra-node traffic, and the
// MPI library's collective tuning cutoffs.

// HazelHenCray models a Cray XC40 node pair of Intel Haswell E5-2680v3
// (24 cores, 2.5 GHz) on the Aries dragonfly interconnect, driven by a
// Cray-MPI-like (MPICH-derived) collective tuning policy.
func HazelHenCray() *CostModel {
	return &CostModel{
		Name: "hazelhen-cray",

		// Aries: ~1.3 us latency, ~8.3 GB/s effective per-rank
		// bandwidth (120 ps/byte).
		NetAlpha:         1300 * Nanosecond,
		NetBetaPsPerByte: 120,

		// Shared-memory transport (CMA-like): ~0.4 us latency,
		// ~9 GB/s (110 ps/byte) — faster than the network at
		// every size, as on the real node.
		ShmAlpha:         700 * Nanosecond,
		ShmBetaPsPerByte: 110,

		// Plain load/store copies out of the shared segment:
		// ~8 GB/s single-threaded (125 ps/byte), 4 memory
		// channels' worth of copiers before saturation.
		MemAlpha:         80 * Nanosecond,
		MemBetaPsPerByte: 125,
		MemSaturation:    4,

		SendOverhead: 300 * Nanosecond,
		RecvOverhead: 300 * Nanosecond,
		EagerLimit:   8192,

		// Per-level refinements for multi-level topologies (numa and
		// socket sit inside the node; "group" is an Aries electrical
		// group, cheaper than the global dragonfly path). Two-level
		// topologies never produce these classes, so the defaults
		// stay bit-identical.
		LevelCosts: map[HopClass]LevelCost{
			HopNuma:   {Alpha: 350 * Nanosecond, BetaPsPerByte: 95},
			HopSocket: {Alpha: 500 * Nanosecond, BetaPsPerByte: 100},
			HopGroup:  {Alpha: 1000 * Nanosecond, BetaPsPerByte: 115},
		},

		// Sustained per-core DGEMM rate on Haswell.
		FlopsPerSecond: 8e9,

		Tuning: Tuning{
			// MPICH-style: logarithmic allgather until the
			// total result reaches 512 KiB, ring beyond.
			AllgatherShortMax: 512 << 10,
			// The irregular variant keeps the same logarithmic
			// cutoff (as MPICH's does) but pays vector-walking
			// setup and per-step block bookkeeping — the
			// "slightly inferior" of Fig. 8.
			AllgathervShortMax:    512 << 10,
			AllgathervStepPenalty: 300 * Nanosecond,
			AllgathervSetup:       1500 * Nanosecond,

			BcastShortMax:    12 << 10,
			BcastPipelineMin: 512 << 10,
			BcastChunk:       64 << 10,

			AllreduceShortMax: 2 << 10,
		},
	}
}

// VulcanOpenMPI models the NEC cluster "Vulcan": identical Haswell nodes
// (the paper states the node architecture matches Hazel Hen) connected
// by InfiniBand, driven by an OpenMPI-like tuning policy.
func VulcanOpenMPI() *CostModel {
	return &CostModel{
		Name: "vulcan-openmpi",

		// InfiniBand FDR-ish: ~1.7 us latency, ~6.2 GB/s
		// (160 ps/byte).
		NetAlpha:         1700 * Nanosecond,
		NetBetaPsPerByte: 160,

		ShmAlpha:         800 * Nanosecond,
		ShmBetaPsPerByte: 130,

		MemAlpha:         80 * Nanosecond,
		MemBetaPsPerByte: 125,
		MemSaturation:    4,

		SendOverhead: 350 * Nanosecond,
		RecvOverhead: 350 * Nanosecond,
		EagerLimit:   12288,

		// InfiniBand fat-tree: a "group" is one leaf switch, with
		// less locality benefit than Aries electrical groups.
		LevelCosts: map[HopClass]LevelCost{
			HopNuma:   {Alpha: 400 * Nanosecond, BetaPsPerByte: 100},
			HopSocket: {Alpha: 550 * Nanosecond, BetaPsPerByte: 110},
			HopGroup:  {Alpha: 1400 * Nanosecond, BetaPsPerByte: 150},
		},

		FlopsPerSecond: 8e9,

		Tuning: Tuning{
			// OpenMPI's decision map switches to ring earlier
			// than MPICH.
			AllgatherShortMax:     64 << 10,
			AllgathervShortMax:    64 << 10,
			AllgathervStepPenalty: 500 * Nanosecond,
			AllgathervSetup:       2000 * Nanosecond,

			BcastShortMax:    8 << 10,
			BcastPipelineMin: 256 << 10,
			BcastChunk:       32 << 10,

			AllreduceShortMax: 4 << 10,
		},
	}
}

// Laptop is a small, fast-to-simulate profile for examples and tests. It
// behaves like a commodity 2-node cluster over 10 GbE.
func Laptop() *CostModel {
	return &CostModel{
		Name:             "laptop",
		NetAlpha:         10 * Microsecond,
		NetBetaPsPerByte: 800, // 1.25 GB/s
		ShmAlpha:         300 * Nanosecond,
		ShmBetaPsPerByte: 150,
		MemAlpha:         60 * Nanosecond,
		MemBetaPsPerByte: 100,
		MemSaturation:    2,
		SendOverhead:     100 * Nanosecond,
		RecvOverhead:     100 * Nanosecond,
		EagerLimit:       4096,
		FlopsPerSecond:   1e10,
		Tuning: Tuning{
			AllgatherShortMax:     128 << 10,
			AllgathervShortMax:    128 << 10,
			AllgathervStepPenalty: 200 * Nanosecond,
			AllgathervSetup:       1000 * Nanosecond,
			BcastShortMax:         8 << 10,
			BcastPipelineMin:      256 << 10,
			BcastChunk:            32 << 10,
			AllreduceShortMax:     2 << 10,
		},
	}
}

// Profiles returns the registry of named machine profiles, keyed by the
// names accepted on the command line (-machine flag).
func Profiles() map[string]func() *CostModel {
	return map[string]func() *CostModel{
		"hazelhen-cray":  HazelHenCray,
		"vulcan-openmpi": VulcanOpenMPI,
		"laptop":         Laptop,
	}
}
