package sim

import (
	"math"
	"testing"
)

func TestNoiseU01Deterministic(t *testing.T) {
	a := NoiseU01(42, 3, 17, HopNet)
	for i := 0; i < 100; i++ {
		if b := NoiseU01(42, 3, 17, HopNet); b != a {
			t.Fatalf("draw %d: %v != %v", i, b, a)
		}
	}
	// Every coordinate must matter.
	if NoiseU01(43, 3, 17, HopNet) == a {
		t.Fatal("seed does not affect the draw")
	}
	if NoiseU01(42, 4, 17, HopNet) == a {
		t.Fatal("rank does not affect the draw")
	}
	if NoiseU01(42, 3, 18, HopNet) == a {
		t.Fatal("op index does not affect the draw")
	}
	if NoiseU01(42, 3, 17, HopShm) == a {
		t.Fatal("hop class does not affect the draw")
	}
}

func TestNoiseU01Distribution(t *testing.T) {
	const n = 20000
	var sum float64
	for op := uint64(0); op < n; op++ {
		u := NoiseU01(7, 0, op, HopSelf)
		if u < 0 || u >= 1 {
			t.Fatalf("draw %d outside [0,1): %v", op, u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestNoiseValidate(t *testing.T) {
	ok := &Noise{Seed: 1, Jitter: 0.1, Stragglers: []int{2}, StragglerFactor: 3,
		Congestion: map[HopClass]float64{HopNet: 1.5},
		Failures:   []Failure{{Rank: 1, At: Microsecond}}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []*Noise{
		{Jitter: -0.5},
		{Jitter: 100},
		{Stragglers: []int{0}}, // factor missing
		{Stragglers: []int{0}, StragglerFactor: 0.5},    // factor < 1
		{Stragglers: []int{9}, StragglerFactor: 2},      // rank out of range
		{Congestion: map[HopClass]float64{HopNet: 0.5}}, // speedup, not congestion
		{Congestion: map[HopClass]float64{99: 2}},
		{Failures: []Failure{{Rank: -1}}},
		{Failures: []Failure{{Rank: 0, At: -5}}},
	}
	for i, n := range bad {
		if err := n.Validate(4); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	var nilNoise *Noise
	if err := nilNoise.Validate(4); err != nil {
		t.Fatalf("nil noise rejected: %v", err)
	}
}

func TestNoiseBreaksSymmetry(t *testing.T) {
	cases := []struct {
		n    *Noise
		want bool
	}{
		{nil, false},
		{&Noise{}, false},
		{&Noise{Congestion: map[HopClass]float64{HopNet: 2}}, false}, // uniform: fold-safe
		{&Noise{Jitter: 0.1}, true},
		{&Noise{Stragglers: []int{0}, StragglerFactor: 2}, true},
		{&Noise{Failures: []Failure{{Rank: 0, At: 0}}}, true},
	}
	for i, c := range cases {
		if got := c.n.BreaksSymmetry(); got != c.want {
			t.Errorf("case %d: BreaksSymmetry = %v, want %v", i, got, c.want)
		}
	}
	if (&Noise{Congestion: map[HopClass]float64{HopNet: 2}}).Enabled() != true {
		t.Fatal("congestion-only config should still be Enabled")
	}
	if (&Noise{}).Enabled() {
		t.Fatal("zero config should not be Enabled")
	}
}

func TestNoiseClone(t *testing.T) {
	n := &Noise{Seed: 9, Stragglers: []int{3, 1, 3, 2},
		StragglerFactor: 2,
		Failures:        []Failure{{Rank: 2, At: 10}, {Rank: 0, At: 5}}}
	c := n.Clone()
	if got := c.Stragglers; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("stragglers not sorted/deduped: %v", got)
	}
	if c.Failures[0].Rank != 0 || c.Failures[1].Rank != 2 {
		t.Fatalf("failures not sorted: %v", c.Failures)
	}
	// Deep copy: mutating the clone must not touch the original.
	c.Stragglers[0] = 99
	if n.Stragglers[0] == 99 {
		t.Fatal("clone shares straggler slice")
	}
}

func TestParseHopClass(t *testing.T) {
	for c := HopSelf; c <= HopGroup; c++ {
		got, err := ParseHopClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseHopClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseHopClass("warp"); err == nil {
		t.Fatal("unknown class accepted")
	}
}
