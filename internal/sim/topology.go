package sim

import "fmt"

// Topology describes how ranks are laid out over nodes. Nodes may hold
// different numbers of ranks (the paper's Fig. 10 "irregularly populated
// nodes" case needs exactly that).
type Topology struct {
	nodeSizes []int // ranks per node
	rankNode  []int // global rank -> node index
	rankLocal []int // global rank -> local (on-node) rank
	nodeBase  []int // node -> global rank of its first (leader) rank
	total     int
}

// NewTopology builds a topology from the number of ranks on each node,
// with SMP-style placement: ranks 0..nodeSizes[0]-1 on node 0, and so on.
// This matches the paper's default rank placement assumption (Sect. 4);
// other placements are layered on top by internal/hybrid using the
// node-sorted global rank array technique from Sect. 6.
func NewTopology(nodeSizes []int) (*Topology, error) {
	if len(nodeSizes) == 0 {
		return nil, fmt.Errorf("sim: topology needs at least one node")
	}
	t := &Topology{
		nodeSizes: append([]int(nil), nodeSizes...),
		nodeBase:  make([]int, len(nodeSizes)),
	}
	for n, sz := range nodeSizes {
		if sz <= 0 {
			return nil, fmt.Errorf("sim: node %d has %d ranks; every node needs at least one", n, sz)
		}
		t.nodeBase[n] = t.total
		for local := 0; local < sz; local++ {
			t.rankNode = append(t.rankNode, n)
			t.rankLocal = append(t.rankLocal, local)
		}
		t.total += sz
	}
	return t, nil
}

// Uniform builds a regular topology of nodes*ppn ranks.
func Uniform(nodes, ppn int) (*Topology, error) {
	if nodes <= 0 || ppn <= 0 {
		return nil, fmt.Errorf("sim: uniform topology needs nodes>0 and ppn>0, got %d x %d", nodes, ppn)
	}
	sizes := make([]int, nodes)
	for i := range sizes {
		sizes[i] = ppn
	}
	return NewTopology(sizes)
}

// MustUniform is Uniform for static configurations known to be valid.
func MustUniform(nodes, ppn int) *Topology {
	t, err := Uniform(nodes, ppn)
	if err != nil {
		panic(err)
	}
	return t
}

// Size returns the total number of ranks.
func (t *Topology) Size() int { return t.total }

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return len(t.nodeSizes) }

// NodeSize returns the number of ranks on node n.
func (t *Topology) NodeSize(n int) int { return t.nodeSizes[n] }

// NodeOf returns the node index hosting a global rank.
func (t *Topology) NodeOf(rank int) int { return t.rankNode[rank] }

// LocalRank returns the on-node rank of a global rank.
func (t *Topology) LocalRank(rank int) int { return t.rankLocal[rank] }

// NodeLeader returns the global rank of the lowest-ranked process on
// node n — the paper's leader convention.
func (t *Topology) NodeLeader(n int) int { return t.nodeBase[n] }

// Hop classifies the path between two global ranks.
func (t *Topology) Hop(a, b int) HopClass {
	switch {
	case a == b:
		return HopSelf
	case t.rankNode[a] == t.rankNode[b]:
		return HopShm
	default:
		return HopNet
	}
}

// MaxNodeSize returns the largest per-node rank count.
func (t *Topology) MaxNodeSize() int {
	max := 0
	for _, sz := range t.nodeSizes {
		if sz > max {
			max = sz
		}
	}
	return max
}

// String summarizes the topology, e.g. "64x24" or "3 nodes [24 24 16]".
func (t *Topology) String() string {
	uniform := true
	for _, sz := range t.nodeSizes {
		if sz != t.nodeSizes[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%dx%d", len(t.nodeSizes), t.nodeSizes[0])
	}
	return fmt.Sprintf("%d nodes %v", len(t.nodeSizes), t.nodeSizes)
}
